// Command doclint checks that every exported identifier in the named
// package directories carries a doc comment, and that each package has a
// package comment. It is the CI companion to the repository's
// documentation convention: the godoc of internal/sim, internal/memory
// and internal/workload is part of the determinism contract's paper
// trail, so a missing comment is a build failure, not a style nit.
//
// Usage:
//
//	doclint DIR [DIR...]
//
// Each DIR is one package directory (not recursive; list the packages
// explicitly so the lint surface is deliberate). Test files are skipped.
// Exit codes: 0 when clean, 1 with one "file:line: message" per finding,
// 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"lingerlonger/internal/cli"
)

func main() {
	cli.Run("doclint", realMain)
}

func realMain() error {
	cli.RegisterVersionFlag()
	flag.Parse()
	if cli.VersionRequested() {
		return cli.PrintVersion("doclint")
	}
	if flag.NArg() == 0 {
		return cli.Usagef("want at least one package directory")
	}
	var findings []string
	for _, dir := range flag.Args() {
		fs, err := lintDir(dir)
		if err != nil {
			return err
		}
		findings = append(findings, fs...)
	}
	if len(findings) > 0 {
		sort.Strings(findings)
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		return fmt.Errorf("doclint: %d undocumented exported identifier(s)", len(findings))
	}
	return nil
}

// lintDir parses every non-test .go file in dir and reports exported
// declarations without doc comments, plus a missing package comment.
func lintDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("doclint: no Go files in %s", dir)
	}

	var findings []string
	report := func(pos token.Pos, format string, args ...any) {
		findings = append(findings, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}

	hasPkgDoc := false
	for _, f := range files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		report(files[0].Package, "package %s has no package comment", files[0].Name.Name)
	}

	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedRecv(d) {
					continue
				}
				if d.Doc == nil {
					report(d.Pos(), "exported %s %s is undocumented", kindOf(d), d.Name.Name)
				}
			case *ast.GenDecl:
				lintGenDecl(d, report)
			}
		}
	}
	return findings, nil
}

// exportedRecv reports whether d is a plain function or a method on an
// exported receiver type; methods on unexported types are internal even
// when their own name is capitalized (interface satisfaction).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// kindOf names the declaration for the finding message.
func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// lintGenDecl checks const/var/type declarations: a doc comment on the
// decl covers a single spec; in grouped declarations each exported spec
// needs its own comment (matching godoc's rendering, where the group
// comment does not attach to members).
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, ...any)) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			s := spec.(*ast.TypeSpec)
			if !s.Name.IsExported() {
				continue
			}
			if s.Doc == nil && (d.Doc == nil || len(d.Specs) > 1) {
				report(s.Pos(), "exported type %s is undocumented", s.Name.Name)
			}
		}
	case token.CONST, token.VAR:
		// A group comment documents the whole block (iota enums); a spec
		// comment documents one spec. Either satisfies the lint.
		for _, spec := range d.Specs {
			s := spec.(*ast.ValueSpec)
			var exported *ast.Ident
			for _, n := range s.Names {
				if n.IsExported() {
					exported = n
					break
				}
			}
			if exported == nil {
				continue
			}
			if s.Doc == nil && s.Comment == nil && d.Doc == nil {
				report(s.Pos(), "exported %s %s is undocumented", d.Tok, exported.Name)
			}
		}
	}
}
