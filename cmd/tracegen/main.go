// Command tracegen generates and analyzes the synthetic workstation
// traces (the §3 workload characterization): the corpus statistics, the
// Figure 2 burst CDFs, the Figure 3 workload parameters, and the Figure 4
// available-memory CDF. It can also export a generated corpus to the
// lltrace text format and analyze a previously exported corpus.
//
// Usage:
//
//	tracegen [-machines 8] [-days 7] [-seed 1] [-stats] [-fig2] [-fig3] [-fig4]
//	tracegen -export DIR          write the corpus as DIR/machine-NNN.trace
//	tracegen -load DIR -stats     analyze traces read back from DIR
//
// With no figure flag it prints the corpus statistics. The shared
// observability flags (-metrics, -events, -cpuprofile, -memprofile) are
// accepted too; trace generation runs no simulator, so the profiles are
// the useful ones here. Exit codes: 0 on success, 1 on runtime failure,
// 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"lingerlonger/internal/cli"
	"lingerlonger/internal/stats"
	"lingerlonger/internal/trace"
	"lingerlonger/internal/workload"
)

func main() {
	cli.Run("tracegen", realMain)
}

func realMain() (err error) {
	var o cli.Obs
	o.RegisterFlags()
	var (
		machines  = flag.Int("machines", 8, "number of machines in the corpus")
		days      = flag.Int("days", 7, "trace length, days")
		seed      = flag.Int64("seed", 1, "generator seed")
		showStats = flag.Bool("stats", false, "print §3.2 corpus statistics")
		fig2      = flag.Bool("fig2", false, "print the Figure 2 burst CDFs")
		fig3      = flag.Bool("fig3", false, "print the Figure 3 workload parameters")
		fig4      = flag.Bool("fig4", false, "print the Figure 4 memory CDF")
		export    = flag.String("export", "", "write the generated corpus to `dir` in lltrace text format")
		load      = flag.String("load", "", "analyze traces loaded from `dir` instead of generating them")
	)
	cli.RegisterVersionFlag()
	flag.Parse()
	if cli.VersionRequested() {
		return cli.PrintVersion("tracegen")
	}
	if flag.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", flag.Arg(0))
	}
	if *export != "" && *load != "" {
		return cli.Usagef("-export and -load are mutually exclusive")
	}
	if !*fig2 && !*fig3 && !*fig4 && *export == "" {
		*showStats = true
	}
	if err := o.Start(); err != nil {
		return err
	}
	defer o.Finish(&err)

	table := workload.DefaultTable()

	// The corpus is generated lazily (once) since not every mode needs it.
	var corpus []*trace.Trace
	getCorpus := func() ([]*trace.Trace, error) {
		if corpus != nil {
			return corpus, nil
		}
		var err error
		if *load != "" {
			corpus, err = loadCorpus(*load)
		} else {
			cfg := trace.DefaultConfig()
			cfg.Days = *days
			corpus, err = trace.GenerateCorpus(cfg, *machines, stats.NewRNG(*seed))
		}
		return corpus, err
	}

	if *export != "" {
		c, err := getCorpus()
		if err != nil {
			return err
		}
		if err := exportCorpus(*export, c); err != nil {
			return err
		}
		fmt.Printf("wrote %d traces to %s\n", len(c), *export)
	}

	if *showStats {
		c, err := getCorpus()
		if err != nil {
			return err
		}
		cs := trace.Analyze(c)
		corpusDays := *days
		if *load != "" && len(c) > 0 {
			// Report the loaded corpus's actual length, not the -days flag.
			corpusDays = int(float64(len(c[0].Samples)) * c[0].Interval / 86400)
		}
		fmt.Printf("corpus: %d machines x %d days (%d samples)\n", cs.Machines, corpusDays, cs.Samples)
		fmt.Printf("  non-idle fraction        %.3f   (paper §3.2: 0.46)\n", cs.NonIdleFraction)
		fmt.Printf("  mean CPU (all)           %.3f\n", cs.MeanCPU)
		fmt.Printf("  mean CPU (idle)          %.3f\n", cs.MeanCPUIdle)
		fmt.Printf("  mean CPU (non-idle)      %.3f\n", cs.MeanCPUNonIdle)
		fmt.Printf("  non-idle below 10%% CPU   %.3f   (paper §3.2: 0.76)\n", cs.FracNonIdleBelow10)
		fmt.Printf("  mean idle episode        %.0f s\n", cs.MeanIdleEpisode)
		fmt.Printf("  mean non-idle episode    %.0f s\n", cs.MeanNonIdleEpisode)
	}

	if *fig2 {
		series := workload.Fig2(table, []float64{0.10, 0.50}, 50000, stats.NewRNG(*seed))
		fmt.Println("\nFigure 2 — run/idle burst CDFs vs hyperexponential fit")
		for _, s := range series {
			kind := "idle"
			if s.Run {
				kind = "run"
			}
			fmt.Printf("  %s bursts at %.0f%% utilization (KS distance %.4f)\n",
				kind, 100*s.Utilization, s.KSDistance)
			for i, p := range s.Points {
				if i%10 == 0 { // every 20 ms along the 0..0.1 s axis
					fmt.Printf("    t=%5.3fs empirical=%.3f fitted=%.3f\n", p.Time, p.Empirical, p.Fitted)
				}
			}
		}
	}

	if *fig3 {
		fmt.Println("\nFigure 3 — workload parameters by utilization")
		fmt.Printf("%8s %12s %12s %12s %12s\n", "util", "run mean", "run var", "idle mean", "idle var")
		for _, r := range workload.Fig3(table) {
			fmt.Printf("%7.0f%% %12.4f %12.6f %12.4f %12.6f\n",
				100*r.Utilization, r.RunMean, r.RunVar, r.IdleMean, r.IdleVar)
		}
	}

	if *fig4 {
		c, err := getCorpus()
		if err != nil {
			return err
		}
		all, idle, nonIdle := trace.Fig4(c)
		fmt.Println("\nFigure 4 — available memory CDF (64 MB machines)")
		fmt.Printf("%8s %10s %10s %10s\n", "MB", "all", "idle", "non-idle")
		for mb := 0.0; mb <= 64; mb += 4 {
			fmt.Printf("%8.0f %10.3f %10.3f %10.3f\n", mb, all.At(mb), idle.At(mb), nonIdle.At(mb))
		}
		fmt.Printf("\n  P(free >= 14 MB) = %.3f (paper: 0.90)\n", trace.FracAtLeast(all, 14))
		fmt.Printf("  P(free >= 10 MB) = %.3f (paper: 0.95)\n", trace.FracAtLeast(all, 10))
	}
	return nil
}

// exportCorpus writes one lltrace file per machine into dir.
func exportCorpus(dir string, corpus []*trace.Trace) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("tracegen: %w", err)
	}
	for i, tr := range corpus {
		path := filepath.Join(dir, fmt.Sprintf("machine-%03d.trace", i))
		if err := trace.Save(path, tr); err != nil {
			return err
		}
	}
	return nil
}

// loadCorpus reads every *.trace file in dir, in sorted name order so the
// machine numbering is stable.
func loadCorpus(dir string) ([]*trace.Trace, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tracegen: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".trace") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("tracegen: no .trace files in %s", dir)
	}
	sort.Strings(names)
	corpus := make([]*trace.Trace, 0, len(names))
	for _, name := range names {
		tr, err := trace.Load(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		corpus = append(corpus, tr)
	}
	return corpus, nil
}
