// Command tracegen generates and analyzes the synthetic workstation
// traces (the §3 workload characterization): the corpus statistics, the
// Figure 2 burst CDFs, the Figure 3 workload parameters, and the Figure 4
// available-memory CDF.
//
// Usage:
//
//	tracegen [-machines 8] [-days 7] [-seed 1] [-stats] [-fig2] [-fig3] [-fig4]
//
// With no figure flag it prints the corpus statistics.
package main

import (
	"flag"
	"fmt"
	"log"

	"lingerlonger/internal/stats"
	"lingerlonger/internal/trace"
	"lingerlonger/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		machines  = flag.Int("machines", 8, "number of machines in the corpus")
		days      = flag.Int("days", 7, "trace length, days")
		seed      = flag.Int64("seed", 1, "generator seed")
		showStats = flag.Bool("stats", false, "print §3.2 corpus statistics")
		fig2      = flag.Bool("fig2", false, "print the Figure 2 burst CDFs")
		fig3      = flag.Bool("fig3", false, "print the Figure 3 workload parameters")
		fig4      = flag.Bool("fig4", false, "print the Figure 4 memory CDF")
	)
	flag.Parse()
	if !*fig2 && !*fig3 && !*fig4 {
		*showStats = true
	}

	table := workload.DefaultTable()

	if *showStats {
		cfg := trace.DefaultConfig()
		cfg.Days = *days
		corpus, err := trace.GenerateCorpus(cfg, *machines, stats.NewRNG(*seed))
		if err != nil {
			log.Fatal(err)
		}
		cs := trace.Analyze(corpus)
		fmt.Printf("corpus: %d machines x %d days (%d samples)\n", cs.Machines, *days, cs.Samples)
		fmt.Printf("  non-idle fraction        %.3f   (paper §3.2: 0.46)\n", cs.NonIdleFraction)
		fmt.Printf("  mean CPU (all)           %.3f\n", cs.MeanCPU)
		fmt.Printf("  mean CPU (idle)          %.3f\n", cs.MeanCPUIdle)
		fmt.Printf("  mean CPU (non-idle)      %.3f\n", cs.MeanCPUNonIdle)
		fmt.Printf("  non-idle below 10%% CPU   %.3f   (paper §3.2: 0.76)\n", cs.FracNonIdleBelow10)
		fmt.Printf("  mean idle episode        %.0f s\n", cs.MeanIdleEpisode)
		fmt.Printf("  mean non-idle episode    %.0f s\n", cs.MeanNonIdleEpisode)
	}

	if *fig2 {
		series := workload.Fig2(table, []float64{0.10, 0.50}, 50000, stats.NewRNG(*seed))
		fmt.Println("\nFigure 2 — run/idle burst CDFs vs hyperexponential fit")
		for _, s := range series {
			kind := "idle"
			if s.Run {
				kind = "run"
			}
			fmt.Printf("  %s bursts at %.0f%% utilization (KS distance %.4f)\n",
				kind, 100*s.Utilization, s.KSDistance)
			for i, p := range s.Points {
				if i%10 == 0 { // every 20 ms along the 0..0.1 s axis
					fmt.Printf("    t=%5.3fs empirical=%.3f fitted=%.3f\n", p.Time, p.Empirical, p.Fitted)
				}
			}
		}
	}

	if *fig3 {
		fmt.Println("\nFigure 3 — workload parameters by utilization")
		fmt.Printf("%8s %12s %12s %12s %12s\n", "util", "run mean", "run var", "idle mean", "idle var")
		for _, r := range workload.Fig3(table) {
			fmt.Printf("%7.0f%% %12.4f %12.6f %12.4f %12.6f\n",
				100*r.Utilization, r.RunMean, r.RunVar, r.IdleMean, r.IdleVar)
		}
	}

	if *fig4 {
		cfg := trace.DefaultConfig()
		cfg.Days = *days
		corpus, err := trace.GenerateCorpus(cfg, *machines, stats.NewRNG(*seed))
		if err != nil {
			log.Fatal(err)
		}
		all, idle, nonIdle := trace.Fig4(corpus)
		fmt.Println("\nFigure 4 — available memory CDF (64 MB machines)")
		fmt.Printf("%8s %10s %10s %10s\n", "MB", "all", "idle", "non-idle")
		for mb := 0.0; mb <= 64; mb += 4 {
			fmt.Printf("%8.0f %10.3f %10.3f %10.3f\n", mb, all.At(mb), idle.At(mb), nonIdle.At(mb))
		}
		fmt.Printf("\n  P(free >= 14 MB) = %.3f (paper: 0.90)\n", trace.FracAtLeast(all, 14))
		fmt.Printf("  P(free >= 10 MB) = %.3f (paper: 0.95)\n", trace.FracAtLeast(all, 10))
	}
}
