// Command llserve runs the simulation-as-a-service HTTP server: the
// deterministic simulators behind POST /v1/simulate/cluster,
// POST /v1/simulate/node and POST /v1/decide/linger, with a
// content-addressed result cache, singleflight deduplication, a bounded
// admission queue (429 + Retry-After under overload), per-request
// deadlines with panic isolation, and /healthz, /readyz, /metrics.
// Pure stdlib; see DESIGN.md §12 and README "Serving simulations".
//
// Usage:
//
//	llserve [-addr 127.0.0.1:8080] [-workers N] [-queue 64]
//	        [-cache-entries 1024] [-timeout 30s] [-drain 10s]
//	        [-peers A,B,C] [-self ADDR] [-ring-vnodes 64]
//	        [-metrics FILE] [-events FILE] [-cpuprofile FILE] [-memprofile FILE]
//	        [-version]
//
// With -peers, the replica joins a consistent-hash serving cluster
// (DESIGN.md §16): cacheable requests are routed to the replica owning
// their content-address, non-owners forward with one hop, and dead
// replicas' key ranges fail over to ring successors. -self is this
// replica's advertised address (default -addr) and must appear in
// -peers; the transport/health budgets come from the fabric link flags
// (-dial-timeout, -call-timeout, -retries, -retry-base, -retry-max,
// -health-interval, -suspect-after, -dead-after, -inflight), the same
// surface llsweep uses.
//
// SIGINT/SIGTERM drains gracefully: /readyz flips to 503, in-flight
// requests complete (up to -drain), then the process exits 0.
//
// Exit codes: 0 on success, 1 on runtime failure, 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lingerlonger/internal/cli"
	"lingerlonger/internal/serve"
)

func main() {
	cli.Run("llserve", realMain)
}

func realMain() (err error) {
	var o cli.Obs
	o.RegisterFlags()
	cli.RegisterVersionFlag()
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers = flag.Int("workers", 0, "concurrent simulations (<= 0 selects GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "admission queue depth beyond the executing requests")
		entries = flag.Int("cache-entries", 1024, "result cache capacity (0 disables storage)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		drain   = flag.Duration("drain", 10*time.Second, "graceful drain budget on SIGTERM")
		peers   = flag.String("peers", "", "comma-separated replica addresses (including this one); empty = single-replica mode")
		self    = flag.String("self", "", "this replica's advertised address in -peers (default -addr)")
		vnodes  = flag.Int("ring-vnodes", 0, "virtual nodes per replica on the routing ring (0 selects the default)")
	)
	link := cli.LinkFlags(flag.CommandLine)
	flag.Parse()
	if cli.VersionRequested() {
		return cli.PrintVersion("llserve")
	}
	if flag.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", flag.Arg(0))
	}
	if *queue < 0 {
		return cli.Usagef("-queue must be non-negative, got %d", *queue)
	}
	if *entries < 0 {
		return cli.Usagef("-cache-entries must be non-negative, got %d", *entries)
	}
	if *timeout <= 0 {
		return cli.Usagef("-timeout must be positive, got %s", *timeout)
	}
	if err := o.Start(); err != nil {
		return err
	}
	defer o.Finish(&err)
	// A server always carries a registry: /metrics must answer whether or
	// not an exit dump (-metrics) was requested.
	o.EnsureRegistry()

	cfg := serve.DefaultConfig()
	cfg.Workers = *workers
	cfg.QueueDepth = *queue
	cfg.CacheEntries = *entries
	cfg.RequestTimeout = *timeout
	cfg.Rec = o.Recorder()
	if *peers != "" {
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		advertised := *self
		if advertised == "" {
			advertised = *addr
		}
		cluster := &serve.ClusterConfig{Self: advertised, Peers: list, VNodes: *vnodes, Link: *link}
		if err := cluster.Validate(); err != nil {
			return cli.Usagef("%v", err)
		}
		cfg.Cluster = cluster
	} else if *self != "" || *vnodes != 0 {
		return cli.Usagef("-self and -ring-vnodes require -peers")
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	fmt.Printf("llserve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Listener failed before any signal.
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately rather than re-draining
	fmt.Fprintln(os.Stderr, "llserve: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "llserve: drained, exiting")
	return nil
}
