// Command obscheck validates metrics files written by the -metrics flag
// of the other commands: schema version, section shape, catalogued names,
// kind agreement, and internal histogram consistency (bucket tallies must
// sum to the observation count). CI runs it against a fresh
// `experiments -quick -metrics` dump so a drift between the obs package
// and its documented schema fails the build, not a downstream consumer.
//
// Usage:
//
//	obscheck FILE...
//
// Exit codes: 0 when every file validates, 1 when any fails, 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"lingerlonger/internal/cli"
	"lingerlonger/internal/obs"
)

func main() {
	cli.Run("obscheck", realMain)
}

func realMain() error {
	cli.RegisterVersionFlag()
	flag.Parse()
	if cli.VersionRequested() {
		return cli.PrintVersion("obscheck")
	}
	if flag.NArg() == 0 {
		return cli.Usagef("usage: obscheck FILE...")
	}
	failed := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Printf("%s: %v\n", path, err)
			failed++
			continue
		}
		if err := obs.ValidateMetricsJSON(data); err != nil {
			fmt.Printf("%s: INVALID: %v\n", path, err)
			failed++
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d file(s) failed validation", failed, flag.NArg())
	}
	return nil
}
