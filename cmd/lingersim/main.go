// Command lingersim runs the sequential-job cluster experiments of the
// paper (§4.2): the Figure 7 policy-comparison table and the Figure 8
// per-state time breakdown, on a simulated cluster of workstations
// replaying synthetic coarse-grain traces.
//
// Usage:
//
//	lingersim [-nodes 64] [-workload 1|2] [-policy LL|LF|IE|PM|all]
//	          [-breakdown] [-seed 1] [-tpdur 3600] [-machines 16] [-days 2]
//	          [-metrics FILE] [-events FILE] [-cpuprofile FILE] [-memprofile FILE]
//
//	lingersim -scenario scenarios/fig8.json [-quick] [-seed N]
//	          Run a declarative cluster scenario spec (internal/scenario)
//	          instead of the flag-driven experiment: every expanded point is
//	          computed and printed as one table row. The spec's seed is used
//	          unless -seed is given explicitly.
//
// The observability flags record what a run did — per-policy scheduling
// counters, a JSONL event trace of placements/migrations/evictions/
// lingers, pprof profiles — without participating in it; enabling them
// never changes results (see OBSERVABILITY.md).
//
// Exit codes: 0 on success, 1 on runtime failure, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lingerlonger/internal/cli"
	"lingerlonger/internal/cluster"
	"lingerlonger/internal/core"
	"lingerlonger/internal/obs"
	"lingerlonger/internal/scenario"
	"lingerlonger/internal/stats"
	"lingerlonger/internal/trace"
)

func main() {
	cli.Run("lingersim", realMain)
}

func realMain() (err error) {
	var o cli.Obs
	o.RegisterFlags()
	var (
		nodes     = flag.Int("nodes", 64, "cluster size")
		workload  = flag.Int("workload", 1, "paper workload: 1 (128x600s) or 2 (16x1800s)")
		policy    = flag.String("policy", "all", "scheduling policy: LL, LF, IE, PM, or all")
		breakdown = flag.Bool("breakdown", false, "also print the Figure 8 state breakdown")
		seed      = flag.Int64("seed", 1, "simulation seed")
		tpdur     = flag.Float64("tpdur", 3600, "throughput-run duration, seconds")
		machines  = flag.Int("machines", 16, "trace corpus size")
		days      = flag.Int("days", 2, "trace length, days")
		scenPath  = flag.String("scenario", "", "run a cluster scenario spec `file` instead of the flag-driven experiment")
		quick     = flag.Bool("quick", false, "scenario mode: smoke-run scale")
		workers   = flag.Int("workers", 1, "scenario mode: worker pool size")
	)
	cli.RegisterVersionFlag()
	flag.Parse()
	if cli.VersionRequested() {
		return cli.PrintVersion("lingersim")
	}
	if flag.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", flag.Arg(0))
	}
	if *scenPath == "" && (*quick || *workers != 1) {
		return cli.Usagef("-quick and -workers apply only with -scenario")
	}
	if err := o.Start(); err != nil {
		return err
	}
	defer o.Finish(&err)

	if *scenPath != "" {
		return runScenario(*scenPath, *seed, *quick, *workers, &o)
	}

	tcfg := trace.DefaultConfig()
	tcfg.Days = *days
	corpus, err := trace.GenerateCorpus(tcfg, *machines, stats.NewRNG(*seed))
	if err != nil {
		return err
	}

	var cfg cluster.Config
	switch *workload {
	case 1:
		cfg = cluster.Workload1(core.LingerLonger)
	case 2:
		cfg = cluster.Workload2(core.LingerLonger)
	default:
		return cli.Usagef("unknown workload %d (want 1 or 2)", *workload)
	}
	cfg.Nodes = *nodes
	cfg.Seed = *seed
	cfg.Rec = o.Recorder()

	pols := core.Policies
	if *policy != "all" {
		p, err := core.ParsePolicy(*policy)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		pols = []core.Policy{p}
	}

	fmt.Printf("Figure 7 — workload %d on %d nodes (%d jobs x %.0f CPU-s, %.0f MB images)\n",
		*workload, cfg.Nodes, int(cfg.NumJobs), cfg.JobCPU, cfg.JobMB)
	fmt.Printf("%-6s %12s %10s %12s %12s %10s\n",
		"policy", "avg job (s)", "variation", "family (s)", "throughput", "delay")
	for _, p := range pols {
		c := cfg
		c.Policy = p
		batch, err := cluster.Run(c, corpus)
		if err != nil {
			return err
		}
		tp, err := cluster.RunThroughput(c, corpus, *tpdur)
		if err != nil {
			return err
		}
		fmt.Printf("%-6s %12.0f %9.1f%% %12.0f %12.1f %9.2f%%\n",
			p, batch.AvgCompletion, 100*batch.Variation, batch.FamilyTime,
			tp.Throughput, 100*batch.LocalDelay)
		if batch.Incomplete > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d jobs incomplete at MaxTime under %v\n", batch.Incomplete, p)
		}
		if *breakdown {
			b := batch.Breakdown
			fmt.Printf("       breakdown: queued %.0f  run %.0f  linger %.0f  paused %.0f  migrate %.0f\n",
				b.Queued, b.Running, b.Lingering, b.Paused, b.Migrating)
		}
	}
	return nil
}

// runScenario runs a cluster scenario spec and prints one table row per
// expanded point. An explicit -seed overrides the spec's seed, matching
// llsweep's precedence rule.
func runScenario(path string, seed int64, quick bool, workers int, o *cli.Obs) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := scenario.Decode(data)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	if spec.Kind != scenario.KindCluster {
		return cli.Usagef("%s: kind %q (lingersim runs cluster scenarios; use nodesim for node ones)", path, spec.Kind)
	}
	seedSet := false
	flag.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "seed" })
	if seedSet {
		spec.Seed = seed
	}
	rec := o.Recorder()
	id, specs, err := scenario.Expand(spec, quick)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	rec.Counter(obs.ScenarioPointsExpanded).Add(int64(len(specs)))
	results, err := scenario.Run(workers, specs, rec)
	if err != nil {
		return err
	}
	digest, err := spec.Digest()
	if err != nil {
		return err
	}
	fmt.Printf("Scenario %s (seed %d, %d points, digest %.12s...)\n", id, spec.Seed, len(specs), digest)
	fmt.Printf("%-10s %-6s %12s %10s %12s %10s %6s\n",
		"workload", "policy", "avg job (s)", "variation", "family (s)", "delay", "inc")
	for i, raw := range results {
		var pt scenario.ClusterPoint
		if err := json.Unmarshal(raw, &pt); err != nil {
			return fmt.Errorf("point %d: %w", i, err)
		}
		fmt.Printf("%-10v %-6s %12.0f %9.1f%% %12.0f %9.2f%% %6d\n",
			pt.Workload, pt.Policy, pt.AvgCompletion, 100*pt.Variation,
			pt.FamilyTime, 100*pt.LocalDelay, pt.Incomplete)
	}
	return nil
}
