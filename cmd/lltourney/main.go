// Command lltourney runs the policy tournament: every selected scheduling
// policy runs every selected workload family, and the cells are ranked
// into a schema-validated comparison report (per-workload standings plus
// an overall normalized score).
//
//	lltourney -quick -workers 4
//	    Local tournament over every registered policy and workload.
//
//	lltourney -quick -policies LL,FS -workloads w1,pareto
//	    Restrict the axes (names from the scenario registries).
//
//	lltourney -quick -agents 127.0.0.1:7101,127.0.0.1:7102
//	    Distribute the cells across lingerd agent processes via the sweep
//	    fabric; faults, retries and agent counts never change a byte.
//
//	lltourney -check report.json
//	    Validate an existing report against the schema and exit.
//
// The report on stdout is a pure function of (spec, seed, quick): worker
// count and execution mode never change a byte — CI runs the same quick
// tournament serially, with 8 workers, and through a 2-agent fabric and
// requires cmp-identical output. Execution details go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lingerlonger/internal/cli"
	"lingerlonger/internal/fabric"
	"lingerlonger/internal/obs"
	"lingerlonger/internal/runtime"
	"lingerlonger/internal/scenario"
)

func main() {
	cli.Run("lltourney", realMain)
}

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func realMain() (err error) {
	var o cli.Obs
	o.RegisterFlags()
	link := cli.LinkFlags(flag.CommandLine)
	var (
		seed      = flag.Int64("seed", 1, "master seed; per-cell seeds derive from it")
		quick     = flag.Bool("quick", false, "smoke-run scale (small cluster, short jobs)")
		workers   = flag.Int("workers", 1, "local mode: worker pool size (ignored with -agents)")
		agents    = flag.String("agents", "", "fabric mode: comma-separated lingerd agent addresses")
		policies  = flag.String("policies", "", fmt.Sprintf("comma-separated policy names (default all: %v)", scenario.Policies.Names()))
		workloads = flag.String("workloads", "", fmt.Sprintf("comma-separated workload names (default all: %v)", scenario.Workloads.Names()))
		faultSpec = flag.String("fault", "", "fault injection spec for fabric calls, e.g. drop=0.05,seed=42")
		outPath   = flag.String("out", "", "write the report to `file` instead of stdout")
		checkPath = flag.String("check", "", "validate an existing report `file` and exit")
	)
	cli.RegisterVersionFlag()
	flag.Parse()
	if cli.VersionRequested() {
		return cli.PrintVersion("lltourney")
	}
	if flag.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", flag.Arg(0))
	}
	if err := o.Start(); err != nil {
		return err
	}
	defer o.Finish(&err)
	rec := o.Recorder()

	if *checkPath != "" {
		data, err := os.ReadFile(*checkPath)
		if err != nil {
			return err
		}
		rep, err := scenario.ValidateTournamentReport(data)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lltourney: %s: valid (%d policies x %d workloads, digest %.12s...)\n",
			*checkPath, len(rep.Policies), len(rep.Workloads), rep.Digest)
		return nil
	}

	spec, specs, err := scenario.BuildTournament(scenario.TournamentConfig{
		Seed:      *seed,
		Quick:     *quick,
		Policies:  splitList(*policies),
		Workloads: splitList(*workloads),
	})
	if err != nil {
		return cli.Usagef("%v", err)
	}
	rec.Counter(obs.ScenarioPointsExpanded).Add(int64(len(specs)))

	var results [][]byte
	if *agents == "" {
		if *faultSpec != "" {
			return cli.Usagef("-fault requires -agents (the injector sits on the fabric transport)")
		}
		results, err = scenario.Run(*workers, specs, rec)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lltourney: %d cells local (workers=%d)\n", len(specs), *workers)
	} else {
		addrs := splitList(*agents)
		var injector runtime.FaultInjector
		if *faultSpec != "" {
			fcfg, err := runtime.ParseFaultSpec(*faultSpec)
			if err != nil {
				return cli.Usagef("%v", err)
			}
			inj, err := runtime.NewSeededInjector(fcfg)
			if err != nil {
				return cli.Usagef("%v", err)
			}
			injector = inj
		}
		cfg := fabric.Config{Agents: addrs, Link: *link, Injector: injector, Rec: rec}
		var stats fabric.Stats
		results, stats, err = fabric.Run(cfg, "tournament", specs)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lltourney: %d cells across %d agents (completed=%d, requeued=%d)\n",
			len(specs), len(addrs), stats.Completed, stats.Requeued)
	}

	rep, err := scenario.Rank(spec, *quick, results)
	if err != nil {
		return err
	}
	data, err := scenario.EncodeTournament(rep)
	if err != nil {
		return err
	}
	// Self-check: what we emit must pass our own schema validation.
	if _, err := scenario.ValidateTournamentReport(data); err != nil {
		return err
	}
	rec.Counter(obs.ScenarioTournaments).Inc()
	for _, ov := range rep.Overall {
		fmt.Fprintf(os.Stderr, "lltourney: overall #%d %-3s score %.4f\n", ov.Rank, ov.Policy, ov.Score)
	}
	if *outPath != "" {
		return os.WriteFile(*outPath, data, 0o644)
	}
	_, err = os.Stdout.Write(data)
	return err
}
