// Command parsim runs the parallel-job experiments (§5): the synthetic
// bulk-synchronous slowdown studies (Figures 9 and 10), the
// linger-vs-reconfiguration comparison (Figure 11), and the
// shared-memory-application studies (Figures 12 and 13).
//
// Usage:
//
//	parsim [-seed 1] [-workers 0] [-fig9] [-fig10] [-fig11] [-fig12] [-fig13]
//	       [-metrics FILE] [-events FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// With no flag it runs every figure. -workers sizes the sweep worker pool
// (0 = GOMAXPROCS); results are identical for every worker count because
// each sweep point derives its own RNG seed from (seed, index). The
// observability flags (bsp.phases, node.preemptions, exp.points.*; see
// OBSERVABILITY.md) are side channels and never change results either.
//
// Exit codes follow the internal/cli convention: 0 success, 1 runtime
// failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"math"

	"lingerlonger/internal/apps"
	"lingerlonger/internal/cli"
	"lingerlonger/internal/exp"
	"lingerlonger/internal/parallel"
)

func main() { cli.Run("parsim", realMain) }

func realMain() (err error) {
	var o cli.Obs
	o.RegisterFlags()
	var (
		seed    = flag.Int64("seed", 1, "simulation seed")
		workers = flag.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
		fig9    = flag.Bool("fig9", false, "run Figure 9 (slowdown vs utilization)")
		fig10   = flag.Bool("fig10", false, "run Figure 10 (slowdown vs granularity)")
		fig11   = flag.Bool("fig11", false, "run Figure 11 (linger vs reconfiguration)")
		fig12   = flag.Bool("fig12", false, "run Figure 12 (application slowdowns)")
		fig13   = flag.Bool("fig13", false, "run Figure 13 (applications: linger vs reconfiguration)")
	)
	cli.RegisterVersionFlag()
	flag.Parse()
	if cli.VersionRequested() {
		return cli.PrintVersion("parsim")
	}
	if flag.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", flag.Arg(0))
	}
	if err := o.Start(); err != nil {
		return err
	}
	defer o.Finish(&err)
	all := !*fig9 && !*fig10 && !*fig11 && !*fig12 && !*fig13
	runner := exp.NewRunner(*workers)
	runner.Rec = o.Recorder()

	if all || *fig9 {
		pts, err := parallel.Fig9(runner, *seed)
		if err != nil {
			return err
		}
		fmt.Println("Figure 9 — parallel job slowdown vs local utilization (1 non-idle node of 8)")
		for _, p := range pts {
			fmt.Printf("  util %3.0f%%  slowdown %5.2f\n", 100*p.Utilization, p.Slowdown)
		}
	}

	if all || *fig10 {
		pts, err := parallel.Fig10(runner, *seed)
		if err != nil {
			return err
		}
		fmt.Println("\nFigure 10 — slowdown vs synchronization granularity (20% non-idle nodes)")
		fmt.Printf("%12s %8s %8s %8s %8s\n", "granularity", "1 node", "2 nodes", "4 nodes", "8 nodes")
		byGran := map[float64]map[int]float64{}
		for _, p := range pts {
			if byGran[p.GranularityMS] == nil {
				byGran[p.GranularityMS] = map[int]float64{}
			}
			byGran[p.GranularityMS][p.NonIdleNodes] = p.Slowdown
		}
		for _, g := range []float64{10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000} {
			row := byGran[g]
			fmt.Printf("%10.0fms %8.2f %8.2f %8.2f %8.2f\n", g, row[1], row[2], row[4], row[8])
		}
	}

	if all || *fig11 {
		cfg := parallel.DefaultReconfigConfig()
		cfg.Seed = *seed
		cfg.Exec = runner
		pts, err := parallel.Fig11(cfg)
		if err != nil {
			return err
		}
		fmt.Println("\nFigure 11 — Linger-Longer vs reconfiguration (32-node cluster, 20% non-idle)")
		fmt.Printf("%6s %10s %10s %10s %10s\n", "idle", "LL-32", "LL-16", "LL-8", "reconfig")
		for _, p := range pts {
			fmt.Printf("%6d %10.2f %10.2f %10.2f %10s\n",
				p.IdleNodes, p.LL[32], p.LL[16], p.LL[8], fmtOrInf(p.Reconfig))
		}
	}

	if all || *fig12 {
		pts, err := apps.Fig12(runner, *seed)
		if err != nil {
			return err
		}
		fmt.Println("\nFigure 12 — application slowdown vs non-idle nodes (8-node cluster)")
		for _, app := range []string{"sor", "water", "fft"} {
			fmt.Printf("  %s:\n", app)
			fmt.Printf("%10s %8s %8s %8s %8s\n", "non-idle", "10%", "20%", "30%", "40%")
			for n := 0; n <= 8; n++ {
				fmt.Printf("%10d", n)
				for _, u := range []float64{0.10, 0.20, 0.30, 0.40} {
					for _, p := range pts {
						if p.App == app && p.NonIdle == n && math.Abs(p.LocalUtil-u) < 1e-9 {
							fmt.Printf(" %8.2f", p.Slowdown)
						}
					}
				}
				fmt.Println()
			}
		}
	}

	if all || *fig13 {
		cfg := apps.DefaultFig13Config()
		cfg.Seed = *seed
		cfg.Exec = runner
		pts, err := apps.Fig13(cfg)
		if err != nil {
			return err
		}
		fmt.Println("\nFigure 13 — applications: linger vs reconfiguration (16-node cluster, 20% non-idle)")
		cur := ""
		for _, p := range pts {
			if p.App != cur {
				cur = p.App
				fmt.Printf("  %s:\n", cur)
				fmt.Printf("%6s %10s %10s %10s\n", "idle", "reconfig", "LL-16", "LL-8")
			}
			fmt.Printf("%6d %10s %10.2f %10.2f\n", p.IdleNodes, fmtOrInf(p.Reconfig), p.LL16, p.LL8)
		}
	}
	return nil
}

func fmtOrInf(v float64) string {
	if math.IsInf(v, 1) {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}
