// Command llbench runs the repository's fixed benchmark suite and emits a
// schema-validated BENCH_<n>.json snapshot — one point of the benchmark
// trajectory documented in BENCHMARKS.md.
//
// The suite has three parts, chosen to cover the three layers a
// performance PR can touch:
//
//   - engine: the event-dispatch microbenchmark (a self-rescheduling
//     handler stepped in a tight loop), run on the calendar-queue engine
//     and on the retained binary-heap reference scheduler, so the snapshot
//     carries its own like-for-like speedup and allocs/op.
//   - cluster: a Figure 7-style batch run (Workload 1, Linger-Longer) on a
//     seeded trace corpus, reporting mean/P95 job completion latency in
//     simulated seconds plus wall-clock.
//   - serve: an in-process llserve instance replaying the same seeded
//     request mix twice — cold (simulate and fill the cache) then warm
//     (cache hits) — reporting req/s and latency per phase plus a result
//     digest that must match across phases (the cached == fresh contract).
//
// Usage:
//
//	llbench [-quick] [-seed 1] [-dir .] [-id 0] [-o FILE] [-notes S]
//	llbench -gate [-quick] [-dir .] [-baseline FILE]
//	llbench -validate FILE
//	llbench -table FILE
//
// -quick shrinks the cluster and serve suites for CI; the engine
// microbenchmark is identical in both modes, which is why the CI gate
// (-gate) compares only engine metrics: events/s may not drop and
// allocs/op may not grow by more than bench.GateTolerance against the
// latest committed snapshot (or -baseline). Exit codes: 0 on success,
// 1 on runtime failure or a gate violation, 2 on usage errors.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lingerlonger/internal/bench"
	"lingerlonger/internal/cli"
	"lingerlonger/internal/cluster"
	"lingerlonger/internal/core"
	"lingerlonger/internal/exp"
	"lingerlonger/internal/node"
	"lingerlonger/internal/serve"
	"lingerlonger/internal/sim"
	"lingerlonger/internal/stats"
	"lingerlonger/internal/trace"
	"lingerlonger/internal/workload"
)

func main() {
	cli.Run("llbench", realMain)
}

func realMain() error {
	cli.RegisterVersionFlag()
	var (
		quick    = flag.Bool("quick", false, "smaller cluster/serve suites (engine suite unchanged)")
		seed     = flag.Int64("seed", 1, "master seed for the cluster corpus and serve request stream")
		dir      = flag.String("dir", ".", "snapshot directory (BENCH_<n>.json trajectory)")
		id       = flag.Int("id", 0, "snapshot id; 0 = one past the latest in -dir")
		out      = flag.String("o", "", "write the snapshot to this file (default: stdout only)")
		notes    = flag.String("notes", "", "free-form note recorded in the snapshot")
		gate     = flag.Bool("gate", false, "compare against the baseline and exit 1 on regression")
		baseline = flag.String("baseline", "", "gate baseline file (default: latest snapshot in -dir)")
		validate = flag.String("validate", "", "validate this snapshot file and exit")
		table    = flag.String("table", "", "print the README results table for this snapshot file and exit")
	)
	flag.Parse()
	if cli.VersionRequested() {
		return cli.PrintVersion("llbench")
	}
	if flag.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", flag.Arg(0))
	}
	if *validate != "" {
		if _, err := bench.Load(*validate); err != nil {
			return err
		}
		fmt.Printf("%s: valid (schema %d)\n", *validate, bench.SchemaVersion)
		return nil
	}
	if *table != "" {
		s, err := bench.Load(*table)
		if err != nil {
			return err
		}
		fmt.Print(s.Markdown())
		return nil
	}

	snapID := *id
	if snapID == 0 {
		next, err := bench.NextID(*dir)
		if err != nil {
			return err
		}
		snapID = next
	}

	snap := &bench.Snapshot{
		SchemaVersion: bench.SchemaVersion,
		ID:            snapID,
		Seed:          *seed,
		Quick:         *quick,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Notes:         *notes,
	}

	fmt.Fprintf(os.Stderr, "llbench: engine suite...\n")
	snap.Engine = engineSuite()
	fmt.Fprintf(os.Stderr, "llbench: node suite...\n")
	snap.Node = nodeSuite()
	fmt.Fprintf(os.Stderr, "llbench: cluster suite...\n")
	cl, err := clusterSuite(*seed, *quick)
	if err != nil {
		return err
	}
	snap.Cluster = cl
	fmt.Fprintf(os.Stderr, "llbench: serve suite...\n")
	sv, err := serveSuite(*seed, *quick)
	if err != nil {
		return err
	}
	snap.Serve = sv

	if err := snap.Validate(); err != nil {
		return fmt.Errorf("llbench: produced an invalid snapshot: %w", err)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return err
	}
	if *out != "" {
		if err := snap.Save(*out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "llbench: wrote %s\n", *out)
	}

	if *gate {
		base, path, err := loadBaseline(*baseline, *dir)
		if err != nil {
			return err
		}
		if bad := bench.Compare(base, snap); len(bad) > 0 {
			for _, v := range bad {
				fmt.Fprintf(os.Stderr, "llbench: GATE: %s\n", v)
			}
			return fmt.Errorf("llbench: %d regression(s) vs %s", len(bad), path)
		}
		fmt.Fprintf(os.Stderr, "llbench: gate passed vs %s\n", path)
	}
	return nil
}

// loadBaseline resolves the gate baseline: an explicit file, or the latest
// committed snapshot in dir.
func loadBaseline(file, dir string) (*bench.Snapshot, string, error) {
	if file != "" {
		s, err := bench.Load(file)
		return s, file, err
	}
	s, path, err := bench.Latest(dir)
	if errors.Is(err, bench.ErrNoSnapshots) {
		return nil, "", fmt.Errorf("llbench: -gate needs a baseline: no BENCH_<n>.json in %s and no -baseline", dir)
	}
	return s, path, err
}

// engineSuite runs the event-dispatch microbenchmark on both schedulers.
// The workload is the same self-rescheduling handler as
// BenchmarkEngineStep in internal/sim: each fired event schedules its
// successor one second out, so the queue holds exactly one event and the
// measurement isolates Schedule+Step dispatch cost.
func engineSuite() bench.EngineSuite {
	cal := testing.Benchmark(func(b *testing.B) {
		var e sim.Engine
		var h sim.Handler
		h = func(eng *sim.Engine) { eng.After(1.0, h) }
		e.After(1.0, h)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
	heap := testing.Benchmark(func(b *testing.B) {
		var e sim.HeapEngine
		var h sim.HeapHandler
		h = func(eng *sim.HeapEngine) { eng.After(1.0, h) }
		e.After(1.0, h)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
	ns := float64(cal.NsPerOp())
	heapNs := float64(heap.NsPerOp())
	return bench.EngineSuite{
		NsPerEvent:      ns,
		EventsPerSec:    1e9 / ns,
		BytesPerOp:      float64(cal.AllocedBytesPerOp()),
		AllocsPerOp:     float64(cal.AllocsPerOp()),
		HeapNsPerEvent:  heapNs,
		HeapAllocsPerOp: float64(heap.AllocsPerOp()),
		SpeedupVsHeap:   heapNs / ns,
	}
}

// nodeSuite runs the fine-grain burst-loop microbenchmark: one node
// serving an unbounded foreign job for a fixed simulated span per
// iteration at 50% local utilization (the middle of the Figure 5 sweep),
// on the batched fast path (Node with stream lookahead) and on the
// retained per-burst reference (RefNode). Both consume statistically
// identical burst streams, so the speedup is like-for-like; the
// differential suite in internal/node separately proves the two paths
// bit-identical on the same stream.
func nodeSuite() *bench.NodeSuite {
	const span = 50.0 // simulated seconds per op
	table := workload.DefaultTable()
	fast := testing.Benchmark(func(b *testing.B) {
		n := node.New(node.Config{ContextSwitch: node.DefaultContextSwitch, BurstLookahead: 256},
			table, workload.ConstantUtilization(0.5), stats.NewRNG(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.ServeForeign(math.Inf(1), float64(i+1)*span)
		}
	})
	ref := testing.Benchmark(func(b *testing.B) {
		n := node.NewRef(node.DefaultConfig(),
			table, workload.ConstantUtilization(0.5), stats.NewRNG(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.ServeForeign(math.Inf(1), float64(i+1)*span)
		}
	})
	ns := float64(fast.NsPerOp()) / span
	refNs := float64(ref.NsPerOp()) / span
	return &bench.NodeSuite{
		SimSecondsPerOp:  span,
		NsPerSimSecond:   ns,
		SimSecPerWallSec: 1e9 / ns,
		AllocsPerOp:      float64(fast.AllocsPerOp()),
		RefNsPerSimSec:   refNs,
		SpeedupVsRef:     refNs / ns,
	}
}

// clusterSuite runs the Figure 7-style batch workload: full mode is the
// paper's Workload 1 (64 nodes, 128 x 600 CPU-s jobs) on a 16-machine,
// 7-day corpus; -quick shrinks the corpus and job family so the suite
// finishes in well under a second.
func clusterSuite(seed int64, quick bool) (bench.ClusterSuite, error) {
	machines, days := 16, 7
	cfg := cluster.Workload1(core.LingerLonger)
	if quick {
		machines, days = 6, 2
		cfg.Nodes = 16
		cfg.NumJobs = 32
		cfg.JobCPU = 120
	}
	cfg.Seed = seed
	tcfg := trace.DefaultConfig()
	tcfg.Days = days
	corpus, err := trace.GenerateCorpus(tcfg, machines, stats.NewRNG(seed))
	if err != nil {
		return bench.ClusterSuite{}, err
	}

	start := time.Now()
	res, err := cluster.Run(cfg, corpus)
	if err != nil {
		return bench.ClusterSuite{}, err
	}
	wall := time.Since(start).Seconds()
	if res.Incomplete > 0 {
		return bench.ClusterSuite{}, fmt.Errorf("llbench: cluster run left %d jobs incomplete", res.Incomplete)
	}

	// Completion latency distribution: jobs are all submitted at t=0, so a
	// job's completion instant IS its latency in simulated seconds.
	lats := make([]float64, 0, len(res.Jobs))
	for _, j := range res.Jobs {
		lats = append(lats, j.CompletedAt())
	}
	sort.Float64s(lats)
	mean := 0.0
	for _, l := range lats {
		mean += l
	}
	mean /= float64(len(lats))
	p95 := lats[min(len(lats)-1, int(0.95*float64(len(lats))))]

	return bench.ClusterSuite{
		Nodes:           cfg.Nodes,
		Jobs:            len(res.Jobs),
		Policy:          cfg.Policy.String(),
		MeanCompletionS: mean,
		P95CompletionS:  p95,
		LocalDelay:      res.LocalDelay,
		WallSeconds:     wall,
		JobsPerSec:      float64(len(res.Jobs)) / wall,
	}, nil
}

// serveReq is one request of the seeded stream: a pure function of
// (seed, i), mirroring cmd/llload's generator so the two tools exercise
// the service identically.
type serveReq struct {
	path string
	body []byte
}

// genStream derives the n-request mix: equal weights over decide, node and
// cluster endpoints, 8 distinct parameter variants each (cache-friendly,
// so the warm phase is all hits).
func genStream(seed int64, n int) []serveReq {
	const distinct = 8
	out := make([]serveReq, n)
	for i := range out {
		rng := stats.NewRNG(exp.DeriveSeed(seed, i))
		endpoint := []string{serve.EndpointDecide, serve.EndpointNode, serve.EndpointCluster}[rng.Intn(3)]
		v := rng.Intn(distinct)
		var req any
		path := "/v1/simulate/" + endpoint
		switch endpoint {
		case serve.EndpointDecide:
			path = "/v1/decide/linger"
			req = &serve.DecideRequest{
				SourceUtil: 0.5 + 0.04*float64(v%10),
				DestUtil:   0.05 * float64(v%8),
				JobMB:      8,
				EpisodeAge: float64(5 * (v + 1)),
			}
		case serve.EndpointNode:
			req = &serve.NodeRequest{
				Utilization: 0.05 * float64(v%12),
				Duration:    200,
				Seed:        int64(v + 1),
			}
		case serve.EndpointCluster:
			req = &serve.ClusterRequest{
				Policy:        []string{"LL", "LF", "IE", "PM"}[v%4],
				Nodes:         8,
				NumJobs:       8,
				JobCPU:        60,
				TraceMachines: 2,
				TraceDays:     1,
				Seed:          int64(v/4 + 1),
			}
		}
		body, err := json.Marshal(req)
		if err != nil {
			panic(fmt.Sprintf("llbench: marshal request: %v", err))
		}
		out[i] = serveReq{path: path, body: body}
	}
	return out
}

// serveSuite replays the seeded request stream twice against one
// in-process llserve: cold fills the cache, warm hits it. The per-phase
// digest is llload's: sha256 over (index, status, body-hash) in index
// order, so matching digests mean byte-identical responses.
func serveSuite(seed int64, quick bool) (bench.ServeSuite, error) {
	requests, concurrency := 400, 4
	if quick {
		requests = 120
	}
	srv, err := serve.New(serve.DefaultConfig())
	if err != nil {
		return bench.ServeSuite{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	stream := genStream(seed, requests)
	cold, err := replay(ts.URL, ts.Client(), stream, concurrency)
	if err != nil {
		return bench.ServeSuite{}, err
	}
	warm, err := replay(ts.URL, ts.Client(), stream, concurrency)
	if err != nil {
		return bench.ServeSuite{}, err
	}
	return bench.ServeSuite{
		Requests:     requests,
		Concurrency:  concurrency,
		Mix:          "decide=1,node=1,cluster=1",
		Cold:         cold,
		Warm:         warm,
		DigestsMatch: cold.Digest == warm.Digest,
	}, nil
}

// replay issues the stream once with a closed-loop worker pool and
// summarizes the phase.
func replay(base string, client *http.Client, stream []serveReq, concurrency int) (bench.ServePhase, error) {
	type outcome struct {
		status   int
		bodyHash [32]byte
		latency  float64
		err      bool
	}
	outcomes := make([]outcome, len(stream))
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := &bytes.Buffer{}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stream) {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(base+stream[i].path, "application/json", bytes.NewReader(stream[i].body))
				if err != nil {
					outcomes[i] = outcome{err: true, latency: time.Since(t0).Seconds()}
					continue
				}
				buf.Reset()
				_, rerr := buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					outcomes[i] = outcome{err: true, status: resp.StatusCode, latency: time.Since(t0).Seconds()}
					continue
				}
				outcomes[i] = outcome{
					status:   resp.StatusCode,
					bodyHash: sha256.Sum256(buf.Bytes()),
					latency:  time.Since(t0).Seconds(),
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	dig := sha256.New()
	var idx [8]byte
	var phase bench.ServePhase
	lats := make([]float64, 0, len(stream))
	for i, o := range outcomes {
		binary.BigEndian.PutUint64(idx[:], uint64(i))
		dig.Write(idx[:])
		if o.err {
			phase.Errors++
			dig.Write([]byte("transport-error"))
		} else {
			binary.BigEndian.PutUint64(idx[:], uint64(o.status))
			dig.Write(idx[:])
			dig.Write(o.bodyHash[:])
			if o.status != http.StatusOK {
				phase.Errors++
			}
		}
		lats = append(lats, o.latency)
	}
	phase.Digest = "sha256:" + hex.EncodeToString(dig.Sum(nil))
	sort.Float64s(lats)
	mean := 0.0
	for _, l := range lats {
		mean += l
	}
	phase.MeanLatencyS = mean / float64(len(lats))
	phase.P95LatencyS = lats[min(len(lats)-1, int(0.95*float64(len(lats))))]
	if wall > 0 {
		phase.ReqPerSec = float64(len(stream)) / wall
	}
	return phase, nil
}
