// Command llsweep runs an experiment sweep — serially, on a local worker
// pool, or distributed across a cluster of lingerd agent processes — and
// emits a deterministic JSON report.
//
//	llsweep -sweep node -quick -workers 1
//	    Serial reference run: the byte-exact baseline every other
//	    execution mode must reproduce.
//
//	llsweep -scenario scenarios/fig8.json -workers 4
//	    Scenario mode: expand a declarative scenario spec (internal/
//	    scenario) instead of a named sweep. The spec's name becomes the
//	    sweep ID and its seed the report seed unless -seed is given
//	    explicitly; the committed specs under scenarios/ reproduce the
//	    named sweeps byte for byte.
//
//	llsweep -sweep node -quick -agents 127.0.0.1:7101,127.0.0.1:7102
//	    Distributed run: partition the same points across agent processes
//	    (lingerd -agent) with at-most-once dispatch, per-call deadlines,
//	    bounded retry, suspect/dead health tracking, and automatic
//	    re-execution of points lost to a dead agent.
//
//	llsweep ... -checkpoint DIR
//	    Persist completed points and resume an interrupted run; serial and
//	    fabric runs share the same snapshot format, so a run can switch
//	    modes between attempts.
//
//	llsweep ... -fault drop=0.05,seed=42
//	    Apply the deterministic fault injector to every fabric call (the
//	    lingerd -fault spec syntax); the report bytes must not change.
//
// The report on stdout is a pure function of (sweep, seed, quick): agent
// count, worker count, faults, retries, and resumption never change a
// byte. Execution details go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lingerlonger/internal/checkpoint"
	"lingerlonger/internal/cli"
	"lingerlonger/internal/exp"
	"lingerlonger/internal/fabric"
	"lingerlonger/internal/obs"
	"lingerlonger/internal/runtime"
	"lingerlonger/internal/scenario"
)

func main() {
	cli.Run("llsweep", realMain)
}

func realMain() (err error) {
	var o cli.Obs
	o.RegisterFlags()
	link := cli.LinkFlags(flag.CommandLine)
	var (
		sweepName = flag.String("sweep", "node", fmt.Sprintf("sweep to run, one of %v", fabric.SweepNames()))
		scenPath  = flag.String("scenario", "", "run a scenario spec `file` instead of a named sweep")
		seed      = flag.Int64("seed", 1, "master seed; per-point seeds derive from it")
		quick     = flag.Bool("quick", false, "smaller sweep for smoke runs")
		workers   = flag.Int("workers", 1, "local mode: worker pool size (ignored with -agents)")
		agents    = flag.String("agents", "", "fabric mode: comma-separated lingerd agent addresses")
		ckptDir   = flag.String("checkpoint", "", "checkpoint `dir`: persist completed points and resume from it")
		faultSpec = flag.String("fault", "", "fault injection spec for fabric calls, e.g. drop=0.05,seed=42")
		outPath   = flag.String("out", "", "write the report to `file` instead of stdout")
	)
	cli.RegisterVersionFlag()
	flag.Parse()
	if cli.VersionRequested() {
		return cli.PrintVersion("llsweep")
	}
	if flag.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", flag.Arg(0))
	}
	if err := o.Start(); err != nil {
		return err
	}
	defer o.Finish(&err)
	rec := o.Recorder()

	var (
		id    string
		specs []exp.PointSpec
	)
	if *scenPath != "" {
		data, err := os.ReadFile(*scenPath)
		if err != nil {
			return err
		}
		spec, err := scenario.Decode(data)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		// An explicit -seed overrides the spec's; otherwise the spec's
		// seed is the report seed, so the report stays a pure function of
		// the file content.
		seedSet := false
		flag.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "seed" })
		if seedSet {
			spec.Seed = *seed
		} else {
			*seed = spec.Seed
		}
		id, specs, err = scenario.Expand(spec, *quick)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		rec.Counter(obs.ScenarioPointsExpanded).Add(int64(len(specs)))
	} else {
		var err error
		id, specs, err = fabric.BuildSweep(*sweepName, *seed, *quick)
		if err != nil {
			return cli.Usagef("%v", err)
		}
	}

	var store exp.Store
	if *ckptDir != "" {
		run, err := checkpoint.OpenOrCreate(*ckptDir, checkpoint.Meta{
			Schema: checkpoint.SchemaVersion,
			Seed:   *seed,
			Config: fmt.Sprintf("quick=%t", *quick),
			Sweep:  id,
		})
		if err != nil {
			return err
		}
		if rec != nil {
			run.SetRecorder(rec)
		}
		store = run
	}

	var (
		results [][]byte
		stats   fabric.Stats
	)
	if *agents == "" {
		if *faultSpec != "" {
			return cli.Usagef("-fault requires -agents (the injector sits on the fabric transport)")
		}
		results, stats, err = fabric.RunLocal(fabric.BuiltinTasks(), store, *workers, id, specs, rec)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "llsweep: %s: %d points local (workers=%d, computed=%d, restored=%d)\n",
			id, len(specs), *workers, stats.Completed, stats.Restored)
	} else {
		var addrs []string
		for _, a := range strings.Split(*agents, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		var injector runtime.FaultInjector
		if *faultSpec != "" {
			fcfg, err := runtime.ParseFaultSpec(*faultSpec)
			if err != nil {
				return cli.Usagef("%v", err)
			}
			inj, err := runtime.NewSeededInjector(fcfg)
			if err != nil {
				return cli.Usagef("%v", err)
			}
			injector = inj
		}
		cfg := fabric.Config{
			Agents:   addrs,
			Link:     *link,
			Injector: injector,
			Store:    store,
			Rec:      rec,
		}
		results, stats, err = fabric.Run(cfg, id, specs)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "llsweep: %s: %d points across %d agents (completed=%d, restored=%d, requeued=%d, suspected=%d, dead=%d, resurrected=%d, retries=%d)\n",
			id, len(specs), len(addrs), stats.Completed, stats.Restored, stats.Requeued,
			stats.Suspected, stats.Dead, stats.Resurrected, stats.Transport.Retries)
	}

	report, err := fabric.EncodeReport(id, *seed, *quick, results)
	if err != nil {
		return err
	}
	if *outPath != "" {
		return os.WriteFile(*outPath, report, 0o644)
	}
	_, err = os.Stdout.Write(report)
	return err
}
