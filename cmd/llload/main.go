// Command llload is a seeded, closed-loop load generator for llserve: a
// fixed pool of workers each keeps exactly one request in flight until
// the request budget is spent, then the run prints a JSON
// latency/throughput summary to stdout.
//
// Usage:
//
//	llload -url http://127.0.0.1:8080 [-requests 200] [-concurrency 8]
//	       [-mix decide=1,node=1,cluster=1] [-distinct 8] [-seed 1]
//	       [-cluster-scale 1] [-targets URL1,URL2,...] [-version]
//
// Request i of the run is a pure function of (seed, i): its endpoint is
// drawn from the -mix weights and its parameters from one of -distinct
// deterministic variants, via the repository's DeriveSeed splitter. The
// summary therefore includes a resultDigest — a SHA-256 over the
// (index, status, body-hash) sequence — and two runs with the same seed
// against deterministic servers must print the same digest, whatever the
// concurrency: that is the service's cached == fresh contract, checked
// end to end (CI runs llload twice, cold then warm, and compares).
//
// -targets spreads the run across a replica set (default: just -url).
// Request i's target is itself a pure function of (seed, i), and a
// request whose target fails at the transport level retries on the next
// target in deterministic order (up to one attempt per target), so a
// run against N replicas — even one losing a replica mid-run — prints
// the same resultDigest as a single-replica run. That is the sharded
// cluster's byte-identity contract (DESIGN.md §16), and CI's ring smoke
// job enforces it, SIGKILL included.
//
// Exit codes: 0 on success (even with failed requests — the summary
// reports them), 1 on runtime failure, 2 on usage errors.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lingerlonger/internal/cli"
	"lingerlonger/internal/exp"
	"lingerlonger/internal/serve"
	"lingerlonger/internal/stats"
)

func main() {
	cli.Run("llload", realMain)
}

// mixEntry is one weighted endpoint of the request mix.
type mixEntry struct {
	endpoint string
	weight   int
}

// parseMix parses "decide=1,node=1,cluster=1" into weighted entries.
func parseMix(s string) ([]mixEntry, error) {
	var out []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want endpoint=weight", part)
		}
		switch name {
		case serve.EndpointDecide, serve.EndpointNode, serve.EndpointCluster:
		default:
			return nil, fmt.Errorf("mix entry %q: unknown endpoint (want decide, node or cluster)", part)
		}
		w, err := strconv.Atoi(wstr)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: weight must be a non-negative integer", part)
		}
		if w > 0 {
			out = append(out, mixEntry{endpoint: name, weight: w})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mix %q selects no endpoint", s)
	}
	return out, nil
}

// endpointPath maps an endpoint name to its URL path.
func endpointPath(endpoint string) string {
	if endpoint == serve.EndpointDecide {
		return "/v1/decide/linger"
	}
	return "/v1/simulate/" + endpoint
}

// parseTargets parses the -targets list, falling back to the single
// -url when empty. Entries are trimmed; blanks are dropped; trailing
// slashes are stripped so "http://h:p/" and "http://h:p" are one target.
func parseTargets(s, fallback string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		out = []string{strings.TrimRight(fallback, "/")}
	}
	return out
}

// pickTarget selects request i's target index among n, deterministically:
// a second-level DeriveSeed split keeps the choice independent of the
// request-parameter stream (genRequest consumes DeriveSeed(seed, i)
// directly), so adding -targets never changes which requests are sent —
// only where. Failover walks (pick+1)%n, (pick+2)%n, ... in order.
func pickTarget(seed int64, i, n int) int {
	if n <= 1 {
		return 0
	}
	return stats.NewRNG(exp.DeriveSeed(exp.DeriveSeed(seed, i), 1)).Intn(n)
}

// genRequest derives request i of the run: endpoint from the mix weights,
// parameters from one of `distinct` variants. Everything is drawn from an
// RNG seeded with DeriveSeed(seed, i), so the request stream is a pure
// function of (seed, i) — independent of worker count and wall-clock.
func genRequest(seed int64, i int, mix []mixEntry, totalWeight, distinct, clusterScale int) (endpoint string, body []byte) {
	rng := stats.NewRNG(exp.DeriveSeed(seed, i))
	pick := rng.Intn(totalWeight)
	for _, m := range mix {
		if pick < m.weight {
			endpoint = m.endpoint
			break
		}
		pick -= m.weight
	}
	v := rng.Intn(distinct)
	var req any
	switch endpoint {
	case serve.EndpointDecide:
		req = &serve.DecideRequest{
			SourceUtil: 0.5 + 0.04*float64(v%10),
			DestUtil:   0.05 * float64(v%8),
			JobMB:      8,
			EpisodeAge: float64(5 * (v + 1)),
		}
	case serve.EndpointNode:
		req = &serve.NodeRequest{
			Utilization: 0.05 * float64(v%12),
			Duration:    200,
			Seed:        int64(v + 1),
		}
	case serve.EndpointCluster:
		// Small, fast cluster runs (a few milliseconds cold) at scale 1,
		// so the cold/warm contrast measures the cache, not one giant
		// simulation. -cluster-scale multiplies the cluster and job-batch
		// size for benchmarks that want each miss to cost real CPU.
		req = &serve.ClusterRequest{
			Policy:        []string{"LL", "LF", "IE", "PM"}[v%4],
			Nodes:         8 * clusterScale,
			NumJobs:       8 * clusterScale,
			JobCPU:        60,
			TraceMachines: 2,
			TraceDays:     1,
			Seed:          int64(v/4 + 1),
		}
	}
	data, err := json.Marshal(req)
	if err != nil {
		panic(fmt.Sprintf("llload: marshal request: %v", err))
	}
	return endpoint, data
}

// outcome is the recorded result of one request, collected by index so
// the digest is independent of completion order.
type outcome struct {
	status   int
	bodyHash [32]byte
	latency  float64
	err      bool
	target   int // index into targets of the replica that answered
}

// summary is the JSON report printed to stdout.
type summary struct {
	URL            string         `json:"url"`
	Targets        []string       `json:"targets,omitempty"`
	Seed           int64          `json:"seed"`
	Requests       int            `json:"requests"`
	Concurrency    int            `json:"concurrency"`
	Mix            string         `json:"mix"`
	Distinct       int            `json:"distinct"`
	Errors         int            `json:"errors"`
	StatusCounts   map[string]int `json:"statusCounts"`
	WallSeconds    float64        `json:"wallSeconds"`
	ThroughputRPS  float64        `json:"throughputRPS"`
	LatencySeconds latencySummary `json:"latencySeconds"`
	ResultDigest   string         `json:"resultDigest"`
	ByEndpoint     map[string]int `json:"byEndpoint"`
	ByTarget       map[string]int `json:"byTarget,omitempty"`
}

type latencySummary struct {
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func realMain() error {
	cli.RegisterVersionFlag()
	var (
		baseURL     = flag.String("url", "http://127.0.0.1:8080", "llserve base URL")
		requests    = flag.Int("requests", 200, "total requests to issue")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers (one request in flight each)")
		mixSpec     = flag.String("mix", "decide=1,node=1,cluster=1", "endpoint weights, e.g. decide=8,node=1,cluster=1")
		distinct    = flag.Int("distinct", 8, "distinct parameter variants per endpoint (small = cache-friendly)")
		seed        = flag.Int64("seed", 1, "request-stream seed")
		scale       = flag.Int("cluster-scale", 1, "multiplier on cluster request size (heavier per-miss cost)")
		targetsSpec = flag.String("targets", "", "comma-separated replica base URLs; requests spread deterministically (default: -url)")
	)
	flag.Parse()
	if cli.VersionRequested() {
		return cli.PrintVersion("llload")
	}
	if flag.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", flag.Arg(0))
	}
	if *requests <= 0 {
		return cli.Usagef("-requests must be positive, got %d", *requests)
	}
	if *concurrency <= 0 {
		return cli.Usagef("-concurrency must be positive, got %d", *concurrency)
	}
	if *distinct <= 0 {
		return cli.Usagef("-distinct must be positive, got %d", *distinct)
	}
	if *scale <= 0 {
		return cli.Usagef("-cluster-scale must be positive, got %d", *scale)
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	totalWeight := 0
	for _, m := range mix {
		totalWeight += m.weight
	}
	targets := parseTargets(*targetsSpec, *baseURL)

	client := &http.Client{Timeout: 60 * time.Second}
	outcomes := make([]outcome, *requests)
	endpoints := make([]string, *requests)
	var next atomic.Int64
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				endpoint, body := genRequest(*seed, i, mix, totalWeight, *distinct, *scale)
				endpoints[i] = endpoint
				t0 := time.Now()
				// Request i starts at its deterministic target; a transport
				// failure (dial refused, connection dropped mid-read) fails
				// over to the next target in order, one attempt per target.
				// Replicas answer with identical bytes, so failover preserves
				// the digest — only byTarget shifts.
				first := pickTarget(*seed, i, len(targets))
				answered := false
				for a := 0; a < len(targets) && !answered; a++ {
					target := (first + a) % len(targets)
					resp, err := client.Post(targets[target]+endpointPath(endpoint), "application/json", bytes.NewReader(body))
					if err != nil {
						continue
					}
					data, rerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					if rerr != nil {
						continue
					}
					outcomes[i] = outcome{
						status:   resp.StatusCode,
						bodyHash: sha256.Sum256(data),
						latency:  time.Since(t0).Seconds(),
						target:   target,
					}
					answered = true
				}
				if !answered {
					outcomes[i] = outcome{err: true, latency: time.Since(t0).Seconds()}
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	// Digest: (index, status, body hash) in index order — identical across
	// runs iff every request got byte-identical result bytes.
	dig := sha256.New()
	var idx [8]byte
	sum := summary{
		URL:          *baseURL,
		Seed:         *seed,
		Targets:      targets,
		Requests:     *requests,
		Concurrency:  *concurrency,
		Mix:          *mixSpec,
		Distinct:     *distinct,
		StatusCounts: map[string]int{},
		ByEndpoint:   map[string]int{},
		ByTarget:     map[string]int{},
		WallSeconds:  wall,
	}
	latencies := make([]float64, 0, *requests)
	for i, o := range outcomes {
		binary.BigEndian.PutUint64(idx[:], uint64(i))
		dig.Write(idx[:])
		if o.err {
			sum.Errors++
			dig.Write([]byte("transport-error"))
		} else {
			binary.BigEndian.PutUint64(idx[:], uint64(o.status))
			dig.Write(idx[:])
			dig.Write(o.bodyHash[:])
			sum.StatusCounts[strconv.Itoa(o.status)]++
			sum.ByTarget[targets[o.target]]++
		}
		sum.ByEndpoint[endpoints[i]]++
		latencies = append(latencies, o.latency)
	}
	sum.ResultDigest = "sha256:" + hex.EncodeToString(dig.Sum(nil))
	if wall > 0 {
		sum.ThroughputRPS = float64(*requests) / wall
	}
	sort.Float64s(latencies)
	if n := len(latencies); n > 0 {
		total := 0.0
		for _, l := range latencies {
			total += l
		}
		q := func(p float64) float64 { return latencies[min(n-1, int(p*float64(n)))] }
		sum.LatencySeconds = latencySummary{
			Min:  latencies[0],
			Mean: total / float64(n),
			P50:  q(0.50),
			P90:  q(0.90),
			P99:  q(0.99),
			Max:  latencies[n-1],
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(&sum)
}
