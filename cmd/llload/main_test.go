package main

import (
	"reflect"
	"testing"
)

func TestParseTargets(t *testing.T) {
	cases := []struct {
		spec, fallback string
		want           []string
	}{
		{"", "http://a:1", []string{"http://a:1"}},
		{"", "http://a:1/", []string{"http://a:1"}},
		{"http://a:1,http://b:2", "http://x:9", []string{"http://a:1", "http://b:2"}},
		{" http://a:1/ , ,http://b:2 ", "http://x:9", []string{"http://a:1", "http://b:2"}},
		{",,", "http://x:9", []string{"http://x:9"}},
	}
	for _, c := range cases {
		if got := parseTargets(c.spec, c.fallback); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseTargets(%q, %q) = %v, want %v", c.spec, c.fallback, got, c.want)
		}
	}
}

// TestPickTargetDeterministic pins the target-selection contract: request
// i's target is a pure function of (seed, i), every target is used, and
// the choice is independent of the request-parameter stream (changing the
// target count never changes which requests genRequest produces).
func TestPickTargetDeterministic(t *testing.T) {
	const n, reqs = 3, 300
	counts := make([]int, n)
	for i := 0; i < reqs; i++ {
		a := pickTarget(7, i, n)
		b := pickTarget(7, i, n)
		if a != b {
			t.Fatalf("pickTarget(7, %d, %d) unstable: %d then %d", i, n, a, b)
		}
		if a < 0 || a >= n {
			t.Fatalf("pickTarget(7, %d, %d) = %d out of range", i, n, a)
		}
		counts[a]++
	}
	for idx, c := range counts {
		if c == 0 {
			t.Errorf("target %d never chosen over %d requests", idx, reqs)
		}
	}
	if pickTarget(7, 42, 1) != 0 {
		t.Error("single-target pick must be 0")
	}

	// Independence: the request bytes for (seed, i) do not depend on the
	// target count — pickTarget draws from a second-level seed split.
	mix, err := parseMix("decide=1,node=1,cluster=1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		e1, b1 := genRequest(7, i, mix, 3, 8, 1)
		_ = pickTarget(7, i, 5)
		e2, b2 := genRequest(7, i, mix, 3, 8, 1)
		if e1 != e2 || string(b1) != string(b2) {
			t.Fatalf("request %d changed after pickTarget: %s vs %s", i, b1, b2)
		}
	}
}
