// Command nodesim runs the single-node impact study (§4.1, Figure 5): the
// local job delay ratio (LDR) and fine-grain cycle stealing ratio (FCSR)
// of a lingering compute-bound foreign job across local utilization levels
// and effective context-switch times.
//
// Usage:
//
//	nodesim [-dur 2000] [-seed 1] [-cs 100,300,500]
//	        [-metrics FILE] [-events FILE] [-cpuprofile FILE] [-memprofile FILE]
//
//	nodesim -scenario scenarios/node.json [-quick] [-seed N]
//	        Run a declarative node scenario spec (internal/scenario) instead
//	        of the flag-driven grid; the spec's seed is used unless -seed is
//	        given explicitly.
//
// The observability flags record what a run did (node.preemptions, pprof
// profiles) without participating in it; see OBSERVABILITY.md.
//
// Exit codes: 0 on success, 1 on runtime failure, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lingerlonger/internal/cli"
	"lingerlonger/internal/node"
	"lingerlonger/internal/obs"
	"lingerlonger/internal/scenario"
	"lingerlonger/internal/workload"
)

func main() {
	cli.Run("nodesim", realMain)
}

func realMain() (err error) {
	var o cli.Obs
	o.RegisterFlags()
	var (
		dur      = flag.Float64("dur", 2000, "simulated seconds per point")
		seed     = flag.Int64("seed", 1, "simulation seed")
		csList   = flag.String("cs", "100,300,500", "effective context-switch times, microseconds")
		scenPath = flag.String("scenario", "", "run a node scenario spec `file` instead of the flag-driven grid")
		quick    = flag.Bool("quick", false, "scenario mode: smoke-run scale")
		workers  = flag.Int("workers", 1, "scenario mode: worker pool size")
	)
	cli.RegisterVersionFlag()
	flag.Parse()
	if cli.VersionRequested() {
		return cli.PrintVersion("nodesim")
	}
	if flag.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", flag.Arg(0))
	}
	if *scenPath == "" && (*quick || *workers != 1) {
		return cli.Usagef("-quick and -workers apply only with -scenario")
	}
	if err := o.Start(); err != nil {
		return err
	}
	defer o.Finish(&err)

	if *scenPath != "" {
		return runScenario(*scenPath, *seed, *quick, *workers, &o)
	}

	cfg := node.DefaultFig5Config()
	cfg.Duration = *dur
	cfg.Seed = *seed
	cfg.Rec = o.Recorder()
	cfg.ContextSwitches = nil
	for _, s := range strings.Split(*csList, ",") {
		us, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return cli.Usagef("bad -cs value %q: %v", s, err)
		}
		cfg.ContextSwitches = append(cfg.ContextSwitches, us*1e-6)
	}

	pts := node.Fig5(workload.DefaultTable(), cfg)
	fmt.Println("Figure 5 — Linger-Longer scheduling impact on one node")
	fmt.Printf("%8s %10s %10s %10s\n", "util", "cs (µs)", "LDR", "FCSR")
	for _, p := range pts {
		fmt.Printf("%7.0f%% %10.0f %9.2f%% %9.1f%%\n",
			100*p.Utilization, p.ContextSwitch*1e6, 100*p.LDR, 100*p.FCSR)
	}
	return nil
}

// runScenario runs a node scenario spec and prints the Figure-5 table for
// its expanded grid. An explicit -seed overrides the spec's seed, matching
// llsweep's precedence rule.
func runScenario(path string, seed int64, quick bool, workers int, o *cli.Obs) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := scenario.Decode(data)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	if spec.Kind != scenario.KindNode {
		return cli.Usagef("%s: kind %q (nodesim runs node scenarios; use lingersim for cluster ones)", path, spec.Kind)
	}
	seedSet := false
	flag.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "seed" })
	if seedSet {
		spec.Seed = seed
	}
	rec := o.Recorder()
	id, specs, err := scenario.Expand(spec, quick)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	rec.Counter(obs.ScenarioPointsExpanded).Add(int64(len(specs)))
	results, err := scenario.Run(workers, specs, rec)
	if err != nil {
		return err
	}
	digest, err := spec.Digest()
	if err != nil {
		return err
	}
	fmt.Printf("Scenario %s (seed %d, %d points, digest %.12s...)\n", id, spec.Seed, len(specs), digest)
	fmt.Printf("%8s %10s %10s %10s\n", "util", "cs (µs)", "LDR", "FCSR")
	for i, raw := range results {
		var pt scenario.NodePoint
		if err := json.Unmarshal(raw, &pt); err != nil {
			return fmt.Errorf("point %d: %w", i, err)
		}
		fmt.Printf("%7.0f%% %10.0f %9.2f%% %9.1f%%\n",
			100*pt.Utilization, pt.ContextSwitch*1e6, 100*pt.LDR, 100*pt.FCSR)
	}
	return nil
}
