// Command nodesim runs the single-node impact study (§4.1, Figure 5): the
// local job delay ratio (LDR) and fine-grain cycle stealing ratio (FCSR)
// of a lingering compute-bound foreign job across local utilization levels
// and effective context-switch times.
//
// Usage:
//
//	nodesim [-dur 2000] [-seed 1] [-cs 100,300,500]
//	        [-metrics FILE] [-events FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// The observability flags record what a run did (node.preemptions, pprof
// profiles) without participating in it; see OBSERVABILITY.md.
//
// Exit codes: 0 on success, 1 on runtime failure, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"lingerlonger/internal/cli"
	"lingerlonger/internal/node"
	"lingerlonger/internal/workload"
)

func main() {
	cli.Run("nodesim", realMain)
}

func realMain() (err error) {
	var o cli.Obs
	o.RegisterFlags()
	var (
		dur    = flag.Float64("dur", 2000, "simulated seconds per point")
		seed   = flag.Int64("seed", 1, "simulation seed")
		csList = flag.String("cs", "100,300,500", "effective context-switch times, microseconds")
	)
	cli.RegisterVersionFlag()
	flag.Parse()
	if cli.VersionRequested() {
		return cli.PrintVersion("nodesim")
	}
	if flag.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", flag.Arg(0))
	}
	if err := o.Start(); err != nil {
		return err
	}
	defer o.Finish(&err)

	cfg := node.DefaultFig5Config()
	cfg.Duration = *dur
	cfg.Seed = *seed
	cfg.Rec = o.Recorder()
	cfg.ContextSwitches = nil
	for _, s := range strings.Split(*csList, ",") {
		us, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return cli.Usagef("bad -cs value %q: %v", s, err)
		}
		cfg.ContextSwitches = append(cfg.ContextSwitches, us*1e-6)
	}

	pts := node.Fig5(workload.DefaultTable(), cfg)
	fmt.Println("Figure 5 — Linger-Longer scheduling impact on one node")
	fmt.Printf("%8s %10s %10s %10s\n", "util", "cs (µs)", "LDR", "FCSR")
	for _, p := range pts {
		fmt.Printf("%7.0f%% %10.0f %9.2f%% %9.1f%%\n",
			100*p.Utilization, p.ContextSwitch*1e6, 100*p.LDR, 100*p.FCSR)
	}
	return nil
}
