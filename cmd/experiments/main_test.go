package main

import (
	"bytes"
	"encoding/json"
	"io"
	"regexp"
	"strings"
	"testing"

	"lingerlonger/internal/obs"
)

// TestQuickReportDeterministicAcrossWorkers is the acceptance check for
// the parallel sweep runner: a -quick run with one worker and a -quick run
// with eight workers must produce byte-identical JSON (and identical
// Markdown bodies) for the same seed. Every sweep point derives its RNG
// from (seed, index), so the worker count may only change wall-clock.
func TestQuickReportDeterministicAcrossWorkers(t *testing.T) {
	type outcome struct {
		md   string
		json []byte
	}
	runWith := func(workers int) outcome {
		t.Helper()
		var md bytes.Buffer
		rep, err := run(options{Seed: 1, Quick: true, Workers: workers, JSON: true}, &md)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		js, err := marshalReport(rep)
		if err != nil {
			t.Fatalf("workers=%d: marshal: %v", workers, err)
		}
		return outcome{md: md.String(), json: js}
	}

	serial := runWith(1)
	parallel := runWith(8)

	if !bytes.Equal(serial.json, parallel.json) {
		t.Errorf("JSON differs between -workers 1 and -workers 8:\n%s",
			firstDiff(string(serial.json), string(parallel.json)))
	}

	// The Markdown body must match too; only the wall-clock footer may
	// differ between runs.
	if stripFooter(serial.md) != stripFooter(parallel.md) {
		t.Errorf("Markdown body differs between -workers 1 and -workers 8:\n%s",
			firstDiff(stripFooter(serial.md), stripFooter(parallel.md)))
	}

	// Sanity on the report itself: all 13 experiments present with data.
	var rep Report
	if err := json.Unmarshal(serial.json, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 13 {
		t.Errorf("report has %d figures, want 13", len(rep.Figures))
	}
	for _, f := range rep.Figures {
		if len(f.Points) == 0 {
			t.Errorf("figure %q has no points", f.ID)
		}
		if f.WallMS != 0 {
			t.Errorf("figure %q embeds wall-clock without -timing", f.ID)
		}
	}
}

// TestQuickReportSeedSensitivity guards against the opposite failure: if a
// different seed produced identical results, the determinism test above
// would be vacuous.
func TestQuickReportSeedSensitivity(t *testing.T) {
	rep1, err := run(options{Seed: 1, Quick: true, Workers: 4, JSON: true}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := run(options{Seed: 2, Quick: true, Workers: 4, JSON: true}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := marshalReport(rep1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := marshalReport(rep2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b2) {
		t.Error("seeds 1 and 2 produced identical reports; seed is not reaching the sweeps")
	}
}

// TestQuickReportDeterministicWithMetrics is the side-channel acceptance
// check for the observability layer: instrumenting a run must not change
// its results, and the deterministic slice of the metrics themselves (the
// counters, which are sums of per-simulation tallies) must be identical
// for any worker count. Wall-clock artifacts (gauges, the point-latency
// histogram) are exempt by design — they live only in the -metrics file
// and are documented as machine-dependent.
func TestQuickReportDeterministicWithMetrics(t *testing.T) {
	type outcome struct {
		md       string
		json     []byte
		counters map[string]int64
		metrics  []byte
	}
	runWith := func(workers int, instrument bool) outcome {
		t.Helper()
		var rec *obs.Recorder
		if instrument {
			rec = obs.New(obs.NewRegistry(), nil)
		}
		var md bytes.Buffer
		rep, err := run(options{Seed: 1, Quick: true, Workers: workers, JSON: true, Rec: rec}, &md)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		js, err := marshalReport(rep)
		if err != nil {
			t.Fatalf("workers=%d: marshal: %v", workers, err)
		}
		out := outcome{md: md.String(), json: js}
		if instrument {
			out.counters = rec.Registry().CounterValues()
			var mbuf bytes.Buffer
			if err := rec.Registry().WriteJSON(&mbuf); err != nil {
				t.Fatalf("workers=%d: metrics: %v", workers, err)
			}
			out.metrics = mbuf.Bytes()
		}
		return out
	}

	serial := runWith(1, true)
	parallel := runWith(8, true)
	plain := runWith(4, false)

	// Instrumentation is a side channel: the JSON report of an
	// instrumented run must equal an uninstrumented run's byte for byte.
	if !bytes.Equal(serial.json, plain.json) {
		t.Errorf("enabling metrics changed the JSON report:\n%s",
			firstDiff(string(serial.json), string(plain.json)))
	}
	if !bytes.Equal(serial.json, parallel.json) {
		t.Errorf("instrumented JSON differs between -workers 1 and -workers 8:\n%s",
			firstDiff(string(serial.json), string(parallel.json)))
	}

	// The Markdown — including the metrics appendix — must match across
	// worker counts once the one legitimately varying line is normalized.
	wallRE := regexp.MustCompile(`Total run time: [^\n]*`)
	norm := func(s string) string { return wallRE.ReplaceAllString(s, "Total run time: X") }
	if norm(serial.md) != norm(parallel.md) {
		t.Errorf("instrumented Markdown differs between -workers 1 and -workers 8:\n%s",
			firstDiff(norm(serial.md), norm(parallel.md)))
	}
	if !strings.Contains(serial.md, "## Appendix: metrics") {
		t.Errorf("instrumented run did not render the metrics appendix")
	}
	if strings.Contains(plain.md, "## Appendix: metrics") {
		t.Errorf("uninstrumented run rendered a metrics appendix")
	}

	// Counter-for-counter equality, with a few spot checks that the
	// instrumentation reached every layer.
	if len(serial.counters) == 0 {
		t.Fatal("instrumented run recorded no counters")
	}
	for name, v := range serial.counters {
		if pv, ok := parallel.counters[name]; !ok || pv != v {
			t.Errorf("counter %q: workers=1 has %d, workers=8 has %v", name, v, pv)
		}
	}
	for name, pv := range parallel.counters {
		if _, ok := serial.counters[name]; !ok {
			t.Errorf("counter %q only present with workers=8 (value %d)", name, pv)
		}
	}
	for _, want := range []string{
		obs.SimEventsFired,
		obs.NodePreemptions,
		obs.BSPPhases,
		obs.ExpPointsComputed,
		obs.Labeled(obs.ClusterMigrations, "policy", "LL"),
	} {
		if serial.counters[want] == 0 {
			t.Errorf("counter %q is zero after a full -quick run; a layer lost its wiring", want)
		}
	}

	// Both dumps must satisfy the published schema.
	for workers, m := range map[int][]byte{1: serial.metrics, 8: parallel.metrics} {
		if err := obs.ValidateMetricsJSON(m); err != nil {
			t.Errorf("workers=%d metrics dump fails schema validation: %v", workers, err)
		}
	}
}

// stripFooter drops the "Total run time" trailer, the only Markdown line
// that legitimately varies between two runs of the same configuration.
func stripFooter(md string) string {
	if i := strings.LastIndex(md, "\n---\nTotal run time:"); i >= 0 {
		return md[:i]
	}
	return md
}

// firstDiff renders the first differing region of two strings.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+80, i+80
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return "a: ..." + a[lo:hiA] + "...\nb: ..." + b[lo:hiB] + "..."
		}
	}
	return "(one output is a prefix of the other)"
}
