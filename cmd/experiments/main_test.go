package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

// TestQuickReportDeterministicAcrossWorkers is the acceptance check for
// the parallel sweep runner: a -quick run with one worker and a -quick run
// with eight workers must produce byte-identical JSON (and identical
// Markdown bodies) for the same seed. Every sweep point derives its RNG
// from (seed, index), so the worker count may only change wall-clock.
func TestQuickReportDeterministicAcrossWorkers(t *testing.T) {
	type outcome struct {
		md   string
		json []byte
	}
	runWith := func(workers int) outcome {
		t.Helper()
		var md bytes.Buffer
		rep, err := run(options{Seed: 1, Quick: true, Workers: workers, JSON: true}, &md)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		js, err := marshalReport(rep)
		if err != nil {
			t.Fatalf("workers=%d: marshal: %v", workers, err)
		}
		return outcome{md: md.String(), json: js}
	}

	serial := runWith(1)
	parallel := runWith(8)

	if !bytes.Equal(serial.json, parallel.json) {
		t.Errorf("JSON differs between -workers 1 and -workers 8:\n%s",
			firstDiff(string(serial.json), string(parallel.json)))
	}

	// The Markdown body must match too; only the wall-clock footer may
	// differ between runs.
	if stripFooter(serial.md) != stripFooter(parallel.md) {
		t.Errorf("Markdown body differs between -workers 1 and -workers 8:\n%s",
			firstDiff(stripFooter(serial.md), stripFooter(parallel.md)))
	}

	// Sanity on the report itself: all 13 experiments present with data.
	var rep Report
	if err := json.Unmarshal(serial.json, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 13 {
		t.Errorf("report has %d figures, want 13", len(rep.Figures))
	}
	for _, f := range rep.Figures {
		if len(f.Points) == 0 {
			t.Errorf("figure %q has no points", f.ID)
		}
		if f.WallMS != 0 {
			t.Errorf("figure %q embeds wall-clock without -timing", f.ID)
		}
	}
}

// TestQuickReportSeedSensitivity guards against the opposite failure: if a
// different seed produced identical results, the determinism test above
// would be vacuous.
func TestQuickReportSeedSensitivity(t *testing.T) {
	rep1, err := run(options{Seed: 1, Quick: true, Workers: 4, JSON: true}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := run(options{Seed: 2, Quick: true, Workers: 4, JSON: true}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := marshalReport(rep1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := marshalReport(rep2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b2) {
		t.Error("seeds 1 and 2 produced identical reports; seed is not reaching the sweeps")
	}
}

// stripFooter drops the "Total run time" trailer, the only Markdown line
// that legitimately varies between two runs of the same configuration.
func stripFooter(md string) string {
	if i := strings.LastIndex(md, "\n---\nTotal run time:"); i >= 0 {
		return md[:i]
	}
	return md
}

// firstDiff renders the first differing region of two strings.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+80, i+80
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return "a: ..." + a[lo:hiA] + "...\nb: ..." + b[lo:hiB] + "..."
		}
	}
	return "(one output is a prefix of the other)"
}
