package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"lingerlonger/internal/checkpoint"
	"lingerlonger/internal/cli"
	"lingerlonger/internal/exp"
)

var update = flag.Bool("update", false, "rewrite the golden report under testdata/")

// TestKillAndResumeByteIdentical is the tentpole acceptance test: a run
// killed mid-sweep (via the checkpoint layer's injected crash, which
// leaves exactly the on-disk state a real kill would) and then resumed
// must emit byte-identical Markdown and JSON to an uninterrupted run —
// for both a serial and a parallel pool.
func TestKillAndResumeByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base := options{Seed: 1, Quick: true, Workers: workers, JSON: true}

			var refMD bytes.Buffer
			refRep, err := run(base, &refMD)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			refJSON, err := marshalReport(refRep)
			if err != nil {
				t.Fatal(err)
			}

			// First attempt: checkpoint to dir, crash after 10 saves.
			dir := filepath.Join(t.TempDir(), "ckpt")
			crash := base
			crash.Checkpoint = dir
			crash.CrashAfter = 10
			if _, err := run(crash, io.Discard); !errors.Is(err, checkpoint.ErrInjectedCrash) {
				t.Fatalf("crashed run: err = %v, want ErrInjectedCrash", err)
			}

			// Second attempt: resume from the partial checkpoint.
			var st exp.Stats
			resume := base
			resume.Resume = dir
			resume.StatsOut = &st
			var resMD bytes.Buffer
			resRep, err := run(resume, &resMD)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			resJSON, err := marshalReport(resRep)
			if err != nil {
				t.Fatal(err)
			}

			if st.Restored == 0 {
				t.Error("resume restored no points; the crash left no checkpoint to use")
			}
			if st.Computed == 0 {
				t.Error("resume computed no points; the crash test is vacuous")
			}
			if !bytes.Equal(refJSON, resJSON) {
				t.Errorf("resumed JSON differs from the uninterrupted run:\n%s",
					firstDiff(string(refJSON), string(resJSON)))
			}
			if stripFooter(refMD.String()) != stripFooter(resMD.String()) {
				t.Errorf("resumed Markdown differs from the uninterrupted run:\n%s",
					firstDiff(stripFooter(refMD.String()), stripFooter(resMD.String())))
			}
		})
	}
}

// TestResumeRefusesMismatchedRun guards against silently mixing snapshots
// from a different seed into a resumed run.
func TestResumeRefusesMismatchedRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	crash := options{Seed: 1, Quick: true, Workers: 4, Checkpoint: dir, CrashAfter: 5}
	if _, err := run(crash, io.Discard); !errors.Is(err, checkpoint.ErrInjectedCrash) {
		t.Fatalf("crashed run: %v", err)
	}
	bad := options{Seed: 2, Quick: true, Workers: 4, Resume: dir}
	_, err := run(bad, io.Discard)
	var mm *checkpoint.MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("resume with a different seed: err = %v, want *MismatchError", err)
	}
}

// TestFailSoftCompletesAroundFaultedPoint is the fail-soft acceptance
// test: with an injected panic at one sweep point, the run must still
// complete, report partial results with a failure manifest naming the
// point, exit via cli.ErrPartial, and leak no goroutines.
func TestFailSoftCompletesAroundFaultedPoint(t *testing.T) {
	baseline := runtime.NumGoroutine()

	dir := filepath.Join(t.TempDir(), "ckpt")
	opts := options{
		Seed: 1, Quick: true, Workers: 8, JSON: true,
		FailSoft:   true,
		FaultPoint: "fig9:2:panic",
		Checkpoint: dir,
	}
	rep, err := run(opts, io.Discard)
	if !errors.Is(err, cli.ErrPartial) {
		t.Fatalf("err = %v, want cli.ErrPartial", err)
	}
	if rep == nil {
		t.Fatal("fail-soft run returned no report")
	}

	// The failure manifest must name the faulted point, in the report...
	if len(rep.Failures) != 1 || rep.Failures[0].Sweep != "fig9" || rep.Failures[0].Index != 2 {
		t.Errorf("report failures = %+v, want exactly fig9[2]", rep.Failures)
	}
	// ... and on disk, next to the checkpoint.
	onDisk, derr := checkpoint.ReadFailures(dir)
	if derr != nil {
		t.Fatal(derr)
	}
	if len(onDisk) != 1 || onDisk[0].Sweep != "fig9" || onDisk[0].Index != 2 {
		t.Errorf("disk failures = %+v, want exactly fig9[2]", onDisk)
	}

	// Every figure still reports data (the failed point is zero-valued,
	// not dropped, so downstream shapes stay aligned).
	if len(rep.Figures) != 13 {
		t.Errorf("report has %d figures, want 13", len(rep.Figures))
	}
	for _, f := range rep.Figures {
		if len(f.Points) == 0 {
			t.Errorf("figure %q has no points", f.ID)
		}
	}

	waitForGoroutineBaseline(t, baseline)
}

// TestFailSoftRetrySucceedsOnFlakyPoint: a fault that fires only on the
// first attempt is healed by -retries and never surfaces as a failure.
func TestFailSoftRetrySucceedsOnFlakyPoint(t *testing.T) {
	base := options{Seed: 1, Quick: true, Workers: 4, JSON: true}
	refRep, err := run(base, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := marshalReport(refRep)
	if err != nil {
		t.Fatal(err)
	}

	flaky := base
	flaky.Retries = 2
	flaky.FaultPoint = "fig10:1:flaky" // fails attempt 1 only
	var st exp.Stats
	flaky.StatsOut = &st
	rep, err := run(flaky, io.Discard)
	if err != nil {
		t.Fatalf("retried run: %v", err)
	}
	if st.Retried == 0 {
		t.Error("fault hook never fired; the retry test is vacuous")
	}
	js, err := marshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, js) {
		t.Errorf("retried run differs from the clean run:\n%s", firstDiff(string(refJSON), string(js)))
	}
}

// TestGoldenQuickReport pins the byte-exact -quick -json output for seed 1.
// Any intentional change to results or report layout must regenerate the
// golden file with `go test ./cmd/experiments -run Golden -update` and the
// diff must be justified in review.
func TestGoldenQuickReport(t *testing.T) {
	rep, err := run(options{Seed: 1, Quick: true, Workers: 4, JSON: true}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got, err := marshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "quick-seed1.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("quick report deviates from %s (regenerate with -update if intended):\n%s",
			golden, firstDiff(string(want), string(got)))
	}
}

// waitForGoroutineBaseline polls until the goroutine count returns to (or
// below) the pre-test baseline, failing after two seconds.
func waitForGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now vs %d at baseline", runtime.NumGoroutine(), baseline)
}
