package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"lingerlonger/internal/checkpoint"
)

// The JSON report is the machine-readable twin of the Markdown report: the
// same per-figure points, plus the seed and the result-determining corpus
// configuration. It exists so benchmark trajectories (BENCH_*.json) can be
// diffed across PRs.
//
// Determinism contract: with timing disabled (the default) the marshalled
// bytes are a pure function of (seed, quick) — the worker count is
// deliberately excluded, because it is an execution detail that never
// affects results. `experiments -quick -json a.json -workers 1` and
// `-workers 8` write byte-identical files. Wall-clock fields are only
// embedded when -timing is set, since timing is machine-dependent and
// would break byte-stable diffs.

// Report is the top-level JSON document written by -json.
type Report struct {
	// SchemaVersion increments when the document layout changes shape.
	SchemaVersion int `json:"schema_version"`
	// Seed is the master seed every figure's per-run seeds derive from.
	Seed int64 `json:"seed"`
	// Config records the result-determining parameters of the run.
	Config RunConfig `json:"config"`
	// Figures holds one entry per experiment, in report order.
	Figures []Figure `json:"figures"`
	// Failures lists the sweep points that failed in a fail-soft run
	// (absent from healthy runs, keeping their bytes unchanged). Points
	// belonging to a failed sweep index carry zero values.
	Failures []checkpoint.Failure `json:"failures,omitempty"`
	// TotalWallMS is the whole run's wall-clock (with -timing only).
	TotalWallMS float64 `json:"total_wall_ms,omitempty"`
}

// RunConfig is the corpus/duration configuration the results depend on.
type RunConfig struct {
	Quick         bool    `json:"quick"`
	Machines      int     `json:"machines"`
	Days          int     `json:"days"`
	ThroughputDur float64 `json:"throughput_dur_s"`
}

// Figure is one experiment's machine-readable results.
type Figure struct {
	// ID is a stable short key ("fig9", "sec32", "arrivals", ...).
	ID string `json:"id"`
	// Title is the human heading, matching the Markdown section.
	Title string `json:"title"`
	// WallMS is the figure's wall-clock in milliseconds (with -timing
	// only). With parallel figures enabled it measures the whole fan-out.
	WallMS float64 `json:"wall_ms,omitempty"`
	// Points is the figure's data; every point is a flat key/value map.
	// encoding/json sorts map keys, keeping the output byte-stable.
	Points []Point `json:"points"`
}

// Point is one data point of a figure. Values are numbers or strings;
// non-finite floats are encoded via jnum since JSON has no Inf/NaN.
type Point map[string]any

// jnum converts a float for JSON embedding: +/-Inf and NaN (which
// encoding/json rejects) become the strings "inf", "-inf" and "nan".
func jnum(v float64) any {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	default:
		return v
	}
}

// addFigure appends a figure to the report (no-op when JSON output is off).
func (r *reporter) addFigure(id, title string, points []Point) {
	if r.report == nil {
		return
	}
	r.report.Figures = append(r.report.Figures, Figure{ID: id, Title: title, Points: points})
}

// marshalReport renders the report deterministically: two-space indent,
// trailing newline, map keys sorted by encoding/json.
func marshalReport(rep *Report) ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// writeReport writes the JSON document to path.
func writeReport(rep *Report, path string) error {
	b, err := marshalReport(rep)
	if err != nil {
		return fmt.Errorf("experiments: marshal JSON report: %w", err)
	}
	return os.WriteFile(path, b, 0o644)
}
