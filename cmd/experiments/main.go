// Command experiments runs every experiment of the paper (Figures 2-13
// and the §3.2/§4 statistics) and emits a Markdown report comparing the
// paper's reported values with the measured ones — the generator for
// EXPERIMENTS.md — plus, optionally, a machine-readable JSON twin.
//
// Usage:
//
//	experiments [-seed 1] [-quick] [-out EXPERIMENTS.md]
//	            [-workers 0] [-json results.json] [-timing]
//	            [-checkpoint DIR | -resume DIR] [-failsoft]
//	            [-retries 0] [-point-timeout 0]
//	            [-metrics FILE] [-events FILE]
//	            [-cpuprofile FILE] [-memprofile FILE]
//
// -quick shrinks the trace corpus and durations for a fast smoke run.
// -workers sets the sweep worker-pool size (0 = GOMAXPROCS); every sweep
// point derives its RNG from (seed, index), so the worker count changes
// wall-clock only, never a result. -json writes per-figure points, the
// seed and the corpus config as JSON; the file is byte-identical for any
// -workers value unless -timing also embeds (machine-dependent)
// wall-clock figures.
//
// -checkpoint DIR persists every completed sweep point to DIR (creating
// or resuming it); -resume DIR additionally requires DIR to hold a
// matching run. Because each point is a pure function of (seed, sweep,
// index), a resumed run's output is byte-identical to an uninterrupted
// one. -failsoft finishes the run even when points fail: failed points
// report zero values, a failure manifest names them, and the exit code is
// 3 (see DESIGN.md §10). Exit codes: 0 success, 1 runtime failure,
// 2 usage error, 3 partial results.
//
// -metrics dumps every counter/gauge/histogram the run touched as JSON
// (schema in OBSERVABILITY.md; validate with cmd/obscheck) and appends
// the deterministic counter table to the Markdown report; -events writes
// a JSONL event trace; -cpuprofile/-memprofile write pprof profiles. All
// four are side channels: enabling them never changes results.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"lingerlonger/internal/apps"
	"lingerlonger/internal/checkpoint"
	"lingerlonger/internal/cli"
	"lingerlonger/internal/cluster"
	"lingerlonger/internal/core"
	"lingerlonger/internal/exp"
	"lingerlonger/internal/node"
	"lingerlonger/internal/obs"
	"lingerlonger/internal/parallel"
	"lingerlonger/internal/stats"
	"lingerlonger/internal/trace"
	"lingerlonger/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	cli.Run("experiments", realMain)
}

func realMain() (err error) {
	var o cli.Obs
	o.RegisterFlags()
	var (
		seed    = flag.Int64("seed", 1, "master seed")
		quick   = flag.Bool("quick", false, "smaller corpus and durations")
		out     = flag.String("out", "", "write the report to this file instead of stdout")
		workers = flag.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
		jsonOut = flag.String("json", "", "also write machine-readable results to this file")
		timing  = flag.Bool("timing", false, "embed wall-clock per figure in the JSON (machine-dependent; breaks byte-stable diffs)")

		ckptDir    = flag.String("checkpoint", "", "checkpoint completed sweep points into this directory (created or resumed)")
		resumeDir  = flag.String("resume", "", "resume a checkpointed run from this directory (must exist and match seed/config)")
		failSoft   = flag.Bool("failsoft", false, "finish the run despite failed sweep points; exit 3 with a failure manifest")
		retries    = flag.Int("retries", 0, "extra attempts per sweep point after a transient failure")
		pointTO    = flag.Duration("point-timeout", 0, "per-point watchdog deadline (0 = none)")
		crashAfter = flag.Int("crashafter", 0, "TESTING: abort after N checkpoint saves, simulating a mid-run kill")
		faultPoint = flag.String("faultpoint", "", "TESTING: inject a fault at sweep:index:mode (mode: panic, error, flaky, hang)")
	)
	cli.RegisterVersionFlag()
	flag.Parse()
	if cli.VersionRequested() {
		return cli.PrintVersion("experiments")
	}
	if flag.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", flag.Arg(0))
	}
	if *ckptDir != "" && *resumeDir != "" {
		return cli.Usagef("-checkpoint and -resume are mutually exclusive; -resume already checkpoints")
	}
	if *retries < 0 {
		return cli.Usagef("-retries must be >= 0, got %d", *retries)
	}
	if err := o.Start(); err != nil {
		return err
	}
	defer o.Finish(&err)

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	opts := options{
		Seed: *seed, Quick: *quick, Workers: *workers, Timing: *timing, JSON: *jsonOut != "",
		Checkpoint: *ckptDir, Resume: *resumeDir, FailSoft: *failSoft,
		Retries: *retries, PointTimeout: *pointTO,
		CrashAfter: *crashAfter, FaultPoint: *faultPoint,
		Rec: o.Recorder(),
	}
	rep, err := run(opts, w)
	if rep != nil && *jsonOut != "" {
		// Partial (fail-soft) results are still written; the exit code and
		// the failure manifest carry the signal.
		if werr := writeReport(rep, *jsonOut); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// options collects the command-line switches in a form run can be called
// with directly (the determinism and resume tests drive run without a
// process).
type options struct {
	Seed    int64
	Quick   bool
	Workers int  // sweep pool size; <= 0 selects GOMAXPROCS
	Timing  bool // embed wall-clock in the JSON report
	JSON    bool // collect the JSON report at all

	Checkpoint   string        // checkpoint dir (created or resumed); "" = off
	Resume       string        // like Checkpoint, but the run must already exist
	FailSoft     bool          // finish despite failed points; exit 3
	Retries      int           // extra attempts per point
	PointTimeout time.Duration // per-point watchdog deadline; 0 = none

	CrashAfter int    // testing: fail checkpoint saves after this many succeed
	FaultPoint string // testing: "sweep:index:mode" fault injection

	// Rec, when non-nil, instruments the run: counters and histograms
	// accumulate in its registry and the Markdown report grows a metrics
	// appendix. Metrics are outputs only — no experiment reads them — so
	// enabling them never changes a result (DESIGN.md §11).
	Rec *obs.Recorder

	// StatsOut, when non-nil, receives the runner's counters after the
	// run — the resume tests assert Restored > 0 through it.
	StatsOut *exp.Stats
}

// fingerprint returns the checkpoint Meta config string: every
// result-determining parameter except the seed (which Meta carries
// separately). Workers, retries and timeouts are execution details that
// never change a result, so they are deliberately absent — a run may be
// resumed with different parallelism.
func (o options) fingerprint(machines, days int, tpDur float64) string {
	return fmt.Sprintf("quick=%t machines=%d days=%d tpdur=%g", o.Quick, machines, days, tpDur)
}

// run executes every experiment, writes the Markdown report to w, and
// returns the JSON report (nil Figures when opts.JSON is false). In
// fail-soft mode a run with failed points returns the report AND an error
// wrapping cli.ErrPartial; every other error is fatal.
func run(opts options, w io.Writer) (*Report, error) {
	machines, days := 16, 7
	tpDur := 3600.0
	if opts.Quick {
		machines, days = 6, 2
		tpDur = 900
	}

	runner := exp.NewRunner(opts.Workers)
	runner.Attempts = opts.Retries + 1
	runner.Timeout = opts.PointTimeout
	runner.FailSoft = opts.FailSoft
	runner.Rec = opts.Rec
	if opts.FaultPoint != "" {
		hook, err := parseFaultPoint(opts.FaultPoint)
		if err != nil {
			return nil, err
		}
		runner.FaultHook = hook
	}

	var ckpt *checkpoint.Run
	if dir := opts.Checkpoint; dir != "" || opts.Resume != "" {
		meta := checkpoint.Meta{
			Schema: checkpoint.SchemaVersion,
			Seed:   opts.Seed,
			Config: opts.fingerprint(machines, days, tpDur),
		}
		var err error
		if opts.Resume != "" {
			ckpt, err = checkpoint.Open(opts.Resume, meta)
		} else {
			ckpt, err = checkpoint.OpenOrCreate(dir, meta)
		}
		if err != nil {
			return nil, err
		}
		runner.Store = ckpt
		if opts.CrashAfter > 0 {
			ckpt.FailAfter(opts.CrashAfter, nil)
		}
	}

	start := time.Now()
	r := &reporter{w: w, seed: opts.Seed, workers: opts.Workers, runner: runner, rec: opts.Rec}
	if opts.JSON {
		r.report = &Report{
			SchemaVersion: 1,
			Seed:          opts.Seed,
			Config: RunConfig{
				Quick:         opts.Quick,
				Machines:      machines,
				Days:          days,
				ThroughputDur: tpDur,
			},
		}
	}

	fmt.Fprintf(w, "# EXPERIMENTS — paper vs. measured\n\n")
	fmt.Fprintf(w, "Generated by `go run ./cmd/experiments -seed %d` (corpus: %d machines x %d days).\n",
		opts.Seed, machines, days)
	fmt.Fprintf(w, "Absolute numbers come from a synthetic substrate (DESIGN.md §2); the shapes —\n")
	fmt.Fprintf(w, "who wins, by what factor, where crossovers fall — are the reproduction target.\n")
	fmt.Fprintf(w, "Sweeps run on the internal/exp worker pool with per-point derived seeds, so\n")
	fmt.Fprintf(w, "every number is identical for any `-workers` value (DESIGN.md §8). Before the\n")
	fmt.Fprintf(w, "pool (PR 1) a full serial generation took 16.0 s on the reference container;\n")
	fmt.Fprintf(w, "the footer records this run's wall-clock.\n\n")

	tcfg := trace.DefaultConfig()
	tcfg.Days = days
	corpus, err := trace.GenerateCorpus(tcfg, machines, stats.NewRNG(opts.Seed))
	if err != nil {
		return nil, err
	}
	table := workload.DefaultTable()

	// -timing is a view over the metric registry: every step's wall-clock
	// lands in an exp.figure_seconds{figure=...} gauge (steps run
	// sequentially, so a last-write-wins gauge is exact) and the JSON
	// report reads the values back from the registry. Without -metrics the
	// registry is private to this run and never exported.
	treg := opts.Rec.Registry()
	if treg == nil && opts.Timing {
		treg = obs.NewRegistry()
	}

	steps := []struct {
		name string
		fn   func() error
	}{
		{"fig2", func() error { return r.fig2(table) }},
		{"fig3", func() error { return r.fig3(table) }},
		{"sec32", func() error { return r.sec32(corpus) }},
		{"fig4", func() error { return r.fig4(corpus) }},
		{"fig5", func() error { return r.fig5(table) }},
		{"fig7_8", func() error { return r.fig7and8(corpus, tpDur) }},
		{"fig9", r.fig9},
		{"fig10", r.fig10},
		{"fig11", r.fig11},
		{"fig12", r.fig12},
		{"fig13", r.fig13},
		{"arrivals", func() error { return r.arrivals(corpus) }},
		{"hybrid", r.hybrid},
	}
	for _, step := range steps {
		before := 0
		if r.report != nil {
			before = len(r.report.Figures)
		}
		t0 := time.Now()
		if err := step.fn(); err != nil {
			return nil, err
		}
		g := treg.Gauge(obs.Labeled(obs.ExpFigureSeconds, "figure", step.name))
		g.Set(time.Since(t0).Seconds())
		if r.report != nil && opts.Timing {
			secs, _ := g.Value()
			ms := math.Round(secs*1e6) / 1000
			for i := before; i < len(r.report.Figures); i++ {
				r.report.Figures[i].WallMS = ms
			}
		}
	}

	total := time.Since(start)
	fmt.Fprintf(w, "\n---\nTotal run time: %s\n", total.Round(time.Millisecond))
	if r.report != nil && opts.Timing {
		r.report.TotalWallMS = float64(total.Microseconds()) / 1000
	}
	if reg := opts.Rec.Registry(); reg != nil {
		writeMetricsAppendix(w, reg)
	}

	st := runner.Stats()
	if opts.StatsOut != nil {
		*opts.StatsOut = st
	}
	if st.Restored > 0 || st.Retried > 0 {
		log.Printf("sweep points: %d computed, %d restored from checkpoint, %d retried",
			st.Computed, st.Restored, st.Retried)
	}

	fails := runner.Failures()
	if r.report != nil {
		r.report.Failures = failureManifest(fails)
	}
	if ckpt != nil {
		// Persist (or, after a clean run, clear) the failure manifest.
		if err := ckpt.WriteFailures(failureManifest(fails)); err != nil {
			return r.report, err
		}
	}
	if len(fails) > 0 {
		return r.report, fmt.Errorf("%d sweep point(s) failed, first %s[%d]: %v: %w",
			len(fails), fails[0].Sweep, fails[0].Index, fails[0].Err, cli.ErrPartial)
	}
	return r.report, nil
}

// writeMetricsAppendix renders the run's counters as a Markdown table.
// Counters only: they are sums of deterministic per-simulation tallies, so
// the appendix — like the rest of the report — is byte-identical for any
// -workers value. Gauges and histogram shapes stay in the -metrics JSON.
func writeMetricsAppendix(w io.Writer, reg *obs.Registry) {
	names := reg.CounterNames()
	if len(names) == 0 {
		return
	}
	vals := reg.CounterValues()
	fmt.Fprintf(w, "\n## Appendix: metrics (deterministic counters)\n\n")
	fmt.Fprintf(w, "Collected because the run was instrumented (`-metrics`); see\nOBSERVABILITY.md for each counter's meaning and paper mapping.\n\n")
	fmt.Fprintf(w, "| counter | value |\n|---|---|\n")
	for _, n := range names {
		fmt.Fprintf(w, "| %s | %d |\n", n, vals[n])
	}
}

// failureManifest converts runner failures to the checkpoint manifest
// entries (also embedded in the JSON report).
func failureManifest(fails []*exp.PointError) []checkpoint.Failure {
	out := make([]checkpoint.Failure, 0, len(fails))
	for _, f := range fails {
		out = append(out, checkpoint.Failure{
			Sweep: f.Sweep, Index: f.Index, Attempts: f.Attempts, Error: f.Err.Error(),
		})
	}
	return out
}

// parseFaultPoint builds the test-only fault-injection hook from a
// "sweep:index:mode" spec. The fault fires on every attempt of the
// matching point, so retries cannot mask it.
func parseFaultPoint(spec string) (func(sweep string, index, attempt int) error, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return nil, cli.Usagef("-faultpoint %q: want sweep:index:mode", spec)
	}
	sweep, mode := parts[0], parts[2]
	index, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, cli.Usagef("-faultpoint %q: bad index %q", spec, parts[1])
	}
	switch mode {
	case "panic", "error", "flaky", "hang":
	default:
		return nil, cli.Usagef("-faultpoint %q: unknown mode %q (want panic, error, flaky or hang)", spec, mode)
	}
	return func(s string, i, attempt int) error {
		if s != sweep || i != index {
			return nil
		}
		switch mode {
		case "panic":
			panic(fmt.Sprintf("injected fault at %s[%d] (attempt %d)", s, i, attempt))
		case "hang":
			select {} // runaway point; only the watchdog can abandon it
		case "flaky":
			if attempt > 1 {
				return nil // healed by -retries
			}
			return fmt.Errorf("injected flaky fault at %s[%d] (attempt %d)", s, i, attempt)
		default:
			return fmt.Errorf("injected fault at %s[%d] (attempt %d)", s, i, attempt)
		}
	}, nil
}

type reporter struct {
	w       io.Writer
	seed    int64
	workers int
	runner  *exp.Runner
	rec     *obs.Recorder // nil when the run is uninstrumented
	report  *Report       // nil when -json is off
}

func (r *reporter) section(title string) { fmt.Fprintf(r.w, "## %s\n\n", title) }

func (r *reporter) fig2(table *workload.Table) error {
	r.section("E1 — Figure 2: burst CDFs vs. hyperexponential fit")
	series := workload.Fig2(table, []float64{0.10, 0.50}, 50000, stats.NewRNG(r.seed))
	fmt.Fprintf(r.w, "Paper: \"the curves almost exactly match\". Measured Kolmogorov–Smirnov\ndistances between sampled bursts and the method-of-moments fit:\n\n")
	fmt.Fprintf(r.w, "| series | KS distance |\n|---|---|\n")
	var pts []Point
	for _, s := range series {
		kind := "idle"
		if s.Run {
			kind = "run"
		}
		fmt.Fprintf(r.w, "| %s bursts @ %.0f%% | %.4f |\n", kind, 100*s.Utilization, s.KSDistance)
		pts = append(pts, Point{"series": kind, "utilization": jnum(s.Utilization), "ks_distance": jnum(s.KSDistance)})
	}
	fmt.Fprintln(r.w)
	r.addFigure("fig2", "Figure 2: burst CDFs vs. hyperexponential fit", pts)
	return nil
}

func (r *reporter) fig3(table *workload.Table) error {
	r.section("E2 — Figure 3: workload parameters")
	fmt.Fprintf(r.w, "Run-burst mean grows convexly to 0.25 s at 100%% utilization; idle-burst mean\ndecays to 0 (paper's curve shapes). Selected buckets:\n\n")
	fmt.Fprintf(r.w, "| util | run mean (s) | run var | idle mean (s) | idle var |\n|---|---|---|---|---|\n")
	var pts []Point
	for _, row := range workload.Fig3(table) {
		pts = append(pts, Point{
			"utilization": jnum(row.Utilization),
			"run_mean":    jnum(row.RunMean), "run_var": jnum(row.RunVar),
			"idle_mean": jnum(row.IdleMean), "idle_var": jnum(row.IdleVar),
		})
		u := int(math.Round(100 * row.Utilization))
		if u%20 != 0 && u != 10 && u != 50 {
			continue
		}
		fmt.Fprintf(r.w, "| %d%% | %.4f | %.5f | %.4f | %.5f |\n",
			u, row.RunMean, row.RunVar, row.IdleMean, row.IdleVar)
	}
	fmt.Fprintf(r.w, "\nPaper anchors: run mean ~0.01 s at 10%%, ~0.05 s at 50%%, 0.25 s at 100%%;\nrun variance ~0.09 s² at 100%%. All reproduced. (Idle means are larger than\nthe paper's because we derive them from the utilization identity; see\nDESIGN.md §2.)\n\n")
	r.addFigure("fig3", "Figure 3: workload parameters", pts)
	return nil
}

func (r *reporter) sec32(corpus []*trace.Trace) error {
	r.section("E12 — §3.2 coarse-grain availability statistics")
	cs := trace.Analyze(corpus)
	fmt.Fprintf(r.w, "| statistic | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(r.w, "| time in non-idle state | 46%% | %.1f%% |\n", 100*cs.NonIdleFraction)
	fmt.Fprintf(r.w, "| non-idle samples below 10%% CPU | 76%% | %.1f%% |\n", 100*cs.FracNonIdleBelow10)
	fmt.Fprintf(r.w, "| mean CPU, non-idle intervals | (low) | %.1f%% |\n", 100*cs.MeanCPUNonIdle)
	fmt.Fprintf(r.w, "\n")
	r.addFigure("sec32", "§3.2 coarse-grain availability statistics", []Point{{
		"non_idle_fraction":      jnum(cs.NonIdleFraction),
		"frac_non_idle_below_10": jnum(cs.FracNonIdleBelow10),
		"mean_cpu_non_idle":      jnum(cs.MeanCPUNonIdle),
	}})
	return nil
}

func (r *reporter) fig4(corpus []*trace.Trace) error {
	r.section("E3 — Figure 4: available-memory CDF")
	all, idle, nonIdle := trace.Fig4(corpus)
	ge14 := trace.FracAtLeast(all, 14)
	ge10 := trace.FracAtLeast(all, 10)
	gap := idle.Quantile(0.5) - nonIdle.Quantile(0.5)
	fmt.Fprintf(r.w, "| statistic | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(r.w, "| P(free >= 14 MB) | 0.90 | %.3f |\n", ge14)
	fmt.Fprintf(r.w, "| P(free >= 10 MB) | 0.95 | %.3f |\n", ge10)
	fmt.Fprintf(r.w, "| idle vs non-idle median gap | \"no significant difference\" | %.1f MB |\n", gap)
	fmt.Fprintf(r.w, "\n")
	r.addFigure("fig4", "Figure 4: available-memory CDF", []Point{{
		"p_free_ge_14_mb": jnum(ge14), "p_free_ge_10_mb": jnum(ge10), "median_gap_mb": jnum(gap),
	}})
	return nil
}

func (r *reporter) fig5(table *workload.Table) error {
	r.section("E4 — Figure 5: LDR and FCSR on one node")
	cfg := node.DefaultFig5Config()
	cfg.Seed = r.seed
	cfg.Rec = r.rec
	pts := node.Fig5(table, cfg)
	worst := map[float64]float64{}
	minFCSR := map[float64]float64{}
	var jpts []Point
	for _, p := range pts {
		if p.LDR > worst[p.ContextSwitch] {
			worst[p.ContextSwitch] = p.LDR
		}
		if f, ok := minFCSR[p.ContextSwitch]; !ok || (p.FCSR < f && p.Utilization < 0.95) {
			minFCSR[p.ContextSwitch] = p.FCSR
		}
		jpts = append(jpts, Point{
			"context_switch_us": jnum(p.ContextSwitch * 1e6),
			"utilization":       jnum(p.Utilization),
			"ldr":               jnum(p.LDR),
			"fcsr":              jnum(p.FCSR),
		})
	}
	fmt.Fprintf(r.w, "| context switch | paper max LDR | measured max LDR | paper FCSR | measured min FCSR |\n|---|---|---|---|---|\n")
	paperLDR := map[float64]string{100e-6: "~1%", 300e-6: "<5%", 500e-6: "~8%"}
	for _, cs := range cfg.ContextSwitches {
		fmt.Fprintf(r.w, "| %.0f µs | %s | %.1f%% | >90%% | %.1f%% |\n",
			cs*1e6, paperLDR[cs], 100*worst[cs], 100*minFCSR[cs])
	}
	fmt.Fprintf(r.w, "\n")
	r.addFigure("fig5", "Figure 5: LDR and FCSR on one node", jpts)
	return nil
}

func (r *reporter) fig7and8(corpus []*trace.Trace, tpDur float64) error {
	r.section("E5/E6 — Figures 7 and 8: sequential jobs on a 64-node cluster")
	paper := map[int]map[string][4]float64{
		// policy -> {avg, variation%, family, throughput}
		1: {
			"LL": {1044, 13.7, 1847, 52.2}, "LF": {1026, 20.5, 1844, 55.5},
			"IE": {1531, 27.7, 2616, 34.6}, "PM": {1531, 22.5, 2521, 34.6},
		},
		2: {
			"LL": {1859, 0.9, 1896, 15.0}, "LF": {1861, 1.3, 1925, 14.7},
			"IE": {1860, 1.3, 1925, 14.5}, "PM": {1862, 1.6, 1956, 14.5},
		},
	}
	var jpts []Point
	for wl := 1; wl <= 2; wl++ {
		var cfg cluster.Config
		if wl == 1 {
			cfg = cluster.Workload1(0)
		} else {
			cfg = cluster.Workload2(0)
		}
		cfg.Seed = r.seed
		cfg.Rec = r.rec
		cfg.Exec = r.runner.Named(fmt.Sprintf("wl%d", wl))
		rows, err := cluster.Fig7(cfg, corpus, tpDur)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.w, "### Workload %d (%d jobs x %.0f CPU-s)\n\n", wl, int(cfg.NumJobs), cfg.JobCPU)
		fmt.Fprintf(r.w, "| policy | avg job (paper/meas) | variation | family time | throughput | local delay |\n|---|---|---|---|---|---|\n")
		for _, row := range rows {
			p := paper[wl][row.Policy]
			fmt.Fprintf(r.w, "| %s | %.0f / %.0f | %.1f%% / %.1f%% | %.0f / %.0f | %.1f / %.1f | %.2f%% |\n",
				row.Policy, p[0], row.AvgCompletion, p[1], 100*row.Variation,
				p[2], row.FamilyTime, p[3], row.Throughput, 100*row.LocalDelay)
			jpts = append(jpts, Point{
				"table": "fig7", "workload": jnum(float64(wl)), "policy": row.Policy,
				"avg_completion": jnum(row.AvgCompletion), "variation": jnum(row.Variation),
				"family_time": jnum(row.FamilyTime), "throughput": jnum(row.Throughput),
				"local_delay": jnum(row.LocalDelay),
			})
		}
		fmt.Fprintln(r.w)
		// Figure 8 breakdown from a fresh batch run per policy, one pool
		// task per policy (each simulation seeds itself from the config).
		fmt.Fprintf(r.w, "Figure 8 state breakdown (avg seconds per job):\n\n")
		fmt.Fprintf(r.w, "| policy | queued | running | lingering | paused | migrating |\n|---|---|---|---|---|---|\n")
		results, err := exp.RunSweep(cfg.Exec, "fig8", len(core.Policies), func(i int) (cluster.Result, error) {
			c := cfg
			c.Policy = core.Policies[i]
			c.Exec = nil
			res, err := cluster.Run(c, corpus)
			if err != nil {
				return cluster.Result{}, err
			}
			out := *res
			out.Jobs = nil // metrics only; keep checkpoint snapshots small
			return out, nil
		})
		if err != nil {
			return err
		}
		for i, p := range core.Policies {
			b := results[i].Breakdown
			fmt.Fprintf(r.w, "| %v | %.0f | %.0f | %.0f | %.0f | %.0f |\n",
				p, b.Queued, b.Running, b.Lingering, b.Paused, b.Migrating)
			jpts = append(jpts, Point{
				"table": "fig8", "workload": jnum(float64(wl)), "policy": p.String(),
				"queued": jnum(b.Queued), "running": jnum(b.Running), "lingering": jnum(b.Lingering),
				"paused": jnum(b.Paused), "migrating": jnum(b.Migrating),
			})
		}
		fmt.Fprintln(r.w)
	}
	fmt.Fprintf(r.w, "Headlines reproduced: LL/LF cut average completion ~45-50%% under load;\nthroughput gain over IE/PM ~50-80%% (paper: 50-60%%); local delay well under\n0.5%%; all policies equal on the light workload; the advantage comes from\nqueue-time reduction (Figure 8).\n\n")
	r.addFigure("fig7_8", "Figures 7 and 8: sequential jobs on a 64-node cluster", jpts)
	return nil
}

func (r *reporter) fig9() error {
	r.section("E7 — Figure 9: BSP slowdown vs. local utilization")
	pts, err := parallel.Fig9(r.runner, r.seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.w, "| local util | measured slowdown | paper |\n|---|---|---|\n")
	paperNote := map[int]string{2: "1.1-1.5 band", 4: "1.1-1.5 band", 9: "~10"}
	var jpts []Point
	for i, p := range pts {
		note := paperNote[i]
		fmt.Fprintf(r.w, "| %.0f%% | %.2f | %s |\n", 100*p.Utilization, p.Slowdown, note)
		jpts = append(jpts, Point{"utilization": jnum(p.Utilization), "slowdown": jnum(p.Slowdown)})
	}
	fmt.Fprintf(r.w, "\n")
	r.addFigure("fig9", "Figure 9: BSP slowdown vs. local utilization", jpts)
	return nil
}

func (r *reporter) fig10() error {
	r.section("E8 — Figure 10: slowdown vs. synchronization granularity")
	pts, err := parallel.Fig10(r.runner, r.seed)
	if err != nil {
		return err
	}
	byGran := map[float64]map[int]float64{}
	var jpts []Point
	for _, p := range pts {
		if byGran[p.GranularityMS] == nil {
			byGran[p.GranularityMS] = map[int]float64{}
		}
		byGran[p.GranularityMS][p.NonIdleNodes] = p.Slowdown
		jpts = append(jpts, Point{
			"granularity_ms": jnum(p.GranularityMS), "non_idle": jnum(float64(p.NonIdleNodes)),
			"slowdown": jnum(p.Slowdown),
		})
	}
	fmt.Fprintf(r.w, "| granularity | 1 non-idle | 2 | 4 | 8 |\n|---|---|---|---|---|\n")
	for _, g := range []float64{10, 100, 1000, 10000} {
		row := byGran[g]
		fmt.Fprintf(r.w, "| %.0f ms | %.2f | %.2f | %.2f | %.2f |\n", g, row[1], row[2], row[4], row[8])
	}
	fmt.Fprintf(r.w, "\nPaper shape: coarser synchronization, less slowdown; 4 non-idle nodes at\n20%% stay under ~1.5 at coarse granularity. Reproduced.\n\n")
	r.addFigure("fig10", "Figure 10: slowdown vs. synchronization granularity", jpts)
	return nil
}

func (r *reporter) fig11() error {
	r.section("E9 — Figure 11: linger vs. reconfiguration (synthetic, 32 nodes)")
	cfg := parallel.DefaultReconfigConfig()
	cfg.Seed = r.seed
	cfg.Exec = r.runner
	pts, err := parallel.Fig11(cfg)
	if err != nil {
		return err
	}
	var jpts []Point
	fmt.Fprintf(r.w, "| idle nodes | LL-32 | LL-16 | LL-8 | reconfig |\n|---|---|---|---|---|\n")
	for _, p := range pts {
		jp := Point{"idle": jnum(float64(p.IdleNodes)), "reconfig": jnum(p.Reconfig)}
		for _, k := range cfg.LLSizes {
			jp[fmt.Sprintf("ll_%d", k)] = jnum(p.LL[k])
		}
		jpts = append(jpts, jp)
		if p.IdleNodes%4 != 0 && p.IdleNodes != 31 {
			continue
		}
		fmt.Fprintf(r.w, "| %d | %.2f | %.2f | %.2f | %s |\n",
			p.IdleNodes, p.LL[32], p.LL[16], p.LL[8], fmtInf(p.Reconfig))
	}
	fmt.Fprintf(r.w, "\nPaper: LL-32 beats reconfiguration as soon as one node is busy (the\npower-of-two constraint halves the machine), and remains ahead until many\nnodes are non-idle. Reproduced.\n\n")
	r.addFigure("fig11", "Figure 11: linger vs. reconfiguration (synthetic, 32 nodes)", jpts)
	return nil
}

func (r *reporter) fig12() error {
	r.section("E10 — Figure 12: application slowdowns (8-node cluster)")
	pts, err := apps.Fig12(r.runner, r.seed)
	if err != nil {
		return err
	}
	at := func(app string, n int, u float64) float64 {
		for _, p := range pts {
			if p.App == app && p.NonIdle == n && math.Abs(p.LocalUtil-u) < 1e-9 {
				return p.Slowdown
			}
		}
		return math.NaN()
	}
	fmt.Fprintf(r.w, "| check | paper | sor | water | fft |\n|---|---|---|---|---|\n")
	fmt.Fprintf(r.w, "| 1 non-idle @ 40%% | <= ~1.7 | %.2f | %.2f | %.2f |\n",
		at("sor", 1, 0.4), at("water", 1, 0.4), at("fft", 1, 0.4))
	fmt.Fprintf(r.w, "| 4 non-idle @ 20%% | 1.5-1.6 | %.2f | %.2f | %.2f |\n",
		at("sor", 4, 0.2), at("water", 4, 0.2), at("fft", 4, 0.2))
	fmt.Fprintf(r.w, "| 8 non-idle @ 20%% | ~2 | %.2f | %.2f | %.2f |\n",
		at("sor", 8, 0.2), at("water", 8, 0.2), at("fft", 8, 0.2))
	fmt.Fprintf(r.w, "\nSensitivity ordering (sor most, fft least) reproduced at 8 non-idle @ 40%%:\nsor %.2f > water %.2f > fft %.2f.\n\n",
		at("sor", 8, 0.4), at("water", 8, 0.4), at("fft", 8, 0.4))
	var jpts []Point
	for _, p := range pts {
		jpts = append(jpts, Point{
			"app": p.App, "non_idle": jnum(float64(p.NonIdle)),
			"local_util": jnum(p.LocalUtil), "slowdown": jnum(p.Slowdown),
		})
	}
	r.addFigure("fig12", "Figure 12: application slowdowns (8-node cluster)", jpts)
	return nil
}

func (r *reporter) fig13() error {
	r.section("E11 — Figure 13: applications, linger vs. reconfiguration (16 nodes)")
	cfg := apps.DefaultFig13Config()
	cfg.Seed = r.seed
	cfg.Exec = r.runner
	pts, err := apps.Fig13(cfg)
	if err != nil {
		return err
	}
	var jpts []Point
	cur := ""
	for _, p := range pts {
		jpts = append(jpts, Point{
			"app": p.App, "idle": jnum(float64(p.IdleNodes)),
			"reconfig": jnum(p.Reconfig), "ll_16": jnum(p.LL16), "ll_8": jnum(p.LL8),
		})
		if p.App != cur {
			if cur != "" {
				fmt.Fprintln(r.w)
			}
			cur = p.App
			fmt.Fprintf(r.w, "**%s**\n\n| idle | reconfig | LL-16 | LL-8 |\n|---|---|---|---|\n", cur)
		}
		if p.IdleNodes%2 != 0 && p.IdleNodes < 12 {
			continue
		}
		fmt.Fprintf(r.w, "| %d | %s | %.2f | %.2f |\n", p.IdleNodes, fmtInf(p.Reconfig), p.LL16, p.LL8)
	}
	fmt.Fprintf(r.w, "\nPaper claims: LL-16 beats reconfiguration when enough nodes are idle\n(paper: >= 12; our substrate places the crossover at ~14), and below 8 idle\nnodes LL-8 beats both — the hybrid-strategy conclusion. Both reproduced;\nsee DESIGN.md §2 for why the crossover shifts.\n\n")
	r.addFigure("fig13", "Figure 13: applications, linger vs. reconfiguration (16 nodes)", jpts)
	return nil
}

func (r *reporter) arrivals(corpus []*trace.Trace) error {
	r.section("X1 — Extension: open-system response time (Poisson arrivals)")
	fmt.Fprintf(r.w, "The paper evaluates batches; its conclusion leaves \"an end-to-end\nevaluation of cluster throughput\" as future work. Jobs of 600 CPU-s arrive\nby a Poisson process on 64 nodes; response time by policy and load:\n\n")
	fmt.Fprintf(r.w, "| arrival rate | offered load/node | LL mean resp | IE mean resp | LL P95 | IE P95 |\n|---|---|---|---|---|---|\n")
	rates := []float64{0.02, 0.05, 0.08}
	policies := []core.Policy{core.LingerLonger, core.ImmediateEviction}
	// One pool task per (rate, policy) pair; each open-system run seeds
	// itself from its config, so the fan-out cannot change results.
	results, err := exp.RunSweep(r.runner, "arrivals", len(rates)*len(policies), func(i int) (cluster.ArrivalsResult, error) {
		cfg := cluster.ArrivalsConfig{
			Cluster:  cluster.Workload1(policies[i%len(policies)]),
			Rate:     rates[i/len(policies)],
			Duration: 3600,
		}
		cfg.Cluster.Seed = r.seed
		cfg.Cluster.Rec = r.rec
		res, err := cluster.RunArrivals(cfg, corpus)
		if err != nil {
			return cluster.ArrivalsResult{}, err
		}
		return *res, nil
	})
	if err != nil {
		return err
	}
	var jpts []Point
	for k, rate := range rates {
		ll, ie := results[2*k], results[2*k+1]
		fmt.Fprintf(r.w, "| %.2f/s | %.2f | %.0f s | %.0f s | %.0f s | %.0f s |\n",
			rate, ll.OfferedLoad, ll.MeanResponse, ie.MeanResponse,
			ll.P95Response, ie.P95Response)
		for j, p := range policies {
			res := results[2*k+j]
			jpts = append(jpts, Point{
				"rate": jnum(rate), "policy": p.String(), "offered_load": jnum(res.OfferedLoad),
				"mean_response": jnum(res.MeanResponse), "p95_response": jnum(res.P95Response),
			})
		}
	}
	fmt.Fprintf(r.w, "\nLingering's advantage grows with load, mirroring the batch result.\n\n")
	r.addFigure("arrivals", "Extension: open-system response time (Poisson arrivals)", jpts)
	return nil
}

func (r *reporter) hybrid() error {
	r.section("X2 — Extension: the hybrid linger/reconfiguration scheduler")
	cfg := apps.DefaultFig13Config()
	cfg.Seed = r.seed
	cfg.Exec = r.runner
	pts, err := apps.FigHybrid(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.w, "The paper's conclusion suggests \"a hybrid strategy of lingering and\nreconfiguration\". Implemented as a sampling scheduler (probe both sizes,\ncommit to the better): slowdown vs the best fixed strategy:\n\n")
	fmt.Fprintf(r.w, "| app | idle | picked procs | hybrid | best fixed |\n|---|---|---|---|---|\n")
	var jpts []Point
	for _, p := range pts {
		jpts = append(jpts, Point{
			"app": p.App, "idle": jnum(float64(p.IdleNodes)), "procs": jnum(float64(p.Procs)),
			"slowdown": jnum(p.Slowdown), "best_fixed": jnum(p.BestFixed),
		})
		if p.IdleNodes%4 != 0 {
			continue
		}
		fmt.Fprintf(r.w, "| %s | %d | %d | %.2f | %s |\n",
			p.App, p.IdleNodes, p.Procs, p.Slowdown, fmtInf(p.BestFixed))
	}
	fmt.Fprintf(r.w, "\nThe hybrid tracks the lower envelope: wide when the cluster is idle,\nnarrow when it is busy, and it keeps running when reconfiguration cannot.\n\n")
	r.addFigure("hybrid", "Extension: the hybrid linger/reconfiguration scheduler", jpts)
	return nil
}

func fmtInf(v float64) string {
	if math.IsInf(v, 1) {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}
