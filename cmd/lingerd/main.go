// Command lingerd runs the prototype cycle-stealing system of
// internal/runtime (the paper's §7 architecture) in one of three roles:
//
//	lingerd -agent -listen 127.0.0.1:7101 [-util 0.2] [-busyafter 60]
//	    Serve one workstation agent on a TCP address. The owner workload
//	    is a simple script: idle for -busyafter seconds, then persistently
//	    active at -util.
//
//	lingerd -coordinator -agents addr1,addr2,... [-policy LL] [-jobs 4]
//	         [-demand 120] [-steps 600]
//	    Connect to running agents, submit jobs, and drive the cluster.
//
//	lingerd -demo
//	    Self-contained demonstration: three agents on loopback TCP, one of
//	    which turns busy, under the LL policy — watch the job linger and
//	    then migrate.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"

	"lingerlonger/internal/core"
	"lingerlonger/internal/runtime"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lingerd: ")

	var (
		agentMode = flag.Bool("agent", false, "serve a workstation agent")
		coordMode = flag.Bool("coordinator", false, "drive a set of agents")
		demoMode  = flag.Bool("demo", false, "self-contained loopback demonstration")

		listen    = flag.String("listen", "127.0.0.1:7101", "agent: listen address")
		name      = flag.String("name", "", "agent: name (default: the listen address)")
		util      = flag.Float64("util", 0.3, "agent: owner utilization when busy")
		busyAfter = flag.Float64("busyafter", 60, "agent: seconds of idleness before the owner returns")
		totalMB   = flag.Float64("mem", 64, "agent: machine memory, MB")

		agents = flag.String("agents", "", "coordinator: comma-separated agent addresses")
		policy = flag.String("policy", "LL", "coordinator: LL, LF, IE, or PM")
		jobs   = flag.Int("jobs", 4, "coordinator: jobs to submit")
		demand = flag.Float64("demand", 120, "coordinator: CPU seconds per job")
		steps  = flag.Int("steps", 600, "coordinator: virtual seconds to run")
	)
	flag.Parse()

	switch {
	case *agentMode:
		runAgent(*listen, *name, *util, *busyAfter, *totalMB)
	case *coordMode:
		runCoordinator(strings.Split(*agents, ","), *policy, *jobs, *demand, *steps)
	case *demoMode:
		runDemo()
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func ownerScript(busyAfter, util float64) *runtime.ScriptedOwner {
	owner, err := runtime.NewScriptedOwner([]runtime.OwnerPhase{
		{Duration: busyAfter, Util: 0.02, FreeMB: 40},
		{Duration: 1e9, Util: util, Keyboard: true, FreeMB: 30},
	})
	if err != nil {
		log.Fatal(err)
	}
	return owner
}

func runAgent(listen, name string, util, busyAfter, totalMB float64) {
	if name == "" {
		name = listen
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatal(err)
	}
	srv := runtime.NewAgentServer(runtime.NewAgent(name, ownerScript(busyAfter, util), totalMB), l)
	fmt.Printf("agent %q serving on %s (owner busy at %.0f%% after %.0fs)\n",
		name, srv.Addr(), 100*util, busyAfter)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	srv.Close()
}

func runCoordinator(addrs []string, policyName string, jobs int, demand float64, steps int) {
	p, err := core.ParsePolicy(policyName)
	if err != nil {
		log.Fatal(err)
	}
	var clients []runtime.AgentClient
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		c, err := runtime.DialAgent(addr)
		if err != nil {
			log.Fatalf("dial %s: %v", addr, err)
		}
		defer c.Close()
		clients = append(clients, c)
		fmt.Printf("connected to agent %q at %s\n", c.Name(), addr)
	}
	cfg := runtime.DefaultCoordinatorConfig()
	cfg.Policy = p
	drive(cfg, clients, jobs, demand, steps)
}

func runDemo() {
	fmt.Println("demo: three loopback-TCP agents; 'alpha' turns busy after 40s; policy LL")
	owners := map[string]*runtime.ScriptedOwner{
		"alpha": ownerScript(40, 0.5),
		"beta":  ownerScript(1e9, 0.3), // effectively always idle
		"gamma": ownerScript(1e9, 0.3),
	}
	var clients []runtime.AgentClient
	for _, name := range []string{"alpha", "beta", "gamma"} {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := runtime.NewAgentServer(runtime.NewAgent(name, owners[name], 64), l)
		defer srv.Close()
		c, err := runtime.DialAgent(srv.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
		fmt.Printf("  agent %q on %s\n", name, srv.Addr())
	}
	drive(runtime.DefaultCoordinatorConfig(), clients, 2, 150, 400)
}

func drive(cfg runtime.CoordinatorConfig, clients []runtime.AgentClient, jobs int, demand float64, steps int) {
	coord, err := runtime.NewCoordinator(cfg, clients)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < jobs; i++ {
		id, err := coord.Submit(demand, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted job %d (%.0f CPU-s)\n", id, demand)
	}
	lastMigr := 0
	lastDone := 0
	for i := 0; i < steps; i++ {
		if err := coord.Step(1); err != nil {
			log.Fatal(err)
		}
		if m := coord.Migrations(); m != lastMigr {
			fmt.Printf("t=%4.0fs migration #%d started\n", coord.Now(), m)
			lastMigr = m
		}
		if done := coord.Completed(); len(done) != lastDone {
			for _, d := range done[lastDone:] {
				fmt.Printf("t=%4.0fs job %d completed on %q (response %.0fs)\n",
					coord.Now(), d.Job.ID, d.Agent, d.CompletedAt-d.Job.SubmittedAt)
			}
			lastDone = len(done)
		}
		if lastDone == jobs {
			break
		}
	}
	fmt.Printf("done: %d/%d jobs completed, %d migrations, %d still queued\n",
		lastDone, jobs, coord.Migrations(), coord.QueueLen())
}
