// Command lingerd runs the prototype cycle-stealing system of
// internal/runtime (the paper's §7 architecture) in one of four roles:
//
//	lingerd -agent -listen 127.0.0.1:7101 [-util 0.2] [-busyafter 60]
//	    Serve one workstation agent on a TCP address. The owner workload
//	    is a simple script: idle for -busyafter seconds, then persistently
//	    active at -util.
//
//	lingerd -coordinator -agents addr1,addr2,... [-policy LL] [-jobs 4]
//	         [-demand 120] [-steps 600] [-fault spec] [-json]
//	    Connect to running agents, submit jobs, and drive the cluster.
//	    With -fault, the client-side fault injector severs, delays, or
//	    garbles calls deterministically from the spec's seed.
//
//	lingerd -demo
//	    Self-contained demonstration: three agents on loopback TCP, one of
//	    which turns busy, under the LL policy — watch the job linger and
//	    then migrate.
//
//	lingerd -fault drop=0.05,seed=42 [-json]
//	    Self-contained fault-injection run: four in-process agents behind
//	    a simulated lossy network. Unless the spec includes a partition,
//	    one agent is severed mid-run so the suspect/dead detector fires
//	    and its job is recovered from the coordinator's checkpoint. The
//	    run is a pure function of the spec: repeated runs with the same
//	    seed produce byte-identical output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"

	"lingerlonger/internal/cli"
	"lingerlonger/internal/core"
	"lingerlonger/internal/exp"
	"lingerlonger/internal/fabric"
	"lingerlonger/internal/obs"
	"lingerlonger/internal/runtime"
)

func main() {
	cli.Run("lingerd", realMain)
}

func realMain() (err error) {
	var o cli.Obs
	o.RegisterFlags()
	// The cluster-link surface (timeouts, retries, health intervals,
	// in-flight bound) is the same typed struct llsweep uses, so the two
	// commands cannot drift apart.
	link := cli.LinkFlags(flag.CommandLine)
	var (
		agentMode = flag.Bool("agent", false, "serve a workstation agent")
		coordMode = flag.Bool("coordinator", false, "drive a set of agents")
		demoMode  = flag.Bool("demo", false, "self-contained loopback demonstration")

		listen    = flag.String("listen", "127.0.0.1:7101", "agent: listen address")
		name      = flag.String("name", "", "agent: name (default: the listen address)")
		util      = flag.Float64("util", 0.3, "agent: owner utilization when busy")
		busyAfter = flag.Float64("busyafter", 60, "agent: seconds of idleness before the owner returns")
		totalMB   = flag.Float64("mem", 64, "agent: machine memory, MB")

		agents    = flag.String("agents", "", "coordinator: comma-separated agent addresses")
		policy    = flag.String("policy", "LL", "coordinator: LL, LF, IE, or PM")
		jobs      = flag.Int("jobs", 4, "coordinator: jobs to submit")
		demand    = flag.Float64("demand", 120, "coordinator: CPU seconds per job")
		steps     = flag.Int("steps", 600, "coordinator: virtual seconds to run")
		faultSpec = flag.String("fault", "", "fault injection spec, e.g. drop=0.05,seed=42 (alone: run the fault demo)")
		jsonOut   = flag.Bool("json", false, "emit a machine-readable JSON report instead of progress lines")
		seed      = flag.Int64("seed", 1, "master seed for retry jitter streams")
	)
	cli.RegisterVersionFlag()
	flag.Parse()
	if cli.VersionRequested() {
		return cli.PrintVersion("lingerd")
	}

	if flag.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", flag.Arg(0))
	}
	if err := o.Start(); err != nil {
		return err
	}
	defer o.Finish(&err)
	rec := o.Recorder()
	switch {
	case *agentMode:
		return runAgent(*listen, *name, *util, *busyAfter, *totalMB, rec)
	case *coordMode:
		link.Seed = *seed
		return runCoordinator(strings.Split(*agents, ","), *policy, *jobs, *demand, *steps, *faultSpec, *link, *jsonOut, rec)
	case *demoMode:
		return runDemo(*jsonOut, rec)
	case *faultSpec != "":
		return runFaultDemo(*faultSpec, *policy, *jobs, *demand, *steps, *jsonOut, rec)
	default:
		return cli.Usagef("one of -agent, -coordinator, -demo, or -fault is required")
	}
}

func ownerScript(busyAfter, util float64) *runtime.ScriptedOwner {
	owner, err := runtime.NewScriptedOwner([]runtime.OwnerPhase{
		{Duration: busyAfter, Util: 0.02, FreeMB: 40},
		{Duration: 1e9, Util: util, Keyboard: true, FreeMB: 30},
	})
	if err != nil {
		// Unreachable: the phases are static and valid. cli.Run turns a
		// panic into a diagnosed exit 1 if this invariant ever breaks.
		panic(err)
	}
	return owner
}

func runAgent(listen, name string, util, busyAfter, totalMB float64, rec *obs.Recorder) error {
	if name == "" {
		name = listen
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	a := runtime.NewAgent(name, ownerScript(busyAfter, util), totalMB)
	a.SetRecorder(rec)
	// Agents serve real sweep work (llsweep's fabric) alongside the
	// simulated job protocol; the built-in registry is the same one the
	// serial path runs, so both compute identical bytes per spec.
	a.SetWorkExecutor(fabric.BuiltinTasks().Run)
	srv := runtime.NewAgentServer(a, l)
	fmt.Printf("agent %q serving on %s (owner busy at %.0f%% after %.0fs)\n",
		name, srv.Addr(), 100*util, busyAfter)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	srv.Close()
	return nil
}

func runCoordinator(addrs []string, policyName string, jobs int, demand float64, steps int, faultSpec string, link fabric.LinkConfig, jsonOut bool, rec *obs.Recorder) error {
	if err := link.Validate(); err != nil {
		return cli.Usagef("%v", err)
	}
	p, err := core.ParsePolicy(policyName)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	var injector runtime.FaultInjector
	if faultSpec != "" {
		cfg, err := runtime.ParseFaultSpec(faultSpec)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		inj, err := runtime.NewSeededInjector(cfg)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		injector = inj
	}
	counters := &runtime.FaultCounters{}
	var clients []runtime.AgentClient
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		// One LinkConfig shared with llsweep's fabric; per-client jitter
		// streams derive from the address hash, so one seed covers all.
		ccfg := link.ClientConfig("", injector, counters)
		c, err := runtime.DialAgentConfig(addr, ccfg)
		if err != nil {
			return fmt.Errorf("dial %s: %w", addr, err)
		}
		defer c.Close()
		clients = append(clients, c)
		if !jsonOut {
			fmt.Printf("connected to agent %q at %s\n", c.Name(), addr)
		}
	}
	cfg := runtime.DefaultCoordinatorConfig()
	cfg.Policy = p
	cfg.Rec = rec
	return drive(cfg, clients, counters, driveOpts{jobs: jobs, demand: demand, steps: steps, policy: policyName, faultSpec: faultSpec, jsonOut: jsonOut, rec: rec})
}

func runDemo(jsonOut bool, rec *obs.Recorder) error {
	if !jsonOut {
		fmt.Println("demo: three loopback-TCP agents; 'alpha' turns busy after 40s; policy LL")
	}
	owners := map[string]*runtime.ScriptedOwner{
		"alpha": ownerScript(40, 0.5),
		"beta":  ownerScript(1e9, 0.3), // effectively always idle
		"gamma": ownerScript(1e9, 0.3),
	}
	var clients []runtime.AgentClient
	for _, name := range []string{"alpha", "beta", "gamma"} {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		a := runtime.NewAgent(name, owners[name], 64)
		a.SetRecorder(rec)
		srv := runtime.NewAgentServer(a, l)
		defer srv.Close()
		c, err := runtime.DialAgent(srv.Addr().String())
		if err != nil {
			return err
		}
		defer c.Close()
		clients = append(clients, c)
		if !jsonOut {
			fmt.Printf("  agent %q on %s\n", name, srv.Addr())
		}
	}
	ccfg := runtime.DefaultCoordinatorConfig()
	ccfg.Rec = rec
	return drive(ccfg, clients, nil, driveOpts{jobs: 2, demand: 150, steps: 400, policy: "LL", jsonOut: jsonOut, rec: rec})
}

// runFaultDemo drives four in-process agents behind a simulated lossy
// network. The run is fully deterministic: the injector's verdicts are a
// pure function of the spec's seed, retries consume seeded jitter streams,
// and time is virtual, so repeated runs emit byte-identical reports.
func runFaultDemo(spec, policyName string, jobs int, demand float64, steps int, jsonOut bool, rec *obs.Recorder) error {
	p, err := core.ParsePolicy(policyName)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	cfg, err := runtime.ParseFaultSpec(spec)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	if len(cfg.Partitions) == 0 {
		// Sever one agent mid-run, while it still hosts a job, so the
		// failure detector and checkpoint recovery are exercised, not
		// just retries.
		cfg.Partitions = map[string]runtime.Partition{"beta": {FromCall: 40, Calls: 150}}
	}
	inj, err := runtime.NewSeededInjector(cfg)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	if !jsonOut {
		fmt.Printf("fault demo: four in-process agents behind a lossy network (%s)\n", spec)
		for target, pt := range cfg.Partitions {
			fmt.Printf("  partition: %q severed for calls [%d,%d)\n", target, pt.FromCall, pt.FromCall+pt.Calls)
		}
	}
	counters := &runtime.FaultCounters{}
	owners := map[string]*runtime.ScriptedOwner{
		"alpha": ownerScript(40, 0.5),
		"beta":  ownerScript(1e9, 0.3),
		"gamma": ownerScript(1e9, 0.3),
		"delta": ownerScript(1e9, 0.3),
	}
	var clients []runtime.AgentClient
	for i, name := range []string{"alpha", "beta", "gamma", "delta"} {
		retry := runtime.DefaultRetryConfig()
		retry.Seed = exp.DeriveSeed(cfg.Seed, i)
		a := runtime.NewAgent(name, owners[name], 64)
		a.SetRecorder(rec)
		clients = append(clients, runtime.NewFaultClient(a, inj, retry, counters))
	}
	ccfg := runtime.DefaultCoordinatorConfig()
	ccfg.Policy = p
	ccfg.Rec = rec
	return drive(ccfg, clients, counters, driveOpts{jobs: jobs, demand: demand, steps: steps, policy: policyName, faultSpec: spec, jsonOut: jsonOut, rec: rec})
}

// driveOpts carries the run parameters into the shared driver.
type driveOpts struct {
	jobs      int
	demand    float64
	steps     int
	policy    string
	faultSpec string
	jsonOut   bool
	rec       *obs.Recorder // nil when the run is uninstrumented
}

// report is the deterministic JSON summary of a run: a pure function of
// (scenario, fault spec, seed) — no wall-clock anywhere.
type report struct {
	Policy     string                   `json:"policy"`
	Fault      string                   `json:"fault,omitempty"`
	Jobs       int                      `json:"jobs"`
	Steps      int                      `json:"steps"`
	Completed  []completionRecord       `json:"completed"`
	Lost       int                      `json:"lost"`
	Active     int                      `json:"active"`
	Queued     int                      `json:"queued"`
	Migrations int                      `json:"migrations"`
	Recovery   runtime.RecoveryCounters `json:"recovery"`
	Transport  *runtime.FaultCounters   `json:"transport,omitempty"`
}

type completionRecord struct {
	ID        int     `json:"id"`
	Agent     string  `json:"agent"`
	Submitted float64 `json:"submittedAt"`
	Completed float64 `json:"completedAt"`
	Response  float64 `json:"responseS"`
}

func drive(cfg runtime.CoordinatorConfig, clients []runtime.AgentClient, counters *runtime.FaultCounters, opts driveOpts) error {
	coord, err := runtime.NewCoordinator(cfg, clients)
	if err != nil {
		return err
	}
	for i := 0; i < opts.jobs; i++ {
		id, err := coord.Submit(opts.demand, 8)
		if err != nil {
			return err
		}
		if !opts.jsonOut {
			fmt.Printf("submitted job %d (%.0f CPU-s)\n", id, opts.demand)
		}
	}
	lastMigr := 0
	lastDone := 0
	lastRecovered := 0
	for i := 0; i < opts.steps; i++ {
		if err := coord.Step(1); err != nil {
			return err
		}
		if !opts.jsonOut {
			if m := coord.Migrations(); m != lastMigr {
				fmt.Printf("t=%4.0fs migration #%d started\n", coord.Now(), m)
				lastMigr = m
			}
			if r := coord.Counters().RecoveredJobs; r != lastRecovered {
				fmt.Printf("t=%4.0fs job recovery #%d (agent failure)\n", coord.Now(), r)
				lastRecovered = r
			}
			if done := coord.Completed(); len(done) != lastDone {
				for _, d := range done[lastDone:] {
					fmt.Printf("t=%4.0fs job %d completed on %q (response %.0fs)\n",
						coord.Now(), d.Job.ID, d.Agent, d.CompletedAt-d.Job.SubmittedAt)
				}
				lastDone = len(done)
			}
		}
		if len(coord.Completed()) == opts.jobs {
			break
		}
	}
	done := coord.Completed()
	// The invariant checker proves no job was lost or double-tracked; a
	// violation is a bug worth dying loudly over, in any output mode.
	if err := coord.CheckInvariants(); err != nil {
		return err
	}
	// Transport tallies reach the registry in one end-of-run mirror, so
	// the RPC hot path stays free of observability cost.
	counters.Mirror(opts.rec)
	if opts.jsonOut {
		r := report{
			Policy:     opts.policy,
			Fault:      opts.faultSpec,
			Jobs:       opts.jobs,
			Steps:      opts.steps,
			Completed:  []completionRecord{},
			Lost:       0, // guaranteed by CheckInvariants above
			Active:     opts.jobs - len(done) - coord.QueueLen(),
			Queued:     coord.QueueLen(),
			Migrations: coord.Migrations(),
			Recovery:   coord.Counters(),
			Transport:  counters,
		}
		for _, d := range done {
			r.Completed = append(r.Completed, completionRecord{
				ID:        d.Job.ID,
				Agent:     d.Agent,
				Submitted: d.Job.SubmittedAt,
				Completed: d.CompletedAt,
				Response:  d.CompletedAt - d.Job.SubmittedAt,
			})
		}
		out, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Printf("done: %d/%d jobs completed, %d migrations, %d recoveries, %d retries, %d still queued\n",
		len(done), opts.jobs, coord.Migrations(), coord.Counters().RecoveredJobs, transportRetries(counters), coord.QueueLen())
	return nil
}

func transportRetries(c *runtime.FaultCounters) int {
	if c == nil {
		return 0
	}
	return c.Retries
}
