package linger

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md §5.
// Each benchmark regenerates its experiment's data and reports the
// headline quantity through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper end to end. Runs are deterministic for a fixed
// seed.

import (
	"math"
	"testing"

	"lingerlonger/internal/apps"
	"lingerlonger/internal/cluster"
	"lingerlonger/internal/core"
	"lingerlonger/internal/node"
	"lingerlonger/internal/parallel"
	"lingerlonger/internal/predict"
	"lingerlonger/internal/stats"
	"lingerlonger/internal/trace"
	"lingerlonger/internal/workload"
)

// benchCorpus builds the shared trace corpus once per process.
var benchCorpusCache []*trace.Trace

func benchCorpus(b *testing.B) []*trace.Trace {
	b.Helper()
	if benchCorpusCache == nil {
		cfg := trace.DefaultConfig()
		cfg.Days = 7
		corpus, err := trace.GenerateCorpus(cfg, 12, stats.NewRNG(1))
		if err != nil {
			b.Fatal(err)
		}
		benchCorpusCache = corpus
	}
	return benchCorpusCache
}

// BenchmarkFig2BurstCDFs regenerates the Figure 2 burst CDFs and their
// hyperexponential fits, reporting the worst KS distance (the paper's
// "curves almost exactly match").
func BenchmarkFig2BurstCDFs(b *testing.B) {
	table := workload.DefaultTable()
	worst := 0.0
	for i := 0; i < b.N; i++ {
		series := workload.Fig2(table, []float64{0.10, 0.50}, 20000, stats.NewRNG(int64(i+1)))
		for _, s := range series {
			if s.KSDistance > worst {
				worst = s.KSDistance
			}
		}
	}
	b.ReportMetric(worst, "max-KS")
}

// BenchmarkFig3WorkloadParams regenerates the Figure 3 parameter curves,
// reporting the 100%-utilization run-burst mean (paper: 0.25 s).
func BenchmarkFig3WorkloadParams(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows := workload.Fig3(workload.DefaultTable())
		last = rows[len(rows)-1].RunMean
	}
	b.ReportMetric(last, "run-mean@100%")
}

// BenchmarkFig4MemoryCDF regenerates the available-memory CDF, reporting
// P(free >= 14 MB) (paper: 0.90).
func BenchmarkFig4MemoryCDF(b *testing.B) {
	corpus := benchCorpus(b)
	b.ResetTimer()
	var p14 float64
	for i := 0; i < b.N; i++ {
		all, _, _ := trace.Fig4(corpus)
		p14 = trace.FracAtLeast(all, 14)
	}
	b.ReportMetric(p14, "P(free>=14MB)")
}

// BenchmarkSec32TraceStats regenerates the §3.2 availability statistics,
// reporting the non-idle fraction (paper: 0.46).
func BenchmarkSec32TraceStats(b *testing.B) {
	corpus := benchCorpus(b)
	b.ResetTimer()
	var nonIdle float64
	for i := 0; i < b.N; i++ {
		nonIdle = trace.Analyze(corpus).NonIdleFraction
	}
	b.ReportMetric(nonIdle, "non-idle-frac")
}

// BenchmarkFig5NodeImpact regenerates the LDR/FCSR curves, reporting the
// worst owner delay at the paper's 100 µs context switch (paper: ~1%).
func BenchmarkFig5NodeImpact(b *testing.B) {
	table := workload.DefaultTable()
	cfg := node.DefaultFig5Config()
	cfg.Duration = 500
	var worstLDR float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		worstLDR = 0
		for _, p := range node.Fig5(table, cfg) {
			if p.ContextSwitch == 100e-6 && p.LDR > worstLDR {
				worstLDR = p.LDR
			}
		}
	}
	b.ReportMetric(100*worstLDR, "max-LDR-%@100µs")
}

// BenchmarkFig7ClusterTable regenerates the Figure 7 table for workload 1,
// reporting the LL-over-PM throughput gain (paper: ~1.5x).
func BenchmarkFig7ClusterTable(b *testing.B) {
	corpus := benchCorpus(b)
	b.ResetTimer()
	var gain float64
	for i := 0; i < b.N; i++ {
		cfg := cluster.Workload1(core.LingerLonger)
		cfg.Seed = int64(i + 1)
		rows, err := cluster.Fig7(cfg, corpus, 1800)
		if err != nil {
			b.Fatal(err)
		}
		byPolicy := map[string]cluster.Fig7Row{}
		for _, r := range rows {
			byPolicy[r.Policy] = r
		}
		gain = byPolicy["LL"].Throughput / byPolicy["PM"].Throughput
	}
	b.ReportMetric(gain, "LL/PM-throughput")
}

// BenchmarkFig7Workload2 regenerates the light-load half of Figure 7,
// reporting the completion-time spread across policies (paper: ~0).
func BenchmarkFig7Workload2(b *testing.B) {
	corpus := benchCorpus(b)
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		lo, hi := math.Inf(1), 0.0
		for _, p := range core.Policies {
			cfg := cluster.Workload2(p)
			cfg.Seed = int64(i + 1)
			res, err := cluster.Run(cfg, corpus)
			if err != nil {
				b.Fatal(err)
			}
			lo = math.Min(lo, res.AvgCompletion)
			hi = math.Max(hi, res.AvgCompletion)
		}
		spread = (hi - lo) / lo
	}
	b.ReportMetric(100*spread, "policy-spread-%")
}

// BenchmarkFig8StateBreakdown regenerates the per-state time breakdown,
// reporting LL's queue-time saving over IE (the source of its advantage).
func BenchmarkFig8StateBreakdown(b *testing.B) {
	corpus := benchCorpus(b)
	b.ResetTimer()
	var saving float64
	for i := 0; i < b.N; i++ {
		var q [2]float64
		for k, p := range []core.Policy{core.LingerLonger, core.ImmediateEviction} {
			cfg := cluster.Workload1(p)
			cfg.Seed = int64(i + 1)
			res, err := cluster.Run(cfg, corpus)
			if err != nil {
				b.Fatal(err)
			}
			q[k] = res.Breakdown.Queued
		}
		saving = q[1] - q[0]
	}
	b.ReportMetric(saving, "queue-saving-s")
}

// BenchmarkFig9ParallelSlowdown regenerates the slowdown-vs-utilization
// curve, reporting the 90%-utilization slowdown (paper: ~10).
func BenchmarkFig9ParallelSlowdown(b *testing.B) {
	var at90 float64
	for i := 0; i < b.N; i++ {
		pts, err := parallel.Fig9(nil, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		at90 = pts[len(pts)-1].Slowdown
	}
	b.ReportMetric(at90, "slowdown@90%")
}

// BenchmarkFig10SyncGranularity regenerates the granularity sweep,
// reporting the fine-to-coarse slowdown ratio for 8 non-idle nodes.
func BenchmarkFig10SyncGranularity(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		pts, err := parallel.Fig10(nil, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		var fine, coarse float64
		for _, p := range pts {
			if p.NonIdleNodes == 8 && p.GranularityMS == 10 {
				fine = p.Slowdown
			}
			if p.NonIdleNodes == 8 && p.GranularityMS == 10000 {
				coarse = p.Slowdown
			}
		}
		ratio = fine / coarse
	}
	b.ReportMetric(ratio, "fine/coarse")
}

// BenchmarkFig11Reconfig regenerates the linger-vs-reconfiguration study,
// reporting LL-32's margin over reconfiguration with one busy node.
func BenchmarkFig11Reconfig(b *testing.B) {
	var margin float64
	for i := 0; i < b.N; i++ {
		cfg := parallel.DefaultReconfigConfig()
		cfg.Seed = int64(i + 1)
		pts, err := parallel.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.IdleNodes == 31 {
				margin = p.Reconfig / p.LL[32]
			}
		}
	}
	b.ReportMetric(margin, "reconfig/LL32@31idle")
}

// BenchmarkFig12AppSlowdown regenerates the application slowdown grid,
// reporting sor's slowdown with all 8 nodes at 20% (paper: just above 2).
func BenchmarkFig12AppSlowdown(b *testing.B) {
	var sor8 float64
	for i := 0; i < b.N; i++ {
		pts, err := apps.Fig12(nil, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.App == "sor" && p.NonIdle == 8 && p.LocalUtil == 0.20 {
				sor8 = p.Slowdown
			}
		}
	}
	b.ReportMetric(sor8, "sor@8x20%")
}

// BenchmarkFig13AppReconfig regenerates the application
// linger-vs-reconfiguration study, reporting LL-8's margin over LL-16 with
// four idle nodes (the hybrid-strategy result).
func BenchmarkFig13AppReconfig(b *testing.B) {
	var margin float64
	for i := 0; i < b.N; i++ {
		cfg := apps.DefaultFig13Config()
		cfg.Seed = int64(i + 1)
		pts, err := apps.Fig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.App == "sor" && p.IdleNodes == 4 {
				margin = p.LL16 / p.LL8
			}
		}
	}
	b.ReportMetric(margin, "LL16/LL8@4idle")
}

// BenchmarkAblationLingerDuration sweeps the multiplier on the cost-model
// linger duration: tiny values approach eviction-with-priority, huge
// values approach Linger-Forever. Reports the completion-time range over
// the sweep — how much the duration choice actually matters.
func BenchmarkAblationLingerDuration(b *testing.B) {
	corpus := benchCorpus(b)
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		lo, hi := math.Inf(1), 0.0
		for _, mult := range []float64{0.01, 0.25, 1, 4, 1e9} {
			cfg := cluster.Workload1(core.LingerLonger)
			cfg.Seed = int64(i + 1)
			cfg.LingerMultiplier = mult
			res, err := cluster.Run(cfg, corpus)
			if err != nil {
				b.Fatal(err)
			}
			lo = math.Min(lo, res.AvgCompletion)
			hi = math.Max(hi, res.AvgCompletion)
		}
		spread = hi / lo
	}
	b.ReportMetric(spread, "max/min-completion")
}

// BenchmarkAblationPauseTime sweeps PM's fixed suspend interval.
func BenchmarkAblationPauseTime(b *testing.B) {
	corpus := benchCorpus(b)
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		lo, hi := math.Inf(1), 0.0
		for _, pause := range []float64{5, 30, 120, 600} {
			cfg := cluster.Workload1(core.PauseAndMigrate)
			cfg.Seed = int64(i + 1)
			cfg.PauseTime = pause
			res, err := cluster.Run(cfg, corpus)
			if err != nil {
				b.Fatal(err)
			}
			lo = math.Min(lo, res.AvgCompletion)
			hi = math.Max(hi, res.AvgCompletion)
		}
		spread = hi / lo
	}
	b.ReportMetric(spread, "max/min-completion")
}

// BenchmarkAblationBurstDist compares hyperexponential bursts (CV^2 ~1.5,
// the paper's fit) against exponential bursts (CV^2 = 1) for the parallel
// slowdown with 8 non-idle nodes: burstiness is what drives barrier
// penalties.
func BenchmarkAblationBurstDist(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rng := stats.NewRNG(int64(i + 1))
		var sd [2]float64
		for k, table := range []*workload.Table{
			workload.DefaultTable(),
			workload.DefaultTable().WithSquaredCV(1, 1),
		} {
			cfg := parallel.DefaultBSPConfig()
			cfg.Phases = 60
			cfg.Table = table
			utils := make([]float64, cfg.Procs)
			for j := range utils {
				utils[j] = 0.20
			}
			v, err := parallel.Slowdown(cfg, utils, rng)
			if err != nil {
				b.Fatal(err)
			}
			sd[k] = v
		}
		ratio = sd[0] / sd[1]
	}
	b.ReportMetric(ratio, "hyperexp/exp-slowdown")
}

// BenchmarkAblationFlatVsTwoLevel compares the fine-grain burst model
// against a near-fluid processor-sharing model (bursts shrunk 100x): the
// flat model underestimates the barrier penalty of lingering parallel
// jobs, which is why the paper's two-level composition matters.
func BenchmarkAblationFlatVsTwoLevel(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rng := stats.NewRNG(int64(i + 1))
		var sd [2]float64
		for k, table := range []*workload.Table{
			workload.DefaultTable(),
			workload.DefaultTable().Scaled(0.01),
		} {
			cfg := parallel.DefaultBSPConfig()
			cfg.Phases = 60
			cfg.Table = table
			utils := make([]float64, cfg.Procs)
			for j := range utils {
				utils[j] = 0.20
			}
			v, err := parallel.Slowdown(cfg, utils, rng)
			if err != nil {
				b.Fatal(err)
			}
			sd[k] = v
		}
		ratio = sd[0] / sd[1]
	}
	b.ReportMetric(ratio, "bursty/fluid-slowdown")
}

// BenchmarkAblationContextSwitch sweeps the effective context-switch time
// on a single node (Figure 5's role as an ablation), reporting the LDR
// range.
func BenchmarkAblationContextSwitch(b *testing.B) {
	table := workload.DefaultTable()
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, cs := range []float64{50e-6, 100e-6, 300e-6, 500e-6, 1000e-6} {
			n := node.New(node.Config{ContextSwitch: cs}, table,
				workload.ConstantUtilization(0.2), stats.NewRNG(int64(i+1)))
			n.ServeForeign(math.Inf(1), 500)
			if n.LDR() > worst {
				worst = n.LDR()
			}
		}
	}
	b.ReportMetric(100*worst, "max-LDR-%@1ms")
}

// BenchmarkExtensionArrivals runs the open-system (Poisson arrivals)
// extension, reporting IE's mean-response penalty over LL at moderate
// load.
func BenchmarkExtensionArrivals(b *testing.B) {
	corpus := benchCorpus(b)
	b.ResetTimer()
	var penalty float64
	for i := 0; i < b.N; i++ {
		var resp [2]float64
		for k, p := range []core.Policy{core.LingerLonger, core.ImmediateEviction} {
			cfg := cluster.ArrivalsConfig{Cluster: cluster.Workload1(p), Rate: 0.05, Duration: 1800}
			cfg.Cluster.Seed = int64(i + 1)
			res, err := cluster.RunArrivals(cfg, corpus)
			if err != nil {
				b.Fatal(err)
			}
			resp[k] = res.MeanResponse
		}
		penalty = resp[1] / resp[0]
	}
	b.ReportMetric(penalty, "IE/LL-response")
}

// BenchmarkExtensionHybrid runs the hybrid linger/reconfiguration
// scheduler, reporting its worst ratio to the best fixed strategy across
// the Figure 13 sweep (1.0 = perfect lower-envelope tracking).
func BenchmarkExtensionHybrid(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		cfg := apps.DefaultFig13Config()
		cfg.Seed = int64(i + 1)
		pts, err := apps.FigHybrid(cfg)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, p := range pts {
			if math.IsInf(p.BestFixed, 1) {
				continue
			}
			if r := p.Slowdown / p.BestFixed; r > worst {
				worst = r
			}
		}
	}
	b.ReportMetric(worst, "worst-hybrid/best-fixed")
}

// BenchmarkAblationPredictor compares episode-length predictors for the
// LL migration decision: the paper's 2x-age rule, a fixed horizon, and a
// learning empirical predictor. Reports the completion-time spread.
func BenchmarkAblationPredictor(b *testing.B) {
	corpus := benchCorpus(b)
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		preds := []predict.Predictor{
			predict.MedianLife{},
			predict.FixedHorizon{Horizon: 300},
			&predict.Empirical{MinSamples: 10},
		}
		lo, hi := math.Inf(1), 0.0
		for _, p := range preds {
			cfg := cluster.Workload1(core.LingerLonger)
			cfg.Seed = int64(i + 1)
			cfg.Predictor = p
			res, err := cluster.Run(cfg, corpus)
			if err != nil {
				b.Fatal(err)
			}
			lo = math.Min(lo, res.AvgCompletion)
			hi = math.Max(hi, res.AvgCompletion)
		}
		spread = hi / lo
	}
	b.ReportMetric(spread, "max/min-completion")
}

// BenchmarkAblationPlacement compares placement strategies for queued
// jobs (lowest-utilization, random, first-fit). Reports the spread.
func BenchmarkAblationPlacement(b *testing.B) {
	corpus := benchCorpus(b)
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		lo, hi := math.Inf(1), 0.0
		for _, pl := range []cluster.Placement{cluster.PlaceLowestUtil, cluster.PlaceRandom, cluster.PlaceFirstFit} {
			cfg := cluster.Workload1(core.LingerLonger)
			cfg.Seed = int64(i + 1)
			cfg.Placement = pl
			res, err := cluster.Run(cfg, corpus)
			if err != nil {
				b.Fatal(err)
			}
			lo = math.Min(lo, res.AvgCompletion)
			hi = math.Max(hi, res.AvgCompletion)
		}
		spread = hi / lo
	}
	b.ReportMetric(spread, "max/min-completion")
}
