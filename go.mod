module lingerlonger

go 1.22
