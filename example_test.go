package linger_test

import (
	"fmt"

	"lingerlonger"
)

// The §2 cost model: how long should a foreign job linger on a node whose
// owner has returned before migrating to an idle node?
func ExampleLingerDuration() {
	tmigr := linger.DefaultMigrationCost().Time(8) // 8 MB image over 3 Mbps
	// Busy node at 20% local utilization, idle candidate at 0%.
	tlingr := linger.LingerDuration(0.20, 0, tmigr)
	fmt.Printf("migration cost %.1f s, linger for %.1f s\n", tmigr, tlingr)
	// Output:
	// migration cost 22.3 s, linger for 111.7 s
}

// Policies parse from the paper's abbreviations.
func ExampleParsePolicy() {
	p, _ := linger.ParsePolicy("LL")
	fmt.Println(p, p.Lingers())
	p, _ = linger.ParsePolicy("IE")
	fmt.Println(p, p.Lingers())
	// Output:
	// LL true
	// IE false
}

// A single workstation at 20% owner load still gives a lingering guest
// nearly all of its idle cycles while barely delaying the owner.
func ExampleNewNode() {
	n := linger.NewNode(linger.NodeConfig{ContextSwitch: 100e-6}, 0.20, linger.NewRNG(1))
	delivered := n.ServeForeign(1e9, 1000) // compute-bound guest, 1000 s
	fmt.Printf("guest got %.0f%% of wall time; owner delayed %.1f%%; FCSR %.0f%%\n",
		100*delivered/1000, 100*n.LDR(), 100*n.FCSR())
	// Output:
	// guest got 80% of wall time; owner delayed 0.5%; FCSR 100%
}

// The Figure 3 workload table: burst parameters by utilization level.
func ExampleDefaultWorkloadTable() {
	table := linger.DefaultWorkloadTable()
	p := table.ParamsAt(0.50)
	fmt.Printf("at 50%% utilization: run bursts %.0f ms, idle bursts %.0f ms\n",
		1000*p.RunMean, 1000*p.IdleMean)
	// Output:
	// at 50% utilization: run bursts 50 ms, idle bursts 50 ms
}
