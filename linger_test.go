package linger

import (
	"math"
	"testing"
)

// End-to-end integration through the public facade: generate traces, run
// all four policies on the heavy workload, and verify the paper's
// headline orderings.
func TestEndToEndHeadlines(t *testing.T) {
	corpus, err := GenerateTraces(DefaultTraceConfig(), 8, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	results := map[Policy]*ClusterResult{}
	throughput := map[Policy]*ThroughputResult{}
	for _, p := range Policies() {
		cfg := Workload1(p)
		cfg.Nodes = 32
		cfg.NumJobs = 64
		cfg.JobCPU = 400
		res, err := RunCluster(cfg, corpus)
		if err != nil {
			t.Fatal(err)
		}
		results[p] = res
		tp, err := RunClusterThroughput(cfg, corpus, 1800)
		if err != nil {
			t.Fatal(err)
		}
		throughput[p] = tp
	}

	// Headline 1: lingering improves throughput substantially (the paper:
	// 50-60% over Pause-and-Migrate).
	gain := throughput[LingerLonger].Throughput / throughput[PauseAndMigrate].Throughput
	if gain < 1.2 || gain > 2.5 {
		t.Errorf("LL/PM throughput gain = %.2f, want roughly 1.5-1.6", gain)
	}

	// Headline 2: foreground slowdown is tiny (the paper: 0.5%).
	if d := results[LingerLonger].LocalDelay; d <= 0 || d > 0.007 {
		t.Errorf("LL local delay = %.4f, want positive and <= ~0.5%%", d)
	}

	// Headline 3: average completion improves markedly under load (the
	// paper: 47-49% faster).
	if results[LingerLonger].AvgCompletion >= results[ImmediateEviction].AvgCompletion {
		t.Error("LL did not improve average completion over IE")
	}
	if results[LingerForever].AvgCompletion >= results[ImmediateEviction].AvgCompletion {
		t.Error("LF did not improve average completion over IE")
	}
}

func TestFacadeCostModel(t *testing.T) {
	m := DefaultMigrationCost()
	tmigr := m.Time(8)
	if math.Abs(tmigr-(8*8.0/3+1)) > 1e-9 {
		t.Errorf("Time(8MB) = %g", tmigr)
	}
	tl := LingerDuration(0.2, 0, tmigr)
	if tl <= 0 || math.IsInf(tl, 1) {
		t.Errorf("LingerDuration = %g", tl)
	}
	if _, err := ParsePolicy("LL"); err != nil {
		t.Error(err)
	}
	if len(Policies()) != 4 {
		t.Error("Policies() should list four disciplines")
	}
}

func TestFacadeNodeModel(t *testing.T) {
	n := NewNode(NodeConfig{ContextSwitch: 100e-6}, 0.2, NewRNG(1))
	n.ServeForeign(math.Inf(1), 500)
	if f := n.FCSR(); f < 0.9 {
		t.Errorf("FCSR = %g, want > 0.9", f)
	}
	if l := n.LDR(); l <= 0 || l > 0.05 {
		t.Errorf("LDR = %g, want ~1%%", l)
	}
}

func TestFacadeParallel(t *testing.T) {
	cfg := DefaultBSPConfig()
	cfg.Phases = 30
	utils := make([]float64, cfg.Procs)
	utils[0] = 0.2
	sd, err := BSPSlowdown(cfg, utils, NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if sd < 1 || sd > 2 {
		t.Errorf("slowdown with one 20%%-busy node = %g, want ~1.25", sd)
	}
	if len(Apps()) != 3 {
		t.Error("Apps() should return sor, water, fft")
	}
}

func TestFacadeWorkloadTable(t *testing.T) {
	tbl := DefaultWorkloadTable()
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	p := tbl.ParamsAt(0.5)
	if math.Abs(p.RunMean-0.05) > 0.005 {
		t.Errorf("run mean at 50%% = %g, want ~0.05 (Figure 3)", p.RunMean)
	}
}

func TestFacadeArrivals(t *testing.T) {
	corpus, err := GenerateTraces(DefaultTraceConfig(), 4, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ArrivalsConfig{Cluster: Workload1(LingerLonger), Rate: 0.05, Duration: 600}
	cfg.Cluster.Nodes = 16
	cfg.Cluster.JobCPU = 120
	res, err := RunArrivals(cfg, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived == 0 || res.Completed != res.Arrived {
		t.Errorf("arrivals run incomplete: %+v", res)
	}
}

func TestFacadeTracePresets(t *testing.T) {
	for _, cfg := range []TraceConfig{
		OfficeTraceConfig(), StudentLabTraceConfig(), ServerRoomTraceConfig(),
	} {
		corpus, err := GenerateTraces(cfg, 1, 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(corpus) != 1 || corpus[0].Duration() != 86400 {
			t.Errorf("preset corpus malformed")
		}
	}
}

func TestFacadeHybridChoice(t *testing.T) {
	app := Apps()[0]
	choice, err := app.PickHybrid([]int{8, 16}, 16, 0.2, NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	var _ HybridChoice = choice
	if choice.Procs != 16 {
		t.Errorf("full idle cluster picked %d procs", choice.Procs)
	}
}

func TestFacadeMemoryCDF(t *testing.T) {
	corpus, err := GenerateTraces(DefaultTraceConfig(), 2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	all, idle, nonIdle := MemoryCDF(corpus)
	if all.N() == 0 || idle.N() == 0 || nonIdle.N() == 0 {
		t.Error("empty memory CDFs")
	}
	if all.N() != idle.N()+nonIdle.N() {
		t.Error("idle + non-idle samples do not partition the corpus")
	}
}

func TestFacadeJobStates(t *testing.T) {
	states := []JobState{JobQueued, JobRunning, JobLingering, JobPaused, JobMigrating, JobDone}
	seen := map[string]bool{}
	for _, s := range states {
		if seen[s.String()] {
			t.Errorf("duplicate state name %q", s)
		}
		seen[s.String()] = true
	}
}
