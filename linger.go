// Package linger is the public API of this repository: a faithful
// reproduction of "Linger Longer: Fine-Grain Cycle Stealing for Networks
// of Workstations" (Ryu & Hollingsworth, SC 1998).
//
// The package re-exports the pieces a downstream user needs:
//
//   - the scheduling policies (LingerLonger, LingerForever,
//     ImmediateEviction, PauseAndMigrate) and the linger-duration cost
//     model,
//   - the two-level workload model (fine-grain hyperexponential CPU
//     bursts composed with coarse-grain workstation traces),
//   - the single-node strict-priority model and its LDR/FCSR metrics,
//   - the sequential-job cluster simulator (Figure 7/8 experiments),
//   - the parallel-job simulator (Figures 9-13).
//
// # Quick start
//
//	corpus, _ := linger.GenerateTraces(linger.DefaultTraceConfig(), 16, 1, 1)
//	cfg := linger.Workload1(linger.LingerLonger)
//	res, _ := linger.RunCluster(cfg, corpus)
//	fmt.Printf("avg completion %.0fs, local delay %.2f%%\n",
//	    res.AvgCompletion, 100*res.LocalDelay)
//
// See the examples directory for complete programs and DESIGN.md for the
// mapping from the paper's experiments to this code.
package linger

import (
	"lingerlonger/internal/apps"
	"lingerlonger/internal/cluster"
	"lingerlonger/internal/core"
	"lingerlonger/internal/exp"
	"lingerlonger/internal/node"
	"lingerlonger/internal/parallel"
	"lingerlonger/internal/stats"
	"lingerlonger/internal/trace"
	"lingerlonger/internal/workload"
)

// Policy selects a foreign-job scheduling discipline.
type Policy = core.Policy

// The four policies the paper evaluates.
const (
	LingerLonger      = core.LingerLonger
	LingerForever     = core.LingerForever
	ImmediateEviction = core.ImmediateEviction
	PauseAndMigrate   = core.PauseAndMigrate
)

// Policies lists all four disciplines in the paper's presentation order.
func Policies() []Policy { return core.Policies }

// ParsePolicy converts "LL", "LF", "IE" or "PM" into a Policy.
func ParsePolicy(s string) (Policy, error) { return core.ParsePolicy(s) }

// MigrationCost models process-migration time (fixed endpoint processing
// plus image transfer).
type MigrationCost = core.MigrationCost

// DefaultMigrationCost returns the paper's setting (3 Mbps effective).
func DefaultMigrationCost() MigrationCost { return core.DefaultMigrationCost() }

// LingerDuration returns the cost-model linger duration
// Tlingr = ((1-l)/(h-l)) * Tmigr (§2 of the paper).
func LingerDuration(h, l, tmigr float64) float64 { return core.LingerDuration(h, l, tmigr) }

// RNG is the deterministic random source all simulators consume.
type RNG = stats.RNG

// NewRNG returns a seeded generator; equal seeds reproduce runs exactly.
func NewRNG(seed int64) *RNG { return stats.NewRNG(seed) }

// TraceConfig parameterizes the synthetic workstation-trace generator
// (the substitute for the Arpaci trace corpus; see DESIGN.md §2).
type TraceConfig = trace.Config

// Trace is a coarse-grain workstation trace (2-second samples of CPU,
// free memory, and keyboard activity).
type Trace = trace.Trace

// DefaultTraceConfig returns the calibration matching the paper's §3.2
// statistics and Figure 4.
func DefaultTraceConfig() TraceConfig { return trace.DefaultConfig() }

// OfficeTraceConfig returns a 9-to-5 office environment (idle capacity
// concentrated overnight).
func OfficeTraceConfig() TraceConfig { return trace.OfficeConfig() }

// StudentLabTraceConfig returns a busier round-the-clock lab environment.
func StudentLabTraceConfig() TraceConfig { return trace.StudentLabConfig() }

// ServerRoomTraceConfig returns unattended machines with batch spikes.
func ServerRoomTraceConfig() TraceConfig { return trace.ServerRoomConfig() }

// GenerateTraces synthesizes a corpus of machines traces of days days.
func GenerateTraces(cfg TraceConfig, machines, days int, seed int64) ([]*Trace, error) {
	cfg.Days = days
	return trace.GenerateCorpus(cfg, machines, stats.NewRNG(seed))
}

// WorkloadTable is the fine-grain burst calibration (Figure 3).
type WorkloadTable = workload.Table

// DefaultWorkloadTable returns the 21-bucket Figure 3 calibration.
func DefaultWorkloadTable() *WorkloadTable { return workload.DefaultTable() }

// Node is a single workstation running local bursts plus one low-priority
// foreign job.
type Node = node.Node

// NodeConfig holds single-node parameters (effective context-switch time).
type NodeConfig = node.Config

// NewNode builds a node over a constant local utilization level.
func NewNode(cfg NodeConfig, utilization float64, rng *RNG) *Node {
	return node.New(cfg, workload.DefaultTable(), workload.ConstantUtilization(utilization), rng)
}

// ClusterConfig parameterizes a sequential-job cluster simulation.
type ClusterConfig = cluster.Config

// ClusterResult is the batch-run outcome (Figure 7 metrics + Figure 8
// breakdown).
type ClusterResult = cluster.Result

// ThroughputResult is the constant-population throughput outcome.
type ThroughputResult = cluster.ThroughputResult

// DefaultClusterConfig returns the paper's Workload-1 setting.
func DefaultClusterConfig() ClusterConfig { return cluster.DefaultConfig() }

// Workload1 returns the paper's heavy workload (128 jobs x 600 CPU-s on 64
// nodes).
func Workload1(p Policy) ClusterConfig { return cluster.Workload1(p) }

// Workload2 returns the paper's light workload (16 jobs x 1800 CPU-s).
func Workload2(p Policy) ClusterConfig { return cluster.Workload2(p) }

// DeriveSeed returns the RNG seed for run index of a sweep governed by
// master (a SplitMix64-style mix). Seeding each run of a sweep with
// DeriveSeed(master, i) instead of sharing one RNG stream is what makes
// ParallelMap results independent of the worker count; see DESIGN.md §8.
func DeriveSeed(master int64, index int) int64 { return exp.DeriveSeed(master, index) }

// ParallelMap runs task(0..n-1) on a bounded pool of workers goroutines
// (<= 0 selects GOMAXPROCS) and returns the results ordered by index.
// Tasks must be independent — in particular, randomized tasks should each
// build their own RNG via NewRNG(DeriveSeed(seed, i)) — and then the
// result slice is identical for every worker count. On failure the error
// of the lowest-index failing task is returned.
func ParallelMap[T any](workers, n int, task func(i int) (T, error)) ([]T, error) {
	return exp.Map(workers, n, task)
}

// Runner executes experiment sweeps with crash safety controls: bounded
// worker pools, panic isolation, per-point watchdog timeouts, bounded
// retries, fail-soft collection of failed points, and an optional
// checkpoint store for kill-and-resume runs. See DESIGN.md §10.
type Runner = exp.Runner

// NewRunner returns a Runner over a bounded pool of workers goroutines
// (<= 0 selects GOMAXPROCS).
func NewRunner(workers int) *Runner { return exp.NewRunner(workers) }

// PointError is the typed failure of one sweep point: which sweep, which
// index, after how many attempts, wrapping the underlying cause.
type PointError = exp.PointError

// PanicError is a recovered task panic, carrying the panic value and the
// goroutine stack at the point of the panic.
type PanicError = exp.PanicError

// TraceParseError is a trace-ingestion failure pinned to its input line.
type TraceParseError = trace.ParseError

// LoadTrace reads a trace file in the lltrace text format; malformed,
// truncated, or non-finite input yields a *TraceParseError naming the
// offending line, and a nil error guarantees a valid trace.
func LoadTrace(path string) (*Trace, error) { return trace.Load(path) }

// SaveTrace writes a trace file in the lltrace text format.
func SaveTrace(path string, t *Trace) error { return trace.Save(path, t) }

// RunCluster simulates a batch workload to completion.
func RunCluster(cfg ClusterConfig, corpus []*Trace) (*ClusterResult, error) {
	return cluster.Run(cfg, corpus)
}

// RunClusterThroughput simulates the constant-population throughput
// experiment for dur seconds.
func RunClusterThroughput(cfg ClusterConfig, corpus []*Trace, dur float64) (*ThroughputResult, error) {
	return cluster.RunThroughput(cfg, corpus, dur)
}

// ArrivalsConfig parameterizes the open-system extension: Poisson job
// arrivals instead of a batch (the paper's future-work evaluation).
type ArrivalsConfig = cluster.ArrivalsConfig

// ArrivalsResult summarizes an open-system run.
type ArrivalsResult = cluster.ArrivalsResult

// RunArrivals simulates Poisson job arrivals on the cluster and reports
// response-time statistics.
func RunArrivals(cfg ArrivalsConfig, corpus []*Trace) (*ArrivalsResult, error) {
	return cluster.RunArrivals(cfg, corpus)
}

// BSPConfig describes a bulk-synchronous parallel job.
type BSPConfig = parallel.BSPConfig

// DefaultBSPConfig returns the paper's synthetic parallel job (8
// processes, 100 ms synchronization, NEWS messaging).
func DefaultBSPConfig() BSPConfig { return parallel.DefaultBSPConfig() }

// RunBSP simulates a parallel job whose processes sit on nodes with the
// given local utilizations and returns the completion time.
func RunBSP(cfg BSPConfig, utils []float64, rng *RNG) (float64, error) {
	return parallel.RunBSP(cfg, utils, rng)
}

// BSPSlowdown returns the job's slowdown versus an all-idle run.
func BSPSlowdown(cfg BSPConfig, utils []float64, rng *RNG) (float64, error) {
	return parallel.Slowdown(cfg, utils, rng)
}

// AppProfile is a shared-memory application model (sor, water, fft).
type AppProfile = apps.Profile

// Apps returns the paper's three application profiles.
func Apps() []AppProfile { return apps.Profiles() }

// HybridChoice is the hybrid linger/reconfiguration scheduler's decision
// (the paper's concluding suggestion, implemented as a sampling policy).
type HybridChoice = apps.HybridChoice

// TraceStats aggregates the §3.2 availability statistics over a corpus.
type TraceStats = trace.CorpusStats

// AnalyzeTraces computes availability statistics for a corpus.
func AnalyzeTraces(ts []*Trace) TraceStats { return trace.Analyze(ts) }

// ECDF is an empirical cumulative distribution function.
type ECDF = stats.ECDF

// MemoryCDF returns the Figure 4 free-memory distributions over all
// samples, idle samples, and non-idle samples.
func MemoryCDF(ts []*Trace) (all, idle, nonIdle *ECDF) { return trace.Fig4(ts) }

// Job is one sequential foreign job with its per-state time accounting.
type Job = cluster.Job

// JobState is a job's scheduling state (queued, running, lingering,
// paused, migrating, done).
type JobState = cluster.State

// The job states, matching the Figure 8 breakdown.
const (
	JobQueued    = cluster.Queued
	JobRunning   = cluster.Running
	JobLingering = cluster.Lingering
	JobPaused    = cluster.Paused
	JobMigrating = cluster.Migrating
	JobDone      = cluster.Done
)
