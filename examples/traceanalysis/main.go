// Traceanalysis: the §3 workload characterization as a library user would
// run it — how much idle capacity does a workstation pool really have, and
// how much of it hides inside "non-idle" time that classical cycle
// stealers never touch?
package main

import (
	"fmt"
	"log"

	"lingerlonger"
)

func main() {
	log.SetFlags(0)

	corpus, err := linger.GenerateTraces(linger.DefaultTraceConfig(), 24, 7, 3)
	if err != nil {
		log.Fatal(err)
	}
	cs := linger.AnalyzeTraces(corpus)

	fmt.Printf("corpus: %d machines, %d samples\n\n", cs.Machines, cs.Samples)
	fmt.Printf("recruitment-threshold idleness (CPU < 10%% and no keyboard for 1 min):\n")
	fmt.Printf("  idle:     %5.1f%% of the time (classical cycle stealing can use this)\n",
		100*(1-cs.NonIdleFraction))
	fmt.Printf("  non-idle: %5.1f%% of the time, but its mean CPU is only %.0f%%\n",
		100*cs.NonIdleFraction, 100*cs.MeanCPUNonIdle)
	fmt.Printf("  %.0f%% of non-idle samples sit below 10%% CPU — the headroom lingering exploits\n\n",
		100*cs.FracNonIdleBelow10)

	// Total harvestable CPU: the classical contract versus lingering.
	classic := (1 - cs.NonIdleFraction) * (1 - cs.MeanCPUIdle)
	lingering := classic + cs.NonIdleFraction*(1-cs.MeanCPUNonIdle)
	fmt.Printf("harvestable CPU per workstation:\n")
	fmt.Printf("  idle-only policies:  %.2f cpu-s per second\n", classic)
	fmt.Printf("  with lingering:      %.2f cpu-s per second (+%.0f%%)\n\n",
		lingering, 100*(lingering/classic-1))

	// Memory headroom for a foreign job (Figure 4).
	all, idle, nonIdle := linger.MemoryCDF(corpus)
	fmt.Printf("free memory on 64 MB machines:\n")
	fmt.Printf("  >= 14 MB free %.0f%% of the time; >= 10 MB free %.0f%% of the time\n",
		100*(1-all.At(14)), 100*(1-all.At(10)))
	fmt.Printf("  median free: idle %.0f MB vs non-idle %.0f MB — an 8 MB foreign job fits either way\n",
		idle.Quantile(0.5), nonIdle.Quantile(0.5))
}
