// Prototype: the distributed cycle-stealing system of internal/runtime
// run end-to-end in one process — four workstation agents served over
// loopback TCP, a coordinator running the Linger-Longer policy, and a
// batch of guest jobs that linger through owner activity and migrate only
// when the §2 cost model says the busy episode will outlast the
// migration price.
package main

import (
	"fmt"
	"log"
	"net"

	"lingerlonger/internal/core"
	"lingerlonger/internal/runtime"
)

func main() {
	log.SetFlags(0)

	// Four workstations: two stay quiet; "carol" turns busy after 60 s,
	// "dave" after 120 s.
	owners := []struct {
		name      string
		busyAfter float64
		util      float64
	}{
		{"alice", 1e9, 0},
		{"bob", 1e9, 0},
		{"carol", 60, 0.6},
		{"dave", 120, 0.3},
	}
	var clients []runtime.AgentClient
	for _, o := range owners {
		script, err := runtime.NewScriptedOwner([]runtime.OwnerPhase{
			{Duration: o.busyAfter, Util: 0.02, FreeMB: 40},
			{Duration: 1e9, Util: o.util, Keyboard: true, FreeMB: 28},
		})
		if err != nil {
			log.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := runtime.NewAgentServer(runtime.NewAgent(o.name, script, 64), l)
		defer srv.Close()
		c, err := runtime.DialAgent(srv.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
		fmt.Printf("agent %-6s on %s\n", o.name, srv.Addr())
	}

	cfg := runtime.DefaultCoordinatorConfig()
	cfg.Policy = core.LingerLonger
	coord, err := runtime.NewCoordinator(cfg, clients)
	if err != nil {
		log.Fatal(err)
	}
	const jobs = 4
	for i := 0; i < jobs; i++ {
		if _, err := coord.Submit(200, 8); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nsubmitted %d guest jobs of 200 CPU-s under %v\n\n", jobs, cfg.Policy)

	lastMigr, lastDone := 0, 0
	for coord.Now() < 600 && len(coord.Completed()) < jobs {
		if err := coord.Step(1); err != nil {
			log.Fatal(err)
		}
		if m := coord.Migrations(); m != lastMigr {
			fmt.Printf("t=%3.0fs  migration #%d (job state moved over TCP as a gob snapshot)\n",
				coord.Now(), m)
			lastMigr = m
		}
		for _, d := range coord.Completed()[lastDone:] {
			fmt.Printf("t=%3.0fs  job %d finished on %-6s (response %.0f s)\n",
				coord.Now(), d.Job.ID, d.Agent, d.CompletedAt-d.Job.SubmittedAt)
			lastDone++
		}
	}
	fmt.Printf("\n%d/%d jobs done, %d migrations\n", lastDone, jobs, coord.Migrations())
}
