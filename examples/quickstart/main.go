// Quickstart: build a shared 64-node workstation cluster from synthetic
// traces and compare the four scheduling policies on the paper's heavy
// workload — a minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"lingerlonger"
)

func main() {
	log.SetFlags(0)

	// A corpus of synthetic workstation traces calibrated to the paper's
	// availability statistics (~46% of time non-idle, mostly-idle CPUs).
	corpus, err := linger.GenerateTraces(linger.DefaultTraceConfig(), 16, 7, 1)
	if err != nil {
		log.Fatal(err)
	}
	stats := linger.AnalyzeTraces(corpus)
	fmt.Printf("cluster substrate: %.0f%% of time non-idle, mean CPU %.0f%%\n\n",
		100*stats.NonIdleFraction, 100*stats.MeanCPU)

	fmt.Println("128 foreign jobs x 600 CPU-seconds on 64 nodes:")
	fmt.Printf("%-4s %14s %12s %12s %12s\n", "", "avg job (s)", "family (s)", "cpu/s", "owner delay")
	for _, p := range linger.Policies() {
		cfg := linger.Workload1(p)
		batch, err := linger.RunCluster(cfg, corpus)
		if err != nil {
			log.Fatal(err)
		}
		tp, err := linger.RunClusterThroughput(cfg, corpus, 3600)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4v %14.0f %12.0f %12.1f %11.2f%%\n",
			p, batch.AvgCompletion, batch.FamilyTime, tp.Throughput, 100*batch.LocalDelay)
	}
	fmt.Println("\nLingering (LL/LF) finishes the batch far sooner than eviction (IE/PM)")
	fmt.Println("while delaying workstation owners well under the paper's 0.5% budget.")
}
