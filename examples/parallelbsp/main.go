// Parallelbsp: should a data-parallel job linger on busy workstations or
// reconfigure to fewer idle ones? This example sweeps the cluster's idle
// count for a bulk-synchronous job and for the paper's three shared-memory
// applications, printing the better strategy at each point (§5).
package main

import (
	"fmt"
	"log"

	"lingerlonger"
)

func main() {
	log.SetFlags(0)

	// A 100 ms-granularity BSP job on 8 nodes: how much does one busy
	// workstation at various local loads cost the whole job?
	fmt.Println("BSP job, 8 processes, one non-idle node:")
	cfg := linger.DefaultBSPConfig()
	rng := linger.NewRNG(1)
	for _, u := range []float64{0.1, 0.2, 0.4, 0.6, 0.8} {
		utils := make([]float64, cfg.Procs)
		utils[0] = u
		sd, err := linger.BSPSlowdown(cfg, utils, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  local load %3.0f%% -> slowdown %.2fx\n", 100*u, sd)
	}

	// Linger vs reconfigure for the three applications on a 16-node
	// cluster with 20%-busy non-idle nodes.
	fmt.Println("\nlinger on all 16 nodes vs reconfigure to the idle power-of-two:")
	for _, app := range linger.Apps() {
		full, err := app.BSPFor(16)
		if err != nil {
			log.Fatal(err)
		}
		base, err := linger.RunBSP(full, make([]float64, 16), rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s (comm fraction %.0f%%):\n", app.Name, 100*app.CommFraction())
		for _, idle := range []int{15, 12, 8, 4} {
			utils := make([]float64, 16)
			for i := 0; i < 16-idle; i++ {
				utils[i] = 0.20
			}
			lingerT, err := linger.RunBSP(full, utils, rng)
			if err != nil {
				log.Fatal(err)
			}
			k := largestPow2(idle)
			small, err := app.BSPFor(k)
			if err != nil {
				log.Fatal(err)
			}
			reconfT, err := linger.RunBSP(small, make([]float64, k), rng)
			if err != nil {
				log.Fatal(err)
			}
			best := "linger"
			if reconfT < lingerT {
				best = fmt.Sprintf("reconfigure to %d", k)
			}
			fmt.Printf("    %2d idle: linger %.2fx, reconfig-%d %.2fx -> %s\n",
				idle, lingerT/base, k, reconfT/base, best)
		}
	}
}

func largestPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}
