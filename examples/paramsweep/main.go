// Paramsweep: the paper's motivating scenario — a scientist submits a
// family of related simulation runs ("a collection of simulation runs
// with different parameters") that must all finish before the results are
// usable. Family completion time, not per-job response time, is what
// matters; this example shows how Linger-Longer changes it, and where
// each job spent its life (the Figure 8 view).
//
// The two policy evaluations are independent simulations, so they fan out
// across linger.ParallelMap — the same deterministic worker pool the
// experiment runner uses: each run is seeded explicitly, results come back
// ordered by index, and the output is identical for any worker count.
package main

import (
	"fmt"
	"log"

	"lingerlonger"
)

func main() {
	log.SetFlags(0)

	corpus, err := linger.GenerateTraces(linger.DefaultTraceConfig(), 12, 7, 7)
	if err != nil {
		log.Fatal(err)
	}

	// A sweep of 96 parameter points, each needing 10 CPU-minutes, on a
	// department cluster of 48 workstations.
	const (
		points  = 96
		cpuSecs = 600
		nodes   = 48
	)

	policies := []linger.Policy{linger.ImmediateEviction, linger.LingerLonger}
	results, err := linger.ParallelMap(0, len(policies), func(i int) (*linger.ClusterResult, error) {
		cfg := linger.DefaultClusterConfig()
		cfg.Policy = policies[i]
		cfg.Nodes = nodes
		cfg.NumJobs = points
		cfg.JobCPU = cpuSecs
		return linger.RunCluster(cfg, corpus)
	})
	if err != nil {
		log.Fatal(err)
	}

	for i, p := range policies {
		res := results[i]
		fmt.Printf("%v: sweep of %d runs finished in %.0f s (avg job %.0f s, %d migrations)\n",
			p, points, res.FamilyTime, res.AvgCompletion, res.Migrations)
		b := res.Breakdown
		fmt.Printf("    per-job time: queued %.0fs | running %.0fs | lingering %.0fs | paused %.0fs | migrating %.0fs\n",
			b.Queued, b.Running, b.Lingering, b.Paused, b.Migrating)

		// Where did the slowest run spend its time?
		var worst *linger.Job
		for _, j := range res.Jobs {
			if worst == nil || j.CompletedAt() > worst.CompletedAt() {
				worst = j
			}
		}
		fmt.Printf("    slowest run: %.0f s total, %.0f s of it queued\n\n",
			worst.CompletedAt(), worst.TimeIn(linger.JobQueued))
	}
}
