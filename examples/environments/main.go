// Environments: how much does Linger-Longer buy in different workstation
// pools? The same heavy batch runs on a student lab (busy around the
// clock), a 9-to-5 office (idle overnight), and an unattended server room
// — showing where fine-grain cycle stealing matters most.
package main

import (
	"fmt"
	"log"

	"lingerlonger"
)

func main() {
	log.SetFlags(0)

	envs := []struct {
		name string
		cfg  linger.TraceConfig
	}{
		{"university dept (paper)", linger.DefaultTraceConfig()},
		{"student lab (busier)", linger.StudentLabTraceConfig()},
		{"9-to-5 office", linger.OfficeTraceConfig()},
		{"server room", linger.ServerRoomTraceConfig()},
	}

	fmt.Printf("%-24s %10s | %12s %12s %9s\n",
		"environment", "non-idle", "LL avg (s)", "IE avg (s)", "LL gain")
	for _, env := range envs {
		corpus, err := linger.GenerateTraces(env.cfg, 12, 7, 5)
		if err != nil {
			log.Fatal(err)
		}
		stats := linger.AnalyzeTraces(corpus)

		avg := map[linger.Policy]float64{}
		for _, p := range []linger.Policy{linger.LingerLonger, linger.ImmediateEviction} {
			cfg := linger.Workload1(p)
			cfg.Nodes = 32
			cfg.NumJobs = 64
			cfg.JobCPU = 400
			res, err := linger.RunCluster(cfg, corpus)
			if err != nil {
				log.Fatal(err)
			}
			avg[p] = res.AvgCompletion
		}
		gain := avg[linger.ImmediateEviction]/avg[linger.LingerLonger] - 1
		fmt.Printf("%-24s %9.0f%% | %12.0f %12.0f %8.0f%%\n",
			env.name, 100*stats.NonIdleFraction,
			avg[linger.LingerLonger], avg[linger.ImmediateEviction], 100*gain)
	}
	fmt.Println("\nLingering pays off where machines are busy but lightly used;")
	fmt.Println("in an overnight-idle office or an empty server room the classical")
	fmt.Println("idle-only contract already captures most of the capacity.")
}
