package scenario

import (
	"fmt"
	"sort"
	"sync"

	"lingerlonger/internal/cluster"
	"lingerlonger/internal/core"
	"lingerlonger/internal/stats"
)

// This file holds the two pluggable registries a spec's names resolve
// against. Registration order is semantic: it is the tournament's
// default policy/workload order and the tie-break order of rankings, so
// builtins register in a fixed sequence and late registrations append.

// PolicyEntry is one registered scheduling policy.
type PolicyEntry struct {
	// Name is the spec-facing identifier ("LL", "FS", ...).
	Name string
	// Policy is the core discipline the cluster simulator runs.
	Policy core.Policy
	// Info is a one-line description for listings.
	Info string
}

// PolicyRegistry maps spec names to scheduling policies, preserving
// registration order.
type PolicyRegistry struct {
	mu    sync.RWMutex
	order []string
	m     map[string]PolicyEntry
}

// NewPolicyRegistry returns an empty policy registry.
func NewPolicyRegistry() *PolicyRegistry {
	return &PolicyRegistry{m: map[string]PolicyEntry{}}
}

// Register adds a policy entry. Empty names and duplicates are errors —
// spec names are a file-format protocol, so silently replacing one would
// change what committed scenarios mean.
func (r *PolicyRegistry) Register(e PolicyEntry) error {
	if e.Name == "" {
		return fmt.Errorf("scenario: policy with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[e.Name]; dup {
		return fmt.Errorf("scenario: policy %q already registered", e.Name)
	}
	r.m[e.Name] = e
	r.order = append(r.order, e.Name)
	return nil
}

// Lookup returns the entry registered under name.
func (r *PolicyRegistry) Lookup(name string) (PolicyEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.m[name]
	return e, ok
}

// Names returns the registered policy names in registration order.
func (r *PolicyRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// WorkloadEntry is one registered foreign-job workload family.
type WorkloadEntry struct {
	// Name is the spec-facing identifier ("w1", "pareto", ...).
	Name string
	// Info is a one-line description for listings.
	Info string
	// Legacy is the paper's workload number when this entry reproduces
	// one (1 or 2); 0 for new families. Result documents carry the
	// legacy number when set — that is what keeps spec-driven fig8 runs
	// byte-identical to the legacy sweep.
	Legacy int
	// HeavyTailed marks job-size families with tail index <= 2 (or
	// comparable subexponential mass).
	HeavyTailed bool
	// Apply shapes a cluster config for this family: job count, fixed
	// CPU demand or a JobSizes distribution. quick selects the shrunk
	// smoke-run scale for distributional families (the generic quick
	// shrink of fixed-size fields happens in the scenario task after
	// Apply).
	Apply func(cfg *cluster.Config, quick bool)
}

// WorkloadRegistry maps spec names to workload families, preserving
// registration order.
type WorkloadRegistry struct {
	mu    sync.RWMutex
	order []string
	m     map[string]WorkloadEntry
}

// NewWorkloadRegistry returns an empty workload registry.
func NewWorkloadRegistry() *WorkloadRegistry {
	return &WorkloadRegistry{m: map[string]WorkloadEntry{}}
}

// Register adds a workload entry; empty names, nil Apply functions and
// duplicates are errors.
func (r *WorkloadRegistry) Register(e WorkloadEntry) error {
	if e.Name == "" {
		return fmt.Errorf("scenario: workload with empty name")
	}
	if e.Apply == nil {
		return fmt.Errorf("scenario: workload %q with nil Apply", e.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[e.Name]; dup {
		return fmt.Errorf("scenario: workload %q already registered", e.Name)
	}
	r.m[e.Name] = e
	r.order = append(r.order, e.Name)
	return nil
}

// Lookup returns the entry registered under name.
func (r *WorkloadRegistry) Lookup(name string) (WorkloadEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.m[name]
	return e, ok
}

// Names returns the registered workload names in registration order.
func (r *WorkloadRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// HeavyTailedNames returns the registered heavy-tailed workload names,
// sorted (a convenience for listings and tests).
func (r *WorkloadRegistry) HeavyTailedNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for _, n := range r.order {
		if r.m[n].HeavyTailed {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Policies is the process-wide policy registry: the paper's four
// disciplines plus the fractional-share fifth.
var Policies = NewPolicyRegistry()

// Workloads is the process-wide workload registry: the paper's two
// batch families, a balanced third, and two heavy-tailed job-size
// families.
var Workloads = NewWorkloadRegistry()

// fixedWorkload builds an Apply for a fixed-size family: jobs x cpuSecs.
func fixedWorkload(jobs, cpuSecs float64) func(*cluster.Config, bool) {
	return func(cfg *cluster.Config, quick bool) {
		cfg.NumJobs = jobs
		cfg.JobCPU = cpuSecs
		cfg.JobSizes = nil
	}
}

// distWorkload builds an Apply for a distributional job-size family.
// mean is the full-scale mean CPU demand; quick runs scale it to the
// smoke size (120 s, the same value the generic quick shrink pins JobCPU
// to), and every draw is clamped to [1, 40*mean] so a heavy tail cannot
// outlive the simulation horizon.
func distWorkload(jobs float64, dist func(mean float64) stats.Distribution) func(*cluster.Config, bool) {
	return func(cfg *cluster.Config, quick bool) {
		mean := 600.0
		if quick {
			mean = 120
		}
		cfg.NumJobs = jobs
		cfg.JobCPU = mean
		cfg.JobSizes = stats.Clamped{Dist: dist(mean), Lo: 1, Hi: 40 * mean}
	}
}

func mustRegisterBuiltins() {
	for _, e := range []PolicyEntry{
		{Name: "LL", Policy: core.LingerLonger, Info: "linger at low priority, migrate per the cost model (§2)"},
		{Name: "LF", Policy: core.LingerForever, Info: "linger at low priority, never migrate"},
		{Name: "IE", Policy: core.ImmediateEviction, Info: "migrate or requeue the moment the owner returns"},
		{Name: "PM", Policy: core.PauseAndMigrate, Info: "suspend in place, migrate when the pause expires"},
		{Name: "FS", Policy: core.FractionalShare, Info: "split the CPU with the owner (dynamic fractional resource scheduling)"},
	} {
		if err := Policies.Register(e); err != nil {
			panic(err) // unreachable: static names
		}
	}
	for _, e := range []WorkloadEntry{
		{Name: "w1", Legacy: 1, Info: "paper workload 1: 128 jobs x 600 CPU-s (two per node)",
			Apply: fixedWorkload(128, 600)},
		{Name: "w2", Legacy: 2, Info: "paper workload 2: 16 jobs x 1800 CPU-s (a quarter of the nodes)",
			Apply: fixedWorkload(16, 1800)},
		{Name: "w3", Info: "balanced workload: 64 jobs x 900 CPU-s (one per node)",
			Apply: fixedWorkload(64, 900)},
		{Name: "pareto", HeavyTailed: true,
			Info: "128 jobs, Pareto(alpha=1.5) CPU demands, mean 600 s clamped to [1, 24000]",
			Apply: distWorkload(128, func(mean float64) stats.Distribution {
				// Mean of Pareto is alpha*scale/(alpha-1) = 3*scale at alpha=1.5.
				return stats.Pareto{Scale: mean / 3, Alpha: 1.5}
			})},
		{Name: "lognormal", HeavyTailed: true,
			Info: "128 jobs, log-normal(sigma=1.5) CPU demands, mean 600 s clamped to [1, 24000]",
			Apply: distWorkload(128, func(mean float64) stats.Distribution {
				return stats.NewLognormalMean(mean, 1.5)
			})},
	} {
		if err := Workloads.Register(e); err != nil {
			panic(err) // unreachable: static names
		}
	}
}

func init() { mustRegisterBuiltins() }
