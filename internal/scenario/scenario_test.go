package scenario

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestDecodeClusterDefaults(t *testing.T) {
	s, err := Decode([]byte(`{"scenarioVersion": 1, "name": "x", "kind": "cluster"}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Policy != "LL" || s.Workload != "w1" {
		t.Errorf("singleton axes = (%q, %q), want (LL, w1)", s.Policy, s.Workload)
	}
	if s.Seed != 1 {
		t.Errorf("seed = %d, want 1", s.Seed)
	}
	c := s.Cluster
	if c == nil || c.Nodes != 64 || c.JobMB != 8 || c.MemoryCheck == nil || !*c.MemoryCheck ||
		c.PauseTime != 30 || c.ContextSwitch != 100e-6 || c.MaxTime != 200000 {
		t.Errorf("cluster defaults not materialized: %+v", c)
	}
	if s.Trace == nil || s.Trace.Machines != 16 || s.Trace.Days != 7 {
		t.Errorf("trace defaults not materialized: %+v", s.Trace)
	}
}

func TestDecodeNodeDefaults(t *testing.T) {
	s, err := Decode([]byte(`{"scenarioVersion": 1, "name": "n", "kind": "node"}`))
	if err != nil {
		t.Fatal(err)
	}
	n := s.Node
	if n == nil {
		t.Fatal("node params not materialized")
	}
	if len(n.ContextSwitches) != 3 || n.ContextSwitches[0] != 100e-6 {
		t.Errorf("cs defaults = %v", n.ContextSwitches)
	}
	if len(n.Utilizations) != 19 || n.Utilizations[18] != 0.90 {
		t.Errorf("utils defaults = %v", n.Utilizations)
	}
	if n.Duration != 2000 {
		t.Errorf("dur = %g, want 2000", n.Duration)
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"empty", ``, "decode"},
		{"garbage", `{{{`, "decode"},
		{"not an object", `42`, "decode"},
		{"unknown field", `{"scenarioVersion": 1, "name": "x", "kind": "node", "bogus": 1}`, "bogus"},
		{"trailing data", `{"scenarioVersion": 1, "name": "x", "kind": "node"} {}`, "trailing"},
		{"missing version", `{"name": "x", "kind": "node"}`, "missing scenarioVersion"},
		{"future version", `{"scenarioVersion": 99, "name": "x", "kind": "node"}`, "not supported"},
		{"missing name", `{"scenarioVersion": 1, "kind": "node"}`, "missing name"},
		{"bad name char", `{"scenarioVersion": 1, "name": "X!", "kind": "node"}`, "not in"},
		{"name too long", `{"scenarioVersion": 1, "name": "` + strings.Repeat("a", 65) + `", "kind": "node"}`, "longer than 64"},
		{"missing kind", `{"scenarioVersion": 1, "name": "x"}`, "kind"},
		{"bad kind", `{"scenarioVersion": 1, "name": "x", "kind": "galaxy"}`, "kind"},
		{"node params on cluster", `{"scenarioVersion": 1, "name": "x", "kind": "cluster", "node": {}}`, "only valid for kind"},
		{"cluster params on node", `{"scenarioVersion": 1, "name": "x", "kind": "node", "policy": "LL"}`, "only valid for kind"},
		{"sweep on node", `{"scenarioVersion": 1, "name": "x", "kind": "node", "sweep": {}}`, "only valid for kind"},
		{"unknown policy", `{"scenarioVersion": 1, "name": "x", "kind": "cluster", "policy": "ZZ"}`, "not registered"},
		{"unknown workload", `{"scenarioVersion": 1, "name": "x", "kind": "cluster", "workload": "w9"}`, "not registered"},
		{"nodes out of range", `{"scenarioVersion": 1, "name": "x", "kind": "cluster", "cluster": {"nodes": 5000}}`, "out of range"},
		{"negative jobMB", `{"scenarioVersion": 1, "name": "x", "kind": "cluster", "cluster": {"jobMB": -1}}`, "out of range"},
		{"pauseTime too big", `{"scenarioVersion": 1, "name": "x", "kind": "cluster", "cluster": {"pauseTime": 1e9}}`, "out of range"},
		{"contextSwitch too big", `{"scenarioVersion": 1, "name": "x", "kind": "cluster", "cluster": {"contextSwitch": 1}}`, "out of range"},
		{"negative maxTime", `{"scenarioVersion": 1, "name": "x", "kind": "cluster", "cluster": {"maxTime": -5}}`, "out of range"},
		{"machines out of range", `{"scenarioVersion": 1, "name": "x", "kind": "cluster", "trace": {"machines": 1000}}`, "out of range"},
		{"days out of range", `{"scenarioVersion": 1, "name": "x", "kind": "cluster", "trace": {"days": 99}}`, "out of range"},
		{"axis dup", `{"scenarioVersion": 1, "name": "x", "kind": "cluster", "sweep": {"policies": ["LL", "LL"]}}`, "twice"},
		{"axis unknown", `{"scenarioVersion": 1, "name": "x", "kind": "cluster", "sweep": {"workloads": ["nope"]}}`, "not registered"},
		{"seeds out of range", `{"scenarioVersion": 1, "name": "x", "kind": "cluster", "sweep": {"seeds": 5000}}`, "out of range"},
		{"cs zero", `{"scenarioVersion": 1, "name": "x", "kind": "node", "node": {"cs": [0]}}`, "out of range"},
		{"util negative", `{"scenarioVersion": 1, "name": "x", "kind": "node", "node": {"utils": [-0.1]}}`, "out of range"},
		{"util too high", `{"scenarioVersion": 1, "name": "x", "kind": "node", "node": {"utils": [1.0]}}`, "out of range"},
		{"dur too long", `{"scenarioVersion": 1, "name": "x", "kind": "node", "node": {"dur": 1e9}}`, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.in))
			if err == nil {
				t.Fatalf("Decode(%q) succeeded, want error containing %q", tc.in, tc.want)
			}
			if !errors.Is(err, ErrInvalidSpec) {
				t.Errorf("error %v does not wrap ErrInvalidSpec", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestDecodeSizeCap(t *testing.T) {
	big := append([]byte(`{"scenarioVersion": 1, "name": "x", "kind": "node"`),
		bytes.Repeat([]byte(" "), MaxSpecBytes)...)
	big = append(big, '}')
	if _, err := Decode(big); err == nil || !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("oversized spec: err = %v, want ErrInvalidSpec", err)
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	// Two spellings of the same scenario must share canonical bytes and
	// digest; re-decoding the canonical form must be a fixed point.
	a, err := Decode([]byte(`{"scenarioVersion": 1, "name": "x", "kind": "cluster"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode([]byte(`{"scenarioVersion": 1, "name": "x", "kind": "cluster",
		"policy": "LL", "workload": "w1", "seed": 1,
		"cluster": {"nodes": 64}, "trace": {"machines": 16, "days": 7},
		"sweep": {}}`))
	if err != nil {
		t.Fatal(err)
	}
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Errorf("canonical forms differ:\n%s\n%s", ca, cb)
	}
	da, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if len(da) != 64 {
		t.Errorf("digest %q is not sha256 hex", da)
	}
	again, err := Decode(ca)
	if err != nil {
		t.Fatalf("canonical form does not re-decode: %v", err)
	}
	c2, err := again.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, c2) {
		t.Errorf("canonical form is not a fixed point:\n%s\n%s", ca, c2)
	}
}

func TestDigestSeparates(t *testing.T) {
	specs := []string{
		`{"scenarioVersion": 1, "name": "x", "kind": "cluster"}`,
		`{"scenarioVersion": 1, "name": "x", "kind": "cluster", "policy": "FS"}`,
		`{"scenarioVersion": 1, "name": "x", "kind": "cluster", "seed": 2}`,
		`{"scenarioVersion": 1, "name": "y", "kind": "cluster"}`,
		`{"scenarioVersion": 1, "name": "x", "kind": "node"}`,
	}
	seen := map[string]string{}
	for _, in := range specs {
		s, err := Decode([]byte(in))
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		d, err := s.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[d]; dup {
			t.Errorf("digest collision between %s and %s", prev, in)
		}
		seen[d] = in
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	s, err := Decode([]byte(`{"scenarioVersion": 1, "name": "x", "kind": "cluster",
		"sweep": {"policies": ["LL", "FS"], "seeds": 3}}`))
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	after, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("Normalize is not idempotent:\n%s\n%s", before, after)
	}
}

func TestSingletonSweepDropped(t *testing.T) {
	s, err := Decode([]byte(`{"scenarioVersion": 1, "name": "x", "kind": "cluster", "sweep": {"seeds": 1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Sweep != nil {
		t.Errorf("singleton sweep survived normalization: %+v", s.Sweep)
	}
}
