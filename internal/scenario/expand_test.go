package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"lingerlonger/internal/exp"
)

func mustDecode(t *testing.T, in string) *Spec {
	t.Helper()
	s, err := Decode([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExpandClusterAxes(t *testing.T) {
	s := mustDecode(t, `{"scenarioVersion": 1, "name": "ax", "kind": "cluster", "seed": 7,
		"sweep": {"workloads": ["w1", "w2"], "policies": ["LL", "FS"], "seeds": 2}}`)
	id, specs, err := Expand(s, true)
	if err != nil {
		t.Fatal(err)
	}
	if id != "ax" {
		t.Errorf("sweep id = %q, want ax", id)
	}
	if len(specs) != 8 {
		t.Fatalf("expanded %d points, want 8 (2 workloads x 2 policies x 2 seeds)", len(specs))
	}
	// Workloads are the outer axis, policies next, replications innermost.
	wantOrder := []struct{ wl, pol string }{
		{"w1", "LL"}, {"w1", "LL"}, {"w1", "FS"}, {"w1", "FS"},
		{"w2", "LL"}, {"w2", "LL"}, {"w2", "FS"}, {"w2", "FS"},
	}
	for i, ps := range specs {
		if ps.Task != TaskName || ps.Sweep != "ax" || ps.Index != i {
			t.Errorf("spec %d: task=%q sweep=%q index=%d", i, ps.Task, ps.Sweep, ps.Index)
		}
		if want := exp.DeriveSeed(7, i); ps.Seed != want {
			t.Errorf("spec %d: seed = %d, want DeriveSeed(7, %d) = %d", i, ps.Seed, i, want)
		}
		var p PointParams
		if err := json.Unmarshal(ps.Params, &p); err != nil {
			t.Fatal(err)
		}
		if p.Workload != wantOrder[i].wl || p.Policy != wantOrder[i].pol {
			t.Errorf("spec %d: (%s, %s), want (%s, %s)", i, p.Workload, p.Policy, wantOrder[i].wl, wantOrder[i].pol)
		}
		if !p.Quick || p.Kind != KindCluster || p.Cluster == nil || p.Trace == nil {
			t.Errorf("spec %d: params not fully resolved: %+v", i, p)
		}
	}
}

func TestExpandNodeQuickGrid(t *testing.T) {
	s := mustDecode(t, `{"scenarioVersion": 1, "name": "n", "kind": "node"}`)
	_, full, err := Expand(s, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 3*19 {
		t.Errorf("full grid has %d points, want 57", len(full))
	}
	_, quick, err := Expand(s, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(quick) != 3*4 {
		t.Fatalf("quick grid has %d points, want 12", len(quick))
	}
	var p PointParams
	if err := json.Unmarshal(quick[0].Params, &p); err != nil {
		t.Fatal(err)
	}
	if p.Node == nil || p.Node.Duration != 200 || p.Node.Utilization != 0 {
		t.Errorf("quick cell not pinned to smoke grid: %+v", p.Node)
	}
}

func TestExpandRejectsInvalid(t *testing.T) {
	s := &Spec{Version: SpecVersion, Name: "Bad Name", Kind: KindNode}
	if _, _, err := Expand(s, false); err == nil {
		t.Error("Expand accepted an invalid spec")
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	s := mustDecode(t, `{"scenarioVersion": 1, "name": "det", "kind": "cluster",
		"sweep": {"workloads": ["w1", "pareto"], "policies": ["LL", "FS"]}}`)
	_, specs, err := Expand(s, true)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(1, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Run(8, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(serial), len(specs))
	}
	for i := range serial {
		if !bytes.Equal(serial[i], pooled[i]) {
			t.Errorf("point %d differs between workers=1 and workers=8:\n%s\n%s",
				i, serial[i], pooled[i])
		}
	}
}

func TestNodeTaskMatchesLegacyShape(t *testing.T) {
	s := mustDecode(t, `{"scenarioVersion": 1, "name": "n", "kind": "node",
		"node": {"cs": [0.0001], "utils": [0.3], "dur": 200}}`)
	_, specs, err := Expand(s, false)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Task(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	var pt NodePoint
	if err := json.Unmarshal(out, &pt); err != nil {
		t.Fatal(err)
	}
	if pt.ContextSwitch != 0.0001 || pt.Utilization != 0.3 {
		t.Errorf("point echoes wrong cell: %+v", pt)
	}
	if pt.FCSR <= 0 || pt.FCSR > 1 {
		t.Errorf("FCSR = %g out of (0, 1]", pt.FCSR)
	}
}

func TestTaskErrors(t *testing.T) {
	mk := func(params string) exp.PointSpec {
		return exp.PointSpec{Task: TaskName, Sweep: "x", Seed: 1, Params: []byte(params)}
	}
	cases := []struct {
		name string
		spec exp.PointSpec
	}{
		{"malformed params", mk(`{{`)},
		{"unknown kind", mk(`{"kind": "galaxy"}`)},
		{"unregistered policy", mk(`{"kind": "cluster", "policy": "ZZ", "workload": "w1"}`)},
		{"unregistered workload", mk(`{"kind": "cluster", "policy": "LL", "workload": "zz"}`)},
		{"cluster without params", mk(`{"kind": "cluster", "policy": "LL", "workload": "w1"}`)},
		{"node without cell", mk(`{"kind": "node"}`)},
		{"node bad duration", mk(`{"kind": "node", "node": {"cs": 0.0001, "util": 0.3, "dur": 0}}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Task(tc.spec); err == nil {
				t.Errorf("Task(%s) succeeded", tc.spec.Params)
			}
		})
	}
}

func TestRunRejectsForeignTask(t *testing.T) {
	specs := []exp.PointSpec{{Task: "cluster", Sweep: "x", Seed: 1, Params: []byte(`{}`)}}
	if _, err := Run(1, specs, nil); err == nil {
		t.Error("Run accepted a non-scenario task")
	}
}
