package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fakeResults marshals one ClusterPoint per (workload, policy) cell with
// the given average completion times, workload-major like the expansion.
func fakeResults(t *testing.T, wls, pols []string, avg map[string]float64) [][]byte {
	t.Helper()
	var out [][]byte
	for _, wl := range wls {
		for _, pol := range pols {
			b, err := json.Marshal(ClusterPoint{Policy: pol, Workload: wl, AvgCompletion: avg[wl+"/"+pol]})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b)
		}
	}
	return out
}

func tournamentSpec(t *testing.T, wls, pols []string) *Spec {
	t.Helper()
	s := &Spec{
		Version: SpecVersion,
		Name:    "tournament",
		Kind:    KindCluster,
		Sweep:   &Axes{Policies: pols, Workloads: wls},
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildTournamentDefaults(t *testing.T) {
	spec, specs, err := BuildTournament(TournamentConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	np, nw := len(Policies.Names()), len(Workloads.Names())
	if len(specs) != np*nw {
		t.Errorf("expanded %d cells, want %d x %d", len(specs), nw, np)
	}
	if spec.Seed != 1 || spec.Name != "tournament" {
		t.Errorf("spec = %+v", spec)
	}
}

func TestRankOrdersAndScores(t *testing.T) {
	wls, pols := []string{"w1", "w2"}, []string{"LL", "LF", "IE"}
	s := tournamentSpec(t, wls, pols)
	res := fakeResults(t, wls, pols, map[string]float64{
		"w1/LL": 100, "w1/LF": 200, "w1/IE": 400,
		"w2/LL": 300, "w2/LF": 150, "w2/IE": 150, // LF/IE tie: axis order wins
	})
	rep, err := Rank(s, true, res)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Rankings[0].Order[0].Policy; got != "LL" {
		t.Errorf("w1 winner = %s, want LL", got)
	}
	if got := rep.Rankings[1].Order[0].Policy; got != "LF" {
		t.Errorf("w2 winner = %s, want LF (tie broken by axis order)", got)
	}
	if got := rep.Rankings[1].Order[1].Policy; got != "IE" {
		t.Errorf("w2 runner-up = %s, want IE", got)
	}
	// LL: 100/100 + 300/150 = 3.0 over 2 workloads -> 1.5
	// LF: 200/100 + 150/150 = 3.0 -> 1.5 (tie with LL, axis order)
	// IE: 400/100 + 150/150 = 5.0 -> 2.5
	if rep.Overall[0].Policy != "LL" || rep.Overall[1].Policy != "LF" || rep.Overall[2].Policy != "IE" {
		t.Errorf("overall = %+v", rep.Overall)
	}
	if rep.Overall[0].Score != 1.5 || rep.Overall[2].Score != 2.5 {
		t.Errorf("scores = %g, %g; want 1.5, 2.5", rep.Overall[0].Score, rep.Overall[2].Score)
	}
	data, err := EncodeTournament(rep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTournamentReport(data); err != nil {
		t.Errorf("self-encoded report fails validation: %v", err)
	}
}

func TestRankIncompleteCellsLast(t *testing.T) {
	wls, pols := []string{"w1"}, []string{"LL", "LF"}
	s := tournamentSpec(t, wls, pols)
	res := fakeResults(t, wls, pols, map[string]float64{
		"w1/LL": 0, // nothing completed
		"w1/LF": 500,
	})
	rep, err := Rank(s, false, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rankings[0].Order[0].Policy != "LF" || rep.Rankings[0].Order[1].Policy != "LL" {
		t.Errorf("incomplete cell did not rank last: %+v", rep.Rankings[0].Order)
	}
	if rep.Overall[1].Policy != "LL" || rep.Overall[1].Score != incompletePenalty {
		t.Errorf("incomplete overall = %+v, want LL at penalty %g", rep.Overall[1], float64(incompletePenalty))
	}
	// JSON must stay encodable (finite scores).
	if _, err := EncodeTournament(rep); err != nil {
		t.Errorf("report with incomplete cells does not encode: %v", err)
	}
}

func TestRankErrors(t *testing.T) {
	wls, pols := []string{"w1"}, []string{"LL"}
	good := fakeResults(t, wls, pols, map[string]float64{"w1/LL": 100})

	noSweep := &Spec{Version: SpecVersion, Name: "t", Kind: KindCluster}
	if err := noSweep.Normalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := Rank(noSweep, false, good); err == nil {
		t.Error("Rank accepted a spec without sweep axes")
	}

	multi := tournamentSpec(t, wls, pols)
	multi.Sweep = &Axes{Policies: pols, Workloads: wls, Seeds: 2}
	if _, err := Rank(multi, false, good); err == nil {
		t.Error("Rank accepted seeds != 1")
	}

	s := tournamentSpec(t, wls, pols)
	if _, err := Rank(s, false, nil); err == nil {
		t.Error("Rank accepted wrong result count")
	}
	if _, err := Rank(s, false, [][]byte{[]byte(`{{`)}); err == nil {
		t.Error("Rank accepted malformed cell bytes")
	}
	wrong := fakeResults(t, wls, []string{"LF"}, map[string]float64{"w1/LF": 100})
	if _, err := Rank(s, false, wrong); err == nil {
		t.Error("Rank accepted a cell reporting the wrong policy")
	}
}

func TestValidateTournamentReportRejects(t *testing.T) {
	wls, pols := []string{"w1", "w2"}, []string{"LL", "LF"}
	s := tournamentSpec(t, wls, pols)
	rep, err := Rank(s, true, fakeResults(t, wls, pols, map[string]float64{
		"w1/LL": 100, "w1/LF": 200, "w2/LL": 300, "w2/LF": 150,
	}))
	if err != nil {
		t.Fatal(err)
	}
	good, err := EncodeTournament(rep)
	if err != nil {
		t.Fatal(err)
	}

	tamper := func(mod func(r *TournamentReport)) []byte {
		var r TournamentReport
		if err := json.Unmarshal(good, &r); err != nil {
			t.Fatal(err)
		}
		mod(&r)
		out, err := EncodeTournament(&r)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"garbage", []byte(`not json`)},
		{"unknown field", []byte(`{"schemaVersion": 1, "bogus": true}`)},
		{"trailing data", append(append([]byte{}, good...), []byte("{}")...)},
		{"oversized", bytes.Repeat([]byte(" "), MaxTournamentBytes+1)},
		{"schema skew", tamper(func(r *TournamentReport) { r.SchemaVersion = 2 })},
		{"bad digest", tamper(func(r *TournamentReport) { r.Digest = "short" })},
		{"empty axes", tamper(func(r *TournamentReport) { r.Workloads = nil })},
		{"cell count", tamper(func(r *TournamentReport) { r.Cells = r.Cells[:3] })},
		{"cell order", tamper(func(r *TournamentReport) {
			r.Cells[0], r.Cells[1] = r.Cells[1], r.Cells[0]
		})},
		{"ranking count", tamper(func(r *TournamentReport) { r.Rankings = r.Rankings[:1] })},
		{"ranking workload", tamper(func(r *TournamentReport) { r.Rankings[0].Workload = "w2" })},
		{"rank gap", tamper(func(r *TournamentReport) { r.Rankings[0].Order[1].Rank = 5 })},
		{"rank dup policy", tamper(func(r *TournamentReport) {
			r.Rankings[0].Order[1].Policy = r.Rankings[0].Order[0].Policy
		})},
		{"rank unknown policy", tamper(func(r *TournamentReport) { r.Overall[0].Policy = "ZZ" })},
		{"negative score", tamper(func(r *TournamentReport) { r.Overall[0].Score = -1 })},
		{"overall short", tamper(func(r *TournamentReport) { r.Overall = r.Overall[:1] })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ValidateTournamentReport(tc.data); err == nil {
				t.Error("tampered report validated")
			}
		})
	}
}

func TestTournamentEndToEndDeterministic(t *testing.T) {
	// A restricted quick tournament, computed twice with different worker
	// counts, must produce byte-identical reports.
	cfg := TournamentConfig{
		Quick:     true,
		Policies:  []string{"LL", "FS"},
		Workloads: []string{"w2", "pareto"},
	}
	encode := func(workers int) []byte {
		spec, specs, err := BuildTournament(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results, err := Run(workers, specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Rank(spec, true, results)
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeTournament(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	serial := encode(1)
	pooled := encode(8)
	if !bytes.Equal(serial, pooled) {
		t.Errorf("tournament differs between workers=1 and workers=8:\n%s\n%s", serial, pooled)
	}
	rep, err := ValidateTournamentReport(serial)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Errorf("report has %d cells, want 4", len(rep.Cells))
	}
	if !strings.Contains(string(serial), `"digest"`) {
		t.Error("report is missing its digest")
	}
}

func TestBuildTournamentRejectsUnknownNames(t *testing.T) {
	if _, _, err := BuildTournament(TournamentConfig{Policies: []string{"ZZ"}}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, _, err := BuildTournament(TournamentConfig{Workloads: []string{"zz"}}); err == nil {
		t.Error("unknown workload accepted")
	}
}
