package scenario

import (
	"reflect"
	"testing"

	"lingerlonger/internal/cluster"
	"lingerlonger/internal/core"
)

func TestBuiltinRegistrationOrder(t *testing.T) {
	if got, want := Policies.Names(), []string{"LL", "LF", "IE", "PM", "FS"}; !reflect.DeepEqual(got, want) {
		t.Errorf("policy order = %v, want %v", got, want)
	}
	if got, want := Workloads.Names(), []string{"w1", "w2", "w3", "pareto", "lognormal"}; !reflect.DeepEqual(got, want) {
		t.Errorf("workload order = %v, want %v", got, want)
	}
	if got, want := Workloads.HeavyTailedNames(), []string{"lognormal", "pareto"}; !reflect.DeepEqual(got, want) {
		t.Errorf("heavy-tailed = %v, want %v", got, want)
	}
}

func TestBuiltinEntries(t *testing.T) {
	fs, ok := Policies.Lookup("FS")
	if !ok || fs.Policy != core.FractionalShare {
		t.Errorf("FS lookup = (%+v, %t)", fs, ok)
	}
	w1, ok := Workloads.Lookup("w1")
	if !ok || w1.Legacy != 1 || w1.HeavyTailed {
		t.Errorf("w1 lookup = (%+v, %t)", w1, ok)
	}
	var cfg cluster.Config
	w1.Apply(&cfg, false)
	if cfg.NumJobs != 128 || cfg.JobCPU != 600 || cfg.JobSizes != nil {
		t.Errorf("w1 apply: %+v", cfg)
	}
	par, ok := Workloads.Lookup("pareto")
	if !ok || par.Legacy != 0 || !par.HeavyTailed {
		t.Errorf("pareto lookup = (%+v, %t)", par, ok)
	}
	par.Apply(&cfg, true)
	if cfg.JobCPU != 120 || cfg.JobSizes == nil {
		t.Errorf("pareto quick apply: JobCPU=%g JobSizes=%v", cfg.JobCPU, cfg.JobSizes)
	}
	if m := cfg.JobSizes.Mean(); m < 100 || m > 140 {
		t.Errorf("pareto quick mean = %g, want ~120", m)
	}
}

func TestPolicyRegisterErrors(t *testing.T) {
	r := NewPolicyRegistry()
	if err := r.Register(PolicyEntry{}); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register(PolicyEntry{Name: "X"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(PolicyEntry{Name: "X"}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Error("lookup of unregistered name succeeded")
	}
}

func TestWorkloadRegisterErrors(t *testing.T) {
	r := NewWorkloadRegistry()
	apply := func(*cluster.Config, bool) {}
	if err := r.Register(WorkloadEntry{Apply: apply}); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register(WorkloadEntry{Name: "x"}); err == nil {
		t.Error("nil Apply accepted")
	}
	if err := r.Register(WorkloadEntry{Name: "x", Apply: apply}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(WorkloadEntry{Name: "x", Apply: apply}); err == nil {
		t.Error("duplicate name accepted")
	}
}
