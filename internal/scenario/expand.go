package scenario

import (
	"encoding/json"
	"fmt"
	"math"

	"lingerlonger/internal/cluster"
	"lingerlonger/internal/exp"
	"lingerlonger/internal/node"
	"lingerlonger/internal/obs"
	"lingerlonger/internal/stats"
	"lingerlonger/internal/trace"
	"lingerlonger/internal/workload"
)

// This file turns a normalized spec into executable sweep points and
// implements the "scenario" task that computes one. The cluster and node
// branches deliberately mirror the legacy fabric tasks operation for
// operation — same config construction, same two-space seed derivation,
// same quick shrink, same result field order — which is what lets the
// committed scenarios/ specs reproduce the legacy sweeps byte for byte
// (pinned by golden_test.go).

// TaskName is the fabric task every scenario point runs under; it is
// registered in fabric.BuiltinTasks so agents and serial drivers agree
// on what a scenario spec means.
const TaskName = "scenario"

// PointParams is the canonical JSON parameter document of one scenario
// point: the fully resolved slice of the spec this point computes.
type PointParams struct {
	// Kind is the simulator branch: KindCluster or KindNode.
	Kind string `json:"kind"`
	// Quick selects the shrunk smoke-run scale.
	Quick bool `json:"quick,omitempty"`
	// Policy is the registered policy name (cluster points).
	Policy string `json:"policy,omitempty"`
	// Workload is the registered workload name (cluster points).
	Workload string `json:"workload,omitempty"`
	// Cluster carries the resolved cluster shape (cluster points).
	Cluster *ClusterParams `json:"cluster,omitempty"`
	// Trace carries the resolved corpus shape (cluster points).
	Trace *TraceParams `json:"trace,omitempty"`
	// Node carries the single grid cell of a node point.
	Node *NodeCell `json:"node,omitempty"`
}

// NodeCell is one (context-switch, utilization) cell of a node scenario.
type NodeCell struct {
	// ContextSwitch is the effective context-switch time, seconds.
	ContextSwitch float64 `json:"cs"`
	// Utilization is the owner CPU utilization.
	Utilization float64 `json:"util"`
	// Duration is the simulated seconds.
	Duration float64 `json:"dur"`
}

// ClusterPoint is the result document of a cluster scenario point. The
// field names and order match the legacy fabric cluster task; Workload
// is the paper's workload number for legacy families and the registered
// name for new ones.
type ClusterPoint struct {
	// Policy echoes the registered policy name.
	Policy string `json:"policy"`
	// Workload is the legacy number (1, 2) or the registry name.
	Workload any `json:"workload"`
	// AvgCompletion is the mean submission-to-completion time, seconds.
	AvgCompletion float64 `json:"avgCompletion"`
	// Variation is the coefficient of variation of execution time.
	Variation float64 `json:"variation"`
	// FamilyTime is the completion time of the last job, seconds.
	FamilyTime float64 `json:"familyTime"`
	// LocalDelay is the owner slowdown fraction.
	LocalDelay float64 `json:"localDelay"`
	// Queued is the average per-job seconds in the queued state.
	Queued float64 `json:"queued"`
	// Running is the average per-job seconds running at full speed.
	Running float64 `json:"running"`
	// Lingering is the average per-job seconds lingering or sharing.
	Lingering float64 `json:"lingering"`
	// Paused is the average per-job seconds suspended in place.
	Paused float64 `json:"paused"`
	// Migrating is the average per-job seconds in transit.
	Migrating float64 `json:"migrating"`
	// Migrations counts migrations started.
	Migrations int `json:"migrations"`
	// Evictions counts evictions that found no destination.
	Evictions int `json:"evictions"`
	// Incomplete counts jobs unfinished at the horizon.
	Incomplete int `json:"incomplete"`
}

// NodePoint is the result document of a node scenario point, matching
// the legacy fabric node task.
type NodePoint struct {
	// ContextSwitch echoes the cell's context-switch time, seconds.
	ContextSwitch float64 `json:"cs"`
	// Utilization echoes the cell's owner utilization.
	Utilization float64 `json:"util"`
	// LDR is the local-delay ratio.
	LDR float64 `json:"ldr"`
	// FCSR is the foreign cycle-stealing ratio.
	FCSR float64 `json:"fcsr"`
}

// quickUtils is the fixed utilization grid quick node runs use (the
// legacy quick sweep's axes).
var quickUtils = []float64{0, 0.3, 0.6, 0.9}

// Expand expands a normalized spec into its point specs: the sweep ID is
// the scenario name, parameters are canonical JSON, and per-point seeds
// come from exp.DeriveSeed(spec.Seed, index) — so the expansion is a
// pure function of (spec, quick) and fabric runs stay byte-identical to
// serial ones. Cluster scenarios iterate workloads (outer) x policies x
// replications (inner); node scenarios iterate context switches (outer)
// x utilizations (inner). quick shrinks the computation, never the axes
// — except node utilizations and duration, which quick pins to the fixed
// smoke grid exactly like the legacy sweep.
func Expand(s *Spec, quick bool) (string, []exp.PointSpec, error) {
	if err := s.Normalize(); err != nil {
		return "", nil, err
	}
	var specs []exp.PointSpec
	add := func(params PointParams) error {
		b, err := json.Marshal(params)
		if err != nil {
			return err
		}
		i := len(specs)
		specs = append(specs, exp.PointSpec{
			Task:   TaskName,
			Sweep:  s.Name,
			Index:  i,
			Seed:   exp.DeriveSeed(s.Seed, i),
			Params: b,
		})
		return nil
	}
	switch s.Kind {
	case KindCluster:
		wls, pols, reps := []string{s.Workload}, []string{s.Policy}, 1
		if s.Sweep != nil {
			if len(s.Sweep.Workloads) > 0 {
				wls = s.Sweep.Workloads
			}
			if len(s.Sweep.Policies) > 0 {
				pols = s.Sweep.Policies
			}
			reps = s.Sweep.Seeds
		}
		for _, wl := range wls {
			for _, pol := range pols {
				for r := 0; r < reps; r++ {
					err := add(PointParams{
						Kind:     KindCluster,
						Quick:    quick,
						Policy:   pol,
						Workload: wl,
						Cluster:  s.Cluster,
						Trace:    s.Trace,
					})
					if err != nil {
						return "", nil, err
					}
				}
			}
		}
	case KindNode:
		utils, dur := s.Node.Utilizations, s.Node.Duration
		if quick {
			utils, dur = quickUtils, 200
		}
		for _, cs := range s.Node.ContextSwitches {
			for _, u := range utils {
				err := add(PointParams{
					Kind:  KindNode,
					Quick: quick,
					Node:  &NodeCell{ContextSwitch: cs, Utilization: u, Duration: dur},
				})
				if err != nil {
					return "", nil, err
				}
			}
		}
	}
	return s.Name, specs, nil
}

// Task computes one scenario point — the exp.TaskFunc behind TaskName.
// It is pure: all randomness derives from spec.Seed, and the output is
// canonical JSON (ClusterPoint or NodePoint).
func Task(spec exp.PointSpec) ([]byte, error) {
	var p PointParams
	if err := json.Unmarshal(spec.Params, &p); err != nil {
		return nil, fmt.Errorf("scenario: point params: %w", err)
	}
	switch p.Kind {
	case KindCluster:
		return runClusterPoint(p, spec.Seed)
	case KindNode:
		return runNodePoint(p, spec.Seed)
	default:
		return nil, fmt.Errorf("scenario: point kind %q (want %q or %q)", p.Kind, KindCluster, KindNode)
	}
}

func runClusterPoint(p PointParams, seed int64) ([]byte, error) {
	pe, ok := Policies.Lookup(p.Policy)
	if !ok {
		return nil, fmt.Errorf("scenario: policy %q not registered (have %v)", p.Policy, Policies.Names())
	}
	we, ok := Workloads.Lookup(p.Workload)
	if !ok {
		return nil, fmt.Errorf("scenario: workload %q not registered (have %v)", p.Workload, Workloads.Names())
	}
	if p.Cluster == nil || p.Trace == nil {
		return nil, fmt.Errorf("scenario: cluster point without cluster/trace params")
	}
	cfg := cluster.DefaultConfig()
	cfg.Policy = pe.Policy
	we.Apply(&cfg, p.Quick)
	cfg.Nodes = p.Cluster.Nodes
	cfg.JobMB = p.Cluster.JobMB
	cfg.MemoryCheck = *p.Cluster.MemoryCheck
	cfg.PauseTime = p.Cluster.PauseTime
	cfg.ContextSwitch = p.Cluster.ContextSwitch
	cfg.MaxTime = p.Cluster.MaxTime
	tcfg := trace.DefaultConfig()
	machines := p.Trace.Machines
	tcfg.Days = p.Trace.Days
	if p.Quick {
		machines, tcfg.Days = 6, 1
		cfg.Nodes = 16
		cfg.NumJobs = math.Min(cfg.NumJobs, 24)
		cfg.JobCPU = 120
	}
	// Two independent seed spaces off the point seed — the same split the
	// legacy fabric cluster task uses: one for the trace corpus, one for
	// the simulation itself.
	corpus, err := trace.GenerateCorpus(tcfg, machines, stats.NewRNG(exp.DeriveSeed(seed, 0)))
	if err != nil {
		return nil, err
	}
	cfg.Seed = exp.DeriveSeed(seed, 1)
	res, err := cluster.Run(cfg, corpus)
	if err != nil {
		return nil, err
	}
	var wlLabel any = we.Name
	if we.Legacy != 0 {
		wlLabel = we.Legacy
	}
	return json.Marshal(ClusterPoint{
		Policy:        p.Policy,
		Workload:      wlLabel,
		AvgCompletion: res.AvgCompletion,
		Variation:     res.Variation,
		FamilyTime:    res.FamilyTime,
		LocalDelay:    res.LocalDelay,
		Queued:        res.Breakdown.Queued,
		Running:       res.Breakdown.Running,
		Lingering:     res.Breakdown.Lingering,
		Paused:        res.Breakdown.Paused,
		Migrating:     res.Breakdown.Migrating,
		Migrations:    res.Migrations,
		Evictions:     res.Evictions,
		Incomplete:    res.Incomplete,
	})
}

func runNodePoint(p PointParams, seed int64) ([]byte, error) {
	c := p.Node
	if c == nil {
		return nil, fmt.Errorf("scenario: node point without a cell")
	}
	if c.Duration <= 0 {
		return nil, fmt.Errorf("scenario: node duration %g must be positive", c.Duration)
	}
	n := node.New(
		node.Config{ContextSwitch: c.ContextSwitch, BurstLookahead: 64},
		workload.DefaultTable(),
		workload.ConstantUtilization(c.Utilization),
		stats.NewRNG(seed),
	)
	n.ServeForeign(math.Inf(1), c.Duration)
	return json.Marshal(NodePoint{
		ContextSwitch: c.ContextSwitch,
		Utilization:   c.Utilization,
		LDR:           n.LDR(),
		FCSR:          n.FCSR(),
	})
}

// Run computes scenario points on a local worker pool, returning results
// in index order — byte-identical for any workers value (each point is a
// pure function of its spec). workers <= 0 selects GOMAXPROCS. rec, when
// non-nil, counts computed points under scenario.runs.
func Run(workers int, specs []exp.PointSpec, rec *obs.Recorder) ([][]byte, error) {
	for i, spec := range specs {
		if spec.Task != TaskName {
			return nil, fmt.Errorf("scenario: spec %d has task %q (want %q)", i, spec.Task, TaskName)
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
	}
	results, err := exp.Map(workers, len(specs), func(i int) ([]byte, error) {
		return Task(specs[i])
	})
	if err != nil {
		return nil, err
	}
	rec.Counter(obs.ScenarioRuns).Add(int64(len(specs)))
	return results, nil
}
