package scenario

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeSpec drives arbitrary bytes through the strict decoder. The
// invariants: Decode never panics; every failure wraps ErrInvalidSpec;
// every success yields a canonical form that re-decodes to the same
// canonical bytes and the same digest (normalization is a fixed point).
func FuzzDecodeSpec(f *testing.F) {
	f.Add([]byte(`{"scenarioVersion": 1, "name": "x", "kind": "cluster"}`))
	f.Add([]byte(`{"scenarioVersion": 1, "name": "n", "kind": "node"}`))
	f.Add([]byte(`{"scenarioVersion": 1, "name": "t", "kind": "cluster",
		"sweep": {"workloads": ["w1", "pareto"], "policies": ["LL", "FS"], "seeds": 2}}`))
	f.Add([]byte(`{"scenarioVersion": 1, "name": "c", "kind": "cluster",
		"policy": "PM", "workload": "lognormal", "seed": 42,
		"cluster": {"nodes": 32, "jobMB": 16, "memoryCheck": false, "contextSwitch": 0.0003},
		"trace": {"machines": 8, "days": 3}}`))
	f.Add([]byte(`{"scenarioVersion": 1, "name": "g", "kind": "node",
		"node": {"cs": [0.0001, 0.0005], "utils": [0, 0.5, 0.9], "dur": 500}}`))
	f.Add([]byte(`{"scenarioVersion": 2, "name": "skew", "kind": "node"}`))
	f.Add([]byte(`{"scenarioVersion": 1, "name": "x", "kind": "cluster", "bogus": 1}`))
	f.Add([]byte(`{{{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"scenarioVersion": 1, "name": "x", "kind": "cluster"} trailing`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrInvalidSpec) {
				t.Fatalf("Decode error %v does not wrap ErrInvalidSpec", err)
			}
			return
		}
		canon, err := s.Canonical()
		if err != nil {
			t.Fatalf("valid spec does not encode: %v", err)
		}
		d1, err := s.Digest()
		if err != nil {
			t.Fatalf("valid spec has no digest: %v", err)
		}
		again, err := Decode(canon)
		if err != nil {
			t.Fatalf("canonical form rejected on re-decode: %v\n%s", err, canon)
		}
		canon2, err := again.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical form is not a fixed point:\n%s\n%s", canon, canon2)
		}
		d2, err := again.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("digest unstable across round trip: %s vs %s", d1, d2)
		}
		if _, _, err := Expand(s, true); err != nil {
			t.Fatalf("valid spec does not expand: %v", err)
		}
	})
}
