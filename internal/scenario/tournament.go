package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"lingerlonger/internal/exp"
)

// This file implements the policy-tournament mode: every selected policy
// runs every selected workload, and the cell results are ranked into a
// schema-validated report. The report is a pure function of (spec, seed,
// quick): cells arrive in expansion order, ranking ties break by the
// policy axis order, and the encoder is deterministic — so worker
// counts, agent counts and faults never change a byte (CI proves it).

// TournamentSchemaVersion pins the tournament report layout.
const TournamentSchemaVersion = 1

// MaxTournamentBytes caps the size of a report accepted by
// ValidateTournamentReport.
const MaxTournamentBytes = 4 << 20

// incompletePenalty is the score ratio assigned to a cell with no
// completed jobs, so an all-incomplete policy ranks last with finite,
// JSON-encodable bytes.
const incompletePenalty = 1e6

// TournamentConfig selects what a tournament runs.
type TournamentConfig struct {
	// Seed is the master seed (0 normalizes to 1).
	Seed int64
	// Quick selects the shrunk smoke-run scale.
	Quick bool
	// Policies lists registered policy names; nil selects every
	// registered policy in registration order.
	Policies []string
	// Workloads lists registered workload names; nil selects every
	// registered workload in registration order.
	Workloads []string
}

// BuildTournament constructs the tournament's normalized scenario spec
// (name "tournament", cluster kind, the full policy x workload sweep)
// and expands it into point specs. The spec is the report's identity:
// its digest is stamped into the report header.
func BuildTournament(cfg TournamentConfig) (*Spec, []exp.PointSpec, error) {
	pols := cfg.Policies
	if pols == nil {
		pols = Policies.Names()
	}
	wls := cfg.Workloads
	if wls == nil {
		wls = Workloads.Names()
	}
	s := &Spec{
		Version: SpecVersion,
		Name:    "tournament",
		Kind:    KindCluster,
		Seed:    cfg.Seed,
		Sweep:   &Axes{Policies: pols, Workloads: wls},
	}
	_, specs, err := Expand(s, cfg.Quick)
	if err != nil {
		return nil, nil, err
	}
	return s, specs, nil
}

// Cell is one (workload, policy) tournament result.
type Cell struct {
	// Workload is the registered workload name.
	Workload string `json:"workload"`
	// Policy is the registered policy name.
	Policy string `json:"policy"`
	// AvgCompletion is the mean completion time, seconds (0 when no
	// job completed).
	AvgCompletion float64 `json:"avgCompletion"`
	// Variation is the coefficient of variation of execution time.
	Variation float64 `json:"variation"`
	// FamilyTime is the last completion instant, seconds.
	FamilyTime float64 `json:"familyTime"`
	// LocalDelay is the owner slowdown fraction.
	LocalDelay float64 `json:"localDelay"`
	// Migrations counts migrations started.
	Migrations int `json:"migrations"`
	// Evictions counts destination-less evictions.
	Evictions int `json:"evictions"`
	// Incomplete counts jobs unfinished at the horizon.
	Incomplete int `json:"incomplete"`
}

// Standing is one policy's position on one workload.
type Standing struct {
	// Policy is the registered policy name.
	Policy string `json:"policy"`
	// Rank is the 1-based position (1 = fastest average completion).
	Rank int `json:"rank"`
	// AvgCompletion repeats the cell metric the rank is computed from.
	AvgCompletion float64 `json:"avgCompletion"`
}

// Ranking orders the policies on one workload by average completion
// time (ascending; policies with no completed jobs rank last, ties keep
// the policy axis order).
type Ranking struct {
	// Workload is the registered workload name.
	Workload string `json:"workload"`
	// Order lists every policy, best first.
	Order []Standing `json:"order"`
}

// OverallStanding is one policy's cross-workload position.
type OverallStanding struct {
	// Policy is the registered policy name.
	Policy string `json:"policy"`
	// Rank is the 1-based overall position.
	Rank int `json:"rank"`
	// Score is the mean over workloads of this policy's average
	// completion divided by the workload's best — 1.0 means the policy
	// won every workload; lower is better.
	Score float64 `json:"score"`
}

// TournamentReport is the ranked comparison a tournament emits.
type TournamentReport struct {
	// SchemaVersion pins the layout (TournamentSchemaVersion).
	SchemaVersion int `json:"schemaVersion"`
	// Digest is the tournament spec's canonical digest.
	Digest string `json:"digest"`
	// Seed is the master seed the cells ran under.
	Seed int64 `json:"seed"`
	// Quick records whether the cells ran at smoke scale.
	Quick bool `json:"quick"`
	// Policies is the policy axis in tournament order.
	Policies []string `json:"policies"`
	// Workloads is the workload axis in tournament order.
	Workloads []string `json:"workloads"`
	// Cells holds every (workload, policy) result, workload-major in
	// axis order.
	Cells []Cell `json:"cells"`
	// Rankings orders the policies per workload.
	Rankings []Ranking `json:"rankings"`
	// Overall orders the policies across all workloads.
	Overall []OverallStanding `json:"overall"`
}

// Rank assembles the tournament report from per-point results in
// expansion order (the bytes Run, fabric.RunLocal or fabric.Run return
// for BuildTournament's specs).
func Rank(s *Spec, quick bool, results [][]byte) (*TournamentReport, error) {
	if s.Sweep == nil || len(s.Sweep.Policies) == 0 || len(s.Sweep.Workloads) == 0 {
		return nil, fmt.Errorf("scenario: tournament spec needs explicit sweep.policies and sweep.workloads")
	}
	if s.Sweep.Seeds != 1 {
		return nil, fmt.Errorf("scenario: tournament specs use one replication per cell, got seeds=%d", s.Sweep.Seeds)
	}
	pols, wls := s.Sweep.Policies, s.Sweep.Workloads
	if want := len(wls) * len(pols); len(results) != want {
		return nil, fmt.Errorf("scenario: tournament over %d workloads x %d policies wants %d results, got %d",
			len(wls), len(pols), want, len(results))
	}
	digest, err := s.Digest()
	if err != nil {
		return nil, err
	}
	rep := &TournamentReport{
		SchemaVersion: TournamentSchemaVersion,
		Digest:        digest,
		Seed:          s.Seed,
		Quick:         quick,
		Policies:      pols,
		Workloads:     wls,
	}
	i := 0
	for _, wl := range wls {
		for _, pol := range pols {
			var pt ClusterPoint
			if err := json.Unmarshal(results[i], &pt); err != nil {
				return nil, fmt.Errorf("scenario: tournament cell %d (%s/%s): %w", i, wl, pol, err)
			}
			if pt.Policy != pol {
				return nil, fmt.Errorf("scenario: tournament cell %d reports policy %q, expected %q", i, pt.Policy, pol)
			}
			rep.Cells = append(rep.Cells, Cell{
				Workload:      wl,
				Policy:        pol,
				AvgCompletion: pt.AvgCompletion,
				Variation:     pt.Variation,
				FamilyTime:    pt.FamilyTime,
				LocalDelay:    pt.LocalDelay,
				Migrations:    pt.Migrations,
				Evictions:     pt.Evictions,
				Incomplete:    pt.Incomplete,
			})
			i++
		}
	}
	rep.rank()
	return rep, nil
}

// cellKey is the ranking key: average completion, with "nothing
// completed" sorting after every real result.
func cellKey(c Cell) float64 {
	if c.AvgCompletion <= 0 {
		return incompletePenalty * incompletePenalty
	}
	return c.AvgCompletion
}

// rank fills Rankings and Overall from Cells.
func (r *TournamentReport) rank() {
	ratios := make(map[string]float64, len(r.Policies)) // policy -> summed score ratio
	for wi, wl := range r.Workloads {
		row := r.Cells[wi*len(r.Policies) : (wi+1)*len(r.Policies)]
		order := make([]int, len(row))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return cellKey(row[order[a]]) < cellKey(row[order[b]])
		})
		best := cellKey(row[order[0]])
		rk := Ranking{Workload: wl}
		for pos, idx := range order {
			c := row[idx]
			rk.Order = append(rk.Order, Standing{
				Policy:        c.Policy,
				Rank:          pos + 1,
				AvgCompletion: c.AvgCompletion,
			})
			ratio := incompletePenalty
			if key := cellKey(c); key < incompletePenalty*incompletePenalty {
				ratio = key / best
			}
			ratios[c.Policy] += ratio
		}
		r.Rankings = append(r.Rankings, rk)
	}
	order := make([]int, len(r.Policies))
	for i := range order {
		order[i] = i
	}
	nw := float64(len(r.Workloads))
	sort.SliceStable(order, func(a, b int) bool {
		return ratios[r.Policies[order[a]]] < ratios[r.Policies[order[b]]]
	})
	for pos, idx := range order {
		pol := r.Policies[idx]
		r.Overall = append(r.Overall, OverallStanding{
			Policy: pol,
			Rank:   pos + 1,
			Score:  ratios[pol] / nw,
		})
	}
}

// EncodeTournament renders the deterministic report bytes (two-space
// indented JSON, trailing newline — the llsweep report style).
func EncodeTournament(r *TournamentReport) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ValidateTournamentReport strictly decodes report bytes and checks the
// schema invariants: version, axis/cell/ranking shape agreement, exact
// rank permutations, and cells in expansion order. It returns the
// decoded report so callers can inspect it.
func ValidateTournamentReport(data []byte) (*TournamentReport, error) {
	if len(data) > MaxTournamentBytes {
		return nil, fmt.Errorf("scenario: tournament report is %d bytes (max %d)", len(data), MaxTournamentBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	r := new(TournamentReport)
	if err := dec.Decode(r); err != nil {
		return nil, fmt.Errorf("scenario: tournament report: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("scenario: trailing data after tournament report")
	}
	if r.SchemaVersion != TournamentSchemaVersion {
		return nil, fmt.Errorf("scenario: tournament schema %d (want %d)", r.SchemaVersion, TournamentSchemaVersion)
	}
	if len(r.Digest) != 64 {
		return nil, fmt.Errorf("scenario: tournament digest %q is not a sha256 hex", r.Digest)
	}
	if len(r.Policies) == 0 || len(r.Workloads) == 0 {
		return nil, fmt.Errorf("scenario: tournament with empty axes")
	}
	if want := len(r.Workloads) * len(r.Policies); len(r.Cells) != want {
		return nil, fmt.Errorf("scenario: tournament has %d cells, want %d", len(r.Cells), want)
	}
	i := 0
	for _, wl := range r.Workloads {
		for _, pol := range r.Policies {
			c := r.Cells[i]
			if c.Workload != wl || c.Policy != pol {
				return nil, fmt.Errorf("scenario: cell %d is (%s, %s), want (%s, %s)", i, c.Workload, c.Policy, wl, pol)
			}
			i++
		}
	}
	if len(r.Rankings) != len(r.Workloads) {
		return nil, fmt.Errorf("scenario: tournament has %d rankings for %d workloads", len(r.Rankings), len(r.Workloads))
	}
	for wi, rk := range r.Rankings {
		if rk.Workload != r.Workloads[wi] {
			return nil, fmt.Errorf("scenario: ranking %d is for %q, want %q", wi, rk.Workload, r.Workloads[wi])
		}
		if err := checkPermutation(fmt.Sprintf("ranking %q", rk.Workload), standingNamesRanks(rk.Order), r.Policies); err != nil {
			return nil, err
		}
	}
	var names []nameRank
	for _, o := range r.Overall {
		if o.Score < 0 {
			return nil, fmt.Errorf("scenario: overall score %g for %q is negative", o.Score, o.Policy)
		}
		names = append(names, nameRank{o.Policy, o.Rank})
	}
	return r, checkPermutation("overall", names, r.Policies)
}

// nameRank pairs a ranked policy with its claimed rank.
type nameRank struct {
	name string
	rank int
}

func standingNamesRanks(order []Standing) []nameRank {
	out := make([]nameRank, len(order))
	for i, st := range order {
		out[i] = nameRank{st.Policy, st.Rank}
	}
	return out
}

// checkPermutation verifies a ranking covers exactly the policy set with
// ranks 1..n in order.
func checkPermutation(what string, got []nameRank, pols []string) error {
	if len(got) != len(pols) {
		return fmt.Errorf("scenario: %s ranks %d policies, want %d", what, len(got), len(pols))
	}
	seen := make(map[string]bool, len(pols))
	for _, p := range pols {
		seen[p] = false
	}
	for i, nr := range got {
		if nr.rank != i+1 {
			return fmt.Errorf("scenario: %s position %d has rank %d", what, i, nr.rank)
		}
		used, known := seen[nr.name]
		if !known {
			return fmt.Errorf("scenario: %s ranks unknown policy %q", what, nr.name)
		}
		if used {
			return fmt.Errorf("scenario: %s ranks policy %q twice", what, nr.name)
		}
		seen[nr.name] = true
	}
	return nil
}
