// Package scenario is the declarative front door of the simulator: a
// versioned JSON scenario spec plus pluggable policy and workload
// registries that together make (workload x policy x cluster shape x
// seeds) a first-class input instead of a hardcoded figure driver.
//
// A spec decodes strictly (size-capped, unknown fields rejected,
// version-checked — the llserve request style) and normalizes to a fully
// explicit canonical form: every default is materialized, so two
// spellings of the same scenario share one canonical byte string and
// therefore one Digest. The digest is the llserve cache key for scenario
// requests and the identity field of tournament reports.
//
// Expansion turns a spec into exp.PointSpec values for the "scenario"
// task (registered in fabric.BuiltinTasks), with per-point seeds derived
// via exp.DeriveSeed(spec.Seed, index). Every execution path — serial,
// local pool, distributed fabric, llserve — therefore computes identical
// bytes for a given (spec, seed, quick), and the committed specs under
// scenarios/ reproduce the legacy figure sweeps byte for byte (pinned by
// golden tests).
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"lingerlonger/internal/node"
)

// SpecVersion is the scenario schema version this package reads and
// writes. Decode rejects any other value, so version skew between a spec
// file and the binary is a clean error, never a misinterpretation.
const SpecVersion = 1

// MaxSpecBytes caps the size of a spec document accepted by Decode.
const MaxSpecBytes = 1 << 20

// ErrInvalidSpec tags every Decode/normalization failure; callers map it
// to a user error (exit code 2, HTTP 400) with errors.Is.
var ErrInvalidSpec = errors.New("scenario: invalid spec")

// Spec kinds: which simulator a scenario drives.
const (
	// KindCluster runs the shared-cluster simulator (Figures 7-8 shape):
	// policies x workloads over a synthetic trace corpus.
	KindCluster = "cluster"
	// KindNode runs the single-workstation fine-grain model (Figure 5
	// shape): a context-switch x utilization grid reporting LDR and FCSR.
	KindNode = "node"
)

// Spec is one declarative scenario. The zero value is not usable; specs
// come from Decode (which normalizes) or from builders that call
// Normalize themselves.
type Spec struct {
	// Version must equal SpecVersion.
	Version int `json:"scenarioVersion"`
	// Name identifies the scenario: it becomes the sweep ID, the report
	// identity, and the checkpoint key. Lowercase [a-z0-9._-], max 64.
	Name string `json:"name"`
	// Kind selects the simulator: KindCluster or KindNode.
	Kind string `json:"kind"`
	// Policy is the registered policy name for cluster scenarios
	// (default "LL"); the sweep axes override it when set.
	Policy string `json:"policy,omitempty"`
	// Workload is the registered workload name for cluster scenarios
	// (default "w1"); the sweep axes override it when set.
	Workload string `json:"workload,omitempty"`
	// Cluster holds cluster-shape parameters (cluster kind only).
	Cluster *ClusterParams `json:"cluster,omitempty"`
	// Trace holds the trace-corpus parameters (cluster kind only).
	Trace *TraceParams `json:"trace,omitempty"`
	// Node holds the workstation-model axes (node kind only).
	Node *NodeParams `json:"node,omitempty"`
	// Sweep declares the axes a cluster scenario expands over.
	Sweep *Axes `json:"sweep,omitempty"`
	// Seed is the master seed; per-point seeds derive from it via
	// exp.DeriveSeed(Seed, index). 0 normalizes to 1.
	Seed int64 `json:"seed,omitempty"`
}

// ClusterParams shapes the simulated cluster. Zero fields normalize to
// the paper defaults (cluster.DefaultConfig). Times are in seconds — the
// spec carries contextSwitch in seconds precisely so a JSON literal like
// 100e-6 round-trips to the exact float64 the legacy drivers use.
type ClusterParams struct {
	// Nodes is the cluster size (default 64; quick runs force 16).
	Nodes int `json:"nodes,omitempty"`
	// JobMB is the process image size in megabytes (default 8).
	JobMB float64 `json:"jobMB,omitempty"`
	// MemoryCheck requires free memory >= JobMB at placement
	// (default true; tri-state so "false" survives normalization).
	MemoryCheck *bool `json:"memoryCheck,omitempty"`
	// PauseTime is the PM suspend interval in seconds (default 30).
	PauseTime float64 `json:"pauseTime,omitempty"`
	// ContextSwitch is the effective context-switch time in seconds
	// (default 100e-6).
	ContextSwitch float64 `json:"contextSwitch,omitempty"`
	// MaxTime is the simulation horizon in seconds (default 200000).
	MaxTime float64 `json:"maxTime,omitempty"`
}

// TraceParams shapes the synthetic workstation-trace corpus every
// cluster node replays.
type TraceParams struct {
	// Machines is the corpus size (default 16; quick runs force 6).
	Machines int `json:"machines,omitempty"`
	// Days is the trace length per machine (default 7; quick forces 1).
	Days int `json:"days,omitempty"`
}

// NodeParams are the axes of a node-kind scenario: the Figure 5 grid.
type NodeParams struct {
	// ContextSwitches lists the context-switch times in seconds
	// (default 100e-6, 300e-6, 500e-6).
	ContextSwitches []float64 `json:"cs,omitempty"`
	// Utilizations lists the owner CPU utilizations (default 0 to 0.90
	// in steps of 0.05). Quick expansion replaces them with the fixed
	// smoke grid {0, 0.3, 0.6, 0.9}.
	Utilizations []float64 `json:"utils,omitempty"`
	// Duration is the simulated seconds per point (default 2000;
	// quick expansion forces 200).
	Duration float64 `json:"dur,omitempty"`
}

// Axes declares the sweep dimensions of a cluster scenario. Empty lists
// mean "the singleton axis from the top-level Policy/Workload field".
type Axes struct {
	// Policies lists registered policy names to sweep (inner axis).
	Policies []string `json:"policies,omitempty"`
	// Workloads lists registered workload names to sweep (outer axis).
	Workloads []string `json:"workloads,omitempty"`
	// Seeds is the number of replications per cell, each with its own
	// derived seed (default 1, innermost axis).
	Seeds int `json:"seeds,omitempty"`
}

// badf builds an ErrInvalidSpec-wrapped error.
func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidSpec, fmt.Sprintf(format, args...))
}

// Decode strictly parses and normalizes a scenario spec: oversized
// documents, malformed JSON, unknown fields, trailing data, version skew
// and out-of-range values are all rejected with errors wrapping
// ErrInvalidSpec. The returned spec is normalized — canonical form,
// ready for Canonical/Digest/Expand.
func Decode(data []byte) (*Spec, error) {
	if len(data) > MaxSpecBytes {
		return nil, badf("spec is %d bytes (max %d)", len(data), MaxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	s := new(Spec)
	if err := dec.Decode(s); err != nil {
		return nil, badf("decode: %v", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, badf("trailing data after spec document")
	}
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	return s, nil
}

// Normalize validates the spec and materializes every default so the
// spec is in canonical form. It is idempotent: normalizing a normalized
// spec changes nothing — the property that makes Digest stable across
// re-encoding round trips (fuzzed in decode_fuzz_test.go).
func (s *Spec) Normalize() error {
	switch s.Version {
	case SpecVersion:
	case 0:
		return badf("missing scenarioVersion (want %d)", SpecVersion)
	default:
		return badf("scenarioVersion %d not supported (want %d)", s.Version, SpecVersion)
	}
	if err := checkName(s.Name); err != nil {
		return err
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	switch s.Kind {
	case KindCluster:
		return s.normalizeCluster()
	case KindNode:
		return s.normalizeNode()
	default:
		return badf("kind %q (want %q or %q)", s.Kind, KindCluster, KindNode)
	}
}

// checkName enforces the scenario-name charset (the name becomes a sweep
// ID, checkpoint key and file name).
func checkName(name string) error {
	if name == "" {
		return badf("missing name")
	}
	if len(name) > 64 {
		return badf("name %q longer than 64 bytes", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return badf("name %q: character %q not in [a-z0-9._-]", name, c)
		}
	}
	return nil
}

func (s *Spec) normalizeCluster() error {
	if s.Node != nil {
		return badf("node params are only valid for kind %q", KindNode)
	}
	if s.Policy == "" {
		s.Policy = "LL"
	}
	if _, ok := Policies.Lookup(s.Policy); !ok {
		return badf("policy %q not registered (have %v)", s.Policy, Policies.Names())
	}
	if s.Workload == "" {
		s.Workload = "w1"
	}
	if _, ok := Workloads.Lookup(s.Workload); !ok {
		return badf("workload %q not registered (have %v)", s.Workload, Workloads.Names())
	}
	if s.Cluster == nil {
		s.Cluster = &ClusterParams{}
	}
	if err := s.Cluster.normalize(); err != nil {
		return err
	}
	if s.Trace == nil {
		s.Trace = &TraceParams{}
	}
	if err := s.Trace.normalize(); err != nil {
		return err
	}
	if s.Sweep != nil {
		if err := s.Sweep.normalize(); err != nil {
			return err
		}
		if s.Sweep.isSingleton() {
			s.Sweep = nil // canonical: an empty axes block means none
		}
	}
	return nil
}

func (s *Spec) normalizeNode() error {
	if s.Policy != "" || s.Workload != "" || s.Cluster != nil || s.Trace != nil || s.Sweep != nil {
		return badf("policy/workload/cluster/trace/sweep are only valid for kind %q", KindCluster)
	}
	if s.Node == nil {
		s.Node = &NodeParams{}
	}
	return s.Node.normalize()
}

func (c *ClusterParams) normalize() error {
	if c.Nodes == 0 {
		c.Nodes = 64
	}
	if c.Nodes < 1 || c.Nodes > 4096 {
		return badf("cluster.nodes %d out of range [1, 4096]", c.Nodes)
	}
	if c.JobMB == 0 {
		c.JobMB = 8
	}
	if c.JobMB < 0 || c.JobMB > 1024 || !isFinite(c.JobMB) {
		return badf("cluster.jobMB %g out of range [0, 1024]", c.JobMB)
	}
	if c.MemoryCheck == nil {
		t := true
		c.MemoryCheck = &t
	}
	if c.PauseTime == 0 {
		c.PauseTime = 30
	}
	if c.PauseTime < 0 || c.PauseTime > 1e4 || !isFinite(c.PauseTime) {
		return badf("cluster.pauseTime %g out of range [0, 1e4]", c.PauseTime)
	}
	if c.ContextSwitch == 0 {
		c.ContextSwitch = node.DefaultContextSwitch
	}
	if c.ContextSwitch < 0 || c.ContextSwitch > 0.1 || !isFinite(c.ContextSwitch) {
		return badf("cluster.contextSwitch %g out of range [0, 0.1] seconds", c.ContextSwitch)
	}
	if c.MaxTime == 0 {
		c.MaxTime = 200000
	}
	if c.MaxTime <= 0 || c.MaxTime > 1e7 || !isFinite(c.MaxTime) {
		return badf("cluster.maxTime %g out of range (0, 1e7]", c.MaxTime)
	}
	return nil
}

func (t *TraceParams) normalize() error {
	if t.Machines == 0 {
		t.Machines = 16
	}
	if t.Machines < 1 || t.Machines > 256 {
		return badf("trace.machines %d out of range [1, 256]", t.Machines)
	}
	if t.Days == 0 {
		t.Days = 7
	}
	if t.Days < 1 || t.Days > 31 {
		return badf("trace.days %d out of range [1, 31]", t.Days)
	}
	return nil
}

func (n *NodeParams) normalize() error {
	if len(n.ContextSwitches) == 0 {
		n.ContextSwitches = []float64{100e-6, 300e-6, 500e-6}
	}
	if len(n.ContextSwitches) > 16 {
		return badf("node.cs lists %d values (max 16)", len(n.ContextSwitches))
	}
	for _, cs := range n.ContextSwitches {
		if cs <= 0 || cs > 0.1 || !isFinite(cs) {
			return badf("node.cs value %g out of range (0, 0.1] seconds", cs)
		}
	}
	if len(n.Utilizations) == 0 {
		for i := 0; i <= 18; i++ {
			n.Utilizations = append(n.Utilizations, float64(i)*5/100)
		}
	}
	if len(n.Utilizations) > 64 {
		return badf("node.utils lists %d values (max 64)", len(n.Utilizations))
	}
	for _, u := range n.Utilizations {
		if u < 0 || u > 0.99 || !isFinite(u) {
			return badf("node.utils value %g out of range [0, 0.99]", u)
		}
	}
	if n.Duration == 0 {
		n.Duration = 2000
	}
	if n.Duration <= 0 || n.Duration > 1e6 || !isFinite(n.Duration) {
		return badf("node.dur %g out of range (0, 1e6] seconds", n.Duration)
	}
	return nil
}

func (a *Axes) normalize() error {
	if err := checkAxis("sweep.policies", a.Policies, Policies.Names(), func(n string) bool {
		_, ok := Policies.Lookup(n)
		return ok
	}); err != nil {
		return err
	}
	if err := checkAxis("sweep.workloads", a.Workloads, Workloads.Names(), func(n string) bool {
		_, ok := Workloads.Lookup(n)
		return ok
	}); err != nil {
		return err
	}
	if a.Seeds == 0 {
		a.Seeds = 1
	}
	if a.Seeds < 1 || a.Seeds > 1000 {
		return badf("sweep.seeds %d out of range [1, 1000]", a.Seeds)
	}
	return nil
}

// isSingleton reports whether the normalized axes add nothing over the
// top-level singleton fields, so the canonical form can drop the block.
func (a *Axes) isSingleton() bool {
	return len(a.Policies) == 0 && len(a.Workloads) == 0 && a.Seeds == 1
}

// checkAxis validates one axis list: every entry registered, no
// duplicates, bounded length.
func checkAxis(what string, list, have []string, ok func(string) bool) error {
	if len(list) > 64 {
		return badf("%s lists %d entries (max 64)", what, len(list))
	}
	seen := make(map[string]bool, len(list))
	for _, n := range list {
		if !ok(n) {
			return badf("%s entry %q not registered (have %v)", what, n, have)
		}
		if seen[n] {
			return badf("%s entry %q listed twice", what, n)
		}
		seen[n] = true
	}
	return nil
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Canonical returns the compact canonical encoding of a normalized spec:
// every default materialized, fields in schema order. Two specs meaning
// the same scenario produce identical bytes.
func (s *Spec) Canonical() ([]byte, error) {
	return json.Marshal(s)
}

// Digest returns the hex SHA-256 of the canonical encoding — the spec's
// stable identity, used as the llserve cache routing key and stamped
// into tournament reports.
func (s *Spec) Digest() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}
