package fabric

import (
	"encoding/json"
	"testing"

	"lingerlonger/internal/exp"
	"lingerlonger/internal/scenario"
)

func TestBuiltinTasksRegistry(t *testing.T) {
	reg := BuiltinTasks()
	want := []string{TaskCluster, TaskNode, scenario.TaskName}
	got := reg.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("names = %v, want %v", got, want)
		}
	}
}

func TestBuildSweepDeterministic(t *testing.T) {
	for _, name := range SweepNames() {
		id1, specs1, err := BuildSweep(name, 7, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		id2, specs2, err := BuildSweep(name, 7, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if id1 != id2 || len(specs1) != len(specs2) || len(specs1) == 0 {
			t.Fatalf("%s: ids %q/%q, %d/%d specs", name, id1, id2, len(specs1), len(specs2))
		}
		for i := range specs1 {
			a, b := specs1[i], specs2[i]
			if a.Index != i || a.Task != b.Task || a.Seed != b.Seed || string(a.Params) != string(b.Params) {
				t.Errorf("%s point %d differs: %+v vs %+v", name, i, a, b)
			}
			if a.Seed != exp.DeriveSeed(7, i) {
				t.Errorf("%s point %d seed %d, want DeriveSeed(7,%d)", name, i, a.Seed, i)
			}
			if err := a.Validate(); err != nil {
				t.Errorf("%s point %d invalid: %v", name, i, err)
			}
		}
	}
}

func TestBuildSweepUnknown(t *testing.T) {
	if _, _, err := BuildSweep("nope", 1, false); err == nil {
		t.Error("unknown sweep accepted")
	}
}

// The node task must be a pure function of its spec: same spec, same
// bytes; different seed, (almost surely) different bytes.
func TestNodeTaskDeterministic(t *testing.T) {
	params, _ := json.Marshal(nodeParams{ContextSwitch: 300e-6, Utilization: 0.3, Duration: 50})
	spec := exp.PointSpec{Task: TaskNode, Sweep: "unit", Index: 0, Seed: 11, Params: params}
	reg := BuiltinTasks()
	b1, err := reg.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := reg.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("node task not deterministic:\n%s\n%s", b1, b2)
	}
	var pt nodePoint
	if err := json.Unmarshal(b1, &pt); err != nil {
		t.Fatal(err)
	}
	if pt.ContextSwitch != 300e-6 || pt.Utilization != 0.3 {
		t.Errorf("point echoes wrong params: %+v", pt)
	}
	if pt.LDR <= 0 {
		t.Errorf("LDR = %g, want positive", pt.LDR)
	}
}

func TestNodeTaskRejectsBadParams(t *testing.T) {
	reg := BuiltinTasks()
	for name, params := range map[string]string{
		"malformed":    `{"cs":`,
		"non-positive": `{"cs":1e-4,"util":0.3,"dur":0}`,
	} {
		spec := exp.PointSpec{Task: TaskNode, Sweep: "unit", Index: 0, Seed: 1, Params: []byte(params)}
		if _, err := reg.Run(spec); err == nil {
			t.Errorf("%s params accepted", name)
		}
	}
}

func TestClusterTaskRejectsBadParams(t *testing.T) {
	reg := BuiltinTasks()
	for name, params := range map[string]string{
		"malformed":      `{"policy":`,
		"unknown policy": `{"policy":"XX","workload":1,"quick":true}`,
		"bad workload":   `{"policy":"LL","workload":3,"quick":true}`,
	} {
		spec := exp.PointSpec{Task: TaskCluster, Sweep: "unit", Index: 0, Seed: 1, Params: []byte(params)}
		if _, err := reg.Run(spec); err == nil {
			t.Errorf("%s params accepted", name)
		}
	}
}

// One real quick cluster point end to end: deterministic and carrying the
// Figure 7/8 fields.
func TestClusterTaskQuickPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation point is slow")
	}
	params, _ := json.Marshal(clusterParams{Policy: "LL", Workload: 2, Quick: true})
	spec := exp.PointSpec{Task: TaskCluster, Sweep: "unit", Index: 0, Seed: 5, Params: params}
	reg := BuiltinTasks()
	b1, err := reg.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := reg.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("cluster task not deterministic:\n%s\n%s", b1, b2)
	}
	var pt clusterPoint
	if err := json.Unmarshal(b1, &pt); err != nil {
		t.Fatal(err)
	}
	if pt.Policy != "LL" || pt.Workload != 2 || pt.AvgCompletion <= 0 {
		t.Errorf("cluster point = %+v", pt)
	}
}

// The full (non-quick) node sweep is 3 context switches x 19 utilizations.
func TestBuildSweepFullNode(t *testing.T) {
	_, specs, err := BuildSweep("node", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3*19 {
		t.Errorf("full node sweep has %d points, want %d", len(specs), 3*19)
	}
}
