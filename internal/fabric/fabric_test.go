package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lingerlonger/internal/exp"
	"lingerlonger/internal/obs"
	"lingerlonger/internal/runtime"
)

// testOwner is a permanently idle scripted owner: fabric tests exercise the
// work path, not the cycle-stealing protocol.
func testOwner(t *testing.T) *runtime.ScriptedOwner {
	t.Helper()
	o, err := runtime.NewScriptedOwner([]runtime.OwnerPhase{{Duration: 1e9, Util: 0.02, FreeMB: 40}})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// testTasks returns a registry with one pure task "t" whose output is a
// canonical JSON function of the spec. delay slows each execution down so
// timing-sensitive tests (resurrection mid-run) have a run to be mid of;
// it never reaches the output bytes.
func testTasks(delay time.Duration) *exp.Tasks {
	reg := exp.NewTasks()
	fn := func(spec exp.PointSpec) ([]byte, error) {
		if delay > 0 {
			time.Sleep(delay)
		}
		return json.Marshal(map[string]any{"i": spec.Index, "s": spec.Seed, "p": string(spec.Params)})
	}
	if err := reg.Register("t", fn); err != nil {
		panic(err)
	}
	return reg
}

// testSpecs builds n specs for the "t" task with DeriveSeed-style seeds.
func testSpecs(n int) []exp.PointSpec {
	specs := make([]exp.PointSpec, n)
	for i := range specs {
		specs[i] = exp.PointSpec{
			Task:   "t",
			Sweep:  "unit",
			Index:  i,
			Seed:   exp.DeriveSeed(3, i),
			Params: []byte(fmt.Sprintf(`{"x":%d}`, i)),
		}
	}
	return specs
}

// startAgents serves one agent per name on loopback, each executing reg,
// and returns their addresses in name order.
func startAgents(t *testing.T, names []string, reg *exp.Tasks) []string {
	t.Helper()
	addrs := make([]string, len(names))
	for i, name := range names {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		a := runtime.NewAgent(name, testOwner(t), 64)
		a.SetWorkExecutor(reg.Run)
		srv := runtime.NewAgentServer(a, l)
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr().String()
	}
	return addrs
}

// fastLink is a test-scale link config: no backoff sleeps, fast probes,
// quick suspect/dead thresholds.
func fastLink() LinkConfig {
	link := DefaultLinkConfig()
	link.RetryAttempts = 1
	link.RetryBase = 0
	link.RetryMax = 0
	link.HealthInterval = 3 * time.Millisecond
	link.SuspectAfter = 1
	link.DeadAfter = 2
	link.MaxInFlight = 2
	link.CallTimeout = 5 * time.Second
	return link
}

// memStore is an in-memory exp.Store for resume tests.
type memStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemStore() *memStore { return &memStore{m: map[string][]byte{}} }

func (s *memStore) key(sweep string, i int) string { return fmt.Sprintf("%s/%d", sweep, i) }

func (s *memStore) Lookup(sweep string, i int) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[s.key(sweep, i)]
	return data, ok, nil
}

func (s *memStore) Save(sweep string, i int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[s.key(sweep, i)] = append([]byte(nil), data...)
	return nil
}

// serialBaseline computes the single-process reference results.
func serialBaseline(t *testing.T, specs []exp.PointSpec) [][]byte {
	t.Helper()
	want, _, err := RunLocal(testTasks(0), nil, 1, "unit", specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// assertSameBytes fails unless got matches the serial baseline byte for byte.
func assertSameBytes(t *testing.T, want, got [][]byte) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("result count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if string(want[i]) != string(got[i]) {
			t.Errorf("point %d: fabric %s, serial %s", i, got[i], want[i])
		}
	}
}

func TestRunValidation(t *testing.T) {
	specs := testSpecs(2)
	bad := LinkConfig{}
	if _, _, err := Run(Config{Agents: []string{"x"}, Link: bad}, "unit", specs); err == nil {
		t.Error("invalid link config accepted")
	}
	if _, _, err := Run(Config{Link: DefaultLinkConfig()}, "unit", specs); err == nil {
		t.Error("empty agent list accepted")
	}
	swapped := testSpecs(2)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, _, err := Run(Config{Agents: []string{"x"}, Link: DefaultLinkConfig()}, "unit", swapped); err == nil {
		t.Error("out-of-order spec indices accepted")
	}
}

// A 3-agent fabric run must be byte-identical to the serial reference.
func TestFabricMatchesLocal(t *testing.T) {
	specs := testSpecs(24)
	want := serialBaseline(t, specs)
	addrs := startAgents(t, []string{"a", "b", "c"}, testTasks(0))
	got, stats, err := Run(Config{Agents: addrs, Link: fastLink()}, "unit", specs)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBytes(t, want, got)
	if stats.Completed != len(specs) || stats.Restored != 0 {
		t.Errorf("stats = %+v, want %d completed", stats, len(specs))
	}
}

// Under a seeded lossy network the bytes must not change; only the
// transport tallies may.
func TestFabricDeterministicUnderDrops(t *testing.T) {
	specs := testSpecs(24)
	want := serialBaseline(t, specs)
	addrs := startAgents(t, []string{"a", "b", "c"}, testTasks(0))
	inj, err := runtime.NewSeededInjector(runtime.FaultConfig{Drop: 0.2, DropReply: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	link := fastLink()
	link.RetryAttempts = 4 // ride out consecutive drops without killing agents
	link.DeadAfter = 6
	got, stats, err := Run(Config{Agents: addrs, Link: link, Injector: inj}, "unit", specs)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBytes(t, want, got)
	if stats.Completed+stats.Restored != len(specs) {
		t.Errorf("completed %d + restored %d != %d points", stats.Completed, stats.Restored, len(specs))
	}
}

// An agent severed for the whole run must go dead, its points must be
// re-executed elsewhere, and the bytes must not change.
func TestFabricSurvivesDeadAgent(t *testing.T) {
	specs := testSpecs(24)
	want := serialBaseline(t, specs)
	addrs := startAgents(t, []string{"a", "b", "c"}, testTasks(0))
	inj, err := runtime.NewSeededInjector(runtime.FaultConfig{
		Seed:       42,
		Partitions: map[string]runtime.Partition{"b": {FromCall: 0, Calls: 1 << 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Run(Config{Agents: addrs, Link: fastLink(), Injector: inj}, "unit", specs)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBytes(t, want, got)
	if stats.Dead < 1 {
		t.Errorf("stats = %+v, want at least one dead transition", stats)
	}
	if stats.Requeued < 1 {
		t.Errorf("stats = %+v, want the severed agent's points requeued", stats)
	}
}

// An agent severed for a finite window must come back through the prober
// and finish the run alongside the healthy agent.
func TestFabricResurrectsAgent(t *testing.T) {
	specs := testSpecs(60)
	want := serialBaseline(t, specs)
	// ~4ms per point keeps the run alive (~240ms single-agent serial)
	// while the partition lifts after 12 calls (~2 work + ~10 probes at
	// 3ms intervals), so "b" resurrects mid-run with wide margin.
	addrs := startAgents(t, []string{"a", "b"}, testTasks(4*time.Millisecond))
	inj, err := runtime.NewSeededInjector(runtime.FaultConfig{
		Seed:       42,
		Partitions: map[string]runtime.Partition{"b": {FromCall: 0, Calls: 12}},
	})
	if err != nil {
		t.Fatal(err)
	}
	link := fastLink()
	link.MaxInFlight = 1
	got, stats, err := Run(Config{Agents: addrs, Link: link, Injector: inj}, "unit", specs)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBytes(t, want, got)
	if stats.Dead < 1 || stats.Resurrected < 1 {
		t.Errorf("stats = %+v, want a dead then resurrected agent", stats)
	}
}

// With every agent severed the run must abort with ErrAllAgentsDead
// instead of hanging.
func TestFabricAllAgentsDead(t *testing.T) {
	specs := testSpecs(8)
	addrs := startAgents(t, []string{"a", "b"}, testTasks(0))
	inj, err := runtime.NewSeededInjector(runtime.FaultConfig{
		Seed: 42,
		Partitions: map[string]runtime.Partition{
			"a": {FromCall: 0, Calls: 1 << 30},
			"b": {FromCall: 0, Calls: 1 << 30},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Run(Config{Agents: addrs, Link: fastLink(), Injector: inj}, "unit", specs)
	if !errors.Is(err, ErrAllAgentsDead) {
		t.Errorf("err = %v, want ErrAllAgentsDead", err)
	}
}

// A task failure is not a transport failure: the run must fail fast with
// the task's error rather than requeue forever.
func TestFabricTaskErrorFailsFast(t *testing.T) {
	reg := exp.NewTasks()
	if err := reg.Register("t", func(spec exp.PointSpec) ([]byte, error) {
		if spec.Index == 3 {
			return nil, errors.New("boom")
		}
		return []byte(`{}`), nil
	}); err != nil {
		t.Fatal(err)
	}
	specs := testSpecs(8)
	addrs := startAgents(t, []string{"a"}, reg)
	_, _, err := Run(Config{Agents: addrs, Link: fastLink()}, "unit", specs)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want the task's own error", err)
	}
}

// A fabric run resumed from a store populated by a serial run must restore
// every point without dispatching anything — and vice versa: the two
// execution modes share the snapshot format.
func TestFabricResumesFromSerialStore(t *testing.T) {
	specs := testSpecs(16)
	store := newMemStore()
	want, _, err := RunLocal(testTasks(0), store, 1, "unit", specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startAgents(t, []string{"a", "b"}, testTasks(0))
	got, stats, err := Run(Config{Agents: addrs, Link: fastLink(), Store: store}, "unit", specs)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBytes(t, want, got)
	if stats.Restored != len(specs) || stats.Dispatched != 0 {
		t.Errorf("stats = %+v, want all %d points restored, none dispatched", stats, len(specs))
	}

	// And the reverse: a local run resumes from a fabric-written store.
	store2 := newMemStore()
	if _, _, err := Run(Config{Agents: addrs, Link: fastLink(), Store: store2}, "unit", specs); err != nil {
		t.Fatal(err)
	}
	got2, stats2, err := RunLocal(testTasks(0), store2, 1, "unit", specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBytes(t, want, got2)
	if stats2.Restored != len(specs) || stats2.Completed != 0 {
		t.Errorf("local resume stats = %+v, want all restored", stats2)
	}
}

// EncodeReport output must depend only on (sweep, seed, quick, results):
// identical inputs give identical bytes, and invalid point JSON is refused.
func TestEncodeReport(t *testing.T) {
	results := [][]byte{[]byte(`{"a":1}`), []byte(`{"b":2}`)}
	r1, err := EncodeReport("unit", 3, true, results)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := EncodeReport("unit", 3, true, results)
	if err != nil {
		t.Fatal(err)
	}
	if string(r1) != string(r2) {
		t.Error("EncodeReport not deterministic")
	}
	var rep Report
	if err := json.Unmarshal(r1, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != ReportSchemaVersion || rep.Sweep != "unit" || len(rep.Points) != 2 {
		t.Errorf("decoded report = %+v", rep)
	}
	if _, err := EncodeReport("unit", 3, true, [][]byte{[]byte("not json")}); err == nil {
		t.Error("invalid point JSON accepted")
	}
}

func TestRunLocalValidation(t *testing.T) {
	if _, _, err := RunLocal(nil, nil, 1, "unit", testSpecs(1), nil); err == nil {
		t.Error("nil registry accepted")
	}
	swapped := testSpecs(2)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, _, err := RunLocal(testTasks(0), nil, 1, "unit", swapped, nil); err == nil {
		t.Error("out-of-order spec indices accepted")
	}
}

// Mirror must land every tally on its catalogued fabric.* counter.
func TestStatsMirror(t *testing.T) {
	reg := obs.NewRegistry()
	s := Stats{Dispatched: 7, Completed: 6, Restored: 5, Requeued: 4, Suspected: 3, Dead: 2, Resurrected: 1}
	s.Mirror(obs.New(reg, nil))
	got := reg.CounterValues()
	want := map[string]int64{
		obs.FabricPointsDispatched:  7,
		obs.FabricPointsCompleted:   6,
		obs.FabricPointsRestored:    5,
		obs.FabricPointsRequeued:    4,
		obs.FabricAgentsSuspected:   3,
		obs.FabricAgentsDead:        2,
		obs.FabricAgentsResurrected: 1,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
	Stats{}.Mirror(nil) // nil-safe
}

// A task error in local mode surfaces, as in fabric mode.
func TestRunLocalTaskError(t *testing.T) {
	reg := exp.NewTasks()
	if err := reg.Register("t", func(spec exp.PointSpec) ([]byte, error) {
		return nil, errors.New("boom")
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunLocal(reg, nil, 1, "unit", testSpecs(2), nil); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want the task's own error", err)
	}
}
