// Package fabric is the distributed sweep executor: a coordinator that
// partitions the point set of an experiment sweep across a pool of agent
// processes over the §7 TCP transport, failure-first.
//
// The design inherits every guarantee the repository already proves for
// single-process sweeps and extends them across process boundaries:
//
//   - Determinism. Each point is a pure function of its exp.PointSpec
//     (task, sweep, index, DeriveSeed-derived seed, params), and results
//     are collected by index. Which agent computed a point, in what order,
//     after how many retries, under which fault schedule — all of it is
//     an execution detail. A 3-process fabric run emits byte-identical
//     output to a serial run, for any agent count.
//
//   - At-most-once dispatch. Every work RPC carries a (client, sequence)
//     pair; agents cache the last reply per client stream and replay it on
//     retry, so a reply lost in transit never recomputes the point on that
//     stream. Cross-agent duplicates (a point requeued after an ambiguous
//     timeout, then finished by both agents) are tolerated rather than
//     prevented: purity makes the duplicate bytes identical, and the
//     first completion wins.
//
//   - Failure detection and recovery. Consecutive call failures move an
//     agent Healthy → Suspect (takes no new work) → Dead via the §7
//     health policy; every failed dispatch requeues its point immediately,
//     so a dead agent strands nothing. A per-agent prober re-probes on
//     the health interval and brings a recovered agent back into rotation.
//     Only when every agent is dead with points outstanding does the run
//     fail (ErrAllAgentsDead).
//
//   - Resumability. With a checkpoint store attached, completed points
//     are persisted as they finish and restored on the next run, so a
//     coordinator killed mid-sweep resumes without recomputing — and the
//     resumed output is byte-identical to an uninterrupted run.
//
// See DESIGN.md §15 for the failure model and the determinism-under-faults
// argument.
package fabric

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lingerlonger/internal/core"
	"lingerlonger/internal/exp"
	"lingerlonger/internal/obs"
	"lingerlonger/internal/runtime"
)

// ErrAllAgentsDead reports a run abandoned because every agent reached the
// Dead state while points were still outstanding. Partial progress is in
// the checkpoint store (when one is attached); rerunning resumes from it.
var ErrAllAgentsDead = errors.New("fabric: all agents dead with points outstanding")

// Config parameterizes a fabric run.
type Config struct {
	// Agents lists the TCP addresses of the agent processes.
	Agents []string
	// Link is the transport/health configuration shared with cmd/lingerd.
	Link LinkConfig
	// Injector, when non-nil, is the deterministic fault seam applied to
	// every work and probe call (the llsweep -fault flag).
	Injector runtime.FaultInjector
	// Store, when non-nil, persists completed points and restores them on
	// the next run (checkpoint.Run satisfies it). Stored bytes are the
	// task output verbatim, so serial and fabric runs share snapshots.
	Store exp.Store
	// Rec, when non-nil, receives the fabric.* counters and the mirrored
	// runtime.rpc.* transport tallies at the end of the run. Metrics are
	// outputs only; no scheduling decision reads them.
	Rec *obs.Recorder
}

// Stats reports what a fabric run did. All counts are totals for the run;
// Transport sums the per-client transport tallies.
type Stats struct {
	Dispatched  int                   `json:"dispatched"`  // work calls handed to slot workers
	Completed   int                   `json:"completed"`   // unique points computed by agents
	Restored    int                   `json:"restored"`    // points restored from the checkpoint store
	Requeued    int                   `json:"requeued"`    // dispatches returned to the queue after a transient failure
	Suspected   int                   `json:"suspected"`   // agent transitions into Suspect
	Dead        int                   `json:"dead"`        // agent transitions into Dead
	Resurrected int                   `json:"resurrected"` // Dead agents brought back by the prober
	Transport   runtime.FaultCounters `json:"transport"`
}

// Mirror adds the run's tallies into the observability registry under the
// fabric.* names (and the transport sums under runtime.rpc.*). Nil-safe.
func (s Stats) Mirror(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	rec.Counter(obs.FabricPointsDispatched).Add(int64(s.Dispatched))
	rec.Counter(obs.FabricPointsCompleted).Add(int64(s.Completed))
	rec.Counter(obs.FabricPointsRestored).Add(int64(s.Restored))
	rec.Counter(obs.FabricPointsRequeued).Add(int64(s.Requeued))
	rec.Counter(obs.FabricAgentsSuspected).Add(int64(s.Suspected))
	rec.Counter(obs.FabricAgentsDead).Add(int64(s.Dead))
	rec.Counter(obs.FabricAgentsResurrected).Add(int64(s.Resurrected))
	s.Transport.Mirror(rec)
}

// agentLink is the coordinator's view of one agent process. All mutable
// fields are guarded by the run mutex.
type agentLink struct {
	index   int
	addr    string
	tracker *core.HealthTracker
	state   core.HealthState
}

// run is the shared state of one fabric execution: a pending-index queue,
// per-point results, and agent health, all under one mutex with a condition
// variable that wakes slot workers when work or health changes.
type run struct {
	cfg   Config
	sweep string
	specs []exp.PointSpec

	mu        sync.Mutex
	cond      *sync.Cond
	pending   []int
	results   [][]byte
	done      []bool
	remaining int
	fatal     error
	lastErr   error
	deadCount int
	stats     Stats
	agents    []*agentLink
}

// Run executes specs across cfg.Agents and returns the per-point result
// bytes ordered by index. specs[i].Index must equal i — results are
// collected positionally, which is what makes the output independent of
// scheduling. On error the partial results are discarded (but survive in
// cfg.Store when one is attached).
func Run(cfg Config, sweep string, specs []exp.PointSpec) ([][]byte, Stats, error) {
	if err := cfg.Link.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if len(cfg.Agents) == 0 {
		return nil, Stats{}, errors.New("fabric: no agents configured")
	}
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, Stats{}, err
		}
		if spec.Index != i {
			return nil, Stats{}, fmt.Errorf("fabric: spec at position %d has index %d", i, spec.Index)
		}
	}

	r := &run{
		cfg:       cfg,
		sweep:     sweep,
		specs:     specs,
		results:   make([][]byte, len(specs)),
		done:      make([]bool, len(specs)),
		remaining: len(specs),
	}
	r.cond = sync.NewCond(&r.mu)
	for i, addr := range cfg.Agents {
		r.agents = append(r.agents, &agentLink{
			index:   i,
			addr:    addr,
			tracker: core.NewHealthTracker(cfg.Link.HealthPolicy()),
			state:   core.Healthy,
		})
	}

	// Restore completed points before dispatching anything: a resumed run
	// only ships the points the previous run did not finish.
	if cfg.Store != nil {
		for i := range specs {
			data, ok, err := cfg.Store.Lookup(sweep, i)
			if err != nil {
				return nil, r.stats, err
			}
			if ok {
				r.results[i] = data
				r.done[i] = true
				r.remaining--
				r.stats.Restored++
			}
		}
	}
	for i := range specs {
		if !r.done[i] {
			r.pending = append(r.pending, i)
		}
	}

	if r.remaining > 0 {
		var (
			slotWG   sync.WaitGroup
			probeWG  sync.WaitGroup
			stop     = make(chan struct{})
			counters []*runtime.FaultCounters
		)
		for _, a := range r.agents {
			for slot := 0; slot < cfg.Link.MaxInFlight; slot++ {
				fc := &runtime.FaultCounters{}
				counters = append(counters, fc)
				slotWG.Add(1)
				go func(a *agentLink, slot int, fc *runtime.FaultCounters) {
					defer slotWG.Done()
					r.slot(a, slot, fc)
				}(a, slot, fc)
			}
			fc := &runtime.FaultCounters{}
			counters = append(counters, fc)
			probeWG.Add(1)
			go func(a *agentLink, fc *runtime.FaultCounters) {
				defer probeWG.Done()
				r.probe(a, stop, fc)
			}(a, fc)
		}
		slotWG.Wait()
		close(stop)
		probeWG.Wait()
		for _, fc := range counters {
			r.stats.Transport.Attempts += fc.Attempts
			r.stats.Transport.Retries += fc.Retries
			r.stats.Transport.Timeouts += fc.Timeouts
			r.stats.Transport.CorruptFrames += fc.CorruptFrames
			r.stats.Transport.DroppedSends += fc.DroppedSends
			r.stats.Transport.DroppedReplies += fc.DroppedReplies
			r.stats.Transport.Delays += fc.Delays
		}
	}

	r.stats.Mirror(cfg.Rec)
	if r.fatal != nil {
		return nil, r.stats, r.fatal
	}
	return r.results, r.stats, nil
}

// slot is one worker goroutine: it holds one TCP client (its own dedup
// stream on the agent) and loops take → execute → complete/requeue until
// the run is over. A transient failure requeues the point immediately —
// the requeue, not any later cleanup, is what guarantees a dying agent
// strands no work — and feeds the failure detector.
func (r *run) slot(a *agentLink, slot int, fc *runtime.FaultCounters) {
	ccfg := r.cfg.Link.ClientConfig(fmt.Sprintf("w%d.%d", a.index, slot), r.cfg.Injector, fc)
	var client *runtime.TCPClient
	defer func() {
		if client != nil {
			client.Close()
		}
	}()
	for {
		idx, ok := r.take(a)
		if !ok {
			return
		}
		var (
			data []byte
			err  error
		)
		if client == nil {
			// The handshake resets this client ID's dedup stream, so a
			// reconnect can never replay a stale cached reply.
			client, err = runtime.DialAgentConfig(a.addr, ccfg)
		}
		if err == nil {
			data, err = client.Work(r.specs[idx])
		}
		if err == nil {
			r.complete(a, idx, data)
			continue
		}
		if client != nil {
			client.Close()
			client = nil
		}
		if !runtime.IsTransient(err) {
			// The agent answered and refused (unknown task, task error):
			// retrying anywhere cannot succeed. Fail the run loudly.
			r.fail(fmt.Errorf("fabric: point %d on %s: %w", idx, a.addr, err))
			return
		}
		r.requeue(a, idx, err)
	}
}

// take blocks until a point is available and a's health permits new work,
// returning ok=false when the run is over (all points done, or fatal).
func (r *run) take(a *agentLink) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.fatal != nil || r.remaining == 0 {
			return 0, false
		}
		if a.state == core.Healthy && len(r.pending) > 0 {
			idx := r.pending[0]
			r.pending = r.pending[1:]
			r.stats.Dispatched++
			return idx, true
		}
		r.cond.Wait()
	}
}

// complete records a successful execution. Duplicate completions (the
// re-execution of a point whose first result was lost) are detected by
// the done bit and dropped — both copies carry identical bytes, so which
// one wins is immaterial.
func (r *run) complete(a *agentLink, idx int, data []byte) {
	r.observe(a, true, nil)
	r.mu.Lock()
	first := !r.done[idx]
	if first {
		r.done[idx] = true
		r.results[idx] = data
		r.remaining--
		r.stats.Completed++
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	if first && r.cfg.Store != nil {
		if err := r.cfg.Store.Save(r.sweep, idx, data); err != nil {
			r.fail(fmt.Errorf("fabric: save point %d: %w", idx, err))
		}
	}
}

// requeue returns a point to the queue after a transient failure and
// feeds the failure detector.
func (r *run) requeue(a *agentLink, idx int, err error) {
	r.mu.Lock()
	r.pending = append(r.pending, idx)
	r.stats.Requeued++
	r.cond.Broadcast()
	r.mu.Unlock()
	r.observe(a, false, err)
}

// fail records the first fatal error and wakes everyone.
func (r *run) fail(err error) {
	r.mu.Lock()
	if r.fatal == nil {
		r.fatal = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// observe feeds one call outcome into a's failure detector and handles
// state transitions: Suspect stops new dispatches, Dead counts toward the
// all-dead abort, and a success from any state resurrects the agent.
func (r *run) observe(a *agentLink, ok bool, callErr error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if callErr != nil {
		r.lastErr = callErr
	}
	prev := a.state
	a.state = a.tracker.Observe(ok)
	if a.state == prev {
		return
	}
	switch a.state {
	case core.Suspect:
		r.stats.Suspected++
	case core.Dead:
		r.stats.Dead++
		r.deadCount++
		if r.deadCount == len(r.agents) && r.remaining > 0 && r.fatal == nil {
			if r.lastErr != nil {
				r.fatal = fmt.Errorf("%w (last failure: %v)", ErrAllAgentsDead, r.lastErr)
			} else {
				r.fatal = ErrAllAgentsDead
			}
		}
	case core.Healthy:
		if prev == core.Dead {
			r.stats.Resurrected++
			r.deadCount--
		}
	}
	r.cond.Broadcast()
}

// probe is the per-agent health prober: every HealthInterval it checks an
// unhealthy agent with a dial + no-op round trip (through the fault
// injector, so a partitioned agent stays down until the partition lifts)
// and feeds the outcome to the failure detector. A probe success is what
// resurrects a dead agent.
func (r *run) probe(a *agentLink, stop <-chan struct{}, fc *runtime.FaultCounters) {
	pcfg := r.cfg.Link.ClientConfig(fmt.Sprintf("p%d", a.index), r.cfg.Injector, fc)
	pcfg.Retry.MaxAttempts = 1 // the probing loop is its own retry policy
	timer := time.NewTimer(r.cfg.Link.HealthInterval)
	defer timer.Stop()
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
		}
		timer.Reset(r.cfg.Link.HealthInterval)
		r.mu.Lock()
		state := a.state
		over := r.fatal != nil || r.remaining == 0
		r.mu.Unlock()
		if over {
			return
		}
		if state == core.Healthy {
			continue
		}
		ok := false
		if c, err := runtime.DialAgentConfig(a.addr, pcfg); err == nil {
			ok = c.Ping() == nil
			c.Close()
		}
		r.observe(a, ok, nil)
	}
}
