package fabric

import (
	"flag"
	"fmt"
	"time"

	"lingerlonger/internal/core"
	"lingerlonger/internal/runtime"
)

// LinkConfig is the cluster-link configuration shared by every process
// that speaks the fabric protocol: cmd/llsweep's coordinator builds its
// per-slot agent clients from it, and cmd/lingerd's coordinator mode uses
// the same struct for its legacy job-scheduling clients. One typed surface
// means one set of flags, one validation, and no drift between the two
// commands' ideas of a timeout.
type LinkConfig struct {
	// DialTimeout bounds each TCP connection attempt. Zero = OS default.
	DialTimeout time.Duration
	// CallTimeout is the per-RPC deadline; a call exceeding it counts as a
	// transient failure (the request may or may not have executed). Zero
	// disables the deadline — only sensible with an in-process transport.
	CallTimeout time.Duration
	// RetryAttempts bounds each logical call's attempt loop (>= 1).
	RetryAttempts int
	// RetryBase is the first backoff sleep; successive retries double it.
	// Zero disables sleeping (the virtual-time test default).
	RetryBase time.Duration
	// RetryMax caps the exponential backoff. Zero = uncapped.
	RetryMax time.Duration
	// HealthInterval is how often the per-agent prober re-probes an agent
	// that is not Healthy (and how long a worker blocks between noticing
	// an unhealthy agent and the state possibly changing).
	HealthInterval time.Duration
	// SuspectAfter / DeadAfter are consecutive call failures before an
	// agent is marked Suspect (takes no new work) and Dead (its lost
	// points are already requeued; only the prober can bring it back).
	SuspectAfter int
	DeadAfter    int
	// MaxInFlight is the number of concurrent work calls per agent: each
	// agent gets this many slot workers, each with its own TCP connection
	// and client-stream ID.
	MaxInFlight int
	// Seed feeds the per-client backoff jitter streams (and nothing that
	// affects results — jitter is wall-clock only).
	Seed int64
}

// DefaultLinkConfig returns the production defaults: 2 s dials, 10 s
// calls, three attempts backing off 25 ms..1 s, 250 ms health probes, the
// §7 suspect/dead thresholds, and four in-flight points per agent.
func DefaultLinkConfig() LinkConfig {
	hp := core.DefaultHealthPolicy()
	return LinkConfig{
		DialTimeout:    2 * time.Second,
		CallTimeout:    10 * time.Second,
		RetryAttempts:  3,
		RetryBase:      25 * time.Millisecond,
		RetryMax:       time.Second,
		HealthInterval: 250 * time.Millisecond,
		SuspectAfter:   hp.SuspectAfter,
		DeadAfter:      hp.DeadAfter,
		MaxInFlight:    4,
	}
}

// Validate checks the configuration.
func (c LinkConfig) Validate() error {
	if c.DialTimeout < 0 || c.CallTimeout < 0 || c.RetryBase < 0 || c.RetryMax < 0 {
		return fmt.Errorf("fabric: negative timeout in link config %+v", c)
	}
	if c.RetryAttempts < 1 {
		return fmt.Errorf("fabric: RetryAttempts %d < 1", c.RetryAttempts)
	}
	if c.HealthInterval <= 0 {
		return fmt.Errorf("fabric: HealthInterval %v must be positive", c.HealthInterval)
	}
	if c.MaxInFlight < 1 {
		return fmt.Errorf("fabric: MaxInFlight %d < 1", c.MaxInFlight)
	}
	return (core.HealthPolicy{SuspectAfter: c.SuspectAfter, DeadAfter: c.DeadAfter}).Validate()
}

// RegisterFlags registers the link flags on fs with the receiver's values
// as defaults. Taking the FlagSet explicitly (instead of the global one)
// keeps the function usable under go test -count=2, where a global
// re-registration would panic.
func (c *LinkConfig) RegisterFlags(fs *flag.FlagSet) {
	fs.DurationVar(&c.DialTimeout, "dial-timeout", c.DialTimeout, "TCP dial timeout per connection attempt")
	fs.DurationVar(&c.CallTimeout, "call-timeout", c.CallTimeout, "per-RPC deadline (0 disables)")
	fs.IntVar(&c.RetryAttempts, "retries", c.RetryAttempts, "attempts per logical call")
	fs.DurationVar(&c.RetryBase, "retry-base", c.RetryBase, "initial retry backoff (doubles per retry)")
	fs.DurationVar(&c.RetryMax, "retry-max", c.RetryMax, "retry backoff cap")
	fs.DurationVar(&c.HealthInterval, "health-interval", c.HealthInterval, "probe interval for suspect/dead agents")
	fs.IntVar(&c.SuspectAfter, "suspect-after", c.SuspectAfter, "consecutive failures before an agent is suspect")
	fs.IntVar(&c.DeadAfter, "dead-after", c.DeadAfter, "consecutive failures before an agent is dead")
	fs.IntVar(&c.MaxInFlight, "inflight", c.MaxInFlight, "concurrent work calls per agent")
}

// HealthPolicy returns the link's suspect/dead thresholds as the §7
// failure-detector policy.
func (c LinkConfig) HealthPolicy() core.HealthPolicy {
	return core.HealthPolicy{SuspectAfter: c.SuspectAfter, DeadAfter: c.DeadAfter}
}

// ClientConfig builds the runtime TCP client configuration for one client
// stream. clientID must be unique per concurrent connection to one agent
// (the fabric uses "w<agent>.<slot>" and "p<agent>"); injector and
// counters may be nil.
func (c LinkConfig) ClientConfig(clientID string, injector runtime.FaultInjector, counters *runtime.FaultCounters) runtime.TCPClientConfig {
	return runtime.TCPClientConfig{
		Timeout:     c.CallTimeout,
		DialTimeout: c.DialTimeout,
		ClientID:    clientID,
		Retry: runtime.RetryConfig{
			MaxAttempts: c.RetryAttempts,
			BaseDelay:   c.RetryBase,
			MaxDelay:    c.RetryMax,
			Seed:        c.Seed,
		},
		Injector: injector,
		Counters: counters,
	}
}
