package fabric

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"lingerlonger/internal/scenario"
)

// The committed specs under scenarios/ are the declarative form of the
// builtin figure sweeps. These golden tests pin the contract that makes
// them interchangeable: expanding a spec and running its points through
// the fabric produces a report byte-identical to the legacy named sweep.

func goldenScenario(t *testing.T, file, sweep string) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "scenarios", file))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.Decode(data)
	if err != nil {
		t.Fatal(err)
	}

	legacyID, legacySpecs, err := BuildSweep(sweep, spec.Seed, true)
	if err != nil {
		t.Fatal(err)
	}
	legacyResults, _, err := RunLocal(BuiltinTasks(), nil, 2, legacyID, legacySpecs, nil)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := EncodeReport(legacyID, spec.Seed, true, legacyResults)
	if err != nil {
		t.Fatal(err)
	}

	scenID, scenSpecs, err := scenario.Expand(spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if scenID != legacyID {
		t.Fatalf("scenario %s expands to sweep id %q, legacy id is %q", file, scenID, legacyID)
	}
	if len(scenSpecs) != len(legacySpecs) {
		t.Fatalf("scenario %s expands to %d points, legacy sweep has %d", file, len(scenSpecs), len(legacySpecs))
	}
	scenResults, _, err := RunLocal(BuiltinTasks(), nil, 2, scenID, scenSpecs, nil)
	if err != nil {
		t.Fatal(err)
	}
	scen, err := EncodeReport(scenID, spec.Seed, true, scenResults)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(legacy, scen) {
		t.Errorf("scenario %s is not byte-identical to sweep %q:\n--- legacy ---\n%s\n--- scenario ---\n%s",
			file, sweep, legacy, scen)
	}
}

func TestGoldenNodeScenario(t *testing.T) {
	goldenScenario(t, "node.json", "node")
}

func TestGoldenFig8Scenario(t *testing.T) {
	goldenScenario(t, "fig8.json", "fig8")
}

// TestScenarioTaskRegistered pins the fabric contract: agents resolve the
// "scenario" task from the builtin table, so scenario sweeps can run on a
// distributed fabric without any new wire messages.
func TestScenarioTaskRegistered(t *testing.T) {
	if _, ok := BuiltinTasks().Lookup(scenario.TaskName); !ok {
		t.Fatalf("task %q not in BuiltinTasks", scenario.TaskName)
	}
}
