package fabric

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lingerlonger/internal/checkpoint"
	"lingerlonger/internal/exp"
	"lingerlonger/internal/runtime"
)

// helperEnv marks a re-exec of the test binary as an agent helper process.
const helperEnv = "LLFABRIC_AGENT_HELPER"

func TestMain(m *testing.M) {
	if name := os.Getenv(helperEnv); name != "" {
		runAgentHelper(name)
		return
	}
	os.Exit(m.Run())
}

// runAgentHelper is the body of a re-exec'd agent process: serve one work
// agent on an ephemeral port, print the address, and block until killed.
// The task registry must match the in-process baseline's so both compute
// identical bytes per spec.
func runAgentHelper(name string) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	owner, err := runtime.NewScriptedOwner([]runtime.OwnerPhase{{Duration: 1e9, Util: 0.02, FreeMB: 40}})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	a := runtime.NewAgent(name, owner, 64)
	a.SetWorkExecutor(testTasks(15 * time.Millisecond).Run)
	srv := runtime.NewAgentServer(a, l)
	fmt.Println(srv.Addr())
	select {} // until SIGKILL
}

// spawnAgentProcess re-execs the test binary as an agent helper and returns
// its address and process handle.
func spawnAgentProcess(t *testing.T, name string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), helperEnv+"="+name)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(out)
	if !sc.Scan() {
		t.Fatalf("agent helper %s printed no address: %v", name, sc.Err())
	}
	return sc.Text(), cmd
}

// signalStore wraps a store and closes a channel once `after` points have
// been saved — the "mid-sweep" trigger for the kill.
type signalStore struct {
	inner exp.Store
	after int64
	saves atomic.Int64
	once  sync.Once
	ch    chan struct{}
}

func newSignalStore(inner exp.Store, after int) *signalStore {
	return &signalStore{inner: inner, after: int64(after), ch: make(chan struct{})}
}

// Lookup delegates to the wrapped store.
func (s *signalStore) Lookup(sweep string, i int) ([]byte, bool, error) {
	return s.inner.Lookup(sweep, i)
}

// Save delegates, then fires the signal at the threshold.
func (s *signalStore) Save(sweep string, i int, data []byte) error {
	err := s.inner.Save(sweep, i, data)
	if err == nil && s.saves.Add(1) >= s.after {
		s.once.Do(func() { close(s.ch) })
	}
	return err
}

// SIGKILL one agent process mid-sweep: the fabric must requeue its lost
// points onto the survivors and finish with output byte-identical to an
// uninterrupted single-process run. This is the satellite acceptance test
// for the PR: real processes, a real kill, real recovery.
func TestFabricSurvivesKilledAgentProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real agent processes")
	}
	specs := testSpecs(48)
	want := serialBaseline(t, specs)

	var addrs []string
	var victims []*exec.Cmd
	for _, name := range []string{"pa", "pb", "pc"} {
		addr, cmd := spawnAgentProcess(t, name)
		addrs = append(addrs, addr)
		victims = append(victims, cmd)
	}

	ckpt, err := checkpoint.OpenOrCreate(t.TempDir(), checkpoint.Meta{
		Schema: checkpoint.SchemaVersion,
		Seed:   3,
		Sweep:  "unit",
	})
	if err != nil {
		t.Fatal(err)
	}
	store := newSignalStore(ckpt, 8)

	// Kill agent "pb" once 8 points have been checkpointed — mid-sweep,
	// with work in flight on the victim.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		<-store.ch
		victims[1].Process.Kill()
		victims[1].Wait()
	}()

	link := fastLink()
	link.DialTimeout = time.Second
	got, stats, err := Run(Config{Agents: addrs, Link: link, Store: store}, "unit", specs)
	if err != nil {
		t.Fatal(err)
	}
	<-killed
	assertSameBytes(t, want, got)
	if stats.Completed+stats.Restored != len(specs) {
		t.Errorf("completed %d + restored %d != %d points", stats.Completed, stats.Restored, len(specs))
	}
	if stats.Dead < 1 {
		t.Errorf("stats = %+v, want the killed agent detected dead", stats)
	}

	// A rerun against the same checkpoint restores everything and ships
	// the same bytes — kill-and-resume end to end.
	again, stats2, err := Run(Config{Agents: []string{addrs[0], addrs[2]}, Link: link, Store: store}, "unit", specs)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBytes(t, want, again)
	if stats2.Restored != len(specs) {
		t.Errorf("resume stats = %+v, want all %d restored", stats2, len(specs))
	}
}
