package fabric

import (
	"encoding/json"
	"fmt"
	"math"

	"lingerlonger/internal/cluster"
	"lingerlonger/internal/core"
	"lingerlonger/internal/exp"
	"lingerlonger/internal/node"
	"lingerlonger/internal/scenario"
	"lingerlonger/internal/stats"
	"lingerlonger/internal/trace"
	"lingerlonger/internal/workload"
)

// This file defines the built-in fabric tasks — the remote-executable
// forms of the repository's simulations — and the sweep builders that
// expand a (sweep name, master seed, quick) triple into the point specs
// every execution path (serial, parallel local, distributed) runs
// identically. Tasks must be pure functions of their spec: all randomness
// comes from spec.Seed via exp.DeriveSeed, and outputs are canonical JSON
// whose bytes round-trip unchanged through the checkpoint store.

// TaskCluster is the batch cluster simulation task (Figures 7-8 shape):
// one policy on one workload, reporting the Figure 7 metrics and Figure 8
// breakdown.
const TaskCluster = "cluster"

// TaskNode is the single-workstation task (Figure 5 shape): one
// (context-switch, utilization) point reporting LDR and FCSR.
const TaskNode = "node"

// clusterParams is the JSON parameter document of TaskCluster.
type clusterParams struct {
	Policy   string `json:"policy"`
	Workload int    `json:"workload"` // 1 (heavy) or 2 (light)
	Quick    bool   `json:"quick"`
}

// clusterPoint is the JSON result document of TaskCluster.
type clusterPoint struct {
	Policy        string  `json:"policy"`
	Workload      int     `json:"workload"`
	AvgCompletion float64 `json:"avgCompletion"`
	Variation     float64 `json:"variation"`
	FamilyTime    float64 `json:"familyTime"`
	LocalDelay    float64 `json:"localDelay"`
	Queued        float64 `json:"queued"`
	Running       float64 `json:"running"`
	Lingering     float64 `json:"lingering"`
	Paused        float64 `json:"paused"`
	Migrating     float64 `json:"migrating"`
	Migrations    int     `json:"migrations"`
	Evictions     int     `json:"evictions"`
	Incomplete    int     `json:"incomplete"`
}

func runClusterTask(spec exp.PointSpec) ([]byte, error) {
	var p clusterParams
	if err := json.Unmarshal(spec.Params, &p); err != nil {
		return nil, fmt.Errorf("fabric: cluster params: %w", err)
	}
	policy, err := core.ParsePolicy(p.Policy)
	if err != nil {
		return nil, err
	}
	var cfg cluster.Config
	switch p.Workload {
	case 1:
		cfg = cluster.Workload1(policy)
	case 2:
		cfg = cluster.Workload2(policy)
	default:
		return nil, fmt.Errorf("fabric: cluster workload %d (want 1 or 2)", p.Workload)
	}
	tcfg := trace.DefaultConfig()
	machines, days := 16, 7
	if p.Quick {
		machines, days = 6, 1
		cfg.Nodes = 16
		cfg.NumJobs = math.Min(cfg.NumJobs, 24)
		cfg.JobCPU = 120
	}
	tcfg.Days = days
	// Two independent seed spaces off the point seed: one for the trace
	// corpus, one for the simulation itself.
	corpus, err := trace.GenerateCorpus(tcfg, machines, stats.NewRNG(exp.DeriveSeed(spec.Seed, 0)))
	if err != nil {
		return nil, err
	}
	cfg.Seed = exp.DeriveSeed(spec.Seed, 1)
	res, err := cluster.Run(cfg, corpus)
	if err != nil {
		return nil, err
	}
	return json.Marshal(clusterPoint{
		Policy:        p.Policy,
		Workload:      p.Workload,
		AvgCompletion: res.AvgCompletion,
		Variation:     res.Variation,
		FamilyTime:    res.FamilyTime,
		LocalDelay:    res.LocalDelay,
		Queued:        res.Breakdown.Queued,
		Running:       res.Breakdown.Running,
		Lingering:     res.Breakdown.Lingering,
		Paused:        res.Breakdown.Paused,
		Migrating:     res.Breakdown.Migrating,
		Migrations:    res.Migrations,
		Evictions:     res.Evictions,
		Incomplete:    res.Incomplete,
	})
}

// nodeParams is the JSON parameter document of TaskNode.
type nodeParams struct {
	ContextSwitch float64 `json:"cs"`   // effective context-switch time, seconds
	Utilization   float64 `json:"util"` // owner CPU utilization
	Duration      float64 `json:"dur"`  // simulated seconds
}

// nodePoint is the JSON result document of TaskNode.
type nodePoint struct {
	ContextSwitch float64 `json:"cs"`
	Utilization   float64 `json:"util"`
	LDR           float64 `json:"ldr"`
	FCSR          float64 `json:"fcsr"`
}

func runNodeTask(spec exp.PointSpec) ([]byte, error) {
	var p nodeParams
	if err := json.Unmarshal(spec.Params, &p); err != nil {
		return nil, fmt.Errorf("fabric: node params: %w", err)
	}
	if p.Duration <= 0 {
		return nil, fmt.Errorf("fabric: node duration %g must be positive", p.Duration)
	}
	n := node.New(
		node.Config{ContextSwitch: p.ContextSwitch, BurstLookahead: 64},
		workload.DefaultTable(),
		workload.ConstantUtilization(p.Utilization),
		stats.NewRNG(spec.Seed),
	)
	n.ServeForeign(math.Inf(1), p.Duration)
	return json.Marshal(nodePoint{
		ContextSwitch: p.ContextSwitch,
		Utilization:   p.Utilization,
		LDR:           n.LDR(),
		FCSR:          n.FCSR(),
	})
}

// BuiltinTasks returns a registry holding the repository's standard tasks,
// including the scenario task (internal/scenario) that executes points of
// declarative scenario specs. Agents (cmd/lingerd -agent) and serial
// drivers (cmd/llsweep -workers) must register the same tasks so a spec
// means the same computation in every process.
func BuiltinTasks() *exp.Tasks {
	t := exp.NewTasks()
	for name, fn := range map[string]exp.TaskFunc{
		TaskCluster:       runClusterTask,
		TaskNode:          runNodeTask,
		scenario.TaskName: scenario.Task,
	} {
		if err := t.Register(name, fn); err != nil {
			panic(err) // unreachable: static names, non-nil funcs
		}
	}
	return t
}

// SweepNames lists the sweeps BuildSweep knows how to expand.
func SweepNames() []string { return []string{"node", "fig8"} }

// BuildSweep expands a named sweep into its point specs: per-point seeds
// come from exp.DeriveSeed(seed, index), and parameters are canonical
// JSON, so the spec list is a pure function of (name, seed, quick). The
// returned ID is the checkpoint sweep key.
func BuildSweep(name string, seed int64, quick bool) (string, []exp.PointSpec, error) {
	var specs []exp.PointSpec
	add := func(task string, params any) error {
		b, err := json.Marshal(params)
		if err != nil {
			return err
		}
		i := len(specs)
		specs = append(specs, exp.PointSpec{
			Task:   task,
			Sweep:  name,
			Index:  i,
			Seed:   exp.DeriveSeed(seed, i),
			Params: b,
		})
		return nil
	}
	switch name {
	case "node":
		css := []float64{100e-6, 300e-6, 500e-6}
		var utils []float64
		dur := 2000.0
		if quick {
			utils = []float64{0, 0.3, 0.6, 0.9}
			dur = 200
		} else {
			for i := 0; i <= 18; i++ {
				utils = append(utils, float64(i)*5/100)
			}
		}
		for _, cs := range css {
			for _, u := range utils {
				if err := add(TaskNode, nodeParams{ContextSwitch: cs, Utilization: u, Duration: dur}); err != nil {
					return "", nil, err
				}
			}
		}
	case "fig8":
		for _, wl := range []int{1, 2} {
			for _, pol := range core.Policies {
				if err := add(TaskCluster, clusterParams{Policy: pol.String(), Workload: wl, Quick: quick}); err != nil {
					return "", nil, err
				}
			}
		}
	default:
		return "", nil, fmt.Errorf("fabric: unknown sweep %q (have %v)", name, SweepNames())
	}
	return name, specs, nil
}
