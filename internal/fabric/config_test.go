package fabric

import (
	"flag"
	"testing"
	"time"

	"lingerlonger/internal/runtime"
)

func TestLinkConfigValidate(t *testing.T) {
	if err := DefaultLinkConfig().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	mutations := map[string]func(*LinkConfig){
		"negative dial timeout":  func(c *LinkConfig) { c.DialTimeout = -time.Second },
		"negative call timeout":  func(c *LinkConfig) { c.CallTimeout = -time.Second },
		"negative retry base":    func(c *LinkConfig) { c.RetryBase = -time.Second },
		"negative retry max":     func(c *LinkConfig) { c.RetryMax = -time.Second },
		"zero retry attempts":    func(c *LinkConfig) { c.RetryAttempts = 0 },
		"zero health interval":   func(c *LinkConfig) { c.HealthInterval = 0 },
		"zero in-flight":         func(c *LinkConfig) { c.MaxInFlight = 0 },
		"suspect after dead":     func(c *LinkConfig) { c.SuspectAfter, c.DeadAfter = 5, 2 },
		"zero suspect threshold": func(c *LinkConfig) { c.SuspectAfter = 0 },
	}
	for name, mutate := range mutations {
		c := DefaultLinkConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// RegisterFlags must expose every tunable and write parsed values back
// into the struct.
func TestLinkConfigRegisterFlags(t *testing.T) {
	c := DefaultLinkConfig()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.RegisterFlags(fs)
	err := fs.Parse([]string{
		"-dial-timeout", "7s",
		"-call-timeout", "21s",
		"-retries", "9",
		"-retry-base", "13ms",
		"-retry-max", "3s",
		"-health-interval", "99ms",
		"-suspect-after", "4",
		"-dead-after", "8",
		"-inflight", "6",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := LinkConfig{
		DialTimeout:    7 * time.Second,
		CallTimeout:    21 * time.Second,
		RetryAttempts:  9,
		RetryBase:      13 * time.Millisecond,
		RetryMax:       3 * time.Second,
		HealthInterval: 99 * time.Millisecond,
		SuspectAfter:   4,
		DeadAfter:      8,
		MaxInFlight:    6,
	}
	if c != want {
		t.Errorf("parsed config = %+v, want %+v", c, want)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("parsed config invalid: %v", err)
	}
}

// ClientConfig must map every link field onto the transport config.
func TestLinkClientConfig(t *testing.T) {
	link := DefaultLinkConfig()
	link.Seed = 77
	counters := &runtime.FaultCounters{}
	got := link.ClientConfig("w0.1", nil, counters)
	if got.ClientID != "w0.1" || got.Counters != counters {
		t.Errorf("identity fields = %+v", got)
	}
	if got.Timeout != link.CallTimeout || got.DialTimeout != link.DialTimeout {
		t.Errorf("timeouts = %+v", got)
	}
	if got.Retry.MaxAttempts != link.RetryAttempts || got.Retry.BaseDelay != link.RetryBase ||
		got.Retry.MaxDelay != link.RetryMax || got.Retry.Seed != 77 {
		t.Errorf("retry = %+v", got.Retry)
	}
}

func TestLinkHealthPolicy(t *testing.T) {
	link := DefaultLinkConfig()
	link.SuspectAfter, link.DeadAfter = 3, 7
	hp := link.HealthPolicy()
	if hp.SuspectAfter != 3 || hp.DeadAfter != 7 {
		t.Errorf("policy = %+v", hp)
	}
}
