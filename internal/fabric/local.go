package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"lingerlonger/internal/exp"
	"lingerlonger/internal/obs"
)

// RunLocal executes specs in-process on a bounded worker pool — the
// single-process reference execution a fabric run must reproduce byte for
// byte. It shares the fabric's checkpoint format (raw task-output bytes
// keyed by (sweep, index)), so a run started serially can be resumed on a
// fabric and vice versa. workers <= 0 selects GOMAXPROCS; workers == 1 is
// the serial reference order.
func RunLocal(tasks *exp.Tasks, store exp.Store, workers int, sweep string, specs []exp.PointSpec, rec *obs.Recorder) ([][]byte, Stats, error) {
	if tasks == nil {
		return nil, Stats{}, fmt.Errorf("fabric: local run without a task registry")
	}
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, Stats{}, err
		}
		if spec.Index != i {
			return nil, Stats{}, fmt.Errorf("fabric: spec at position %d has index %d", i, spec.Index)
		}
	}
	var computed, restored atomic.Int64
	results, err := exp.Map(workers, len(specs), func(i int) ([]byte, error) {
		if store != nil {
			data, ok, err := store.Lookup(sweep, i)
			if err != nil {
				return nil, err
			}
			if ok {
				restored.Add(1)
				return data, nil
			}
		}
		data, err := tasks.Run(specs[i])
		if err != nil {
			return nil, err
		}
		if store != nil {
			if err := store.Save(sweep, i, data); err != nil {
				return nil, err
			}
		}
		computed.Add(1)
		return data, nil
	})
	stats := Stats{
		Completed: int(computed.Load()),
		Restored:  int(restored.Load()),
	}
	if err != nil {
		return nil, stats, err
	}
	stats.Mirror(rec)
	return results, stats, nil
}

// ReportSchemaVersion pins the llsweep report layout.
const ReportSchemaVersion = 1

// Report is the deterministic output of a sweep run: identity fields plus
// the per-point result documents in index order. It deliberately contains
// no execution details (agent count, worker count, retries, restores,
// wall-clock) — those all vary run to run, and the report's contract is
// that its bytes are a pure function of (sweep, seed, quick).
type Report struct {
	SchemaVersion int               `json:"schemaVersion"`
	Sweep         string            `json:"sweep"`
	Seed          int64             `json:"seed"`
	Quick         bool              `json:"quick"`
	Points        []json.RawMessage `json:"points"`
}

// EncodeReport assembles the canonical report bytes from per-point results
// (each already a JSON document, in index order).
func EncodeReport(sweep string, seed int64, quick bool, results [][]byte) ([]byte, error) {
	rep := Report{
		SchemaVersion: ReportSchemaVersion,
		Sweep:         sweep,
		Seed:          seed,
		Quick:         quick,
		Points:        make([]json.RawMessage, len(results)),
	}
	for i, data := range results {
		if !json.Valid(data) {
			return nil, fmt.Errorf("fabric: point %d result is not valid JSON", i)
		}
		rep.Points[i] = json.RawMessage(data)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
