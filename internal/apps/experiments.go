package apps

import (
	"fmt"
	"math"

	"lingerlonger/internal/exp"
	"lingerlonger/internal/parallel"
	"lingerlonger/internal/stats"
)

// The application sweeps run in two phases on the internal/exp worker
// pool: first the per-application idle-cluster baselines, then every sweep
// point, each with an RNG derived from (seed, phase, index). Worker count
// never changes the results; see the exp package documentation.

// Fig12Point is one bar of Figure 12: the slowdown of an application on an
// eight-node cluster with the given number of non-idle nodes at the given
// local utilization.
type Fig12Point struct {
	App       string
	NonIdle   int     // 0..8 non-idle nodes
	LocalUtil float64 // utilization of the non-idle nodes (0.10..0.40)
	Slowdown  float64 // versus running on eight idle nodes
}

// baselines runs each application profile on an all-idle cluster of size
// procs, in parallel, seeding each run from its own stream of master. The
// sweep argument names the phase for checkpoint keys (each caller runs its
// baselines under a distinct ID).
func baselines(r *exp.Runner, sweep string, master int64, procs int) ([]float64, error) {
	profiles := Profiles()
	return exp.RunSeeded(r, sweep, master, len(profiles), func(i int, rng *stats.RNG) (float64, error) {
		cfg, err := profiles[i].BSPFor(procs)
		if err != nil {
			return 0, err
		}
		cfg.Rec = r.Recorder()
		return parallel.RunBSP(cfg, make([]float64, procs), rng)
	})
}

// Fig12 reproduces Figure 12: sor, water and fft on an 8-node cluster with
// the number of non-idle nodes swept 0..8 and their local utilization at
// 10, 20, 30 and 40%. The 108 grid points run under r's execution policy
// (nil selects a plain GOMAXPROCS pool) as sweeps "fig12/base" and
// "fig12/points".
func Fig12(r *exp.Runner, seed int64) ([]Fig12Point, error) {
	const procs = 8
	utils := []float64{0.10, 0.20, 0.30, 0.40}
	perProfile := len(utils) * (procs + 1)
	profiles := Profiles()

	base, err := baselines(r, "fig12/base", exp.DeriveSeed(seed, 0), procs)
	if err != nil {
		return nil, err
	}
	ptsMaster := exp.DeriveSeed(seed, 1)
	n := len(profiles) * perProfile
	return exp.RunSeeded(r, "fig12/points", ptsMaster, n, func(i int, rng *stats.RNG) (Fig12Point, error) {
		p := profiles[i/perProfile]
		rest := i % perProfile
		lusg := utils[rest/(procs+1)]
		nonIdle := rest % (procs + 1)

		cfg, err := p.BSPFor(procs)
		if err != nil {
			return Fig12Point{}, err
		}
		cfg.Rec = r.Recorder()
		uv := make([]float64, procs)
		for k := 0; k < nonIdle; k++ {
			uv[k] = lusg
		}
		tm, err := parallel.RunBSP(cfg, uv, rng)
		if err != nil {
			return Fig12Point{}, err
		}
		return Fig12Point{
			App:       p.Name,
			NonIdle:   nonIdle,
			LocalUtil: lusg,
			Slowdown:  tm / base[i/perProfile],
		}, nil
	})
}

// Fig13Point is one x-position of Figure 13: slowdown (versus a fully idle
// 16-node run) under reconfiguration and the two linger variants, for one
// application, given the number of idle nodes.
type Fig13Point struct {
	App       string
	IdleNodes int // 16..0
	// Reconfig reconfigures to the largest power-of-two number of idle
	// nodes (+Inf when none are idle).
	Reconfig float64
	// LL16 runs 16 processes, lingering on (16 - idle) non-idle nodes.
	LL16 float64
	// LL8 runs 8 processes on idle nodes while at least 8 exist, lingering
	// otherwise.
	LL8 float64
}

// Fig13Config parameterizes the Figure 13 experiment.
type Fig13Config struct {
	ClusterSize int     // the paper: 16
	NonIdleUtil float64 // the paper: 0.20
	Seed        int64
	Workers     int // sweep worker-pool size; <= 0 selects GOMAXPROCS
	// Exec, when non-nil, supplies the sweep execution policy (pool size,
	// retries, watchdog, checkpointing) and takes precedence over Workers.
	Exec *exp.Runner
}

// DefaultFig13Config returns the paper's setting.
func DefaultFig13Config() Fig13Config {
	return Fig13Config{ClusterSize: 16, NonIdleUtil: 0.20, Seed: 1}
}

// Fig13 reproduces Figure 13 for all three applications. Each (application,
// idle count) pair is one task on the exp worker pool; within a task the
// three strategies share the task's RNG sequentially.
func Fig13(cfg Fig13Config) ([]Fig13Point, error) {
	if cfg.ClusterSize <= 0 {
		return nil, fmt.Errorf("apps: ClusterSize must be positive, got %d", cfg.ClusterSize)
	}
	profiles := Profiles()
	r := exp.Or(cfg.Exec, cfg.Workers)
	base, err := baselines(r, "fig13/base", exp.DeriveSeed(cfg.Seed, 0), cfg.ClusterSize)
	if err != nil {
		return nil, err
	}

	perProfile := cfg.ClusterSize + 1
	n := len(profiles) * perProfile
	ptsMaster := exp.DeriveSeed(cfg.Seed, 1)
	return exp.RunSeeded(r, "fig13/points", ptsMaster, n, func(i int, rng *stats.RNG) (Fig13Point, error) {
		p := profiles[i/perProfile]
		idle := cfg.ClusterSize - i%perProfile
		pt := Fig13Point{App: p.Name, IdleNodes: idle}

		runOn := func(procs, nonIdle int) (float64, error) {
			c, err := p.BSPFor(procs)
			if err != nil {
				return 0, err
			}
			c.Rec = r.Recorder()
			utils := make([]float64, procs)
			for k := 0; k < nonIdle && k < procs; k++ {
				utils[k] = cfg.NonIdleUtil
			}
			tm, err := parallel.RunBSP(c, utils, rng)
			if err != nil {
				return 0, err
			}
			return tm / base[i/perProfile], nil
		}

		// Reconfiguration: largest power of two idle nodes.
		if kr := largestPow2(idle); kr == 0 {
			pt.Reconfig = math.Inf(1)
		} else {
			sd, err := runOn(kr, 0)
			if err != nil {
				return Fig13Point{}, err
			}
			pt.Reconfig = sd
		}

		// 16-process lingering.
		sd, err := runOn(cfg.ClusterSize, cfg.ClusterSize-idle)
		if err != nil {
			return Fig13Point{}, err
		}
		pt.LL16 = sd

		// 8-process lingering: idle nodes first.
		nonIdle8 := 8 - idle
		if nonIdle8 < 0 {
			nonIdle8 = 0
		}
		sd, err = runOn(8, nonIdle8)
		if err != nil {
			return Fig13Point{}, err
		}
		pt.LL8 = sd

		return pt, nil
	})
}

func largestPow2(n int) int {
	if n <= 0 {
		return 0
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}
