package apps

import (
	"fmt"
	"math"

	"lingerlonger/internal/parallel"
	"lingerlonger/internal/stats"
)

// Fig12Point is one bar of Figure 12: the slowdown of an application on an
// eight-node cluster with the given number of non-idle nodes at the given
// local utilization.
type Fig12Point struct {
	App       string
	NonIdle   int     // 0..8 non-idle nodes
	LocalUtil float64 // utilization of the non-idle nodes (0.10..0.40)
	Slowdown  float64 // versus running on eight idle nodes
}

// Fig12 reproduces Figure 12: sor, water and fft on an 8-node cluster with
// the number of non-idle nodes swept 0..8 and their local utilization at
// 10, 20, 30 and 40%.
func Fig12(seed int64) ([]Fig12Point, error) {
	const procs = 8
	rng := stats.NewRNG(seed)
	var out []Fig12Point
	for _, p := range Profiles() {
		cfg, err := p.BSPFor(procs)
		if err != nil {
			return nil, err
		}
		base, err := parallel.RunBSP(cfg, make([]float64, procs), rng)
		if err != nil {
			return nil, err
		}
		for _, lusg := range []float64{0.10, 0.20, 0.30, 0.40} {
			for nonIdle := 0; nonIdle <= procs; nonIdle++ {
				utils := make([]float64, procs)
				for i := 0; i < nonIdle; i++ {
					utils[i] = lusg
				}
				tm, err := parallel.RunBSP(cfg, utils, rng)
				if err != nil {
					return nil, err
				}
				out = append(out, Fig12Point{
					App:       p.Name,
					NonIdle:   nonIdle,
					LocalUtil: lusg,
					Slowdown:  tm / base,
				})
			}
		}
	}
	return out, nil
}

// Fig13Point is one x-position of Figure 13: slowdown (versus a fully idle
// 16-node run) under reconfiguration and the two linger variants, for one
// application, given the number of idle nodes.
type Fig13Point struct {
	App       string
	IdleNodes int // 16..0
	// Reconfig reconfigures to the largest power-of-two number of idle
	// nodes (+Inf when none are idle).
	Reconfig float64
	// LL16 runs 16 processes, lingering on (16 - idle) non-idle nodes.
	LL16 float64
	// LL8 runs 8 processes on idle nodes while at least 8 exist, lingering
	// otherwise.
	LL8 float64
}

// Fig13Config parameterizes the Figure 13 experiment.
type Fig13Config struct {
	ClusterSize int     // the paper: 16
	NonIdleUtil float64 // the paper: 0.20
	Seed        int64
}

// DefaultFig13Config returns the paper's setting.
func DefaultFig13Config() Fig13Config {
	return Fig13Config{ClusterSize: 16, NonIdleUtil: 0.20, Seed: 1}
}

// Fig13 reproduces Figure 13 for all three applications.
func Fig13(cfg Fig13Config) ([]Fig13Point, error) {
	if cfg.ClusterSize <= 0 {
		return nil, fmt.Errorf("apps: ClusterSize must be positive, got %d", cfg.ClusterSize)
	}
	rng := stats.NewRNG(cfg.Seed)
	var out []Fig13Point
	for _, p := range Profiles() {
		full, err := p.BSPFor(cfg.ClusterSize)
		if err != nil {
			return nil, err
		}
		base, err := parallel.RunBSP(full, make([]float64, cfg.ClusterSize), rng)
		if err != nil {
			return nil, err
		}

		runOn := func(procs, nonIdle int) (float64, error) {
			c, err := p.BSPFor(procs)
			if err != nil {
				return 0, err
			}
			utils := make([]float64, procs)
			for i := 0; i < nonIdle && i < procs; i++ {
				utils[i] = cfg.NonIdleUtil
			}
			tm, err := parallel.RunBSP(c, utils, rng)
			if err != nil {
				return 0, err
			}
			return tm / base, nil
		}

		for idle := cfg.ClusterSize; idle >= 0; idle-- {
			pt := Fig13Point{App: p.Name, IdleNodes: idle}

			// Reconfiguration: largest power of two idle nodes.
			if kr := largestPow2(idle); kr == 0 {
				pt.Reconfig = math.Inf(1)
			} else {
				sd, err := runOn(kr, 0)
				if err != nil {
					return nil, err
				}
				pt.Reconfig = sd
			}

			// 16-process lingering.
			nonIdle16 := cfg.ClusterSize - idle
			sd, err := runOn(cfg.ClusterSize, nonIdle16)
			if err != nil {
				return nil, err
			}
			pt.LL16 = sd

			// 8-process lingering: idle nodes first.
			nonIdle8 := 8 - idle
			if nonIdle8 < 0 {
				nonIdle8 = 0
			}
			sd, err = runOn(8, nonIdle8)
			if err != nil {
				return nil, err
			}
			pt.LL8 = sd

			out = append(out, pt)
		}
	}
	return out, nil
}

func largestPow2(n int) int {
	if n <= 0 {
		return 0
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}
