package apps

import (
	"math"
	"testing"

	"lingerlonger/internal/parallel"
	"lingerlonger/internal/stats"
)

func TestProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := Sor()
	bad.ComputePerIter = 0
	if bad.Validate() == nil {
		t.Error("zero compute accepted")
	}
	bad = Water()
	bad.MsgLatency = -1
	if bad.Validate() == nil {
		t.Error("negative latency accepted")
	}
}

// The paper's sensitivity ordering: sor is the most compute-bound, fft the
// most communication-bound.
func TestCommFractionOrdering(t *testing.T) {
	sor, water, fft := Sor(), Water(), FFT()
	if !(sor.CommFraction() < water.CommFraction() && water.CommFraction() < fft.CommFraction()) {
		t.Errorf("comm fractions: sor=%.3f water=%.3f fft=%.3f, want strictly increasing",
			sor.CommFraction(), water.CommFraction(), fft.CommFraction())
	}
}

func TestBSPForScaling(t *testing.T) {
	p := Sor()
	c16, err := p.BSPFor(16)
	if err != nil {
		t.Fatal(err)
	}
	c8, err := p.BSPFor(8)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed problem size: halving the processes doubles per-process work.
	if math.Abs(c8.ComputePerPhase-2*c16.ComputePerPhase) > 1e-12 {
		t.Errorf("8-proc compute %g, want double the 16-proc %g", c8.ComputePerPhase, c16.ComputePerPhase)
	}
	if c8.Phases != c16.Phases {
		t.Errorf("iteration count changed with process count")
	}
	if _, err := p.BSPFor(0); err == nil {
		t.Error("zero processes accepted")
	}
}

func TestFig12ShapeMatchesPaper(t *testing.T) {
	pts, err := Fig12(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	at := func(app string, nonIdle int, lusg float64) float64 {
		for _, p := range pts {
			if p.App == app && p.NonIdle == nonIdle && math.Abs(p.LocalUtil-lusg) < 1e-9 {
				return p.Slowdown
			}
		}
		t.Fatalf("missing point %s %d %g", app, nonIdle, lusg)
		return 0
	}

	for _, app := range []string{"sor", "water", "fft"} {
		// Zero non-idle nodes: no slowdown.
		if got := at(app, 0, 0.20); math.Abs(got-1) > 0.05 {
			t.Errorf("%s with 0 non-idle: slowdown %g, want ~1", app, got)
		}
		// Paper: one non-idle node at 40%: slowdown reaches only ~1.7.
		if got := at(app, 1, 0.40); got < 1.0 || got > 2.1 {
			t.Errorf("%s with 1 non-idle at 40%%: slowdown %g, want <= ~1.7-2", app, got)
		}
		// Paper: 4 non-idle at 20%: only 1.5-1.6. Our substrate overshoots
		// this point (typical draws land at 1.8-2.1 across seeds; the
		// barrier compounds the four nodes' burst tails harder than CVM
		// did — see DESIGN.md §6), so the band checked here is wider.
		if got := at(app, 4, 0.20); got < 1.0 || got > 2.3 {
			t.Errorf("%s with 4 non-idle at 20%%: slowdown %g, want ~1.5-2.1", app, got)
		}
		// Paper: all 8 non-idle at 20%: "just above a factor of 2".
		if got := at(app, 8, 0.20); got < 1.2 || got > 3.2 {
			t.Errorf("%s with 8 non-idle at 20%%: slowdown %g, want ~2", app, got)
		}
		// Slowdown grows with the non-idle count.
		if at(app, 8, 0.20) <= at(app, 1, 0.20) {
			t.Errorf("%s: slowdown not increasing with non-idle count", app)
		}
		// And with local utilization.
		if at(app, 4, 0.40) <= at(app, 4, 0.10) {
			t.Errorf("%s: slowdown not increasing with local utilization", app)
		}
	}

	// Sensitivity ordering at a representative point (paper: sor most
	// sensitive, fft least).
	sor, fft := at("sor", 8, 0.40), at("fft", 8, 0.40)
	if sor <= fft {
		t.Errorf("sor slowdown %g should exceed fft %g (compute-bound apps suffer more)", sor, fft)
	}
}

func TestFig13ShapeMatchesPaper(t *testing.T) {
	pts, err := Fig13(DefaultFig13Config())
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]map[int]Fig13Point{}
	for _, p := range pts {
		if byApp[p.App] == nil {
			byApp[p.App] = map[int]Fig13Point{}
		}
		byApp[p.App][p.IdleNodes] = p
	}
	for app, series := range byApp {
		if len(series) != 17 {
			t.Fatalf("%s: %d idle-node points, want 17", app, len(series))
		}
		// Full cluster idle: everything ~1.
		if got := series[16].LL16; math.Abs(got-1) > 0.05 {
			t.Errorf("%s at 16 idle: LL16 slowdown %g, want ~1", app, got)
		}
		// Paper: LL-16 outperforms reconfiguration when enough nodes are
		// idle (>= 12 in the paper; our substrate places the crossover at
		// ~14-15 — see EXPERIMENTS.md E11). Strictly required at 15 idle;
		// at 14 the two strategies are within noise of each other, so a 7%
		// band absorbs the seed-to-seed jitter of the barrier tails.
		p15 := series[15]
		if p15.LL16 >= p15.Reconfig {
			t.Errorf("%s at 15 idle: LL16 (%g) should beat reconfig (%g)",
				app, p15.LL16, p15.Reconfig)
		}
		p14 := series[14]
		if p14.LL16 > p14.Reconfig*1.07 {
			t.Errorf("%s at 14 idle: LL16 (%g) should be within 7%% of reconfig (%g)",
				app, p14.LL16, p14.Reconfig)
		}
		// Paper: with fewer than 8 idle nodes, LL-8 beats LL-16 and
		// reconfiguration ("a hybrid strategy ... may be the best").
		for idle := 2; idle <= 6; idle += 2 {
			p := series[idle]
			if p.LL8 >= p.LL16 {
				t.Errorf("%s at %d idle: LL8 (%g) should beat LL16 (%g)", app, idle, p.LL8, p.LL16)
			}
			// LL-8 vs reconfiguration is marginal right at the power-of-two
			// boundary (4 idle: reconfig also runs on 4 nodes), so allow 5%.
			if p.LL8 > p.Reconfig*1.05 {
				t.Errorf("%s at %d idle: LL8 (%g) should beat reconfig (%g)", app, idle, p.LL8, p.Reconfig)
			}
		}
		// Zero idle nodes: reconfiguration cannot run, lingering can.
		p0 := series[0]
		if !math.IsInf(p0.Reconfig, 1) {
			t.Errorf("%s at 0 idle: reconfig %g, want +Inf", app, p0.Reconfig)
		}
		if math.IsInf(p0.LL16, 1) || p0.LL16 <= 1 {
			t.Errorf("%s at 0 idle: LL16 %g, want finite > 1", app, p0.LL16)
		}
	}
}

func TestFig13RejectsBadConfig(t *testing.T) {
	cfg := DefaultFig13Config()
	cfg.ClusterSize = 0
	if _, err := Fig13(cfg); err == nil {
		t.Error("zero cluster accepted")
	}
}

// Cross-check with the parallel engine: an application run on all idle
// nodes matches its ideal time closely.
func TestAppIdealTime(t *testing.T) {
	for _, p := range Profiles() {
		cfg, err := p.BSPFor(16)
		if err != nil {
			t.Fatal(err)
		}
		got, err := parallel.RunBSP(cfg, make([]float64, 16), stats.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		ideal := cfg.IdealTime()
		// The serialized sync chain pays a context switch per process per
		// phase on top of the ideal formula; allow a few percent.
		if got < ideal || got > ideal*1.06 {
			t.Errorf("%s all-idle time %g, want ~%g", p.Name, got, ideal)
		}
	}
}
