package apps

import (
	"fmt"
	"math"

	"lingerlonger/internal/exp"
	"lingerlonger/internal/parallel"
	"lingerlonger/internal/stats"
	"lingerlonger/internal/workload"
)

// The paper's conclusion: "a hybrid strategy of lingering and
// reconfiguration may be the best approach". This file implements that
// strategy as a sampling scheduler: given the current number of idle
// nodes, it probes each candidate process count with a short simulated
// prefix of the application — idle nodes first, lingering on non-idle
// ones for the remainder — and picks the count whose probe predicts the
// best completion time.

// HybridChoice is the hybrid scheduler's decision for one cluster state.
type HybridChoice struct {
	Procs     int     // chosen process count
	Predicted float64 // predicted completion time, seconds
}

// probeIters is the number of iterations the hybrid scheduler samples per
// candidate before committing.
const probeIters = 12

// PickHybrid chooses the best process count from candidates for running
// the application on a cluster with idle idle nodes, the rest non-idle at
// utilization u. Each candidate is probed with a short simulated prefix
// (probeIters iterations) and the observed per-iteration time is
// extrapolated to the full run.
func (p Profile) PickHybrid(candidates []int, idle int, u float64, rng *stats.RNG) (HybridChoice, error) {
	if err := p.Validate(); err != nil {
		return HybridChoice{}, err
	}
	if len(candidates) == 0 {
		return HybridChoice{}, fmt.Errorf("apps: no candidate sizes")
	}
	if u < 0 || u >= 1 {
		return HybridChoice{}, fmt.Errorf("apps: non-idle utilization %g out of [0,1)", u)
	}
	best := HybridChoice{Predicted: math.Inf(1)}
	for _, k := range candidates {
		if k <= 0 {
			return HybridChoice{}, fmt.Errorf("apps: candidate size %d", k)
		}
		cfg, err := p.BSPFor(k)
		if err != nil {
			return HybridChoice{}, err
		}
		cfg.Phases = probeIters
		lingering := k - idle
		if lingering < 0 {
			lingering = 0
		}
		utils := make([]float64, k)
		for i := 0; i < lingering; i++ {
			utils[i] = u
		}
		probe, err := parallel.RunBSP(cfg, utils, rng)
		if err != nil {
			return HybridChoice{}, err
		}
		predicted := probe / probeIters * float64(p.Iters)
		if predicted < best.Predicted {
			best = HybridChoice{Procs: k, Predicted: predicted}
		}
	}
	return best, nil
}

// PredictIterTime is the closed-form per-iteration estimate underlying the
// linger-vs-reconfigure intuition: fluid compute stretch for lingering
// processes plus the serialized sync chain (one residual-run-burst wait
// per lingering process) plus communication. It underestimates compounding
// barrier effects at large lingering counts — which is why PickHybrid
// probes instead — but is useful for analysis.
func (p Profile) PredictIterTime(procs, idle int, u float64, table *workload.Table) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if procs <= 0 {
		return 0, fmt.Errorf("apps: %d processes", procs)
	}
	if u < 0 || u >= 1 {
		return 0, fmt.Errorf("apps: utilization %g out of [0,1)", u)
	}
	if table == nil {
		table = workload.DefaultTable()
	}
	params := table.ParamsAt(u)
	var residual float64
	if params.RunMean > 0 {
		residual = (params.RunVar/params.RunMean + params.RunMean) / 2
	}
	lingering := procs - idle
	if lingering < 0 {
		lingering = 0
	}
	scale := 16 / float64(procs)
	compute := p.ComputePerIter * scale
	if lingering > 0 {
		compute /= 1 - u
	}
	chain := float64(procs)*p.SyncCPUPerIter +
		float64(lingering)*(u*residual+p.SyncCPUPerIter*u/(1-u))
	comm := float64(p.MsgsPerIter) * p.MsgLatency * scale
	return compute + chain + comm, nil
}

// HybridPoint extends the Figure 13 comparison with the hybrid strategy's
// actual (simulated) slowdown at each idle count.
type HybridPoint struct {
	App       string
	IdleNodes int
	Procs     int     // size the hybrid scheduler picked
	Slowdown  float64 // simulated slowdown of the hybrid choice
	BestFixed float64 // best of the fixed strategies (LL-16, LL-8, reconfig)
}

// FigHybrid evaluates the hybrid scheduler against the Figure 13 fixed
// strategies: at every idle count it lets PickHybrid choose between 8 and
// 16 processes and simulates the choice. Like the other application
// sweeps, the points run on the exp worker pool with per-point derived
// seeds (streams 2 and 3 of cfg.Seed; Fig13 consumes streams 0 and 1), so
// the results are independent of the worker count. Sweep IDs are
// "hybrid/base" and "hybrid/points" (the embedded Fig13 run keeps its own
// "fig13/..." IDs, so on a checkpointed rerun its points restore).
func FigHybrid(cfg Fig13Config) ([]HybridPoint, error) {
	fixed, err := Fig13(cfg)
	if err != nil {
		return nil, err
	}
	profiles := Profiles()
	r := exp.Or(cfg.Exec, cfg.Workers)
	base, err := baselines(r, "hybrid/base", exp.DeriveSeed(cfg.Seed, 2), cfg.ClusterSize)
	if err != nil {
		return nil, err
	}

	perProfile := cfg.ClusterSize + 1
	n := len(profiles) * perProfile
	ptsMaster := exp.DeriveSeed(cfg.Seed, 3)
	return exp.RunSeeded(r, "hybrid/points", ptsMaster, n, func(i int, rng *stats.RNG) (HybridPoint, error) {
		p := profiles[i/perProfile]
		idle := cfg.ClusterSize - i%perProfile

		choice, err := p.PickHybrid([]int{8, cfg.ClusterSize}, idle, cfg.NonIdleUtil, rng)
		if err != nil {
			return HybridPoint{}, err
		}
		c, err := p.BSPFor(choice.Procs)
		if err != nil {
			return HybridPoint{}, err
		}
		c.Rec = r.Recorder()
		nonIdle := choice.Procs - idle
		if nonIdle < 0 {
			nonIdle = 0
		}
		utils := make([]float64, choice.Procs)
		for k := 0; k < nonIdle; k++ {
			utils[k] = cfg.NonIdleUtil
		}
		tm, err := parallel.RunBSP(c, utils, rng)
		if err != nil {
			return HybridPoint{}, err
		}
		bestFixed := math.Inf(1)
		for _, f := range fixed {
			if f.App == p.Name && f.IdleNodes == idle {
				bestFixed = math.Min(f.LL16, math.Min(f.LL8, f.Reconfig))
			}
		}
		return HybridPoint{
			App:       p.Name,
			IdleNodes: idle,
			Procs:     choice.Procs,
			Slowdown:  tm / base[i/perProfile],
			BestFixed: bestFixed,
		}, nil
	})
}
