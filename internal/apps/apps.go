// Package apps models the paper's three "real" shared-memory parallel
// applications — sor (Jacobi relaxation), water (molecular dynamics, from
// SPLASH-2) and fft (fast Fourier transform) — on the BSP engine of
// internal/parallel (§5.2).
//
// The paper ran the actual binaries through the CVM software-DSM simulator
// with ATOM binary rewriting. Neither tool is available, so each
// application is reduced to its iteration profile: CPU per process per
// iteration, messages exchanged per iteration, and message latency. The
// profiles preserve the property the paper's results hinge on — the
// compute/communication ratio ordering — sor is the most compute-bound
// (and so the most sensitive to local CPU activity), water communicates
// more, and fft is the most communication-intensive (and least sensitive),
// because time spent waiting on the network is not slowed by local jobs.
// See DESIGN.md §2.
//
// The figure drivers (Fig12, Fig13, FigHybrid) sweep these profiles over
// idle/non-idle node mixes. Each sweep point runs on the internal/exp
// worker pool with its own RNG derived from (seed, index), so the sweeps
// parallelize across a Workers-sized pool without changing a single
// number (DESIGN.md §8).
package apps

import (
	"fmt"

	"lingerlonger/internal/node"
	"lingerlonger/internal/parallel"
)

// Profile is one application's per-iteration behaviour, normalized to a
// 16-process run (the Figure 13 cluster size).
type Profile struct {
	Name string
	// ComputePerIter is the CPU seconds one of 16 processes needs per
	// iteration.
	ComputePerIter float64
	// MsgsPerIter is the number of messages each process exchanges per
	// iteration.
	MsgsPerIter int
	// MsgLatency is the per-message time in seconds.
	MsgLatency float64
	// SyncCPUPerIter is the CPU each process spends handling
	// synchronization and DSM protocol traffic per iteration (served at
	// low priority, serialized around the processes — the CVM coherence
	// pipeline).
	SyncCPUPerIter float64
	// Iters is the number of iterations in a full run.
	Iters int
}

// CommFraction returns the fraction of an undisturbed iteration spent
// communicating.
func (p Profile) CommFraction() float64 {
	comm := float64(p.MsgsPerIter) * p.MsgLatency
	return comm / (p.ComputePerIter + comm)
}

// Sor returns the Jacobi-relaxation profile: fine-grain relaxation sweeps
// with a light nearest-neighbour exchange — the most sensitive to local
// activity, because nearly all of an iteration is low-priority compute.
func Sor() Profile {
	return Profile{Name: "sor", ComputePerIter: 0.050, MsgsPerIter: 2, MsgLatency: 0.001, SyncCPUPerIter: 0.0008, Iters: 120}
}

// Water returns the molecular-dynamics profile: moderate compute with
// substantially more communication per step.
func Water() Profile {
	return Profile{Name: "water", ComputePerIter: 0.030, MsgsPerIter: 12, MsgLatency: 0.0012, SyncCPUPerIter: 0.0012, Iters: 150}
}

// FFT returns the fast-Fourier-transform profile: short compute steps
// dominated by all-to-all exchanges — the least sensitive to local
// activity.
func FFT() Profile {
	return Profile{Name: "fft", ComputePerIter: 0.040, MsgsPerIter: 7, MsgLatency: 0.004, SyncCPUPerIter: 0.0015, Iters: 90}
}

// Profiles returns the three applications in the paper's order.
func Profiles() []Profile {
	if profilesOverride != nil {
		return profilesOverride
	}
	return []Profile{Sor(), Water(), FFT()}
}

// Validate checks profile sanity.
func (p Profile) Validate() error {
	if p.ComputePerIter <= 0 || p.Iters <= 0 {
		return fmt.Errorf("apps: %s has non-positive compute or iterations", p.Name)
	}
	if p.MsgsPerIter < 0 || p.MsgLatency < 0 {
		return fmt.Errorf("apps: %s has negative communication parameters", p.Name)
	}
	return nil
}

// BSPFor returns the BSP job description for running the application on
// procs processes. The problem size is fixed (SPLASH fixed-size scaling):
// per-process compute scales as 16/procs, and so does the per-process
// communication volume — the same total data crosses the network through
// fewer endpoints — while the iteration count stays constant.
func (p Profile) BSPFor(procs int) (parallel.BSPConfig, error) {
	if err := p.Validate(); err != nil {
		return parallel.BSPConfig{}, err
	}
	if procs <= 0 {
		return parallel.BSPConfig{}, fmt.Errorf("apps: %s on %d processes", p.Name, procs)
	}
	scale := 16 / float64(procs)
	return parallel.BSPConfig{
		Procs:           procs,
		ComputePerPhase: p.ComputePerIter * scale,
		Phases:          p.Iters,
		MsgsPerPhase:    p.MsgsPerIter,
		MsgLatency:      p.MsgLatency * scale,
		ContextSwitch:   node.DefaultContextSwitch,
		SyncHandlerCPU:  p.SyncCPUPerIter,
	}, nil
}

// profilesOverride, when non-nil, replaces Profiles() — a testing hook.
var profilesOverride []Profile
