package apps

import (
	"math"
	"testing"

	"lingerlonger/internal/stats"
	"lingerlonger/internal/workload"
)

func TestPickHybridFullClusterPrefersWide(t *testing.T) {
	p := Sor()
	choice, err := p.PickHybrid([]int{8, 16}, 16, 0.20, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if choice.Procs != 16 {
		t.Errorf("full idle cluster: picked %d processes, want 16", choice.Procs)
	}
}

func TestPickHybridBusyClusterPrefersNarrow(t *testing.T) {
	p := Sor()
	choice, err := p.PickHybrid([]int{8, 16}, 4, 0.20, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if choice.Procs != 8 {
		t.Errorf("4 idle nodes: picked %d processes, want 8 (the Figure 13 flip)", choice.Procs)
	}
}

func TestPickHybridErrors(t *testing.T) {
	p := Water()
	rng := stats.NewRNG(3)
	if _, err := p.PickHybrid(nil, 4, 0.2, rng); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := p.PickHybrid([]int{0}, 4, 0.2, rng); err == nil {
		t.Error("zero candidate accepted")
	}
	if _, err := p.PickHybrid([]int{8}, 4, 1.0, rng); err == nil {
		t.Error("utilization 1.0 accepted")
	}
	bad := p
	bad.Iters = 0
	if _, err := bad.PickHybrid([]int{8}, 4, 0.2, rng); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestPredictIterTime(t *testing.T) {
	table := workload.DefaultTable()
	for _, p := range Profiles() {
		idleTime, err := p.PredictIterTime(16, 16, 0.20, table)
		if err != nil {
			t.Fatal(err)
		}
		busyTime, err := p.PredictIterTime(16, 4, 0.20, table)
		if err != nil {
			t.Fatal(err)
		}
		if idleTime <= 0 {
			t.Errorf("%s: non-positive idle prediction %g", p.Name, idleTime)
		}
		if busyTime <= idleTime {
			t.Errorf("%s: lingering prediction %g not above idle %g", p.Name, busyTime, idleTime)
		}
	}
	if _, err := Sor().PredictIterTime(0, 4, 0.2, nil); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := Sor().PredictIterTime(16, 4, -0.1, nil); err == nil {
		t.Error("negative utilization accepted")
	}
}

// The hybrid scheduler should track the lower envelope of the fixed
// strategies: never much worse than the best of LL-16 / LL-8 / reconfig.
func TestFigHybridTracksLowerEnvelope(t *testing.T) {
	pts, err := FigHybrid(DefaultFig13Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3*17 {
		t.Fatalf("points = %d, want 51", len(pts))
	}
	for _, p := range pts {
		if p.Slowdown <= 0 {
			t.Errorf("%s idle=%d: slowdown %g", p.App, p.IdleNodes, p.Slowdown)
		}
		if math.IsInf(p.BestFixed, 1) {
			continue
		}
		if p.Slowdown > p.BestFixed*1.3 {
			t.Errorf("%s idle=%d: hybrid %g much worse than best fixed %g",
				p.App, p.IdleNodes, p.Slowdown, p.BestFixed)
		}
	}
	// At 0 idle it must still run (unlike reconfiguration).
	for _, p := range pts {
		if p.IdleNodes == 0 && (p.Slowdown <= 1 || math.IsInf(p.Slowdown, 1)) {
			t.Errorf("%s at 0 idle: hybrid slowdown %g", p.App, p.Slowdown)
		}
	}
	// The scheduler adapts: it picks wide when the cluster is idle and
	// narrow when it is busy.
	for _, p := range pts {
		if p.IdleNodes == 16 && p.Procs != 16 {
			t.Errorf("%s at 16 idle: picked %d procs", p.App, p.Procs)
		}
		if p.IdleNodes == 2 && p.Procs != 8 {
			t.Errorf("%s at 2 idle: picked %d procs, want 8", p.App, p.Procs)
		}
	}
}
