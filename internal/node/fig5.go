package node

import (
	"math"

	"lingerlonger/internal/obs"
	"lingerlonger/internal/stats"
	"lingerlonger/internal/workload"
)

// Fig5Point is one point of Figure 5: the impact of lingering on one node
// at one local utilization level and one effective context-switch time.
type Fig5Point struct {
	Utilization   float64 // local CPU utilization (x-axis)
	ContextSwitch float64 // effective context-switch time, seconds
	LDR           float64 // local job delay ratio (Figure 5a)
	FCSR          float64 // fine-grain cycle stealing ratio (Figure 5b)
}

// Fig5Config parameterizes the Figure 5 experiment.
type Fig5Config struct {
	ContextSwitches []float64 // curves; the paper uses 100, 300, 500 µs
	Utilizations    []float64 // x-axis points
	Duration        float64   // simulated seconds per point
	Seed            int64
	// Rec, when non-nil, counts node.preemptions across the sweep.
	// Metrics are outputs only — no simulation decision reads them.
	Rec *obs.Recorder
}

// DefaultFig5Config returns the paper's sweep: context-switch times of
// 100/300/500 µs across local utilizations 0..90% on a single node with a
// compute-bound foreign job.
func DefaultFig5Config() Fig5Config {
	utils := make([]float64, 0, 19)
	for i := 0; i <= 18; i++ {
		utils = append(utils, float64(i)*5/100)
	}
	return Fig5Config{
		ContextSwitches: []float64{100e-6, 300e-6, 500e-6},
		Utilizations:    utils,
		Duration:        2000,
		Seed:            1,
	}
}

// Fig5 runs the Figure 5 experiment: for each context-switch time and each
// utilization level it simulates a single node hosting an always-runnable
// foreign job and reports the owner's delay ratio and the foreign job's
// cycle-stealing ratio.
func Fig5(table *workload.Table, cfg Fig5Config) []Fig5Point {
	rng := stats.NewRNG(cfg.Seed)
	var out []Fig5Point
	for _, cs := range cfg.ContextSwitches {
		for _, u := range cfg.Utilizations {
			// Each point owns its split RNG and serves one uninterrupted
			// foreign job, so burst lookahead is safe: the stream is
			// consumed strictly linearly and the RNG is never reused.
			n := New(Config{ContextSwitch: cs, Rec: cfg.Rec, BurstLookahead: 64}, table, workload.ConstantUtilization(u), rng.Split())
			n.ServeForeign(math.Inf(1), cfg.Duration)
			out = append(out, Fig5Point{
				Utilization:   u,
				ContextSwitch: cs,
				LDR:           n.LDR(),
				FCSR:          n.FCSR(),
			})
		}
	}
	return out
}
