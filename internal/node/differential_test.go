package node

import (
	"math"
	"testing"

	"lingerlonger/internal/stats"
	"lingerlonger/internal/workload"
)

// steppedUtilization is a UtilizationSource that walks a fixed cycle of
// levels, changing every window: it forces the stream through mixed,
// pure-idle and pure-busy windows so the differential suite crosses every
// drawNext branch.
type steppedUtilization []float64

func (s steppedUtilization) UtilizationAt(t float64) float64 {
	idx := int(t/workload.DefaultWindow) % len(s)
	if idx < 0 {
		idx += len(s)
	}
	return s[idx]
}

// nodeModel is the surface the differential suite compares: both Node and
// RefNode implement it.
type nodeModel interface {
	Now() float64
	LDR() float64
	FCSR() float64
	ForeignCPU() float64
	LocalDelay() float64
	LocalCPUDemand() float64
	Preemptions() int64
	Advance(until float64)
	ServeForeign(demand, until float64) float64
	ResetMetrics()
}

// compareStates fails the test unless fast and ref agree exactly — not
// within a tolerance — on every observable metric. Bit-identity is the
// contract: the fast path must change no figure by any amount.
func compareStates(t *testing.T, step int, fast, ref nodeModel) {
	t.Helper()
	if fast.Now() != ref.Now() {
		t.Fatalf("step %d: Now %v != ref %v", step, fast.Now(), ref.Now())
	}
	if fast.LDR() != ref.LDR() {
		t.Fatalf("step %d: LDR %v != ref %v", step, fast.LDR(), ref.LDR())
	}
	if fast.FCSR() != ref.FCSR() {
		t.Fatalf("step %d: FCSR %v != ref %v", step, fast.FCSR(), ref.FCSR())
	}
	if fast.ForeignCPU() != ref.ForeignCPU() {
		t.Fatalf("step %d: ForeignCPU %v != ref %v", step, fast.ForeignCPU(), ref.ForeignCPU())
	}
	if fast.LocalDelay() != ref.LocalDelay() {
		t.Fatalf("step %d: LocalDelay %v != ref %v", step, fast.LocalDelay(), ref.LocalDelay())
	}
	if fast.LocalCPUDemand() != ref.LocalCPUDemand() {
		t.Fatalf("step %d: LocalCPUDemand %v != ref %v", step, fast.LocalCPUDemand(), ref.LocalCPUDemand())
	}
	if fast.Preemptions() != ref.Preemptions() {
		t.Fatalf("step %d: Preemptions %v != ref %v", step, fast.Preemptions(), ref.Preemptions())
	}
}

var differentialSeeds = []int64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233}

// TestDifferentialRandomInterleavings drives a fast Node and a RefNode
// through the same randomized Advance/ServeForeign/ResetMetrics schedule
// (the full call surface the cluster simulator uses, including detach gaps
// and mid-window resumes) and asserts bit-identical state after every
// call, across 12 seeds and three context-switch costs.
func TestDifferentialRandomInterleavings(t *testing.T) {
	table := workload.DefaultTable()
	src := steppedUtilization{0.3, 0, 0.7, 1, 0.1, 0.5, 0.9, 0.05}
	for _, seed := range differentialSeeds {
		cs := []float64{0, 100e-6, 500e-6}[seed%3]
		cfg := Config{ContextSwitch: cs}
		fast := New(cfg, table, src, stats.NewRNG(seed))
		ref := NewRef(cfg, table, src, stats.NewRNG(seed))
		ops := stats.NewRNG(seed * 977)
		for step := 0; step < 250; step++ {
			switch ops.Intn(5) {
			case 0: // detach gap: advance with no foreign job
				until := fast.Now() + ops.Float64()*7
				fast.Advance(until)
				ref.Advance(until)
			case 1: // metric interval boundary
				fast.ResetMetrics()
				ref.ResetMetrics()
			default: // serve, sometimes unbounded, sometimes demand-limited
				demand := math.Inf(1)
				if ops.Bool(0.5) {
					demand = ops.Float64() * 2
				}
				until := fast.Now() + ops.Float64()*5
				df := fast.ServeForeign(demand, until)
				dr := ref.ServeForeign(demand, until)
				if df != dr {
					t.Fatalf("seed %d step %d: delivered %v != ref %v", seed, step, df, dr)
				}
			}
			compareStates(t, step, fast, ref)
		}
	}
}

// TestDifferentialLookaheadBatches compares the batched fast path (stream
// lookahead enabled, bursts consumed via Buffered/Consume) against the
// per-burst reference with and without its own lookahead. Lookahead
// streams cannot seek, so the schedule is strictly linear ServeForeign
// calls — exactly the Figure 5 and benchmark consumption pattern — with
// demand limits and short deadlines forcing partial bursts into the
// resume path.
func TestDifferentialLookaheadBatches(t *testing.T) {
	table := workload.DefaultTable()
	src := steppedUtilization{0.2, 0.6, 0, 1, 0.4}
	for _, refLookahead := range []int{0, 64} {
		for _, seed := range differentialSeeds {
			cs := []float64{0, 100e-6, 300e-6}[seed%3]
			fast := New(Config{ContextSwitch: cs, BurstLookahead: 64}, table, src, stats.NewRNG(seed))
			ref := NewRef(Config{ContextSwitch: cs, BurstLookahead: refLookahead}, table, src, stats.NewRNG(seed))
			ops := stats.NewRNG(seed ^ 0x9e3779b9)
			for step := 0; step < 200; step++ {
				if ops.Intn(8) == 0 {
					fast.ResetMetrics()
					ref.ResetMetrics()
				}
				demand := math.Inf(1)
				if ops.Bool(0.4) {
					demand = ops.Float64() * 1.5
				}
				until := fast.Now() + ops.Float64()*4
				df := fast.ServeForeign(demand, until)
				dr := ref.ServeForeign(demand, until)
				if df != dr {
					t.Fatalf("refLA %d seed %d step %d: delivered %v != ref %v",
						refLookahead, seed, step, df, dr)
				}
				compareStates(t, step, fast, ref)
			}
		}
	}
}

// TestDifferentialLateClock anchors both implementations at t ~ 1e9 s —
// where float64 spacing (~1.2e-7 s) dwarfs the historical absolute burst
// epsilon — and asserts they still agree exactly and keep FCSR physical.
func TestDifferentialLateClock(t *testing.T) {
	table := workload.DefaultTable()
	src := steppedUtilization{0.5, 0.2, 0, 0.8}
	const anchor = 1e9
	for _, seed := range differentialSeeds[:8] {
		fast := New(Config{ContextSwitch: 100e-6}, table, src, stats.NewRNG(seed))
		ref := NewRef(Config{ContextSwitch: 100e-6}, table, src, stats.NewRNG(seed))
		fast.Advance(anchor)
		ref.Advance(anchor)
		ops := stats.NewRNG(seed + 4242)
		for step := 0; step < 60; step++ {
			demand := math.Inf(1)
			if ops.Bool(0.5) {
				demand = ops.Float64()
			}
			until := fast.Now() + ops.Float64()*4
			df := fast.ServeForeign(demand, until)
			dr := ref.ServeForeign(demand, until)
			if df != dr {
				t.Fatalf("seed %d step %d: delivered %v != ref %v", seed, step, df, dr)
			}
			compareStates(t, step, fast, ref)
			if f := fast.FCSR(); f > 1+1e-12 {
				t.Fatalf("seed %d step %d: FCSR %v above 1 at late clock", seed, step, f)
			}
		}
	}
}
