package node

import (
	"math"
	"testing"

	"lingerlonger/internal/stats"
	"lingerlonger/internal/workload"
)

// TestBurstEpsScales pins the two regimes of the burst-end tolerance: the
// historical absolute 1e-12 near the origin, and the four-ulp relative
// bound once the clock grows past the crossover (|end| * 2^-50 > 1e-12,
// i.e. end ~ 4500 s).
func TestBurstEpsScales(t *testing.T) {
	if got := burstEps(1.0); got != 1e-12 {
		t.Errorf("burstEps(1.0) = %g, want the absolute floor 1e-12", got)
	}
	if got := burstEps(100.0); got != 1e-12 {
		t.Errorf("burstEps(100.0) = %g, want the absolute floor 1e-12", got)
	}
	if got, want := burstEps(1e9), 1e9*0x1p-50; got != want {
		t.Errorf("burstEps(1e9) = %g, want the relative bound %g", got, want)
	}
	// The relative bound must cover at least one ulp (else a one-ulp
	// shortfall re-enters the burst) while staying far below real burst
	// durations (tens of milliseconds).
	for _, end := range []float64{5e3, 1e6, 1e9, 6.048e5 /* 7-day horizon */} {
		eps := burstEps(end)
		if ulp := math.Nextafter(end, math.Inf(1)) - end; eps < ulp {
			t.Errorf("burstEps(%g) = %g below one ulp %g", end, eps, ulp)
		}
		if eps > 1e-3 {
			t.Errorf("burstEps(%g) = %g not far below burst durations", end, eps)
		}
	}
}

// TestBurstDoneLateClock is the regression the scale-aware tolerance
// exists for: at t ~ 1e9 s, float64 spacing (~1.2e-7 s) dwarfs the
// historical absolute epsilon, so a steal that lands one ulp short of the
// burst end — the closest a rounded now + (end - now) can get without
// arriving — must still count as finished. Under the absolute 1e-12 the
// burst was re-entered for a phantom iteration that over-accounted
// idleSeen and foreignCPU by one ulp each time.
func TestBurstDoneLateClock(t *testing.T) {
	end := 1e9
	oneUlpShort := math.Nextafter(end, 0)
	// Premise: the historical absolute tolerance really does misclassify
	// this position (spacing at 1e9 exceeds 1e-12 by five orders).
	if end-oneUlpShort <= 1e-12 {
		t.Fatalf("premise broken: ulp at 1e9 = %g not above 1e-12", end-oneUlpShort)
	}
	if !burstDone(oneUlpShort, end) {
		t.Errorf("one ulp short of a burst end at t=1e9 not treated as done")
	}
	if !burstDone(end, end) || !burstDone(end+1, end) {
		t.Errorf("at or past the burst end not treated as done")
	}
	// A real sliver — a microsecond-scale remainder — is not "done" even
	// at a late clock: the tolerance must stay below genuine work.
	if burstDone(end-1e-3, end) {
		t.Errorf("1 ms remainder at t=1e9 wrongly treated as done")
	}
	// Near the origin the behavior is the historical one.
	if !burstDone(1.0-1e-13, 1.0) {
		t.Errorf("sub-epsilon remainder near origin not treated as done")
	}
	if burstDone(1.0-1e-9, 1.0) {
		t.Errorf("1 ns remainder near origin wrongly treated as done")
	}
}

// TestServeForeignLateClockInvariants anchors a live node at t = 1e9 and
// serves an unbounded foreign job across many windows. With the absolute
// epsilon, phantom re-entries at this clock inflate foreignCPU relative to
// idleSeen; the scale-aware tolerance keeps the accounting physical:
// FCSR <= 1, foreignCPU <= idleSeen <= elapsed time, and the serve loop
// terminates (a livelock here would hang the test).
func TestServeForeignLateClockInvariants(t *testing.T) {
	const anchor = 1e9
	for _, u := range []float64{0, 0.3, 0.7} {
		n := New(DefaultConfig(), workload.DefaultTable(), workload.ConstantUtilization(u), stats.NewRNG(7))
		n.Advance(anchor)
		start := n.Now()
		n.ServeForeign(math.Inf(1), anchor+500)
		elapsed := n.Now() - start
		if elapsed <= 0 {
			t.Fatalf("u=%g: clock did not move", u)
		}
		if fcsr := n.FCSR(); fcsr > 1 {
			t.Errorf("u=%g: FCSR %v above 1 at late clock", u, fcsr)
		}
		if n.ForeignCPU() > n.idleSeen {
			t.Errorf("u=%g: foreignCPU %v above idleSeen %v", u, n.ForeignCPU(), n.idleSeen)
		}
		if n.idleSeen > elapsed*(1+1e-9) {
			t.Errorf("u=%g: idleSeen %v above elapsed %v", u, n.idleSeen, elapsed)
		}
	}
}
