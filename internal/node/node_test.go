package node

import (
	"math"
	"testing"

	"lingerlonger/internal/stats"
	"lingerlonger/internal/workload"
)

func newTestNode(t *testing.T, cs, util float64, seed int64) *Node {
	t.Helper()
	return New(Config{ContextSwitch: cs}, workload.DefaultTable(),
		workload.ConstantUtilization(util), stats.NewRNG(seed))
}

func TestServeForeignPureIdleDeliversEverything(t *testing.T) {
	// On a fully idle node with zero switch cost the foreign job gets all
	// wall-clock time.
	n := newTestNode(t, 0, 0, 1)
	got := n.ServeForeign(math.Inf(1), 100)
	if math.Abs(got-100) > 1e-6 {
		t.Errorf("delivered %g CPU on idle node, want 100", got)
	}
	if f := n.FCSR(); math.Abs(f-1) > 1e-9 {
		t.Errorf("FCSR = %g, want 1", f)
	}
	if n.LDR() != 0 {
		t.Errorf("LDR = %g on idle node, want 0", n.LDR())
	}
}

func TestServeForeignPureBusyStarves(t *testing.T) {
	n := newTestNode(t, 100e-6, 1, 2)
	got := n.ServeForeign(math.Inf(1), 50)
	if got != 0 {
		t.Errorf("delivered %g CPU on fully busy node, want 0 (starvation)", got)
	}
	if n.Now() != 50 {
		t.Errorf("Now() = %g, want 50", n.Now())
	}
}

func TestServeForeignDeliveredMatchesAvailability(t *testing.T) {
	// At utilization u with zero switch cost the foreign job receives
	// (1-u) of wall-clock time.
	for _, u := range []float64{0.1, 0.3, 0.5, 0.8} {
		n := newTestNode(t, 0, u, 3)
		const T = 3000
		got := n.ServeForeign(math.Inf(1), T)
		want := (1 - u) * T
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("u=%g: delivered %g, want ~%g", u, got, want)
		}
	}
}

func TestServeForeignCompletesEarly(t *testing.T) {
	n := newTestNode(t, 100e-6, 0.2, 4)
	got := n.ServeForeign(10, 1000)
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("delivered %g, want exactly 10", got)
	}
	// Completion should take roughly 10/(1-0.2) = 12.5 s of wall clock.
	if n.Now() < 10 || n.Now() > 25 {
		t.Errorf("completion at %g s, want ~12.5", n.Now())
	}
}

func TestServeForeignResumable(t *testing.T) {
	// Serving in two chunks must deliver the same total as one call.
	a := newTestNode(t, 100e-6, 0.3, 5)
	oneShot := a.ServeForeign(math.Inf(1), 500)

	b := newTestNode(t, 100e-6, 0.3, 5)
	part1 := b.ServeForeign(math.Inf(1), 137)
	part2 := b.ServeForeign(math.Inf(1), 500)
	if math.Abs(oneShot-(part1+part2)) > 1e-6 {
		t.Errorf("chunked delivery %g differs from one-shot %g", part1+part2, oneShot)
	}
}

func TestLDRMatchesAnalyticModel(t *testing.T) {
	// Each preempting run burst is delayed by one context switch, so
	// LDR ~= cs / mean run-burst length.
	table := workload.DefaultTable()
	for _, cs := range []float64{100e-6, 500e-6} {
		u := 0.2
		n := New(Config{ContextSwitch: cs}, table, workload.ConstantUtilization(u), stats.NewRNG(6))
		n.ServeForeign(math.Inf(1), 4000)
		want := cs / table.ParamsAt(u).RunMean
		if got := n.LDR(); math.Abs(got-want)/want > 0.15 {
			t.Errorf("cs=%g: LDR = %g, want ~%g", cs, got, want)
		}
	}
}

func TestFCSRAbove90Percent(t *testing.T) {
	// Paper: "Lingering was able to make productive use of over 90% of the
	// available processor idle cycles" for all three switch costs.
	for _, cs := range []float64{100e-6, 300e-6, 500e-6} {
		for _, u := range []float64{0.1, 0.5, 0.9} {
			n := newTestNode(t, cs, u, 7)
			n.ServeForeign(math.Inf(1), 2000)
			if f := n.FCSR(); f < 0.9 {
				t.Errorf("cs=%g u=%g: FCSR = %g, want > 0.9", cs, u, f)
			}
		}
	}
}

func TestLDRHeadlineNumbers(t *testing.T) {
	// Paper §4.1: at 100 µs the delay is about 1%; at 300 µs it stays
	// under 5%; at 500 µs it can reach ~8%.
	table := workload.DefaultTable()
	maxLDR := func(cs float64) float64 {
		worst := 0.0
		for _, u := range []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8} {
			n := New(Config{ContextSwitch: cs}, table, workload.ConstantUtilization(u), stats.NewRNG(8))
			n.ServeForeign(math.Inf(1), 2000)
			if l := n.LDR(); l > worst {
				worst = l
			}
		}
		return worst
	}
	if got := maxLDR(100e-6); got > 0.035 {
		t.Errorf("max LDR at 100µs = %g, want ~1-2%%", got)
	}
	if got := maxLDR(300e-6); got > 0.09 {
		t.Errorf("max LDR at 300µs = %g, want < ~7%%", got)
	}
	if got := maxLDR(500e-6); got > 0.15 || got < 0.03 {
		t.Errorf("max LDR at 500µs = %g, want ~8-12%%", got)
	}
}

func TestAdvanceSkipsWithoutAccounting(t *testing.T) {
	n := newTestNode(t, 100e-6, 0.5, 9)
	n.Advance(500)
	if n.Now() != 500 {
		t.Errorf("Now() = %g, want 500", n.Now())
	}
	if n.FCSR() != 0 || n.LDR() != 0 {
		t.Error("Advance accrued metrics")
	}
	// Serving still works after an advance.
	got := n.ServeForeign(math.Inf(1), 600)
	if got <= 0 {
		t.Error("no CPU delivered after Advance")
	}
}

func TestAdvanceBackwardsPanics(t *testing.T) {
	n := newTestNode(t, 100e-6, 0.5, 10)
	n.Advance(10)
	defer func() {
		if recover() == nil {
			t.Error("backwards Advance did not panic")
		}
	}()
	n.Advance(5)
}

func TestServeForeignBadArgsPanics(t *testing.T) {
	n := newTestNode(t, 100e-6, 0.5, 11)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative demand did not panic")
			}
		}()
		n.ServeForeign(-1, 10)
	}()
	n.ServeForeign(1, 10)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("past deadline did not panic")
			}
		}()
		n.ServeForeign(1, 0)
	}()
}

func TestResetMetrics(t *testing.T) {
	n := newTestNode(t, 100e-6, 0.3, 12)
	n.ServeForeign(math.Inf(1), 100)
	if n.ForeignCPU() == 0 {
		t.Fatal("no CPU delivered in setup")
	}
	n.ResetMetrics()
	if n.ForeignCPU() != 0 || n.LDR() != 0 || n.FCSR() != 0 || n.Preemptions() != 0 {
		t.Error("ResetMetrics left residue")
	}
}

func TestFig5ShapeMatchesPaper(t *testing.T) {
	cfg := DefaultFig5Config()
	cfg.Duration = 500
	pts := Fig5(workload.DefaultTable(), cfg)
	if len(pts) != len(cfg.ContextSwitches)*len(cfg.Utilizations) {
		t.Fatalf("points = %d", len(pts))
	}
	// Larger context-switch cost yields larger delay at the same level.
	find := func(cs, u float64) Fig5Point {
		for _, p := range pts {
			if p.ContextSwitch == cs && math.Abs(p.Utilization-u) < 0.01 {
				return p
			}
		}
		t.Fatalf("no point at cs=%g u=%g", cs, u)
		return Fig5Point{}
	}
	for _, u := range []float64{0.2, 0.5} {
		l100 := find(100e-6, u).LDR
		l500 := find(500e-6, u).LDR
		if l500 <= l100 {
			t.Errorf("u=%g: LDR(500µs)=%g not above LDR(100µs)=%g", u, l500, l100)
		}
	}
	for _, p := range pts {
		if p.Utilization > 0.01 && p.Utilization < 0.95 && p.FCSR < 0.85 {
			t.Errorf("FCSR at u=%g cs=%g is %g, want > 0.85", p.Utilization, p.ContextSwitch, p.FCSR)
		}
		if p.LDR < 0 || p.FCSR < 0 || p.FCSR > 1+1e-9 {
			t.Errorf("metric out of range: %+v", p)
		}
	}
}
