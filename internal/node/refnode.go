package node

import (
	"fmt"

	"lingerlonger/internal/obs"
	"lingerlonger/internal/stats"
	"lingerlonger/internal/workload"
)

// RefNode is the retained reference implementation of the fine-grain
// strict-priority node model: the pre-rewrite Node kept verbatim as the
// executable specification, the same pattern as sim.HeapEngine for the
// event engine. Node's batched hot path must produce bit-identical
// Now/LDR/FCSR/ForeignCPU/Preemptions values to RefNode for every
// interleaving of Advance, ServeForeign and ResetMetrics; the seeded
// differential suite in differential_test.go enforces exactly that.
//
// The only change from the historical Node is shared with the fast path:
// the burst-end comparison goes through burstDone, whose tolerance scales
// with the clock (see burstEps) instead of the former absolute 1e-12,
// which float64 spacing overtakes beyond t ~ 4500 s.
type RefNode struct {
	cfg    Config
	stream *workload.Windowed

	now     float64
	cur     workload.Burst
	haveCur bool

	switchPaid     bool // foreign switch-in paid within the current idle burst
	foreignRanIdle bool // foreign consumed CPU during the latest idle burst

	// Accounting (only while a foreign job is attached).
	localDemand float64
	localDelay  float64
	idleSeen    float64
	foreignCPU  float64
	preemptions int64
	preemptC    *obs.Counter // pre-resolved handle; nil = observability off
}

// NewRef returns a reference node with the same construction semantics as
// New: the local workload is generated from table at the utilization given
// by src, starting at time 0.
func NewRef(cfg Config, table *workload.Table, src workload.UtilizationSource, rng *stats.RNG) *RefNode {
	if cfg.ContextSwitch < 0 {
		panic(fmt.Sprintf("node: negative context-switch time %g", cfg.ContextSwitch))
	}
	stream := workload.NewWindowed(table, src, 0, rng)
	if cfg.BurstLookahead > 0 {
		stream.SetLookahead(cfg.BurstLookahead)
	}
	return &RefNode{
		cfg:      cfg,
		stream:   stream,
		preemptC: cfg.Rec.Counter(obs.NodePreemptions),
	}
}

// Now returns the node's wall-clock position in seconds.
func (n *RefNode) Now() float64 { return n.now }

// Preemptions returns the number of times a local burst preempted the
// foreign job.
func (n *RefNode) Preemptions() int64 { return n.preemptions }

// LDR returns the local job delay ratio accumulated so far, or 0 when no
// local CPU demand has been observed.
func (n *RefNode) LDR() float64 {
	if n.localDemand == 0 {
		return 0
	}
	return n.localDelay / n.localDemand
}

// FCSR returns the fine-grain cycle-stealing ratio accumulated so far, or
// 0 when no idle time has been observed.
func (n *RefNode) FCSR() float64 {
	if n.idleSeen == 0 {
		return 0
	}
	return n.foreignCPU / n.idleSeen
}

// ForeignCPU returns the total CPU seconds delivered to foreign jobs.
func (n *RefNode) ForeignCPU() float64 { return n.foreignCPU }

// LocalDelay returns the total context-switch delay charged to local
// bursts, in seconds.
func (n *RefNode) LocalDelay() float64 { return n.localDelay }

// LocalCPUDemand returns the total local CPU demand observed while a
// foreign job was attached, in seconds.
func (n *RefNode) LocalCPUDemand() float64 { return n.localDemand }

// Advance moves the node's clock to until with no foreign job attached;
// see Node.Advance.
func (n *RefNode) Advance(until float64) {
	if until < n.now {
		panic(fmt.Sprintf("node: Advance backwards from %g to %g", n.now, until))
	}
	// No foreign job ran in the gap, and a future attach must pay a fresh
	// switch-in.
	n.foreignRanIdle = false
	n.switchPaid = false
	if n.haveCur && until < n.cur.End() {
		// Still inside the current burst: keep it so the remainder (for a
		// pure-idle node, the rest of a whole trace window) stays usable.
		n.now = until
		return
	}
	n.haveCur = false
	if until > n.stream.Now() {
		n.stream.SeekTo(until)
	}
	n.now = until
}

// ServeForeign runs a compute-bound foreign job on the node until either
// demand CPU-seconds have been delivered or the wall clock reaches until.
// This is the per-burst reference loop: one stream pull, one branch
// cascade and one field-resident accounting update per burst.
func (n *RefNode) ServeForeign(demand, until float64) float64 {
	if demand < 0 {
		panic(fmt.Sprintf("node: negative foreign demand %g", demand))
	}
	if until < n.now {
		panic(fmt.Sprintf("node: ServeForeign until %g before now %g", until, n.now))
	}
	delivered := 0.0
	cs := n.cfg.ContextSwitch
	for n.now < until && delivered < demand {
		if !n.haveCur || burstDone(n.now, n.cur.End()) {
			n.cur = n.stream.Next()
			n.haveCur = true
			n.switchPaid = false
			// Entering a run burst: account the owner's demand and the
			// preemption delay if the foreign job held the CPU.
			if n.cur.Run {
				n.localDemand += n.cur.Duration
				if n.foreignRanIdle {
					n.localDelay += cs
					n.preemptions++
					n.preemptC.Inc()
				}
				n.foreignRanIdle = false
			}
		}
		segEnd := n.cur.End()
		if segEnd > until {
			segEnd = until
		}
		if n.cur.Run {
			n.now = segEnd
			continue
		}
		// Idle burst: the foreign job first pays its switch-in (anchored at
		// the current position — the job may resume mid-burst after an
		// Advance), then steals cycles until the burst ends, the deadline
		// hits, or the demand completes.
		if !n.switchPaid {
			payEnd := n.now + cs
			if payEnd > segEnd {
				n.idleSeen += segEnd - n.now
				n.now = segEnd
				continue
			}
			n.idleSeen += payEnd - n.now
			n.now = payEnd
			n.switchPaid = true
		}
		room := segEnd - n.now
		if room <= 0 {
			continue
		}
		use := room
		if rem := demand - delivered; use > rem {
			use = rem
		}
		n.idleSeen += use
		n.foreignCPU += use
		delivered += use
		n.now += use
		n.foreignRanIdle = true
	}
	return delivered
}

// ResetMetrics clears the accumulated LDR/FCSR accounting without moving
// the clock.
func (n *RefNode) ResetMetrics() {
	n.localDemand = 0
	n.localDelay = 0
	n.idleSeen = 0
	n.foreignCPU = 0
	n.preemptions = 0
}
