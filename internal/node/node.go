// Package node models one workstation running its owner's fine-grain
// run/idle burst stream plus at most one foreign job at strictly lower
// priority (§2, §4.1 of the paper).
//
// The priority rules are the paper's: foreground bursts always own the
// CPU; a foreign job runs only inside idle bursts; when a local process
// becomes runnable it preempts the foreign job immediately, even mid
// quantum. Every hand-off charges an effective context-switch cost
// (register save plus cache reload — 100 µs nominal, following Mogul &
// Borg): the switch into the foreign job consumes the head of the idle
// burst, and the switch back delays the local burst.
//
// Two metrics fall out (Figure 5):
//
//   - LDR (local job delay ratio): context-switch delay charged to local
//     bursts over local CPU demand — the owner's slowdown.
//   - FCSR (fine-grain cycle stealing ratio): CPU delivered to the foreign
//     job over the idle time it had available.
package node

import (
	"fmt"

	"lingerlonger/internal/obs"
	"lingerlonger/internal/stats"
	"lingerlonger/internal/workload"
)

// DefaultContextSwitch is the effective context-switch time the paper
// selects (100 microseconds), in seconds.
const DefaultContextSwitch = 100e-6

// Config holds node parameters.
type Config struct {
	// ContextSwitch is the effective context-switch time in seconds
	// (register save plus cache-state reload).
	ContextSwitch float64

	// BurstLookahead, when positive, makes the node's burst stream
	// prefetch that many bursts per batch (workload.Windowed.SetLookahead)
	// so the ServeForeign loop amortizes sampling overhead. The burst
	// values are identical to the unbatched stream, but a lookahead node
	// must be consumed strictly linearly: Advance past the current burst
	// panics, because the stream cannot seek. Only drivers that never
	// detach the foreign job (the Figure 5 sweep, benchmarks) enable it.
	BurstLookahead int

	// Rec, when non-nil, receives the node.preemptions counter. Metrics
	// are a side channel (never read back), so attaching a recorder
	// cannot change results.
	Rec *obs.Recorder
}

// DefaultConfig returns the paper's nominal configuration.
func DefaultConfig() Config { return Config{ContextSwitch: DefaultContextSwitch} }

// Node is a single simulated workstation. Create one with New; methods are
// not safe for concurrent use.
type Node struct {
	cfg    Config
	stream *workload.Windowed

	now     float64
	cur     workload.Burst
	haveCur bool

	switchPaid     bool // foreign switch-in paid within the current idle burst
	foreignRanIdle bool // foreign consumed CPU during the latest idle burst

	// Accounting (only while a foreign job is attached).
	localDemand float64
	localDelay  float64
	idleSeen    float64
	foreignCPU  float64
	preemptions int64
	preemptC    *obs.Counter // pre-resolved handle; nil = observability off
}

// New returns a node whose local workload is generated from table at the
// utilization given by src, starting at time 0.
func New(cfg Config, table *workload.Table, src workload.UtilizationSource, rng *stats.RNG) *Node {
	if cfg.ContextSwitch < 0 {
		panic(fmt.Sprintf("node: negative context-switch time %g", cfg.ContextSwitch))
	}
	stream := workload.NewWindowed(table, src, 0, rng)
	if cfg.BurstLookahead > 0 {
		stream.SetLookahead(cfg.BurstLookahead)
	}
	return &Node{
		cfg:      cfg,
		stream:   stream,
		preemptC: cfg.Rec.Counter(obs.NodePreemptions),
	}
}

// Now returns the node's wall-clock position in seconds.
func (n *Node) Now() float64 { return n.now }

// Preemptions returns the number of times a local burst preempted the
// foreign job.
func (n *Node) Preemptions() int64 { return n.preemptions }

// LDR returns the local job delay ratio accumulated so far, or 0 when no
// local CPU demand has been observed.
func (n *Node) LDR() float64 {
	if n.localDemand == 0 {
		return 0
	}
	return n.localDelay / n.localDemand
}

// FCSR returns the fine-grain cycle-stealing ratio accumulated so far, or
// 0 when no idle time has been observed.
func (n *Node) FCSR() float64 {
	if n.idleSeen == 0 {
		return 0
	}
	return n.foreignCPU / n.idleSeen
}

// ForeignCPU returns the total CPU seconds delivered to foreign jobs.
func (n *Node) ForeignCPU() float64 { return n.foreignCPU }

// LocalDelay returns the total context-switch delay charged to local
// bursts, in seconds.
func (n *Node) LocalDelay() float64 { return n.localDelay }

// LocalCPUDemand returns the total local CPU demand observed while a
// foreign job was attached, in seconds.
func (n *Node) LocalCPUDemand() float64 { return n.localDemand }

// Advance moves the node's clock to until with no foreign job attached:
// the owner's workload runs undisturbed, so no fine-grain simulation or
// accounting is needed. Advancing backwards panics.
func (n *Node) Advance(until float64) {
	if until < n.now {
		panic(fmt.Sprintf("node: Advance backwards from %g to %g", n.now, until))
	}
	// No foreign job ran in the gap, and a future attach must pay a fresh
	// switch-in.
	n.foreignRanIdle = false
	n.switchPaid = false
	if n.haveCur && until < n.cur.End() {
		// Still inside the current burst: keep it so the remainder (for a
		// pure-idle node, the rest of a whole trace window) stays usable.
		n.now = until
		return
	}
	n.haveCur = false
	if until > n.stream.Now() {
		n.stream.SeekTo(until)
	}
	n.now = until
}

// ServeForeign runs a compute-bound foreign job on the node until either
// demand CPU-seconds have been delivered or the wall clock reaches until.
// It returns the CPU actually delivered; the node's clock (Now) stops at
// the completion instant when the demand is met early.
func (n *Node) ServeForeign(demand, until float64) float64 {
	if demand < 0 {
		panic(fmt.Sprintf("node: negative foreign demand %g", demand))
	}
	if until < n.now {
		panic(fmt.Sprintf("node: ServeForeign until %g before now %g", until, n.now))
	}
	delivered := 0.0
	cs := n.cfg.ContextSwitch
	for n.now < until && delivered < demand {
		if !n.haveCur || n.now >= n.cur.End()-1e-12 {
			n.cur = n.stream.Next()
			n.haveCur = true
			n.switchPaid = false
			// Entering a run burst: account the owner's demand and the
			// preemption delay if the foreign job held the CPU.
			if n.cur.Run {
				n.localDemand += n.cur.Duration
				if n.foreignRanIdle {
					n.localDelay += cs
					n.preemptions++
					n.preemptC.Inc()
				}
				n.foreignRanIdle = false
			}
		}
		segEnd := n.cur.End()
		if segEnd > until {
			segEnd = until
		}
		if n.cur.Run {
			n.now = segEnd
			continue
		}
		// Idle burst: the foreign job first pays its switch-in (anchored at
		// the current position — the job may resume mid-burst after an
		// Advance), then steals cycles until the burst ends, the deadline
		// hits, or the demand completes.
		if !n.switchPaid {
			payEnd := n.now + cs
			if payEnd > segEnd {
				n.idleSeen += segEnd - n.now
				n.now = segEnd
				continue
			}
			n.idleSeen += payEnd - n.now
			n.now = payEnd
			n.switchPaid = true
		}
		room := segEnd - n.now
		if room <= 0 {
			continue
		}
		use := room
		if rem := demand - delivered; use > rem {
			use = rem
		}
		n.idleSeen += use
		n.foreignCPU += use
		delivered += use
		n.now += use
		n.foreignRanIdle = true
	}
	return delivered
}

// ResetMetrics clears the accumulated LDR/FCSR accounting without moving
// the clock; the cluster simulator resets between measurement intervals.
func (n *Node) ResetMetrics() {
	n.localDemand = 0
	n.localDelay = 0
	n.idleSeen = 0
	n.foreignCPU = 0
	n.preemptions = 0
}
