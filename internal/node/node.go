// Package node models one workstation running its owner's fine-grain
// run/idle burst stream plus at most one foreign job at strictly lower
// priority (§2, §4.1 of the paper).
//
// The priority rules are the paper's: foreground bursts always own the
// CPU; a foreign job runs only inside idle bursts; when a local process
// becomes runnable it preempts the foreign job immediately, even mid
// quantum. Every hand-off charges an effective context-switch cost
// (register save plus cache reload — 100 µs nominal, following Mogul &
// Borg): the switch into the foreign job consumes the head of the idle
// burst, and the switch back delays the local burst.
//
// Two metrics fall out (Figure 5):
//
//   - LDR (local job delay ratio): context-switch delay charged to local
//     bursts over local CPU demand — the owner's slowdown.
//   - FCSR (fine-grain cycle stealing ratio): CPU delivered to the foreign
//     job over the idle time it had available.
package node

import (
	"fmt"
	"math"

	"lingerlonger/internal/obs"
	"lingerlonger/internal/stats"
	"lingerlonger/internal/workload"
)

// DefaultContextSwitch is the effective context-switch time the paper
// selects (100 microseconds), in seconds.
const DefaultContextSwitch = 100e-6

// Config holds node parameters.
type Config struct {
	// ContextSwitch is the effective context-switch time in seconds
	// (register save plus cache-state reload).
	ContextSwitch float64

	// BurstLookahead, when positive, makes the node's burst stream
	// prefetch that many bursts per batch (workload.Windowed.SetLookahead)
	// so the ServeForeign loop amortizes sampling overhead. The burst
	// values are identical to the unbatched stream, but a lookahead node
	// must be consumed strictly linearly: Advance past the current burst
	// panics, because the stream cannot seek. Only drivers that never
	// detach the foreign job (the Figure 5 sweep, benchmarks) enable it.
	BurstLookahead int

	// Rec, when non-nil, receives the node.preemptions counter. Metrics
	// are a side channel (never read back), so attaching a recorder
	// cannot change results.
	Rec *obs.Recorder
}

// DefaultConfig returns the paper's nominal configuration.
func DefaultConfig() Config { return Config{ContextSwitch: DefaultContextSwitch} }

// Node is a single simulated workstation. Create one with New; methods are
// not safe for concurrent use.
//
// This is the throughput implementation of the model: ServeForeign keeps
// its accounting in locals for the duration of a call and, when the burst
// stream has lookahead enabled, walks whole prefetched batches without a
// per-burst stream call. RefNode is the retained per-burst reference
// implementation; the two are bit-identical on every metric for every
// call interleaving (differential_test.go), so all figures are unchanged
// by the fast path. DESIGN.md §14 documents the equivalence argument.
type Node struct {
	cfg    Config
	stream *workload.Windowed

	now     float64
	cur     workload.Burst
	haveCur bool

	switchPaid     bool // foreign switch-in paid within the current idle burst
	foreignRanIdle bool // foreign consumed CPU during the latest idle burst

	// Accounting (only while a foreign job is attached).
	localDemand float64
	localDelay  float64
	idleSeen    float64
	foreignCPU  float64
	preemptions int64
	preemptC    *obs.Counter // pre-resolved handle; nil = observability off
}

// New returns a node whose local workload is generated from table at the
// utilization given by src, starting at time 0.
func New(cfg Config, table *workload.Table, src workload.UtilizationSource, rng *stats.RNG) *Node {
	if cfg.ContextSwitch < 0 {
		panic(fmt.Sprintf("node: negative context-switch time %g", cfg.ContextSwitch))
	}
	stream := workload.NewWindowed(table, src, 0, rng)
	if cfg.BurstLookahead > 0 {
		stream.SetLookahead(cfg.BurstLookahead)
	}
	return &Node{
		cfg:      cfg,
		stream:   stream,
		preemptC: cfg.Rec.Counter(obs.NodePreemptions),
	}
}

// Now returns the node's wall-clock position in seconds.
func (n *Node) Now() float64 { return n.now }

// Preemptions returns the number of times a local burst preempted the
// foreign job.
func (n *Node) Preemptions() int64 { return n.preemptions }

// LDR returns the local job delay ratio accumulated so far, or 0 when no
// local CPU demand has been observed.
func (n *Node) LDR() float64 {
	if n.localDemand == 0 {
		return 0
	}
	return n.localDelay / n.localDemand
}

// FCSR returns the fine-grain cycle-stealing ratio accumulated so far, or
// 0 when no idle time has been observed.
func (n *Node) FCSR() float64 {
	if n.idleSeen == 0 {
		return 0
	}
	return n.foreignCPU / n.idleSeen
}

// ForeignCPU returns the total CPU seconds delivered to foreign jobs.
func (n *Node) ForeignCPU() float64 { return n.foreignCPU }

// LocalDelay returns the total context-switch delay charged to local
// bursts, in seconds.
func (n *Node) LocalDelay() float64 { return n.localDelay }

// LocalCPUDemand returns the total local CPU demand observed while a
// foreign job was attached, in seconds.
func (n *Node) LocalCPUDemand() float64 { return n.localDemand }

// Advance moves the node's clock to until with no foreign job attached:
// the owner's workload runs undisturbed, so no fine-grain simulation or
// accounting is needed. Advancing backwards panics.
func (n *Node) Advance(until float64) {
	if until < n.now {
		panic(fmt.Sprintf("node: Advance backwards from %g to %g", n.now, until))
	}
	// No foreign job ran in the gap, and a future attach must pay a fresh
	// switch-in.
	n.foreignRanIdle = false
	n.switchPaid = false
	if n.haveCur && until < n.cur.End() {
		// Still inside the current burst: keep it so the remainder (for a
		// pure-idle node, the rest of a whole trace window) stays usable.
		n.now = until
		return
	}
	n.haveCur = false
	if until > n.stream.Now() {
		n.stream.SeekTo(until)
	}
	n.now = until
}

// burstEps returns the finished-burst tolerance at clock position end: a
// burst whose remainder is below it is treated as fully consumed. The
// historical tolerance was an absolute 1e-12, but float64 spacing passes
// 1e-12 at t ~ 4500 s, after which a steal that lands one ulp short of
// the burst end re-entered the finished burst for a phantom iteration
// (over-accounting idleSeen/foreignCPU by one ulp per occurrence). The
// tolerance therefore also scales with the clock: four ulps (2^-50
// relative) covers the at-most-two-ulp shortfall of
// now + (segEnd - now) in round-to-nearest, while staying far below any
// real burst duration.
func burstEps(end float64) float64 {
	eps := 1e-12
	if s := math.Abs(end) * 0x1p-50; s > eps {
		eps = s
	}
	return eps
}

// burstDone reports whether a burst ending at end is fully consumed at
// clock position now. Both Node and RefNode route their burst-end
// comparison through here so the fix and the differential suite cover the
// same arithmetic.
func burstDone(now, end float64) bool {
	return now >= end-burstEps(end)
}

// ServeForeign runs a compute-bound foreign job on the node until either
// demand CPU-seconds have been delivered or the wall clock reaches until.
// It returns the CPU actually delivered; the node's clock (Now) stops at
// the completion instant when the demand is met early.
//
// This is the hot path of every figure (a full experiments run crosses
// ~9.5 million preemptions here, against ~1k engine events). Relative to
// the RefNode reference loop it is coarsened two ways, neither of which
// changes a single draw or a single float operation on the accounted
// values:
//
//   - all accumulators live in locals for the duration of the call and are
//     written back once, including the preemption counter (one Add instead
//     of one Inc per preemption);
//   - with stream lookahead enabled, whole prefetched batches are walked
//     by slice index (Windowed.Buffered/Consume) instead of one stream
//     call per burst, and each fresh in-batch burst runs a straight-line
//     enter/pay/steal sequence instead of re-entering the branch cascade.
//
// Partially consumed bursts (deadline hit, demand met, or a steal that
// lands short of the burst end by more than burstEps) drop back to the
// per-segment path, which is the reference loop body verbatim.
func (n *Node) ServeForeign(demand, until float64) float64 {
	if demand < 0 {
		panic(fmt.Sprintf("node: negative foreign demand %g", demand))
	}
	if until < n.now {
		panic(fmt.Sprintf("node: ServeForeign until %g before now %g", until, n.now))
	}
	var (
		now        = n.now
		cur        = n.cur
		haveCur    = n.haveCur
		switchPaid = n.switchPaid
		ranIdle    = n.foreignRanIdle
		demandSum  = n.localDemand
		delaySum   = n.localDelay
		idleSeen   = n.idleSeen
		stolen     = n.foreignCPU
		preempts   = int64(0)
		delivered  = 0.0
	)
	cs := n.cfg.ContextSwitch
	stream := n.stream

	for now < until && delivered < demand {
		if !haveCur || burstDone(now, cur.Start+cur.Duration) {
			if batch := stream.Buffered(); batch != nil {
				// Batched fast path: every burst here is fresh, so the
				// enter-burst accounting and the segment service fuse into
				// one straight-line pass per burst with no stream call. Like
				// the reference, a fresh burst is always served exactly once,
				// even when its duration is below the burst-end tolerance.
				k := 0
				for k < len(batch) && now < until && delivered < demand {
					b := batch[k]
					k++
					cur = b
					switchPaid = false
					end := b.Start + b.Duration
					if b.Run {
						demandSum += b.Duration
						if ranIdle {
							delaySum += cs
							preempts++
						}
						ranIdle = false
						if end > until {
							end = until
						}
						now = end
						continue
					}
					segEnd := end
					if segEnd > until {
						segEnd = until
					}
					payEnd := now + cs
					if payEnd > segEnd {
						idleSeen += segEnd - now
						now = segEnd
						continue
					}
					idleSeen += payEnd - now
					now = payEnd
					switchPaid = true
					room := segEnd - now
					if room <= 0 {
						continue
					}
					use := room
					if rem := demand - delivered; use > rem {
						use = rem
					}
					idleSeen += use
					stolen += use
					delivered += use
					now += use
					ranIdle = true
					if !burstDone(now, b.Start+b.Duration) {
						// The steal landed short of the burst end by more
						// than the tolerance; hand the sliver to the resume
						// path below so the arithmetic stays identical to
						// the reference.
						break
					}
				}
				stream.Consume(k)
				haveCur = true
				continue
			}
			// Per-burst pull (no lookahead): fetch and account the entry,
			// then fall through and serve the segment in this iteration —
			// a fresh burst is served exactly once even if it is already
			// within the burst-end tolerance (the reference does the same,
			// since it only tests burstDone to decide on fetching).
			cur = stream.Next()
			haveCur = true
			switchPaid = false
			if cur.Run {
				demandSum += cur.Duration
				if ranIdle {
					delaySum += cs
					preempts++
				}
				ranIdle = false
			}
		}

		// Serve one segment of the current burst: the reference loop body.
		// Reached for fresh per-burst pulls, partially consumed bursts
		// (first burst of a call, after an Advance) and sub-eps steal
		// shortfalls from the batched path.
		segEnd := cur.Start + cur.Duration
		if segEnd > until {
			segEnd = until
		}
		if cur.Run {
			now = segEnd
			continue
		}
		if !switchPaid {
			payEnd := now + cs
			if payEnd > segEnd {
				idleSeen += segEnd - now
				now = segEnd
				continue
			}
			idleSeen += payEnd - now
			now = payEnd
			switchPaid = true
		}
		room := segEnd - now
		if room <= 0 {
			continue
		}
		use := room
		if rem := demand - delivered; use > rem {
			use = rem
		}
		idleSeen += use
		stolen += use
		delivered += use
		now += use
		ranIdle = true
	}

	n.now = now
	n.cur = cur
	n.haveCur = haveCur
	n.switchPaid = switchPaid
	n.foreignRanIdle = ranIdle
	n.localDemand = demandSum
	n.localDelay = delaySum
	n.idleSeen = idleSeen
	n.foreignCPU = stolen
	if preempts != 0 {
		n.preemptions += preempts
		n.preemptC.Add(preempts)
	}
	return delivered
}

// ResetMetrics clears the accumulated LDR/FCSR accounting without moving
// the clock; the cluster simulator resets between measurement intervals.
func (n *Node) ResetMetrics() {
	n.localDemand = 0
	n.localDelay = 0
	n.idleSeen = 0
	n.foreignCPU = 0
	n.preemptions = 0
}
