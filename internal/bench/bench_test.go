package bench

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// valid returns a snapshot that passes Validate; tests mutate one field at
// a time to probe the strictness.
func valid() *Snapshot {
	return &Snapshot{
		SchemaVersion: SchemaVersion,
		ID:            6,
		Seed:          1,
		GoVersion:     "go1.24.0",
		GOOS:          "linux",
		GOARCH:        "amd64",
		Engine: EngineSuite{
			NsPerEvent: 15.5, EventsPerSec: 64.5e6, BytesPerOp: 0, AllocsPerOp: 0,
			HeapNsPerEvent: 54.3, HeapAllocsPerOp: 1, SpeedupVsHeap: 3.5,
		},
		Cluster: ClusterSuite{
			Nodes: 64, Jobs: 128, Policy: "LL",
			MeanCompletionS: 2500, P95CompletionS: 4100,
			WallSeconds: 1.8, JobsPerSec: 71,
		},
		Serve: ServeSuite{
			Requests: 400, Concurrency: 4, Mix: "decide=1,node=1,cluster=1",
			Cold:         ServePhase{ReqPerSec: 900, MeanLatencyS: 0.004, P95LatencyS: 0.02, Digest: "sha256:ab"},
			Warm:         ServePhase{ReqPerSec: 8000, MeanLatencyS: 0.0004, P95LatencyS: 0.001, Digest: "sha256:ab"},
			DigestsMatch: true,
		},
	}
}

// validNode returns a plausible node-suite block (optional since
// BENCH_007).
func validNode() *NodeSuite {
	return &NodeSuite{
		SimSecondsPerOp: 50, NsPerSimSecond: 40000, SimSecPerWallSec: 25000,
		AllocsPerOp: 2, RefNsPerSimSec: 130000, SpeedupVsRef: 3.2,
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	// Without the optional node suite (pre-BENCH_007 snapshots)...
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	// ...and with it.
	s := valid()
	s.Node = validNode()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid snapshot with node suite rejected: %v", err)
	}
}

func TestValidateRejectsBadNodeSuite(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*NodeSuite)
	}{
		{"zero span", func(n *NodeSuite) { n.SimSecondsPerOp = 0 }},
		{"zero throughput", func(n *NodeSuite) { n.SimSecPerWallSec = 0 }},
		{"negative allocs", func(n *NodeSuite) { n.AllocsPerOp = -1 }},
		{"zero reference", func(n *NodeSuite) { n.RefNsPerSimSec = 0 }},
		{"zero speedup", func(n *NodeSuite) { n.SpeedupVsRef = 0 }},
	}
	for _, c := range cases {
		s := valid()
		s.Node = validNode()
		c.mut(s.Node)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad node suite", c.name)
		}
	}
}

func TestValidateRejectsBad(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Snapshot)
	}{
		{"wrong schema", func(s *Snapshot) { s.SchemaVersion = 99 }},
		{"zero id", func(s *Snapshot) { s.ID = 0 }},
		{"missing go version", func(s *Snapshot) { s.GoVersion = "" }},
		{"zero events/s", func(s *Snapshot) { s.Engine.EventsPerSec = 0 }},
		{"negative allocs", func(s *Snapshot) { s.Engine.AllocsPerOp = -1 }},
		{"zero heap baseline", func(s *Snapshot) { s.Engine.HeapNsPerEvent = 0 }},
		{"zero nodes", func(s *Snapshot) { s.Cluster.Nodes = 0 }},
		{"no policy", func(s *Snapshot) { s.Cluster.Policy = "" }},
		{"zero cluster wall", func(s *Snapshot) { s.Cluster.WallSeconds = 0 }},
		{"zero serve req/s", func(s *Snapshot) { s.Serve.Cold.ReqPerSec = 0 }},
		{"serve errors", func(s *Snapshot) { s.Serve.Warm.Errors = 3 }},
		{"bad digest prefix", func(s *Snapshot) { s.Serve.Cold.Digest = "md5:zz" }},
		{"digests differ", func(s *Snapshot) { s.Serve.Warm.Digest = "sha256:other" }},
		{"digests not checked", func(s *Snapshot) { s.Serve.DigestsMatch = false }},
	}
	for _, c := range cases {
		s := valid()
		c.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad snapshot", c.name)
		}
	}
}

func TestCompareGate(t *testing.T) {
	base := valid()

	if bad := Compare(base, valid()); len(bad) != 0 {
		t.Fatalf("identical snapshots flagged: %v", bad)
	}

	// 10% slower: within tolerance.
	cur := valid()
	cur.Engine.EventsPerSec = base.Engine.EventsPerSec * 0.90
	if bad := Compare(base, cur); len(bad) != 0 {
		t.Fatalf("10%% slowdown flagged: %v", bad)
	}

	// 20% slower: gated.
	cur = valid()
	cur.Engine.EventsPerSec = base.Engine.EventsPerSec * 0.80
	if bad := Compare(base, cur); len(bad) != 1 || !strings.Contains(bad[0], "eventsPerSec") {
		t.Fatalf("20%% slowdown not flagged correctly: %v", bad)
	}

	// Zero-alloc baseline: going to 2 allocs/op is a regression, but
	// measurement jitter below half an alloc is not.
	cur = valid()
	cur.Engine.AllocsPerOp = 2
	if bad := Compare(base, cur); len(bad) != 1 || !strings.Contains(bad[0], "allocsPerOp") {
		t.Fatalf("0 -> 2 allocs/op not flagged correctly: %v", bad)
	}
	cur = valid()
	cur.Engine.AllocsPerOp = 0.3
	if bad := Compare(base, cur); len(bad) != 0 {
		t.Fatalf("sub-half-alloc jitter flagged: %v", bad)
	}
}

func TestFilenameRoundtrip(t *testing.T) {
	if got := Filename(6); got != "BENCH_006.json" {
		t.Fatalf("Filename(6) = %q", got)
	}
	id, ok := ParseID("BENCH_006.json")
	if !ok || id != 6 {
		t.Fatalf("ParseID(BENCH_006.json) = %d, %t", id, ok)
	}
	if id, ok := ParseID("/some/dir/BENCH_012.json"); !ok || id != 12 {
		t.Fatalf("ParseID with dir = %d, %t", id, ok)
	}
	for _, bad := range []string{"BENCH_.json", "BENCH_6.txt", "bench_006.json", "EXPERIMENTS.md", "BENCH_0.json"} {
		if _, ok := ParseID(bad); ok {
			t.Errorf("ParseID accepted %q", bad)
		}
	}
}

func TestSaveLoadLatestNextID(t *testing.T) {
	dir := t.TempDir()

	if _, _, err := Latest(dir); !errors.Is(err, ErrNoSnapshots) {
		t.Fatalf("Latest on empty dir: %v, want ErrNoSnapshots", err)
	}
	if id, err := NextID(dir); err != nil || id != 1 {
		t.Fatalf("NextID on empty dir = %d, %v", id, err)
	}

	for _, id := range []int{2, 6, 4} {
		s := valid()
		s.ID = id
		if err := s.Save(filepath.Join(dir, Filename(id))); err != nil {
			t.Fatalf("Save(%d): %v", id, err)
		}
	}
	s, path, err := Latest(dir)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if s.ID != 6 || filepath.Base(path) != "BENCH_006.json" {
		t.Fatalf("Latest picked id %d (%s), want 6", s.ID, path)
	}
	if id, err := NextID(dir); err != nil || id != 7 {
		t.Fatalf("NextID = %d, %v, want 7", id, err)
	}
	if ids, err := IDs(dir); err != nil || len(ids) != 3 || ids[0] != 2 || ids[2] != 6 {
		t.Fatalf("IDs = %v, %v", ids, err)
	}
}

func TestLoadRejectsUnknownFieldsAndInvalid(t *testing.T) {
	dir := t.TempDir()

	// Unknown field: a typo'd hand edit must not load silently.
	p := filepath.Join(dir, "BENCH_001.json")
	if err := os.WriteFile(p, []byte(`{"schemaVersion":1,"idd":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(p); err == nil {
		t.Fatal("Load accepted a snapshot with an unknown field")
	}

	// Structurally valid JSON that fails Validate.
	bad := valid()
	bad.Engine.EventsPerSec = 0
	if err := bad.Save(p); err == nil {
		t.Fatal("Save accepted an invalid snapshot")
	}
}

func TestMarkdownMentionsHeadlines(t *testing.T) {
	md := valid().Markdown()
	for _, want := range []string{"3.50x", "BENCH_006.json", "64 nodes x 128 jobs", "req/s"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}
