// Package bench defines the machine-readable benchmark snapshot format
// (BENCH_<n>.json) and the tooling around it: strict validation, discovery
// of the latest committed snapshot, the CI regression gate, and the
// Markdown rendering the README results table is generated from.
//
// A snapshot is produced by cmd/llbench and records one run of the fixed
// three-suite benchmark: the engine event-dispatch microbenchmark (with
// the retained binary-heap scheduler as its baseline), a Figure 7-style
// cluster batch run, and an llserve warm/cold request mix. Snapshots are
// committed at the repository root as BENCH_001.json, BENCH_002.json, …
// so the sequence forms a benchmark trajectory: every performance-relevant
// PR appends one file, and the trajectory is diffable, plottable, and
// gatable. BENCHMARKS.md documents the workflow.
package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion is the current snapshot schema. Validate rejects any other
// value: a schema change must bump this constant and document the
// migration in BENCHMARKS.md.
const SchemaVersion = 1

// GateTolerance is the relative regression the CI gate accepts on the
// gated metrics (engine events/s and allocs/op) before failing the build.
const GateTolerance = 0.15

// Snapshot is one benchmark run: the unit of the trajectory.
type Snapshot struct {
	SchemaVersion int    `json:"schemaVersion"`
	ID            int    `json:"id"`    // the <n> of BENCH_<n>.json
	Seed          int64  `json:"seed"`  // master seed of the run
	Quick         bool   `json:"quick"` // true when run with -quick
	GoVersion     string `json:"goVersion"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	// Notes is free-form context for the trajectory reader, typically the
	// PR that produced the snapshot and what changed.
	Notes string `json:"notes,omitempty"`

	Engine  EngineSuite  `json:"engine"`
	Cluster ClusterSuite `json:"cluster"`
	Serve   ServeSuite   `json:"serve"`

	// Node is the fine-grain burst-loop microbenchmark, added with
	// BENCH_007. The field is optional (a pointer, omitted when absent) so
	// earlier snapshots still load and gate under the same schema version:
	// adding an optional field is an additive change, not a migration.
	Node *NodeSuite `json:"node,omitempty"`
}

// NodeSuite is the node hot-path microbenchmark: one workstation serving
// an unbounded foreign job across a fixed simulated span at a mixed
// utilization, run on the batched fast path (node.Node with stream
// lookahead) and on the retained per-burst reference (node.RefNode), which
// is the pre-rewrite implementation — so SpeedupVsRef is the like-for-like
// gain of the burst-loop rewrite, mirroring EngineSuite.SpeedupVsHeap.
type NodeSuite struct {
	// SimSecondsPerOp is the simulated span served per benchmark iteration.
	SimSecondsPerOp float64 `json:"simSecondsPerOp"`
	// NsPerSimSecond is wall nanoseconds per simulated second on the fast
	// path; SimSecPerWallSec is its reciprocal throughput form.
	NsPerSimSecond   float64 `json:"nsPerSimSecond"`
	SimSecPerWallSec float64 `json:"simSecPerWallSec"`
	AllocsPerOp      float64 `json:"allocsPerOp"`
	RefNsPerSimSec   float64 `json:"refNsPerSimSec"`
	SpeedupVsRef     float64 `json:"speedupVsRef"`
}

// EngineSuite is the event-dispatch microbenchmark: a self-rescheduling
// handler stepped by the calendar-queue engine and, as the baseline, by
// the retained binary-heap reference scheduler (sim.HeapEngine). The two
// run the same workload, so SpeedupVsHeap is a like-for-like ratio.
type EngineSuite struct {
	NsPerEvent      float64 `json:"nsPerEvent"`
	EventsPerSec    float64 `json:"eventsPerSec"`
	BytesPerOp      float64 `json:"bytesPerOp"`
	AllocsPerOp     float64 `json:"allocsPerOp"`
	HeapNsPerEvent  float64 `json:"heapNsPerEvent"`
	HeapAllocsPerOp float64 `json:"heapAllocsPerOp"`
	SpeedupVsHeap   float64 `json:"speedupVsHeap"`
}

// ClusterSuite is the Figure 7-style batch run: NumJobs foreign jobs
// submitted at t=0 on a cluster, simulated to family completion. The
// latency metrics are over per-job completion times in simulated seconds;
// WallSeconds is the real time the simulation took.
type ClusterSuite struct {
	Nodes           int     `json:"nodes"`
	Jobs            int     `json:"jobs"`
	Policy          string  `json:"policy"`
	MeanCompletionS float64 `json:"meanCompletionS"` // simulated seconds
	P95CompletionS  float64 `json:"p95CompletionS"`  // simulated seconds
	LocalDelay      float64 `json:"localDelay"`      // owner slowdown ratio
	WallSeconds     float64 `json:"wallSeconds"`
	JobsPerSec      float64 `json:"jobsPerSec"` // completed jobs per wall second
}

// ServeSuite is the llserve warm/cold request mix: the same seeded request
// stream is replayed twice against one in-process server, so Cold measures
// simulate-and-fill and Warm measures cache hits. Because responses are
// pure functions of the canonical request, the two phases' result digests
// must match — DigestsMatch records that check and Validate enforces it.
type ServeSuite struct {
	Requests     int        `json:"requests"` // per phase
	Concurrency  int        `json:"concurrency"`
	Mix          string     `json:"mix"`
	Cold         ServePhase `json:"cold"`
	Warm         ServePhase `json:"warm"`
	DigestsMatch bool       `json:"digestsMatch"`
}

// ServePhase is one replay of the request stream.
type ServePhase struct {
	ReqPerSec    float64 `json:"reqPerSec"`
	MeanLatencyS float64 `json:"meanLatencyS"`
	P95LatencyS  float64 `json:"p95LatencyS"`
	Errors       int     `json:"errors"`
	Digest       string  `json:"digest"` // sha256 over (index, status, body-hash)
}

// Validate checks the snapshot strictly: every metric a downstream
// consumer (the gate, the README table) reads must be present and
// plausible, and the determinism invariants (no errors, matching digests)
// must hold. A snapshot that fails Validate must not be committed.
func (s *Snapshot) Validate() error {
	if s.SchemaVersion != SchemaVersion {
		return fmt.Errorf("bench: schemaVersion %d, want %d", s.SchemaVersion, SchemaVersion)
	}
	if s.ID < 1 {
		return fmt.Errorf("bench: id must be >= 1, got %d", s.ID)
	}
	if s.GoVersion == "" || s.GOOS == "" || s.GOARCH == "" {
		return errors.New("bench: goVersion/goos/goarch must be recorded")
	}
	e := &s.Engine
	switch {
	case e.NsPerEvent <= 0:
		return fmt.Errorf("bench: engine.nsPerEvent must be positive, got %g", e.NsPerEvent)
	case e.EventsPerSec <= 0:
		return fmt.Errorf("bench: engine.eventsPerSec must be positive, got %g", e.EventsPerSec)
	case e.BytesPerOp < 0 || e.AllocsPerOp < 0:
		return errors.New("bench: engine bytes/allocs per op must be non-negative")
	case e.HeapNsPerEvent <= 0:
		return fmt.Errorf("bench: engine.heapNsPerEvent must be positive, got %g", e.HeapNsPerEvent)
	case e.SpeedupVsHeap <= 0:
		return fmt.Errorf("bench: engine.speedupVsHeap must be positive, got %g", e.SpeedupVsHeap)
	}
	c := &s.Cluster
	switch {
	case c.Nodes <= 0 || c.Jobs <= 0:
		return fmt.Errorf("bench: cluster nodes/jobs must be positive, got %d/%d", c.Nodes, c.Jobs)
	case c.Policy == "":
		return errors.New("bench: cluster.policy must be recorded")
	case c.MeanCompletionS <= 0 || c.P95CompletionS <= 0:
		return errors.New("bench: cluster completion latencies must be positive")
	case c.WallSeconds <= 0:
		return errors.New("bench: cluster.wallSeconds must be positive")
	}
	if n := s.Node; n != nil {
		switch {
		case n.SimSecondsPerOp <= 0:
			return fmt.Errorf("bench: node.simSecondsPerOp must be positive, got %g", n.SimSecondsPerOp)
		case n.NsPerSimSecond <= 0 || n.SimSecPerWallSec <= 0:
			return errors.New("bench: node throughput metrics must be positive")
		case n.AllocsPerOp < 0:
			return errors.New("bench: node.allocsPerOp must be non-negative")
		case n.RefNsPerSimSec <= 0:
			return fmt.Errorf("bench: node.refNsPerSimSec must be positive, got %g", n.RefNsPerSimSec)
		case n.SpeedupVsRef <= 0:
			return fmt.Errorf("bench: node.speedupVsRef must be positive, got %g", n.SpeedupVsRef)
		}
	}
	v := &s.Serve
	if v.Requests <= 0 || v.Concurrency <= 0 {
		return fmt.Errorf("bench: serve requests/concurrency must be positive, got %d/%d", v.Requests, v.Concurrency)
	}
	for _, ph := range []struct {
		name string
		p    *ServePhase
	}{{"cold", &v.Cold}, {"warm", &v.Warm}} {
		switch {
		case ph.p.ReqPerSec <= 0:
			return fmt.Errorf("bench: serve.%s.reqPerSec must be positive, got %g", ph.name, ph.p.ReqPerSec)
		case ph.p.MeanLatencyS <= 0 || ph.p.P95LatencyS <= 0:
			return fmt.Errorf("bench: serve.%s latencies must be positive", ph.name)
		case ph.p.Errors != 0:
			return fmt.Errorf("bench: serve.%s recorded %d errors; a committed snapshot must be error-free", ph.name, ph.p.Errors)
		case !strings.HasPrefix(ph.p.Digest, "sha256:"):
			return fmt.Errorf("bench: serve.%s.digest %q must start with sha256:", ph.name, ph.p.Digest)
		}
	}
	if !v.DigestsMatch {
		return errors.New("bench: serve cold/warm digests differ — the cached==fresh contract is broken")
	}
	if v.Cold.Digest != v.Warm.Digest {
		return errors.New("bench: digestsMatch is set but the recorded digests differ")
	}
	return nil
}

// Compare checks cur against base on the gated metrics and returns one
// human-readable violation per regression beyond GateTolerance. The gate
// covers exactly what ISSUEd performance work must protect: engine
// throughput (events/s may not drop more than 15%) and allocation
// discipline (allocs/op may not grow more than 15%, with a half-alloc
// absolute grace so a zero-alloc baseline doesn't trip on measurement
// noise). Other metrics are trajectory data, not gates: cluster and serve
// numbers shift with suite sizing and machine load, so they are recorded
// and read by humans instead.
func Compare(base, cur *Snapshot) []string {
	var bad []string
	if floor := base.Engine.EventsPerSec * (1 - GateTolerance); cur.Engine.EventsPerSec < floor {
		bad = append(bad, fmt.Sprintf(
			"engine.eventsPerSec regressed: %.3g < %.3g (baseline %.3g - %d%%)",
			cur.Engine.EventsPerSec, floor, base.Engine.EventsPerSec, int(GateTolerance*100)))
	}
	if ceil := base.Engine.AllocsPerOp*(1+GateTolerance) + 0.5; cur.Engine.AllocsPerOp > ceil {
		bad = append(bad, fmt.Sprintf(
			"engine.allocsPerOp regressed: %.3g > %.3g (baseline %.3g + %d%% + 0.5)",
			cur.Engine.AllocsPerOp, ceil, base.Engine.AllocsPerOp, int(GateTolerance*100)))
	}
	return bad
}

// Filename returns the canonical file name for snapshot id: BENCH_006.json
// for id 6. Three digits keep lexical and numeric order aligned for the
// first 999 snapshots.
func Filename(id int) string { return fmt.Sprintf("BENCH_%03d.json", id) }

var filePat = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// ParseID extracts the snapshot id from a BENCH_<n>.json file name; the
// second result is false when the name is not a snapshot file.
func ParseID(name string) (int, bool) {
	m := filePat.FindStringSubmatch(filepath.Base(name))
	if m == nil {
		return 0, false
	}
	id, err := strconv.Atoi(m[1])
	if err != nil || id < 1 {
		return 0, false
	}
	return id, true
}

// ErrNoSnapshots is returned by Latest when dir holds no BENCH_<n>.json.
var ErrNoSnapshots = errors.New("bench: no BENCH_<n>.json snapshots found")

// Latest loads the highest-numbered snapshot in dir. It returns the
// snapshot, its path, and an error (ErrNoSnapshots when none exist). The
// loaded snapshot is validated: a corrupt committed snapshot should fail
// loudly here, not silently pass a gate.
func Latest(dir string) (*Snapshot, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	best, bestID := "", 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if id, ok := ParseID(e.Name()); ok && id > bestID {
			best, bestID = e.Name(), id
		}
	}
	if bestID == 0 {
		return nil, "", ErrNoSnapshots
	}
	path := filepath.Join(dir, best)
	s, err := Load(path)
	if err != nil {
		return nil, path, err
	}
	return s, path, nil
}

// NextID returns the id the next snapshot in dir should use: one past the
// latest, or 1 for an empty trajectory.
func NextID(dir string) (int, error) {
	s, _, err := Latest(dir)
	if errors.Is(err, ErrNoSnapshots) {
		return 1, nil
	}
	if err != nil {
		return 0, err
	}
	return s.ID + 1, nil
}

// Load reads and validates one snapshot file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("bench: %s: %v", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %v", path, err)
	}
	return &s, nil
}

// Save writes the snapshot to path as indented JSON (trailing newline, so
// the committed file is diff- and editor-friendly). The snapshot is
// validated first.
func (s *Snapshot) Save(path string) error {
	if err := s.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Markdown renders the snapshot as the README results table: one row per
// headline metric, with the heap-scheduler baseline alongside the engine
// row so the speedup is self-contained. The output is deterministic for a
// given snapshot, so regenerating the table is a pure function of the
// committed BENCH file.
func (s *Snapshot) Markdown() string {
	var b strings.Builder
	mode := "full"
	if s.Quick {
		mode = "quick"
	}
	fmt.Fprintf(&b, "| Suite | Metric | Value | Baseline |\n")
	fmt.Fprintf(&b, "|---|---|---|---|\n")
	fmt.Fprintf(&b, "| engine | event dispatch | %.2f ns/op (%.1fM events/s) | heap scheduler %.2f ns/op — **%.2fx** |\n",
		s.Engine.NsPerEvent, s.Engine.EventsPerSec/1e6, s.Engine.HeapNsPerEvent, s.Engine.SpeedupVsHeap)
	fmt.Fprintf(&b, "| engine | allocations | %.0f allocs/op, %.0f B/op | heap scheduler %.0f allocs/op |\n",
		s.Engine.AllocsPerOp, s.Engine.BytesPerOp, s.Engine.HeapAllocsPerOp)
	if n := s.Node; n != nil {
		fmt.Fprintf(&b, "| node | burst loop (%.0f sim-s/op) | %.2fM sim-s/s, %.0f allocs/op | per-burst reference — **%.2fx** |\n",
			n.SimSecondsPerOp, n.SimSecPerWallSec/1e6, n.AllocsPerOp, n.SpeedupVsRef)
	}
	fmt.Fprintf(&b, "| cluster | %s batch, %d nodes x %d jobs | mean %.0f s, P95 %.0f s (simulated) | wall %.2f s |\n",
		s.Cluster.Policy, s.Cluster.Nodes, s.Cluster.Jobs, s.Cluster.MeanCompletionS, s.Cluster.P95CompletionS, s.Cluster.WallSeconds)
	fmt.Fprintf(&b, "| serve | cold (simulate+fill) | %.0f req/s, P95 %.2f ms | %d requests, %d workers |\n",
		s.Serve.Cold.ReqPerSec, s.Serve.Cold.P95LatencyS*1e3, s.Serve.Requests, s.Serve.Concurrency)
	fmt.Fprintf(&b, "| serve | warm (cache hits) | %.0f req/s, P95 %.2f ms | digest == cold ✓ |\n",
		s.Serve.Warm.ReqPerSec, s.Serve.Warm.P95LatencyS*1e3)
	fmt.Fprintf(&b, "\nSnapshot `%s` (%s mode, seed %d, %s/%s, %s).\n",
		Filename(s.ID), mode, s.Seed, s.GOOS, s.GOARCH, s.GoVersion)
	return b.String()
}

// IDs returns the sorted snapshot ids present in dir — the x-axis of the
// trajectory.
func IDs(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ids []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if id, ok := ParseID(e.Name()); ok {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}
