// Package checkpoint persists per-point sweep results so an interrupted
// experiment run can resume without recomputing finished work.
//
// A checkpointed run is a directory:
//
//	<dir>/manifest.json      — identity of the run (schema, seed, config)
//	<dir>/points/<sweep>/<index>.snap — one snapshot per completed point
//	<dir>/failures.json      — failure manifest (fail-soft runs only)
//
// Because every sweep point in this repository is a pure function of
// (master seed, sweep ID, point index) — see DESIGN.md §8 — a snapshot is
// valid forever for runs with the same manifest: a resumed run that
// restores some points and computes the rest is byte-identical to an
// uninterrupted run. Open enforces the precondition by refusing a
// directory whose manifest does not match exactly.
//
// Snapshots are written atomically (write to a temporary file, fsync,
// rename, fsync the directory), so a crash at any instant leaves either
// the old state or the new state, never a torn file. Each snapshot also
// carries a magic header, a length and an FNV-64a checksum; a snapshot
// that fails verification is reported as absent so the point is simply
// recomputed.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"lingerlonger/internal/obs"
)

// SchemaVersion is the on-disk layout version; Open refuses manifests
// written by a different schema.
const SchemaVersion = 1

// Meta identifies a run. Resume requires an exact match: equal seeds and
// equal config fingerprints guarantee (with the repository's determinism
// rules) that a stored point equals the point a fresh run would compute.
type Meta struct {
	Schema int    `json:"schema_version"`
	Seed   int64  `json:"seed"`
	Config string `json:"config"` // fingerprint of every result-determining parameter
	// Sweep, when non-empty, names the sweep a fabric run manifest belongs
	// to (llsweep writes it; cmd/experiments leaves it empty). It is part
	// of the exact-match identity like every other field — resuming a
	// directory that holds a different sweep is refused.
	Sweep string `json:"sweep,omitempty"`
}

// MismatchError reports an attempt to resume from a directory whose
// manifest belongs to a different run.
type MismatchError struct {
	Dir  string
	Want Meta // what the caller is running
	Got  Meta // what the directory holds
}

// Error describes both sides of the mismatch.
func (e *MismatchError) Error() string {
	return fmt.Sprintf("checkpoint: %s holds a different run (have schema=%d seed=%d config=%q, resuming run is schema=%d seed=%d config=%q)",
		e.Dir, e.Got.Schema, e.Got.Seed, e.Got.Config, e.Want.Schema, e.Want.Seed, e.Want.Config)
}

// ErrInjectedCrash is the error the FailAfter fault hook returns from
// Save once its budget is exhausted. It exists so the kill-and-resume
// tests can simulate a process dying mid-sweep at a deterministic
// point without actually killing the process.
var ErrInjectedCrash = errors.New("checkpoint: injected crash (fault hook)")

const (
	manifestName = "manifest.json"
	failuresName = "failures.json"
	pointsDir    = "points"
	snapSuffix   = ".snap"
)

// Run is an open checkpoint directory. It implements the exp.Store
// interface (Lookup/Save), so it plugs directly into exp.Runner.
type Run struct {
	dir  string
	meta Meta

	mu        sync.Mutex
	failAfter int // saves remaining before the fault hook fires; -1 = disarmed
	failErr   error

	// Observability handles (nil when no recorder is attached). Latency
	// histograms measure wall-clock, so they vary run to run — they are a
	// profiling side channel, never part of deterministic output.
	cSaves   *obs.Counter
	cLoads   *obs.Counter
	hSave    *obs.Histogram
	hRestore *obs.Histogram
}

// SetRecorder attaches an observability recorder: Save and Lookup count
// checkpoint.saves / checkpoint.restores and observe their wall-clock
// latencies into checkpoint.save_seconds / checkpoint.restore_seconds.
func (r *Run) SetRecorder(rec *obs.Recorder) {
	r.cSaves = rec.Counter(obs.CheckpointSaves)
	r.cLoads = rec.Counter(obs.CheckpointRestores)
	r.hSave = rec.Histogram(obs.CheckpointSaveSeconds)
	r.hRestore = rec.Histogram(obs.CheckpointRestoreSeconds)
}

// Create initialises dir as a fresh checkpointed run: the directory is
// created if needed and the manifest written atomically. It refuses a
// directory that already holds a manifest — resume those with Open.
func Create(dir string, meta Meta) (*Run, error) {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("checkpoint: %s already holds a run; resume it instead of recreating it", dir)
	}
	if err := os.MkdirAll(filepath.Join(dir, pointsDir), 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create %s: %w", dir, err)
	}
	b, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: marshal manifest: %w", err)
	}
	if err := atomicWrite(filepath.Join(dir, manifestName), append(b, '\n')); err != nil {
		return nil, err
	}
	return &Run{dir: dir, meta: meta, failAfter: -1}, nil
}

// Open resumes an existing run directory. The stored manifest must match
// meta exactly; otherwise a *MismatchError is returned, because restoring
// snapshots from a different (seed, config) would silently corrupt the
// resumed results.
func Open(dir string, meta Meta) (*Run, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", dir, err)
	}
	var got Meta
	if err := json.Unmarshal(b, &got); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: corrupt manifest: %w", dir, err)
	}
	if got != meta {
		return nil, &MismatchError{Dir: dir, Want: meta, Got: got}
	}
	return &Run{dir: dir, meta: meta, failAfter: -1}, nil
}

// OpenOrCreate resumes dir when it holds a run and initialises it
// otherwise — the semantics of a -resume flag pointed at a directory that
// may or may not have checkpoints yet.
func OpenOrCreate(dir string, meta Meta) (*Run, error) {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return Open(dir, meta)
	}
	return Create(dir, meta)
}

// Dir returns the run directory.
func (r *Run) Dir() string { return r.dir }

// FailAfter arms the deterministic fault hook: after n more successful
// Saves, every subsequent Save returns err (ErrInjectedCrash when err is
// nil). The hook simulates the process being killed mid-sweep — the
// snapshots written so far stay on disk, exactly as a real crash would
// leave them — without taking the test process down.
func (r *Run) FailAfter(n int, err error) {
	if err == nil {
		err = ErrInjectedCrash
	}
	r.mu.Lock()
	r.failAfter = n
	r.failErr = err
	r.mu.Unlock()
}

// snapPath validates the sweep ID and returns the snapshot path for
// (sweep, index). Sweep IDs are slash-separated segments of
// [A-Za-z0-9._-]; anything else (in particular "..") is rejected so a
// sweep name can never escape the run directory.
func (r *Run) snapPath(sweep string, index int) (string, error) {
	if err := validateSweepID(sweep); err != nil {
		return "", err
	}
	if index < 0 {
		return "", fmt.Errorf("checkpoint: negative point index %d", index)
	}
	return filepath.Join(r.dir, pointsDir, filepath.FromSlash(sweep), fmt.Sprintf("%d%s", index, snapSuffix)), nil
}

func validateSweepID(sweep string) error {
	if sweep == "" {
		return errors.New("checkpoint: empty sweep ID")
	}
	for _, seg := range strings.Split(sweep, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return fmt.Errorf("checkpoint: invalid sweep ID %q", sweep)
		}
		for _, c := range seg {
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
				c == '.', c == '_', c == '-':
			default:
				return fmt.Errorf("checkpoint: invalid sweep ID %q (character %q)", sweep, c)
			}
		}
	}
	return nil
}

// Save persists one completed point atomically. It is safe for concurrent
// use by the sweep worker pool.
func (r *Run) Save(sweep string, index int, data []byte) error {
	r.mu.Lock()
	if r.failAfter == 0 {
		err := r.failErr
		r.mu.Unlock()
		return err
	}
	if r.failAfter > 0 {
		r.failAfter--
	}
	r.mu.Unlock()

	path, err := r.snapPath(sweep, index)
	if err != nil {
		return err
	}
	var start time.Time
	if r.hSave != nil {
		start = time.Now()
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("checkpoint: save %s[%d]: %w", sweep, index, err)
	}
	if err := atomicWrite(path, frame(data)); err != nil {
		return err
	}
	r.cSaves.Inc()
	if r.hSave != nil {
		r.hSave.Observe(time.Since(start).Seconds())
	}
	return nil
}

// Lookup returns the stored snapshot for (sweep, index), or ok=false when
// none exists. A snapshot that exists but fails frame verification
// (truncated, garbled) is reported as absent — the caller recomputes and
// overwrites it — because a damaged checkpoint must degrade to extra work,
// never to wrong results.
func (r *Run) Lookup(sweep string, index int) (data []byte, ok bool, err error) {
	path, err := r.snapPath(sweep, index)
	if err != nil {
		return nil, false, err
	}
	var start time.Time
	if r.hRestore != nil {
		start = time.Now()
	}
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: lookup %s[%d]: %w", sweep, index, err)
	}
	payload, ok := unframe(raw)
	if !ok {
		return nil, false, nil // damaged snapshot: recompute the point
	}
	r.cLoads.Inc()
	if r.hRestore != nil {
		r.hRestore.Observe(time.Since(start).Seconds())
	}
	return payload, true, nil
}

// Completed returns the set of point indices with a stored snapshot for
// sweep. A missing sweep directory yields an empty set.
func (r *Run) Completed(sweep string) (map[int]bool, error) {
	if err := validateSweepID(sweep); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(r.dir, pointsDir, filepath.FromSlash(sweep)))
	if errors.Is(err, os.ErrNotExist) {
		return map[int]bool{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list %s: %w", sweep, err)
	}
	done := make(map[int]bool, len(entries))
	for _, e := range entries {
		name, found := strings.CutSuffix(e.Name(), snapSuffix)
		if !found || e.IsDir() {
			continue
		}
		var i int
		if _, err := fmt.Sscanf(name, "%d", &i); err == nil && i >= 0 {
			done[i] = true
		}
	}
	return done, nil
}

// Failure is one entry of the failure manifest a fail-soft run writes: a
// sweep point that exhausted its attempts.
type Failure struct {
	Sweep    string `json:"sweep"`
	Index    int    `json:"index"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
}

// failureManifest is the on-disk form of failures.json.
type failureManifest struct {
	Schema   int       `json:"schema_version"`
	Failures []Failure `json:"failures"`
}

// WriteFailures atomically writes the failure manifest. An empty list
// removes a stale manifest from an earlier attempt, so a clean resumed
// run does not inherit last run's failures.
func (r *Run) WriteFailures(fs []Failure) error {
	path := filepath.Join(r.dir, failuresName)
	if len(fs) == 0 {
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("checkpoint: clear failure manifest: %w", err)
		}
		return nil
	}
	b, err := json.MarshalIndent(failureManifest{Schema: SchemaVersion, Failures: fs}, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: marshal failure manifest: %w", err)
	}
	return atomicWrite(path, append(b, '\n'))
}

// ReadFailures loads the failure manifest of a run directory; a missing
// manifest yields an empty list.
func ReadFailures(dir string) ([]Failure, error) {
	b, err := os.ReadFile(filepath.Join(dir, failuresName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read failure manifest: %w", err)
	}
	var m failureManifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("checkpoint: corrupt failure manifest: %w", err)
	}
	return m.Failures, nil
}

// --- snapshot framing -------------------------------------------------

// snapMagic marks a snapshot file; the version digit changes with the
// frame layout.
var snapMagic = []byte("LLSNAP1\n")

// frame wraps a payload as magic + uint64 length + payload + FNV-64a.
func frame(payload []byte) []byte {
	out := make([]byte, 0, len(snapMagic)+8+len(payload)+8)
	out = append(out, snapMagic...)
	out = binary.BigEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	h := fnv.New64a()
	h.Write(payload)
	return binary.BigEndian.AppendUint64(out, h.Sum64())
}

// unframe verifies and strips the frame, reporting ok=false on any
// damage: wrong magic, truncation, trailing garbage, checksum mismatch.
func unframe(raw []byte) ([]byte, bool) {
	if len(raw) < len(snapMagic)+16 || string(raw[:len(snapMagic)]) != string(snapMagic) {
		return nil, false
	}
	rest := raw[len(snapMagic):]
	n := binary.BigEndian.Uint64(rest[:8])
	rest = rest[8:]
	if uint64(len(rest)) != n+8 {
		return nil, false
	}
	payload, sum := rest[:n], binary.BigEndian.Uint64(rest[n:])
	h := fnv.New64a()
	h.Write(payload)
	if h.Sum64() != sum {
		return nil, false
	}
	return payload, true
}

// atomicWrite writes data to path via write-fsync-rename (plus a
// directory fsync), the strongest crash-consistency a POSIX filesystem
// offers for a single file: after a crash the path holds either the old
// bytes or the new bytes in full.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	// Persist the rename itself. Best effort: some filesystems refuse
	// directory fsync, and losing it only risks the pre-rename state.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
