package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testMeta() Meta {
	return Meta{Schema: SchemaVersion, Seed: 42, Config: "quick=true workers=8"}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	r, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if r.Dir() != dir {
		t.Errorf("Dir() = %q", r.Dir())
	}
	if _, err := Open(dir, testMeta()); err != nil {
		t.Fatalf("Open after Create: %v", err)
	}
	if _, err := Create(dir, testMeta()); err == nil {
		t.Error("Create over an existing run must refuse")
	}
}

func TestOpenRejectsMismatchedMeta(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, testMeta()); err != nil {
		t.Fatal(err)
	}
	other := testMeta()
	other.Seed = 43
	_, err := Open(dir, other)
	var mm *MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("want *MismatchError, got %v", err)
	}
	if mm.Got.Seed != 42 || mm.Want.Seed != 43 {
		t.Errorf("MismatchError = %+v", mm)
	}
	if !strings.Contains(mm.Error(), "seed=42") || !strings.Contains(mm.Error(), "seed=43") {
		t.Errorf("error text does not show both runs: %v", mm)
	}
}

func TestOpenMissingAndCorruptManifest(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), testMeta()); err == nil {
		t.Error("Open of a missing directory must fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testMeta()); err == nil {
		t.Error("Open with a corrupt manifest must fail")
	}
}

func TestOpenOrCreate(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	if _, err := OpenOrCreate(dir, testMeta()); err != nil {
		t.Fatalf("first OpenOrCreate: %v", err)
	}
	if _, err := OpenOrCreate(dir, testMeta()); err != nil {
		t.Fatalf("second OpenOrCreate: %v", err)
	}
	other := testMeta()
	other.Config = "different"
	if _, err := OpenOrCreate(dir, other); err == nil {
		t.Error("OpenOrCreate must reject a mismatched existing run")
	}
}

func TestSaveLookupRoundTrip(t *testing.T) {
	r, err := Create(t.TempDir(), testMeta())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("result bytes \x00\xff with binary")
	if err := r.Save("fig9", 3, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := r.Lookup("fig9", 3)
	if err != nil || !ok {
		t.Fatalf("Lookup = (%v, %v)", ok, err)
	}
	if string(got) != string(payload) {
		t.Errorf("payload corrupted: %q", got)
	}
	if _, ok, err := r.Lookup("fig9", 4); ok || err != nil {
		t.Errorf("missing point: ok=%v err=%v", ok, err)
	}
	if _, ok, err := r.Lookup("fig10", 3); ok || err != nil {
		t.Errorf("missing sweep: ok=%v err=%v", ok, err)
	}
	// Overwrite is allowed (recompute of a damaged point).
	if err := r.Save("fig9", 3, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = r.Lookup("fig9", 3)
	if string(got) != "v2" {
		t.Errorf("overwrite lost: %q", got)
	}
}

func TestLookupTreatsDamageAsAbsent(t *testing.T) {
	dir := t.TempDir()
	r, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Save("s", 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "points", "s", "0.snap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated":       raw[:len(raw)-3],
		"flipped byte":    append(append([]byte{}, raw[:12]...), append([]byte{raw[12] ^ 0x40}, raw[13:]...)...),
		"wrong magic":     append([]byte("XXSNAP1\n"), raw[8:]...),
		"trailing bytes":  append(append([]byte{}, raw...), "extra"...),
		"empty file":      {},
		"just the magic":  []byte("LLSNAP1\n"),
		"flipped payload": flip(raw, len(raw)-10),
	}
	for name, corrupt := range cases {
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := r.Lookup("s", 0); ok || err != nil {
			t.Errorf("%s: Lookup = (ok=%v, err=%v), want absent", name, ok, err)
		}
	}
}

func flip(raw []byte, i int) []byte {
	out := append([]byte{}, raw...)
	out[i] ^= 0x01
	return out
}

func TestSweepIDValidation(t *testing.T) {
	r, err := Create(t.TempDir(), testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "..", "a/../b", "a//b", "/abs", "trail/", "sp ace", "semi;colon", "dot/./dot"} {
		if err := r.Save(bad, 0, []byte("x")); err == nil {
			t.Errorf("Save accepted sweep ID %q", bad)
		}
		if _, _, err := r.Lookup(bad, 0); err == nil {
			t.Errorf("Lookup accepted sweep ID %q", bad)
		}
	}
	for _, good := range []string{"fig9", "wl1/fig7", "a.b-c_d/e2"} {
		if err := r.Save(good, 0, []byte("x")); err != nil {
			t.Errorf("Save rejected sweep ID %q: %v", good, err)
		}
	}
	if err := r.Save("ok", -1, []byte("x")); err == nil {
		t.Error("Save accepted a negative index")
	}
}

func TestCompleted(t *testing.T) {
	r, err := Create(t.TempDir(), testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2, 7} {
		if err := r.Save("sweep", i, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	done, err := r.Completed("sweep")
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 3 || !done[0] || !done[2] || !done[7] {
		t.Errorf("Completed = %v", done)
	}
	empty, err := r.Completed("never-ran")
	if err != nil || len(empty) != 0 {
		t.Errorf("missing sweep: %v, %v", empty, err)
	}
}

func TestFailAfterInjectsCrash(t *testing.T) {
	r, err := Create(t.TempDir(), testMeta())
	if err != nil {
		t.Fatal(err)
	}
	r.FailAfter(2, nil)
	if err := r.Save("s", 0, []byte("a")); err != nil {
		t.Fatalf("save within budget: %v", err)
	}
	if err := r.Save("s", 1, []byte("b")); err != nil {
		t.Fatalf("save within budget: %v", err)
	}
	if err := r.Save("s", 2, []byte("c")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("want ErrInjectedCrash, got %v", err)
	}
	if err := r.Save("s", 3, []byte("d")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("crash must persist: %v", err)
	}
	// The snapshots written before the crash survive, like a real kill.
	if _, ok, _ := r.Lookup("s", 1); !ok {
		t.Error("pre-crash snapshot lost")
	}
	if _, ok, _ := r.Lookup("s", 2); ok {
		t.Error("post-crash snapshot exists")
	}
}

func TestFailureManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	fs := []Failure{
		{Sweep: "fig11", Index: 4, Attempts: 3, Error: "panic: boom"},
		{Sweep: "fig13/points", Index: 0, Attempts: 1, Error: "timeout"},
	}
	if err := r.WriteFailures(fs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFailures(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != fs[0] || got[1] != fs[1] {
		t.Errorf("ReadFailures = %+v", got)
	}
	// An empty list clears the stale manifest.
	if err := r.WriteFailures(nil); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFailures(dir)
	if err != nil || len(got) != 0 {
		t.Errorf("after clear: %+v, %v", got, err)
	}
	if err := r.WriteFailures(nil); err != nil {
		t.Errorf("clearing an absent manifest must be a no-op: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "failures.json"), []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFailures(dir); err == nil {
		t.Error("corrupt failure manifest must error")
	}
}

func TestReadFailuresMissingDir(t *testing.T) {
	fs, err := ReadFailures(filepath.Join(t.TempDir(), "never"))
	if err != nil || fs != nil {
		t.Errorf("ReadFailures on missing dir = %v, %v", fs, err)
	}
}

func TestAtomicWriteLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	r, err := Create(dir, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := r.Save("s", i, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.Contains(d.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFrameUnframeProperty(t *testing.T) {
	payloads := [][]byte{{}, []byte("x"), []byte(strings.Repeat("abc\x00", 1000))}
	for _, p := range payloads {
		f := frame(p)
		got, ok := unframe(f)
		if !ok || string(got) != string(p) {
			t.Errorf("round trip failed for %d bytes", len(p))
		}
		// Any single flipped bit in the payload region must be caught.
		if len(p) > 0 {
			bad := append([]byte{}, f...)
			bad[len(snapMagic)+8] ^= 0x80
			if _, ok := unframe(bad); ok {
				t.Error("flipped payload bit not detected")
			}
		}
	}
}
