// Package memory implements the paper's priority page-allocation scheme
// (§3.2): physical memory is split into two pools, one for the owner's
// local jobs and one for the foreign job. The foreign job may only consume
// pages from the free list; when local jobs need pages they reclaim from
// the foreign pool before paging out any of their own pages. The same
// technique appeared in the Stealth scheduler, and the paper implemented
// it as a priority extension to the Linux paging mechanism.
//
// The cluster simulator uses the pool both as an admission check (can this
// node host a foreign job of a given size without hurting the owner?) and
// to account reclaim events during lingering.
package memory

import "fmt"

// Pool is a two-priority physical page pool. The zero value is not usable;
// construct with NewPool.
type Pool struct {
	totalPages   int
	pageKB       int
	localPages   int
	foreignPages int

	localPageouts   int // times the local jobs had to page out their own pages
	foreignReclaims int // pages reclaimed from the foreign job by local demand
	foreignDenied   int // foreign page requests denied (free list empty)
}

// NewPool returns a pool of totalMB megabytes in pages of pageKB
// kilobytes. It panics if the sizes are non-positive or do not divide into
// at least one page.
func NewPool(totalMB float64, pageKB int) *Pool {
	if totalMB <= 0 || pageKB <= 0 {
		panic(fmt.Sprintf("memory: invalid pool size %gMB / %dKB pages", totalMB, pageKB))
	}
	total := int(totalMB * 1024 / float64(pageKB))
	if total < 1 {
		panic(fmt.Sprintf("memory: pool smaller than one page: %gMB / %dKB", totalMB, pageKB))
	}
	return &Pool{totalPages: total, pageKB: pageKB}
}

// PagesForMB returns the number of pages needed to hold mb megabytes.
func (p *Pool) PagesForMB(mb float64) int {
	pages := int(mb * 1024 / float64(p.pageKB))
	if float64(pages)*float64(p.pageKB) < mb*1024 {
		pages++
	}
	return pages
}

// TotalPages returns the pool capacity in pages.
func (p *Pool) TotalPages() int { return p.totalPages }

// FreePages returns the current free-list size.
func (p *Pool) FreePages() int { return p.totalPages - p.localPages - p.foreignPages }

// LocalPages returns the pages held by local jobs.
func (p *Pool) LocalPages() int { return p.localPages }

// ForeignPages returns the pages held by the foreign job.
func (p *Pool) ForeignPages() int { return p.foreignPages }

// LocalPageouts returns how many times local demand exceeded even the
// reclaimed foreign pages — the events the priority scheme must keep at
// zero for the owner not to notice the foreign job.
func (p *Pool) LocalPageouts() int { return p.localPageouts }

// ForeignReclaims returns the total pages local jobs reclaimed from the
// foreign pool.
func (p *Pool) ForeignReclaims() int { return p.foreignReclaims }

// ForeignDenied returns the total foreign pages denied for lack of free
// pages.
func (p *Pool) ForeignDenied() int { return p.foreignDenied }

// RequestLocal allocates pages for local jobs. Local demand is satisfied
// from the free list first, then by reclaiming pages from the foreign job
// ("when the local job runs out of pages, it reclaims them from the
// foreign job prior to paging out any of its pages"), and only then counts
// as a local pageout. It returns the pages actually granted (always the
// full request unless it exceeds the whole machine) and the number
// reclaimed from the foreign job.
func (p *Pool) RequestLocal(pages int) (granted, reclaimed int) {
	if pages < 0 {
		panic("memory: negative local request")
	}
	free := p.FreePages()
	fromFree := min(pages, free)
	p.localPages += fromFree
	remaining := pages - fromFree

	fromForeign := min(remaining, p.foreignPages)
	p.foreignPages -= fromForeign
	p.localPages += fromForeign
	p.foreignReclaims += fromForeign
	remaining -= fromForeign

	if remaining > 0 {
		// The owner's own pages must be recycled: a pageout event. The
		// local working set stays at machine capacity.
		p.localPageouts++
		grantedExtra := min(remaining, p.totalPages-p.localPages)
		p.localPages += grantedExtra
		return fromFree + fromForeign + grantedExtra, fromForeign
	}
	return pages, fromForeign
}

// ReleaseLocal returns pages from local jobs to the free list, making them
// available to the foreign job ("whenever a page is placed on the
// free-list by a local job, the foreign job is able to use the page"). It
// panics if more pages are released than held.
func (p *Pool) ReleaseLocal(pages int) {
	if pages < 0 || pages > p.localPages {
		panic(fmt.Sprintf("memory: releasing %d local pages, holding %d", pages, p.localPages))
	}
	p.localPages -= pages
}

// RequestForeign allocates pages for the foreign job from the free list
// only; it never displaces local pages. It returns the pages granted,
// which may be fewer than requested.
func (p *Pool) RequestForeign(pages int) int {
	if pages < 0 {
		panic("memory: negative foreign request")
	}
	granted := min(pages, p.FreePages())
	p.foreignPages += granted
	if granted < pages {
		p.foreignDenied += pages - granted
	}
	return granted
}

// ReleaseForeign returns pages from the foreign job to the free list (for
// example on migration). It panics if more pages are released than held.
func (p *Pool) ReleaseForeign(pages int) {
	if pages < 0 || pages > p.foreignPages {
		panic(fmt.Sprintf("memory: releasing %d foreign pages, holding %d", pages, p.foreignPages))
	}
	p.foreignPages -= pages
}

// SetLocalUsage adjusts the local working set to exactly pages, growing
// through RequestLocal (with its reclaim semantics) or shrinking through
// ReleaseLocal. The cluster simulator drives this from the coarse-grain
// trace's free-memory signal.
func (p *Pool) SetLocalUsage(pages int) {
	if pages < 0 {
		panic("memory: negative local usage")
	}
	if pages > p.totalPages {
		pages = p.totalPages
	}
	switch {
	case pages > p.localPages:
		p.RequestLocal(pages - p.localPages)
	case pages < p.localPages:
		p.ReleaseLocal(p.localPages - pages)
	}
}

// CanHost reports whether a foreign job of jobMB megabytes fits in the
// free list right now without displacing any local pages.
func (p *Pool) CanHost(jobMB float64) bool {
	return p.PagesForMB(jobMB) <= p.FreePages()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
