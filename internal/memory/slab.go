package memory

import "fmt"

// Slab is a chunked free-list allocator for fixed-type objects on hot
// paths that create and destroy many short-lived values of one type — the
// discrete-event engine's event records being the motivating case
// (DESIGN.md §13). Objects are carved out of large chunks so the garbage
// collector sees a handful of long-lived slices instead of millions of
// individual allocations, and released objects are recycled through a
// free list in LIFO order, which keeps the working set cache-hot.
//
// A Slab is single-owner state, exactly like the simulators that embed
// it: methods are not safe for concurrent use.
//
// Recycled objects are returned by Get with their previous contents
// intact — the Slab never zeroes memory. Callers that need a clean
// object must reinitialize every field; callers that exploit surviving
// fields (the engine's handle-generation counter) rely on exactly this
// contract, so it is part of the API, not an accident.
type Slab[T any] struct {
	chunkSize int
	chunks    [][]T
	next      int  // index of the first unused slot in the newest chunk
	free      []*T // released objects, reused LIFO

	liveCount int
	recycled  uint64
}

// DefaultSlabChunk is the per-chunk object count used when NewSlab is
// given a non-positive size. 256 events of ~64 bytes keeps chunks around
// 16 KB — large enough to amortize allocation, small enough not to
// strand memory on tiny simulations.
const DefaultSlabChunk = 256

// NewSlab returns an empty slab that allocates storage in chunks of
// chunkSize objects; chunkSize <= 0 selects DefaultSlabChunk.
func NewSlab[T any](chunkSize int) *Slab[T] {
	if chunkSize <= 0 {
		chunkSize = DefaultSlabChunk
	}
	return &Slab[T]{chunkSize: chunkSize}
}

// Get returns an object, reusing a released one when available and
// carving a fresh slot from the current chunk otherwise. Reused objects
// keep their previous contents (see the type comment).
func (s *Slab[T]) Get() *T {
	s.liveCount++
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		s.recycled++
		return p
	}
	if len(s.chunks) == 0 || s.next == s.chunkSize {
		s.chunks = append(s.chunks, make([]T, s.chunkSize))
		s.next = 0
	}
	chunk := s.chunks[len(s.chunks)-1]
	p := &chunk[s.next]
	s.next++
	return p
}

// Put releases p for reuse by a later Get. The object must have come from
// this slab's Get and must not be used, or Put again, until Get hands it
// back out; a double Put would alias two live objects and is the one
// corruption the slab cannot detect, so callers gate releases the same
// way they would a manual free.
func (s *Slab[T]) Put(p *T) {
	if p == nil {
		panic("memory: Slab.Put(nil)")
	}
	s.liveCount--
	if s.liveCount < 0 {
		panic(fmt.Sprintf("memory: Slab.Put with %d live objects (double Put?)", s.liveCount+1))
	}
	s.free = append(s.free, p)
}

// Live returns the number of objects currently handed out (Get minus Put).
func (s *Slab[T]) Live() int { return s.liveCount }

// Allocated returns the total number of object slots backed by real
// memory across all chunks, whether live, free, or never used.
func (s *Slab[T]) Allocated() int { return len(s.chunks) * s.chunkSize }

// Recycled returns how many Get calls were satisfied from the free list
// instead of fresh chunk memory — the allocations the slab avoided.
func (s *Slab[T]) Recycled() uint64 { return s.recycled }
