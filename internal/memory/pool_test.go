package memory

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPoolSizes(t *testing.T) {
	p := NewPool(64, 4)
	if got := p.TotalPages(); got != 16384 {
		t.Errorf("TotalPages() = %d, want 16384", got)
	}
	if got := p.FreePages(); got != 16384 {
		t.Errorf("FreePages() = %d, want all free", got)
	}
}

func TestNewPoolPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPool(0, 4) },
		func() { NewPool(64, 0) },
		func() { NewPool(0.001, 4096) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad pool construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPagesForMB(t *testing.T) {
	p := NewPool(64, 4)
	if got := p.PagesForMB(8); got != 2048 {
		t.Errorf("PagesForMB(8) = %d, want 2048", got)
	}
	// Rounds up.
	if got := p.PagesForMB(0.001); got != 1 {
		t.Errorf("PagesForMB(0.001) = %d, want 1", got)
	}
	if got := p.PagesForMB(0); got != 0 {
		t.Errorf("PagesForMB(0) = %d, want 0", got)
	}
}

func TestForeignOnlyUsesFreeList(t *testing.T) {
	p := NewPool(1, 4) // 256 pages
	p.RequestLocal(200)
	granted := p.RequestForeign(100)
	if granted != 56 {
		t.Errorf("foreign granted %d pages, want 56 (free list only)", granted)
	}
	if p.ForeignDenied() != 44 {
		t.Errorf("ForeignDenied() = %d, want 44", p.ForeignDenied())
	}
	if p.LocalPages() != 200 {
		t.Errorf("local pages disturbed: %d", p.LocalPages())
	}
}

func TestLocalReclaimsFromForeign(t *testing.T) {
	p := NewPool(1, 4) // 256 pages
	p.RequestForeign(100)
	granted, reclaimed := p.RequestLocal(200)
	if granted != 200 {
		t.Errorf("local granted %d, want 200", granted)
	}
	if reclaimed != 44 {
		t.Errorf("reclaimed %d from foreign, want 44 (200 - 156 free)", reclaimed)
	}
	if p.ForeignPages() != 56 {
		t.Errorf("foreign pages = %d, want 56", p.ForeignPages())
	}
	if p.LocalPageouts() != 0 {
		t.Errorf("local pageouts = %d, want 0 (foreign absorbed the pressure)", p.LocalPageouts())
	}
}

func TestLocalPageoutOnlyWhenForeignExhausted(t *testing.T) {
	p := NewPool(1, 4) // 256 pages
	p.RequestForeign(50)
	p.RequestLocal(300) // exceeds machine: 206 free + 50 foreign + pageout
	if p.LocalPageouts() != 1 {
		t.Errorf("local pageouts = %d, want 1", p.LocalPageouts())
	}
	if p.ForeignPages() != 0 {
		t.Errorf("foreign pages = %d, want 0 (all reclaimed first)", p.ForeignPages())
	}
	if p.LocalPages() != 256 {
		t.Errorf("local pages = %d, want full machine", p.LocalPages())
	}
}

func TestReleasePaths(t *testing.T) {
	p := NewPool(1, 4)
	p.RequestLocal(100)
	p.RequestForeign(50)
	p.ReleaseLocal(40)
	p.ReleaseForeign(10)
	if p.LocalPages() != 60 || p.ForeignPages() != 40 {
		t.Errorf("pages = (%d local, %d foreign), want (60, 40)", p.LocalPages(), p.ForeignPages())
	}
	if p.FreePages() != 156 {
		t.Errorf("FreePages() = %d, want 156", p.FreePages())
	}
}

func TestReleaseTooManyPanics(t *testing.T) {
	p := NewPool(1, 4)
	p.RequestLocal(10)
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	p.ReleaseLocal(11)
}

func TestSetLocalUsage(t *testing.T) {
	p := NewPool(1, 4)
	p.RequestForeign(100)
	p.SetLocalUsage(200)
	if p.LocalPages() != 200 {
		t.Errorf("local pages = %d, want 200", p.LocalPages())
	}
	if p.ForeignPages() != 56 {
		t.Errorf("foreign pages = %d, want 56 after reclaim", p.ForeignPages())
	}
	p.SetLocalUsage(50)
	if p.LocalPages() != 50 {
		t.Errorf("local pages = %d, want 50 after shrink", p.LocalPages())
	}
	if p.FreePages() != 256-50-56 {
		t.Errorf("FreePages() = %d", p.FreePages())
	}
	// Clamp to machine size.
	p.SetLocalUsage(10000)
	if p.LocalPages() != 256 {
		t.Errorf("local pages = %d, want clamped to 256", p.LocalPages())
	}
}

func TestCanHost(t *testing.T) {
	p := NewPool(64, 4)
	p.SetLocalUsage(p.PagesForMB(58))
	if p.CanHost(8) {
		t.Error("CanHost(8MB) with 6MB free should be false")
	}
	p.SetLocalUsage(p.PagesForMB(50))
	if !p.CanHost(8) {
		t.Error("CanHost(8MB) with 14MB free should be true")
	}
}

// Property: pages are conserved and never negative through any operation
// sequence, and local pageouts occur only when the whole machine is local.
func TestPoolInvariantsQuick(t *testing.T) {
	type op struct {
		Kind  uint8
		Pages uint16
	}
	f := func(ops []op) bool {
		p := NewPool(4, 4) // 1024 pages
		for _, o := range ops {
			n := int(o.Pages) % 1200
			switch o.Kind % 5 {
			case 0:
				before := p.LocalPageouts()
				p.RequestLocal(n)
				if p.LocalPageouts() > before && p.LocalPages() != p.TotalPages() {
					return false // paged out while free/foreign pages remained
				}
			case 1:
				p.RequestForeign(n)
			case 2:
				p.ReleaseLocal(min(n, p.LocalPages()))
			case 3:
				p.ReleaseForeign(min(n, p.ForeignPages()))
			case 4:
				p.SetLocalUsage(n)
			}
			if p.LocalPages() < 0 || p.ForeignPages() < 0 || p.FreePages() < 0 {
				return false
			}
			if p.LocalPages()+p.ForeignPages()+p.FreePages() != p.TotalPages() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Model-based property test: a seeded random operation sequence is applied
// both to the pool and to a three-counter reference model of the §3.2
// priority semantics. Every step the pool must match the model exactly and
// conserve pages — this is the invariant the runtime's fault-injection
// tests rely on when they assert pool cleanliness after recovery.
func TestPoolMatchesReferenceModel(t *testing.T) {
	const total = 1024 // NewPool(4,4)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := NewPool(4, 4)
		var local, foreign int // the model; free is total-local-foreign
		for step := 0; step < 2000; step++ {
			n := rng.Intn(1200)
			switch rng.Intn(5) {
			case 0: // RequestLocal: free first, then reclaim, never past total
				free := total - local - foreign
				reclaim := min(max(n-free, 0), foreign)
				wantGranted := min(n, total-local)
				granted, reclaimed := p.RequestLocal(n)
				if granted != wantGranted || reclaimed != reclaim {
					t.Fatalf("seed %d step %d: RequestLocal(%d) = (%d, %d), model (%d, %d)",
						seed, step, n, granted, reclaimed, wantGranted, reclaim)
				}
				local = min(local+n, total)
				foreign -= reclaim
			case 1: // RequestForeign: free list only
				free := total - local - foreign
				want := min(n, free)
				if granted := p.RequestForeign(n); granted != want {
					t.Fatalf("seed %d step %d: RequestForeign(%d) = %d, model %d",
						seed, step, n, granted, want)
				}
				foreign += want
			case 2:
				n = min(n, local)
				p.ReleaseLocal(n)
				local -= n
			case 3:
				n = min(n, foreign)
				p.ReleaseForeign(n)
				foreign -= n
			case 4:
				p.SetLocalUsage(n)
				target := min(n, total)
				if target > local {
					free := total - local - foreign
					foreign -= min(max(target-local-free, 0), foreign)
				}
				local = target
			}
			if p.LocalPages() != local || p.ForeignPages() != foreign {
				t.Fatalf("seed %d step %d: pool (local %d, foreign %d) diverged from model (local %d, foreign %d)",
					seed, step, p.LocalPages(), p.ForeignPages(), local, foreign)
			}
			if p.FreePages()+p.LocalPages()+p.ForeignPages() != p.TotalPages() {
				t.Fatalf("seed %d step %d: pages not conserved: %d+%d+%d != %d",
					seed, step, p.FreePages(), p.LocalPages(), p.ForeignPages(), p.TotalPages())
			}
			if p.FreePages() < 0 {
				t.Fatalf("seed %d step %d: negative free list", seed, step)
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
