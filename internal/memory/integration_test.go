package memory_test

import (
	"testing"

	"lingerlonger/internal/memory"
	"lingerlonger/internal/stats"
	"lingerlonger/internal/trace"
)

// Drive the priority page pool from a synthetic workstation trace: the
// local working set follows the trace's memory signal while a resident
// 8 MB foreign job holds its pages. The priority scheme must never force
// the owner to page out as long as the machine has room, and the foreign
// job must survive (possibly shrunken) through owner memory pressure.
func TestPoolDrivenByTrace(t *testing.T) {
	cfg := trace.DefaultConfig()
	tr, err := trace.Generate(cfg, stats.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}

	pool := memory.NewPool(cfg.TotalMB, 4)
	jobPages := pool.PagesForMB(8)
	granted := pool.RequestForeign(jobPages)
	if granted != jobPages {
		t.Fatalf("foreign job got %d of %d pages on an empty machine", granted, jobPages)
	}

	reclaimEvents := 0
	hostable := 0
	for i, s := range tr.Samples {
		if i%30 != 0 { // sample once a minute; the WS drifts slowly
			continue
		}
		localMB := tr.TotalMB - s.FreeMB
		before := pool.ForeignReclaims()
		pool.SetLocalUsage(pool.PagesForMB(localMB))
		if pool.ForeignReclaims() > before {
			reclaimEvents++
		}
		if pool.CanHost(8) {
			hostable++
		}
		// Invariants under trace-driven pressure.
		if pool.LocalPages()+pool.ForeignPages() > pool.TotalPages() {
			t.Fatalf("pages over-committed at sample %d", i)
		}
		if pool.LocalPageouts() != 0 {
			t.Fatalf("owner paged out at sample %d: local usage %.1f MB", i, localMB)
		}
	}
	if reclaimEvents == 0 {
		t.Log("note: trace never pressured the foreign pool (acceptable, free memory is plentiful)")
	}
	if hostable == 0 {
		t.Error("machine was never able to host a second 8 MB job; contradicts Figure 4")
	}
}

// The Figure 4 reading through the pool's admission check: using the
// trace free-memory signal, an 8 MB foreign job fits the free list the
// overwhelming majority of the time.
func TestAdmissionMatchesFig4(t *testing.T) {
	cfg := trace.DefaultConfig()
	tr, err := trace.Generate(cfg, stats.NewRNG(78))
	if err != nil {
		t.Fatal(err)
	}
	pool := memory.NewPool(cfg.TotalMB, 4)
	admitted, total := 0, 0
	for i, s := range tr.Samples {
		if i%30 != 0 {
			continue
		}
		pool.SetLocalUsage(pool.PagesForMB(tr.TotalMB - s.FreeMB))
		total++
		if pool.CanHost(8) {
			admitted++
		}
	}
	frac := float64(admitted) / float64(total)
	if frac < 0.90 {
		t.Errorf("8 MB job admissible %.1f%% of the time, want > 90%% (Figure 4)", 100*frac)
	}
}
