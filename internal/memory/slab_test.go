package memory_test

import (
	"testing"

	"lingerlonger/internal/memory"
)

type payload struct {
	id  int
	gen uint64
}

func TestSlabGetPutRecycles(t *testing.T) {
	s := memory.NewSlab[payload](4)
	a := s.Get()
	a.id, a.gen = 7, 3
	if s.Live() != 1 {
		t.Fatalf("Live = %d, want 1", s.Live())
	}
	s.Put(a)
	if s.Live() != 0 {
		t.Fatalf("Live after Put = %d, want 0", s.Live())
	}
	b := s.Get()
	if b != a {
		t.Fatal("free list did not recycle the released object")
	}
	if b.id != 7 || b.gen != 3 {
		t.Fatalf("recycled object was zeroed: %+v (contents must survive)", *b)
	}
	if s.Recycled() != 1 {
		t.Fatalf("Recycled = %d, want 1", s.Recycled())
	}
}

func TestSlabDistinctSlotsAcrossChunks(t *testing.T) {
	s := memory.NewSlab[payload](3)
	seen := make(map[*payload]bool)
	var all []*payload
	for i := 0; i < 10; i++ {
		p := s.Get()
		if seen[p] {
			t.Fatalf("slot %d handed out twice while live", i)
		}
		seen[p] = true
		p.id = i
		all = append(all, p)
	}
	if got := s.Allocated(); got != 12 { // ceil(10/3) chunks of 3... 4 chunks
		t.Fatalf("Allocated = %d, want 12", got)
	}
	for i, p := range all {
		if p.id != i {
			t.Fatalf("slot %d overwritten: id = %d (chunk growth moved live objects?)", i, p.id)
		}
	}
	for _, p := range all {
		s.Put(p)
	}
	if s.Live() != 0 {
		t.Fatalf("Live = %d after releasing everything", s.Live())
	}
	// Everything comes back from the free list now.
	before := s.Allocated()
	for i := 0; i < 10; i++ {
		s.Get()
	}
	if s.Allocated() != before {
		t.Fatalf("Allocated grew from %d to %d though the free list had capacity", before, s.Allocated())
	}
}

func TestSlabPutPanics(t *testing.T) {
	s := memory.NewSlab[payload](0)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Put(nil)", func() { s.Put(nil) })
	p := s.Get()
	s.Put(p)
	mustPanic("unbalanced Put", func() { s.Put(p) })
}

// BenchmarkSlabGetPut pins the hot-path cost the event engine depends on:
// a Get/Put pair must stay allocation-free once the first chunk exists.
func BenchmarkSlabGetPut(b *testing.B) {
	s := memory.NewSlab[payload](0)
	s.Put(s.Get()) // warm the first chunk
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(s.Get())
	}
}
