package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// HeapHandler is the callback type for HeapEngine, the reference
// scheduler. It mirrors Handler but receives the reference engine.
type HeapHandler func(e *HeapEngine)

// HeapEvent is a cancellable handle returned by HeapEngine.Schedule. It is
// the pre-rewrite pointer handle: one heap node per scheduled event.
type HeapEvent struct {
	time    float64
	seq     uint64
	index   int // heap index, -1 when not queued
	handler HeapHandler
}

// Time returns the virtual time at which the event fires (or fired).
func (ev *HeapEvent) Time() float64 { return ev.time }

// Cancelled reports whether the event has been cancelled or already fired.
func (ev *HeapEvent) Cancelled() bool { return ev.index < 0 }

// HeapEngine is the binary-heap discrete-event scheduler this repository
// used before the calendar-queue rewrite, retained verbatim as the
// executable specification of the determinism contract: (time, seq) FIFO
// order with cancellable handles. The differential tests in this package
// drive HeapEngine and Engine through identical randomized schedules and
// require identical fire orders, and cmd/llbench reports the calendar
// queue's speedup over it, so regressions in either speed or order
// surface against a fixed reference rather than prose. It allocates one
// heap node per event and is not otherwise optimized — do not build new
// simulators on it.
type HeapEngine struct {
	now   float64
	seq   uint64
	queue heapQueue
	fired uint64
}

// Now returns the current virtual time.
func (e *HeapEngine) Now() float64 { return e.now }

// Fired returns the number of events that have fired so far.
func (e *HeapEngine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently queued.
func (e *HeapEngine) Pending() int { return len(e.queue) }

// Schedule queues handler to run at absolute virtual time t and returns a
// cancellable handle. Scheduling in the past or at NaN panics, exactly as
// on Engine.
func (e *HeapEngine) Schedule(t float64, handler HeapHandler) *HeapEvent {
	if handler == nil {
		panic("sim: Schedule with nil handler")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: Schedule at %g before now %g", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: Schedule at NaN")
	}
	ev := &HeapEvent{time: t, seq: e.seq, handler: handler}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After queues handler to run delay seconds from now. A negative delay
// panics.
func (e *HeapEngine) After(delay float64, handler HeapHandler) *HeapEvent {
	return e.Schedule(e.now+delay, handler)
}

// Cancel removes ev from the queue. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *HeapEngine) Cancel(ev *HeapEvent) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Step fires the next event, advancing the clock, and reports whether an
// event fired.
func (e *HeapEngine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*HeapEvent)
	ev.index = -1
	e.now = ev.time
	e.fired++
	ev.handler(e)
	return true
}

// Run fires events until the queue is empty.
func (e *HeapEngine) Run() {
	for e.Step() {
	}
}

// NextEventTime returns the firing time of the earliest queued event and
// whether one exists.
func (e *HeapEngine) NextEventTime() (float64, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].time, true
}

// heapQueue implements heap.Interface ordered by (time, seq).
type heapQueue []*HeapEvent

func (q heapQueue) Len() int { return len(q) }

func (q heapQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q heapQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *heapQueue) Push(x any) {
	ev := x.(*HeapEvent)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *heapQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
