package sim

import (
	"testing"

	"lingerlonger/internal/obs"
)

// The engine's event dispatch is the hottest loop in the repository, so it
// carries the observability overhead budget (DESIGN.md §11): with the
// recorder DISABLED (nil), Step must stay within 5% of the pre-
// instrumentation engine. The pre-instrumentation baseline, measured on
// the reference container (Intel Xeon @ 2.10GHz, -benchtime=2s -count=3)
// immediately before the obs layer was added, was 53.6 / 47.0 / 44.8
// ns/op on this same self-rescheduling workload; compare
// BenchmarkEngineStep/nil-recorder against it after touching Step. The
// enabled-recorder case costs one atomic add per event on top.
func benchEngineStep(b *testing.B, rec *obs.Recorder) {
	var e Engine
	e.SetRecorder(rec)
	var h Handler
	h = func(eng *Engine) { eng.After(1.0, h) }
	e.After(1.0, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkEngineStep(b *testing.B) {
	b.Run("nil-recorder", func(b *testing.B) {
		benchEngineStep(b, nil)
	})
	b.Run("enabled-recorder", func(b *testing.B) {
		benchEngineStep(b, obs.New(obs.NewRegistry(), nil))
	})
}

// TestEngineRecorderCountsEveryStep pins the instrumentation's semantics:
// the sim.events.fired counter tracks Engine.Fired exactly, and attaching
// a recorder does not change what the engine computes.
func TestEngineRecorderCountsEveryStep(t *testing.T) {
	run := func(rec *obs.Recorder) (float64, uint64) {
		var e Engine
		e.SetRecorder(rec)
		var h Handler
		h = func(eng *Engine) {
			if eng.Now() < 100 {
				eng.After(1.0, h)
			}
		}
		e.After(1.0, h)
		e.Run()
		return e.Now(), e.Fired()
	}

	plainNow, plainFired := run(nil)
	reg := obs.NewRegistry()
	instrNow, instrFired := run(obs.New(reg, nil))
	if plainNow != instrNow || plainFired != instrFired {
		t.Fatalf("recorder changed the simulation: (%g, %d) vs (%g, %d)",
			plainNow, plainFired, instrNow, instrFired)
	}
	if got := reg.Counter(obs.SimEventsFired).Value(); uint64(got) != instrFired {
		t.Fatalf("sim.events.fired = %d, engine fired %d", got, instrFired)
	}
}
