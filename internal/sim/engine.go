// Package sim provides a small deterministic discrete-event simulation
// engine: a virtual clock and a calendar-queue scheduler with stable FIFO
// ordering for simultaneous events, plus cancellable event handles.
//
// All simulators in this repository (single node, sequential cluster,
// parallel jobs) are built on this engine. Time is measured in seconds as
// float64; the engine imposes no unit, but every caller in this module uses
// seconds.
//
// # Determinism contract
//
// The engine fires events in strictly non-decreasing time order, and
// events scheduled for the same instant fire in the order they were
// scheduled (FIFO, via a monotonic sequence number). Cancelling an event
// removes it without disturbing the order of the others. The fire order is
// therefore a pure function of the Schedule/Cancel call sequence —
// independent of the queue's internal layout, bucket count, or resize
// history — which is what makes every simulation in this repository
// reproducible from a seed. The reference implementation HeapEngine pins
// this contract; internal/sim's differential tests drive both schedulers
// through randomized schedules and require identical fire orders.
//
// Internally the engine uses a calendar queue (Brown 1988) with lazily
// sized buckets and a slab-pooled event arena (internal/memory), which
// is why Step runs in amortized O(1) with zero allocations; DESIGN.md §13
// documents the layout and the proof obligations.
package sim

import (
	"fmt"
	"math"
	"sort"

	"lingerlonger/internal/memory"
	"lingerlonger/internal/obs"
)

// Handler is the callback invoked when an event fires. The engine passes
// itself so handlers can schedule follow-up events.
type Handler func(e *Engine)

// event is the pooled internal record behind an Event handle. Records are
// recycled through a memory.Slab; gen is bumped every time a record leaves
// the queue (fire or cancel), which is what invalidates stale handles.
type event struct {
	time    float64
	seq     uint64 // tie-break: FIFO among simultaneous events
	gen     uint64 // handle-validity generation; survives recycling
	bucket  int32  // calendar bucket index; overflowBucket or notQueued
	pos     int32  // position within the bucket slice
	handler Handler
}

const (
	notQueued      = -1 // bucket value while a record is outside the queue
	overflowBucket = -2 // bucket value for the far-future overflow list
	singleSlot     = -3 // bucket value for the one-pending-event register
)

// Event is a cancellable handle to a scheduled callback, returned by
// Engine.Schedule and Engine.After. It is a small value: copy it freely.
// The zero Event is a valid "no event" handle — Cancelled reports true and
// Engine.Cancel ignores it — so callers can cancel defensively without
// nil checks.
//
// Handles stay safe after their event fires: the engine recycles event
// records through a pool, and each handle carries the generation it was
// issued for, so cancelling a stale handle can never touch a recycled
// record that now represents a different event.
type Event struct {
	ev  *event
	gen uint64
	at  float64
}

// Time returns the virtual time at which the event fires (or fired).
func (h Event) Time() float64 { return h.at }

// Cancelled reports whether the event has been cancelled or already fired
// (or is the zero handle).
func (h Event) Cancelled() bool { return h.ev == nil || h.ev.gen != h.gen }

// BudgetError reports that an engine fired its event budget without the
// simulation reaching its end condition — the typed surface of what would
// otherwise be an infinite event loop in a buggy model (for example an
// event that keeps rescheduling itself at the current instant).
type BudgetError struct {
	Budget uint64  // the configured budget
	Now    float64 // virtual time when the budget was exhausted
}

// Error returns the budget, the virtual time it ran out at, and the likely
// diagnosis.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: event budget of %d exhausted at t=%g (runaway event loop?)", e.Budget, e.Now)
}

// Engine is a discrete-event simulator. The zero value is a ready-to-use
// engine with the clock at 0 and no event budget. Methods are not safe for
// concurrent use; simulators that run in parallel each own an Engine.
type Engine struct {
	now    float64
	seq    uint64
	fired  uint64
	halted bool
	budget uint64 // max events to fire; 0 = unlimited
	err    error  // sticky *BudgetError once the budget is exhausted

	q    calendar
	pool *memory.Slab[event]

	firedC *obs.Counter // pre-resolved sim.events.fired handle; nil = off
}

// SetRecorder attaches an observability recorder. The counter handle is
// resolved once here, so the Step hot loop pays a single nil-check per
// event when observability is disabled (the <5% overhead budget of
// DESIGN.md §11). Metrics are a side channel: nothing in the engine reads
// them back, so attaching a recorder can never change simulation results.
func (e *Engine) SetRecorder(r *obs.Recorder) {
	e.firedC = r.Counter(obs.SimEventsFired)
}

// SetEventBudget bounds the total number of events the engine will fire;
// n = 0 removes the bound. Once the budget is exhausted Step refuses to
// fire further events, Run/RunUntil stop, and Err returns a *BudgetError.
// The budget is the backstop that turns a runaway simulation — which no
// watchdog can interrupt from outside a goroutine — into a typed error
// the sweep layer can report and retry.
func (e *Engine) SetEventBudget(n uint64) {
	e.budget = n
	if n == 0 || e.fired < n {
		e.err = nil
	}
}

// Err returns the sticky *BudgetError once the event budget has been
// exhausted, and nil otherwise.
func (e *Engine) Err() error { return e.err }

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events that have fired so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return e.q.count }

// PooledEvents returns the number of event records backed by real memory
// in the engine's arena — queued, recycled, or never used. It exists for
// benchmarks and capacity accounting; simulations never read it.
func (e *Engine) PooledEvents() int {
	if e.pool == nil {
		return 0
	}
	return e.pool.Allocated()
}

// Schedule queues handler to run at absolute virtual time t and returns a
// cancellable handle. Scheduling in the past (t < Now) panics: it always
// indicates a simulator bug, and silently clamping would mask it.
func (e *Engine) Schedule(t float64, handler Handler) Event {
	if handler == nil {
		panic("sim: Schedule with nil handler")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: Schedule at %g before now %g", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: Schedule at NaN")
	}
	if e.pool == nil {
		e.pool = memory.NewSlab[event](0)
	}
	ev := e.pool.Get()
	ev.time = t
	ev.seq = e.seq
	ev.handler = handler
	e.seq++
	e.q.push(ev)
	return Event{ev: ev, gen: ev.gen, at: t}
}

// After queues handler to run delay seconds from now. A negative delay
// panics.
func (e *Engine) After(delay float64, handler Handler) Event {
	return e.Schedule(e.now+delay, handler)
}

// Cancel removes the event behind h from the queue. Cancelling an
// already-fired or already-cancelled event (or the zero handle) is a
// no-op, so callers may cancel defensively.
func (e *Engine) Cancel(h Event) {
	if h.ev == nil || h.ev.gen != h.gen {
		return
	}
	e.q.remove(h.ev)
	e.release(h.ev)
}

// release invalidates every outstanding handle to ev and recycles the
// record. The generation bump must happen before the record re-enters the
// pool: it is what makes reuse safe.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.handler = nil
	e.pool.Put(ev)
}

// Halt stops the current Run/RunUntil after the in-flight handler returns.
func (e *Engine) Halt() { e.halted = true }

// Step fires the next event, advancing the clock, and reports whether an
// event fired. With an exhausted event budget it fires nothing and
// returns false; check Err to distinguish that from an empty queue.
func (e *Engine) Step() bool {
	ev := e.q.findMin()
	if ev == nil {
		return false
	}
	if e.budget > 0 && e.fired >= e.budget {
		if e.err == nil {
			e.err = &BudgetError{Budget: e.budget, Now: e.now}
		}
		return false
	}
	e.q.pop(ev)
	e.now = ev.time
	e.fired++
	e.firedC.Inc()
	h := ev.handler
	e.release(ev)
	h(e)
	return true
}

// Run fires events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil fires events with time <= end, then advances the clock to end.
// Events scheduled after end remain queued.
func (e *Engine) RunUntil(end float64) {
	if end < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%g) before now %g", end, e.now))
	}
	e.halted = false
	for !e.halted {
		next := e.q.findMin()
		if next == nil || next.time > end {
			break
		}
		if !e.Step() {
			break // budget exhausted; e.Err() reports it
		}
	}
	if !e.halted && e.err == nil && e.now < end {
		e.now = end
	}
}

// NextEventTime returns the firing time of the earliest queued event and
// whether one exists.
func (e *Engine) NextEventTime() (float64, bool) {
	ev := e.q.findMin()
	if ev == nil {
		return 0, false
	}
	return ev.time, true
}

// calendar is the event queue: a calendar queue (Brown 1988) ordered by
// (time, seq). Events whose virtual bucket index would overflow an int64
// (including +Inf times) live in a separate overflow list; because the
// overflow threshold is a fixed multiple of the bucket width, every
// overflow event fires after every calendar event, so the two structures
// never interleave (DESIGN.md §13 carries the argument).
//
// Correctness never depends on bucket placement: the year scan falls back
// to a direct min search over every bucket when a full year turns up
// nothing, and event selection is always by (time, seq) comparison, so a
// badly tuned width can only cost speed, not order.
type calendar struct {
	buckets  [][]*event
	mask     int64
	width    float64
	invWidth float64
	count    int      // queued events, overflow list and single register included
	single   *event   // the sole queued event, held outside the buckets
	overflow []*event // far-future events, unordered
	cursor   float64  // time of the last pop; scan origin
	cached   *event   // memoized current minimum; nil = unknown
}

const (
	minBuckets = 8
	maxBuckets = 1 << 20
	// maxVirtual is the largest virtual bucket index (time/width) the
	// calendar will place; anything at or beyond goes to the overflow
	// list. Staying well under 2^63 keeps the int64 conversion defined.
	maxVirtual = float64(1 << 62)
)

// less is the queue's total order: earlier time first, then FIFO by seq.
func less(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push inserts ev, growing the bucket array when the load factor passes 2.
// An event pushed into an empty queue parks in the single register: the
// dominant pattern across this repository's simulators — one pending
// event, fired, replaced — then never touches a bucket at all.
func (q *calendar) push(ev *event) {
	if q.count == 0 {
		ev.bucket = singleSlot
		q.single = ev
		q.cached = ev
		q.count = 1
		return
	}
	if q.buckets == nil {
		q.buckets = make([][]*event, minBuckets)
		q.mask = minBuckets - 1
		q.width = 1
		q.invWidth = 1
	}
	if s := q.single; s != nil {
		q.single = nil
		q.place(s)
	}
	q.place(ev)
	q.count++
	if q.cached != nil && less(ev, q.cached) {
		q.cached = ev
	}
	if q.count > 2*len(q.buckets) && len(q.buckets) < maxBuckets {
		q.resize(2 * len(q.buckets))
	}
}

// place files ev into its bucket (or the overflow list) without touching
// count or the cache; push and resize share it.
func (q *calendar) place(ev *event) {
	if vb := ev.time * q.invWidth; vb < maxVirtual {
		b := int64(vb) & q.mask
		ev.bucket = int32(b)
		ev.pos = int32(len(q.buckets[b]))
		q.buckets[b] = append(q.buckets[b], ev)
		return
	}
	ev.bucket = overflowBucket
	ev.pos = int32(len(q.overflow))
	q.overflow = append(q.overflow, ev)
}

// remove unlinks a queued event in O(1) by swapping the last element of
// its bucket into its slot. Bucket-internal order is irrelevant: selection
// is always by (time, seq) comparison.
func (q *calendar) remove(ev *event) {
	if ev == q.cached {
		q.cached = nil
	}
	if ev.bucket == singleSlot {
		q.single = nil
		ev.bucket = notQueued
		q.count--
		return
	}
	list := &q.overflow
	if ev.bucket != overflowBucket {
		list = &q.buckets[ev.bucket]
	}
	l := *list
	n := len(l) - 1
	last := l[n]
	l[ev.pos] = last
	last.pos = ev.pos
	l[n] = nil
	*list = l[:n]
	ev.bucket = notQueued
	q.count--
	if nb := len(q.buckets); nb > minBuckets && q.count < nb/2 {
		q.resize(nb / 2)
	}
}

// pop removes a previously found minimum and advances the scan cursor.
func (q *calendar) pop(ev *event) {
	q.remove(ev)
	q.cursor = ev.time
}

// findMin returns the (time, seq)-least queued event without removing it,
// or nil when the queue is empty. The result is memoized until the queue
// changes in a way that could dethrone it.
func (q *calendar) findMin() *event {
	if q.count == 0 {
		return nil
	}
	if q.cached != nil {
		return q.cached
	}
	if q.single != nil {
		q.cached = q.single
		return q.single
	}
	if q.count > len(q.overflow) {
		// Year scan: starting at the cursor's bucket, each step widens the
		// admissible time window by one bucket width. Every pending event
		// with time < top lives in the bucket under scan (events are never
		// earlier than the cursor), so the first hit is the global minimum
		// among calendar events — and calendar events always precede
		// overflow events.
		vb := math.Floor(q.cursor * q.invWidth)
		b := int64(vb) & q.mask
		top := (vb + 1) * q.width
		n := int64(len(q.buckets))
		for i := int64(0); i <= n; i++ {
			var best *event
			for _, ev := range q.buckets[b] {
				if ev.time < top && (best == nil || less(ev, best)) {
					best = ev
				}
			}
			if best != nil {
				q.cached = best
				return best
			}
			b = (b + 1) & q.mask
			top += q.width
		}
	}
	// Direct search: nothing within a year of the cursor (or only
	// overflow events remain). Unconditionally correct, just slower.
	var best *event
	for _, bucket := range q.buckets {
		for _, ev := range bucket {
			if best == nil || less(ev, best) {
				best = ev
			}
		}
	}
	for _, ev := range q.overflow {
		if best == nil || less(ev, best) {
			best = ev
		}
	}
	q.cached = best
	return best
}

// resize re-buckets every event into n buckets with a width re-estimated
// from the current population. Order is unaffected: findMin selects by
// comparison, never by placement.
func (q *calendar) resize(n int) {
	scratch := make([]*event, 0, q.count)
	for _, bucket := range q.buckets {
		scratch = append(scratch, bucket...)
	}
	scratch = append(scratch, q.overflow...)
	q.width = q.estimateWidth(scratch)
	q.invWidth = 1 / q.width
	q.buckets = make([][]*event, n)
	q.mask = int64(n - 1)
	q.overflow = nil
	for _, ev := range scratch {
		q.place(ev)
	}
}

// estimateWidth picks a bucket width close to the typical inter-event gap
// so that the year scan touches O(1) events per pop. It samples up to 64
// queued events and takes twice the median positive gap — the median
// keeps one far-future stray from stretching every bucket. A degenerate
// population (all simultaneous) keeps the current width.
func (q *calendar) estimateWidth(evs []*event) float64 {
	const sampleMax = 64
	k := len(evs)
	if k > sampleMax {
		k = sampleMax
	}
	if k < 2 {
		return q.width
	}
	times := make([]float64, 0, k)
	stride := len(evs) / k
	for i := 0; i < k; i++ {
		t := evs[i*stride].time
		if t*q.invWidth < maxVirtual { // ignore far-future strays
			times = append(times, t)
		}
	}
	if len(times) < 2 {
		return q.width
	}
	sort.Float64s(times)
	gaps := times[:0]
	prev := times[0]
	for _, t := range times[1:] {
		if g := t - prev; g > 0 {
			gaps = append(gaps, g)
		}
		prev = t
	}
	if len(gaps) == 0 {
		return q.width
	}
	sort.Float64s(gaps)
	w := 2 * gaps[len(gaps)/2]
	if w < 1e-12 {
		w = 1e-12
	}
	if w > 1e12 {
		w = 1e12
	}
	return w
}
