// Package sim provides a small deterministic discrete-event simulation
// engine: a virtual clock and an event heap with stable FIFO ordering for
// simultaneous events, plus cancellable event handles.
//
// All simulators in this repository (single node, sequential cluster,
// parallel jobs) are built on this engine. Time is measured in seconds as
// float64; the engine imposes no unit, but every caller in this module uses
// seconds.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"lingerlonger/internal/obs"
)

// Handler is the callback invoked when an event fires. The engine passes
// itself so handlers can schedule follow-up events.
type Handler func(e *Engine)

// Event is a scheduled callback. Events are created by Engine.Schedule and
// may be cancelled before they fire.
type Event struct {
	time    float64
	seq     uint64 // tie-break: FIFO among simultaneous events
	index   int    // heap index, -1 when not queued
	handler Handler
}

// Time returns the virtual time at which the event fires (or fired).
func (ev *Event) Time() float64 { return ev.time }

// Cancelled reports whether the event has been cancelled or already fired.
func (ev *Event) Cancelled() bool { return ev.index < 0 }

// BudgetError reports that an engine fired its event budget without the
// simulation reaching its end condition — the typed surface of what would
// otherwise be an infinite event loop in a buggy model (for example an
// event that keeps rescheduling itself at the current instant).
type BudgetError struct {
	Budget uint64  // the configured budget
	Now    float64 // virtual time when the budget was exhausted
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: event budget of %d exhausted at t=%g (runaway event loop?)", e.Budget, e.Now)
}

// Engine is a discrete-event simulator. The zero value is a ready-to-use
// engine with the clock at 0 and no event budget.
type Engine struct {
	now    float64
	seq    uint64
	queue  eventQueue
	fired  uint64
	halted bool
	budget uint64 // max events to fire; 0 = unlimited
	err    error  // sticky *BudgetError once the budget is exhausted

	firedC *obs.Counter // pre-resolved sim.events.fired handle; nil = off
}

// SetRecorder attaches an observability recorder. The counter handle is
// resolved once here, so the Step hot loop pays a single nil-check per
// event when observability is disabled (the <5% overhead budget of
// DESIGN.md §11). Metrics are a side channel: nothing in the engine reads
// them back, so attaching a recorder can never change simulation results.
func (e *Engine) SetRecorder(r *obs.Recorder) {
	e.firedC = r.Counter(obs.SimEventsFired)
}

// SetEventBudget bounds the total number of events the engine will fire;
// n = 0 removes the bound. Once the budget is exhausted Step refuses to
// fire further events, Run/RunUntil stop, and Err returns a *BudgetError.
// The budget is the backstop that turns a runaway simulation — which no
// watchdog can interrupt from outside a goroutine — into a typed error
// the sweep layer can report and retry.
func (e *Engine) SetEventBudget(n uint64) {
	e.budget = n
	if n == 0 || e.fired < n {
		e.err = nil
	}
}

// Err returns the sticky *BudgetError once the event budget has been
// exhausted, and nil otherwise.
func (e *Engine) Err() error { return e.err }

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events that have fired so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues handler to run at absolute virtual time t and returns a
// cancellable handle. Scheduling in the past (t < Now) panics: it always
// indicates a simulator bug, and silently clamping would mask it.
func (e *Engine) Schedule(t float64, handler Handler) *Event {
	if handler == nil {
		panic("sim: Schedule with nil handler")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: Schedule at %g before now %g", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: Schedule at NaN")
	}
	ev := &Event{time: t, seq: e.seq, handler: handler}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After queues handler to run delay seconds from now. A negative delay
// panics.
func (e *Engine) After(delay float64, handler Handler) *Event {
	return e.Schedule(e.now+delay, handler)
}

// Cancel removes ev from the queue. Cancelling an already-fired or
// already-cancelled event is a no-op, so callers may cancel defensively.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Halt stops the current Run/RunUntil after the in-flight handler returns.
func (e *Engine) Halt() { e.halted = true }

// Step fires the next event, advancing the clock, and reports whether an
// event fired. With an exhausted event budget it fires nothing and
// returns false; check Err to distinguish that from an empty queue.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	if e.budget > 0 && e.fired >= e.budget {
		if e.err == nil {
			e.err = &BudgetError{Budget: e.budget, Now: e.now}
		}
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.index = -1
	e.now = ev.time
	e.fired++
	e.firedC.Inc()
	ev.handler(e)
	return true
}

// Run fires events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil fires events with time <= end, then advances the clock to end.
// Events scheduled after end remain queued.
func (e *Engine) RunUntil(end float64) {
	if end < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%g) before now %g", end, e.now))
	}
	e.halted = false
	for !e.halted && len(e.queue) > 0 && e.queue[0].time <= end {
		if !e.Step() {
			break // budget exhausted; e.Err() reports it
		}
	}
	if !e.halted && e.err == nil && e.now < end {
		e.now = end
	}
}

// NextEventTime returns the firing time of the earliest queued event and
// whether one exists.
func (e *Engine) NextEventTime() (float64, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].time, true
}

// eventQueue implements heap.Interface ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
