package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// The differential suite drives the calendar-queue Engine and the
// retained binary-heap HeapEngine through identical randomized operation
// scripts and requires identical fire orders. This is the determinism
// contract's enforcement: FIFO among simultaneous events, cancel
// semantics, and time ordering must be properties of the API, not of the
// queue layout. Scripts deliberately mix the calendar queue's hard cases:
// simultaneous-event bursts (tie-breaks), random cancels (including the
// current minimum), clustered and long-tail delays (bucket-width stress),
// and enough churn to cross several resize thresholds in both directions.

// engineAPI adapts Engine and HeapEngine to one surface for the
// interpreter.
type engineAPI interface {
	schedule(at float64, f func()) (cancel func(), cancelled func() bool)
	step() bool
	now() float64
	pending() int
}

type calAdapter struct{ e Engine }

func (a *calAdapter) schedule(at float64, f func()) (func(), func() bool) {
	h := a.e.Schedule(at, func(*Engine) { f() })
	return func() { a.e.Cancel(h) }, h.Cancelled
}
func (a *calAdapter) step() bool   { return a.e.Step() }
func (a *calAdapter) now() float64 { return a.e.Now() }
func (a *calAdapter) pending() int { return a.e.Pending() }

type heapAdapter struct{ e HeapEngine }

func (a *heapAdapter) schedule(at float64, f func()) (func(), func() bool) {
	h := a.e.Schedule(at, func(*HeapEngine) { f() })
	return func() { a.e.Cancel(h) }, h.Cancelled
}
func (a *heapAdapter) step() bool   { return a.e.Step() }
func (a *heapAdapter) now() float64 { return a.e.Now() }
func (a *heapAdapter) pending() int { return a.e.Pending() }

// trace is what a run records: the label and firing time of every event,
// in order.
type firing struct {
	label int
	at    float64
}

// interpret runs one seeded workload on eng. All randomness comes from a
// rand.Rand seeded identically for both engines, and every decision is a
// pure function of the draw sequence, so the two runs see the same
// operation stream. Handlers schedule follow-ups and cancel pending
// events, exercising in-handler mutation of the queue.
func interpret(eng engineAPI, seed int64, initial, maxFired int) []firing {
	rng := rand.New(rand.NewSource(seed))
	var out []firing
	nextLabel := 0
	handles := make([]func(), 0, 64)    // cancel funcs by slot
	alive := make([]func() bool, 0, 64) // cancelled probes by slot

	delay := func() float64 {
		switch r := rng.Float64(); {
		case r < 0.25:
			return 0 // simultaneous burst: tie-break stress
		case r < 0.85:
			return rng.Float64() * 3 // clustered
		default:
			return 50 + rng.Float64()*5000 // long tail: bucket stress
		}
	}

	var schedule func(at float64)
	schedule = func(at float64) {
		label := nextLabel
		nextLabel++
		slot := len(handles)
		cancel, cancelled := eng.schedule(at, func() {
			out = append(out, firing{label: label, at: eng.now()})
			// Fan out 0–3 follow-ups (supercritical, so the workload
			// sustains itself) and sometimes cancel a random slot.
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				schedule(eng.now() + delay())
			}
			if rng.Float64() < 0.2 && len(handles) > 0 {
				victim := rng.Intn(len(handles))
				if !alive[victim]() {
					return
				}
				handles[victim]()
			}
		})
		handles = append(handles, cancel)
		alive = append(alive, cancelled)
		_ = slot
	}

	start := rng.Float64() * 10
	for i := 0; i < initial; i++ {
		schedule(start + delay())
	}
	for len(out) < maxFired && eng.step() {
	}
	return out
}

func TestDifferentialCalendarVsHeap(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const initial, maxFired = 40, 4000
			cal := interpret(&calAdapter{}, seed, initial, maxFired)
			ref := interpret(&heapAdapter{}, seed, initial, maxFired)
			if len(cal) != len(ref) {
				t.Fatalf("calendar fired %d events, heap fired %d", len(cal), len(ref))
			}
			for i := range cal {
				if cal[i] != ref[i] {
					t.Fatalf("fire order diverges at event %d: calendar (label=%d, t=%g) vs heap (label=%d, t=%g)",
						i, cal[i].label, cal[i].at, ref[i].label, ref[i].at)
				}
			}
			if len(cal) < maxFired/4 {
				t.Fatalf("workload too small to be meaningful: %d events", len(cal))
			}
		})
	}
}

// TestDifferentialSimultaneousFlood pins the FIFO tie-break specifically:
// thousands of events at identical times, scheduled across several
// instants in random order, with random cancels — fire order must match
// the heap exactly (i.e. schedule order within each instant).
func TestDifferentialSimultaneousFlood(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		run := func(eng engineAPI) []firing {
			rng := rand.New(rand.NewSource(seed))
			var out []firing
			cancels := make([]func(), 0, 2048)
			for i := 0; i < 2048; i++ {
				label := i
				at := float64(rng.Intn(5)) // five distinct instants only
				cancel, _ := eng.schedule(at, func() {
					out = append(out, firing{label: label, at: eng.now()})
				})
				cancels = append(cancels, cancel)
			}
			for i := 0; i < 512; i++ {
				cancels[rng.Intn(len(cancels))]()
			}
			for eng.step() {
			}
			return out
		}
		cal := run(&calAdapter{})
		ref := run(&heapAdapter{})
		if len(cal) != len(ref) {
			t.Fatalf("seed %d: calendar fired %d, heap fired %d", seed, len(cal), len(ref))
		}
		for i := range cal {
			if cal[i] != ref[i] {
				t.Fatalf("seed %d: diverges at %d: %+v vs %+v", seed, i, cal[i], ref[i])
			}
		}
	}
}
