package sim

import (
	"errors"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(3, func(*Engine) { order = append(order, 3) })
	e.Schedule(1, func(*Engine) { order = append(order, 1) })
	e.Schedule(2, func(*Engine) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("fire order = %v, want [1 2 3]", order)
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %g, want 3", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("Fired() = %d, want 3", e.Fired())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of FIFO order: %v", order)
		}
	}
}

func TestAfter(t *testing.T) {
	var e Engine
	var at float64
	e.Schedule(2, func(en *Engine) {
		en.After(3, func(en2 *Engine) { at = en2.Now() })
	})
	e.Run()
	if at != 5 {
		t.Errorf("nested After fired at %g, want 5", at)
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	fired := false
	ev := e.Schedule(1, func(*Engine) { fired = true })
	e.Cancel(ev)
	if !ev.Cancelled() {
		t.Error("event not marked cancelled")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Double-cancel and zero-handle cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(Event{})
	if !(Event{}).Cancelled() {
		t.Error("zero handle must report Cancelled")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	var e Engine
	var order []int
	evs := make([]Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.Schedule(float64(i), func(*Engine) { order = append(order, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var fired []float64
	for _, ts := range []float64{1, 2, 3, 10} {
		ts := ts
		e.Schedule(ts, func(en *Engine) { fired = append(fired, en.Now()) })
	}
	e.RunUntil(5)
	if len(fired) != 3 {
		t.Errorf("fired %d events by t=5, want 3", len(fired))
	}
	if e.Now() != 5 {
		t.Errorf("Now() = %g, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	e.RunUntil(20)
	if len(fired) != 4 || e.Now() != 20 {
		t.Errorf("after RunUntil(20): fired=%v now=%g", fired, e.Now())
	}
}

func TestHalt(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(float64(i), func(en *Engine) {
			count++
			if count == 2 {
				en.Halt()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Errorf("fired %d events, want 2 (halted)", count)
	}
	// Run resumes after a halt.
	e.Run()
	if count != 5 {
		t.Errorf("after resume fired %d events, want 5", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Schedule(5, func(*Engine) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.Schedule(1, func(*Engine) {})
}

func TestScheduleNilHandlerPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("nil handler did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestNextEventTime(t *testing.T) {
	var e Engine
	if _, ok := e.NextEventTime(); ok {
		t.Error("empty engine reported a next event")
	}
	e.Schedule(7, func(*Engine) {})
	if ts, ok := e.NextEventTime(); !ok || ts != 7 {
		t.Errorf("NextEventTime() = %g, %v", ts, ok)
	}
}

// Property: for any set of non-negative delays, events fire in sorted time
// order and the clock never goes backwards.
func TestFireOrderQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		var e Engine
		times := make([]float64, len(raw))
		var fired []float64
		for i, r := range raw {
			times[i] = float64(r) / 10
			ts := times[i]
			e.Schedule(ts, func(en *Engine) { fired = append(fired, en.Now()) })
		}
		e.Run()
		sort.Float64s(times)
		if len(fired) != len(times) {
			return false
		}
		for i := range times {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEventBudgetStopsRunawayLoop(t *testing.T) {
	var e Engine
	e.SetEventBudget(100)
	// A buggy model: the event reschedules itself at the current instant,
	// forever. Without the budget Run would never return.
	var reschedule Handler
	reschedule = func(en *Engine) { en.Schedule(en.Now(), reschedule) }
	e.Schedule(0, reschedule)
	e.Run()
	if e.Fired() != 100 {
		t.Errorf("fired %d events, want exactly the budget of 100", e.Fired())
	}
	var be *BudgetError
	if !errors.As(e.Err(), &be) {
		t.Fatalf("Err() = %v, want *BudgetError", e.Err())
	}
	if be.Budget != 100 {
		t.Errorf("BudgetError.Budget = %d", be.Budget)
	}
	if !strings.Contains(be.Error(), "100") {
		t.Errorf("error text: %v", be)
	}
	// The refusal is sticky: further Step calls fire nothing.
	if e.Step() {
		t.Error("Step fired past an exhausted budget")
	}
}

func TestEventBudgetRunUntilTerminates(t *testing.T) {
	var e Engine
	e.SetEventBudget(10)
	var reschedule Handler
	reschedule = func(en *Engine) { en.Schedule(en.Now(), reschedule) }
	e.Schedule(0, reschedule)
	done := make(chan struct{})
	go func() {
		e.RunUntil(5) // would loop forever if Step's refusal were ignored
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunUntil spun forever on an exhausted budget")
	}
	if e.Err() == nil {
		t.Error("Err() = nil after exhaustion")
	}
}

func TestEventBudgetZeroMeansUnlimited(t *testing.T) {
	var e Engine
	for i := 0; i < 1000; i++ {
		e.Schedule(float64(i), func(*Engine) {})
	}
	e.Run()
	if e.Fired() != 1000 || e.Err() != nil {
		t.Errorf("fired=%d err=%v", e.Fired(), e.Err())
	}
}

func TestEventBudgetRaiseClearsError(t *testing.T) {
	var e Engine
	e.SetEventBudget(1)
	e.Schedule(0, func(*Engine) {})
	e.Schedule(1, func(*Engine) {})
	e.Run()
	if e.Err() == nil {
		t.Fatal("budget of 1 not exhausted by 2 events")
	}
	e.SetEventBudget(10)
	if e.Err() != nil {
		t.Error("raising the budget must clear the sticky error")
	}
	e.Run()
	if e.Fired() != 2 || e.Err() != nil {
		t.Errorf("fired=%d err=%v after raise", e.Fired(), e.Err())
	}
}
