package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"lingerlonger/internal/obs"
)

// Obs is the shared observability flag bundle every command registers:
//
//	-metrics FILE     write a JSON metrics dump (see OBSERVABILITY.md)
//	-events FILE      write a JSONL event trace
//	-cpuprofile FILE  write a pprof CPU profile
//	-memprofile FILE  write a pprof heap profile (captured at exit)
//
// Usage in a command's realMain:
//
//	var o cli.Obs
//	o.RegisterFlags()
//	flag.Parse()
//	if err := o.Start(); err != nil { return err }
//	defer o.Finish(&err)           // needs a named error return
//	... pass o.Recorder() into configs ...
//
// All four outputs are side channels: they record what a run did without
// participating in it, so enabling any of them never changes results
// (DESIGN.md §11). With none of the flags set, Recorder() returns nil and
// instrumented code pays one nil-check branch per site.
type Obs struct {
	metricsPath string
	eventsPath  string
	cpuPath     string
	memPath     string

	rec         *obs.Recorder
	reg         *obs.Registry
	sink        *obs.EventSink
	metricsFile *os.File
	eventsFile  *os.File
	cpuFile     *os.File
	started     time.Time
}

// RegisterFlags registers the four observability flags on the default
// flag set. Call before flag.Parse.
func (o *Obs) RegisterFlags() {
	flag.StringVar(&o.metricsPath, "metrics", "", "write a JSON metrics dump to `file` at exit (see OBSERVABILITY.md)")
	flag.StringVar(&o.eventsPath, "events", "", "write a JSONL event trace to `file`")
	flag.StringVar(&o.cpuPath, "cpuprofile", "", "write a pprof CPU profile to `file`")
	flag.StringVar(&o.memPath, "memprofile", "", "write a pprof heap profile to `file` at exit")
}

// MetricsEnabled reports whether -metrics was given (used by commands
// that add a metrics appendix to their report).
func (o *Obs) MetricsEnabled() bool { return o.metricsPath != "" }

// Start opens the requested outputs and begins profiling. Call after
// flag.Parse and before the run; pair with Finish.
func (o *Obs) Start() error {
	o.started = time.Now()
	if o.metricsPath != "" {
		f, err := os.Create(o.metricsPath)
		if err != nil {
			return fmt.Errorf("create metrics file: %w", err)
		}
		o.metricsFile = f
		o.reg = obs.NewRegistry()
	}
	if o.eventsPath != "" {
		f, err := os.Create(o.eventsPath)
		if err != nil {
			return fmt.Errorf("create events file: %w", err)
		}
		o.eventsFile = f
		o.sink = obs.NewEventSink(f)
		if o.reg == nil {
			// Events without metrics still need a registry: the recorder's
			// counter handles must resolve (they're just never exported).
			o.reg = obs.NewRegistry()
		}
	}
	o.rec = obs.New(o.reg, o.sink)
	if o.cpuPath != "" {
		f, err := os.Create(o.cpuPath)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("start cpu profile: %w", err)
		}
		o.cpuFile = f
	}
	return nil
}

// Recorder returns the run's recorder — nil when neither -metrics nor
// -events was given, which is the disabled fast path.
func (o *Obs) Recorder() *obs.Recorder { return o.rec }

// EnsureRegistry forces a live registry (and recorder) even when no
// -metrics flag was given. Long-running commands use it: llserve must
// answer GET /metrics whether or not an exit dump was requested. Call
// after Start; when -metrics was given the dump still happens at Finish,
// over this same registry.
func (o *Obs) EnsureRegistry() *obs.Registry {
	if o.reg == nil {
		o.reg = obs.NewRegistry()
		o.rec = obs.New(o.reg, o.sink)
	}
	return o.reg
}

// Registry returns the metric registry (nil when observability is off).
func (o *Obs) Registry() *obs.Registry { return o.reg }

// Finish stops profiles and flushes the metrics and event files. It takes
// the command's named error return by pointer so a flush failure turns a
// successful run into a failed one without masking an earlier error:
//
//	func realMain() (err error) { ...; defer o.Finish(&err); ... }
func (o *Obs) Finish(errp *error) {
	fail := func(err error) {
		if err != nil && *errp == nil {
			*errp = err
		}
	}
	if o.cpuFile != nil {
		pprof.StopCPUProfile()
		fail(o.cpuFile.Close())
		o.cpuFile = nil
	}
	if o.memPath != "" {
		f, err := os.Create(o.memPath)
		if err != nil {
			fail(fmt.Errorf("create mem profile: %w", err))
		} else {
			runtime.GC() // materialize up-to-date allocation stats
			fail(pprof.WriteHeapProfile(f))
			fail(f.Close())
		}
		o.memPath = ""
	}
	if o.sink != nil {
		fail(o.sink.Close())
		fail(o.eventsFile.Close())
		o.sink, o.eventsFile = nil, nil
	}
	if o.metricsFile != nil {
		o.reg.Gauge(obs.RunWallSeconds).Set(time.Since(o.started).Seconds())
		fail(o.reg.WriteJSON(o.metricsFile))
		fail(o.metricsFile.Close())
		o.metricsFile = nil
	}
}
