package cli

import (
	"flag"

	"lingerlonger/internal/fabric"
)

// LinkFlags returns a fabric.LinkConfig initialized to the production
// defaults with its flag surface registered on fs — the one-liner every
// command that speaks the fabric protocol (llsweep, lingerd, llserve,
// lltourney) uses instead of repeating the default-then-register dance.
// The returned pointer is updated in place when fs is parsed.
func LinkFlags(fs *flag.FlagSet) *fabric.LinkConfig {
	link := fabric.DefaultLinkConfig()
	link.RegisterFlags(fs)
	return &link
}
