package cli

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs f with stderr redirected to a pipe and returns (exit code,
// stderr text).
func capture(t *testing.T, name string, main func() error) (int, string) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	code := run(name, w, main)
	w.Close()
	out, _ := io.ReadAll(r)
	r.Close()
	return code, string(out)
}

func TestRunSuccess(t *testing.T) {
	code, out := capture(t, "x", func() error { return nil })
	if code != ExitOK || out != "" {
		t.Errorf("got (%d, %q)", code, out)
	}
}

func TestRunRuntimeError(t *testing.T) {
	code, out := capture(t, "x", func() error { return errors.New("disk on fire") })
	if code != ExitRuntime {
		t.Errorf("code = %d", code)
	}
	if out != "x: disk on fire\n" {
		t.Errorf("stderr = %q, want one-line diagnostic", out)
	}
}

func TestRunUsageError(t *testing.T) {
	code, out := capture(t, "x", func() error { return Usagef("unknown figure %q", "fig99") })
	if code != ExitUsage {
		t.Errorf("code = %d", code)
	}
	if !strings.Contains(out, `unknown figure "fig99"`) || !strings.Contains(out, "x -h") {
		t.Errorf("stderr = %q", out)
	}
}

func TestRunWrappedUsageError(t *testing.T) {
	wrapped := fmt.Errorf("parsing flags: %w", Usagef("bad"))
	if !IsUsage(wrapped) {
		t.Error("IsUsage must see through wrapping")
	}
	code, _ := capture(t, "x", func() error { return wrapped })
	if code != ExitUsage {
		t.Errorf("code = %d", code)
	}
}

func TestRunPartial(t *testing.T) {
	code, out := capture(t, "x", func() error {
		return fmt.Errorf("3 of 500 points failed: %w", ErrPartial)
	})
	if code != ExitPartial {
		t.Errorf("code = %d", code)
	}
	if !strings.Contains(out, "partial results") {
		t.Errorf("stderr = %q", out)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	code, out := capture(t, "x", func() error { panic("unhandled bug") })
	if code != ExitRuntime {
		t.Errorf("code = %d", code)
	}
	if !strings.Contains(out, "x: panic: unhandled bug") || !strings.Contains(out, "cli_test") {
		t.Errorf("stderr = %q, want panic line + stack", out)
	}
}
