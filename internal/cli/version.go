package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
)

// The shared -version flag. Every command registers it next to the obs
// flags and checks it right after flag.Parse:
//
//	cli.RegisterVersionFlag()
//	flag.Parse()
//	if cli.VersionRequested() {
//		return cli.PrintVersion("name")
//	}
//
// The output is stamped from runtime/debug.ReadBuildInfo, so a plain
// `go build` already carries the module version, VCS revision and dirty
// bit without any ldflags ceremony.

var versionRequested bool

// RegisterVersionFlag registers -version on the default flag set. Call
// before flag.Parse (once per process, like every flag registration).
func RegisterVersionFlag() {
	flag.BoolVar(&versionRequested, "version", false, "print build information and exit")
}

// VersionRequested reports whether -version was given.
func VersionRequested() bool { return versionRequested }

// PrintVersion writes the build-info report for command name to stdout
// and returns nil, so a command's realMain can `return cli.PrintVersion(...)`.
func PrintVersion(name string) error {
	WriteBuildInfo(os.Stdout, name)
	return nil
}

// WriteBuildInfo renders the build-info report: command name, module
// version, Go toolchain, platform, and — when the binary was built from a
// VCS checkout — revision, commit time and dirty state.
func WriteBuildInfo(w io.Writer, name string) {
	version := "(devel)"
	var revision, vcsTime, modified string
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.time":
				vcsTime = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
	}
	fmt.Fprintf(w, "%s %s %s %s/%s\n", name, version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	if revision != "" {
		dirty := ""
		if modified == "true" {
			dirty = " (dirty)"
		}
		fmt.Fprintf(w, "  vcs %s %s%s\n", revision, vcsTime, dirty)
	}
}
