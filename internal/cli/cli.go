// Package cli unifies how the cmd/* entry points report failure. Every
// command follows the same convention:
//
//	exit 0 — success
//	exit 1 — runtime failure, one-line diagnostic on stderr
//	exit 2 — usage error (bad flag or argument), diagnostic + usage hint
//	exit 3 — fail-soft run finished with partial results (some sweep
//	         points failed; a failure manifest names them)
//
// A command's main becomes:
//
//	func main() { cli.Run("name", realMain) }
//
// where realMain returns nil, a *UsageError (Usagef), an error wrapping
// ErrPartial, or any other error. Run also recovers a stray panic and
// reports it as a runtime failure with its stack on stderr — a raw panic
// must never be a command's user interface.
package cli

import (
	"errors"
	"fmt"
	"os"
	"runtime/debug"
)

// Exit codes of the convention above.
const (
	ExitOK      = 0
	ExitRuntime = 1
	ExitUsage   = 2
	ExitPartial = 3
)

// UsageError marks a command-line usage mistake; Run exits 2 for it.
type UsageError struct{ msg string }

// Error returns the usage message.
func (e *UsageError) Error() string { return e.msg }

// Usagef builds a *UsageError like fmt.Errorf.
func Usagef(format string, args ...any) error {
	return &UsageError{msg: fmt.Sprintf(format, args...)}
}

// IsUsage reports whether err is (or wraps) a usage error.
func IsUsage(err error) bool {
	var ue *UsageError
	return errors.As(err, &ue)
}

// ErrPartial marks a fail-soft run that completed with partial results.
// Wrap it (fmt.Errorf("...: %w", cli.ErrPartial)) to make Run exit 3
// after the command has already written its outputs and manifests.
var ErrPartial = errors.New("completed with partial results")

// Run executes main and exits the process with the conventional code.
// name prefixes every diagnostic line.
func Run(name string, main func() error) {
	os.Exit(run(name, os.Stderr, main))
}

// run is Run without the os.Exit, so tests can drive it.
func run(name string, stderr *os.File, main func() error) (code int) {
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(stderr, "%s: panic: %v\n%s", name, p, debug.Stack())
			code = ExitRuntime
		}
	}()
	err := main()
	switch {
	case err == nil:
		return ExitOK
	case IsUsage(err):
		fmt.Fprintf(stderr, "%s: %v\nRun '%s -h' for usage.\n", name, err, name)
		return ExitUsage
	case errors.Is(err, ErrPartial):
		fmt.Fprintf(stderr, "%s: %v\n", name, err)
		return ExitPartial
	default:
		fmt.Fprintf(stderr, "%s: %v\n", name, err)
		return ExitRuntime
	}
}
