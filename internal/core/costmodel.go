package core

import (
	"fmt"
	"math"
)

// MigrationCost models the cost of moving a foreign job between nodes
// (§2): fixed per-endpoint processing plus the transfer of the process
// image over the network.
//
//	Tmigr = Processing(source) + size/bandwidth + Processing(destination)
type MigrationCost struct {
	SourceProcessing float64 // seconds of process-related work at the source
	DestProcessing   float64 // seconds of process-related work at the destination
	BandwidthMbps    float64 // effective transfer bandwidth, megabits/second
}

// DefaultMigrationCost returns the paper's experimental setting: a 10 Mbps
// Ethernet throttled to an effective 3 Mbps (to bound the load migration
// places on the network), with half a second of processing at each end.
func DefaultMigrationCost() MigrationCost {
	return MigrationCost{
		SourceProcessing: 0.5,
		DestProcessing:   0.5,
		BandwidthMbps:    3,
	}
}

// Time returns the migration cost in seconds for a process image of jobMB
// megabytes. It panics on a non-positive bandwidth or negative size.
func (m MigrationCost) Time(jobMB float64) float64 {
	if m.BandwidthMbps <= 0 {
		panic(fmt.Sprintf("core: non-positive migration bandwidth %g", m.BandwidthMbps))
	}
	if jobMB < 0 {
		panic(fmt.Sprintf("core: negative job size %g", jobMB))
	}
	transfer := jobMB * 8 / m.BandwidthMbps // MB -> Mbit, over Mbps
	return m.SourceProcessing + transfer + m.DestProcessing
}

// LingerDuration returns the paper's linger duration
//
//	Tlingr = ((1 - l) / (h - l)) * Tmigr
//
// for a job on a node with local utilization h considering a destination
// with utilization l and a migration cost of tmigr seconds. When the
// destination is no better than the source (h <= l) migration can never
// pay off and the duration is +Inf. Inputs outside [0, 1] for the
// utilizations or a negative tmigr panic.
func LingerDuration(h, l, tmigr float64) float64 {
	checkUtil("h", h)
	checkUtil("l", l)
	if tmigr < 0 {
		panic(fmt.Sprintf("core: negative migration cost %g", tmigr))
	}
	if h <= l {
		return math.Inf(1)
	}
	return (1 - l) / (h - l) * tmigr
}

// MigrationBeneficial reports whether migrating after lingering tlingr
// seconds pays off for a non-idle episode of total length tnidle:
//
//	Tnidle >= Tlingr + ((1 - l) / (h - l)) * Tmigr
//
// It is the closed form of equating foreign-job CPU across the two Figure
// 1 timelines, and is exposed primarily for analysis and tests; the
// scheduler itself uses LingerDuration with the 2x episode-age predictor.
func MigrationBeneficial(tnidle, tlingr, h, l, tmigr float64) bool {
	checkUtil("h", h)
	checkUtil("l", l)
	if h <= l {
		return false
	}
	return tnidle >= tlingr+(1-l)/(h-l)*tmigr
}

// PredictEpisodeLength applies the median-remaining-lifetime heuristic to
// a non-idle episode: an episode that has lasted age seconds is predicted
// to last 2*age in total.
func PredictEpisodeLength(age float64) float64 {
	if age < 0 {
		panic(fmt.Sprintf("core: negative episode age %g", age))
	}
	return 2 * age
}

func checkUtil(name string, v float64) {
	if v < 0 || v > 1 || math.IsNaN(v) {
		panic(fmt.Sprintf("core: utilization %s=%g out of [0,1]", name, v))
	}
}
