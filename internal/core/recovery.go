package core

import "fmt"

// Failure model: the coordinator cannot distinguish a slow agent from a
// dead one, so agent health is tracked with a suspect/dead state machine
// driven by consecutive missed status ticks. A job on a dead agent is
// restored from the coordinator's last checkpointed status and charged the
// paper's §2 migration cost — the checkpoint image must be shipped to the
// new host exactly like a migrating process image.

// HealthState is one agent's position in the failure state machine.
type HealthState int

const (
	// Healthy: the last tick succeeded.
	Healthy HealthState = iota
	// Suspect: at least SuspectAfter consecutive ticks missed — the agent
	// receives no new work but its job is not yet recovered.
	Suspect
	// Dead: at least DeadAfter consecutive ticks missed — the agent's jobs
	// are recovered and rescheduled.
	Dead
)

// String names the state.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("HealthState(%d)", int(s))
}

// HealthPolicy sets the missed-tick thresholds of the state machine.
type HealthPolicy struct {
	SuspectAfter int // consecutive misses before Suspect
	DeadAfter    int // consecutive misses before Dead
}

// DefaultHealthPolicy suspects after 2 missed ticks and declares death
// after 5.
func DefaultHealthPolicy() HealthPolicy {
	return HealthPolicy{SuspectAfter: 2, DeadAfter: 5}
}

// Validate checks threshold sanity.
func (p HealthPolicy) Validate() error {
	if p.SuspectAfter < 1 {
		return fmt.Errorf("core: SuspectAfter %d < 1", p.SuspectAfter)
	}
	if p.DeadAfter < p.SuspectAfter {
		return fmt.Errorf("core: DeadAfter %d < SuspectAfter %d", p.DeadAfter, p.SuspectAfter)
	}
	return nil
}

// HealthTracker runs the suspect/dead state machine for one agent. The
// zero value is not usable; construct with NewHealthTracker.
type HealthTracker struct {
	policy HealthPolicy
	missed int
	state  HealthState
}

// NewHealthTracker returns a tracker in the Healthy state. It panics on an
// invalid policy (a construction-time programming error).
func NewHealthTracker(p HealthPolicy) *HealthTracker {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &HealthTracker{policy: p}
}

// Observe records the outcome of one tick and returns the new state. A
// success resets the machine to Healthy from any state — a dead agent that
// answers again has resurrected (the caller reconciles its stale state).
func (t *HealthTracker) Observe(ok bool) HealthState {
	if ok {
		t.missed = 0
		t.state = Healthy
		return t.state
	}
	t.missed++
	switch {
	case t.missed >= t.policy.DeadAfter:
		t.state = Dead
	case t.missed >= t.policy.SuspectAfter:
		t.state = Suspect
	}
	return t.state
}

// State returns the current state without observing anything.
func (t *HealthTracker) State() HealthState { return t.state }

// Missed returns the current consecutive-miss count.
func (t *HealthTracker) Missed() int { return t.missed }

// RecoveryCost returns the time charged to restore a checkpointed job of
// jobMB megabytes onto a new host after its agent died. The checkpoint
// image travels the same network and pays the same per-endpoint processing
// as a live migration, so the charge is the full §2 Tmigr.
func RecoveryCost(m MigrationCost, jobMB float64) float64 {
	return m.Time(jobMB)
}
