package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPolicyStringAndParse(t *testing.T) {
	for _, p := range Policies {
		s := p.String()
		got, err := ParsePolicy(s)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", s, err)
		}
		if got != p {
			t.Errorf("round trip %v -> %q -> %v", p, s, got)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus input")
	}
	if got, _ := ParsePolicy("ll"); got != LingerLonger {
		t.Error("lower-case abbreviation rejected")
	}
	if s := Policy(99).String(); s != "Policy(99)" {
		t.Errorf("unknown policy String() = %q", s)
	}
}

func TestPolicyLingers(t *testing.T) {
	if !LingerLonger.Lingers() || !LingerForever.Lingers() {
		t.Error("LL/LF should linger")
	}
	if ImmediateEviction.Lingers() || PauseAndMigrate.Lingers() {
		t.Error("IE/PM should not linger")
	}
}

func TestMigrationCostPaperSetting(t *testing.T) {
	// 8 MB over an effective 3 Mbps plus 0.5 s handling at each end:
	// 8*8/3 + 1 = 22.33 s.
	m := DefaultMigrationCost()
	got := m.Time(8)
	want := 8.0*8/3 + 1
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Time(8MB) = %g, want %g", got, want)
	}
	if got := m.Time(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("Time(0) = %g, want fixed costs only", got)
	}
}

func TestMigrationCostPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero bandwidth did not panic")
			}
		}()
		MigrationCost{BandwidthMbps: 0}.Time(8)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative size did not panic")
			}
		}()
		DefaultMigrationCost().Time(-1)
	}()
}

func TestLingerDuration(t *testing.T) {
	// h=0.2, l=0: Tlingr = (1/0.2)*Tmigr = 5*Tmigr.
	if got, want := LingerDuration(0.2, 0, 10), 50.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("LingerDuration(0.2, 0, 10) = %g, want %g", got, want)
	}
	// Busier destination than source: never migrate.
	if got := LingerDuration(0.1, 0.5, 10); !math.IsInf(got, 1) {
		t.Errorf("LingerDuration(h<l) = %g, want +Inf", got)
	}
	if got := LingerDuration(0.3, 0.3, 10); !math.IsInf(got, 1) {
		t.Errorf("LingerDuration(h==l) = %g, want +Inf", got)
	}
	// Zero migration cost: leave immediately.
	if got := LingerDuration(0.5, 0, 0); got != 0 {
		t.Errorf("LingerDuration with free migration = %g, want 0", got)
	}
}

func TestLingerDurationPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { LingerDuration(-0.1, 0, 1) },
		func() { LingerDuration(0.5, 1.5, 1) },
		func() { LingerDuration(0.5, 0, -1) },
		func() { PredictEpisodeLength(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid input did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPredictEpisodeLength(t *testing.T) {
	if got := PredictEpisodeLength(30); got != 60 {
		t.Errorf("PredictEpisodeLength(30) = %g, want 60 (2x median-remaining-life)", got)
	}
	if got := PredictEpisodeLength(0); got != 0 {
		t.Errorf("PredictEpisodeLength(0) = %g", got)
	}
}

// completionTimes evaluates the two Figure 1 timelines with the fluid
// model: a foreign job needing work CPU-seconds on a node that is non-idle
// (utilization h) for tnidle seconds then idle (utilization l), versus
// lingering tlingr then migrating (cost tmigr, no progress) to an idle
// node at utilization l.
func completionTimes(work, tnidle, tlingr, h, l, tmigr float64) (stay, migrate float64) {
	// Stay: rate (1-h) during the episode, then (1-l).
	stay = tnidle + (work-(1-h)*tnidle)/(1-l)
	// Migrate at tlingr: progress (1-h)*tlingr, then a dead interval tmigr,
	// then rate (1-l) on the destination.
	migrate = tlingr + tmigr + (work-(1-h)*tlingr)/(1-l)
	return stay, migrate
}

// Property: MigrationBeneficial agrees with the fluid timeline evaluation
// for arbitrary parameters — the §2 derivation holds.
func TestMigrationBeneficialMatchesTimelineQuick(t *testing.T) {
	f := func(hRaw, lRaw, nidleRaw, lingrRaw, migrRaw uint16) bool {
		h := 0.05 + float64(hRaw%90)/100     // [0.05, 0.95)
		l := float64(lRaw%1000) / 1000 * 0.9 // [0, 0.9)
		tmigr := 1 + float64(migrRaw%300)/10 // [1, 31)
		tnidle := 1 + float64(nidleRaw%5000) // [1, 5001)
		tlingr := float64(lingrRaw) / 65535 * tnidle
		// Work large enough that completion is after the episode either way.
		work := (1 - l) * (tnidle + tmigr) * 3

		stay, migrate := completionTimes(work, tnidle, tlingr, h, l, tmigr)
		wantBeneficial := migrate <= stay
		got := MigrationBeneficial(tnidle, tlingr, h, l, tmigr)
		if h <= l {
			// Model says never beneficial; the fluid evaluation agrees up
			// to boundary ties.
			return !got
		}
		// Tolerate boundary ties where the two sides are within rounding.
		if math.Abs(stay-migrate) < 1e-6 {
			return true
		}
		return got == wantBeneficial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: lingering exactly Tlingr with the 2x predictor is the
// break-even point: an episode of length 2*Tlingr makes migration exactly
// beneficial, anything shorter does not.
func TestLingerDurationBreakEvenQuick(t *testing.T) {
	f := func(hRaw, lRaw, migrRaw uint16) bool {
		h := 0.10 + float64(hRaw%85)/100 // [0.10, 0.95)
		l := float64(lRaw) / 65535 * (h - 0.05)
		tmigr := 1 + float64(migrRaw%300)/10
		tl := LingerDuration(h, l, tmigr)
		if math.IsInf(tl, 1) {
			return false // h > l by construction, must be finite
		}
		// Predicted episode = 2*age; at age = Tlingr the predicted episode
		// satisfies the benefit inequality with equality.
		if !MigrationBeneficial(2*tl, tl, h, l, tmigr-1e-9) {
			return false
		}
		shorter := tl * 0.9
		return !MigrationBeneficial(2*shorter, shorter, h, l, tmigr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDeciderShouldMigrate(t *testing.T) {
	d := Decider{Cost: DefaultMigrationCost()}
	tmigr := d.Cost.Time(8)
	tl := LingerDuration(0.2, 0, tmigr)

	if d.ShouldMigrate(LingerForever, 1e9, 0.9, 0, 8) {
		t.Error("LF migrated")
	}
	if !d.ShouldMigrate(ImmediateEviction, 0, 0.2, 0, 8) {
		t.Error("IE did not migrate immediately")
	}
	if !d.ShouldMigrate(PauseAndMigrate, 0, 0.2, 0, 8) {
		t.Error("PM (post-pause) did not migrate")
	}
	if d.ShouldMigrate(LingerLonger, tl*0.5, 0.2, 0, 8) {
		t.Error("LL migrated before the linger duration")
	}
	if !d.ShouldMigrate(LingerLonger, tl*1.01, 0.2, 0, 8) {
		t.Error("LL did not migrate after the linger duration")
	}
	// Destination no better: LL stays forever.
	if d.ShouldMigrate(LingerLonger, 1e12, 0.2, 0.5, 8) {
		t.Error("LL migrated to a busier node")
	}
	if got := d.LingerDeadline(0.2, 0, 8); math.Abs(got-tl) > 1e-9 {
		t.Errorf("LingerDeadline = %g, want %g", got, tl)
	}
}

func TestDeciderUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown policy did not panic")
		}
	}()
	Decider{}.ShouldMigrate(Policy(42), 0, 0.5, 0, 8)
}

func TestHealthPolicyValidate(t *testing.T) {
	if err := DefaultHealthPolicy().Validate(); err != nil {
		t.Errorf("default policy invalid: %v", err)
	}
	for _, p := range []HealthPolicy{
		{SuspectAfter: 0, DeadAfter: 5},
		{SuspectAfter: -1, DeadAfter: 5},
		{SuspectAfter: 3, DeadAfter: 2},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %+v accepted", p)
		}
	}
}

func TestHealthTrackerStateMachine(t *testing.T) {
	tr := NewHealthTracker(HealthPolicy{SuspectAfter: 2, DeadAfter: 4})
	if tr.State() != Healthy {
		t.Fatalf("initial state = %v", tr.State())
	}
	// Single misses below the threshold stay Healthy.
	if st := tr.Observe(false); st != Healthy {
		t.Errorf("after 1 miss: %v", st)
	}
	if st := tr.Observe(false); st != Suspect {
		t.Errorf("after 2 misses: %v", st)
	}
	if st := tr.Observe(false); st != Suspect {
		t.Errorf("after 3 misses: %v", st)
	}
	if st := tr.Observe(false); st != Dead {
		t.Errorf("after 4 misses: %v", st)
	}
	if tr.Missed() != 4 {
		t.Errorf("missed = %d, want 4", tr.Missed())
	}
	// Dead is not terminal: a success resurrects from any state.
	if st := tr.Observe(true); st != Healthy {
		t.Errorf("after resurrection: %v", st)
	}
	if tr.Missed() != 0 {
		t.Errorf("missed after success = %d", tr.Missed())
	}
	// A success mid-streak resets the consecutive count entirely.
	tr.Observe(false)
	tr.Observe(true)
	if st := tr.Observe(false); st != Healthy {
		t.Errorf("one miss after reset: %v", st)
	}
}

func TestHealthTrackerPanicsOnInvalidPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid policy accepted")
		}
	}()
	NewHealthTracker(HealthPolicy{SuspectAfter: 5, DeadAfter: 2})
}

func TestHealthStateString(t *testing.T) {
	for want, s := range map[string]HealthState{
		"healthy": Healthy, "suspect": Suspect, "dead": Dead,
	} {
		if s.String() != want {
			t.Errorf("String() = %q, want %q", s.String(), want)
		}
	}
	if HealthState(42).String() == "" {
		t.Error("unknown state stringifies empty")
	}
}

// Recovering a checkpointed job costs exactly the §2 migration time: the
// checkpoint image ships like a live migration.
func TestRecoveryCostEqualsMigration(t *testing.T) {
	m := DefaultMigrationCost()
	for _, mb := range []float64{0, 8, 24, 64} {
		if got, want := RecoveryCost(m, mb), m.Time(mb); got != want {
			t.Errorf("RecoveryCost(%gMB) = %g, want %g", mb, got, want)
		}
	}
}
