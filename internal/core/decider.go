package core

// Decider makes migration decisions for foreign jobs on non-idle nodes.
// The zero value uses a zero migration cost; construct with a real
// MigrationCost for meaningful decisions.
type Decider struct {
	Cost MigrationCost
}

// ShouldMigrate reports whether a foreign job of jobMB megabytes that has
// lingered for age seconds into a non-idle episode with average local
// utilization h should migrate to an idle candidate node with utilization
// l under policy p.
//
//   - LF never migrates.
//   - IE migrates immediately.
//   - LL migrates once age reaches the cost-model linger duration — by the
//     2x-age predictor, the point where the predicted episode length makes
//     migration beneficial.
//   - PM is time-driven (fixed pause), which the cluster scheduler handles
//     with a timer; once the pause has expired ShouldMigrate returns true.
func (d Decider) ShouldMigrate(p Policy, age, h, l, jobMB float64) bool {
	switch p {
	case LingerForever:
		return false
	case ImmediateEviction, PauseAndMigrate:
		return true
	case LingerLonger:
		return age >= LingerDuration(h, l, d.Cost.Time(jobMB))
	default:
		panic("core: unknown policy " + p.String())
	}
}

// LingerDeadline returns the linger duration for a job of jobMB megabytes
// on a node at utilization h with a best candidate destination at
// utilization l (possibly +Inf when migration can never pay off).
func (d Decider) LingerDeadline(h, l, jobMB float64) float64 {
	return LingerDuration(h, l, d.Cost.Time(jobMB))
}
