// Package core implements the paper's primary contribution: the
// Linger-Longer family of cycle-stealing scheduling policies and the cost
// model that decides how long a foreign job should linger on a newly-busy
// node before migrating (§2).
//
// The model compares two timelines of a non-idle episode — staying put at
// low priority versus migrating after a linger interval — and equates the
// foreign CPU work done in each. With h the local utilization of the busy
// node, l the utilization of the candidate idle node, and Tmigr the
// migration cost, migration pays off only if the episode lasts at least
//
//	Tnidle >= Tlingr + ((1 - l) / (h - l)) * Tmigr
//
// Because the episode's remaining length is unknown, the paper applies the
// median-remaining-lifetime observation of Harchol-Balter & Downey and
// Leland & Ott — a process that has run for T is expected to run for 2T in
// total — to the episode: substituting Tnidle = 2*Tlingr yields the linger
// duration
//
//	Tlingr = ((1 - l) / (h - l)) * Tmigr
//
// after which a still-busy node should give the job up.
package core

import "fmt"

// Policy selects a foreign-job scheduling discipline for a shared cluster.
type Policy int

const (
	// LingerLonger (LL) keeps the foreign job running at low priority when
	// the owner returns, migrating only after the cost-model linger
	// duration expires and an idle node is available.
	LingerLonger Policy = iota
	// LingerForever (LF) never migrates: the job stays on its node for
	// better or worse, maximizing cluster throughput at the expense of the
	// response time of jobs stuck on busy nodes.
	LingerForever
	// ImmediateEviction (IE) migrates the foreign job as soon as the node
	// becomes non-idle — the classic Condor/NOW social contract.
	ImmediateEviction
	// PauseAndMigrate (PM) suspends the foreign job in place for a fixed
	// interval when the node becomes non-idle, hoping the owner leaves
	// again, and migrates only when the pause expires.
	PauseAndMigrate
	// FractionalShare (FS) never migrates or evicts: when the owner is
	// active, the foreign job takes an equal fractional CPU share instead
	// of dropping to background priority — the dynamic fractional resource
	// scheduling discipline of Casanova et al., added beside the paper's
	// four policies. It trades a bounded owner slowdown for steady foreign
	// progress.
	FractionalShare
)

// Policies lists the paper's four disciplines in its presentation order.
// FractionalShare is deliberately absent: the Figure 7/8 drivers iterate
// this slice and must keep reproducing the paper; the scenario registry
// (internal/scenario) is where the extended policy set lives.
var Policies = []Policy{LingerLonger, LingerForever, ImmediateEviction, PauseAndMigrate}

// String returns the paper's abbreviation for the policy.
func (p Policy) String() string {
	switch p {
	case LingerLonger:
		return "LL"
	case LingerForever:
		return "LF"
	case ImmediateEviction:
		return "IE"
	case PauseAndMigrate:
		return "PM"
	case FractionalShare:
		return "FS"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Lingers reports whether the policy allows foreign jobs to keep running
// on non-idle nodes.
func (p Policy) Lingers() bool {
	return p == LingerLonger || p == LingerForever || p == FractionalShare
}

// ParsePolicy converts an abbreviation ("LL", "LF", "IE", "PM", "FS",
// case insensitive) into a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "LL", "ll":
		return LingerLonger, nil
	case "LF", "lf":
		return LingerForever, nil
	case "IE", "ie":
		return ImmediateEviction, nil
	case "PM", "pm":
		return PauseAndMigrate, nil
	case "FS", "fs":
		return FractionalShare, nil
	default:
		return 0, fmt.Errorf("core: unknown policy %q (want LL, LF, IE, PM, or FS)", s)
	}
}
