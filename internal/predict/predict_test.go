package predict

import (
	"math"
	"testing"
	"testing/quick"

	"lingerlonger/internal/stats"
	"lingerlonger/internal/trace"
)

func TestMedianLife(t *testing.T) {
	var p MedianLife
	if got := p.PredictRemaining(30); got != 30 {
		t.Errorf("PredictRemaining(30) = %g, want 30 (2x rule)", got)
	}
	if got := p.PredictRemaining(0); got != 0 {
		t.Errorf("PredictRemaining(0) = %g", got)
	}
	p.Record(100) // no-op, must not panic
}

func TestMedianLifePanicsOnNegativeAge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative age did not panic")
		}
	}()
	MedianLife{}.PredictRemaining(-1)
}

func TestFixedHorizon(t *testing.T) {
	p := FixedHorizon{Horizon: 60}
	if got := p.PredictRemaining(20); got != 40 {
		t.Errorf("PredictRemaining(20) = %g, want 40", got)
	}
	if got := p.PredictRemaining(90); got != 0 {
		t.Errorf("PredictRemaining(90) = %g, want 0 (floored)", got)
	}
}

func TestEmpiricalFallsBackUntilTrained(t *testing.T) {
	var e Empirical
	if got := e.PredictRemaining(25); got != 25 {
		t.Errorf("untrained Empirical = %g, want 2x fallback 25", got)
	}
	for i := 0; i < 30; i++ {
		e.Record(100)
	}
	if e.N() != 30 {
		t.Errorf("N() = %d", e.N())
	}
	// All episodes last exactly 100: at age 25 the remaining is 75.
	if got := e.PredictRemaining(25); math.Abs(got-75) > 1e-9 {
		t.Errorf("trained Empirical at age 25 = %g, want 75", got)
	}
	// Beyond anything seen: sane non-negative output.
	if got := e.PredictRemaining(500); got < 0 {
		t.Errorf("prediction beyond data = %g", got)
	}
}

func TestEmpiricalRecordPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative length did not panic")
		}
	}()
	(&Empirical{}).Record(-1)
}

// Property: all predictors return non-negative predictions for any
// non-negative age.
func TestPredictorsNonNegativeQuick(t *testing.T) {
	var e Empirical
	rng := stats.NewRNG(1)
	for i := 0; i < 100; i++ {
		e.Record(rng.ExpFloat64() * 50)
	}
	preds := []Predictor{MedianLife{}, FixedHorizon{Horizon: 40}, &e}
	f := func(raw uint16) bool {
		age := float64(raw) / 10
		for _, p := range preds {
			if p.PredictRemaining(age) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// For exponential lifetimes the memoryless property makes the true
// remaining life constant: the 2x rule over-predicts at large ages and
// the trained empirical predictor beats it.
func TestEvaluateExponentialFavorsEmpirical(t *testing.T) {
	rng := stats.NewRNG(2)
	lengths := make([]float64, 5000)
	var e Empirical
	for i := range lengths {
		lengths[i] = rng.ExpFloat64() * 100
		e.Record(lengths[i])
	}
	ages := []float64{10, 50, 100, 200, 400}
	medianErr, err := Evaluate(MedianLife{}, lengths, ages)
	if err != nil {
		t.Fatal(err)
	}
	empErr, err := Evaluate(&e, lengths, ages)
	if err != nil {
		t.Fatal(err)
	}
	if empErr >= medianErr {
		t.Errorf("on exponential lifetimes Empirical (%.3f) should beat the 2x rule (%.3f)",
			empErr, medianErr)
	}
}

// For heavy-tailed (Pareto-like) lifetimes — the distribution
// Harchol-Balter & Downey observed for process lifetimes — the 2x rule is
// close to optimal: remaining life is proportional to age.
func TestEvaluateParetoFavorsMedianRule(t *testing.T) {
	rng := stats.NewRNG(3)
	// Pareto(alpha=1.1, xm=2): P(L > x) = (xm/x)^alpha. Median remaining
	// life at age a is a*(2^(1/alpha)-1) ~ 0.88a: nearly the 2x rule.
	lengths := make([]float64, 20000)
	for i := range lengths {
		u := rng.Float64()
		lengths[i] = 2 / math.Pow(1-u, 1/1.1)
	}
	ages := []float64{5, 10, 20, 40, 80}
	medianErr, err := Evaluate(MedianLife{}, lengths, ages)
	if err != nil {
		t.Fatal(err)
	}
	fixedErr, err := Evaluate(FixedHorizon{Horizon: 30}, lengths, ages)
	if err != nil {
		t.Fatal(err)
	}
	if medianErr > 0.35 {
		t.Errorf("2x rule error on Pareto lifetimes = %.3f, want small", medianErr)
	}
	if medianErr >= fixedErr {
		t.Errorf("2x rule (%.3f) should beat a fixed horizon (%.3f) on heavy tails",
			medianErr, fixedErr)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(MedianLife{}, nil, []float64{1}); err == nil {
		t.Error("empty lengths accepted")
	}
	if _, err := Evaluate(MedianLife{}, []float64{1}, nil); err == nil {
		t.Error("empty ages accepted")
	}
	if _, err := Evaluate(MedianLife{}, []float64{1, 2}, []float64{100}); err == nil {
		t.Error("no surviving episodes should error")
	}
}

// Validation of the paper's premise on our own substrate: non-idle
// episodes extracted from the synthetic traces have age-proportional
// median remaining life within a reasonable band, so the 2x-age rule is a
// sensible linger predictor here too.
func TestTwoXRuleHoldsOnSyntheticEpisodes(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.Days = 7
	corpus, err := trace.GenerateCorpus(cfg, 6, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	var lengths []float64
	for _, tr := range corpus {
		for _, ep := range trace.Episodes(tr.IdleMask(), tr.Interval) {
			if !ep.Idle {
				lengths = append(lengths, ep.Duration())
			}
		}
	}
	if len(lengths) < 100 {
		t.Fatalf("only %d non-idle episodes", len(lengths))
	}
	truth := MedianRemaining(lengths, []float64{60, 120, 300, 600})
	for age, rem := range truth {
		ratio := rem / age
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("median remaining at age %.0f = %.0f (ratio %.2f); the 2x rule premise breaks",
				age, rem, ratio)
		}
	}
}
