// Package predict implements episode-length predictors for the linger
// decision (§2 of the paper).
//
// When a foreign job lingers on a newly-busy node, the scheduler must
// guess how much longer the non-idle episode will last: migration pays
// off only if the predicted remainder exceeds ((1-l)/(h-l))*Tmigr. The
// paper adopts the median-remaining-lifetime observation of
// Harchol-Balter & Downey and Leland & Ott — a process (here: an episode)
// that has lasted T is predicted to last 2T in total, i.e. the remaining
// life equals the current age. This package provides that predictor plus
// alternatives used by the ablation benchmarks, and a validation harness
// that measures how well each predictor fits an empirical episode-length
// distribution.
package predict

import (
	"fmt"
	"sort"
)

// Predictor estimates the remaining duration of a non-idle episode given
// its current age. Implementations may learn from completed episodes via
// Record.
type Predictor interface {
	// PredictRemaining returns the predicted remaining duration, seconds,
	// of an episode that has already lasted age seconds.
	PredictRemaining(age float64) float64
	// Record informs the predictor of a completed episode's total length.
	Record(length float64)
}

// MedianLife is the paper's predictor: the remaining life of an episode
// equals its age (total = 2*age). It is stateless; Record is a no-op.
type MedianLife struct{}

// PredictRemaining returns age.
func (MedianLife) PredictRemaining(age float64) float64 {
	if age < 0 {
		panic(fmt.Sprintf("predict: negative age %g", age))
	}
	return age
}

// Record is a no-op: the 2x rule does not learn.
func (MedianLife) Record(float64) {}

// FixedHorizon predicts that every episode lasts exactly Horizon seconds:
// the remaining life is Horizon - age, floored at zero. It models a
// scheduler with a static timeout (the spirit of Pause-and-Migrate).
type FixedHorizon struct {
	Horizon float64
}

// PredictRemaining returns max(0, Horizon-age).
func (f FixedHorizon) PredictRemaining(age float64) float64 {
	if age < 0 {
		panic(fmt.Sprintf("predict: negative age %g", age))
	}
	if rem := f.Horizon - age; rem > 0 {
		return rem
	}
	return 0
}

// Record is a no-op.
func (FixedHorizon) Record(float64) {}

// Empirical predicts the median remaining life from the episodes recorded
// so far: given age a, it returns median{L - a : L > a} over recorded
// lengths L, falling back to the 2x rule until enough data accumulates.
// The zero value is ready to use.
type Empirical struct {
	lengths []float64
	sorted  bool
	// MinSamples is the number of recorded episodes required before the
	// empirical estimate replaces the 2x fallback (default 20).
	MinSamples int
}

// Record adds a completed episode length.
func (e *Empirical) Record(length float64) {
	if length < 0 {
		panic(fmt.Sprintf("predict: negative episode length %g", length))
	}
	e.lengths = append(e.lengths, length)
	e.sorted = false
}

// N returns the number of recorded episodes.
func (e *Empirical) N() int { return len(e.lengths) }

// PredictRemaining returns the empirical median remaining life at age.
func (e *Empirical) PredictRemaining(age float64) float64 {
	if age < 0 {
		panic(fmt.Sprintf("predict: negative age %g", age))
	}
	min := e.MinSamples
	if min <= 0 {
		min = 20
	}
	if len(e.lengths) < min {
		return age // 2x-rule fallback
	}
	if !e.sorted {
		sort.Float64s(e.lengths)
		e.sorted = true
	}
	// Episodes still alive at this age.
	i := sort.SearchFloat64s(e.lengths, age)
	alive := e.lengths[i:]
	if len(alive) == 0 {
		// Older than anything seen: predict the overall median once more.
		return e.lengths[len(e.lengths)/2]
	}
	return alive[len(alive)/2] - age
}

// MedianRemaining computes the true median remaining life at each age
// from a sample of episode lengths — the curve a perfect median predictor
// would produce. Ages with fewer than 5 surviving episodes are omitted.
func MedianRemaining(lengths []float64, ages []float64) map[float64]float64 {
	sorted := make([]float64, len(lengths))
	copy(sorted, lengths)
	sort.Float64s(sorted)
	out := make(map[float64]float64, len(ages))
	for _, age := range ages {
		i := sort.SearchFloat64s(sorted, age)
		alive := sorted[i:]
		if len(alive) < 5 {
			continue
		}
		out[age] = alive[len(alive)/2] - age
	}
	return out
}

// Evaluate scores a predictor against a sample of episode lengths: for
// each probe age it compares the prediction with the true median
// remaining life and returns the mean absolute relative error. Smaller is
// better; the paper's 2x rule scores well exactly when episode lengths
// have the heavy-tailed, age-proportional-residual shape Harchol-Balter &
// Downey observed.
func Evaluate(p Predictor, lengths []float64, ages []float64) (float64, error) {
	if len(lengths) == 0 || len(ages) == 0 {
		return 0, fmt.Errorf("predict: empty evaluation input")
	}
	truth := MedianRemaining(lengths, ages)
	if len(truth) == 0 {
		return 0, fmt.Errorf("predict: no age had enough surviving episodes")
	}
	var sum float64
	var n int
	for age, want := range truth {
		got := p.PredictRemaining(age)
		denom := want
		if denom < 1e-9 {
			denom = 1e-9
		}
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		sum += diff / denom
		n++
	}
	return sum / float64(n), nil
}
