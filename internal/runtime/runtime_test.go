package runtime

import (
	"math"
	"testing"

	"lingerlonger/internal/core"
)

// quietOwner is always idle with plentiful memory.
func quietOwner(t *testing.T) *ScriptedOwner {
	t.Helper()
	o, err := NewScriptedOwner([]OwnerPhase{{Duration: 3600, Util: 0.02, FreeMB: 40}})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// busyAfter returns an owner idle for lead seconds, then persistently
// active at util.
func busyAfter(t *testing.T, lead, util float64) *ScriptedOwner {
	t.Helper()
	o, err := NewScriptedOwner([]OwnerPhase{
		{Duration: lead, Util: 0.02, FreeMB: 40},
		{Duration: 1e6, Util: util, Keyboard: true, FreeMB: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestScriptedOwnerValidation(t *testing.T) {
	if _, err := NewScriptedOwner(nil); err == nil {
		t.Error("empty script accepted")
	}
	if _, err := NewScriptedOwner([]OwnerPhase{{Duration: 0}}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := NewScriptedOwner([]OwnerPhase{{Duration: 1, Util: 2}}); err == nil {
		t.Error("utilization > 1 accepted")
	}
	if _, err := NewScriptedOwner([]OwnerPhase{{Duration: 1, FreeMB: -1}}); err == nil {
		t.Error("negative memory accepted")
	}
}

func TestScriptedOwnerRecruitment(t *testing.T) {
	o := busyAfter(t, 120, 0.5)
	if !o.IdleAt(100) {
		t.Error("owner should be idle during the lead")
	}
	if o.IdleAt(125) {
		t.Error("owner should be non-idle once active")
	}
	// Back within the recruitment delay after activity started at 120: a
	// time like 121 has activity in its trailing window.
	if o.IdleAt(121) {
		t.Error("recruitment threshold should mark 121 non-idle")
	}
}

func TestScriptedOwnerCycles(t *testing.T) {
	o, err := NewScriptedOwner([]OwnerPhase{
		{Duration: 10, Util: 0.05, FreeMB: 40},
		{Duration: 10, Util: 0.80, FreeMB: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.UtilizationAt(5); got != 0.05 {
		t.Errorf("UtilizationAt(5) = %g", got)
	}
	if got := o.UtilizationAt(15); got != 0.80 {
		t.Errorf("UtilizationAt(15) = %g", got)
	}
	if got := o.UtilizationAt(25); got != 0.05 { // wrapped
		t.Errorf("UtilizationAt(25) = %g, want wrap", got)
	}
}

func TestAgentRunsJobAtLowPriority(t *testing.T) {
	a := NewAgent("w1", quietOwner(t), 64)
	if err := a.Assign(&Job{ID: 1, DemandS: 10, SizeMB: 8}); err != nil {
		t.Fatal(err)
	}
	var done bool
	for i := 0; i < 20 && !done; i++ {
		st, err := a.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		done = st.JobDone
	}
	if !done {
		t.Fatal("job did not complete on an idle agent")
	}
	// On a 2% loaded owner, 10 CPU-s take ~10.2 wall seconds.
	if a.Now() < 10 || a.Now() > 13 {
		t.Errorf("completion at %g, want ~10.2", a.Now())
	}
	if got := a.DrainCompleted(); len(got) != 1 || got[0].ID != 1 {
		t.Errorf("DrainCompleted() = %+v", got)
	}
}

func TestAgentProgressSlowsUnderOwnerLoad(t *testing.T) {
	a := NewAgent("w1", busyAfter(t, 0.5, 0.75), 64)
	if err := a.Assign(&Job{ID: 1, DemandS: 5, SizeMB: 8}); err != nil {
		t.Fatal(err)
	}
	var progress float64
	for i := 0; i < 10; i++ {
		st, err := a.Tick(1)
		if err != nil {
			t.Fatal(err)
		}
		progress = st.JobProgress
	}
	// 10 s at ~25% availability: ~2.5-3 CPU-s of progress.
	if progress < 1.5 || progress > 4.5 {
		t.Errorf("progress after 10 s at 75%% owner load = %g, want ~2.5", progress)
	}
}

func TestAgentAssignRejectsDoubleAndOversized(t *testing.T) {
	a := NewAgent("w1", quietOwner(t), 64)
	if err := a.Assign(&Job{ID: 1, DemandS: 100, SizeMB: 8}); err != nil {
		t.Fatal(err)
	}
	if err := a.Assign(&Job{ID: 2, DemandS: 100, SizeMB: 8}); err == nil {
		t.Error("second job accepted")
	}
	b := NewAgent("w2", quietOwner(t), 64)
	if err := b.Assign(&Job{ID: 3, DemandS: 100, SizeMB: 60}); err == nil {
		t.Error("oversized job accepted (owner holds 24 MB)")
	}
	if err := b.Assign(&Job{ID: 4, DemandS: 0, SizeMB: 8}); err == nil {
		t.Error("zero-demand job accepted")
	}
}

func TestAgentRevokePreservesProgress(t *testing.T) {
	a := NewAgent("w1", quietOwner(t), 64)
	if err := a.Assign(&Job{ID: 7, DemandS: 100, SizeMB: 8}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := a.Tick(1); err != nil {
			t.Fatal(err)
		}
	}
	j, err := a.Revoke(7)
	if err != nil {
		t.Fatal(err)
	}
	if j.Progress < 4.5 || j.Progress > 5 {
		t.Errorf("revoked progress = %g, want ~4.9", j.Progress)
	}
	if a.HasJob() {
		t.Error("agent still hosts a job after revoke")
	}
	// The surrendered state stays staged until acknowledged, so a retried
	// revoke (lost reply) returns the same state instead of failing.
	again, err := a.Revoke(7)
	if err != nil {
		t.Fatalf("retried revoke failed: %v", err)
	}
	if again.ID != j.ID || again.Progress != j.Progress {
		t.Errorf("retried revoke = %+v, want %+v", again, j)
	}
	if err := a.Ack([]int{7}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Revoke(7); err == nil {
		t.Error("revoke after acknowledgment accepted")
	}
}

func TestAgentPauseStopsProgress(t *testing.T) {
	a := NewAgent("w1", quietOwner(t), 64)
	if err := a.Assign(&Job{ID: 3, DemandS: 100, SizeMB: 8}); err != nil {
		t.Fatal(err)
	}
	if err := a.Pause(3, true); err != nil {
		t.Fatal(err)
	}
	st, err := a.Tick(5)
	if err != nil {
		t.Fatal(err)
	}
	if st.JobProgress != 0 {
		t.Errorf("paused job progressed to %g", st.JobProgress)
	}
	if err := a.Pause(3, false); err != nil {
		t.Fatal(err)
	}
	st, err = a.Tick(5)
	if err != nil {
		t.Fatal(err)
	}
	if st.JobProgress <= 0 {
		t.Error("resumed job made no progress")
	}
	if err := a.Pause(99, true); err == nil {
		t.Error("pausing unknown job accepted")
	}
}

func TestAgentTickRejectsBadDt(t *testing.T) {
	a := NewAgent("w1", quietOwner(t), 64)
	if _, err := a.Tick(0); err == nil {
		t.Error("zero dt accepted")
	}
}

// newLocalCluster builds a coordinator over in-process agents.
func newLocalCluster(t *testing.T, cfg CoordinatorConfig, owners []*ScriptedOwner) *Coordinator {
	t.Helper()
	clients := make([]AgentClient, len(owners))
	for i, o := range owners {
		clients[i] = LocalClient{Agent: NewAgent(agentName(i), o, 64)}
	}
	c, err := NewCoordinator(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func agentName(i int) string { return string(rune('a'+i)) + "-station" }

func TestCoordinatorCompletesJobs(t *testing.T) {
	cfg := DefaultCoordinatorConfig()
	c := newLocalCluster(t, cfg, []*ScriptedOwner{quietOwner(t), quietOwner(t)})
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(20, 8); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100 && len(c.Completed()) < 3; i++ {
		if err := c.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.Completed()) != 3 {
		t.Fatalf("completed %d of 3 jobs", len(c.Completed()))
	}
	if c.QueueLen() != 0 {
		t.Errorf("queue not drained: %d", c.QueueLen())
	}
}

func TestCoordinatorIEEvictsImmediately(t *testing.T) {
	cfg := DefaultCoordinatorConfig()
	cfg.Policy = core.ImmediateEviction
	// Agent a turns busy after 30 s; agent b stays idle as the spare.
	// With equal initial utilizations the deterministic tie-break places
	// the single job on a (first in sorted name order).
	c := newLocalCluster(t, cfg, []*ScriptedOwner{busyAfter(t, 30, 0.5), quietOwner(t)})
	if _, err := c.Submit(500, 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := c.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if c.Migrations() != 1 {
		t.Errorf("IE migrations = %d, want exactly 1 (eviction from the busy node)", c.Migrations())
	}
}

func TestCoordinatorLFNeverMigrates(t *testing.T) {
	cfg := DefaultCoordinatorConfig()
	cfg.Policy = core.LingerForever
	c := newLocalCluster(t, cfg, []*ScriptedOwner{busyAfter(t, 10, 0.5), quietOwner(t)})
	if _, err := c.Submit(100, 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := c.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if c.Migrations() != 0 {
		t.Errorf("LF migrated %d times", c.Migrations())
	}
}

func TestCoordinatorLLLingersBeforeMigrating(t *testing.T) {
	cfg := DefaultCoordinatorConfig()
	// Tmigr for 8 MB ~ 22.3 s; with h=0.5, l~0.02: Tlingr ~ 45.6 s.
	c := newLocalCluster(t, cfg, []*ScriptedOwner{busyAfter(t, 30, 0.5), quietOwner(t)})
	if _, err := c.Submit(2000, 8); err != nil {
		t.Fatal(err)
	}
	migratedAt := -1.0
	for i := 0; i < 200; i++ {
		if err := c.Step(1); err != nil {
			t.Fatal(err)
		}
		if c.Migrations() > 0 && migratedAt < 0 {
			migratedAt = c.Now()
		}
	}
	if migratedAt < 0 {
		t.Fatal("LL never migrated off the persistently busy node")
	}
	// The episode starts at ~30 s; the 2x-age rule needs ~45 s of episode
	// age before migrating, so migration should not happen before ~70 s.
	if migratedAt < 60 {
		t.Errorf("LL migrated at %g s — before the linger duration elapsed", migratedAt)
	}
	if migratedAt > 120 {
		t.Errorf("LL migrated only at %g s — far too late", migratedAt)
	}
}

func TestCoordinatorPMPausesThenMigrates(t *testing.T) {
	cfg := DefaultCoordinatorConfig()
	cfg.Policy = core.PauseAndMigrate
	cfg.PauseTime = 10
	c := newLocalCluster(t, cfg, []*ScriptedOwner{busyAfter(t, 30, 0.5), quietOwner(t)})
	if _, err := c.Submit(2000, 8); err != nil {
		t.Fatal(err)
	}
	migratedAt := -1.0
	for i := 0; i < 120; i++ {
		if err := c.Step(1); err != nil {
			t.Fatal(err)
		}
		if c.Migrations() > 0 && migratedAt < 0 {
			migratedAt = c.Now()
		}
	}
	if migratedAt < 0 {
		t.Fatal("PM never migrated")
	}
	// Busy at ~30 s + 10 s pause: migration at ~40-45 s.
	if migratedAt < 38 || migratedAt > 60 {
		t.Errorf("PM migrated at %g s, want ~40-45", migratedAt)
	}
}

func TestMigrationPreservesProgress(t *testing.T) {
	cfg := DefaultCoordinatorConfig()
	cfg.Policy = core.ImmediateEviction
	c := newLocalCluster(t, cfg, []*ScriptedOwner{busyAfter(t, 50, 0.9), quietOwner(t)})
	if _, err := c.Submit(200, 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400 && len(c.Completed()) < 1; i++ {
		if err := c.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.Completed()) != 1 {
		t.Fatalf("completed %d of 1 jobs", len(c.Completed()))
	}
	// Total virtual time must account for both demands plus the migration
	// gap — if progress were lost, completion would take ~200 s longer.
	for _, done := range c.Completed() {
		if done.Job.Progress < 200-1e-6 {
			t.Errorf("job %d completed with progress %g < 200", done.Job.ID, done.Job.Progress)
		}
		wall := done.CompletedAt
		if wall > 330 {
			t.Errorf("job %d took %g s; progress was likely lost in migration", done.Job.ID, wall)
		}
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(DefaultCoordinatorConfig(), nil); err == nil {
		t.Error("no agents accepted")
	}
	a := LocalClient{Agent: NewAgent("same", quietOwner(t), 64)}
	b := LocalClient{Agent: NewAgent("same", quietOwner(t), 64)}
	if _, err := NewCoordinator(DefaultCoordinatorConfig(), []AgentClient{a, b}); err == nil {
		t.Error("duplicate names accepted")
	}
	cfg := DefaultCoordinatorConfig()
	cfg.PauseTime = -1
	if _, err := NewCoordinator(cfg, []AgentClient{a}); err == nil {
		t.Error("negative pause accepted")
	}
	c, err := NewCoordinator(DefaultCoordinatorConfig(), []AgentClient{a})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Step(0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := c.Submit(-1, 8); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestJobValidateAndHelpers(t *testing.T) {
	j := &Job{ID: 1, DemandS: 10, SizeMB: 8, Progress: 4}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if j.Done() {
		t.Error("job with 4/10 progress reported done")
	}
	if got := j.Remaining(); math.Abs(got-6) > 1e-12 {
		t.Errorf("Remaining() = %g", got)
	}
	j.Progress = 11
	if !j.Done() || j.Remaining() != 0 {
		t.Error("overshot job not done")
	}
	if (&Job{DemandS: 1, SizeMB: -1}).Validate() == nil {
		t.Error("negative size accepted")
	}
	if (&Job{DemandS: 1, Progress: -1}).Validate() == nil {
		t.Error("negative progress accepted")
	}
}
