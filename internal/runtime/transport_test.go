package runtime

import (
	"bytes"
	"encoding/gob"
	"errors"
	"net"
	"reflect"
	"strconv"
	"testing"
	"time"

	"lingerlonger/internal/core"
	"lingerlonger/internal/exp"
	"lingerlonger/internal/stats"
)

// startTCPAgents serves n agents on loopback listeners and returns
// connected clients. Cleanup closes everything.
func startTCPAgents(t *testing.T, owners []*ScriptedOwner) []AgentClient {
	t.Helper()
	clients := make([]AgentClient, len(owners))
	for i, o := range owners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewAgentServer(NewAgent(agentName(i), o, 64), l)
		t.Cleanup(func() { srv.Close() })
		c, err := DialAgent(srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
	}
	return clients
}

func TestTCPClientBasics(t *testing.T) {
	clients := startTCPAgents(t, []*ScriptedOwner{quietOwner(t)})
	c := clients[0]
	if c.Name() != agentName(0) {
		t.Errorf("Name() = %q, want %q", c.Name(), agentName(0))
	}
	if err := c.Assign(&Job{ID: 1, DemandS: 5, SizeMB: 8}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.JobID != 1 || st.JobProgress <= 0 {
		t.Errorf("status = %+v", st)
	}
	// Errors propagate across the wire.
	if err := c.Assign(&Job{ID: 2, DemandS: 5, SizeMB: 8}); err == nil {
		t.Error("double assign over TCP accepted")
	}
	j, err := c.Revoke(1)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != 1 || j.Progress <= 0 {
		t.Errorf("revoked job = %+v", j)
	}
	if err := c.Pause(1, true); err == nil {
		t.Error("pausing a revoked job over TCP accepted")
	}
}

func TestTCPClusterCompletesJobs(t *testing.T) {
	clients := startTCPAgents(t, []*ScriptedOwner{
		busyAfter(t, 30, 0.5), quietOwner(t), quietOwner(t),
	})
	coord, err := NewCoordinator(DefaultCoordinatorConfig(), clients)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := coord.Submit(30, 8); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200 && len(coord.Completed()) < 4; i++ {
		if err := coord.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if len(coord.Completed()) != 4 {
		t.Fatalf("completed %d of 4 jobs over TCP", len(coord.Completed()))
	}
}

// The same scenario must produce byte-identical schedules over the
// in-process and TCP transports: the protocol adds no nondeterminism.
func TestTransportEquivalence(t *testing.T) {
	scenario := func(clients []AgentClient) ([]CompletedJob, int, error) {
		cfg := DefaultCoordinatorConfig()
		cfg.Policy = core.LingerLonger
		coord, err := NewCoordinator(cfg, clients)
		if err != nil {
			return nil, 0, err
		}
		for i := 0; i < 3; i++ {
			if _, err := coord.Submit(80, 8); err != nil {
				return nil, 0, err
			}
		}
		for i := 0; i < 400; i++ {
			if err := coord.Step(1); err != nil {
				return nil, 0, err
			}
		}
		return coord.Completed(), coord.Migrations(), nil
	}

	owners := func() []*ScriptedOwner {
		return []*ScriptedOwner{busyAfter(t, 40, 0.6), quietOwner(t), quietOwner(t)}
	}

	localClients := make([]AgentClient, 0, 3)
	for i, o := range owners() {
		localClients = append(localClients, LocalClient{Agent: NewAgent(agentName(i), o, 64)})
	}
	localDone, localMigr, err := scenario(localClients)
	if err != nil {
		t.Fatal(err)
	}

	tcpDone, tcpMigr, err := scenario(startTCPAgents(t, owners()))
	if err != nil {
		t.Fatal(err)
	}

	if localMigr != tcpMigr {
		t.Errorf("migrations differ: local %d, tcp %d", localMigr, tcpMigr)
	}
	if len(localDone) != len(tcpDone) {
		t.Fatalf("completions differ: local %d, tcp %d", len(localDone), len(tcpDone))
	}
	for i := range localDone {
		l, r := localDone[i], tcpDone[i]
		if l.Job.ID != r.Job.ID || l.CompletedAt != r.CompletedAt || l.Agent != r.Agent {
			t.Errorf("completion %d differs: local %+v, tcp %+v", i, l, r)
		}
	}
}

func TestDialAgentFailsOnDeadAddress(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	if _, err := DialAgent(addr); err == nil {
		t.Error("dial to a closed listener succeeded")
	}
}

// randomJob draws a random but valid job from rng.
func randomJob(rng *stats.RNG) Job {
	return Job{
		ID:          rng.Intn(1000),
		DemandS:     1 + 100*rng.Float64(),
		SizeMB:      64 * rng.Float64(),
		Progress:    50 * rng.Float64(),
		SubmittedAt: 1000 * rng.Float64(),
	}
}

// randomJobs draws 1..n random jobs (never an empty slice: gob decodes an
// encoded empty slice as nil, which is equal on the wire but not under
// reflect.DeepEqual).
func randomJobs(rng *stats.RNG, n int) []Job {
	out := make([]Job, 1+rng.Intn(n))
	for i := range out {
		out[i] = randomJob(rng)
	}
	return out
}

// Property test: randomized requests and responses — including the
// fault-tolerance staging slices — survive a gob round trip losslessly.
func TestGobRoundTripProperty(t *testing.T) {
	rng := stats.NewRNG(exp.DeriveSeed(1234, 0))
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)

	for i := 0; i < 200; i++ {
		req := request{
			Seq:    uint64(rng.Int63()),
			Kind:   reqKind(rng.Intn(int(reqAck) + 1)),
			Dt:     rng.Float64(),
			JobID:  rng.Intn(100),
			Paused: rng.Bool(0.5),
		}
		if rng.Bool(0.5) {
			j := randomJob(rng)
			req.Job = &j
		}
		if rng.Bool(0.5) {
			ids := make([]int, 1+rng.Intn(4))
			for k := range ids {
				ids[k] = rng.Intn(100)
			}
			req.Ack = ids
		}
		if err := enc.Encode(&req); err != nil {
			t.Fatalf("iteration %d: encode request: %v", i, err)
		}
		var gotReq request
		if err := dec.Decode(&gotReq); err != nil {
			t.Fatalf("iteration %d: decode request: %v", i, err)
		}
		if !reflect.DeepEqual(req, gotReq) {
			t.Fatalf("iteration %d: request round trip lost data:\nsent %+v\ngot  %+v", i, req, gotReq)
		}

		resp := response{
			Status: AgentStatus{
				Name:        "w" + strconv.Itoa(rng.Intn(10)),
				Idle:        rng.Bool(0.5),
				Util:        rng.Float64(),
				FreeMB:      64 * rng.Float64(),
				EpisodeAge:  100 * rng.Float64(),
				EpisodeUtil: rng.Float64(),
				JobID:       rng.Intn(100) - 1,
				JobProgress: 50 * rng.Float64(),
				JobDone:     rng.Bool(0.3),
			},
			Name: "w" + strconv.Itoa(rng.Intn(10)),
			Err:  "",
		}
		if rng.Bool(0.5) {
			resp.Status.Finished = randomJobs(rng, 3)
		}
		if rng.Bool(0.5) {
			resp.Status.Revoked = randomJobs(rng, 3)
		}
		if rng.Bool(0.5) {
			j := randomJob(rng)
			resp.Job = &j
		}
		if rng.Bool(0.2) {
			resp.Err = "agent rejected the call"
		}
		if err := enc.Encode(&resp); err != nil {
			t.Fatalf("iteration %d: encode response: %v", i, err)
		}
		var gotResp response
		if err := dec.Decode(&gotResp); err != nil {
			t.Fatalf("iteration %d: decode response: %v", i, err)
		}
		if !reflect.DeepEqual(resp, gotResp) {
			t.Fatalf("iteration %d: response round trip lost data:\nsent %+v\ngot  %+v", i, resp, gotResp)
		}
	}
}

// A connection that feeds the server garbage must be dropped without
// taking the server down: the next dial and call succeed.
func TestServerSurvivesGarbageFrames(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewAgentServer(NewAgent("w1", quietOwner(t), 64), l)
	defer srv.Close()

	raw, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// A complete 3-byte frame whose payload is not valid gob: the server's
	// decoder fails immediately rather than waiting for more bytes.
	if _, err := raw.Write([]byte{0x03, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	// The server must close this connection rather than reply or hang.
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Error("server replied to a garbage frame")
	}
	raw.Close()

	c, err := DialAgent(srv.Addr().String())
	if err != nil {
		t.Fatalf("server did not survive the garbage frame: %v", err)
	}
	defer c.Close()
	if _, err := c.Tick(1); err != nil {
		t.Errorf("tick after garbage frame: %v", err)
	}
}

// fakeAgentServer speaks just enough of the protocol to complete the
// DialAgent name handshake, then hands each subsequent request to behave.
func fakeAgentServer(t *testing.T, behave func(conn net.Conn, dec *gob.Decoder, enc *gob.Encoder, req request) bool) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				for {
					var req request
					if err := dec.Decode(&req); err != nil {
						return
					}
					if req.Kind == reqName {
						if err := enc.Encode(&response{Name: "fake"}); err != nil {
							return
						}
						continue
					}
					if !behave(conn, dec, enc, req) {
						return
					}
				}
			}()
		}
	}()
	return l
}

// A truncated reply frame must surface as a clean typed error — never a
// panic or a hang.
func TestTruncatedReplyFrameCleanError(t *testing.T) {
	l := fakeAgentServer(t, func(conn net.Conn, dec *gob.Decoder, enc *gob.Encoder, req request) bool {
		conn.Write([]byte{0x03, 0x01, 0x02}) // a partial gob frame
		return false                         // then close the connection
	})
	cfg := DefaultTCPClientConfig()
	cfg.Retry.MaxAttempts = 1
	c, err := DialAgentConfig(l.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Tick(1)
	if !errors.Is(err, ErrAgentDown) {
		t.Errorf("Tick over truncated reply = %v, want ErrAgentDown", err)
	}
	if !IsTransient(err) {
		t.Errorf("truncated-frame error not classified transient: %v", err)
	}
}

// A server that accepts a request but never replies must trip the per-RPC
// deadline as ErrAgentTimeout.
func TestTCPDeadlineReturnsTypedTimeout(t *testing.T) {
	stall := make(chan struct{})
	t.Cleanup(func() { close(stall) })
	l := fakeAgentServer(t, func(conn net.Conn, dec *gob.Decoder, enc *gob.Encoder, req request) bool {
		<-stall // swallow the request, never reply
		return false
	})
	cfg := DefaultTCPClientConfig()
	cfg.Timeout = 50 * time.Millisecond
	cfg.Retry.MaxAttempts = 2
	c, err := DialAgentConfig(l.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	counters := &FaultCounters{}
	c.cfg.Counters = counters
	if _, err := c.Tick(1); !errors.Is(err, ErrAgentTimeout) {
		t.Errorf("Tick against a stalled server = %v, want ErrAgentTimeout", err)
	}
	if counters.Timeouts == 0 {
		t.Error("deadline trip not counted")
	}
}

// At-most-once over the real TCP transport: a dropped reply plus retry
// must not execute the tick twice, because the server replays the cached
// response for the repeated sequence number.
func TestTCPAtMostOnceOnDroppedReply(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	agent := NewAgent("w1", quietOwner(t), 64)
	srv := NewAgentServer(agent, l)
	defer srv.Close()

	cfg := DefaultTCPClientConfig()
	cfg.Injector = newScriptInjector(func(target string, kind reqKind, n, kn int) FaultAction {
		if kind == reqTick && kn == 0 {
			return FaultDropReply
		}
		return FaultNone
	})
	c, err := DialAgentConfig(l.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := agent.Now(); got != 1 {
		t.Errorf("agent clock at %g after one logical tick, want 1 (retry double-executed)", got)
	}
	if st.Name != "w1" {
		t.Errorf("replayed status = %+v", st)
	}
}

// Every injected fault kind over the real TCP transport: the retry loop
// absorbs each one, the gob stream never desynchronizes, and the counters
// record the events.
func TestTCPInjectorAllActions(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	agent := NewAgent("w1", quietOwner(t), 64)
	srv := NewAgentServer(agent, l)
	defer srv.Close()

	cfg := DefaultTCPClientConfig()
	counters := &FaultCounters{}
	cfg.Counters = counters
	cfg.Injector = newScriptInjector(func(target string, kind reqKind, n, kn int) FaultAction {
		if kn != 0 {
			return FaultNone
		}
		switch kind {
		case reqAssign:
			return FaultDropSend
		case reqPause:
			return FaultDelay
		case reqRevoke:
			return FaultCorrupt
		case reqAck:
			return FaultDropReply
		}
		return FaultNone
	})
	c, err := DialAgentConfig(l.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Assign(&Job{ID: 1, DemandS: 5, SizeMB: 8}); err != nil {
		t.Fatalf("assign through drop-send: %v", err)
	}
	if err := c.Pause(1, true); err != nil {
		t.Fatalf("pause through delay: %v", err)
	}
	if err := c.Pause(1, false); err != nil {
		t.Fatal(err)
	}
	j, err := c.Revoke(1)
	if err != nil {
		t.Fatalf("revoke through corrupt: %v", err)
	}
	if j.ID != 1 {
		t.Errorf("revoked job = %+v", j)
	}
	if err := c.Ack([]int{1}); err != nil {
		t.Fatalf("ack through drop-reply: %v", err)
	}
	if counters.DroppedSends != 1 || counters.Delays != 1 || counters.CorruptFrames != 1 || counters.DroppedReplies != 1 {
		t.Errorf("counters = %+v", counters)
	}
	if counters.Retries != 4 {
		t.Errorf("retries = %d, want 4", counters.Retries)
	}
	// The at-most-once cache means the delayed Pause did not pause twice
	// and the corrupted Revoke surrendered exactly one copy.
	if agent.HasJob() {
		t.Error("agent still hosts the revoked job")
	}
}
