package runtime

import (
	"net"
	"testing"

	"lingerlonger/internal/core"
)

// startTCPAgents serves n agents on loopback listeners and returns
// connected clients. Cleanup closes everything.
func startTCPAgents(t *testing.T, owners []*ScriptedOwner) []AgentClient {
	t.Helper()
	clients := make([]AgentClient, len(owners))
	for i, o := range owners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewAgentServer(NewAgent(agentName(i), o, 64), l)
		t.Cleanup(func() { srv.Close() })
		c, err := DialAgent(srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
	}
	return clients
}

func TestTCPClientBasics(t *testing.T) {
	clients := startTCPAgents(t, []*ScriptedOwner{quietOwner(t)})
	c := clients[0]
	if c.Name() != agentName(0) {
		t.Errorf("Name() = %q, want %q", c.Name(), agentName(0))
	}
	if err := c.Assign(&Job{ID: 1, DemandS: 5, SizeMB: 8}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.JobID != 1 || st.JobProgress <= 0 {
		t.Errorf("status = %+v", st)
	}
	// Errors propagate across the wire.
	if err := c.Assign(&Job{ID: 2, DemandS: 5, SizeMB: 8}); err == nil {
		t.Error("double assign over TCP accepted")
	}
	j, err := c.Revoke(1)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != 1 || j.Progress <= 0 {
		t.Errorf("revoked job = %+v", j)
	}
	if err := c.Pause(1, true); err == nil {
		t.Error("pausing a revoked job over TCP accepted")
	}
}

func TestTCPClusterCompletesJobs(t *testing.T) {
	clients := startTCPAgents(t, []*ScriptedOwner{
		busyAfter(t, 30, 0.5), quietOwner(t), quietOwner(t),
	})
	coord, err := NewCoordinator(DefaultCoordinatorConfig(), clients)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := coord.Submit(30, 8); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200 && len(coord.Completed()) < 4; i++ {
		if err := coord.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if len(coord.Completed()) != 4 {
		t.Fatalf("completed %d of 4 jobs over TCP", len(coord.Completed()))
	}
}

// The same scenario must produce byte-identical schedules over the
// in-process and TCP transports: the protocol adds no nondeterminism.
func TestTransportEquivalence(t *testing.T) {
	scenario := func(clients []AgentClient) ([]CompletedJob, int, error) {
		cfg := DefaultCoordinatorConfig()
		cfg.Policy = core.LingerLonger
		coord, err := NewCoordinator(cfg, clients)
		if err != nil {
			return nil, 0, err
		}
		for i := 0; i < 3; i++ {
			if _, err := coord.Submit(80, 8); err != nil {
				return nil, 0, err
			}
		}
		for i := 0; i < 400; i++ {
			if err := coord.Step(1); err != nil {
				return nil, 0, err
			}
		}
		return coord.Completed(), coord.Migrations(), nil
	}

	owners := func() []*ScriptedOwner {
		return []*ScriptedOwner{busyAfter(t, 40, 0.6), quietOwner(t), quietOwner(t)}
	}

	localClients := make([]AgentClient, 0, 3)
	for i, o := range owners() {
		localClients = append(localClients, LocalClient{Agent: NewAgent(agentName(i), o, 64)})
	}
	localDone, localMigr, err := scenario(localClients)
	if err != nil {
		t.Fatal(err)
	}

	tcpDone, tcpMigr, err := scenario(startTCPAgents(t, owners()))
	if err != nil {
		t.Fatal(err)
	}

	if localMigr != tcpMigr {
		t.Errorf("migrations differ: local %d, tcp %d", localMigr, tcpMigr)
	}
	if len(localDone) != len(tcpDone) {
		t.Fatalf("completions differ: local %d, tcp %d", len(localDone), len(tcpDone))
	}
	for i := range localDone {
		l, r := localDone[i], tcpDone[i]
		if l.Job.ID != r.Job.ID || l.CompletedAt != r.CompletedAt || l.Agent != r.Agent {
			t.Errorf("completion %d differs: local %+v, tcp %+v", i, l, r)
		}
	}
}

func TestDialAgentFailsOnDeadAddress(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	if _, err := DialAgent(addr); err == nil {
		t.Error("dial to a closed listener succeeded")
	}
}
