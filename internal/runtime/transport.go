package runtime

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// The wire protocol: the coordinator holds one TCP connection per agent
// and exchanges gob-encoded request/response pairs. Calls are strictly
// sequential per connection, so a TCP-backed cluster behaves identically
// to an in-process one.

// reqKind enumerates the protocol operations.
type reqKind int

const (
	reqTick reqKind = iota
	reqAssign
	reqRevoke
	reqPause
	reqName
)

// request is the coordinator-to-agent message.
type request struct {
	Kind   reqKind
	Dt     float64
	Job    *Job
	JobID  int
	Paused bool
}

// response is the agent-to-coordinator reply.
type response struct {
	Status AgentStatus
	Job    *Job
	Name   string
	Err    string
}

// AgentServer exposes an Agent over a listener. Create with NewAgentServer
// and stop with Close. Each accepted connection is served by its own
// goroutine; the underlying Agent is concurrency-safe.
type AgentServer struct {
	agent    *Agent
	listener net.Listener

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewAgentServer starts serving agent on l.
func NewAgentServer(agent *Agent, l net.Listener) *AgentServer {
	s := &AgentServer{agent: agent, listener: l}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *AgentServer) Addr() net.Addr { return s.listener.Addr() }

// Close stops the server and waits for connection handlers to finish.
func (s *AgentServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

func (s *AgentServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// serve handles one coordinator connection until EOF.
func (s *AgentServer) serve(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp response
		switch req.Kind {
		case reqName:
			resp.Name = s.agent.Name()
		case reqTick:
			st, err := s.agent.Tick(req.Dt)
			resp.Status = st
			resp.Err = errString(err)
		case reqAssign:
			resp.Err = errString(s.agent.Assign(req.Job))
		case reqRevoke:
			j, err := s.agent.Revoke(req.JobID)
			resp.Job = j
			resp.Err = errString(err)
		case reqPause:
			resp.Err = errString(s.agent.Pause(req.JobID, req.Paused))
		default:
			resp.Err = fmt.Sprintf("runtime: unknown request kind %d", req.Kind)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TCPClient is an AgentClient speaking the gob protocol over one TCP
// connection. Not safe for concurrent use — matching the coordinator's
// sequential step loop.
type TCPClient struct {
	name string
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// DialAgent connects to an AgentServer at addr.
func DialAgent(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &TCPClient{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	resp, err := c.call(request{Kind: reqName})
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.name = resp.Name
	return c, nil
}

func (c *TCPClient) call(req request) (response, error) {
	if err := c.enc.Encode(&req); err != nil {
		return response{}, fmt.Errorf("runtime: send to %s: %w", c.name, err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("runtime: receive from %s: %w", c.name, err)
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// Name returns the remote agent's name.
func (c *TCPClient) Name() string { return c.name }

// Tick advances the remote agent.
func (c *TCPClient) Tick(dt float64) (AgentStatus, error) {
	resp, err := c.call(request{Kind: reqTick, Dt: dt})
	return resp.Status, err
}

// Assign places a job on the remote agent.
func (c *TCPClient) Assign(j *Job) error {
	_, err := c.call(request{Kind: reqAssign, Job: j})
	return err
}

// Revoke removes a job from the remote agent, returning its state.
func (c *TCPClient) Revoke(jobID int) (*Job, error) {
	resp, err := c.call(request{Kind: reqRevoke, JobID: jobID})
	return resp.Job, err
}

// Pause suspends or resumes the remote job.
func (c *TCPClient) Pause(jobID int, paused bool) error {
	_, err := c.call(request{Kind: reqPause, JobID: jobID, Paused: paused})
	return err
}

// Close closes the connection.
func (c *TCPClient) Close() error { return c.conn.Close() }
