package runtime

import (
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"time"

	"lingerlonger/internal/exp"
	"lingerlonger/internal/stats"
)

// The wire protocol: the coordinator holds one TCP connection per agent
// and exchanges gob-encoded request/response pairs. Calls are strictly
// sequential per connection, so a TCP-backed cluster behaves identically
// to an in-process one.
//
// Fault tolerance: every logical call carries a sequence number; the agent
// caches the last response and replays it when the same sequence arrives
// again, giving retried calls at-most-once execution. The client enforces a
// per-RPC deadline, maps transport failures to the typed errors of
// fault.go, redials broken connections, and retries transient failures per
// its RetryConfig. An optional FaultInjector seam lets tests sever, delay,
// or garble individual calls deterministically.

// reqKind enumerates the protocol operations.
type reqKind int

const (
	reqTick reqKind = iota
	reqAssign
	reqRevoke
	reqPause
	reqName
	reqAck
	reqWork
)

// request is the coordinator-to-agent message.
type request struct {
	Seq    uint64 // logical-call sequence number for at-most-once retries
	Client string // originating client stream; scopes the dedup cache
	Kind   reqKind
	Dt     float64
	Job    *Job
	JobID  int
	Paused bool
	Ack    []int
	Work   *exp.PointSpec // reqWork: the sweep point to execute
}

// response is the agent-to-coordinator reply.
type response struct {
	Status AgentStatus
	Job    *Job
	Name   string
	Data   []byte // reqWork: the executed point's result bytes
	Err    string
}

// AgentServer exposes an Agent over a listener. Create with NewAgentServer
// and stop with Close. Each accepted connection is served by its own
// goroutine; the underlying Agent is concurrency-safe. A connection that
// delivers an undecodable request (a corrupt frame) is closed — the
// coordinator redials and retries — and never takes the server down.
type AgentServer struct {
	agent    *Agent
	listener net.Listener

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewAgentServer starts serving agent on l.
func NewAgentServer(agent *Agent, l net.Listener) *AgentServer {
	s := &AgentServer{agent: agent, listener: l}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *AgentServer) Addr() net.Addr { return s.listener.Addr() }

// Close stops the server and waits for connection handlers to finish.
func (s *AgentServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

func (s *AgentServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// serve handles one coordinator connection until EOF or a corrupt frame.
func (s *AgentServer) serve(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or garbage: drop the connection, keep serving
		}
		resp := s.agent.Call(req)
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TCPClientConfig parameterizes a TCP agent client.
type TCPClientConfig struct {
	// Timeout is the per-RPC deadline; a call that exceeds it returns an
	// error wrapping ErrAgentTimeout. Zero disables the deadline.
	Timeout time.Duration
	// DialTimeout bounds connection establishment (and every redial).
	// Zero means the platform default (block until the stack gives up).
	DialTimeout time.Duration
	// ClientID names this client's logical call stream. Agents scope
	// their at-most-once dedup cache per (ClientID) — distinct IDs never
	// evict each other's cached replies — so a coordinator holding several
	// concurrent connections to one agent (the fabric's per-slot clients)
	// must give each connection a distinct ID. The empty ID is a valid
	// stream of its own (the single-connection legacy coordinator).
	ClientID string
	// Retry bounds the internal retry loop around transient failures.
	Retry RetryConfig
	// Injector, when non-nil, decides the fate of each network attempt
	// (the deterministic fault seam). Injected faults never desynchronize
	// the real gob stream: drop-reply and corrupt verdicts complete the
	// exchange and then discard the reply.
	Injector FaultInjector
	// Counters, when non-nil, tallies transport events.
	Counters *FaultCounters
}

// DefaultTCPClientConfig returns a 5-second per-RPC deadline with the
// default retry policy.
func DefaultTCPClientConfig() TCPClientConfig {
	return TCPClientConfig{Timeout: 5 * time.Second, Retry: DefaultRetryConfig()}
}

// TCPClient is an AgentClient speaking the gob protocol over TCP. Not safe
// for concurrent use — matching the coordinator's sequential step loop. A
// connection poisoned by a timeout or a corrupt frame is closed and
// redialed on the next attempt.
type TCPClient struct {
	name string
	addr string
	cfg  TCPClientConfig
	rng  *stats.RNG
	seq  uint64

	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// DialAgent connects to an AgentServer at addr with the default client
// config (5 s deadline, three attempts).
func DialAgent(addr string) (*TCPClient, error) {
	return DialAgentConfig(addr, DefaultTCPClientConfig())
}

// clientJitterSeed derives the backoff-jitter RNG seed for one client
// stream. Folding in (addr, clientID) gives every client its own stream
// even when many clients share one RetryConfig.Seed (the fabric hands all
// slot clients the same LinkConfig): with a shared stream, concurrent
// clients would race for draws and their sleep schedule would depend on
// goroutine interleaving; with per-client streams each client's jitter is
// a pure function of (seed, addr, clientID).
func clientJitterSeed(seed int64, addr, clientID string) int64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	h.Write([]byte{'/'})
	h.Write([]byte(clientID))
	return exp.DeriveSeed(seed^int64(h.Sum64()), 0)
}

// DialAgentConfig connects to an AgentServer at addr.
func DialAgentConfig(addr string, cfg TCPClientConfig) (*TCPClient, error) {
	c := &TCPClient{
		addr: addr,
		cfg:  cfg,
		rng:  stats.NewRNG(clientJitterSeed(cfg.Retry.Seed, addr, cfg.ClientID)),
	}
	if err := c.redial(); err != nil {
		return nil, err
	}
	// The name handshake bypasses fault injection: the seam models the
	// steady-state network, not cluster bring-up. It carries the client ID
	// so a fresh client reusing an ID (a fabric slot reconnecting) lands
	// its seq-1 handshake in its own dedup stream and resets it — without
	// this, a restarted sequence could collide with a stale cached reply.
	resp, err := c.exchange(request{Seq: c.nextSeq(), Kind: reqName, Client: cfg.ClientID})
	if err != nil {
		c.dropConn()
		return nil, err
	}
	c.name = resp.Name
	return c, nil
}

func (c *TCPClient) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// redial (re)establishes the connection.
func (c *TCPClient) redial() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("runtime: dial %s: %v: %w", c.addr, err, ErrAgentDown)
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

// dropConn poisons the current connection so the next attempt redials.
func (c *TCPClient) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.enc, c.dec = nil, nil
	}
}

// exchange performs one request/response round trip on the wire, mapping
// failures to the typed transport errors. Any wire error poisons the
// connection: a gob stream that lost a frame boundary cannot be resumed.
func (c *TCPClient) exchange(req request) (response, error) {
	if c.conn == nil {
		if err := c.redial(); err != nil {
			return response{}, err
		}
	}
	if c.cfg.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
	}
	if err := c.enc.Encode(&req); err != nil {
		c.dropConn()
		return response{}, fmt.Errorf("runtime: send to %s: %v: %w", c.target(), err, wireErr(err))
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		c.dropConn()
		return response{}, fmt.Errorf("runtime: receive from %s: %v: %w", c.target(), err, wireErr(err))
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// wireErr classifies a raw wire error as a typed transport error.
func wireErr(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ErrAgentTimeout
	}
	return ErrAgentDown
}

func (c *TCPClient) target() string {
	if c.name != "" {
		return c.name
	}
	return c.addr
}

// call runs one logical operation: stamp a sequence number once, then
// retry transient failures with the same sequence so the server-side dedup
// cache guarantees at-most-once execution.
func (c *TCPClient) call(req request) (response, error) {
	req.Seq = c.nextSeq()
	req.Client = c.cfg.ClientID
	return invokeRetry(c.cfg.Retry, c.rng, c.cfg.Counters, func() (response, error) {
		action := FaultNone
		if c.cfg.Injector != nil {
			action = c.cfg.Injector.Next(c.target(), req.Kind)
		}
		switch action {
		case FaultDropSend:
			if c.cfg.Counters != nil {
				c.cfg.Counters.DroppedSends++
				c.cfg.Counters.Timeouts++
			}
			return response{}, fmt.Errorf("request to %s lost: %w", c.target(), ErrAgentTimeout)
		case FaultDropReply, FaultDelay, FaultCorrupt:
			// Complete the real exchange to keep the gob stream in sync,
			// then lose the reply.
			if _, err := c.exchange(req); err != nil && IsTransient(err) {
				return response{}, err
			}
			if action == FaultCorrupt {
				if c.cfg.Counters != nil {
					c.cfg.Counters.CorruptFrames++
				}
				return response{}, fmt.Errorf("reply from %s garbled: %w", c.target(), ErrCorruptFrame)
			}
			if c.cfg.Counters != nil {
				if action == FaultDelay {
					c.cfg.Counters.Delays++
				} else {
					c.cfg.Counters.DroppedReplies++
				}
				c.cfg.Counters.Timeouts++
			}
			return response{}, fmt.Errorf("reply from %s lost: %w", c.target(), ErrAgentTimeout)
		}
		resp, err := c.exchange(req)
		if err != nil && IsTransient(err) && c.cfg.Counters != nil {
			c.cfg.Counters.Timeouts++
		}
		return resp, err
	})
}

// Name returns the remote agent's name.
func (c *TCPClient) Name() string { return c.name }

// Tick advances the remote agent.
func (c *TCPClient) Tick(dt float64) (AgentStatus, error) {
	resp, err := c.call(request{Kind: reqTick, Dt: dt})
	return resp.Status, err
}

// Assign places a job on the remote agent.
func (c *TCPClient) Assign(j *Job) error {
	_, err := c.call(request{Kind: reqAssign, Job: j})
	return err
}

// Revoke removes a job from the remote agent, returning its state.
func (c *TCPClient) Revoke(jobID int) (*Job, error) {
	resp, err := c.call(request{Kind: reqRevoke, JobID: jobID})
	return resp.Job, err
}

// Pause suspends or resumes the remote job.
func (c *TCPClient) Pause(jobID int, paused bool) error {
	_, err := c.call(request{Kind: reqPause, JobID: jobID, Paused: paused})
	return err
}

// Ack clears the remote agent's completion/revocation staging for ids.
func (c *TCPClient) Ack(ids []int) error {
	_, err := c.call(request{Kind: reqAck, Ack: ids})
	return err
}

// Work executes one sweep point on the remote agent and returns its result
// bytes. The call gets the same at-most-once treatment as every other
// operation: retried attempts carry the same sequence number, so a reply
// lost in transit is replayed from the agent's dedup cache rather than
// recomputed. (Even a cross-client duplicate execution would be harmless —
// tasks are pure — but the cache keeps the common retry cheap.)
func (c *TCPClient) Work(spec exp.PointSpec) ([]byte, error) {
	resp, err := c.call(request{Kind: reqWork, Work: &spec})
	return resp.Data, err
}

// Ping performs a no-op round trip through the full fault path (injector,
// deadline, retry) — the health probe the fabric uses to decide whether a
// suspect or dead agent has come back. Unlike Tick it mutates nothing.
func (c *TCPClient) Ping() error {
	_, err := c.call(request{Kind: reqName})
	return err
}

// Close closes the connection.
func (c *TCPClient) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
