package runtime

import (
	"fmt"
	"sort"

	"lingerlonger/internal/core"
	"lingerlonger/internal/obs"
	"lingerlonger/internal/predict"
)

// AgentClient is the coordinator's handle to one workstation agent. The
// in-process implementations wrap *Agent directly (LocalClient perfect,
// FaultClient through a simulated lossy network); the TCP implementation
// speaks the gob protocol of transport.go. All calls are synchronous, so
// the coordinator's step loop is deterministic over any transport.
//
// Implementations honor a per-RPC deadline and return errors wrapping the
// typed transport errors of fault.go (ErrAgentTimeout, ErrAgentDown,
// ErrCorruptFrame) for failures where the call outcome is unknown; the
// coordinator treats exactly those (IsTransient) as survivable.
type AgentClient interface {
	Name() string
	Tick(dt float64) (AgentStatus, error)
	Assign(j *Job) error
	Revoke(jobID int) (*Job, error)
	Pause(jobID int, paused bool) error
	Ack(ids []int) error
	Close() error
}

// LocalClient adapts an in-process *Agent to the AgentClient interface
// over a perfect network: calls execute exactly once and never fail for
// transport reasons.
type LocalClient struct{ Agent *Agent }

// Name returns the agent name.
func (c LocalClient) Name() string { return c.Agent.Name() }

// Tick advances the agent.
func (c LocalClient) Tick(dt float64) (AgentStatus, error) { return c.Agent.Tick(dt) }

// Assign places a job.
func (c LocalClient) Assign(j *Job) error { return c.Agent.Assign(j) }

// Revoke removes a job.
func (c LocalClient) Revoke(jobID int) (*Job, error) { return c.Agent.Revoke(jobID) }

// Pause suspends or resumes a job.
func (c LocalClient) Pause(jobID int, paused bool) error { return c.Agent.Pause(jobID, paused) }

// Ack clears the agent's completion/revocation staging.
func (c LocalClient) Ack(ids []int) error { return c.Agent.Ack(ids) }

// Close is a no-op for in-process agents.
func (c LocalClient) Close() error { return nil }

// CoordinatorConfig parameterizes the scheduling daemon.
type CoordinatorConfig struct {
	Policy    core.Policy
	Migration core.MigrationCost
	PauseTime float64           // PM suspend interval, seconds
	Predictor predict.Predictor // nil selects the paper's 2x-age rule

	// Health sets the suspect/dead thresholds of the failure detector. The
	// zero value selects core.DefaultHealthPolicy.
	Health core.HealthPolicy

	// Rec, when non-nil, receives the coordinator's failure-handling
	// counters (runtime.agents.suspected, runtime.agents.dead,
	// runtime.jobs.recovered, runtime.duplicates.reaped) and, with a
	// trace sink attached, one event per health transition, recovery and
	// migration. Outputs only — no scheduling decision reads them.
	Rec *obs.Recorder
}

// DefaultCoordinatorConfig returns LL with the paper's migration cost and
// the default failure detector.
func DefaultCoordinatorConfig() CoordinatorConfig {
	return CoordinatorConfig{
		Policy:    core.LingerLonger,
		Migration: core.DefaultMigrationCost(),
		PauseTime: 30,
		Health:    core.DefaultHealthPolicy(),
	}
}

// CompletedJob records one finished job.
type CompletedJob struct {
	Job         Job
	CompletedAt float64 // virtual time
	Agent       string  // agent that finished it
}

// RecoveryCounters tallies the coordinator's failure-handling events.
type RecoveryCounters struct {
	MissedTicks      int `json:"missedTicks"`      // ticks that failed after all retries
	Suspected        int `json:"suspected"`        // healthy -> suspect transitions
	Died             int `json:"died"`             // -> dead transitions
	Resurrected      int `json:"resurrected"`      // dead -> healthy transitions
	RecoveredJobs    int `json:"recoveredJobs"`    // jobs restored from checkpoint or staging
	RequeuedAssigns  int `json:"requeuedAssigns"`  // ambiguous assigns that turned out not to land
	AmbiguousAssigns int `json:"ambiguousAssigns"` // assigns whose reply was lost
	AmbiguousRevokes int `json:"ambiguousRevokes"` // revokes whose reply was lost
	StaleRevokes     int `json:"staleRevokes"`     // duplicate copies revoked after resurrection
	VanishedJobs     int `json:"vanishedJobs"`     // jobs gone without trace, restored from checkpoint
}

// Coordinator owns the job queue and drives the agents. It is not safe
// for concurrent use; Step is the single entry point.
//
// Failure handling: a tick that fails with a transient transport error
// counts against the agent's health tracker; at SuspectAfter consecutive
// misses the agent stops receiving work, at DeadAfter its jobs are
// restored from the last checkpointed status and rescheduled (charged
// core.RecoveryCost). Calls with ambiguous outcomes (a lost Assign or
// Revoke reply) park the job in a limbo slot that the next successful
// status report resolves, so no job is ever double-assigned or lost.
type Coordinator struct {
	cfg       CoordinatorConfig
	decider   core.Decider
	predictor predict.Predictor

	agents []AgentClient
	status map[string]AgentStatus
	health map[string]*core.HealthTracker
	hosted map[string]int // agent name -> hosted job ID
	paused map[int]float64

	// Ambiguous-call limbo, one slot per agent: an Assign or Revoke whose
	// reply was lost leaves the job's location unknown until the agent
	// answers a tick again (or is declared dead).
	limboAssign map[string]*Job
	limboRevoke map[string]int

	queue     []*Job
	migrating []*transfer
	sizes     map[int]float64 // job ID -> image size, recorded at submission
	demands   map[int]float64 // job ID -> CPU demand, recorded at submission
	submitted map[int]float64 // job ID -> submission time
	progress  map[int]float64 // job ID -> last checkpointed progress
	nextID    int
	now       float64

	completed    []CompletedJob
	completedIDs map[int]bool
	migrations   int
	counters     RecoveryCounters

	// Observability handles (nil when cfg.Rec is nil; every use is then a
	// single-branch no-op).
	cSuspect *obs.Counter
	cDead    *obs.Counter
	cRecover *obs.Counter
	cReaped  *obs.Counter
}

// emit writes one runtime trace event when a sink is attached. Time is
// the coordinator's virtual clock.
func (c *Coordinator) emit(kind, agent string, jobID int) {
	if !c.cfg.Rec.Tracing() {
		return
	}
	c.cfg.Rec.Emit(obs.Event{Time: c.now, Kind: kind, Agent: agent, Job: jobID})
}

// transfer is a job in flight between agents. An empty dest marks a
// recovery transfer: the job lands back in the queue once the checkpoint
// restore cost has been paid.
type transfer struct {
	job     *Job
	dest    string
	arrival float64
}

// NewCoordinator returns a coordinator over the given agents.
func NewCoordinator(cfg CoordinatorConfig, agents []AgentClient) (*Coordinator, error) {
	if len(agents) == 0 {
		return nil, fmt.Errorf("runtime: no agents")
	}
	if cfg.PauseTime < 0 {
		return nil, fmt.Errorf("runtime: negative pause time %g", cfg.PauseTime)
	}
	if cfg.Health == (core.HealthPolicy{}) {
		cfg.Health = core.DefaultHealthPolicy()
	}
	if err := cfg.Health.Validate(); err != nil {
		return nil, err
	}
	pred := cfg.Predictor
	if pred == nil {
		pred = predict.MedianLife{}
	}
	seen := map[string]bool{}
	health := map[string]*core.HealthTracker{}
	for _, a := range agents {
		if seen[a.Name()] {
			return nil, fmt.Errorf("runtime: duplicate agent name %q", a.Name())
		}
		seen[a.Name()] = true
		health[a.Name()] = core.NewHealthTracker(cfg.Health)
	}
	return &Coordinator{
		cfg:          cfg,
		decider:      core.Decider{Cost: cfg.Migration},
		predictor:    pred,
		cSuspect:     cfg.Rec.Counter(obs.AgentsSuspected),
		cDead:        cfg.Rec.Counter(obs.AgentsDead),
		cRecover:     cfg.Rec.Counter(obs.JobsRecovered),
		cReaped:      cfg.Rec.Counter(obs.DuplicatesReaped),
		agents:       agents,
		status:       map[string]AgentStatus{},
		health:       health,
		hosted:       map[string]int{},
		paused:       map[int]float64{},
		limboAssign:  map[string]*Job{},
		limboRevoke:  map[string]int{},
		sizes:        map[int]float64{},
		demands:      map[int]float64{},
		submitted:    map[int]float64{},
		progress:     map[int]float64{},
		completedIDs: map[int]bool{},
	}, nil
}

// Now returns the coordinator's virtual clock.
func (c *Coordinator) Now() float64 { return c.now }

// Submit enqueues a new foreign job and returns its ID.
func (c *Coordinator) Submit(demandS, sizeMB float64) (int, error) {
	j := &Job{ID: c.nextID, DemandS: demandS, SizeMB: sizeMB, SubmittedAt: c.now}
	if err := j.Validate(); err != nil {
		return 0, err
	}
	c.nextID++
	c.sizes[j.ID] = j.SizeMB
	c.demands[j.ID] = j.DemandS
	c.submitted[j.ID] = j.SubmittedAt
	c.queue = append(c.queue, j)
	return j.ID, nil
}

// Completed returns the finished-job records so far.
func (c *Coordinator) Completed() []CompletedJob { return c.completed }

// Migrations returns the number of policy migrations started.
func (c *Coordinator) Migrations() int { return c.migrations }

// Counters returns the failure-handling counters so far.
func (c *Coordinator) Counters() RecoveryCounters { return c.counters }

// QueueLen returns the number of jobs waiting for a node.
func (c *Coordinator) QueueLen() int { return len(c.queue) }

// AgentHealth returns the failure-detector state for one agent name.
func (c *Coordinator) AgentHealth(name string) core.HealthState {
	if t, ok := c.health[name]; ok {
		return t.State()
	}
	return core.Dead
}

// Step advances the whole system by dt virtual seconds: it ticks every
// agent (tolerating transient failures), applies the scheduling policy,
// lands migrations and recoveries, and places queued jobs.
func (c *Coordinator) Step(dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("runtime: non-positive step %g", dt)
	}
	c.now += dt

	// 1. Tick agents, track health, reconcile statuses.
	if err := c.tickAgents(dt); err != nil {
		return err
	}

	// 2. Land migrations and recoveries that completed their transfer.
	c.landMigrations()

	// 3. Policy decisions for hosted jobs on non-idle agents.
	if err := c.applyPolicy(); err != nil {
		return err
	}

	// 4. Place queued jobs.
	c.placeQueued()
	return nil
}

// tickAgents ticks every agent. Dead agents are still probed each step so
// a healed partition is noticed; their stale state is reconciled on the
// first successful report.
func (c *Coordinator) tickAgents(dt float64) error {
	for _, a := range c.agents {
		name := a.Name()
		tracker := c.health[name]
		wasDead := tracker.State() == core.Dead
		st, err := a.Tick(dt)
		if err != nil {
			if !IsTransient(err) {
				return fmt.Errorf("runtime: tick %s: %w", name, err)
			}
			c.counters.MissedTicks++
			prev := tracker.State()
			now := tracker.Observe(false)
			if now != prev {
				switch now {
				case core.Suspect:
					c.counters.Suspected++
					c.cSuspect.Inc()
					c.emit("agent-suspect", name, 0)
				case core.Dead:
					c.counters.Died++
					c.cDead.Inc()
					c.emit("agent-dead", name, 0)
					c.recoverAgent(name)
				}
			}
			continue
		}
		tracker.Observe(true)
		if wasDead {
			c.counters.Resurrected++
		}
		c.processStatus(a, name, st)
	}
	return nil
}

// processStatus reconciles one successful status report: completions,
// limbo resolution, orphaned revocation staging, stale duplicate copies,
// and the hosted/checkpoint bookkeeping.
func (c *Coordinator) processStatus(a AgentClient, name string, st AgentStatus) {
	c.status[name] = st
	var acks []int

	// Completions: deduplicated by ID, so re-reports after a lost reply or
	// a duplicate copy finishing twice can never double-complete a job.
	for _, j := range st.Finished {
		if !c.completedIDs[j.ID] {
			c.completedIDs[j.ID] = true
			c.completed = append(c.completed, CompletedJob{Job: j, CompletedAt: c.now, Agent: name})
			c.dropActive(j.ID)
			delete(c.paused, j.ID)
		}
		acks = append(acks, j.ID)
	}

	// A pending Assign resolves now: either the job landed, or it finished
	// already, or it never arrived and goes back to the queue.
	if j, ok := c.limboAssign[name]; ok {
		delete(c.limboAssign, name)
		switch {
		case st.JobID == j.ID:
			c.hosted[name] = j.ID
		case c.completedIDs[j.ID]:
			// Landed and finished within the window; handled above.
		default:
			c.queue = append(c.queue, j)
			c.counters.RequeuedAssigns++
		}
	}

	// A pending Revoke resolves now: still hosted (the revoke never
	// executed), staged (recover the surrendered state), or finished.
	if id, ok := c.limboRevoke[name]; ok {
		delete(c.limboRevoke, name)
		if st.JobID == id {
			c.hosted[name] = id
		} else if sj, found := revokedByID(st, id); found {
			c.recoverJob(sj)
			acks = append(acks, id)
		} else if !c.completedIDs[id] {
			c.recoverCheckpoint(id)
			c.counters.VanishedJobs++
		}
	}

	// Orphaned revocation staging: state the agent still holds for jobs
	// the coordinator tracks nowhere (e.g. a revoke that executed just
	// before the agent was declared dead). Adopt it rather than lose it;
	// if the job is active elsewhere, keep the furthest progress.
	for _, sj := range st.Revoked {
		if !c.completedIDs[sj.ID] && !c.locatedAnywhere(sj.ID) {
			c.recoverJob(sj)
		} else {
			c.mergeProgress(sj)
		}
		acks = append(acks, sj.ID)
	}

	// Hosted bookkeeping, stale duplicates, and the vanish guard.
	believed, has := c.hosted[name]
	if has && st.JobID != believed {
		// The agent does not report the job the coordinator believed it
		// hosts: reconcile the believed job before handling the report.
		c.reconcileMissing(name, believed, st)
		delete(c.hosted, name)
		has = false
	}
	switch {
	case st.JobID >= 0 && !st.JobDone:
		id := st.JobID
		switch {
		case has && believed == id:
			c.checkpoint(id, st.JobProgress)
		case c.completedIDs[id] || c.locatedElsewhere(id, name):
			// Duplicate copy surviving a resurrection: revoke and merge.
			if j, err := a.Revoke(id); err == nil {
				c.counters.StaleRevokes++
				c.cReaped.Inc()
				c.emit("duplicate-reaped", name, id)
				c.mergeProgress(*j)
				acks = append(acks, id)
			}
			// On failure the copy stays; the next tick retries.
		default:
			// The agent legitimately hosts a job the coordinator lost
			// track of (resurrection after an early recovery that has
			// since been re-absorbed): adopt it.
			c.hosted[name] = id
			c.checkpoint(id, st.JobProgress)
		}
	}
	if st.JobDone {
		delete(c.hosted, name)
	}

	if len(acks) > 0 {
		// Best effort: a lost Ack only means the staging is re-reported
		// and re-acknowledged next tick.
		a.Ack(sortedInts(acks))
	}
}

// reconcileMissing handles a believed-hosted job that the agent's status
// no longer reports as running: finished (already handled), staged by a
// revoke (recover the surrendered state), or vanished (restore from the
// last checkpoint). The job is never silently dropped.
func (c *Coordinator) reconcileMissing(name string, id int, st AgentStatus) {
	if c.completedIDs[id] || c.locatedElsewhere(id, name) {
		return
	}
	if sj, staged := revokedByID(st, id); staged {
		c.recoverJob(sj)
		return
	}
	c.recoverCheckpoint(id)
	c.counters.VanishedJobs++
}

// checkpoint records the best known progress for a job.
func (c *Coordinator) checkpoint(id int, progress float64) {
	if progress > c.progress[id] {
		c.progress[id] = progress
	}
}

// revokedByID finds a staged revoked job in a status report.
func revokedByID(st AgentStatus, id int) (Job, bool) {
	for _, j := range st.Revoked {
		if j.ID == id {
			return j, true
		}
	}
	return Job{}, false
}

// recoverAgent restores every job the dead agent was responsible for.
func (c *Coordinator) recoverAgent(name string) {
	if id, ok := c.hosted[name]; ok {
		delete(c.hosted, name)
		delete(c.paused, id)
		c.recoverCheckpoint(id)
	}
	if j, ok := c.limboAssign[name]; ok {
		delete(c.limboAssign, name)
		c.recoverJob(*j)
	}
	if id, ok := c.limboRevoke[name]; ok {
		delete(c.limboRevoke, name)
		if !c.completedIDs[id] && !c.locatedAnywhere(id) {
			c.recoverCheckpoint(id)
		}
	}
}

// recoverCheckpoint rebuilds a job from the coordinator's submission
// records and last checkpointed progress, then reschedules it.
func (c *Coordinator) recoverCheckpoint(id int) {
	c.recoverJob(Job{
		ID:          id,
		DemandS:     c.demands[id],
		SizeMB:      c.jobSize(id),
		Progress:    c.progress[id],
		SubmittedAt: c.submitted[id],
	})
}

// recoverJob reschedules a recovered job: it re-enters the queue after the
// checkpoint-restore transfer cost (the paper's Tmigr) has been paid.
func (c *Coordinator) recoverJob(j Job) {
	cp := j
	c.checkpoint(j.ID, j.Progress)
	c.migrating = append(c.migrating, &transfer{
		job:     &cp,
		dest:    "",
		arrival: c.now + core.RecoveryCost(c.cfg.Migration, j.SizeMB),
	})
	c.counters.RecoveredJobs++
	c.cRecover.Inc()
	c.emit("job-recovered", "", j.ID)
}

// mergeProgress folds a recovered copy's progress into the coordinator's
// copy of the job, wherever it currently is.
func (c *Coordinator) mergeProgress(j Job) {
	c.checkpoint(j.ID, j.Progress)
	for _, q := range c.queue {
		if q.ID == j.ID && j.Progress > q.Progress {
			q.Progress = j.Progress
		}
	}
	for _, tr := range c.migrating {
		if tr.job.ID == j.ID && j.Progress > tr.job.Progress {
			tr.job.Progress = j.Progress
		}
	}
}

// dropActive removes a job from every location the coordinator tracks.
func (c *Coordinator) dropActive(id int) {
	for name, hosted := range c.hosted {
		if hosted == id {
			delete(c.hosted, name)
		}
	}
	for name, j := range c.limboAssign {
		if j.ID == id {
			delete(c.limboAssign, name)
		}
	}
	for name, limbo := range c.limboRevoke {
		if limbo == id {
			delete(c.limboRevoke, name)
		}
	}
	queue := c.queue[:0]
	for _, j := range c.queue {
		if j.ID != id {
			queue = append(queue, j)
		}
	}
	c.queue = queue
	migrating := c.migrating[:0]
	for _, tr := range c.migrating {
		if tr.job.ID != id {
			migrating = append(migrating, tr)
		}
	}
	c.migrating = migrating
}

// locatedAnywhere reports whether the coordinator tracks the job in any
// active location.
func (c *Coordinator) locatedAnywhere(id int) bool {
	return c.locatedElsewhere(id, "")
}

// locatedElsewhere reports whether the job is active anywhere other than
// the named agent.
func (c *Coordinator) locatedElsewhere(id int, except string) bool {
	for name, hosted := range c.hosted {
		if hosted == id && name != except {
			return true
		}
	}
	for name, j := range c.limboAssign {
		if j.ID == id && name != except {
			return true
		}
	}
	for name, limbo := range c.limboRevoke {
		if limbo == id && name != except {
			return true
		}
	}
	for _, j := range c.queue {
		if j.ID == id {
			return true
		}
	}
	for _, tr := range c.migrating {
		if tr.job.ID == id {
			return true
		}
	}
	return false
}

// CheckInvariants verifies the coordinator's job accounting: every
// submitted, uncompleted job is tracked in exactly one location (queue,
// transfer, hosted, or limbo) and no completed job is still active. Tests
// call it after every step of a fault-injection scenario.
func (c *Coordinator) CheckInvariants() error {
	locations := map[int]int{}
	for _, j := range c.queue {
		locations[j.ID]++
	}
	for _, tr := range c.migrating {
		locations[tr.job.ID]++
	}
	for _, id := range c.hosted {
		locations[id]++
	}
	for _, j := range c.limboAssign {
		locations[j.ID]++
	}
	for _, id := range c.limboRevoke {
		locations[id]++
	}
	for id := 0; id < c.nextID; id++ {
		n := locations[id]
		switch {
		case c.completedIDs[id] && n != 0:
			return fmt.Errorf("runtime: completed job %d still tracked in %d locations", id, n)
		case !c.completedIDs[id] && n == 0:
			return fmt.Errorf("runtime: job %d lost (tracked nowhere)", id)
		case !c.completedIDs[id] && n > 1:
			return fmt.Errorf("runtime: job %d double-tracked in %d locations", id, n)
		}
	}
	seen := map[int]bool{}
	for _, done := range c.completed {
		if seen[done.Job.ID] {
			return fmt.Errorf("runtime: job %d completed twice", done.Job.ID)
		}
		seen[done.Job.ID] = true
	}
	return nil
}

func (c *Coordinator) agentByName(name string) AgentClient {
	for _, a := range c.agents {
		if a.Name() == name {
			return a
		}
	}
	return nil
}

// healthy reports whether an agent is eligible for work.
func (c *Coordinator) healthy(name string) bool {
	t, ok := c.health[name]
	return ok && t.State() == core.Healthy
}

// reservedDests returns the destinations already claimed by in-flight
// transfers.
func (c *Coordinator) reservedDests() map[string]bool {
	out := map[string]bool{}
	for _, tr := range c.migrating {
		if tr.dest != "" {
			out[tr.dest] = true
		}
	}
	return out
}

// findDest picks a destination agent: healthy, idle, unoccupied,
// unreserved, with no ambiguous call pending and room for the job; lowest
// utilization first. With allowNonIdle the search falls back to non-idle
// agents (linger placement).
func (c *Coordinator) findDest(j *Job, allowNonIdle bool, exclude string) string {
	reserved := c.reservedDests()
	names := make([]string, 0, len(c.agents))
	for _, a := range c.agents {
		names = append(names, a.Name())
	}
	sort.Strings(names) // deterministic iteration
	best := ""
	bestU := 0.0
	bestIdle := false
	for _, name := range names {
		if name == exclude || reserved[name] || !c.healthy(name) {
			continue
		}
		if _, busy := c.hosted[name]; busy {
			continue
		}
		if _, pending := c.limboAssign[name]; pending {
			continue
		}
		if _, pending := c.limboRevoke[name]; pending {
			continue
		}
		st := c.status[name]
		if st.FreeMB < j.SizeMB {
			continue
		}
		if !st.Idle && !allowNonIdle {
			continue
		}
		better := best == "" ||
			(st.Idle && !bestIdle) ||
			(st.Idle == bestIdle && st.Util < bestU)
		if better {
			best, bestU, bestIdle = name, st.Util, st.Idle
		}
	}
	return best
}

// assignOutcome classifies one placement attempt.
type assignOutcome int

const (
	assignLanded assignOutcome = iota
	assignAmbiguous
	assignRejected
)

// assignTo places a job on an agent, classifying the outcome. An ambiguous
// outcome (lost reply) parks the job in the agent's limbo slot.
func (c *Coordinator) assignTo(name string, j *Job) assignOutcome {
	err := c.agentByName(name).Assign(j)
	switch {
	case err == nil:
		c.hosted[name] = j.ID
		return assignLanded
	case IsTransient(err):
		c.limboAssign[name] = j
		c.counters.AmbiguousAssigns++
		return assignAmbiguous
	default:
		return assignRejected
	}
}

// startMigration revokes the job from src and schedules its arrival at
// dest after the §2 migration cost. A lost revoke reply parks the job in
// revoke limbo: the next status report from src resolves whether the job
// is still there or its state must be recovered from staging.
func (c *Coordinator) startMigration(jobID int, src, dest string) error {
	a := c.agentByName(src)
	j, err := a.Revoke(jobID)
	if err != nil {
		if IsTransient(err) {
			delete(c.hosted, src)
			delete(c.paused, jobID)
			c.limboRevoke[src] = jobID
			c.counters.AmbiguousRevokes++
			return nil
		}
		return err
	}
	delete(c.hosted, src)
	delete(c.paused, jobID)
	a.Ack([]int{jobID}) // best effort: clears the revocation staging
	c.migrating = append(c.migrating, &transfer{
		job:     j,
		dest:    dest,
		arrival: c.now + c.cfg.Migration.Time(j.SizeMB),
	})
	c.migrations++
	c.emit("migrate", dest, jobID)
	return nil
}

// landMigrations assigns transfers whose arrival time has passed. Recovery
// transfers (empty dest) land in the queue; a destination that turned
// unhealthy or unviable sends the job back to the queue as well.
func (c *Coordinator) landMigrations() {
	remaining := c.migrating[:0]
	var landedQueue []*Job
	for _, tr := range c.migrating {
		if tr.arrival > c.now {
			remaining = append(remaining, tr)
			continue
		}
		if tr.dest == "" || !c.healthy(tr.dest) {
			landedQueue = append(landedQueue, tr.job)
			continue
		}
		if c.assignTo(tr.dest, tr.job) == assignRejected {
			// Destination no longer viable (owner memory surged): requeue.
			landedQueue = append(landedQueue, tr.job)
		}
	}
	c.migrating = remaining
	c.queue = append(c.queue, landedQueue...)
}

// applyPolicy handles hosted jobs on non-idle agents per the policy. Jobs
// on suspect or dead agents are left alone: the failure detector decides
// their fate, not the scheduler.
func (c *Coordinator) applyPolicy() error {
	names := make([]string, 0, len(c.hosted))
	for name := range c.hosted {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !c.healthy(name) {
			continue
		}
		jobID := c.hosted[name]
		st := c.status[name]
		if st.Idle {
			// Owner gone again: resume a paused job in place.
			if _, isPaused := c.paused[jobID]; isPaused {
				if err := c.pauseJob(name, jobID, false); err != nil {
					return err
				}
			}
			continue
		}
		switch c.cfg.Policy {
		case core.ImmediateEviction:
			if dest := c.findDest(&Job{ID: jobID, SizeMB: c.jobSize(jobID)}, false, name); dest != "" {
				if err := c.startMigration(jobID, name, dest); err != nil {
					return err
				}
			}
		case core.PauseAndMigrate:
			since, isPaused := c.paused[jobID]
			if !isPaused {
				if err := c.pauseJob(name, jobID, true); err != nil {
					return err
				}
				continue
			}
			if c.now-since >= c.cfg.PauseTime {
				if dest := c.findDest(&Job{ID: jobID, SizeMB: c.jobSize(jobID)}, false, name); dest != "" {
					if err := c.startMigration(jobID, name, dest); err != nil {
						return err
					}
				}
			}
		case core.LingerLonger:
			dest := c.findDest(&Job{ID: jobID, SizeMB: c.jobSize(jobID)}, false, name)
			if dest == "" {
				continue
			}
			h := st.EpisodeUtil
			l := c.status[dest].Util
			if h > 1 {
				h = 1
			}
			if l > 1 {
				l = 1
			}
			remaining := c.predictor.PredictRemaining(st.EpisodeAge)
			if h > l && remaining >= c.decider.LingerDeadline(h, l, c.jobSize(jobID)) {
				if err := c.startMigration(jobID, name, dest); err != nil {
					return err
				}
			}
		case core.LingerForever:
			// Never migrates.
		}
	}
	return nil
}

// pauseJob suspends or resumes a hosted job, updating the pause ledger
// only on success; a transient failure is skipped and retried on the next
// step's policy pass.
func (c *Coordinator) pauseJob(name string, jobID int, paused bool) error {
	err := c.agentByName(name).Pause(jobID, paused)
	if err != nil {
		if IsTransient(err) {
			return nil
		}
		return err
	}
	if paused {
		c.paused[jobID] = c.now
	} else {
		delete(c.paused, jobID)
	}
	return nil
}

// jobSize returns the image size of a submitted job (recorded at
// submission), falling back to the paper's 8 MB for unknown IDs.
func (c *Coordinator) jobSize(jobID int) float64 {
	if s, ok := c.sizes[jobID]; ok {
		return s
	}
	return 8
}

// placeQueued assigns queued jobs to free agents (idle first; non-idle
// fallback under the linger policies).
func (c *Coordinator) placeQueued() {
	if len(c.queue) == 0 {
		return
	}
	allowNonIdle := c.cfg.Policy.Lingers()
	pending := c.queue
	c.queue = c.queue[:0]
	for _, j := range pending {
		dest := c.findDest(j, allowNonIdle, "")
		if dest == "" {
			c.queue = append(c.queue, j)
			continue
		}
		if c.assignTo(dest, j) == assignRejected {
			c.queue = append(c.queue, j)
		}
	}
}
