package runtime

import (
	"fmt"
	"sort"

	"lingerlonger/internal/core"
	"lingerlonger/internal/predict"
)

// AgentClient is the coordinator's handle to one workstation agent. The
// in-process implementation wraps *Agent directly; the TCP implementation
// speaks the gob protocol of transport.go. All calls are synchronous, so
// the coordinator's step loop is deterministic over either transport.
type AgentClient interface {
	Name() string
	Tick(dt float64) (AgentStatus, error)
	Assign(j *Job) error
	Revoke(jobID int) (*Job, error)
	Pause(jobID int, paused bool) error
	Close() error
}

// LocalClient adapts an in-process *Agent to the AgentClient interface.
type LocalClient struct{ Agent *Agent }

// Name returns the agent name.
func (c LocalClient) Name() string { return c.Agent.Name() }

// Tick advances the agent.
func (c LocalClient) Tick(dt float64) (AgentStatus, error) { return c.Agent.Tick(dt) }

// Assign places a job.
func (c LocalClient) Assign(j *Job) error { return c.Agent.Assign(j) }

// Revoke removes a job.
func (c LocalClient) Revoke(jobID int) (*Job, error) { return c.Agent.Revoke(jobID) }

// Pause suspends or resumes a job.
func (c LocalClient) Pause(jobID int, paused bool) error { return c.Agent.Pause(jobID, paused) }

// Close is a no-op for in-process agents.
func (c LocalClient) Close() error { return nil }

// CoordinatorConfig parameterizes the scheduling daemon.
type CoordinatorConfig struct {
	Policy    core.Policy
	Migration core.MigrationCost
	PauseTime float64           // PM suspend interval, seconds
	Predictor predict.Predictor // nil selects the paper's 2x-age rule
}

// DefaultCoordinatorConfig returns LL with the paper's migration cost.
func DefaultCoordinatorConfig() CoordinatorConfig {
	return CoordinatorConfig{
		Policy:    core.LingerLonger,
		Migration: core.DefaultMigrationCost(),
		PauseTime: 30,
	}
}

// CompletedJob records one finished job.
type CompletedJob struct {
	Job         Job
	CompletedAt float64 // virtual time
	Agent       string  // agent that finished it
}

// Coordinator owns the job queue and drives the agents. It is not safe
// for concurrent use; Step is the single entry point.
type Coordinator struct {
	cfg       CoordinatorConfig
	decider   core.Decider
	predictor predict.Predictor

	agents []AgentClient
	status map[string]AgentStatus
	hosted map[string]int // agent name -> hosted job ID (-1 none)
	paused map[int]float64

	queue     []*Job
	migrating []*transfer
	sizes     map[int]float64 // job ID -> image size, recorded at submission
	submitted map[int]float64 // job ID -> submission time
	nextID    int
	now       float64

	completed  []CompletedJob
	migrations int
}

// transfer is a job in flight between agents.
type transfer struct {
	job     *Job
	dest    string
	arrival float64
}

// NewCoordinator returns a coordinator over the given agents.
func NewCoordinator(cfg CoordinatorConfig, agents []AgentClient) (*Coordinator, error) {
	if len(agents) == 0 {
		return nil, fmt.Errorf("runtime: no agents")
	}
	if cfg.PauseTime < 0 {
		return nil, fmt.Errorf("runtime: negative pause time %g", cfg.PauseTime)
	}
	pred := cfg.Predictor
	if pred == nil {
		pred = predict.MedianLife{}
	}
	seen := map[string]bool{}
	for _, a := range agents {
		if seen[a.Name()] {
			return nil, fmt.Errorf("runtime: duplicate agent name %q", a.Name())
		}
		seen[a.Name()] = true
	}
	return &Coordinator{
		cfg:       cfg,
		decider:   core.Decider{Cost: cfg.Migration},
		predictor: pred,
		agents:    agents,
		status:    map[string]AgentStatus{},
		hosted:    map[string]int{},
		paused:    map[int]float64{},
		sizes:     map[int]float64{},
		submitted: map[int]float64{},
	}, nil
}

// Now returns the coordinator's virtual clock.
func (c *Coordinator) Now() float64 { return c.now }

// Submit enqueues a new foreign job and returns its ID.
func (c *Coordinator) Submit(demandS, sizeMB float64) (int, error) {
	j := &Job{ID: c.nextID, DemandS: demandS, SizeMB: sizeMB, SubmittedAt: c.now}
	if err := j.Validate(); err != nil {
		return 0, err
	}
	c.nextID++
	c.sizes[j.ID] = j.SizeMB
	c.submitted[j.ID] = j.SubmittedAt
	c.queue = append(c.queue, j)
	return j.ID, nil
}

// Completed returns the finished-job records so far.
func (c *Coordinator) Completed() []CompletedJob { return c.completed }

// Migrations returns the number of migrations started.
func (c *Coordinator) Migrations() int { return c.migrations }

// QueueLen returns the number of jobs waiting for a node.
func (c *Coordinator) QueueLen() int { return len(c.queue) }

// Step advances the whole system by dt virtual seconds: it ticks every
// agent, applies the scheduling policy, lands migrations, and places
// queued jobs.
func (c *Coordinator) Step(dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("runtime: non-positive step %g", dt)
	}
	c.now += dt

	// 1. Tick agents and gather status.
	for _, a := range c.agents {
		st, err := a.Tick(dt)
		if err != nil {
			return fmt.Errorf("runtime: tick %s: %w", a.Name(), err)
		}
		c.status[a.Name()] = st
		if st.JobDone {
			c.completed = append(c.completed, CompletedJob{
				Job: Job{
					ID:          st.JobID,
					Progress:    st.JobProgress,
					SizeMB:      c.jobSize(st.JobID),
					SubmittedAt: c.submitted[st.JobID],
				},
				CompletedAt: c.now,
				Agent:       st.Name,
			})
			delete(c.hosted, st.Name)
			delete(c.paused, st.JobID)
		} else if st.JobID >= 0 {
			c.hosted[st.Name] = st.JobID
		} else {
			delete(c.hosted, st.Name)
		}
	}

	// 2. Land migrations that completed their transfer.
	c.landMigrations()

	// 3. Policy decisions for hosted jobs on non-idle agents.
	if err := c.applyPolicy(); err != nil {
		return err
	}

	// 4. Place queued jobs.
	return c.placeQueued()
}

func (c *Coordinator) agentByName(name string) AgentClient {
	for _, a := range c.agents {
		if a.Name() == name {
			return a
		}
	}
	return nil
}

// reservedDests returns the destinations already claimed by in-flight
// transfers.
func (c *Coordinator) reservedDests() map[string]bool {
	out := map[string]bool{}
	for _, tr := range c.migrating {
		out[tr.dest] = true
	}
	return out
}

// findDest picks a destination agent: idle, unoccupied, unreserved, with
// room for the job; lowest utilization first. With allowNonIdle the
// search falls back to non-idle agents (linger placement).
func (c *Coordinator) findDest(j *Job, allowNonIdle bool, exclude string) string {
	reserved := c.reservedDests()
	names := make([]string, 0, len(c.agents))
	for _, a := range c.agents {
		names = append(names, a.Name())
	}
	sort.Strings(names) // deterministic iteration
	best := ""
	bestU := 0.0
	bestIdle := false
	for _, name := range names {
		if name == exclude || reserved[name] {
			continue
		}
		if _, busy := c.hosted[name]; busy {
			continue
		}
		st := c.status[name]
		if st.FreeMB < j.SizeMB {
			continue
		}
		if !st.Idle && !allowNonIdle {
			continue
		}
		better := best == "" ||
			(st.Idle && !bestIdle) ||
			(st.Idle == bestIdle && st.Util < bestU)
		if better {
			best, bestU, bestIdle = name, st.Util, st.Idle
		}
	}
	return best
}

// startMigration revokes the job from src and schedules its arrival at
// dest after the §2 migration cost.
func (c *Coordinator) startMigration(jobID int, src, dest string) error {
	j, err := c.agentByName(src).Revoke(jobID)
	if err != nil {
		return err
	}
	delete(c.hosted, src)
	delete(c.paused, jobID)
	c.migrating = append(c.migrating, &transfer{
		job:     j,
		dest:    dest,
		arrival: c.now + c.cfg.Migration.Time(j.SizeMB),
	})
	c.migrations++
	return nil
}

// landMigrations assigns transfers whose arrival time has passed.
func (c *Coordinator) landMigrations() {
	remaining := c.migrating[:0]
	for _, tr := range c.migrating {
		if tr.arrival > c.now {
			remaining = append(remaining, tr)
			continue
		}
		if err := c.agentByName(tr.dest).Assign(tr.job); err != nil {
			// Destination no longer viable (owner memory surged): requeue.
			c.queue = append(c.queue, tr.job)
			continue
		}
		c.hosted[tr.dest] = tr.job.ID
	}
	c.migrating = remaining
}

// applyPolicy handles hosted jobs on non-idle agents per the policy.
func (c *Coordinator) applyPolicy() error {
	names := make([]string, 0, len(c.hosted))
	for name := range c.hosted {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		jobID := c.hosted[name]
		st := c.status[name]
		if st.Idle {
			// Owner gone again: resume a paused job in place.
			if _, isPaused := c.paused[jobID]; isPaused {
				if err := c.agentByName(name).Pause(jobID, false); err != nil {
					return err
				}
				delete(c.paused, jobID)
			}
			continue
		}
		switch c.cfg.Policy {
		case core.ImmediateEviction:
			if dest := c.findDest(&Job{ID: jobID, SizeMB: c.jobSize(jobID)}, false, name); dest != "" {
				if err := c.startMigration(jobID, name, dest); err != nil {
					return err
				}
			}
		case core.PauseAndMigrate:
			since, isPaused := c.paused[jobID]
			if !isPaused {
				if err := c.agentByName(name).Pause(jobID, true); err != nil {
					return err
				}
				c.paused[jobID] = c.now
				continue
			}
			if c.now-since >= c.cfg.PauseTime {
				if dest := c.findDest(&Job{ID: jobID, SizeMB: c.jobSize(jobID)}, false, name); dest != "" {
					if err := c.startMigration(jobID, name, dest); err != nil {
						return err
					}
				}
			}
		case core.LingerLonger:
			dest := c.findDest(&Job{ID: jobID, SizeMB: c.jobSize(jobID)}, false, name)
			if dest == "" {
				continue
			}
			h := st.EpisodeUtil
			l := c.status[dest].Util
			if h > 1 {
				h = 1
			}
			if l > 1 {
				l = 1
			}
			remaining := c.predictor.PredictRemaining(st.EpisodeAge)
			if h > l && remaining >= c.decider.LingerDeadline(h, l, c.jobSize(jobID)) {
				if err := c.startMigration(jobID, name, dest); err != nil {
					return err
				}
			}
		case core.LingerForever:
			// Never migrates.
		}
	}
	return nil
}

// jobSize returns the image size of a submitted job (recorded at
// submission), falling back to the paper's 8 MB for unknown IDs.
func (c *Coordinator) jobSize(jobID int) float64 {
	if s, ok := c.sizes[jobID]; ok {
		return s
	}
	return 8
}

// placeQueued assigns queued jobs to free agents (idle first; non-idle
// fallback under the linger policies).
func (c *Coordinator) placeQueued() error {
	if len(c.queue) == 0 {
		return nil
	}
	allowNonIdle := c.cfg.Policy.Lingers()
	remaining := c.queue[:0]
	for _, j := range c.queue {
		dest := c.findDest(j, allowNonIdle, "")
		if dest == "" {
			remaining = append(remaining, j)
			continue
		}
		if err := c.agentByName(dest).Assign(j); err != nil {
			remaining = append(remaining, j)
			continue
		}
		c.hosted[dest] = j.ID
	}
	c.queue = remaining
	return nil
}
