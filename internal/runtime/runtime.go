// Package runtime is the prototype counterpart of the simulator: a small
// distributed cycle-stealing system in the architecture the paper's §7
// describes ("we are implementing the prototype ... the strict
// priority-based scheduler and page allocation module have been
// developed").
//
// A Coordinator owns the foreign-job queue and the scheduling policy; one
// Agent per workstation executes at most one foreign job at strictly lower
// priority than the owner's workload and reports its status every tick.
// Migration moves the job's serialized state (encoding/gob) from the
// source agent through the coordinator to the destination agent, paying
// the §2 migration cost in virtual time.
//
// Time is virtual and driven synchronously by Coordinator.Step, so runs
// are deterministic — including over the TCP transport (transport.go),
// where every agent runs behind a gob request/response protocol on a real
// socket. The same policy code (internal/core) and predictors
// (internal/predict) used by the simulator drive the prototype.
package runtime

import (
	"fmt"
	"math"
)

// Job is one foreign compute job. The struct is the unit of migration: it
// is gob-encoded when moved between agents, so Progress carries over.
type Job struct {
	ID       int
	DemandS  float64 // CPU seconds required
	SizeMB   float64 // process image size (drives migration cost)
	Progress float64 // CPU seconds completed so far

	SubmittedAt float64 // virtual time of submission
}

// Done reports whether the job has received its full demand.
func (j *Job) Done() bool { return j.Progress >= j.DemandS-1e-9 }

// Remaining returns the CPU seconds still owed.
func (j *Job) Remaining() float64 {
	if r := j.DemandS - j.Progress; r > 0 {
		return r
	}
	return 0
}

// Validate checks job sanity.
func (j *Job) Validate() error {
	if j.DemandS <= 0 {
		return fmt.Errorf("runtime: job %d demand %g", j.ID, j.DemandS)
	}
	if j.SizeMB < 0 {
		return fmt.Errorf("runtime: job %d size %g", j.ID, j.SizeMB)
	}
	if j.Progress < 0 || math.IsNaN(j.Progress) {
		return fmt.Errorf("runtime: job %d progress %g", j.ID, j.Progress)
	}
	return nil
}

// OwnerSource supplies the owner's workload on one workstation: CPU
// utilization, recruitment-threshold idle state, and free memory, all as
// functions of virtual time. trace.View satisfies the first two; the
// scripted owner in this package satisfies all three.
type OwnerSource interface {
	UtilizationAt(t float64) float64
	IdleAt(t float64) bool
	FreeMBAt(t float64) float64
}

// OwnerPhase is one segment of a scripted owner's day.
type OwnerPhase struct {
	Duration float64 // seconds
	Util     float64 // CPU utilization during the phase
	Keyboard bool    // keyboard activity during the phase
	FreeMB   float64 // free memory during the phase
}

// ScriptedOwner cycles through a fixed phase list forever. Idle state
// follows the paper's recruitment threshold: a phase time is idle when
// utilization stays below 10% and the keyboard untouched for the trailing
// 60 seconds.
type ScriptedOwner struct {
	Phases []OwnerPhase
	total  float64
}

// NewScriptedOwner validates and returns a scripted owner.
func NewScriptedOwner(phases []OwnerPhase) (*ScriptedOwner, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("runtime: empty owner script")
	}
	total := 0.0
	for i, p := range phases {
		if p.Duration <= 0 {
			return nil, fmt.Errorf("runtime: phase %d duration %g", i, p.Duration)
		}
		if p.Util < 0 || p.Util > 1 {
			return nil, fmt.Errorf("runtime: phase %d utilization %g", i, p.Util)
		}
		if p.FreeMB < 0 {
			return nil, fmt.Errorf("runtime: phase %d free memory %g", i, p.FreeMB)
		}
		total += p.Duration
	}
	return &ScriptedOwner{Phases: phases, total: total}, nil
}

// phaseAt returns the phase covering virtual time t (cyclic).
func (o *ScriptedOwner) phaseAt(t float64) OwnerPhase {
	t = math.Mod(t, o.total)
	if t < 0 {
		t += o.total
	}
	for _, p := range o.Phases {
		if t < p.Duration {
			return p
		}
		t -= p.Duration
	}
	return o.Phases[len(o.Phases)-1]
}

// UtilizationAt returns the scripted CPU utilization at t.
func (o *ScriptedOwner) UtilizationAt(t float64) float64 { return o.phaseAt(t).Util }

// FreeMBAt returns the scripted free memory at t.
func (o *ScriptedOwner) FreeMBAt(t float64) float64 { return o.phaseAt(t).FreeMB }

// activeAt reports owner activity (keyboard or CPU >= 10%) at t.
func (o *ScriptedOwner) activeAt(t float64) bool {
	p := o.phaseAt(t)
	return p.Keyboard || p.Util >= 0.10
}

// IdleAt applies the recruitment threshold: idle iff no activity in the
// trailing 60 seconds (checked at 2-second granularity).
func (o *ScriptedOwner) IdleAt(t float64) bool {
	for back := 0.0; back <= 60; back += 2 {
		at := t - back
		if at < 0 {
			break
		}
		if o.activeAt(at) {
			return false
		}
	}
	return true
}

// AgentStatus is one tick's report from an agent to the coordinator.
type AgentStatus struct {
	Name string

	Idle   bool
	Util   float64
	FreeMB float64

	// Episode tracking for the linger decision.
	EpisodeAge  float64 // seconds since the node turned non-idle (0 when idle)
	EpisodeUtil float64 // mean utilization over the episode

	// Job state.
	JobID       int // -1 when no job is hosted
	JobProgress float64
	JobDone     bool

	// Fault-tolerance staging, re-reported every tick until the
	// coordinator acknowledges (Ack): jobs finished on this agent, and job
	// state surrendered by a Revoke whose reply may have been lost. The
	// re-reporting makes completion and revocation survive dropped replies
	// — the coordinator deduplicates by job ID.
	Finished []Job // finished since the last acknowledged tick
	Revoked  []Job // revoked state awaiting acknowledgment, sorted by ID
}
