package runtime

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lingerlonger/internal/exp"
	"lingerlonger/internal/obs"
	"lingerlonger/internal/stats"
)

// This file is the failure model of the prototype: typed transport errors,
// a deterministic seeded fault injector, the bounded-retry policy shared by
// every AgentClient implementation, and FaultClient — an in-process client
// that simulates a lossy network between the coordinator and an agent so
// failure scenarios replay byte-identically from a seed.

// Typed transport errors. Every AgentClient call that fails for a network
// reason (rather than an agent-level rejection) wraps one of these, so the
// coordinator can distinguish "the agent said no" from "the agent may or
// may not have heard me".
var (
	// ErrAgentTimeout reports a call that exceeded its per-RPC deadline.
	// The request may or may not have executed on the agent.
	ErrAgentTimeout = errors.New("runtime: agent call timed out")

	// ErrAgentDown reports a connection-level failure (refused, reset,
	// closed mid-call). The request may or may not have executed.
	ErrAgentDown = errors.New("runtime: agent unreachable")

	// ErrCorruptFrame reports a reply that could not be decoded. The
	// request executed; its result was lost in transit.
	ErrCorruptFrame = errors.New("runtime: corrupt transport frame")
)

// IsTransient reports whether err is a transport-level failure worth
// retrying (the call outcome is unknown), as opposed to an agent-level
// rejection (the call definitely executed and was refused).
func IsTransient(err error) bool {
	return errors.Is(err, ErrAgentTimeout) ||
		errors.Is(err, ErrAgentDown) ||
		errors.Is(err, ErrCorruptFrame)
}

// FaultAction is the injector's verdict for one network attempt.
type FaultAction int

const (
	// FaultNone delivers the call untouched.
	FaultNone FaultAction = iota
	// FaultDropSend loses the request before the agent sees it.
	FaultDropSend
	// FaultDropReply executes the call on the agent but loses the reply.
	FaultDropReply
	// FaultCorrupt executes the call but garbles the reply frame.
	FaultCorrupt
	// FaultDelay executes the call but delays the reply past the client's
	// deadline — indistinguishable from FaultDropReply to the caller, but
	// counted separately.
	FaultDelay
)

// String names the action for logs and tests.
func (a FaultAction) String() string {
	switch a {
	case FaultNone:
		return "none"
	case FaultDropSend:
		return "drop-send"
	case FaultDropReply:
		return "drop-reply"
	case FaultCorrupt:
		return "corrupt"
	case FaultDelay:
		return "delay"
	}
	return fmt.Sprintf("FaultAction(%d)", int(a))
}

// FaultInjector decides the fate of each network attempt to a target
// agent. Implementations must be deterministic: the verdict sequence for a
// target may depend only on construction parameters and the per-target
// attempt count. Next is called once per attempt, including retries.
type FaultInjector interface {
	Next(target string, kind reqKind) FaultAction
}

// Partition severs one agent for a window of attempts: every attempt with
// per-target index in [FromCall, FromCall+Calls) is dropped before sending.
type Partition struct {
	FromCall int // first severed attempt index (0-based, per target)
	Calls    int // number of severed attempts
}

// FaultConfig parameterizes the seeded injector. The probabilities are
// per-attempt and mutually exclusive (their sum must be <= 1); Partitions
// override the probabilistic verdict during their window.
type FaultConfig struct {
	Drop       float64 // P(request lost before the agent sees it)
	DropReply  float64 // P(call executes, reply lost)
	Corrupt    float64 // P(call executes, reply frame garbled)
	Delay      float64 // P(call executes, reply slower than the deadline)
	Seed       int64
	Partitions map[string]Partition // target name -> severed window
}

// Validate checks the configured probabilities.
func (c FaultConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", c.Drop}, {"dropreply", c.DropReply}, {"corrupt", c.Corrupt}, {"delay", c.Delay}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("runtime: fault %s probability %g out of [0,1]", p.name, p.v)
		}
	}
	if s := c.Drop + c.DropReply + c.Corrupt + c.Delay; s > 1 {
		return fmt.Errorf("runtime: fault probabilities sum to %g > 1", s)
	}
	for name, p := range c.Partitions {
		if p.FromCall < 0 || p.Calls < 0 {
			return fmt.Errorf("runtime: partition %s window [%d,+%d) invalid", name, p.FromCall, p.Calls)
		}
	}
	return nil
}

// Enabled reports whether the config injects any fault at all.
func (c FaultConfig) Enabled() bool {
	return c.Drop > 0 || c.DropReply > 0 || c.Corrupt > 0 || c.Delay > 0 || len(c.Partitions) > 0
}

// ParseFaultSpec parses the comma-separated key=value syntax of the
// lingerd -fault flag, e.g.
//
//	drop=0.05,seed=42
//	drop=0.1,dropreply=0.02,corrupt=0.01,partition=beta:150+200
//
// Keys: drop, dropreply, corrupt, delay (probabilities), seed (int64), and
// partition=<target>:<from>+<calls> (repeatable).
func ParseFaultSpec(spec string) (FaultConfig, error) {
	cfg := FaultConfig{Partitions: map[string]Partition{}}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return cfg, fmt.Errorf("runtime: fault spec field %q is not key=value", field)
		}
		switch key {
		case "drop", "dropreply", "corrupt", "delay":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return cfg, fmt.Errorf("runtime: fault spec %s=%q: %v", key, val, err)
			}
			switch key {
			case "drop":
				cfg.Drop = f
			case "dropreply":
				cfg.DropReply = f
			case "corrupt":
				cfg.Corrupt = f
			case "delay":
				cfg.Delay = f
			}
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("runtime: fault spec seed=%q: %v", val, err)
			}
			cfg.Seed = n
		case "partition":
			target, window, ok := strings.Cut(val, ":")
			if !ok {
				return cfg, fmt.Errorf("runtime: partition %q is not target:from+calls", val)
			}
			from, calls, ok := strings.Cut(window, "+")
			if !ok {
				return cfg, fmt.Errorf("runtime: partition window %q is not from+calls", window)
			}
			f, err1 := strconv.Atoi(from)
			n, err2 := strconv.Atoi(calls)
			if err1 != nil || err2 != nil || f < 0 || n < 0 {
				return cfg, fmt.Errorf("runtime: partition window %q invalid", window)
			}
			cfg.Partitions[target] = Partition{FromCall: f, Calls: n}
		default:
			return cfg, fmt.Errorf("runtime: unknown fault spec key %q", key)
		}
	}
	return cfg, cfg.Validate()
}

// SeededInjector is the deterministic FaultInjector: each target gets an
// independent RNG stream derived from (Seed, hash(target)), and one uniform
// draw decides each attempt's fate. The verdict sequence for a target is a
// pure function of the config and the attempt index, so runs replay
// byte-identically regardless of goroutine scheduling or which other
// targets exist.
type SeededInjector struct {
	cfg FaultConfig

	mu      sync.Mutex
	streams map[string]*targetStream
}

type targetStream struct {
	rng   *stats.RNG
	calls int
}

// NewSeededInjector validates cfg and returns the injector.
func NewSeededInjector(cfg FaultConfig) (*SeededInjector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SeededInjector{cfg: cfg, streams: map[string]*targetStream{}}, nil
}

// Next returns the verdict for the next attempt to target. Safe for
// concurrent use; determinism holds as long as attempts to any one target
// are sequential (which the coordinator's synchronous step loop guarantees).
func (f *SeededInjector) Next(target string, kind reqKind) FaultAction {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.streams[target]
	if s == nil {
		h := fnv.New64a()
		h.Write([]byte(target))
		s = &targetStream{rng: stats.NewRNG(exp.DeriveSeed(f.cfg.Seed^int64(h.Sum64()), 0))}
		f.streams[target] = s
	}
	call := s.calls
	s.calls++
	// The draw happens unconditionally so that a partition window does not
	// shift the verdicts of the calls after it.
	u := s.rng.Float64()
	if p, ok := f.cfg.Partitions[target]; ok && call >= p.FromCall && call < p.FromCall+p.Calls {
		return FaultDropSend
	}
	switch {
	case u < f.cfg.Drop:
		return FaultDropSend
	case u < f.cfg.Drop+f.cfg.DropReply:
		return FaultDropReply
	case u < f.cfg.Drop+f.cfg.DropReply+f.cfg.Corrupt:
		return FaultCorrupt
	case u < f.cfg.Drop+f.cfg.DropReply+f.cfg.Corrupt+f.cfg.Delay:
		return FaultDelay
	}
	return FaultNone
}

// FaultCounters tallies transport-level events across a run. Clients
// sharing one counter struct must be driven sequentially (the coordinator's
// step loop is).
type FaultCounters struct {
	Attempts       int `json:"attempts"`
	Retries        int `json:"retries"`
	Timeouts       int `json:"timeouts"`
	CorruptFrames  int `json:"corruptFrames"`
	DroppedSends   int `json:"droppedSends"`
	DroppedReplies int `json:"droppedReplies"`
	Delays         int `json:"delays"`
}

// Mirror adds the tallies into the observability registry under the
// runtime.rpc.* names. Clients increment this struct inline (they are
// driven sequentially by the coordinator's step loop, so plain ints
// suffice); the run's driver mirrors the totals once at the end, which
// keeps the RPC path free of any per-call observability cost.
func (fc *FaultCounters) Mirror(r *obs.Recorder) {
	if fc == nil || r == nil {
		return
	}
	r.Counter(obs.RPCAttempts).Add(int64(fc.Attempts))
	r.Counter(obs.RPCRetries).Add(int64(fc.Retries))
	r.Counter(obs.RPCTimeouts).Add(int64(fc.Timeouts))
	r.Counter(obs.RPCCorruptFrames).Add(int64(fc.CorruptFrames))
}

// RetryConfig bounds the retry loop every client runs around a transient
// failure: up to MaxAttempts attempts with exponential backoff starting at
// BaseDelay, capped at MaxDelay, with full jitter drawn from a stream
// seeded via exp.DeriveSeed(Seed, 0) so wall-clock behavior is reproducible.
// A zero BaseDelay disables sleeping (the virtual-time test default).
type RetryConfig struct {
	MaxAttempts int
	BaseDelay   time.Duration
	MaxDelay    time.Duration
	Seed        int64
}

// DefaultRetryConfig returns three attempts with no backoff sleep — the
// deterministic virtual-time default. Real TCP deployments should set
// BaseDelay (lingerd uses 10ms).
func DefaultRetryConfig() RetryConfig {
	return RetryConfig{MaxAttempts: 3}
}

// attempts returns the effective attempt bound (at least one).
func (rc RetryConfig) attempts() int {
	if rc.MaxAttempts < 1 {
		return 1
	}
	return rc.MaxAttempts
}

// backoff returns the sleep before retry attempt (1-based), with
// exponential growth and full jitter in [1/2, 1) of the nominal delay.
func (rc RetryConfig) backoff(attempt int, rng *stats.RNG) time.Duration {
	if rc.BaseDelay <= 0 {
		return 0
	}
	d := rc.BaseDelay << uint(attempt-1)
	if rc.MaxDelay > 0 && d > rc.MaxDelay {
		d = rc.MaxDelay
	}
	return time.Duration((0.5 + 0.5*rng.Float64()) * float64(d))
}

// invokeRetry runs attempt under rc: transient errors are retried (with
// backoff and counters), agent-level errors and successes return
// immediately. It returns the last response and error.
func invokeRetry(rc RetryConfig, rng *stats.RNG, counters *FaultCounters, attempt func() (response, error)) (response, error) {
	var resp response
	var err error
	for i := 0; i < rc.attempts(); i++ {
		if i > 0 {
			if counters != nil {
				counters.Retries++
			}
			if d := rc.backoff(i, rng); d > 0 {
				time.Sleep(d)
			}
		}
		if counters != nil {
			counters.Attempts++
		}
		resp, err = attempt()
		if err == nil || !IsTransient(err) {
			return resp, err
		}
	}
	return resp, err
}

// FaultClient is an in-process AgentClient that simulates the lossy
// network between the coordinator and one agent: every logical call is
// stamped with a sequence number (at-most-once execution via the agent's
// dedup cache), each network attempt consults the FaultInjector, and
// transient failures are retried per the RetryConfig. With a nil injector
// it behaves exactly like LocalClient plus sequencing.
//
// Because the simulated network sits above a real *Agent, fault scenarios
// (dropped requests, lost replies, partitions, corrupt frames) replay
// byte-identically from the injector's seed — the deterministic test
// harness for the coordinator's failure handling.
type FaultClient struct {
	agent    *Agent
	injector FaultInjector
	retry    RetryConfig
	counters *FaultCounters
	rng      *stats.RNG
	seq      uint64
}

// NewFaultClient wraps agent in a simulated lossy network. injector and
// counters may be nil.
func NewFaultClient(agent *Agent, injector FaultInjector, retry RetryConfig, counters *FaultCounters) *FaultClient {
	return &FaultClient{
		agent:    agent,
		injector: injector,
		retry:    retry,
		counters: counters,
		rng:      stats.NewRNG(exp.DeriveSeed(retry.Seed, 0)),
	}
}

// Name returns the wrapped agent's name.
func (c *FaultClient) Name() string { return c.agent.Name() }

// call runs one logical operation through the simulated network.
func (c *FaultClient) call(req request) (response, error) {
	c.seq++
	req.Seq = c.seq
	name := c.agent.Name()
	return invokeRetry(c.retry, c.rng, c.counters, func() (response, error) {
		action := FaultNone
		if c.injector != nil {
			action = c.injector.Next(name, req.Kind)
		}
		switch action {
		case FaultDropSend:
			if c.counters != nil {
				c.counters.DroppedSends++
				c.counters.Timeouts++
			}
			return response{}, fmt.Errorf("request to %s lost: %w", name, ErrAgentTimeout)
		case FaultDropReply:
			c.agent.Call(req)
			if c.counters != nil {
				c.counters.DroppedReplies++
				c.counters.Timeouts++
			}
			return response{}, fmt.Errorf("reply from %s lost: %w", name, ErrAgentTimeout)
		case FaultDelay:
			c.agent.Call(req)
			if c.counters != nil {
				c.counters.Delays++
				c.counters.Timeouts++
			}
			return response{}, fmt.Errorf("reply from %s past deadline: %w", name, ErrAgentTimeout)
		case FaultCorrupt:
			c.agent.Call(req)
			if c.counters != nil {
				c.counters.CorruptFrames++
			}
			return response{}, fmt.Errorf("reply from %s garbled: %w", name, ErrCorruptFrame)
		}
		resp := c.agent.Call(req)
		if resp.Err != "" {
			return resp, errors.New(resp.Err)
		}
		return resp, nil
	})
}

// Tick advances the agent through the simulated network.
func (c *FaultClient) Tick(dt float64) (AgentStatus, error) {
	resp, err := c.call(request{Kind: reqTick, Dt: dt})
	return resp.Status, err
}

// Assign places a job on the agent.
func (c *FaultClient) Assign(j *Job) error {
	_, err := c.call(request{Kind: reqAssign, Job: j})
	return err
}

// Revoke removes a job from the agent, returning its state.
func (c *FaultClient) Revoke(jobID int) (*Job, error) {
	resp, err := c.call(request{Kind: reqRevoke, JobID: jobID})
	return resp.Job, err
}

// Pause suspends or resumes the hosted job.
func (c *FaultClient) Pause(jobID int, paused bool) error {
	_, err := c.call(request{Kind: reqPause, JobID: jobID, Paused: paused})
	return err
}

// Ack clears the agent's completion/revocation staging for ids.
func (c *FaultClient) Ack(ids []int) error {
	_, err := c.call(request{Kind: reqAck, Ack: ids})
	return err
}

// Close is a no-op for the in-process client.
func (c *FaultClient) Close() error { return nil }

// sortedInts returns a sorted copy of ids (stable wire and log order).
func sortedInts(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}
