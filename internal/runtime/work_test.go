package runtime

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"

	"lingerlonger/internal/exp"
)

// echoExecutor returns a canonical JSON record of the spec it ran and
// counts executions, so tests can distinguish a replayed cached reply
// from a re-execution.
func echoExecutor(calls *atomic.Int64) exp.TaskFunc {
	return func(spec exp.PointSpec) ([]byte, error) {
		calls.Add(1)
		return json.Marshal(map[string]any{"task": spec.Task, "index": spec.Index, "seed": spec.Seed})
	}
}

// startWorkAgent serves one agent with the given executor on loopback.
func startWorkAgent(t *testing.T, fn exp.TaskFunc) *AgentServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a := NewAgent("w1", quietOwner(t), 64)
	if fn != nil {
		a.SetWorkExecutor(fn)
	}
	srv := NewAgentServer(a, l)
	t.Cleanup(func() { srv.Close() })
	return srv
}

func workSpec(index int) exp.PointSpec {
	return exp.PointSpec{
		Task:   "echo",
		Sweep:  "test",
		Index:  index,
		Seed:   exp.DeriveSeed(7, index),
		Params: []byte(`{}`),
	}
}

func TestWorkRPCRoundTrip(t *testing.T) {
	var calls atomic.Int64
	srv := startWorkAgent(t, echoExecutor(&calls))
	c, err := DialAgent(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Work(workSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(map[string]any{"task": "echo", "index": 3, "seed": exp.DeriveSeed(7, 3)})
	if string(got) != string(want) {
		t.Errorf("Work = %s, want %s", got, want)
	}
	if calls.Load() != 1 {
		t.Errorf("executor ran %d times, want 1", calls.Load())
	}
}

// An agent with no executor must reject work with a non-transient error:
// retrying cannot help, and the fabric must fail fast rather than requeue.
func TestWorkWithoutExecutorFailsFast(t *testing.T) {
	srv := startWorkAgent(t, nil)
	c, err := DialAgent(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Work(workSpec(0))
	if err == nil {
		t.Fatal("Work on an executor-less agent succeeded")
	}
	if !strings.Contains(err.Error(), "serves no work") {
		t.Errorf("error = %v, want a 'serves no work' diagnosis", err)
	}
	if IsTransient(err) {
		t.Errorf("executor-less rejection classified transient: %v", err)
	}
}

// A dropped reply plus retry must replay the cached result rather than
// execute the point a second time — at-most-once holds for reqWork.
func TestWorkAtMostOnceOnDroppedReply(t *testing.T) {
	var calls atomic.Int64
	srv := startWorkAgent(t, echoExecutor(&calls))
	cfg := DefaultTCPClientConfig()
	cfg.Injector = newScriptInjector(func(target string, kind reqKind, n, kn int) FaultAction {
		if kind == reqWork && kn == 0 {
			return FaultDropReply
		}
		return FaultNone
	})
	c, err := DialAgentConfig(srv.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Work(workSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(map[string]any{"task": "echo", "index": 5, "seed": exp.DeriveSeed(7, 5)})
	if string(got) != string(want) {
		t.Errorf("replayed Work = %s, want %s", got, want)
	}
	if calls.Load() != 1 {
		t.Errorf("executor ran %d times through a dropped reply, want 1", calls.Load())
	}
}

// Two clients with distinct ClientIDs share an agent but not a dedup
// stream: their identical sequence numbers must never replay each other's
// cached replies.
func TestWorkPerClientStreamIsolation(t *testing.T) {
	var calls atomic.Int64
	srv := startWorkAgent(t, echoExecutor(&calls))
	dial := func(id string) *TCPClient {
		cfg := DefaultTCPClientConfig()
		cfg.ClientID = id
		c, err := DialAgentConfig(srv.Addr().String(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	a, b := dial("slot-a"), dial("slot-b")
	// Both clients are at the same sequence number after their handshakes;
	// a shared stream would hand client b a replay of client a's point.
	ra, err := a.Work(workSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Work(workSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if string(ra) == string(rb) {
		t.Errorf("clients with distinct IDs got identical bytes: %s", ra)
	}
	if calls.Load() != 2 {
		t.Errorf("executor ran %d times for two distinct points, want 2", calls.Load())
	}
}

// A reconnecting client that reuses its ClientID restarts at sequence 1;
// the fresh handshake must reset the stream so the stale cache cannot
// replay an old point's bytes for a new request.
func TestWorkReconnectResetsStream(t *testing.T) {
	var calls atomic.Int64
	srv := startWorkAgent(t, echoExecutor(&calls))
	dial := func() *TCPClient {
		cfg := DefaultTCPClientConfig()
		cfg.ClientID = "slot-0"
		c, err := DialAgentConfig(srv.Addr().String(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1 := dial()
	if _, err := c1.Work(workSpec(1)); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	c2 := dial()
	defer c2.Close()
	got, err := c2.Work(workSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(map[string]any{"task": "echo", "index": 9, "seed": exp.DeriveSeed(7, 9)})
	if string(got) != string(want) {
		t.Errorf("post-reconnect Work = %s, want %s (stale replay)", got, want)
	}
}

// Ping must succeed against a healthy agent and mutate nothing.
func TestPing(t *testing.T) {
	srv := startWorkAgent(t, nil)
	c, err := DialAgent(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
}

// Jitter streams must differ across addresses and client IDs (so a fleet
// of retrying clients never thunders in lockstep) while staying a pure
// function of their inputs.
func TestClientJitterSeedStreams(t *testing.T) {
	seen := map[int64]string{}
	for _, addr := range []string{"10.0.0.1:7101", "10.0.0.2:7101"} {
		for _, id := range []string{"", "w0.0", "w0.1"} {
			s := clientJitterSeed(42, addr, id)
			key := fmt.Sprintf("%s/%s", addr, id)
			if prev, dup := seen[s]; dup {
				t.Errorf("seed collision: %s and %s both derive %d", prev, key, s)
			}
			seen[s] = key
			if again := clientJitterSeed(42, addr, id); again != s {
				t.Errorf("seed for %s not deterministic: %d then %d", key, s, again)
			}
		}
	}
}
