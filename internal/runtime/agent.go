package runtime

import (
	"fmt"
	"sort"
	"sync"

	"lingerlonger/internal/exp"
	"lingerlonger/internal/memory"
	"lingerlonger/internal/obs"
)

// Agent is one workstation daemon: it executes at most one foreign job at
// strictly lower priority than the owner's workload and answers the
// coordinator's tick/assign/revoke/pause requests. Methods are safe for
// concurrent use (the TCP server invokes them from a connection
// goroutine).
//
// For fault tolerance the agent keeps two pieces of staging until the
// coordinator acknowledges them with Ack: finished jobs (re-reported in
// every tick status) and the state surrendered by Revoke (so a Revoke
// whose reply was lost can be retried, or recovered from the status
// report). Call is the at-most-once entry point: requests stamped with a
// sequence number are executed once and their response cached, so a
// retried request never double-executes.
type Agent struct {
	mu sync.Mutex

	name  string
	owner OwnerSource
	pool  *memory.Pool

	now    float64
	job    *Job
	paused bool

	inEpisode      bool
	episodeStart   float64
	episodeUtilSum float64
	episodeTicks   int

	completed []Job       // finished jobs awaiting acknowledgment
	revoked   map[int]Job // revoked job state awaiting acknowledgment

	// Per-client-stream dedup caches. Each client stream (keyed by the
	// request's Client ID; "" is the legacy single-connection stream) gets
	// its own last-response cache and its own lock, so calls from distinct
	// streams execute concurrently while calls within one stream keep the
	// strict sequential at-most-once contract.
	callMu  sync.Mutex // guards streams map access only
	streams map[string]*callStream
	dedupC  *obs.Counter // runtime.rpc.dedup_hits; nil = observability off

	executor exp.TaskFunc // reqWork handler; nil = agent serves no work
}

// callStream is the at-most-once state of one client call stream.
type callStream struct {
	mu       sync.Mutex // serializes calls within the stream
	lastSeq  uint64
	lastResp response
}

// SetRecorder attaches an observability recorder: Call increments the
// runtime.rpc.dedup_hits counter whenever the sequence-number cache
// suppresses a duplicate request. Metrics are outputs only; the protocol
// never reads them.
func (a *Agent) SetRecorder(r *obs.Recorder) {
	a.dedupC = r.Counter(obs.RPCDedupHits)
}

// NewAgent returns an agent named name whose owner workload comes from
// owner, on a machine of totalMB megabytes.
func NewAgent(name string, owner OwnerSource, totalMB float64) *Agent {
	return &Agent{
		name:    name,
		owner:   owner,
		pool:    memory.NewPool(totalMB, 4),
		revoked: map[int]Job{},
		streams: map[string]*callStream{},
	}
}

// SetWorkExecutor attaches the task executor that answers reqWork calls —
// typically the Run method of an exp.Tasks registry shared with the serial
// sweep path. Executors must be pure functions of the PointSpec (the
// remote-execution contract of internal/exp); an agent without an executor
// rejects work requests with an agent-level (non-transient) error. Call
// before serving.
func (a *Agent) SetWorkExecutor(fn exp.TaskFunc) { a.executor = fn }

// Name returns the agent's name.
func (a *Agent) Name() string { return a.name }

// Now returns the agent's virtual clock.
func (a *Agent) Now() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.now
}

// PoolPages returns a snapshot of the agent's priority page pool for
// diagnostics and invariant checks: free, owner-resident (local),
// guest-resident (foreign), and total pages.
func (a *Agent) PoolPages() (free, local, foreign, total int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pool.FreePages(), a.pool.LocalPages(), a.pool.ForeignPages(), a.pool.TotalPages()
}

// Assign places job on the agent. It fails if the agent already hosts a
// job or the free list cannot hold the job's image (the priority
// page-pool admission check).
func (a *Agent) Assign(j *Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.job != nil {
		if a.job.ID == j.ID {
			return nil // idempotent: a retried Assign whose reply was lost
		}
		return fmt.Errorf("runtime: agent %s already hosts job %d", a.name, a.job.ID)
	}
	// Reflect the owner's current memory demand in the pool, then admit.
	a.syncPoolLocked()
	if !a.pool.CanHost(j.SizeMB) {
		return fmt.Errorf("runtime: agent %s cannot host %g MB (free list %d pages)",
			a.name, j.SizeMB, a.pool.FreePages())
	}
	a.pool.RequestForeign(a.pool.PagesForMB(j.SizeMB))
	cp := *j
	a.job = &cp
	a.paused = false
	return nil
}

// Revoke removes and returns the agent's job state (for migration). The
// surrendered state is also staged until the coordinator acknowledges it
// with Ack, so a repeated Revoke for the same job (a retry after a lost
// reply) returns the same state instead of failing. It fails when the job
// is neither hosted nor staged.
func (a *Agent) Revoke(jobID int) (*Job, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.job == nil || a.job.ID != jobID {
		if staged, ok := a.revoked[jobID]; ok {
			cp := staged
			return &cp, nil
		}
		return nil, fmt.Errorf("runtime: agent %s does not host job %d", a.name, jobID)
	}
	j := a.job
	a.job = nil
	a.paused = false
	a.pool.ReleaseForeign(a.pool.ForeignPages())
	a.revoked[j.ID] = *j
	return j, nil
}

// Ack clears the completion and revocation staging for the given job IDs.
// The coordinator calls it after processing a status report; an Ack lost in
// transit is harmless because staging is simply re-reported and the
// coordinator deduplicates.
func (a *Agent) Ack(ids []int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, id := range ids {
		delete(a.revoked, id)
		for i, j := range a.completed {
			if j.ID == id {
				a.completed = append(a.completed[:i], a.completed[i+1:]...)
				break
			}
		}
	}
	return nil
}

// Pause suspends or resumes the hosted job in place (Pause-and-Migrate's
// first stage).
func (a *Agent) Pause(jobID int, paused bool) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.job == nil || a.job.ID != jobID {
		return fmt.Errorf("runtime: agent %s does not host job %d", a.name, jobID)
	}
	a.paused = paused
	return nil
}

// syncPoolLocked aligns the pool's local working set with the owner's
// current memory demand. Must hold a.mu.
func (a *Agent) syncPoolLocked() {
	total := float64(a.pool.TotalPages()) * 4 / 1024 // MB
	localMB := total - a.owner.FreeMBAt(a.now)
	if localMB < 0 {
		localMB = 0
	}
	a.pool.SetLocalUsage(a.pool.PagesForMB(localMB))
}

// Tick advances the agent dt seconds of virtual time and returns its
// status. The foreign job runs at strictly lower priority: it accrues
// (1 - ownerUtil) CPU per second, and nothing while paused.
func (a *Agent) Tick(dt float64) (AgentStatus, error) {
	if dt <= 0 {
		return AgentStatus{}, fmt.Errorf("runtime: non-positive tick %g", dt)
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	util := a.owner.UtilizationAt(a.now)
	idle := a.owner.IdleAt(a.now)

	// Episode accounting: a non-idle episode spans consecutive non-idle
	// ticks while a job is attached (matching the simulator).
	if a.job != nil && !idle {
		if !a.inEpisode {
			a.inEpisode = true
			a.episodeStart = a.now
			a.episodeUtilSum = 0
			a.episodeTicks = 0
		}
		a.episodeUtilSum += util
		a.episodeTicks++
	} else {
		a.inEpisode = false
	}

	if a.job != nil && !a.paused {
		a.job.Progress += dt * (1 - util)
	}
	a.now += dt
	a.syncPoolLocked()

	st := AgentStatus{
		Name:   a.name,
		Idle:   idle,
		Util:   util,
		FreeMB: float64(a.pool.FreePages()) * 4 / 1024,
		JobID:  -1,
	}
	if a.inEpisode {
		st.EpisodeAge = a.now - a.episodeStart
		st.EpisodeUtil = a.episodeUtilSum / float64(a.episodeTicks)
	}
	if a.job != nil {
		st.JobID = a.job.ID
		st.JobProgress = a.job.Progress
		if a.job.Done() {
			st.JobDone = true
			a.completed = append(a.completed, *a.job)
			a.job = nil
			a.paused = false
			a.inEpisode = false
			a.pool.ReleaseForeign(a.pool.ForeignPages())
		}
	}
	st.Finished = append([]Job(nil), a.completed...)
	if len(a.revoked) > 0 {
		ids := make([]int, 0, len(a.revoked))
		for id := range a.revoked {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			st.Revoked = append(st.Revoked, a.revoked[id])
		}
	}
	return st, nil
}

// Call is the request-level entry point shared by the TCP server and the
// in-process fault client. Requests with a non-zero sequence number get
// at-most-once semantics per client stream: a request whose sequence
// matches the stream's previous one returns the cached response without
// re-executing (the retry of a call whose reply was lost). Calls must be
// sequential within a stream — which each client's synchronous call loop
// guarantees — while distinct streams proceed concurrently.
func (a *Agent) Call(req request) response {
	st := a.stream(req.Client)
	st.mu.Lock()
	defer st.mu.Unlock()
	if req.Seq != 0 && req.Seq == st.lastSeq {
		a.dedupC.Inc()
		return st.lastResp
	}
	resp := a.dispatch(req)
	if req.Seq != 0 {
		st.lastSeq, st.lastResp = req.Seq, resp
	}
	return resp
}

// stream returns (creating if needed) the dedup state for one client ID.
func (a *Agent) stream(client string) *callStream {
	a.callMu.Lock()
	defer a.callMu.Unlock()
	st := a.streams[client]
	if st == nil {
		st = &callStream{}
		a.streams[client] = st
	}
	return st
}

// dispatch executes one protocol request against the agent.
func (a *Agent) dispatch(req request) response {
	var resp response
	switch req.Kind {
	case reqName:
		resp.Name = a.Name()
	case reqTick:
		st, err := a.Tick(req.Dt)
		resp.Status = st
		resp.Err = errString(err)
	case reqAssign:
		resp.Err = errString(a.Assign(req.Job))
	case reqRevoke:
		j, err := a.Revoke(req.JobID)
		resp.Job = j
		resp.Err = errString(err)
	case reqPause:
		resp.Err = errString(a.Pause(req.JobID, req.Paused))
	case reqAck:
		resp.Err = errString(a.Ack(req.Ack))
	case reqWork:
		if a.executor == nil {
			resp.Err = fmt.Sprintf("runtime: agent %s serves no work (no executor attached)", a.name)
			break
		}
		if req.Work == nil {
			resp.Err = "runtime: work request without a point spec"
			break
		}
		data, err := a.executor(*req.Work)
		resp.Data = data
		resp.Err = errString(err)
	default:
		resp.Err = fmt.Sprintf("runtime: unknown request kind %d", req.Kind)
	}
	return resp
}

// DrainCompleted returns and clears the jobs finished since the last call.
func (a *Agent) DrainCompleted() []Job {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.completed
	a.completed = nil
	return out
}

// HasJob reports whether the agent currently hosts a job.
func (a *Agent) HasJob() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.job != nil
}
