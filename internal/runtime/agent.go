package runtime

import (
	"fmt"
	"sync"

	"lingerlonger/internal/memory"
)

// Agent is one workstation daemon: it executes at most one foreign job at
// strictly lower priority than the owner's workload and answers the
// coordinator's tick/assign/revoke/pause requests. Methods are safe for
// concurrent use (the TCP server invokes them from a connection
// goroutine).
type Agent struct {
	mu sync.Mutex

	name  string
	owner OwnerSource
	pool  *memory.Pool

	now    float64
	job    *Job
	paused bool

	inEpisode      bool
	episodeStart   float64
	episodeUtilSum float64
	episodeTicks   int

	completed []Job // jobs finished since the last tick report was drained
}

// NewAgent returns an agent named name whose owner workload comes from
// owner, on a machine of totalMB megabytes.
func NewAgent(name string, owner OwnerSource, totalMB float64) *Agent {
	return &Agent{
		name:  name,
		owner: owner,
		pool:  memory.NewPool(totalMB, 4),
	}
}

// Name returns the agent's name.
func (a *Agent) Name() string { return a.name }

// Now returns the agent's virtual clock.
func (a *Agent) Now() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.now
}

// Assign places job on the agent. It fails if the agent already hosts a
// job or the free list cannot hold the job's image (the priority
// page-pool admission check).
func (a *Agent) Assign(j *Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.job != nil {
		return fmt.Errorf("runtime: agent %s already hosts job %d", a.name, a.job.ID)
	}
	// Reflect the owner's current memory demand in the pool, then admit.
	a.syncPoolLocked()
	if !a.pool.CanHost(j.SizeMB) {
		return fmt.Errorf("runtime: agent %s cannot host %g MB (free list %d pages)",
			a.name, j.SizeMB, a.pool.FreePages())
	}
	a.pool.RequestForeign(a.pool.PagesForMB(j.SizeMB))
	cp := *j
	a.job = &cp
	a.paused = false
	return nil
}

// Revoke removes and returns the agent's job state (for migration). It
// fails when no job is hosted or the ID does not match.
func (a *Agent) Revoke(jobID int) (*Job, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.job == nil || a.job.ID != jobID {
		return nil, fmt.Errorf("runtime: agent %s does not host job %d", a.name, jobID)
	}
	j := a.job
	a.job = nil
	a.paused = false
	a.pool.ReleaseForeign(a.pool.ForeignPages())
	return j, nil
}

// Pause suspends or resumes the hosted job in place (Pause-and-Migrate's
// first stage).
func (a *Agent) Pause(jobID int, paused bool) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.job == nil || a.job.ID != jobID {
		return fmt.Errorf("runtime: agent %s does not host job %d", a.name, jobID)
	}
	a.paused = paused
	return nil
}

// syncPoolLocked aligns the pool's local working set with the owner's
// current memory demand. Must hold a.mu.
func (a *Agent) syncPoolLocked() {
	total := float64(a.pool.TotalPages()) * 4 / 1024 // MB
	localMB := total - a.owner.FreeMBAt(a.now)
	if localMB < 0 {
		localMB = 0
	}
	a.pool.SetLocalUsage(a.pool.PagesForMB(localMB))
}

// Tick advances the agent dt seconds of virtual time and returns its
// status. The foreign job runs at strictly lower priority: it accrues
// (1 - ownerUtil) CPU per second, and nothing while paused.
func (a *Agent) Tick(dt float64) (AgentStatus, error) {
	if dt <= 0 {
		return AgentStatus{}, fmt.Errorf("runtime: non-positive tick %g", dt)
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	util := a.owner.UtilizationAt(a.now)
	idle := a.owner.IdleAt(a.now)

	// Episode accounting: a non-idle episode spans consecutive non-idle
	// ticks while a job is attached (matching the simulator).
	if a.job != nil && !idle {
		if !a.inEpisode {
			a.inEpisode = true
			a.episodeStart = a.now
			a.episodeUtilSum = 0
			a.episodeTicks = 0
		}
		a.episodeUtilSum += util
		a.episodeTicks++
	} else {
		a.inEpisode = false
	}

	if a.job != nil && !a.paused {
		a.job.Progress += dt * (1 - util)
	}
	a.now += dt
	a.syncPoolLocked()

	st := AgentStatus{
		Name:   a.name,
		Idle:   idle,
		Util:   util,
		FreeMB: float64(a.pool.FreePages()) * 4 / 1024,
		JobID:  -1,
	}
	if a.inEpisode {
		st.EpisodeAge = a.now - a.episodeStart
		st.EpisodeUtil = a.episodeUtilSum / float64(a.episodeTicks)
	}
	if a.job != nil {
		st.JobID = a.job.ID
		st.JobProgress = a.job.Progress
		if a.job.Done() {
			st.JobDone = true
			a.completed = append(a.completed, *a.job)
			a.job = nil
			a.paused = false
			a.inEpisode = false
			a.pool.ReleaseForeign(a.pool.ForeignPages())
		}
	}
	return st, nil
}

// DrainCompleted returns and clears the jobs finished since the last call.
func (a *Agent) DrainCompleted() []Job {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.completed
	a.completed = nil
	return out
}

// HasJob reports whether the agent currently hosts a job.
func (a *Agent) HasJob() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.job != nil
}
