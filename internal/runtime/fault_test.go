package runtime

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"lingerlonger/internal/core"
	"lingerlonger/internal/exp"
	"lingerlonger/internal/stats"
)

// scriptInjector is a deterministic, scriptable FaultInjector for
// scenario tests: verdict receives the per-target attempt index n and the
// per-(target,kind) attempt index kn.
type scriptInjector struct {
	mu         sync.Mutex
	counts     map[string]int
	kindCounts map[string]int
	verdict    func(target string, kind reqKind, n, kn int) FaultAction
}

func newScriptInjector(verdict func(target string, kind reqKind, n, kn int) FaultAction) *scriptInjector {
	return &scriptInjector{
		counts:     map[string]int{},
		kindCounts: map[string]int{},
		verdict:    verdict,
	}
}

func (s *scriptInjector) Next(target string, kind reqKind) FaultAction {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.counts[target]
	s.counts[target]++
	key := target + "/" + strconv.Itoa(int(kind))
	kn := s.kindCounts[key]
	s.kindCounts[key]++
	return s.verdict(target, kind, n, kn)
}

// newFaultCluster builds a coordinator over FaultClients and returns the
// underlying agents for state inspection.
func newFaultCluster(t *testing.T, cfg CoordinatorConfig, owners []*ScriptedOwner, inj FaultInjector, counters *FaultCounters) (*Coordinator, []*Agent) {
	t.Helper()
	agents := make([]*Agent, len(owners))
	clients := make([]AgentClient, len(owners))
	for i, o := range owners {
		agents[i] = NewAgent(agentName(i), o, 64)
		retry := DefaultRetryConfig()
		retry.Seed = exp.DeriveSeed(99, i)
		clients[i] = NewFaultClient(agents[i], inj, retry, counters)
	}
	c, err := NewCoordinator(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	return c, agents
}

// stepChecked advances the coordinator and asserts the job-accounting
// invariants after every step.
func stepChecked(t *testing.T, c *Coordinator, steps int, stopWhenDone int) {
	t.Helper()
	for i := 0; i < steps; i++ {
		if err := c.Step(1); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if stopWhenDone > 0 && len(c.Completed()) >= stopWhenDone {
			return
		}
	}
}

func TestParseFaultSpec(t *testing.T) {
	cfg, err := ParseFaultSpec("drop=0.05,dropreply=0.02,corrupt=0.01,delay=0.03,seed=42,partition=beta:150+200")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Drop != 0.05 || cfg.DropReply != 0.02 || cfg.Corrupt != 0.01 || cfg.Delay != 0.03 || cfg.Seed != 42 {
		t.Errorf("parsed config = %+v", cfg)
	}
	if p := cfg.Partitions["beta"]; p.FromCall != 150 || p.Calls != 200 {
		t.Errorf("parsed partition = %+v", p)
	}
	if !cfg.Enabled() {
		t.Error("parsed config reports disabled")
	}
	for _, bad := range []string{
		"drop", "drop=x", "drop=1.5", "drop=0.6,dropreply=0.6", "seed=x",
		"partition=beta", "partition=beta:1", "partition=beta:-1+2", "wat=1",
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	if empty, err := ParseFaultSpec(""); err != nil || empty.Enabled() {
		t.Errorf("empty spec = %+v, %v", empty, err)
	}
}

func TestSeededInjectorDeterministicPerTarget(t *testing.T) {
	cfg := FaultConfig{Drop: 0.2, DropReply: 0.1, Corrupt: 0.1, Delay: 0.1, Seed: 7}
	run := func() [][]FaultAction {
		inj, err := NewSeededInjector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out [][]FaultAction
		for _, target := range []string{"alpha", "beta"} {
			var seq []FaultAction
			for i := 0; i < 200; i++ {
				seq = append(seq, inj.Next(target, reqTick))
			}
			out = append(out, seq)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("verdict %d for target %d differs across runs: %v vs %v", j, i, a[i][j], b[i][j])
			}
		}
	}
	// Streams for distinct targets must not be identical.
	same := true
	for j := range a[0] {
		if a[0][j] != a[1][j] {
			same = false
			break
		}
	}
	if same {
		t.Error("alpha and beta received identical verdict streams")
	}
	// A partition severs exactly its window without shifting later verdicts.
	cfgPart := cfg
	cfgPart.Partitions = map[string]Partition{"alpha": {FromCall: 10, Calls: 5}}
	injPart, err := NewSeededInjector(cfgPart)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		got := injPart.Next("alpha", reqTick)
		switch {
		case i >= 10 && i < 15:
			if got != FaultDropSend {
				t.Errorf("verdict %d = %v inside partition window", i, got)
			}
		default:
			if got != a[0][i] {
				t.Errorf("verdict %d = %v, want %v (partition shifted the stream)", i, got, a[0][i])
			}
		}
	}
}

func TestFaultInjectorValidation(t *testing.T) {
	for _, cfg := range []FaultConfig{
		{Drop: -0.1},
		{Corrupt: 1.1},
		{Drop: 0.6, DropReply: 0.6},
		{Partitions: map[string]Partition{"x": {FromCall: -1}}},
	} {
		if _, err := NewSeededInjector(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// A transient fault on a single tick must be absorbed by the retry loop
// with zero behavioral difference: at-most-once semantics guarantee the
// retried tick does not advance the agent twice.
func TestDroppedTickIsTransparent(t *testing.T) {
	scenario := func(inj FaultInjector) ([]CompletedJob, int) {
		counters := &FaultCounters{}
		c, _ := newFaultCluster(t, DefaultCoordinatorConfig(),
			[]*ScriptedOwner{busyAfter(t, 40, 0.6), quietOwner(t), quietOwner(t)}, inj, counters)
		for i := 0; i < 3; i++ {
			if _, err := c.Submit(80, 8); err != nil {
				t.Fatal(err)
			}
		}
		stepChecked(t, c, 400, 0)
		return c.Completed(), c.Migrations()
	}

	cleanDone, cleanMigr := scenario(nil)
	for _, action := range []FaultAction{FaultDropSend, FaultDropReply, FaultCorrupt, FaultDelay} {
		counters := 0
		inj := newScriptInjector(func(target string, kind reqKind, n, kn int) FaultAction {
			if target == agentName(0) && kind == reqTick && kn == 5 {
				counters++
				return action
			}
			return FaultNone
		})
		done, migr := scenario(inj)
		if counters == 0 {
			t.Fatalf("%v: fault never injected", action)
		}
		if migr != cleanMigr {
			t.Errorf("%v: migrations %d, clean run %d", action, migr, cleanMigr)
		}
		if len(done) != len(cleanDone) {
			t.Fatalf("%v: %d completions, clean run %d", action, len(done), len(cleanDone))
		}
		for i := range done {
			if done[i].Job.ID != cleanDone[i].Job.ID ||
				done[i].CompletedAt != cleanDone[i].CompletedAt ||
				done[i].Agent != cleanDone[i].Agent {
				t.Errorf("%v: completion %d = %+v, clean run %+v", action, i, done[i], cleanDone[i])
			}
		}
	}
}

// An Assign whose reply is lost leaves the job's location unknown; the
// next status report must resolve it to exactly one copy.
func TestAmbiguousAssignResolvesWithoutDoubleAssign(t *testing.T) {
	victim := agentName(1)
	inj := newScriptInjector(func(target string, kind reqKind, n, kn int) FaultAction {
		if target == victim && kind == reqAssign && kn < DefaultRetryConfig().MaxAttempts {
			return FaultDropReply // every attempt of the first logical Assign
		}
		return FaultNone
	})
	counters := &FaultCounters{}
	c, agents := newFaultCluster(t, DefaultCoordinatorConfig(),
		[]*ScriptedOwner{quietOwner(t), quietOwner(t)}, inj, counters)
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(30, 8); err != nil {
			t.Fatal(err)
		}
	}
	stepChecked(t, c, 200, 2)
	if got := len(c.Completed()); got != 2 {
		t.Fatalf("completed %d of 2 jobs", got)
	}
	if c.Counters().AmbiguousAssigns == 0 {
		t.Error("ambiguous assign never recorded")
	}
	if counters.Retries == 0 {
		t.Error("no retries recorded")
	}
	for _, a := range agents {
		if a.HasJob() {
			t.Errorf("agent %s still hosts a job after convergence", a.Name())
		}
	}
}

// Partition an agent right after its Assign executes with a lost reply:
// the agent must be declared dead, its job recovered from the limbo copy
// and completed elsewhere, and the stale duplicate revoked on
// resurrection — with the job completing exactly once.
func TestPartitionMidAssignRecoversJob(t *testing.T) {
	victim := agentName(1)
	var (
		mu        sync.Mutex
		severed   bool
		dropUntil int
	)
	inj := newScriptInjector(func(target string, kind reqKind, n, kn int) FaultAction {
		if target != victim {
			return FaultNone
		}
		mu.Lock()
		defer mu.Unlock()
		if kind == reqAssign && !severed {
			severed = true
			dropUntil = n + 60
			return FaultDropReply
		}
		if severed && n < dropUntil {
			return FaultDropSend
		}
		return FaultNone
	})
	counters := &FaultCounters{}
	c, agents := newFaultCluster(t, DefaultCoordinatorConfig(),
		[]*ScriptedOwner{quietOwner(t), quietOwner(t), quietOwner(t)}, inj, counters)
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(60, 8); err != nil {
			t.Fatal(err)
		}
	}
	stepChecked(t, c, 400, 0) // run past resurrection so the stale copy is reaped
	rc := c.Counters()
	if rc.Died == 0 {
		t.Fatalf("victim never declared dead: %+v", rc)
	}
	if rc.RecoveredJobs == 0 {
		t.Errorf("no job recovered: %+v", rc)
	}
	if rc.Resurrected == 0 {
		t.Errorf("victim never resurrected: %+v", rc)
	}
	if got := len(c.Completed()); got != 2 {
		t.Fatalf("completed %d of 2 jobs: %+v", got, rc)
	}
	seen := map[int]bool{}
	for _, d := range c.Completed() {
		if seen[d.Job.ID] {
			t.Errorf("job %d completed twice", d.Job.ID)
		}
		seen[d.Job.ID] = true
	}
	// After convergence no duplicate copy survives and the priority page
	// pools are clean: no foreign pages without a hosted job.
	for _, a := range agents {
		if a.HasJob() {
			t.Errorf("agent %s still hosts a job", a.Name())
		}
		free, local, foreign, total := a.PoolPages()
		if foreign != 0 {
			t.Errorf("agent %s: %d foreign pages with no job", a.Name(), foreign)
		}
		if free+local+foreign != total {
			t.Errorf("agent %s: pages %d+%d+%d != %d", a.Name(), free, local, foreign, total)
		}
	}
}

// Crash during Revoke: the revoke executes, its reply is lost, and the
// agent is partitioned before the retry gets through. The surrendered
// state is staged on the agent and the coordinator recovers the job from
// its checkpoint; on resurrection the staging merges without duplicating
// the job.
func TestCrashDuringRevokeConverges(t *testing.T) {
	victim := agentName(0)
	var (
		mu        sync.Mutex
		severed   bool
		dropUntil int
	)
	inj := newScriptInjector(func(target string, kind reqKind, n, kn int) FaultAction {
		if target != victim {
			return FaultNone
		}
		mu.Lock()
		defer mu.Unlock()
		if kind == reqRevoke && !severed {
			severed = true
			dropUntil = n + 60
			return FaultDropReply
		}
		if severed && n < dropUntil {
			return FaultDropSend
		}
		return FaultNone
	})
	counters := &FaultCounters{}
	// The busy owner on the victim forces an LL migration off it.
	c, agents := newFaultCluster(t, DefaultCoordinatorConfig(),
		[]*ScriptedOwner{busyAfter(t, 30, 0.6), quietOwner(t), quietOwner(t)}, inj, counters)
	if _, err := c.Submit(300, 8); err != nil {
		t.Fatal(err)
	}
	stepChecked(t, c, 1500, 1)
	rc := c.Counters()
	if !severed {
		t.Fatal("revoke fault never triggered (no migration attempted)")
	}
	if rc.AmbiguousRevokes == 0 {
		t.Errorf("ambiguous revoke never recorded: %+v", rc)
	}
	if got := len(c.Completed()); got != 1 {
		t.Fatalf("completed %d of 1 jobs: %+v", got, rc)
	}
	done := c.Completed()[0]
	if done.Job.Progress < 300-1e-6 {
		t.Errorf("job completed with progress %g < 300", done.Job.Progress)
	}
	for _, a := range agents {
		if a.HasJob() {
			t.Errorf("agent %s still hosts a job", a.Name())
		}
	}
}

// chaosFingerprint runs a randomized fault scenario to completion and
// returns a full textual fingerprint of its outcome.
func chaosFingerprint(t *testing.T, seed int64) string {
	t.Helper()
	inj, err := NewSeededInjector(FaultConfig{
		Drop: 0.08, DropReply: 0.04, Corrupt: 0.04, Delay: 0.02, Seed: seed,
		Partitions: map[string]Partition{agentName(2): {FromCall: 120, Calls: 90}},
	})
	if err != nil {
		t.Fatal(err)
	}
	counters := &FaultCounters{}
	c, agents := newFaultCluster(t, DefaultCoordinatorConfig(),
		[]*ScriptedOwner{busyAfter(t, 40, 0.5), quietOwner(t), quietOwner(t), quietOwner(t)}, inj, counters)
	for i := 0; i < 6; i++ {
		if _, err := c.Submit(60, 8); err != nil {
			t.Fatal(err)
		}
	}
	stepChecked(t, c, 2000, 0)
	if got := len(c.Completed()); got != 6 {
		t.Fatalf("chaos run completed %d of 6 jobs: %+v / %+v", got, c.Counters(), counters)
	}
	if counters.Retries == 0 {
		t.Error("chaos run recorded no retries")
	}
	for _, a := range agents {
		free, local, foreign, total := a.PoolPages()
		if a.HasJob() || foreign != 0 || free+local+foreign != total {
			t.Errorf("agent %s pool dirty after convergence: free %d local %d foreign %d / %d",
				a.Name(), free, local, foreign, total)
		}
	}
	return fmt.Sprintf("%+v|%+v|%+v|q%d", c.Completed(), c.Counters(), *counters, c.QueueLen())
}

// The same seed must produce byte-identical outcomes — including under
// -race, where the CI runs this test — and a different seed must not.
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	a := chaosFingerprint(t, 7)
	b := chaosFingerprint(t, 7)
	if a != b {
		t.Errorf("same seed, different outcomes:\n%s\n%s", a, b)
	}
	if c := chaosFingerprint(t, 8); c == a {
		t.Error("different seed produced an identical outcome (injector ignores the seed?)")
	}
}

// The suspect state must keep an agent out of placement decisions before
// it is declared dead.
func TestSuspectAgentsReceiveNoWork(t *testing.T) {
	victim := agentName(0)
	inj := newScriptInjector(func(target string, kind reqKind, n, kn int) FaultAction {
		if target == victim {
			return FaultDropSend // severed from the start
		}
		return FaultNone
	})
	cfg := DefaultCoordinatorConfig()
	cfg.Health = core.HealthPolicy{SuspectAfter: 1, DeadAfter: 1000}
	c, agents := newFaultCluster(t, cfg,
		[]*ScriptedOwner{quietOwner(t), quietOwner(t)}, inj, &FaultCounters{})
	if _, err := c.Submit(20, 8); err != nil {
		t.Fatal(err)
	}
	stepChecked(t, c, 60, 1)
	if agents[0].HasJob() {
		t.Error("suspect agent received the job")
	}
	if len(c.Completed()) != 1 {
		t.Fatalf("job did not complete on the healthy agent")
	}
	if c.Completed()[0].Agent != agentName(1) {
		t.Errorf("job completed on %q, want the healthy agent", c.Completed()[0].Agent)
	}
	if c.AgentHealth(victim) != core.Suspect {
		t.Errorf("victim health = %v, want suspect", c.AgentHealth(victim))
	}
}

// Typed-error plumbing: every AgentClient call site must surface the
// deadline as an error wrapping ErrAgentTimeout.
func TestFaultClientReturnsTypedTimeout(t *testing.T) {
	inj := newScriptInjector(func(string, reqKind, int, int) FaultAction { return FaultDropSend })
	a := NewAgent("w1", quietOwner(t), 64)
	c := NewFaultClient(a, inj, RetryConfig{MaxAttempts: 2}, nil)

	if _, err := c.Tick(1); !errors.Is(err, ErrAgentTimeout) {
		t.Errorf("Tick error = %v, want ErrAgentTimeout", err)
	}
	if err := c.Assign(&Job{ID: 1, DemandS: 5, SizeMB: 8}); !errors.Is(err, ErrAgentTimeout) {
		t.Errorf("Assign error = %v, want ErrAgentTimeout", err)
	}
	if _, err := c.Revoke(1); !errors.Is(err, ErrAgentTimeout) {
		t.Errorf("Revoke error = %v, want ErrAgentTimeout", err)
	}
	if err := c.Pause(1, true); !errors.Is(err, ErrAgentTimeout) {
		t.Errorf("Pause error = %v, want ErrAgentTimeout", err)
	}
	if err := c.Ack([]int{1}); !errors.Is(err, ErrAgentTimeout) {
		t.Errorf("Ack error = %v, want ErrAgentTimeout", err)
	}
	if a.Now() != 0 {
		t.Errorf("agent advanced to %g through a severed network", a.Now())
	}
	if !IsTransient(fmt.Errorf("wrap: %w", ErrCorruptFrame)) || IsTransient(errors.New("other")) {
		t.Error("IsTransient misclassifies")
	}
}

// At-most-once execution: a lost reply plus retry must not run the call
// twice, for ticks (time would double-advance) and assigns alike.
func TestFaultClientAtMostOnce(t *testing.T) {
	dropFirst := func(kind reqKind) *scriptInjector {
		return newScriptInjector(func(target string, k reqKind, n, kn int) FaultAction {
			if k == kind && kn == 0 {
				return FaultDropReply
			}
			return FaultNone
		})
	}

	a := NewAgent("w1", quietOwner(t), 64)
	c := NewFaultClient(a, dropFirst(reqTick), DefaultRetryConfig(), nil)
	st, err := c.Tick(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Now() != 1 {
		t.Errorf("agent at %g after one logical tick, want 1 (double-executed retry?)", a.Now())
	}
	if st.Name != "w1" {
		t.Errorf("cached status = %+v", st)
	}

	b := NewAgent("w2", quietOwner(t), 64)
	cb := NewFaultClient(b, dropFirst(reqAssign), DefaultRetryConfig(), nil)
	if err := cb.Assign(&Job{ID: 3, DemandS: 5, SizeMB: 8}); err != nil {
		t.Fatal(err)
	}
	if !b.HasJob() {
		t.Error("assign lost despite retry")
	}
}

func TestFaultActionString(t *testing.T) {
	for want, a := range map[string]FaultAction{
		"none": FaultNone, "drop-send": FaultDropSend, "drop-reply": FaultDropReply,
		"corrupt": FaultCorrupt, "delay": FaultDelay,
	} {
		if a.String() != want {
			t.Errorf("String() = %q, want %q", a.String(), want)
		}
	}
	if FaultAction(99).String() == "" {
		t.Error("unknown action stringifies empty")
	}
}

// localCluster builds a coordinator over plain LocalClients.
func localCluster(t *testing.T, cfg CoordinatorConfig, owners []*ScriptedOwner) (*Coordinator, []*Agent) {
	t.Helper()
	agents := make([]*Agent, len(owners))
	clients := make([]AgentClient, len(owners))
	for i, o := range owners {
		agents[i] = NewAgent(agentName(i), o, 64)
		clients[i] = LocalClient{Agent: agents[i]}
	}
	c, err := NewCoordinator(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	return c, agents
}

// White-box: a status report that no longer mentions the believed-hosted
// job and carries no staging means the job vanished — it must be restored
// from the checkpoint, and the agent's lingering real copy reaped as a
// stale duplicate afterwards. The job completes exactly once.
func TestReconcileMissingVanishedJob(t *testing.T) {
	c, _ := localCluster(t, DefaultCoordinatorConfig(), []*ScriptedOwner{quietOwner(t)})
	if _, err := c.Submit(30, 8); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(1); err != nil {
		t.Fatal(err)
	}
	name := agentName(0)
	if c.hosted[name] != 0 {
		t.Fatalf("job not hosted after first step: %+v", c.hosted)
	}
	// Forge a report that has forgotten the job entirely.
	c.processStatus(c.agents[0], name, AgentStatus{Name: name, JobID: -1})
	rc := c.Counters()
	if rc.VanishedJobs != 1 || rc.RecoveredJobs != 1 {
		t.Fatalf("after vanish report: %+v", rc)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	stepChecked(t, c, 200, 1)
	if len(c.Completed()) != 1 {
		t.Fatalf("completed %d of 1 jobs", len(c.Completed()))
	}
	if c.Counters().StaleRevokes == 0 {
		t.Errorf("the agent's real copy was never reaped: %+v", c.Counters())
	}
}

// White-box: the believed-hosted job shows up in the report's revocation
// staging instead — its surrendered state (with the freshest progress)
// must be recovered, not the older checkpoint.
func TestReconcileMissingRecoversFromStaging(t *testing.T) {
	c, _ := localCluster(t, DefaultCoordinatorConfig(), []*ScriptedOwner{quietOwner(t)})
	if _, err := c.Submit(30, 8); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(1); err != nil {
		t.Fatal(err)
	}
	name := agentName(0)
	staged := Job{ID: 0, DemandS: 30, SizeMB: 8, Progress: 5}
	c.processStatus(c.agents[0], name, AgentStatus{Name: name, JobID: -1, Revoked: []Job{staged}})
	if rc := c.Counters(); rc.RecoveredJobs != 1 || rc.VanishedJobs != 0 {
		t.Fatalf("after staged report: %+v", rc)
	}
	if len(c.migrating) != 1 || c.migrating[0].job.Progress != 5 {
		t.Fatalf("recovered transfer = %+v", c.migrating)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// White-box: revoke-limbo resolution — the job either turns out to still
// be hosted (the revoke never executed) or has vanished without staging
// (restore from checkpoint).
func TestLimboRevokeResolution(t *testing.T) {
	c, _ := localCluster(t, DefaultCoordinatorConfig(), []*ScriptedOwner{quietOwner(t)})
	if _, err := c.Submit(30, 8); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(1); err != nil {
		t.Fatal(err)
	}
	name := agentName(0)

	// Case 1: the agent still reports the job — it stays hosted.
	delete(c.hosted, name)
	c.limboRevoke[name] = 0
	c.processStatus(c.agents[0], name, AgentStatus{Name: name, JobID: 0, JobProgress: 1})
	if c.hosted[name] != 0 || len(c.limboRevoke) != 0 {
		t.Fatalf("limbo revoke did not re-host: hosted %+v limbo %+v", c.hosted, c.limboRevoke)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Case 2: the agent reports neither the job nor staging — checkpoint
	// restore.
	delete(c.hosted, name)
	c.limboRevoke[name] = 0
	c.processStatus(c.agents[0], name, AgentStatus{Name: name, JobID: -1})
	rc := c.Counters()
	if rc.VanishedJobs != 1 || rc.RecoveredJobs != 1 {
		t.Fatalf("after limbo vanish: %+v", rc)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// CheckInvariants must actually reject corrupted states.
func TestCheckInvariantsDetectsViolations(t *testing.T) {
	fresh := func() *Coordinator {
		c, _ := localCluster(t, DefaultCoordinatorConfig(), []*ScriptedOwner{quietOwner(t)})
		if _, err := c.Submit(30, 8); err != nil {
			t.Fatal(err)
		}
		return c
	}

	c := fresh()
	c.completedIDs[0] = true // completed yet still queued
	if err := c.CheckInvariants(); err == nil {
		t.Error("completed-but-tracked state accepted")
	}

	c = fresh()
	c.queue = nil // lost
	if err := c.CheckInvariants(); err == nil {
		t.Error("lost-job state accepted")
	}

	c = fresh()
	c.hosted[agentName(0)] = 0 // queued AND hosted
	if err := c.CheckInvariants(); err == nil {
		t.Error("double-tracked state accepted")
	}

	c = fresh()
	c.completedIDs[0] = true
	c.queue = nil
	c.completed = []CompletedJob{{Job: Job{ID: 0}}, {Job: Job{ID: 0}}}
	if err := c.CheckInvariants(); err == nil {
		t.Error("double-completion accepted")
	}
}

func TestNewCoordinatorRejectsBadConfig(t *testing.T) {
	a := LocalClient{Agent: NewAgent("w1", quietOwner(t), 64)}
	if _, err := NewCoordinator(DefaultCoordinatorConfig(), nil); err == nil {
		t.Error("no agents accepted")
	}
	cfg := DefaultCoordinatorConfig()
	cfg.PauseTime = -1
	if _, err := NewCoordinator(cfg, []AgentClient{a}); err == nil {
		t.Error("negative pause time accepted")
	}
	cfg = DefaultCoordinatorConfig()
	cfg.Health = core.HealthPolicy{SuspectAfter: 5, DeadAfter: 2}
	if _, err := NewCoordinator(cfg, []AgentClient{a}); err == nil {
		t.Error("invalid health policy accepted")
	}
	b := LocalClient{Agent: NewAgent("w1", quietOwner(t), 64)}
	if _, err := NewCoordinator(DefaultCoordinatorConfig(), []AgentClient{a, b}); err == nil {
		t.Error("duplicate agent names accepted")
	}
	if got := mustCoordinator(t, a).AgentHealth("nobody"); got != core.Dead {
		t.Errorf("unknown agent health = %v, want dead", got)
	}
}

func mustCoordinator(t *testing.T, clients ...AgentClient) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(DefaultCoordinatorConfig(), clients)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRetryBackoff(t *testing.T) {
	rng := stats.NewRNG(1)
	rc := RetryConfig{MaxAttempts: 3}
	if d := rc.backoff(1, rng); d != 0 {
		t.Errorf("zero BaseDelay backoff = %v", d)
	}
	rc = RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	for attempt, nominal := range map[int]time.Duration{
		1: time.Millisecond,
		2: 2 * time.Millisecond,
		3: 2 * time.Millisecond, // 4ms capped at MaxDelay
	} {
		for i := 0; i < 50; i++ {
			d := rc.backoff(attempt, rng)
			if d < nominal/2 || d >= nominal {
				t.Fatalf("backoff(%d) = %v outside [%v, %v)", attempt, d, nominal/2, nominal)
			}
		}
	}
	if got := (RetryConfig{MaxAttempts: 0}).attempts(); got != 1 {
		t.Errorf("attempts() with MaxAttempts 0 = %d, want 1", got)
	}
}

func TestInvokeRetrySleepsAndBounds(t *testing.T) {
	rng := stats.NewRNG(1)
	counters := &FaultCounters{}
	calls := 0
	_, err := invokeRetry(RetryConfig{MaxAttempts: 3, BaseDelay: time.Microsecond}, rng, counters,
		func() (response, error) { calls++; return response{}, ErrAgentTimeout })
	if !errors.Is(err, ErrAgentTimeout) || calls != 3 {
		t.Errorf("exhausted retry: calls %d err %v", calls, err)
	}
	if counters.Retries != 2 || counters.Attempts != 3 {
		t.Errorf("counters = %+v", counters)
	}
	// A non-transient error stops the loop immediately.
	calls = 0
	rejection := errors.New("agent said no")
	_, err = invokeRetry(RetryConfig{}, rng, nil,
		func() (response, error) { calls++; return response{}, rejection })
	if !errors.Is(err, rejection) || calls != 1 {
		t.Errorf("rejection retried: calls %d err %v", calls, err)
	}
}

func TestClientCloseNoops(t *testing.T) {
	a := NewAgent("w1", quietOwner(t), 64)
	if err := (LocalClient{Agent: a}).Close(); err != nil {
		t.Error(err)
	}
	if err := NewFaultClient(a, nil, DefaultRetryConfig(), nil).Close(); err != nil {
		t.Error(err)
	}
}

// Pause-and-Migrate under faults: lost Pause replies are skipped and
// retried by the next policy pass, pauses eventually stick, and the job
// resumes in place when the owner goes idle again.
func TestPauseResumeUnderFaults(t *testing.T) {
	owner, err := NewScriptedOwner([]OwnerPhase{
		{Duration: 20, Util: 0.02, FreeMB: 40},
		{Duration: 30, Util: 0.5, Keyboard: true, FreeMB: 40},
		{Duration: 1e6, Util: 0.02, FreeMB: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := newScriptInjector(func(target string, kind reqKind, n, kn int) FaultAction {
		if kind == reqPause && kn < DefaultRetryConfig().MaxAttempts {
			return FaultDropReply // the first logical Pause fails all attempts
		}
		return FaultNone
	})
	cfg := DefaultCoordinatorConfig()
	cfg.Policy = core.PauseAndMigrate
	// Single agent: nowhere to migrate, so the job must pause in place and
	// resume when the owner leaves.
	c, _ := newFaultCluster(t, cfg, []*ScriptedOwner{owner}, inj, &FaultCounters{})
	if _, err := c.Submit(60, 8); err != nil {
		t.Fatal(err)
	}
	stepChecked(t, c, 400, 1)
	if len(c.Completed()) != 1 {
		t.Fatalf("completed %d of 1 jobs", len(c.Completed()))
	}
	// Progress pauses during the owner's episode: completion must come
	// after the busy window plus the paused time (20s head start + 30s
	// pause + remaining 40s), i.e. well past the no-pause finish time.
	if at := c.Completed()[0].CompletedAt; at < 90 {
		t.Errorf("job finished at %g despite the paused window", at)
	}
}

func TestScriptedOwnerNegativeTime(t *testing.T) {
	o := quietOwner(t)
	if u := o.UtilizationAt(-5); u != 0.02 {
		t.Errorf("UtilizationAt(-5) = %g", u)
	}
}
