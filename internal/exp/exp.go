// Package exp is the sweep-execution layer: it fans the independent
// simulation runs of an experiment sweep out across a bounded worker pool
// while guaranteeing that the results are bit-identical to a serial run.
//
// Every figure of the paper is a sweep over independent points (utilization
// levels, idle-node counts, policies, granularities). The two rules that
// make such a sweep safe to parallelize are:
//
//  1. No shared RNG stream. Each run seeds its own stats.RNG from
//     DeriveSeed(masterSeed, runIndex) — a SplitMix64-style mix — so the
//     random numbers a run consumes are a pure function of (master seed,
//     index), never of which goroutine ran first.
//  2. Results are collected by index, not by completion order.
//
// Under these rules the worker count is an execution detail: Map with one
// worker and Map with sixteen return the same slice, byte for byte. See
// DESIGN.md §"Concurrency & determinism".
package exp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"lingerlonger/internal/stats"
)

// DeriveSeed returns the RNG seed for run index of a sweep governed by
// master. It is a SplitMix64 step-and-finalize: the master seed selects a
// stream, the index advances it by index+1 increments of the golden-ratio
// gamma, and the finalizer decorrelates neighbouring indices. Distinct
// (master, index) pairs yield well-separated seeds, so per-run generators
// built with stats.NewRNG(DeriveSeed(m, i)) are independent for all
// practical purposes.
//
// DeriveSeed also serves as a stream splitter: chaining
// DeriveSeed(DeriveSeed(m, a), b) gives a two-level hierarchy of
// independent seed spaces (used by sweeps that need a baseline phase and a
// point phase).
func DeriveSeed(master int64, index int) int64 {
	const gamma = 0x9e3779b97f4a7c15 // 2^64 / golden ratio, odd
	z := uint64(master) + gamma*(uint64(int64(index))+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), the pool size used throughout the repository when
// a config leaves its Workers field zero.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs task(0..n-1) on a pool of at most workers goroutines
// (workers <= 0 selects GOMAXPROCS) and returns the results ordered by
// index. Tasks must be independent of each other; under that contract the
// result slice is identical for every worker count.
//
// If any task fails, Map returns the error of the lowest-index failing
// task (wrapped with that index) and stops dispatching further tasks;
// already-dispatched tasks run to completion. The lowest-index guarantee
// keeps even the failure mode deterministic: every index below the first
// failure is always dispatched, so the reported error cannot depend on
// goroutine scheduling.
func Map[T any](workers, n int, task func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	results := make([]T, n)
	if w == 1 {
		// Inline serial path: the reference order the pool must reproduce.
		for i := 0; i < n; i++ {
			r, err := task(i)
			if err != nil {
				return nil, fmt.Errorf("exp: task %d: %w", i, err)
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next   atomic.Int64 // next index to dispatch
		failed atomic.Bool  // stop dispatching after the first error
		errs   = make([]error, n)
		wg     sync.WaitGroup
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				r, err := task(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exp: task %d: %w", i, err)
		}
	}
	return results, nil
}

// SeededMap is Map for randomized tasks: each task receives a fresh
// stats.RNG seeded with DeriveSeed(master, i), so no RNG stream is shared
// between runs and the results do not depend on the worker count.
func SeededMap[T any](workers int, master int64, n int, task func(i int, rng *stats.RNG) (T, error)) ([]T, error) {
	return Map(workers, n, func(i int) (T, error) {
		return task(i, stats.NewRNG(DeriveSeed(master, i)))
	})
}
