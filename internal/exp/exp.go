// Package exp is the sweep-execution layer: it fans the independent
// simulation runs of an experiment sweep out across a bounded worker pool
// while guaranteeing that the results are bit-identical to a serial run.
//
// Every figure of the paper is a sweep over independent points (utilization
// levels, idle-node counts, policies, granularities). The two rules that
// make such a sweep safe to parallelize are:
//
//  1. No shared RNG stream. Each run seeds its own stats.RNG from
//     DeriveSeed(masterSeed, runIndex) — a SplitMix64-style mix — so the
//     random numbers a run consumes are a pure function of (master seed,
//     index), never of which goroutine ran first.
//  2. Results are collected by index, not by completion order.
//
// Under these rules the worker count is an execution detail: Map with one
// worker and Map with sixteen return the same slice, byte for byte. See
// DESIGN.md §"Concurrency & determinism".
package exp

import (
	"runtime"

	"lingerlonger/internal/stats"
)

// DeriveSeed returns the RNG seed for run index of a sweep governed by
// master. It is a SplitMix64 step-and-finalize: the master seed selects a
// stream, the index advances it by index+1 increments of the golden-ratio
// gamma, and the finalizer decorrelates neighbouring indices. Distinct
// (master, index) pairs yield well-separated seeds, so per-run generators
// built with stats.NewRNG(DeriveSeed(m, i)) are independent for all
// practical purposes.
//
// DeriveSeed also serves as a stream splitter: chaining
// DeriveSeed(DeriveSeed(m, a), b) gives a two-level hierarchy of
// independent seed spaces (used by sweeps that need a baseline phase and a
// point phase).
func DeriveSeed(master int64, index int) int64 {
	const gamma = 0x9e3779b97f4a7c15 // 2^64 / golden ratio, odd
	z := uint64(master) + gamma*(uint64(int64(index))+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), the pool size used throughout the repository when
// a config leaves its Workers field zero.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs task(0..n-1) on a pool of at most workers goroutines
// (workers <= 0 selects GOMAXPROCS) and returns the results ordered by
// index. Tasks must be independent of each other; under that contract the
// result slice is identical for every worker count.
//
// If any task fails, Map returns the error of the lowest-index failing
// task (a *PointError wrapping it) and stops dispatching further tasks;
// already-dispatched tasks run to completion. The lowest-index guarantee
// keeps even the failure mode deterministic: every index below the first
// failure is always dispatched, so the reported error cannot depend on
// goroutine scheduling.
//
// A panicking task does not crash the pool: the panic is recovered and
// converted into a *PointError wrapping a *PanicError (stack included),
// the pool drains, and Map returns — even when every task panics. For
// retries, watchdog deadlines, fail-soft sweeps and checkpointing, use a
// Runner with RunSweep.
func Map[T any](workers, n int, task func(i int) (T, error)) ([]T, error) {
	return runSweep(&Runner{Workers: workers}, "", n, task)
}

// SeededMap is Map for randomized tasks: each task receives a fresh
// stats.RNG seeded with DeriveSeed(master, i), so no RNG stream is shared
// between runs and the results do not depend on the worker count.
func SeededMap[T any](workers int, master int64, n int, task func(i int, rng *stats.RNG) (T, error)) ([]T, error) {
	return RunSeeded(&Runner{Workers: workers}, "", master, n, task)
}
