package exp

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lingerlonger/internal/obs"
	"lingerlonger/internal/stats"
)

// This file is the crash-safe execution layer around the sweep pool: a
// Runner that isolates per-point panics, bounds runaway points with a
// watchdog deadline, retries transient failures, optionally finishes a
// sweep despite failed points (fail-soft), and persists every completed
// point to a checkpoint store so an interrupted run can resume without
// recomputing finished work. Because each point is a pure function of
// (master seed, sweep ID, point index), a restored point is bit-identical
// to a recomputed one, and a resumed sweep is indistinguishable from an
// uninterrupted run.

// Store is the checkpoint seam the Runner persists through. It is
// implemented by checkpoint.Run; the indirection keeps this package free
// of filesystem concerns and lets tests inject failing or counting
// stores.
type Store interface {
	// Lookup returns the stored snapshot for (sweep, index), or ok=false
	// when the point has not been completed. Implementations must treat a
	// damaged snapshot as absent, never return garbage.
	Lookup(sweep string, index int) (data []byte, ok bool, err error)
	// Save persists one completed point. It must be atomic and safe for
	// concurrent use.
	Save(sweep string, index int, data []byte) error
}

// PanicError is a recovered per-point panic, preserved with its stack so
// a crashing sweep point is debuggable after the pool has moved on.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // debug.Stack() captured at recovery
}

// Error reports the panic value; the stack is in Stack.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// ErrPointTimeout marks a point attempt abandoned by the watchdog.
// Errors returned for timed-out points wrap it.
var ErrPointTimeout = errors.New("exp: point exceeded watchdog deadline")

// PointError is the typed failure of one sweep point: which sweep, which
// index, how many attempts were made, and the last attempt's error (a
// *PanicError for panics, wrapping ErrPointTimeout for watchdog kills).
type PointError struct {
	Sweep    string // full sweep ID ("" for anonymous Map calls)
	Index    int
	Attempts int
	Err      error
}

// Error identifies the sweep, point and final attempt's failure.
func (e *PointError) Error() string {
	suffix := ""
	if e.Attempts > 1 {
		suffix = fmt.Sprintf(" (after %d attempts)", e.Attempts)
	}
	if e.Sweep == "" {
		return fmt.Sprintf("exp: task %d: %v%s", e.Index, e.Err, suffix)
	}
	return fmt.Sprintf("exp: sweep %s point %d: %v%s", e.Sweep, e.Index, e.Err, suffix)
}

// Unwrap exposes the last attempt's error to errors.Is/As.
func (e *PointError) Unwrap() error { return e.Err }

// Stats counts what a Runner did across all of its sweeps.
type Stats struct {
	Computed int64 // points executed to success
	Restored int64 // points restored from the checkpoint store
	Retried  int64 // points that needed more than one attempt to succeed
	Failed   int64 // points that exhausted their attempts
}

// runnerState is shared between a Runner and every Named derivative, so
// failures and counters aggregate across the whole run.
type runnerState struct {
	computed atomic.Int64
	restored atomic.Int64
	retried  atomic.Int64

	mu       sync.Mutex
	failures []*PointError
}

// Runner executes sweeps with crash-safety hardening. The zero Runner is
// not useful — build one with NewRunner, then set the exported policy
// fields. A nil *Runner is valid everywhere one is accepted and selects
// the plain, unhardened pool (GOMAXPROCS workers, one attempt, no
// watchdog, no checkpointing), so drivers can take a Runner without
// forcing every caller to construct one.
type Runner struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Attempts is the per-point attempt budget; <= 0 means 1 (no
	// retries). Retrying is safe because every point is a pure function
	// of (seed, index): a retry recomputes the identical result.
	Attempts int
	// Timeout is the per-attempt watchdog deadline; 0 disables it. A
	// timed-out attempt is abandoned (its goroutine parks until the task
	// returns — Go cannot kill it; the sim engine's event budget is the
	// backstop that makes stuck models return) and counts against
	// Attempts.
	Timeout time.Duration
	// FailSoft makes a sweep run to completion even when points fail:
	// failed points keep their zero value, the sweep returns nil error,
	// and the failures are collected on the Runner (Failures) for the
	// caller to report. Without FailSoft the first failing (lowest)
	// index aborts the sweep, exactly like Map.
	FailSoft bool
	// Store, when non-nil, checkpoints every completed point and
	// restores already-completed points instead of recomputing them.
	Store Store
	// FaultHook, when non-nil, runs before every point attempt. It is a
	// deterministic fault-injection seam for tests and drills: it may
	// return an error (transient failure), panic (buggy point), or block
	// (runaway point — caught by the watchdog). The sweep argument is the
	// full sweep ID.
	FaultHook func(sweep string, index, attempt int) error
	// Rec, when non-nil, receives the exp.points.* counters and the
	// exp.point_seconds wall-clock histogram. Named derivatives share it.
	// Metrics are outputs only — no execution decision reads them.
	Rec *obs.Recorder

	prefix string
	state  *runnerState
}

// NewRunner returns a hardened Runner with the given pool size and
// default policy: one attempt, no watchdog, fail-fast, no store.
func NewRunner(workers int) *Runner {
	return &Runner{Workers: workers, state: &runnerState{}}
}

// Named returns a Runner that prefixes every sweep ID with name
// (slash-joined). Counters, failures, policy and store are shared with
// the parent — Named only namespaces sweep IDs, so one driver function
// can be invoked twice in a run (e.g. Fig7 for each workload) without
// its checkpoints colliding.
func (r *Runner) Named(name string) *Runner {
	if r == nil {
		return nil
	}
	c := *r
	c.prefix = joinSweep(r.prefix, name)
	return &c
}

// Failures returns every point failure collected by fail-soft sweeps,
// ordered by (sweep, index).
func (r *Runner) Failures() []*PointError {
	if r == nil || r.state == nil {
		return nil
	}
	r.state.mu.Lock()
	out := make([]*PointError, len(r.state.failures))
	copy(out, r.state.failures)
	r.state.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sweep != out[j].Sweep {
			return out[i].Sweep < out[j].Sweep
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Stats returns the Runner's cumulative counters.
func (r *Runner) Stats() Stats {
	if r == nil || r.state == nil {
		return Stats{}
	}
	r.state.mu.Lock()
	failed := int64(len(r.state.failures))
	r.state.mu.Unlock()
	return Stats{
		Computed: r.state.computed.Load(),
		Restored: r.state.restored.Load(),
		Retried:  r.state.retried.Load(),
		Failed:   failed,
	}
}

func (r *Runner) workers() int {
	if r == nil {
		return 0
	}
	return r.Workers
}

func (r *Runner) attempts() int {
	if r == nil || r.Attempts <= 0 {
		return 1
	}
	return r.Attempts
}

func (r *Runner) store() Store {
	if r == nil {
		return nil
	}
	return r.Store
}

func (r *Runner) failSoft() bool { return r != nil && r.FailSoft }

// Recorder returns the Runner's observability recorder, nil-safe. Figure
// drivers that build simulator configs deep inside a sweep pull the
// recorder from the runner they were handed, so one wiring point at the
// command line reaches every layer.
func (r *Runner) Recorder() *obs.Recorder {
	if r == nil {
		return nil
	}
	return r.Rec
}

// Or returns r when non-nil, and otherwise a plain pool Runner of the
// given size — the resolution rule for configs that carry an optional
// Exec *Runner next to a legacy Workers int: the hardened runner, when
// supplied, takes precedence.
func Or(r *Runner, workers int) *Runner {
	if r != nil {
		return r
	}
	return &Runner{Workers: workers}
}

func joinSweep(prefix, sweep string) string {
	switch {
	case prefix == "":
		return sweep
	case sweep == "":
		return prefix
	default:
		return prefix + "/" + sweep
	}
}

// RunSweep executes task(0..n-1) under r's hardening policy and returns
// the results ordered by index. sweep names the sweep for checkpoint
// keys and failure reports; it must be unique within a run when
// checkpointing is on. With a nil Runner it behaves exactly like
// Map(0, n, task).
//
// When r.Store is set, T must be gob-encodable (exported fields); every
// completed point is persisted and already-stored points are restored
// without running task.
func RunSweep[T any](r *Runner, sweep string, n int, task func(i int) (T, error)) ([]T, error) {
	return runSweep(r, sweep, n, task)
}

// RunSeeded is RunSweep for randomized tasks: each attempt of point i
// receives a fresh stats.RNG seeded with DeriveSeed(master, i), so no
// stream is shared between points (or between retries of one point) and
// the results do not depend on the worker count or the retry history.
func RunSeeded[T any](r *Runner, sweep string, master int64, n int, task func(i int, rng *stats.RNG) (T, error)) ([]T, error) {
	return runSweep(r, sweep, n, func(i int) (T, error) {
		return task(i, stats.NewRNG(DeriveSeed(master, i)))
	})
}

// runSweep is the shared execution core behind Map, SeededMap, RunSweep
// and RunSeeded.
func runSweep[T any](r *Runner, sweep string, n int, task func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	id := sweep
	if r != nil {
		id = joinSweep(r.prefix, sweep)
	}
	store := r.store()
	if store != nil && id == "" {
		return nil, errors.New("exp: checkpointing requires a non-empty sweep ID")
	}

	w := Workers(r.workers())
	if w > n {
		w = n
	}
	results := make([]T, n)
	perr := make([]*PointError, n)

	// Observability handles, resolved once per sweep. Counters are
	// atomic sums, so their final values are independent of worker count;
	// the wall-clock histogram is a profiling side channel.
	var (
		cComputed, cRestored, cRetried *obs.Counter
		hPoint                         *obs.Histogram
	)
	if r != nil && r.Rec != nil {
		cComputed = r.Rec.Counter(obs.ExpPointsComputed)
		cRestored = r.Rec.Counter(obs.ExpPointsRestored)
		cRetried = r.Rec.Counter(obs.ExpPointsRetried)
		hPoint = r.Rec.Histogram(obs.ExpPointSeconds)
	}

	var (
		fatalMu  sync.Mutex
		fatalErr error // storage/encoding failure: aborts even fail-soft runs
	)
	setFatal := func(err error) {
		fatalMu.Lock()
		if fatalErr == nil {
			fatalErr = err
		}
		fatalMu.Unlock()
	}

	// point runs one index to completion (restore, or attempt loop) and
	// reports whether the sweep should stop dispatching.
	point := func(i int) (stop bool) {
		if store != nil {
			data, ok, err := store.Lookup(id, i)
			if err != nil {
				setFatal(err)
				return true
			}
			if ok {
				var v T
				if decodeSnapshot(data, &v) == nil {
					results[i] = v
					if r.state != nil {
						r.state.restored.Add(1)
					}
					cRestored.Inc()
					return false
				}
				// Undecodable snapshot: recompute and overwrite below.
			}
		}

		attempts := r.attempts()
		var lastErr error
		for a := 1; a <= attempts; a++ {
			var start time.Time
			if hPoint != nil {
				start = time.Now()
			}
			v, err := callPoint(r, id, i, a, task)
			if err != nil {
				lastErr = err
				continue
			}
			if hPoint != nil {
				hPoint.Observe(time.Since(start).Seconds())
			}
			results[i] = v
			if r != nil && r.state != nil {
				r.state.computed.Add(1)
				if a > 1 {
					r.state.retried.Add(1)
				}
			}
			cComputed.Inc()
			if a > 1 {
				cRetried.Inc()
			}
			if store != nil {
				data, err := encodeSnapshot(&v)
				if err != nil {
					setFatal(fmt.Errorf("exp: encode snapshot %s[%d]: %w", id, i, err))
					return true
				}
				if err := store.Save(id, i, data); err != nil {
					setFatal(fmt.Errorf("exp: save snapshot %s[%d]: %w", id, i, err))
					return true
				}
			}
			return false
		}
		perr[i] = &PointError{Sweep: id, Index: i, Attempts: attempts, Err: lastErr}
		return !r.failSoft()
	}

	if w == 1 {
		// Inline serial path: the reference order the pool reproduces.
		for i := 0; i < n; i++ {
			if point(i) {
				break
			}
		}
	} else {
		var (
			next    atomic.Int64
			stopped atomic.Bool
			wg      sync.WaitGroup
		)
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n || stopped.Load() {
						return
					}
					if point(i) {
						stopped.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
	}

	if fatalErr != nil {
		return nil, fatalErr
	}
	var failures []*PointError
	for _, pe := range perr {
		if pe != nil {
			failures = append(failures, pe)
		}
	}
	if len(failures) == 0 {
		return results, nil
	}
	if r.failSoft() {
		if r.state != nil {
			r.state.mu.Lock()
			r.state.failures = append(r.state.failures, failures...)
			r.state.mu.Unlock()
		}
		return results, nil
	}
	// Fail-fast: dispatch is monotonic, so every index below the first
	// failure was attempted and the lowest-index error is deterministic.
	return nil, failures[0]
}

// callPoint runs one attempt of task(i) with panic isolation and, when
// configured, the watchdog deadline. The FaultHook (if any) runs inside
// the same protection, so hook-injected panics and hangs behave exactly
// like task-level ones.
func callPoint[T any](r *Runner, sweep string, i, attempt int, task func(i int) (T, error)) (T, error) {
	run := func() (out T, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = &PanicError{Value: p, Stack: debug.Stack()}
			}
		}()
		if r != nil && r.FaultHook != nil {
			if err := r.FaultHook(sweep, i, attempt); err != nil {
				return out, err
			}
		}
		return task(i)
	}

	if r == nil || r.Timeout <= 0 {
		return run()
	}
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1) // buffered: an abandoned attempt parks nothing
	go func() {
		v, err := run()
		ch <- outcome{v, err}
	}()
	timer := time.NewTimer(r.Timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-timer.C:
		var zero T
		return zero, fmt.Errorf("%w (%s)", ErrPointTimeout, r.Timeout)
	}
}

// encodeSnapshot serializes a point result for the checkpoint store. gob
// is used rather than JSON because sweep results legitimately contain
// ±Inf (reconfiguration with zero idle nodes) and float64 values must
// round-trip bit-exactly for resumed runs to stay byte-identical.
func encodeSnapshot[T any](v *T) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeSnapshot[T any](data []byte, v *T) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
