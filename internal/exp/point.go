package exp

import (
	"fmt"
	"sort"
	"sync"
)

// This file defines the remote-executable form of a sweep point. A
// PointSpec is everything an agent process needs to compute one point —
// task name, sweep ID, index, derived seed, encoded parameters — and a
// Tasks registry maps task names to executable functions. The contract
// that makes remote execution safe is the same purity rule the sweep pool
// relies on (see the package comment): a task's output bytes must be a
// pure function of its PointSpec, so a point recomputed on any machine,
// any number of times, yields identical bytes.

// PointSpec describes one sweep point in a form that can cross a process
// boundary: it is gob- and JSON-encodable and carries no closures. Seed
// should come from DeriveSeed(master, Index) so the spec fully determines
// the point's RNG streams; Params holds task-specific parameters in
// whatever encoding the task documents (canonical JSON throughout this
// repository).
type PointSpec struct {
	Task   string // registered task name
	Sweep  string // sweep ID, used for checkpoint keys and error reports
	Index  int    // position of this point in the sweep
	Seed   int64  // per-point RNG seed, derived from the master seed
	Params []byte // task-specific parameters (canonical JSON)
}

// Validate checks the fields every executor relies on.
func (s PointSpec) Validate() error {
	if s.Task == "" {
		return fmt.Errorf("exp: point spec with empty task name")
	}
	if s.Index < 0 {
		return fmt.Errorf("exp: point spec %s with negative index %d", s.Task, s.Index)
	}
	return nil
}

// TaskFunc computes one sweep point from its spec. Implementations must
// be pure: the returned bytes may depend only on the spec (deterministic
// encoding included), never on wall-clock, host identity, or shared
// mutable state — that purity is what makes re-execution after a lost
// agent, and duplicate execution after an ambiguous timeout, harmless.
type TaskFunc func(spec PointSpec) ([]byte, error)

// Tasks is a registry of named point executors. It is the seam between
// the fabric coordinator (which only ships PointSpecs) and the code that
// knows how to run them; agents and serial drivers register the same
// tasks so every execution path computes identical bytes.
type Tasks struct {
	mu sync.RWMutex
	m  map[string]TaskFunc
}

// NewTasks returns an empty registry.
func NewTasks() *Tasks {
	return &Tasks{m: map[string]TaskFunc{}}
}

// Register adds a named task. It fails on an empty name, a nil function,
// or a duplicate registration — task names are a cross-process protocol,
// so silently replacing one would let two processes disagree about what a
// spec means.
func (t *Tasks) Register(name string, fn TaskFunc) error {
	if name == "" {
		return fmt.Errorf("exp: task with empty name")
	}
	if fn == nil {
		return fmt.Errorf("exp: task %q with nil function", name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.m[name]; dup {
		return fmt.Errorf("exp: task %q already registered", name)
	}
	t.m[name] = fn
	return nil
}

// Lookup returns the task registered under name.
func (t *Tasks) Lookup(name string) (TaskFunc, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	fn, ok := t.m[name]
	return fn, ok
}

// Names returns the registered task names, sorted.
func (t *Tasks) Names() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.m))
	for name := range t.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run validates spec and executes it with the registered task. An
// unknown task name is an agent-level error, not a transport failure:
// retrying it on the same registry cannot succeed.
func (t *Tasks) Run(spec PointSpec) ([]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fn, ok := t.Lookup(spec.Task)
	if !ok {
		return nil, fmt.Errorf("exp: unknown task %q (registered: %v)", spec.Task, t.Names())
	}
	return fn(spec)
}
