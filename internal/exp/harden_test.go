package exp

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lingerlonger/internal/stats"
)

// memStore is an in-memory exp.Store for tests: counts operations and can
// inject save failures after a budget, mirroring checkpoint.Run.FailAfter.
type memStore struct {
	mu        sync.Mutex
	snaps     map[string][]byte
	lookups   int
	saves     int
	failAfter int // saves remaining before Save starts failing; -1 = never
	failErr   error
}

func newMemStore() *memStore {
	return &memStore{snaps: map[string][]byte{}, failAfter: -1}
}

func (s *memStore) key(sweep string, i int) string { return fmt.Sprintf("%s[%d]", sweep, i) }

func (s *memStore) Lookup(sweep string, i int) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookups++
	b, ok := s.snaps[s.key(sweep, i)]
	return b, ok, nil
}

func (s *memStore) Save(sweep string, i int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failAfter == 0 {
		return s.failErr
	}
	if s.failAfter > 0 {
		s.failAfter--
	}
	s.saves++
	s.snaps[s.key(sweep, i)] = append([]byte(nil), data...)
	return nil
}

func (s *memStore) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.snaps)
}

func TestMapRecoversPanicsAndDrains(t *testing.T) {
	for _, w := range []int{1, 8} {
		_, err := Map(w, 50, func(i int) (int, error) {
			if i == 7 {
				panic("kaboom")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic swallowed", w)
		}
		var pe *PointError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error %T is not a *PointError: %v", w, err, err)
		}
		if pe.Index != 7 {
			t.Errorf("workers=%d: failing index = %d, want 7", w, pe.Index)
		}
		var pan *PanicError
		if !errors.As(err, &pan) {
			t.Fatalf("workers=%d: error does not wrap *PanicError: %v", w, err)
		}
		if pan.Value != "kaboom" {
			t.Errorf("workers=%d: panic value = %v", w, pan.Value)
		}
		if !bytes.Contains(pan.Stack, []byte("harden_test")) {
			t.Errorf("workers=%d: recovered stack does not mention the panic site", w)
		}
	}
}

// TestMapDrainsWhenEveryPointPanics is the regression test for the
// historical bug where a worker panic escaped the pool as a bare
// goroutine crash: even with every point panicking, the pool must drain
// and return normally.
func TestMapDrainsWhenEveryPointPanics(t *testing.T) {
	before := runtime.NumGoroutine()
	_, err := Map(8, 64, func(i int) (int, error) {
		panic(i)
	})
	if err == nil {
		t.Fatal("no error from an all-panicking sweep")
	}
	var pe *PointError
	if !errors.As(err, &pe) || pe.Index != 0 {
		t.Fatalf("want lowest-index PointError, got %v", err)
	}
	waitForGoroutines(t, before)
}

func TestRunSweepRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	r := NewRunner(4)
	r.Attempts = 3
	out, err := RunSweep(r, "retry", 10, func(i int) (int, error) {
		if i == 5 && calls.Add(1) < 3 {
			return 0, errors.New("transient")
		}
		return i * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[5] != 10 {
		t.Errorf("retried point = %d, want 10", out[5])
	}
	if got := r.Stats().Retried; got != 1 {
		t.Errorf("Stats().Retried = %d, want 1", got)
	}
}

func TestRunSweepExhaustsAttempts(t *testing.T) {
	boom := errors.New("persistent")
	r := NewRunner(1)
	r.Attempts = 3
	_, err := RunSweep(r, "exhaust", 4, func(i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PointError, got %v", err)
	}
	if pe.Attempts != 3 || pe.Index != 2 || pe.Sweep != "exhaust" {
		t.Errorf("PointError = %+v", pe)
	}
	if !errors.Is(err, boom) {
		t.Errorf("error chain lost the task error: %v", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error text does not report attempts: %v", err)
	}
}

func TestRunSweepWatchdogTimesOutHungPoint(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	r := NewRunner(2)
	r.Timeout = 20 * time.Millisecond
	r.FailSoft = true
	out, err := RunSweep(r, "hang", 6, func(i int) (int, error) {
		if i == 3 {
			<-release // runaway point: blocks until the test ends
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		want := i
		if i == 3 {
			want = 0 // failed point keeps the zero value
		}
		if v != want {
			t.Errorf("out[%d] = %d, want %d", i, v, want)
		}
	}
	fails := r.Failures()
	if len(fails) != 1 {
		t.Fatalf("got %d failures, want 1: %v", len(fails), fails)
	}
	if !errors.Is(fails[0], ErrPointTimeout) {
		t.Errorf("failure does not wrap ErrPointTimeout: %v", fails[0])
	}
	if fails[0].Index != 3 {
		t.Errorf("failed index = %d, want 3", fails[0].Index)
	}
}

// TestFailSoftSweepCompletesAroundPanickingPoint is the acceptance test
// for fail-soft mode: a sweep with an injected panicking point finishes,
// produces results for every other point, records a typed failure naming
// the point, checkpoints all successful points, and leaks no goroutines.
func TestFailSoftSweepCompletesAroundPanickingPoint(t *testing.T) {
	before := runtime.NumGoroutine()
	store := newMemStore()
	r := NewRunner(8)
	r.FailSoft = true
	r.Store = store
	const n = 40
	out, err := RunSweep(r, "failsoft", n, func(i int) (int, error) {
		if i == 17 {
			panic("injected bug at point 17")
		}
		return i + 100, nil
	})
	if err != nil {
		t.Fatalf("fail-soft sweep returned an error: %v", err)
	}
	for i, v := range out {
		switch {
		case i == 17 && v != 0:
			t.Errorf("failed point has non-zero value %d", v)
		case i != 17 && v != i+100:
			t.Errorf("out[%d] = %d, want %d", i, v, i+100)
		}
	}
	fails := r.Failures()
	if len(fails) != 1 || fails[0].Sweep != "failsoft" || fails[0].Index != 17 {
		t.Fatalf("failures = %v, want exactly failsoft[17]", fails)
	}
	var pan *PanicError
	if !errors.As(fails[0], &pan) {
		t.Errorf("failure is not a recovered panic: %v", fails[0])
	}
	if store.count() != n-1 {
		t.Errorf("store holds %d snapshots, want %d (every point but the failed one)", store.count(), n-1)
	}
	if got := r.Stats(); got.Computed != n-1 || got.Failed != 1 {
		t.Errorf("Stats() = %+v", got)
	}
	waitForGoroutines(t, before)
}

func TestRunSweepRestoresFromStore(t *testing.T) {
	store := newMemStore()
	var firstRuns atomic.Int64
	r := NewRunner(4)
	r.Store = store
	task := func(counter *atomic.Int64) func(int) (float64, error) {
		return func(i int) (float64, error) {
			counter.Add(1)
			return float64(i) * 1.5, nil
		}
	}
	first, err := RunSweep(r, "resume", 20, task(&firstRuns))
	if err != nil {
		t.Fatal(err)
	}
	if firstRuns.Load() != 20 {
		t.Fatalf("first pass ran %d tasks, want 20", firstRuns.Load())
	}

	// Second runner, same store: every point must restore, none recompute.
	var secondRuns atomic.Int64
	r2 := NewRunner(4)
	r2.Store = store
	second, err := RunSweep(r2, "resume", 20, task(&secondRuns))
	if err != nil {
		t.Fatal(err)
	}
	if secondRuns.Load() != 0 {
		t.Errorf("resumed pass recomputed %d points, want 0", secondRuns.Load())
	}
	if got := r2.Stats().Restored; got != 20 {
		t.Errorf("Stats().Restored = %d, want 20", got)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("restored[%d] = %v, computed %v", i, second[i], first[i])
		}
	}
}

func TestRunSweepPartialResumeIsExact(t *testing.T) {
	// Interrupt a checkpointed sweep via an injected Save failure, then
	// resume with a fresh runner: results must equal an uninterrupted run
	// exactly, for serial and parallel pools.
	for _, w := range []int{1, 8} {
		ref, err := RunSeeded(NewRunner(w), "partial", 99, 30, noisyTask)
		if err != nil {
			t.Fatal(err)
		}

		store := newMemStore()
		store.failAfter = 11
		store.failErr = errors.New("injected crash")
		r := NewRunner(w)
		r.Store = store
		if _, err := RunSeeded(r, "partial", 99, 30, noisyTask); err == nil {
			t.Fatalf("workers=%d: injected crash did not surface", w)
		}
		if store.count() == 0 || store.count() >= 30 {
			t.Fatalf("workers=%d: crash left %d snapshots, want a strict subset", w, store.count())
		}

		store.failAfter = -1
		r2 := NewRunner(w)
		r2.Store = store
		resumed, err := RunSeeded(r2, "partial", 99, 30, noisyTask)
		if err != nil {
			t.Fatal(err)
		}
		if st := r2.Stats(); st.Restored == 0 || st.Computed == 0 {
			t.Errorf("workers=%d: resume did not mix restored and computed points: %+v", w, st)
		}
		for i := range ref {
			if resumed[i] != ref[i] {
				t.Errorf("workers=%d: resumed[%d] = %v, want %v", w, i, resumed[i], ref[i])
			}
		}
	}
}

func TestRunSweepFaultHookInjection(t *testing.T) {
	r := NewRunner(2)
	r.Attempts = 2
	r.FaultHook = func(sweep string, index, attempt int) error {
		if sweep == "hook" && index == 4 && attempt == 1 {
			return errors.New("injected transient")
		}
		return nil
	}
	out, err := RunSweep(r, "hook", 8, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[4] != 4 {
		t.Errorf("out[4] = %d after retry, want 4", out[4])
	}
	if r.Stats().Retried != 1 {
		t.Errorf("Stats().Retried = %d, want 1", r.Stats().Retried)
	}
}

func TestNamedRunnerNamespacesSweeps(t *testing.T) {
	store := newMemStore()
	r := NewRunner(2)
	r.Store = store
	for _, wl := range []string{"wl1", "wl2"} {
		sub := r.Named(wl)
		if _, err := RunSweep(sub, "fig7", 4, func(i int) (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if store.count() != 8 {
		t.Fatalf("store holds %d snapshots, want 8 (two namespaced sweeps)", store.count())
	}
	if _, ok, _ := store.Lookup("wl1/fig7", 0); !ok {
		t.Error("namespaced snapshot wl1/fig7[0] missing")
	}
	// Counters aggregate across Named derivatives.
	if got := r.Stats().Computed; got != 8 {
		t.Errorf("parent Stats().Computed = %d, want 8", got)
	}
}

func TestNilRunnerIsPlainPool(t *testing.T) {
	out, err := RunSweep[int](nil, "whatever", 10, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
	var r *Runner
	if r.Failures() != nil || r.Named("x") != nil {
		t.Error("nil runner methods must be no-ops")
	}
}

func TestRunSweepDeterministicAcrossWorkersWithStoreAndRetries(t *testing.T) {
	ref, err := RunSeeded(NewRunner(1), "det", 7, 40, noisyTask)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		r := NewRunner(w)
		r.Attempts = 3
		r.Store = newMemStore()
		var failedOnce sync.Map
		r.FaultHook = func(sweep string, index, attempt int) error {
			// Fail every third point's first attempt: retries must not
			// perturb results because each attempt reseeds from (master, i).
			if index%3 == 0 && attempt == 1 {
				if _, dup := failedOnce.LoadOrStore(index, true); !dup {
					return errors.New("flaky")
				}
			}
			return nil
		}
		got, err := RunSeeded(r, "det", 7, 40, noisyTask)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("workers=%d: out[%d] = %v, serial reference %v", w, i, got[i], ref[i])
			}
		}
	}
}

// noisyTask consumes an index-dependent amount of randomness, so stream
// sharing or reseeding bugs corrupt later draws.
func noisyTask(i int, rng *stats.RNG) (float64, error) {
	v := 0.0
	for k := 0; k <= i%7; k++ {
		v = rng.Float64()
	}
	return v, nil
}

// waitForGoroutines asserts the goroutine count returns to (near) the
// baseline, polling briefly to let pool workers exit.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
