package exp

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestPointSpecValidate(t *testing.T) {
	if err := (PointSpec{Task: "t", Index: 0}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if err := (PointSpec{Index: 0}).Validate(); err == nil {
		t.Fatal("empty task name accepted")
	}
	if err := (PointSpec{Task: "t", Index: -1}).Validate(); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestTasksRegisterAndRun(t *testing.T) {
	reg := NewTasks()
	echo := func(spec PointSpec) ([]byte, error) {
		return []byte(fmt.Sprintf("%s/%d/%d", spec.Task, spec.Index, spec.Seed)), nil
	}
	if err := reg.Register("echo", echo); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("echo", echo); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := reg.Register("", echo); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := reg.Register("nilfn", nil); err == nil {
		t.Fatal("nil function accepted")
	}

	out, err := reg.Run(PointSpec{Task: "echo", Sweep: "s", Index: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "echo/3/42" {
		t.Fatalf("unexpected output %q", out)
	}

	if _, err := reg.Run(PointSpec{Task: "nope", Index: 0}); err == nil ||
		!strings.Contains(err.Error(), "unknown task") {
		t.Fatalf("unknown task: got %v", err)
	}
	if _, err := reg.Run(PointSpec{Task: "", Index: 0}); err == nil {
		t.Fatal("invalid spec executed")
	}
}

func TestTasksNames(t *testing.T) {
	reg := NewTasks()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := reg.Register(name, func(PointSpec) ([]byte, error) { return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := reg.Names(), []string{"alpha", "mid", "zeta"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if _, ok := reg.Lookup("alpha"); !ok {
		t.Fatal("Lookup missed a registered task")
	}
	if _, ok := reg.Lookup("missing"); ok {
		t.Fatal("Lookup found an unregistered task")
	}
}
