package exp

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"lingerlonger/internal/stats"
)

func TestDeriveSeedDistinctAcrossIndices(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := DeriveSeed(1, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed(1, %d) == DeriveSeed(1, %d) == %d", i, prev, s)
		}
		seen[s] = i
	}
}

func TestDeriveSeedDistinctAcrossMasters(t *testing.T) {
	seen := map[int64]int64{}
	for m := int64(0); m < 10000; m++ {
		s := DeriveSeed(m, 0)
		if prev, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed(%d, 0) == DeriveSeed(%d, 0) == %d", m, prev, s)
		}
		seen[s] = m
	}
}

func TestDeriveSeedIsPure(t *testing.T) {
	for _, idx := range []int{0, 1, 17, 1 << 20, -1, -42} {
		if DeriveSeed(99, idx) != DeriveSeed(99, idx) {
			t.Errorf("DeriveSeed(99, %d) not stable", idx)
		}
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("different masters map index 0 to the same seed")
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-3); got != Workers(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS default %d", got, Workers(0))
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, w := range []int{1, 2, 7, 64} {
		got, err := Map(w, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapEmptySweep(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Errorf("Map(_, 0, _) = %v, %v; want nil, nil", got, err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int64
	_, err := Map(3, 40, func(i int) (struct{}, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("observed %d concurrent tasks, pool bound is 3", p)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	boom := errors.New("boom")
	for _, w := range []int{1, 8} {
		_, err := Map(w, 100, func(i int) (int, error) {
			if i == 13 || i == 77 {
				return 0, fmt.Errorf("task-level %d: %w", i, boom)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: error swallowed", w)
		}
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: error chain broken: %v", w, err)
		}
		if !strings.Contains(err.Error(), "task 13") {
			t.Errorf("workers=%d: error = %q, want the lowest failing index 13", w, err)
		}
	}
}

func TestSeededMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []float64 {
		out, err := SeededMap(workers, 42, 64, func(i int, rng *stats.RNG) (float64, error) {
			// Consume a run-dependent amount of randomness so any stream
			// sharing between tasks would corrupt later draws.
			v := 0.0
			for k := 0; k <= i%5; k++ {
				v = rng.Float64()
			}
			return v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1)
	for _, w := range []int{2, 4, 16} {
		got := run(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: result[%d] = %v, serial reference %v", w, i, got[i], ref[i])
			}
		}
	}
}

func TestSeededMapTasksGetIndependentStreams(t *testing.T) {
	out, err := SeededMap(4, 7, 32, func(i int, rng *stats.RNG) (float64, error) {
		return rng.Float64(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("two tasks drew the identical first variate %v", v)
		}
		seen[v] = true
	}
}
