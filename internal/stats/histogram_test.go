package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if h.Total() != 10 {
		t.Errorf("Total() = %d", h.Total())
	}
	for i := 0; i < 10; i++ {
		if h.Count(i) != 1 {
			t.Errorf("Count(%d) = %d, want 1", i, h.Count(i))
		}
		if got, want := h.BinCenter(i), float64(i)+0.5; math.Abs(got-want) > 1e-12 {
			t.Errorf("BinCenter(%d) = %g, want %g", i, got, want)
		}
	}
	if got := h.CumulativeFraction(4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CumulativeFraction(4) = %g, want 0.5", got)
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(99)
	if h.Count(0) != 1 || h.Count(3) != 1 {
		t.Errorf("out-of-range samples not clamped: %v %v", h.Count(0), h.Count(3))
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
		func() { NewHistogram(2, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad histogram construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	s := h.String()
	if !strings.Contains(s, "100.0%") {
		t.Errorf("String() = %q, want a 100%% line", s)
	}
}

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	if e.N() != 4 {
		t.Errorf("N() = %d", e.N())
	}
	if got := e.At(0); got != 0 {
		t.Errorf("At(0) = %g", got)
	}
	if got := e.At(2); got != 0.5 {
		t.Errorf("At(2) = %g, want 0.5", got)
	}
	if got := e.At(10); got != 1 {
		t.Errorf("At(10) = %g, want 1", got)
	}
	if got := e.Quantile(0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Quantile(0.5) = %g, want 2.5", got)
	}
}

func TestECDFAddAfterConstruct(t *testing.T) {
	e := NewECDF([]float64{3})
	e.Add(1)
	e.Add(2)
	if got := e.At(1.5); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("At(1.5) = %g, want 1/3", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	var e ECDF
	if e.At(1) != 0 || e.Quantile(0.5) != 0 || e.Points(10) != nil {
		t.Error("empty ECDF should return zero values")
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	pts := e.Points(11)
	if len(pts) != 11 {
		t.Fatalf("len(Points) = %d", len(pts))
	}
	if pts[0][0] != 0 || pts[10][0] != 9 {
		t.Errorf("point range = [%g, %g], want [0, 9]", pts[0][0], pts[10][0])
	}
	prev := -1.0
	for _, p := range pts {
		if p[1] < prev {
			t.Fatalf("ECDF points not monotone: %v", pts)
		}
		prev = p[1]
	}
}

func TestECDFMaxAbsDiffExactModel(t *testing.T) {
	// Against its own step function approximated by a dense exponential
	// sample, the KS distance should be small.
	d := NewExponentialMean(1)
	rng := NewRNG(8)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	e := NewECDF(xs)
	if ks := e.MaxAbsDiff(d.CDF); ks > 0.02 {
		t.Errorf("KS distance vs true CDF = %g", ks)
	}
}

// Property: ECDF.At is monotone and within [0, 1].
func TestECDFMonotoneQuick(t *testing.T) {
	f := func(raw []uint16, probesRaw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		e := NewECDF(xs)
		prevX, prevF := math.Inf(-1), 0.0
		for _, pr := range probesRaw {
			x := float64(pr)
			f := e.At(x)
			if f < 0 || f > 1 {
				return false
			}
			if x >= prevX && f < prevF {
				return false
			}
			if x >= prevX {
				prevX, prevF = x, f
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
