package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram is a fixed-width binned histogram over [Lo, Hi). Samples below
// Lo land in the first bin; samples at or above Hi land in the last bin.
// The zero value is not usable; construct with NewHistogram.
type Histogram struct {
	lo, hi float64
	width  float64
	counts []int
	total  int
}

// NewHistogram returns a histogram with bins equal-width bins over
// [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: histogram needs positive bin count, got %d", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram needs hi > lo, got [%g, %g)", lo, hi))
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(bins),
		counts: make([]int, bins),
	}
}

// Add folds x into the histogram, clamping out-of-range samples to the
// boundary bins.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.lo) / h.width)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the number of samples in bin i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Total returns the total number of samples added.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.width
}

// Fraction returns the fraction of samples in bin i, or 0 if the histogram
// is empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// CumulativeFraction returns the fraction of samples in bins [0, i], or 0
// if the histogram is empty.
func (h *Histogram) CumulativeFraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	c := 0
	for j := 0; j <= i && j < len(h.counts); j++ {
		c += h.counts[j]
	}
	return float64(c) / float64(h.total)
}

// String renders a compact textual sketch of the histogram, one line per
// non-empty bin.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%8.4f) %6d %5.1f%%\n", h.lo+float64(i)*h.width, c, 100*h.Fraction(i))
	}
	return b.String()
}

// ECDF is an empirical cumulative distribution function built from a
// sample. The zero value is an empty ECDF; Add samples then call At.
type ECDF struct {
	xs     []float64
	sorted bool
}

// NewECDF returns an ECDF over a copy of xs.
func NewECDF(xs []float64) *ECDF {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return &ECDF{xs: cp, sorted: true}
}

// Add appends a sample.
func (e *ECDF) Add(x float64) {
	e.xs = append(e.xs, x)
	e.sorted = false
}

// N returns the number of samples.
func (e *ECDF) N() int { return len(e.xs) }

func (e *ECDF) ensureSorted() {
	if !e.sorted {
		sort.Float64s(e.xs)
		e.sorted = true
	}
}

// At returns the empirical P(X <= x), or 0 for an empty ECDF.
func (e *ECDF) At(x float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	e.ensureSorted()
	// Number of samples <= x.
	n := sort.Search(len(e.xs), func(i int) bool { return e.xs[i] > x })
	return float64(n) / float64(len(e.xs))
}

// Quantile returns the q-quantile of the sample (0 <= q <= 1).
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	e.ensureSorted()
	return quantileSorted(e.xs, q)
}

// Points returns n evenly spaced (x, F(x)) points spanning the sample
// range, suitable for plotting a CDF curve. It returns nil for an empty
// ECDF or n < 2.
func (e *ECDF) Points(n int) [][2]float64 {
	if len(e.xs) == 0 || n < 2 {
		return nil
	}
	e.ensureSorted()
	lo, hi := e.xs[0], e.xs[len(e.xs)-1]
	pts := make([][2]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = [2]float64{x, e.At(x)}
	}
	return pts
}

// MaxAbsDiff returns the maximum absolute difference between the ECDF and
// the model CDF evaluated at every sample point (the Kolmogorov–Smirnov
// statistic against a fitted distribution).
func (e *ECDF) MaxAbsDiff(cdf func(float64) float64) float64 {
	e.ensureSorted()
	maxDiff := 0.0
	n := float64(len(e.xs))
	for i, x := range e.xs {
		model := cdf(x)
		hi := float64(i+1)/n - model
		lo := model - float64(i)/n
		if hi > maxDiff {
			maxDiff = hi
		}
		if lo > maxDiff {
			maxDiff = lo
		}
	}
	return maxDiff
}
