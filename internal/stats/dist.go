package stats

import (
	"fmt"
	"math"
)

// Distribution is a positive continuous distribution from which the
// workload models draw burst lengths.
type Distribution interface {
	// Sample draws one variate using rng.
	Sample(rng *RNG) float64
	// Mean returns the distribution mean.
	Mean() float64
	// Var returns the distribution variance.
	Var() float64
}

// Exponential is an exponential distribution with the given rate (1/mean).
type Exponential struct {
	Rate float64
}

// NewExponentialMean returns an exponential distribution with the given
// mean. It panics if mean <= 0.
func NewExponentialMean(mean float64) Exponential {
	if mean <= 0 {
		panic(fmt.Sprintf("stats: exponential mean must be positive, got %g", mean))
	}
	return Exponential{Rate: 1 / mean}
}

// Sample draws an exponential variate.
func (e Exponential) Sample(rng *RNG) float64 { return rng.ExpFloat64() / e.Rate }

// SampleInto fills dst with exponential variates. The stream is
// byte-identical to len(dst) successive Sample calls — the batch form
// exists purely to amortize per-call overhead on hot paths.
func (e Exponential) SampleInto(dst []float64, rng *RNG) {
	for i := range dst {
		dst[i] = rng.ExpFloat64() / e.Rate
	}
}

// Mean returns 1/rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Var returns 1/rate^2.
func (e Exponential) Var() float64 { return 1 / (e.Rate * e.Rate) }

// CDF returns P(X <= x).
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-e.Rate*x)
}

// HyperExp2 is a two-stage hyperexponential distribution: with probability
// P1 the variate is exponential with rate Rate1, otherwise exponential with
// rate Rate2. The paper fits run and idle burst durations with this family
// (coefficient of variation >= 1) using a method-of-moments estimate
// (Trivedi, "Probability and Statistics with Reliability, Queuing, and
// Computer Science Applications", p. 479).
type HyperExp2 struct {
	P1    float64 // probability of the first branch, in [0, 1]
	Rate1 float64 // rate of the first branch
	Rate2 float64 // rate of the second branch
}

// Sample draws a hyperexponential variate.
func (h HyperExp2) Sample(rng *RNG) float64 {
	if rng.Float64() < h.P1 {
		return rng.ExpFloat64() / h.Rate1
	}
	return rng.ExpFloat64() / h.Rate2
}

// SampleInto fills dst with hyperexponential variates. It performs
// exactly the same RNG draws in the same order as len(dst) successive
// Sample calls, so the variate stream — and therefore every figure fed by
// it — is unchanged; batching only removes per-call dispatch overhead in
// the burst generators (DESIGN.md §13).
func (h HyperExp2) SampleInto(dst []float64, rng *RNG) {
	for i := range dst {
		if rng.Float64() < h.P1 {
			dst[i] = rng.ExpFloat64() / h.Rate1
		} else {
			dst[i] = rng.ExpFloat64() / h.Rate2
		}
	}
}

// Mean returns p1/rate1 + p2/rate2.
func (h HyperExp2) Mean() float64 {
	return h.P1/h.Rate1 + (1-h.P1)/h.Rate2
}

// Var returns the variance 2*(p1/r1^2 + p2/r2^2) - mean^2.
func (h HyperExp2) Var() float64 {
	m := h.Mean()
	second := 2 * (h.P1/(h.Rate1*h.Rate1) + (1-h.P1)/(h.Rate2*h.Rate2))
	return second - m*m
}

// CDF returns P(X <= x).
func (h HyperExp2) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return h.P1*(1-math.Exp(-h.Rate1*x)) + (1-h.P1)*(1-math.Exp(-h.Rate2*x))
}

// SquaredCV returns the squared coefficient of variation Var/Mean^2.
func (h HyperExp2) SquaredCV() float64 {
	m := h.Mean()
	return h.Var() / (m * m)
}

// Deterministic is a degenerate distribution that always returns Value.
// It is useful in tests and ablations that remove burst variability.
type Deterministic struct {
	Value float64
}

// Sample returns the fixed value.
func (d Deterministic) Sample(*RNG) float64 { return d.Value }

// Mean returns the fixed value.
func (d Deterministic) Mean() float64 { return d.Value }

// Var returns 0.
func (d Deterministic) Var() float64 { return 0 }

// Uniform is a uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a uniform variate on [Lo, Hi).
func (u Uniform) Sample(rng *RNG) float64 { return u.Lo + rng.Float64()*(u.Hi-u.Lo) }

// Mean returns the midpoint.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Var returns (Hi-Lo)^2/12.
func (u Uniform) Var() float64 { d := u.Hi - u.Lo; return d * d / 12 }
