package stats

import (
	"fmt"
	"math"
)

// Distribution is a positive continuous distribution from which the
// workload models draw burst lengths.
type Distribution interface {
	// Sample draws one variate using rng.
	Sample(rng *RNG) float64
	// Mean returns the distribution mean.
	Mean() float64
	// Var returns the distribution variance.
	Var() float64
}

// Exponential is an exponential distribution with the given rate (1/mean).
type Exponential struct {
	Rate float64
}

// NewExponentialMean returns an exponential distribution with the given
// mean. It panics if mean <= 0.
func NewExponentialMean(mean float64) Exponential {
	if mean <= 0 {
		panic(fmt.Sprintf("stats: exponential mean must be positive, got %g", mean))
	}
	return Exponential{Rate: 1 / mean}
}

// Sample draws an exponential variate.
func (e Exponential) Sample(rng *RNG) float64 { return rng.ExpFloat64() / e.Rate }

// SampleInto fills dst with exponential variates. The stream is
// byte-identical to len(dst) successive Sample calls — the batch form
// exists purely to amortize per-call overhead on hot paths.
func (e Exponential) SampleInto(dst []float64, rng *RNG) {
	for i := range dst {
		dst[i] = rng.ExpFloat64() / e.Rate
	}
}

// Mean returns 1/rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Var returns 1/rate^2.
func (e Exponential) Var() float64 { return 1 / (e.Rate * e.Rate) }

// CDF returns P(X <= x).
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-e.Rate*x)
}

// HyperExp2 is a two-stage hyperexponential distribution: with probability
// P1 the variate is exponential with rate Rate1, otherwise exponential with
// rate Rate2. The paper fits run and idle burst durations with this family
// (coefficient of variation >= 1) using a method-of-moments estimate
// (Trivedi, "Probability and Statistics with Reliability, Queuing, and
// Computer Science Applications", p. 479).
type HyperExp2 struct {
	P1    float64 // probability of the first branch, in [0, 1]
	Rate1 float64 // rate of the first branch
	Rate2 float64 // rate of the second branch
}

// Sample draws a hyperexponential variate.
func (h HyperExp2) Sample(rng *RNG) float64 {
	if rng.Float64() < h.P1 {
		return rng.ExpFloat64() / h.Rate1
	}
	return rng.ExpFloat64() / h.Rate2
}

// SampleInto fills dst with hyperexponential variates. It performs
// exactly the same RNG draws in the same order as len(dst) successive
// Sample calls, so the variate stream — and therefore every figure fed by
// it — is unchanged; batching only removes per-call dispatch overhead in
// the burst generators (DESIGN.md §13).
func (h HyperExp2) SampleInto(dst []float64, rng *RNG) {
	for i := range dst {
		if rng.Float64() < h.P1 {
			dst[i] = rng.ExpFloat64() / h.Rate1
		} else {
			dst[i] = rng.ExpFloat64() / h.Rate2
		}
	}
}

// Mean returns p1/rate1 + p2/rate2.
func (h HyperExp2) Mean() float64 {
	return h.P1/h.Rate1 + (1-h.P1)/h.Rate2
}

// Var returns the variance 2*(p1/r1^2 + p2/r2^2) - mean^2.
func (h HyperExp2) Var() float64 {
	m := h.Mean()
	second := 2 * (h.P1/(h.Rate1*h.Rate1) + (1-h.P1)/(h.Rate2*h.Rate2))
	return second - m*m
}

// CDF returns P(X <= x).
func (h HyperExp2) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return h.P1*(1-math.Exp(-h.Rate1*x)) + (1-h.P1)*(1-math.Exp(-h.Rate2*x))
}

// SquaredCV returns the squared coefficient of variation Var/Mean^2.
func (h HyperExp2) SquaredCV() float64 {
	m := h.Mean()
	return h.Var() / (m * m)
}

// Deterministic is a degenerate distribution that always returns Value.
// It is useful in tests and ablations that remove burst variability.
type Deterministic struct {
	Value float64
}

// Sample returns the fixed value.
func (d Deterministic) Sample(*RNG) float64 { return d.Value }

// Mean returns the fixed value.
func (d Deterministic) Mean() float64 { return d.Value }

// Var returns 0.
func (d Deterministic) Var() float64 { return 0 }

// Pareto is a Pareto (power-law) distribution with minimum value Scale
// and tail index Alpha: P(X > x) = (Scale/x)^Alpha for x >= Scale. It is
// the canonical heavy-tailed job-size family — for Alpha <= 2 the
// variance is infinite, and for Alpha <= 1 so is the mean — modeling the
// regime where the paper's hyperexponential fit is the lucky case.
type Pareto struct {
	Scale float64 // minimum value (x_m), must be positive
	Alpha float64 // tail index, must be positive
}

// Sample draws a Pareto variate by inverting the CDF.
func (p Pareto) Sample(rng *RNG) float64 {
	// 1-Float64() is in (0, 1], so the power stays finite.
	return p.Scale / math.Pow(1-rng.Float64(), 1/p.Alpha)
}

// Mean returns alpha*scale/(alpha-1), or +Inf when Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Scale / (p.Alpha - 1)
}

// Var returns the variance, or +Inf when Alpha <= 2.
func (p Pareto) Var() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	a := p.Alpha
	return p.Scale * p.Scale * a / ((a - 1) * (a - 1) * (a - 2))
}

// CDF returns P(X <= x).
func (p Pareto) CDF(x float64) float64 {
	if x <= p.Scale {
		return 0
	}
	return 1 - math.Pow(p.Scale/x, p.Alpha)
}

// Lognormal is a log-normal distribution: exp(N(Mu, Sigma^2)). With
// large Sigma it is heavy-tailed in the subexponential sense while
// keeping all moments finite, sitting between the hyperexponential fit
// and the Pareto extreme.
type Lognormal struct {
	Mu    float64 // mean of the underlying normal
	Sigma float64 // standard deviation of the underlying normal, >= 0
}

// NewLognormalMean returns a log-normal with the requested mean and the
// given Sigma (Mu is solved from mean = exp(Mu + Sigma^2/2)). It panics
// if mean <= 0.
func NewLognormalMean(mean, sigma float64) Lognormal {
	if mean <= 0 {
		panic(fmt.Sprintf("stats: lognormal mean must be positive, got %g", mean))
	}
	return Lognormal{Mu: math.Log(mean) - sigma*sigma/2, Sigma: sigma}
}

// Sample draws a log-normal variate.
func (l Lognormal) Sample(rng *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Mean returns exp(mu + sigma^2/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Var returns (exp(sigma^2) - 1) * exp(2*mu + sigma^2).
func (l Lognormal) Var() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

// Clamped restricts another distribution to [Lo, Hi] by clamping each
// variate (not by rejection, so the draw count per Sample is unchanged —
// exactly one underlying draw). Mean and Var delegate to the underlying
// distribution and are therefore upper-tail approximations; the clamp
// exists to keep heavy-tailed job sizes inside the simulation horizon,
// not to be a calibrated truncated distribution.
type Clamped struct {
	Dist   Distribution
	Lo, Hi float64
}

// Sample draws from the underlying distribution and clamps to [Lo, Hi].
func (c Clamped) Sample(rng *RNG) float64 {
	x := c.Dist.Sample(rng)
	if x < c.Lo {
		return c.Lo
	}
	if x > c.Hi {
		return c.Hi
	}
	return x
}

// Mean returns the underlying distribution's mean (see the type comment).
func (c Clamped) Mean() float64 { return c.Dist.Mean() }

// Var returns the underlying distribution's variance (see the type comment).
func (c Clamped) Var() float64 { return c.Dist.Var() }

// Uniform is a uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a uniform variate on [Lo, Hi).
func (u Uniform) Sample(rng *RNG) float64 { return u.Lo + rng.Float64()*(u.Hi-u.Lo) }

// Mean returns the midpoint.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Var returns (Hi-Lo)^2/12.
func (u Uniform) Var() float64 { d := u.Hi - u.Lo; return d * d / 12 }
