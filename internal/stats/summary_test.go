package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Errorf("N() = %d, want %d", w.N(), len(xs))
	}
	if got, want := w.Mean(), Mean(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean() = %g, want %g", got, want)
	}
	// Direct population variance.
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		sum += (x - m) * (x - m)
	}
	want := sum / float64(len(xs))
	if got := w.Var(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Var() = %g, want %g", got, want)
	}
	if got := w.SampleVar(); math.Abs(got-sum/float64(len(xs)-1)) > 1e-12 {
		t.Errorf("SampleVar() = %g", got)
	}
	if w.Min() != 1 || w.Max() != 9 {
		t.Errorf("Min, Max = %g, %g; want 1, 9", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Error("zero-value Welford not zero")
	}
	w.Add(7)
	if w.Mean() != 7 || w.Var() != 0 || w.Min() != 7 || w.Max() != 7 {
		t.Error("single-sample Welford wrong")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) // 0..100
	}
	s := Summarize(xs)
	if s.N != 101 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 50 {
		t.Errorf("Mean = %g", s.Mean)
	}
	if s.Min != 0 || s.Max != 100 {
		t.Errorf("Min, Max = %g, %g", s.Min, s.Max)
	}
	if s.P50 != 50 {
		t.Errorf("P50 = %g", s.P50)
	}
	if s.P90 != 90 {
		t.Errorf("P90 = %g", s.P90)
	}
	if Summarize(nil).N != 0 {
		t.Error("Summarize(nil) not zero")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Summarize(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Summarize mutated input: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("Quantile(0) = %g", got)
	}
	if got := Quantile(xs, 1); got != 40 {
		t.Errorf("Quantile(1) = %g", got)
	}
	if got := Quantile(xs, 0.5); got != 25 {
		t.Errorf("Quantile(0.5) = %g, want 25", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %g", got)
	}
	if got := Quantile([]float64{9}, 0.3); got != 9 {
		t.Errorf("Quantile(single) = %g", got)
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Quantile(-0.1) did not panic")
		}
	}()
	Quantile([]float64{1}, -0.1)
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(raw []uint16, q1Raw, q2Raw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		q1 := float64(q1Raw%1001) / 1000
		q2 := float64(q2Raw%1001) / 1000
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		s := Summarize(xs)
		return v1 <= v2+1e-9 && v1 >= s.Min-1e-9 && v2 <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
