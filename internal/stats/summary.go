package stats

import (
	"math"
	"sort"
)

// Welford accumulates streaming mean and variance using Welford's
// algorithm. The zero value is an empty accumulator ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples added.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean, or 0 if empty.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (dividing by n), or 0 if fewer than
// two samples were added.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVar returns the unbiased sample variance (dividing by n-1), or 0 if
// fewer than two samples were added.
func (w *Welford) SampleVar() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Var()) }

// CV returns the coefficient of variation (stddev/mean), or 0 when the mean
// is 0.
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.StdDev() / w.mean
}

// Min returns the smallest sample, or 0 if empty.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample, or 0 if empty.
func (w *Welford) Max() float64 { return w.max }

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64 // population variance
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P95    float64
	P99    float64
}

// Summarize computes descriptive statistics of xs. It copies xs before
// sorting, so the argument is not modified. An empty slice yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return Summary{
		N:      w.N(),
		Mean:   w.Mean(),
		Var:    w.Var(),
		StdDev: w.StdDev(),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    quantileSorted(sorted, 0.50),
		P90:    quantileSorted(sorted, 0.90),
		P95:    quantileSorted(sorted, 0.95),
		P99:    quantileSorted(sorted, 0.99),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies xs before sorting.
// It returns 0 for an empty slice and panics for q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: quantile out of range")
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Var()
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }
