// Package stats provides the statistical substrate used by every simulator
// in this repository: a deterministic random-number source, the burst
// distributions the paper fits (exponential and two-stage hyperexponential),
// the method-of-moments hyperexponential fit, histograms, empirical CDFs,
// and streaming summary statistics.
//
// All randomness in the repository flows through RNG so that every
// experiment is reproducible from an explicit seed.
package stats

import "math/rand"

// RNG is a deterministic random-number generator. The zero value is not
// usable; construct one with NewRNG. RNG is not safe for concurrent use;
// simulators that run nodes in parallel give each node its own RNG derived
// with Split.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed. Equal seeds yield identical
// streams.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent generator from r. The derived stream is a
// deterministic function of r's current state, so a fixed sequence of Split
// calls after NewRNG is reproducible.
func (r *RNG) Split() *RNG {
	// Mix two draws so neighbouring splits do not share low bits.
	seed := r.r.Int63() ^ (r.r.Int63() << 1)
	return NewRNG(seed)
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform variate in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return r.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (r *RNG) Int63() int64 { return r.r.Int63() }

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 { return r.r.ExpFloat64() }

// NormFloat64 returns a standard normal variate.
func (r *RNG) NormFloat64() float64 { return r.r.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.r.Perm(n) }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.r.Float64() < p }
