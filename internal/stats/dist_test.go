package stats

import (
	"math"
	"testing"
	"testing/quick"
)

const sampleN = 200000

// sampleMoments draws n variates and returns their mean and variance.
func sampleMoments(t *testing.T, d Distribution, n int, seed int64) (mean, variance float64) {
	t.Helper()
	rng := NewRNG(seed)
	var w Welford
	for i := 0; i < n; i++ {
		x := d.Sample(rng)
		if x < 0 {
			t.Fatalf("negative sample %g from %#v", x, d)
		}
		w.Add(x)
	}
	return w.Mean(), w.Var()
}

func TestExponentialMoments(t *testing.T) {
	for _, mean := range []float64{0.001, 0.5, 3.0} {
		d := NewExponentialMean(mean)
		if got := d.Mean(); math.Abs(got-mean) > 1e-12 {
			t.Errorf("Mean() = %g, want %g", got, mean)
		}
		if got := d.Var(); math.Abs(got-mean*mean) > 1e-12 {
			t.Errorf("Var() = %g, want %g", got, mean*mean)
		}
		m, v := sampleMoments(t, d, sampleN, 1)
		if math.Abs(m-mean)/mean > 0.02 {
			t.Errorf("sample mean %g, want %g", m, mean)
		}
		if math.Abs(v-mean*mean)/(mean*mean) > 0.05 {
			t.Errorf("sample var %g, want %g", v, mean*mean)
		}
	}
}

func TestExponentialPanicsOnBadMean(t *testing.T) {
	for _, mean := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewExponentialMean(%g) did not panic", mean)
				}
			}()
			NewExponentialMean(mean)
		}()
	}
}

func TestExponentialCDF(t *testing.T) {
	d := NewExponentialMean(2)
	if got := d.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %g, want 0", got)
	}
	// Median of exp(mean=2) is 2*ln2.
	median := 2 * math.Ln2
	if got := d.CDF(median); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(median) = %g, want 0.5", got)
	}
}

func TestHyperExp2Moments(t *testing.T) {
	h := HyperExp2{P1: 0.7, Rate1: 10, Rate2: 2}
	wantMean := 0.7/10 + 0.3/2
	if got := h.Mean(); math.Abs(got-wantMean) > 1e-12 {
		t.Errorf("Mean() = %g, want %g", got, wantMean)
	}
	m, v := sampleMoments(t, h, sampleN, 2)
	if math.Abs(m-wantMean)/wantMean > 0.02 {
		t.Errorf("sample mean %g, want %g", m, wantMean)
	}
	if math.Abs(v-h.Var())/h.Var() > 0.05 {
		t.Errorf("sample var %g, want %g", v, h.Var())
	}
}

func TestHyperExp2CDFMonotone(t *testing.T) {
	h := HyperExp2{P1: 0.6, Rate1: 50, Rate2: 5}
	prev := 0.0
	for x := 0.0; x < 2; x += 0.01 {
		c := h.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %g: %g < %g", x, c, prev)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of range at %g: %g", x, c)
		}
		prev = c
	}
	if got := h.CDF(1e9); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF(inf) = %g, want 1", got)
	}
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 42}
	rng := NewRNG(3)
	for i := 0; i < 10; i++ {
		if got := d.Sample(rng); got != 42 {
			t.Fatalf("Sample() = %g, want 42", got)
		}
	}
	if d.Mean() != 42 || d.Var() != 0 {
		t.Errorf("moments = (%g, %g), want (42, 0)", d.Mean(), d.Var())
	}
}

func TestUniformMoments(t *testing.T) {
	u := Uniform{Lo: 1, Hi: 5}
	m, v := sampleMoments(t, u, sampleN, 4)
	if math.Abs(m-3) > 0.02 {
		t.Errorf("sample mean %g, want 3", m)
	}
	wantVar := 16.0 / 12
	if math.Abs(v-wantVar)/wantVar > 0.05 {
		t.Errorf("sample var %g, want %g", v, wantVar)
	}
}

// Property: hyperexponential samples are always non-negative and the
// analytic mean matches p1/r1 + p2/r2 for arbitrary valid parameters.
func TestHyperExp2SampleNonNegativeQuick(t *testing.T) {
	f := func(p, r1, r2 uint16, seed int64) bool {
		h := HyperExp2{
			P1:    float64(p%1000) / 1000.0,
			Rate1: 0.01 + float64(r1%1000),
			Rate2: 0.01 + float64(r2%1000),
		}
		rng := NewRNG(seed)
		for i := 0; i < 50; i++ {
			if h.Sample(rng) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	a := root.Split()
	b := root.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("split streams coincide on %d of 1000 draws", same)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	rng := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if rng.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %g", frac)
	}
}
