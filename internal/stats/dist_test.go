package stats

import (
	"math"
	"testing"
	"testing/quick"
)

const sampleN = 200000

// sampleMoments draws n variates and returns their mean and variance.
func sampleMoments(t *testing.T, d Distribution, n int, seed int64) (mean, variance float64) {
	t.Helper()
	rng := NewRNG(seed)
	var w Welford
	for i := 0; i < n; i++ {
		x := d.Sample(rng)
		if x < 0 {
			t.Fatalf("negative sample %g from %#v", x, d)
		}
		w.Add(x)
	}
	return w.Mean(), w.Var()
}

func TestExponentialMoments(t *testing.T) {
	for _, mean := range []float64{0.001, 0.5, 3.0} {
		d := NewExponentialMean(mean)
		if got := d.Mean(); math.Abs(got-mean) > 1e-12 {
			t.Errorf("Mean() = %g, want %g", got, mean)
		}
		if got := d.Var(); math.Abs(got-mean*mean) > 1e-12 {
			t.Errorf("Var() = %g, want %g", got, mean*mean)
		}
		m, v := sampleMoments(t, d, sampleN, 1)
		if math.Abs(m-mean)/mean > 0.02 {
			t.Errorf("sample mean %g, want %g", m, mean)
		}
		if math.Abs(v-mean*mean)/(mean*mean) > 0.05 {
			t.Errorf("sample var %g, want %g", v, mean*mean)
		}
	}
}

func TestExponentialPanicsOnBadMean(t *testing.T) {
	for _, mean := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewExponentialMean(%g) did not panic", mean)
				}
			}()
			NewExponentialMean(mean)
		}()
	}
}

func TestExponentialCDF(t *testing.T) {
	d := NewExponentialMean(2)
	if got := d.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %g, want 0", got)
	}
	// Median of exp(mean=2) is 2*ln2.
	median := 2 * math.Ln2
	if got := d.CDF(median); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(median) = %g, want 0.5", got)
	}
}

func TestHyperExp2Moments(t *testing.T) {
	h := HyperExp2{P1: 0.7, Rate1: 10, Rate2: 2}
	wantMean := 0.7/10 + 0.3/2
	if got := h.Mean(); math.Abs(got-wantMean) > 1e-12 {
		t.Errorf("Mean() = %g, want %g", got, wantMean)
	}
	m, v := sampleMoments(t, h, sampleN, 2)
	if math.Abs(m-wantMean)/wantMean > 0.02 {
		t.Errorf("sample mean %g, want %g", m, wantMean)
	}
	if math.Abs(v-h.Var())/h.Var() > 0.05 {
		t.Errorf("sample var %g, want %g", v, h.Var())
	}
}

func TestHyperExp2CDFMonotone(t *testing.T) {
	h := HyperExp2{P1: 0.6, Rate1: 50, Rate2: 5}
	prev := 0.0
	for x := 0.0; x < 2; x += 0.01 {
		c := h.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %g: %g < %g", x, c, prev)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of range at %g: %g", x, c)
		}
		prev = c
	}
	if got := h.CDF(1e9); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF(inf) = %g, want 1", got)
	}
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 42}
	rng := NewRNG(3)
	for i := 0; i < 10; i++ {
		if got := d.Sample(rng); got != 42 {
			t.Fatalf("Sample() = %g, want 42", got)
		}
	}
	if d.Mean() != 42 || d.Var() != 0 {
		t.Errorf("moments = (%g, %g), want (42, 0)", d.Mean(), d.Var())
	}
}

func TestUniformMoments(t *testing.T) {
	u := Uniform{Lo: 1, Hi: 5}
	m, v := sampleMoments(t, u, sampleN, 4)
	if math.Abs(m-3) > 0.02 {
		t.Errorf("sample mean %g, want 3", m)
	}
	wantVar := 16.0 / 12
	if math.Abs(v-wantVar)/wantVar > 0.05 {
		t.Errorf("sample var %g, want %g", v, wantVar)
	}
}

// Property: hyperexponential samples are always non-negative and the
// analytic mean matches p1/r1 + p2/r2 for arbitrary valid parameters.
func TestHyperExp2SampleNonNegativeQuick(t *testing.T) {
	f := func(p, r1, r2 uint16, seed int64) bool {
		h := HyperExp2{
			P1:    float64(p%1000) / 1000.0,
			Rate1: 0.01 + float64(r1%1000),
			Rate2: 0.01 + float64(r2%1000),
		}
		rng := NewRNG(seed)
		for i := 0; i < 50; i++ {
			if h.Sample(rng) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	a := root.Split()
	b := root.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("split streams coincide on %d of 1000 draws", same)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	rng := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if rng.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %g", frac)
	}
}

func TestParetoSamplesAboveScale(t *testing.T) {
	p := Pareto{Scale: 200, Alpha: 1.5}
	rng := NewRNG(3)
	for i := 0; i < 10000; i++ {
		x := p.Sample(rng)
		if x < p.Scale || math.IsInf(x, 1) || math.IsNaN(x) {
			t.Fatalf("sample %g outside [scale, +inf)", x)
		}
	}
}

func TestParetoMoments(t *testing.T) {
	// alpha=1.5: mean = 1.5*200/0.5 = 600, variance infinite.
	p := Pareto{Scale: 200, Alpha: 1.5}
	if got := p.Mean(); math.Abs(got-600) > 1e-9 {
		t.Errorf("Mean() = %g, want 600", got)
	}
	if !math.IsInf(p.Var(), 1) {
		t.Errorf("Var() = %g, want +Inf for alpha <= 2", p.Var())
	}
	if !math.IsInf(Pareto{Scale: 1, Alpha: 1}.Mean(), 1) {
		t.Error("Mean() finite for alpha <= 1")
	}
	// alpha=3: both moments finite; check the sample mean converges.
	p3 := Pareto{Scale: 2, Alpha: 3}
	want := p3.Mean()
	m, _ := sampleMoments(t, p3, sampleN, 4)
	if math.Abs(m-want)/want > 0.02 {
		t.Errorf("sample mean %g, want %g", m, want)
	}
	// scale^2 * alpha / ((alpha-1)^2 (alpha-2)) = 4*3/(4*1) = 3.
	if v := p3.Var(); math.Abs(v-3) > 1e-9 {
		t.Errorf("Var() = %g, want 3", v)
	}
}

func TestParetoCDF(t *testing.T) {
	p := Pareto{Scale: 10, Alpha: 2}
	if got := p.CDF(5); got != 0 {
		t.Errorf("CDF below scale = %g, want 0", got)
	}
	// Median: 1 - (10/x)^2 = 0.5 at x = 10*sqrt(2).
	if got := p.CDF(10 * math.Sqrt2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(median) = %g, want 0.5", got)
	}
	// Empirical CDF agreement at one point.
	rng := NewRNG(5)
	hits := 0
	for i := 0; i < sampleN; i++ {
		if p.Sample(rng) <= 20 {
			hits++
		}
	}
	if got, want := float64(hits)/sampleN, p.CDF(20); math.Abs(got-want) > 0.01 {
		t.Errorf("empirical CDF(20) = %g, want %g", got, want)
	}
}

func TestLognormalMoments(t *testing.T) {
	l := NewLognormalMean(600, 1.5)
	if got := l.Mean(); math.Abs(got-600)/600 > 1e-12 {
		t.Errorf("Mean() = %g, want 600", got)
	}
	if l.Var() <= 0 || math.IsInf(l.Var(), 1) {
		t.Errorf("Var() = %g, want finite positive", l.Var())
	}
	// sigma=0 degenerates to a point mass at the mean.
	d := NewLognormalMean(42, 0)
	rng := NewRNG(6)
	if x := d.Sample(rng); math.Abs(x-42) > 1e-9 {
		t.Errorf("sigma=0 sample = %g, want 42", x)
	}
	// Sample-mean convergence at a modest sigma (1.5 converges too
	// slowly for a cheap test).
	l2 := NewLognormalMean(10, 0.5)
	m, _ := sampleMoments(t, l2, sampleN, 7)
	if math.Abs(m-10)/10 > 0.02 {
		t.Errorf("sample mean %g, want 10", m)
	}
}

func TestLognormalPanicsOnBadMean(t *testing.T) {
	for _, mean := range []float64{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLognormalMean(%g, 1) did not panic", mean)
				}
			}()
			NewLognormalMean(mean, 1)
		}()
	}
}

func TestClampedBounds(t *testing.T) {
	c := Clamped{Dist: Pareto{Scale: 200, Alpha: 1.1}, Lo: 300, Hi: 1000}
	rng := NewRNG(8)
	sawLo, sawHi := false, false
	for i := 0; i < 20000; i++ {
		x := c.Sample(rng)
		if x < c.Lo || x > c.Hi {
			t.Fatalf("sample %g outside [%g, %g]", x, c.Lo, c.Hi)
		}
		if x == c.Lo {
			sawLo = true
		}
		if x == c.Hi {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Errorf("clamp edges never hit (lo=%t, hi=%t)", sawLo, sawHi)
	}
	// Moments delegate to the underlying distribution.
	if c.Mean() != c.Dist.Mean() || !math.IsInf(c.Var(), 1) {
		t.Errorf("Mean/Var do not delegate: %g, %g", c.Mean(), c.Var())
	}
}
