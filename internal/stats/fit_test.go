package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitHyperExp2MatchesMoments(t *testing.T) {
	cases := []struct{ mean, variance float64 }{
		{0.01, 0.0002},  // c2 = 2
		{0.05, 0.005},   // c2 = 2
		{0.25, 0.09},    // Figure 3 run burst at 100% utilization
		{0.026, 0.0009}, // Figure 3 idle burst at low utilization
		{1, 1},          // c2 = 1: degenerates to exponential
		{3, 45},         // c2 = 5
	}
	for _, tc := range cases {
		h, err := FitHyperExp2(tc.mean, tc.variance)
		if err != nil {
			t.Fatalf("FitHyperExp2(%g, %g): %v", tc.mean, tc.variance, err)
		}
		if got := h.Mean(); math.Abs(got-tc.mean)/tc.mean > 1e-9 {
			t.Errorf("fit(%g, %g).Mean() = %g", tc.mean, tc.variance, got)
		}
		wantVar := tc.variance
		if wantVar < tc.mean*tc.mean {
			wantVar = tc.mean * tc.mean // clamped to exponential
		}
		if got := h.Var(); math.Abs(got-wantVar)/wantVar > 1e-9 {
			t.Errorf("fit(%g, %g).Var() = %g, want %g", tc.mean, tc.variance, got, wantVar)
		}
		if h.P1 < 0 || h.P1 > 1 {
			t.Errorf("fit(%g, %g).P1 = %g out of range", tc.mean, tc.variance, h.P1)
		}
		if h.Rate1 <= 0 || h.Rate2 <= 0 {
			t.Errorf("fit(%g, %g) has non-positive rate: %+v", tc.mean, tc.variance, h)
		}
	}
}

func TestFitHyperExp2ClampsLowCV(t *testing.T) {
	// Variance below mean^2 (CV < 1) is clamped to an exponential fit.
	h, err := FitHyperExp2(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Mean()-2) > 1e-9 {
		t.Errorf("Mean() = %g, want 2", h.Mean())
	}
	if math.Abs(h.SquaredCV()-1) > 1e-9 {
		t.Errorf("SquaredCV() = %g, want 1 (clamped)", h.SquaredCV())
	}
}

func TestFitHyperExp2Errors(t *testing.T) {
	if _, err := FitHyperExp2(0, 1); err == nil {
		t.Error("zero mean accepted")
	}
	if _, err := FitHyperExp2(-1, 1); err == nil {
		t.Error("negative mean accepted")
	}
	if _, err := FitHyperExp2(1, -1); err == nil {
		t.Error("negative variance accepted")
	}
}

func TestMustFitHyperExp2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFitHyperExp2 did not panic on bad input")
		}
	}()
	MustFitHyperExp2(-1, 1)
}

// Property: for any positive mean and CV^2 >= 1 the fit reproduces both
// moments to within floating-point tolerance.
func TestFitHyperExp2MomentsQuick(t *testing.T) {
	f := func(mRaw, cRaw uint32) bool {
		mean := 1e-4 + float64(mRaw%10000)/100.0 // (0, 100]
		c2 := 1 + float64(cRaw%900)/100.0        // [1, 10)
		variance := c2 * mean * mean
		h, err := FitHyperExp2(mean, variance)
		if err != nil {
			return false
		}
		return math.Abs(h.Mean()-mean)/mean < 1e-6 &&
			math.Abs(h.Var()-variance)/variance < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// The fitted distribution should reproduce the empirical CDF closely: this
// is the Figure 2 claim ("the curves almost exactly match").
func TestFitHyperExp2KSDistance(t *testing.T) {
	// A balanced-means truth (p1/r1 == p2/r2) is inside the family the
	// moment fit searches, so refitting from sample moments should recover
	// the distribution almost exactly — the Figure 2 "curves almost
	// exactly match" behaviour.
	truth := MustFitHyperExp2(0.05, 3*0.05*0.05) // mean 0.05, CV^2 = 3
	rng := NewRNG(5)
	xs := make([]float64, 20000)
	var w Welford
	for i := range xs {
		xs[i] = truth.Sample(rng)
		w.Add(xs[i])
	}
	fit, err := FitHyperExp2(w.Mean(), w.Var())
	if err != nil {
		t.Fatal(err)
	}
	e := NewECDF(xs)
	if ks := e.MaxAbsDiff(fit.CDF); ks > 0.03 {
		t.Errorf("KS distance between empirical CDF and moment fit = %g, want < 0.03", ks)
	}

	// For a truth outside the balanced subfamily the fit still matches both
	// moments, so the CDFs remain close even though not identical.
	skewed := HyperExp2{P1: 0.8, Rate1: 100, Rate2: 10}
	var w2 Welford
	xs2 := make([]float64, 20000)
	for i := range xs2 {
		xs2[i] = skewed.Sample(rng)
		w2.Add(xs2[i])
	}
	fit2, err := FitHyperExp2(w2.Mean(), w2.Var())
	if err != nil {
		t.Fatal(err)
	}
	if ks := NewECDF(xs2).MaxAbsDiff(fit2.CDF); ks > 0.15 {
		t.Errorf("KS distance for skewed truth = %g, want < 0.15", ks)
	}
}
