package stats

import (
	"fmt"
	"math"
)

// FitHyperExp2 fits a two-stage hyperexponential distribution to the given
// mean and variance using the balanced-means method-of-moments estimate the
// paper cites (Trivedi p. 479):
//
//	p1 = (1 + sqrt((c2-1)/(c2+1))) / 2
//	rate1 = 2*p1 / mean
//	rate2 = 2*(1-p1) / mean
//
// where c2 = variance/mean^2 is the squared coefficient of variation. The
// fit matches the first two moments exactly.
//
// The hyperexponential family requires c2 >= 1. Empirical buckets with
// c2 slightly below 1 (possible after interpolation) are clamped to an
// exponential fit (c2 = 1) rather than rejected, mirroring how a
// method-of-moments pipeline degrades gracefully on near-exponential data.
// FitHyperExp2 returns an error only for non-positive mean or negative
// variance.
func FitHyperExp2(mean, variance float64) (HyperExp2, error) {
	if mean <= 0 {
		return HyperExp2{}, fmt.Errorf("stats: hyperexponential fit needs positive mean, got %g", mean)
	}
	if variance < 0 {
		return HyperExp2{}, fmt.Errorf("stats: hyperexponential fit needs non-negative variance, got %g", variance)
	}
	c2 := variance / (mean * mean)
	if c2 < 1 {
		c2 = 1
	}
	p1 := (1 + math.Sqrt((c2-1)/(c2+1))) / 2
	return HyperExp2{
		P1:    p1,
		Rate1: 2 * p1 / mean,
		Rate2: 2 * (1 - p1) / mean,
	}, nil
}

// MustFitHyperExp2 is FitHyperExp2 but panics on error. It is intended for
// statically-known parameter tables.
func MustFitHyperExp2(mean, variance float64) HyperExp2 {
	h, err := FitHyperExp2(mean, variance)
	if err != nil {
		panic(err)
	}
	return h
}
