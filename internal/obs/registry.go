// Package obs is the repository's zero-dependency observability layer:
// typed counters, gauges and log-2 histograms in a Registry, a structured
// JSONL event sink, and the nil-safe Recorder the simulators and the
// runtime emit into.
//
// Two rules keep the layer compatible with the repository's determinism
// contract (DESIGN.md §8, §11):
//
//  1. Side channel only. Metrics and events are outputs, never inputs: no
//     simulator or scheduler reads a metric to make a decision, so enabling
//     observability can never change a result. The one sanctioned reader is
//     the -timing view, which is explicitly machine-dependent.
//  2. Order independence. Counters are sums and histogram buckets are
//     integer tallies, so the exported values are identical for every
//     worker count; histogram bucket EDGES are fixed powers of two rather
//     than data-derived quantiles, so the bucket layout is byte-stable too.
//     (A floating-point running sum would depend on accumulation order
//     under a parallel sweep, which is why histograms export count/min/max
//     and buckets but no sum.)
//
// Every handle type is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Recorder or *EventSink are no-ops, so an uninstrumented run
// pays exactly one nil-check branch per site. Metric names must come from
// the catalog in names.go — Registry panics on an unknown base name, which
// is what keeps OBSERVABILITY.md complete (see names_test.go).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-increasing integer metric. Safe for
// concurrent use; all methods are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative deltas are ignored: counters
// only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float metric. NaN inputs are rejected (the
// gauge keeps its previous value): a NaN gauge would poison the JSON
// export, and every NaN in this codebase is a bug upstream, not a value.
// Safe for concurrent use; no-op on a nil receiver.
type Gauge struct {
	set  atomic.Bool
	bits atomic.Uint64
}

// Set stores v. NaN is rejected.
func (g *Gauge) Set(v float64) {
	if g == nil || math.IsNaN(v) {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the gauge value and whether it has ever been set.
func (g *Gauge) Value() (float64, bool) {
	if g == nil || !g.set.Load() {
		return 0, false
	}
	return math.Float64frombits(g.bits.Load()), true
}

// Histogram bucket layout: log-2 buckets with fixed edges. Bucket i covers
// values in [2^(histMinExp+i-1), 2^(histMinExp+i)); values below the first
// edge clamp into bucket 0, values at or above 2^histMaxExp land in the
// overflow bucket. With values in seconds the range spans ~1 ns to ~500
// years, so no simulated or wall-clock quantity in this repository can
// fall outside it in normal operation.
const (
	histMinExp = -30 // first bucket upper edge: 2^-30 s ≈ 0.93 ns
	histMaxExp = 34  // last regular upper edge: 2^34 s ≈ 544 years
	numBuckets = histMaxExp - histMinExp + 1
)

// Histogram is a fixed-edge log-2 histogram of non-negative float64
// observations. Zero observations are tallied separately (zero has no
// logarithm); negative, NaN and ±Inf observations are rejected and
// counted. Safe for concurrent use; no-op on a nil receiver.
//
// The exported form carries count, zeros, rejected, min, max and the
// non-empty buckets — deliberately no sum, because a float sum accumulated
// by parallel workers is not byte-stable across worker counts.
type Histogram struct {
	buckets  [numBuckets]atomic.Int64
	overflow atomic.Int64
	zeros    atomic.Int64
	rejected atomic.Int64
	count    atomic.Int64 // finite, non-negative observations (incl. zeros)

	minBits atomic.Uint64 // float64 bits; valid once count > 0
	maxBits atomic.Uint64
	initMu  sync.Mutex // serializes first-observation min/max init
	init    atomic.Bool
}

// bucketIndex returns the regular-bucket index for v > 0, or numBuckets
// for the overflow bucket. The upper edge of bucket i is 2^(histMinExp+i).
func bucketIndex(v float64) int {
	_, exp := math.Frexp(v) // v = f * 2^exp, f in [0.5, 1): v in [2^(exp-1), 2^exp)
	switch {
	case exp <= histMinExp:
		return 0
	case exp > histMaxExp:
		return numBuckets
	default:
		return exp - histMinExp
	}
}

// BucketUpperEdge returns the fixed upper edge of regular bucket i.
func BucketUpperEdge(i int) float64 {
	return math.Ldexp(1, histMinExp+i)
}

// Observe records one value. Zero goes to the zero tally; negative, NaN
// and ±Inf values are rejected.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		h.rejected.Add(1)
		return
	}
	h.count.Add(1)
	h.updateBounds(v)
	if v == 0 {
		h.zeros.Add(1)
		return
	}
	if i := bucketIndex(v); i == numBuckets {
		h.overflow.Add(1)
	} else {
		h.buckets[i].Add(1)
	}
}

// updateBounds folds v into the min/max with CAS loops.
func (h *Histogram) updateBounds(v float64) {
	if !h.init.Load() {
		h.initMu.Lock()
		if !h.init.Load() {
			h.minBits.Store(math.Float64bits(v))
			h.maxBits.Store(math.Float64bits(v))
			h.init.Store(true)
			h.initMu.Unlock()
			return
		}
		h.initMu.Unlock()
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of accepted observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Rejected returns the number of rejected (negative/NaN/Inf) observations.
func (h *Histogram) Rejected() int64 {
	if h == nil {
		return 0
	}
	return h.rejected.Load()
}

// snapshotBucket is one non-empty bucket of an exported histogram. Pow2
// identifies the bucket by its upper edge: the bucket covers
// [2^(Pow2-1), 2^Pow2). Exporting the exponent rather than the edge keeps
// the JSON free of awkward floats (2^-30 and +Inf).
type snapshotBucket struct {
	Pow2  int   `json:"pow2"`
	Count int64 `json:"count"`
}

// histSnapshot is the exported form of one histogram.
type histSnapshot struct {
	Count    int64            `json:"count"`
	Zeros    int64            `json:"zeros"`
	Rejected int64            `json:"rejected"`
	Min      float64          `json:"min"`
	Max      float64          `json:"max"`
	Overflow int64            `json:"overflow"`
	Buckets  []snapshotBucket `json:"buckets"`
}

// snapshot captures the histogram for export.
func (h *Histogram) snapshot() histSnapshot {
	s := histSnapshot{
		Count:    h.count.Load(),
		Zeros:    h.zeros.Load(),
		Rejected: h.rejected.Load(),
		Overflow: h.overflow.Load(),
		Buckets:  []snapshotBucket{},
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	for i := 0; i < numBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, snapshotBucket{Pow2: histMinExp + i, Count: n})
		}
	}
	return s
}

// Registry holds the metrics of one run, keyed by full (possibly labeled)
// name. Get-or-create methods are safe for concurrent use and panic on a
// base name missing from the catalog (names.go): an undocumented metric is
// a build bug, caught by the first test that touches the code path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// checkName panics unless name's base (labels stripped) is a catalogued
// metric of the given kind.
func checkName(name string, kind MetricKind) {
	base := BaseName(name)
	def, ok := catalogByName[base]
	if !ok {
		panic(fmt.Sprintf("obs: unknown metric %q — add it to names.go and OBSERVABILITY.md", base))
	}
	if def.Kind != kind {
		panic(fmt.Sprintf("obs: metric %q is a %s, not a %s", base, def.Kind, kind))
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil registry returns a nil handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	checkName(name, KindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	checkName(name, KindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	checkName(name, KindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterValues returns every counter as a name→value map (a stable-order
// export is WriteJSON; this accessor serves report generators and tests).
func (r *Registry) CounterValues() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// Labeled builds a labeled metric name: Labeled("cluster.migrations",
// "policy", "LL") == "cluster.migrations{policy=LL}". Label pairs are
// rendered in the order given; callers use a fixed order so names are
// stable. Panics on an odd number of label arguments (a build bug).
func Labeled(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: Labeled(%q) with odd label list %q", base, kv))
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// BaseName strips the {label=value,...} suffix from a metric name.
func BaseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}
