package obs

// Recorder is the narrow handle the instrumented layers (sim engine, node
// scheduler, cluster policies, BSP simulator, §7 runtime, checkpoint
// store, exp runner) accept. It bundles a metric registry with an
// optional event sink; either half may be absent.
//
// The zero value of the *pointer* is the off switch: every method on a
// nil *Recorder (and on the nil handles it returns) is a no-op, so code
// is instrumented unconditionally and pays one predictable branch per
// site when observability is disabled. Hot loops pre-resolve their
// handles once (r.Counter(...) at setup), so the per-event cost is a
// single nil-check inside Counter.Inc.
type Recorder struct {
	reg  *Registry
	sink *EventSink
}

// New builds a Recorder over a registry and an optional event sink.
// Either argument may be nil; New(nil, nil) returns nil (fully off).
func New(reg *Registry, sink *EventSink) *Recorder {
	if reg == nil && sink == nil {
		return nil
	}
	return &Recorder{reg: reg, sink: sink}
}

// Counter resolves a counter handle (nil when metrics are off).
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.reg.Counter(name)
}

// Gauge resolves a gauge handle (nil when metrics are off).
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.reg.Gauge(name)
}

// Histogram resolves a histogram handle (nil when metrics are off).
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.reg.Histogram(name)
}

// Tracing reports whether an event sink is attached, so call sites can
// skip assembling Event structs entirely when no one is listening.
func (r *Recorder) Tracing() bool {
	return r != nil && r.sink != nil
}

// Emit writes one trace event (no-op without a sink).
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.sink.Emit(e)
}

// Registry exposes the underlying registry (nil when metrics are off);
// report generators use it to render metric tables.
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}
