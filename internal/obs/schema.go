package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// ValidateMetricsJSON checks that data is a well-formed metrics dump:
// the right schema version, the three sections with the right value
// shapes, every metric name's base in the catalog and of the right kind,
// and internally consistent histograms (bucket tallies + zeros + overflow
// sum to count, exponents within the fixed edge range, no NaN bounds).
// It is the pure-stdlib schema checker CI runs over a -quick -metrics
// dump (cmd/obscheck); it returns the first violation found.
func ValidateMetricsJSON(data []byte) error {
	var f struct {
		SchemaVersion *int                     `json:"schema_version"`
		Counters      map[string]*int64        `json:"counters"`
		Gauges        map[string]*float64      `json:"gauges"`
		Histograms    map[string]*histSnapshot `json:"histograms"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("metrics schema: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("metrics schema: trailing data after metrics object")
	}
	if f.SchemaVersion == nil {
		return fmt.Errorf("metrics schema: missing schema_version")
	}
	if *f.SchemaVersion != SchemaVersion {
		return fmt.Errorf("metrics schema: schema_version %d, want %d", *f.SchemaVersion, SchemaVersion)
	}
	if f.Counters == nil || f.Gauges == nil || f.Histograms == nil {
		return fmt.Errorf("metrics schema: counters, gauges and histograms sections are all required")
	}
	for name, v := range f.Counters {
		if err := checkCatalogued(name, KindCounter); err != nil {
			return err
		}
		if v == nil || *v < 0 {
			return fmt.Errorf("metrics schema: counter %q must be a non-negative integer", name)
		}
	}
	for name, v := range f.Gauges {
		if err := checkCatalogued(name, KindGauge); err != nil {
			return err
		}
		if v == nil || math.IsNaN(*v) || math.IsInf(*v, 0) {
			return fmt.Errorf("metrics schema: gauge %q must be a finite number", name)
		}
	}
	for name, h := range f.Histograms {
		if err := checkCatalogued(name, KindHistogram); err != nil {
			return err
		}
		if h == nil {
			return fmt.Errorf("metrics schema: histogram %q must be an object", name)
		}
		if err := checkHistogram(name, h); err != nil {
			return err
		}
	}
	return nil
}

// checkCatalogued verifies the metric's base name is a catalogued metric
// of the expected kind.
func checkCatalogued(name string, kind MetricKind) error {
	base := BaseName(name)
	def, ok := catalogByName[base]
	if !ok {
		return fmt.Errorf("metrics schema: %q is not a catalogued metric", base)
	}
	if def.Kind != kind {
		return fmt.Errorf("metrics schema: %q is a %s, found in the %s section", base, def.Kind, kind)
	}
	return nil
}

// checkHistogram verifies one histogram snapshot's internal consistency.
func checkHistogram(name string, h *histSnapshot) error {
	if h.Count < 0 || h.Zeros < 0 || h.Rejected < 0 || h.Overflow < 0 {
		return fmt.Errorf("metrics schema: histogram %q has a negative tally", name)
	}
	if math.IsNaN(h.Min) || math.IsNaN(h.Max) || h.Min > h.Max {
		return fmt.Errorf("metrics schema: histogram %q has invalid bounds min=%v max=%v", name, h.Min, h.Max)
	}
	var inBuckets int64
	for _, b := range h.Buckets {
		if b.Count <= 0 {
			return fmt.Errorf("metrics schema: histogram %q exports empty bucket pow2=%d", name, b.Pow2)
		}
		if b.Pow2 < histMinExp || b.Pow2 > histMaxExp {
			return fmt.Errorf("metrics schema: histogram %q bucket pow2=%d outside the fixed edges [%d,%d]",
				name, b.Pow2, histMinExp, histMaxExp)
		}
		inBuckets += b.Count
	}
	if inBuckets+h.Zeros+h.Overflow != h.Count {
		return fmt.Errorf("metrics schema: histogram %q tallies don't sum: buckets %d + zeros %d + overflow %d != count %d",
			name, inBuckets, h.Zeros, h.Overflow, h.Count)
	}
	return nil
}
