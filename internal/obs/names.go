package obs

// MetricKind distinguishes the three metric types in the catalog.
type MetricKind string

const (
	KindCounter   MetricKind = "counter"   // monotonically increasing count
	KindGauge     MetricKind = "gauge"     // last-write-wins value
	KindHistogram MetricKind = "histogram" // value distribution
)

// Def describes one catalogued metric. Help is the one-line meaning that
// OBSERVABILITY.md must reproduce (names_test.go cross-references the two).
type Def struct {
	Name string
	Kind MetricKind
	Help string
}

// Metric base names. Labeled variants (e.g. "cluster.migrations{policy=LL}")
// share the base name's catalog entry.
const (
	// Discrete-event engine (internal/sim).
	SimEventsFired = "sim.events.fired" // counter
	SimRunSeconds  = "sim.run_seconds"  // histogram

	// Node scheduler (internal/node).
	NodePreemptions = "node.preemptions" // counter

	// Cluster policies (internal/cluster); labeled {policy=LL|LF|IE|PM}.
	ClusterCompletions = "cluster.completions" // counter
	ClusterMigrations  = "cluster.migrations"  // counter
	ClusterEvictions   = "cluster.evictions"   // counter
	ClusterLingers     = "cluster.lingers"     // counter
	ClusterPlacements  = "cluster.placements"  // counter

	// BSP parallel-job simulator (internal/parallel).
	BSPPhases = "bsp.phases" // counter

	// §7 coordinator/agent runtime (internal/runtime).
	RPCAttempts      = "runtime.rpc.attempts"       // counter
	RPCRetries       = "runtime.rpc.retries"        // counter
	RPCTimeouts      = "runtime.rpc.timeouts"       // counter
	RPCCorruptFrames = "runtime.rpc.corrupt_frames" // counter
	RPCDedupHits     = "runtime.rpc.dedup_hits"     // counter
	AgentsSuspected  = "runtime.agents.suspected"   // counter
	AgentsDead       = "runtime.agents.dead"        // counter
	JobsRecovered    = "runtime.jobs.recovered"     // counter
	DuplicatesReaped = "runtime.duplicates.reaped"  // counter

	// Checkpoint store (internal/checkpoint).
	CheckpointSaves          = "checkpoint.saves"           // counter
	CheckpointRestores       = "checkpoint.restores"        // counter
	CheckpointSaveSeconds    = "checkpoint.save_seconds"    // histogram
	CheckpointRestoreSeconds = "checkpoint.restore_seconds" // histogram

	// Experiment runner (internal/exp); figure gauges labeled {figure=...}.
	ExpPointsComputed = "exp.points.computed" // counter
	ExpPointsRestored = "exp.points.restored" // counter
	ExpPointsRetried  = "exp.points.retried"  // counter
	ExpPointSeconds   = "exp.point_seconds"   // histogram
	ExpFigureSeconds  = "exp.figure_seconds"  // gauge

	// HTTP scheduling service (internal/serve); request metrics labeled
	// {endpoint=cluster|node|decide}.
	ServeRequests       = "serve.requests"        // counter
	ServeBadRequests    = "serve.bad_requests"    // counter
	ServeShed           = "serve.shed"            // counter
	ServeCacheHits      = "serve.cache.hits"      // counter
	ServeCacheMisses    = "serve.cache.misses"    // counter
	ServeCacheEvictions = "serve.cache.evictions" // counter
	ServeDedupWaits     = "serve.dedup.waits"     // counter
	ServeQueueDepth     = "serve.queue.depth"     // gauge
	ServeRequestSeconds = "serve.request_seconds" // histogram

	// Consistent-hash replica ring (llserve cluster mode; the ring
	// arithmetic lives in internal/ring, the counters in internal/serve).
	RingEpoch       = "ring.epoch"        // gauge
	RingMembersLive = "ring.members.live" // gauge
	RingFailovers   = "ring.failovers"    // counter
	RingRejoins     = "ring.rejoins"      // counter

	// Cross-replica request proxying (internal/serve cluster mode).
	ServeProxySent      = "serve.proxy.sent"      // counter
	ServeProxyServed    = "serve.proxy.served"    // counter
	ServeProxyErrors    = "serve.proxy.errors"    // counter
	ServeProxyFallbacks = "serve.proxy.fallbacks" // counter
	ServeProxyRejects   = "serve.proxy.rejects"   // counter

	// Distributed sweep fabric (internal/fabric).
	FabricPointsDispatched  = "fabric.points.dispatched"  // counter
	FabricPointsCompleted   = "fabric.points.completed"   // counter
	FabricPointsRestored    = "fabric.points.restored"    // counter
	FabricPointsRequeued    = "fabric.points.requeued"    // counter
	FabricAgentsSuspected   = "fabric.agents.suspected"   // counter
	FabricAgentsDead        = "fabric.agents.dead"        // counter
	FabricAgentsResurrected = "fabric.agents.resurrected" // counter

	// Declarative scenario layer (internal/scenario).
	ScenarioPointsExpanded = "scenario.points.expanded" // counter
	ScenarioRuns           = "scenario.runs"            // counter
	ScenarioTournaments    = "scenario.tournaments"     // counter

	// Whole-process (set once by the CLI layer at exit).
	RunWallSeconds = "run.wall_seconds" // gauge
)

// Catalog is the complete list of metrics this repository can emit.
// Registry methods panic on any base name not listed here, and
// names_test.go asserts every entry appears in OBSERVABILITY.md — together
// those two checks make "every metric emitted by the code is documented"
// a build-time property rather than a review convention.
var Catalog = []Def{
	{SimEventsFired, KindCounter, "events dispatched by the discrete-event engine (Engine.Step firings)"},
	{SimRunSeconds, KindHistogram, "final simulated time of each simulation run, seconds of sim time"},
	{NodePreemptions, KindCounter, "foreign-job preemptions by a returning local burst (context-switch charges, §3)"},
	{ClusterCompletions, KindCounter, "foreign jobs completed, per policy"},
	{ClusterMigrations, KindCounter, "job migrations started, per policy (Tmigr charges, §2)"},
	{ClusterEvictions, KindCounter, "jobs evicted back to the queue by an owner's return, per policy"},
	{ClusterLingers, KindCounter, "linger decisions (job stays through an owner burst), per policy"},
	{ClusterPlacements, KindCounter, "queued jobs placed onto a node, per policy"},
	{BSPPhases, KindCounter, "BSP compute/communicate phases completed across all parallel jobs"},
	{RPCAttempts, KindCounter, "RPC attempts issued by the coordinator (first tries and retries)"},
	{RPCRetries, KindCounter, "RPC retries after a transport error"},
	{RPCTimeouts, KindCounter, "RPC attempts that timed out"},
	{RPCCorruptFrames, KindCounter, "RPC replies rejected as corrupt frames"},
	{RPCDedupHits, KindCounter, "duplicate RPCs suppressed by agent sequence-number dedup (at-most-once)"},
	{AgentsSuspected, KindCounter, "agent health transitions into the suspect state"},
	{AgentsDead, KindCounter, "agent health transitions into the dead state"},
	{JobsRecovered, KindCounter, "jobs recovered from dead agents and requeued"},
	{DuplicatesReaped, KindCounter, "stale duplicate jobs reaped when an agent resurrected"},
	{CheckpointSaves, KindCounter, "checkpoint snapshots written"},
	{CheckpointRestores, KindCounter, "checkpoint snapshots read back"},
	{CheckpointSaveSeconds, KindHistogram, "wall-clock latency of each checkpoint write, seconds"},
	{CheckpointRestoreSeconds, KindHistogram, "wall-clock latency of each checkpoint read, seconds"},
	{ExpPointsComputed, KindCounter, "sweep points computed fresh by the experiment runner"},
	{ExpPointsRestored, KindCounter, "sweep points restored from a checkpoint instead of recomputed"},
	{ExpPointsRetried, KindCounter, "sweep point attempts retried after a transient failure"},
	{ExpPointSeconds, KindHistogram, "wall-clock per sweep point, seconds"},
	{ExpFigureSeconds, KindGauge, "wall-clock of one figure/table step, seconds, labeled {figure=...}; -timing reads these back"},
	{ServeRequests, KindCounter, "HTTP simulation requests accepted for processing, per endpoint"},
	{ServeBadRequests, KindCounter, "HTTP requests rejected with 400 (malformed JSON, out-of-range params, oversized bodies)"},
	{ServeShed, KindCounter, "HTTP requests shed with 429 because the admission queue was full"},
	{ServeCacheHits, KindCounter, "simulation requests answered from the content-addressed result cache"},
	{ServeCacheMisses, KindCounter, "simulation requests that had to compute a fresh result"},
	{ServeCacheEvictions, KindCounter, "cached results evicted by the LRU policy at capacity"},
	{ServeDedupWaits, KindCounter, "requests coalesced onto an identical in-flight computation (singleflight dedup)"},
	{ServeQueueDepth, KindGauge, "admission tickets currently held (requests queued or executing)"},
	{ServeRequestSeconds, KindHistogram, "wall-clock HTTP request latency, seconds, per endpoint"},
	{RingEpoch, KindGauge, "current ring epoch: the replica's version of the live set, raised on every liveness transition and by adoption from peers"},
	{RingMembersLive, KindGauge, "replicas this process currently routes to (live ring members, including itself)"},
	{RingFailovers, KindCounter, "replicas removed from the routing ring after being declared dead (their key ranges fail over to ring successors)"},
	{RingRejoins, KindCounter, "dead replicas re-admitted to the routing ring by a successful probe"},
	{ServeProxySent, KindCounter, "requests forwarded to the key's owning replica (one hop, never chained)"},
	{ServeProxyServed, KindCounter, "proxied requests accepted from a peer replica and answered locally"},
	{ServeProxyErrors, KindCounter, "proxy attempts that failed (transport error, timeout, or non-200 peer answer)"},
	{ServeProxyFallbacks, KindCounter, "requests computed locally after proxying to the owner failed or was skipped (owner unhealthy)"},
	{ServeProxyRejects, KindCounter, "incoming proxied requests rejected with 421 (ring digest mismatch or stale ring epoch)"},
	{FabricPointsDispatched, KindCounter, "sweep points handed to a fabric slot worker (first dispatches and re-dispatches)"},
	{FabricPointsCompleted, KindCounter, "unique sweep points completed by fabric agents"},
	{FabricPointsRestored, KindCounter, "sweep points restored from the checkpoint store instead of dispatched"},
	{FabricPointsRequeued, KindCounter, "dispatches returned to the fabric queue after a transient transport failure"},
	{FabricAgentsSuspected, KindCounter, "fabric agent health transitions into the suspect state"},
	{FabricAgentsDead, KindCounter, "fabric agent health transitions into the dead state"},
	{FabricAgentsResurrected, KindCounter, "dead fabric agents brought back into rotation by a successful probe"},
	{ScenarioPointsExpanded, KindCounter, "sweep points produced by scenario-spec expansion"},
	{ScenarioRuns, KindCounter, "scenario points computed by the in-process scenario runner"},
	{ScenarioTournaments, KindCounter, "policy-tournament reports assembled"},
	{RunWallSeconds, KindGauge, "total wall-clock of the whole command run, seconds"},
}

// catalogByName indexes Catalog for the Registry's name check.
var catalogByName = func() map[string]Def {
	m := make(map[string]Def, len(Catalog))
	for _, d := range Catalog {
		if _, dup := m[d.Name]; dup {
			panic("obs: duplicate catalog entry " + d.Name)
		}
		m[d.Name] = d
	}
	return m
}()
