package obs

import (
	"io"
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(SimEventsFired)
	c.Inc()
	c.Add(4)
	c.Add(0)  // ignored: counters only go up
	c.Add(-7) // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	if again := r.Counter(SimEventsFired); again != c {
		t.Fatalf("get-or-create returned a different handle")
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	// Every method on every nil handle must be callable: this is the
	// disabled fast path the instrumented packages rely on.
	var reg *Registry
	c := reg.Counter(SimEventsFired)
	g := reg.Gauge(RunWallSeconds)
	h := reg.Histogram(SimRunSeconds)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatalf("nil counter value != 0")
	}
	g.Set(1.5)
	if _, ok := g.Value(); ok {
		t.Fatalf("nil gauge reports a value")
	}
	h.Observe(1)
	if h.Count() != 0 || h.Rejected() != 0 {
		t.Fatalf("nil histogram recorded something")
	}
	if reg.CounterValues() != nil || reg.CounterNames() != nil {
		t.Fatalf("nil registry exports non-nil maps")
	}
	if err := reg.WriteJSON(io.Discard); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}
}

func TestGaugeRejectsNaN(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge(RunWallSeconds)
	if _, ok := g.Value(); ok {
		t.Fatalf("unset gauge reports a value")
	}
	g.Set(math.NaN())
	if _, ok := g.Value(); ok {
		t.Fatalf("NaN set the gauge")
	}
	g.Set(2.5)
	g.Set(math.NaN()) // rejected: keeps the previous value
	if v, ok := g.Value(); !ok || v != 2.5 {
		t.Fatalf("gauge = (%v, %v), want (2.5, true)", v, ok)
	}
	g.Set(math.Inf(1)) // Inf is a legal (if suspicious) gauge value
	if v, ok := g.Value(); !ok || !math.IsInf(v, 1) {
		t.Fatalf("gauge = (%v, %v), want (+Inf, true)", v, ok)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(SimRunSeconds)

	h.Observe(0) // zero has no logarithm; tallied separately
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(-1e-9)
	h.Observe(float64(math.MaxUint64)) // ~1.8e19 s: beyond 2^34, overflow
	h.Observe(1e-12)                   // below 2^-30: clamps into bucket 0
	h.Observe(1.5)

	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4 (zero, max-uint64, tiny, 1.5)", got)
	}
	if got := h.Rejected(); got != 4 {
		t.Fatalf("rejected = %d, want 4 (NaN, +Inf, -Inf, negative)", got)
	}
	s := h.snapshot()
	if s.Zeros != 1 {
		t.Fatalf("zeros = %d, want 1", s.Zeros)
	}
	if s.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1", s.Overflow)
	}
	if s.Min != 0 || s.Max != float64(math.MaxUint64) {
		t.Fatalf("min/max = %g/%g, want 0/%g", s.Min, s.Max, float64(math.MaxUint64))
	}
	var inBuckets int64
	for _, b := range s.Buckets {
		inBuckets += b.Count
	}
	if inBuckets+s.Zeros+s.Overflow != s.Count {
		t.Fatalf("bucket sum %d + zeros %d + overflow %d != count %d",
			inBuckets, s.Zeros, s.Overflow, s.Count)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	// Bucket i covers [2^(histMinExp+i-1), 2^(histMinExp+i)): an exact
	// power of two is the INCLUSIVE lower edge of its bucket.
	cases := []struct {
		v    float64
		want int
	}{
		{1.0, 1 - histMinExp},   // [1, 2)
		{1.999, 1 - histMinExp}, // still [1, 2)
		{2.0, 2 - histMinExp},   // [2, 4)
		{0.5, -histMinExp},      // [0.5, 1)
		{math.Ldexp(1, -30), 1}, // exactly the first regular edge
		{math.Ldexp(1, -31), 0}, // below it: clamps to bucket 0
		{math.Ldexp(1, 33), 64}, // [2^33, 2^34): last regular bucket
		{math.Ldexp(1, 34), 65}, // = 2^34: overflow (numBuckets = 65)
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	if e := BucketUpperEdge(1 - histMinExp); e != 2 {
		t.Errorf("BucketUpperEdge(bucket of 1.0) = %g, want 2", e)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	// Integer tallies make the export exact regardless of interleaving:
	// G goroutines each observing the same N values must produce G*N
	// observations with stable min/max.
	r := NewRegistry()
	h := r.Histogram(SimRunSeconds)
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%97) / 7)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	s := h.snapshot()
	if s.Min != 0 || s.Max != 96.0/7 {
		t.Fatalf("min/max = %g/%g, want 0/%g", s.Min, s.Max, 96.0/7)
	}
}

func TestCounterConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(SimEventsFired)
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
}

func TestRegistryPanicsOnUnknownName(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, "unknown metric", func() { r.Counter("no.such.metric") })
	// Kind mismatch is a build bug too.
	mustPanic(t, "kind mismatch", func() { r.Gauge(SimEventsFired) })
	mustPanic(t, "kind mismatch hist", func() { r.Histogram(NodePreemptions) })
	// Labels don't evade the catalog: the BASE name is checked.
	mustPanic(t, "labeled unknown", func() { r.Counter(Labeled("bogus.name", "k", "v")) })
}

func TestLabeled(t *testing.T) {
	if got := Labeled(ClusterMigrations, "policy", "LL"); got != "cluster.migrations{policy=LL}" {
		t.Fatalf("Labeled = %q", got)
	}
	if got := Labeled(ClusterMigrations); got != ClusterMigrations {
		t.Fatalf("Labeled with no pairs = %q", got)
	}
	if got := BaseName("cluster.migrations{policy=LL}"); got != ClusterMigrations {
		t.Fatalf("BaseName = %q", got)
	}
	if got := BaseName(ClusterMigrations); got != ClusterMigrations {
		t.Fatalf("BaseName of unlabeled = %q", got)
	}
	mustPanic(t, "odd labels", func() { Labeled(ClusterMigrations, "policy") })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected a panic", name)
		}
	}()
	f()
}
