package obs

import (
	"os"
	"strings"
	"testing"
)

// TestCatalogDocumented enforces the documentation contract: every metric
// in the Catalog must appear in OBSERVABILITY.md — by exact name AND with
// its help text reproduced verbatim — so the doc can never silently drift
// from the code. Adding a metric without documenting it fails this test.
func TestCatalogDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("OBSERVABILITY.md must exist at the repo root: %v", err)
	}
	text := string(doc)
	for _, d := range Catalog {
		if !strings.Contains(text, "`"+d.Name+"`") {
			t.Errorf("metric %q is not documented in OBSERVABILITY.md", d.Name)
		}
		if !strings.Contains(text, d.Help) {
			t.Errorf("metric %q: help text not reproduced verbatim in OBSERVABILITY.md:\n  %q",
				d.Name, d.Help)
		}
	}
}

// TestCatalogHygiene pins basic invariants of the catalog itself.
func TestCatalogHygiene(t *testing.T) {
	for _, d := range Catalog {
		if d.Name == "" || d.Help == "" {
			t.Errorf("catalog entry %+v has an empty name or help", d)
		}
		if strings.ContainsAny(d.Name, "{} \t\n") {
			t.Errorf("base name %q contains label syntax or whitespace", d.Name)
		}
		switch d.Kind {
		case KindCounter, KindGauge, KindHistogram:
		default:
			t.Errorf("metric %q has unknown kind %q", d.Name, d.Kind)
		}
	}
	if len(catalogByName) != len(Catalog) {
		t.Errorf("catalog index has %d entries for %d defs (duplicate names?)",
			len(catalogByName), len(Catalog))
	}
}
