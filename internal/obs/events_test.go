package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestEventSinkWritesJSONL(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf)
	s.Emit(Event{Time: 1.5, Kind: "migrate", Policy: "LL", Node: 3, Job: 7})
	s.Emit(Event{Time: 2, Kind: "agent-dead", Agent: "beta"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Emitted(); got != 2 {
		t.Fatalf("Emitted = %d, want 2", got)
	}

	sc := bufio.NewScanner(&buf)
	var lines []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0].Kind != "migrate" || lines[0].Node != 3 || lines[0].Job != 7 {
		t.Fatalf("first event round-tripped as %+v", lines[0])
	}
	if lines[1].Agent != "beta" {
		t.Fatalf("second event round-tripped as %+v", lines[1])
	}
}

func TestEventOmitsEmptyFields(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf)
	s.Emit(Event{Time: 3, Kind: "complete"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	for _, field := range []string{"policy", "node", "job", "agent", "detail"} {
		if strings.Contains(line, field) {
			t.Errorf("zero-valued field %q serialized: %s", field, line)
		}
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.left {
		n := w.left
		w.left = 0
		return n, errors.New("disk full")
	}
	w.left -= len(p)
	return len(p), nil
}

func TestEventSinkStickyError(t *testing.T) {
	s := NewEventSink(&failWriter{left: 10})
	// The bufio layer absorbs writes until a flush; force small-buffer
	// behavior by emitting until the error surfaces at Close.
	for i := 0; i < 10000; i++ {
		s.Emit(Event{Time: float64(i), Kind: "evict"})
	}
	if err := s.Close(); err == nil {
		t.Fatalf("Close returned nil after underlying write failure")
	}
	if got := s.Emitted(); got >= 10000 {
		t.Fatalf("all %d emits reported success despite the failure", got)
	}
}

func TestNilSink(t *testing.T) {
	var s *EventSink
	s.Emit(Event{Kind: "x"})
	if s.Emitted() != 0 {
		t.Fatal("nil sink emitted")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil sink Close: %v", err)
	}
}

func TestRecorderNilSafety(t *testing.T) {
	if New(nil, nil) != nil {
		t.Fatalf("New(nil, nil) should be the nil (off) recorder")
	}
	var r *Recorder
	if r.Counter(SimEventsFired) != nil || r.Gauge(RunWallSeconds) != nil || r.Histogram(SimRunSeconds) != nil {
		t.Fatalf("nil recorder handed out non-nil handles")
	}
	if r.Tracing() {
		t.Fatalf("nil recorder claims to trace")
	}
	r.Emit(Event{Kind: "x"}) // must not panic
	if r.Registry() != nil {
		t.Fatalf("nil recorder has a registry")
	}
}

func TestRecorderHalves(t *testing.T) {
	// Metrics without tracing: handles resolve, Tracing is false.
	reg := NewRegistry()
	r := New(reg, nil)
	if r.Tracing() {
		t.Fatalf("recorder without a sink claims to trace")
	}
	r.Counter(SimEventsFired).Inc()
	r.Emit(Event{Kind: "x"}) // no sink: must be a silent no-op
	if got := reg.Counter(SimEventsFired).Value(); got != 1 {
		t.Fatalf("counter = %d, want 1", got)
	}

	// Tracing without metrics: events flow, handles are nil no-ops.
	var buf bytes.Buffer
	sink := NewEventSink(&buf)
	r2 := New(nil, sink)
	if !r2.Tracing() {
		t.Fatalf("recorder with a sink does not trace")
	}
	r2.Counter(SimEventsFired).Inc() // nil registry: nil handle, no panic
	r2.Emit(Event{Time: 1, Kind: "linger"})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "linger") {
		t.Fatalf("event did not reach the sink: %q", buf.String())
	}
}
