package obs

import (
	"bytes"
	"strings"
	"testing"
)

// populate fills a registry with a representative mix of metrics, adding
// them in the order given by perm — exports must not care.
func populate(r *Registry, perm []int) {
	ops := []func(){
		func() { r.Counter(SimEventsFired).Add(123) },
		func() { r.Counter(Labeled(ClusterMigrations, "policy", "LL")).Add(7) },
		func() { r.Counter(Labeled(ClusterMigrations, "policy", "IE")).Add(3) },
		func() {
			h := r.Histogram(SimRunSeconds)
			for _, v := range []float64{0.5, 1.5, 1.5, 1800, 0} {
				h.Observe(v)
			}
		},
		func() { r.Gauge(RunWallSeconds).Set(12.25) },
	}
	for _, i := range perm {
		ops[i]()
	}
}

func TestWriteJSONValidatesAndIsOrderIndependent(t *testing.T) {
	var a, b bytes.Buffer
	ra, rb := NewRegistry(), NewRegistry()
	populate(ra, []int{0, 1, 2, 3, 4})
	populate(rb, []int{4, 3, 2, 1, 0}) // reverse creation order
	if err := ra.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := rb.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("export depends on metric creation order:\n%s\nvs\n%s", a.String(), b.String())
	}
	if err := ValidateMetricsJSON(a.Bytes()); err != nil {
		t.Fatalf("self-produced dump fails validation: %v", err)
	}
}

func TestWriteJSONEmptyAndNil(t *testing.T) {
	for _, r := range []*Registry{nil, NewRegistry()} {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := ValidateMetricsJSON(buf.Bytes()); err != nil {
			t.Fatalf("empty dump fails validation: %v", err)
		}
		if strings.Contains(buf.String(), "null") {
			t.Fatalf("empty dump contains null sections:\n%s", buf.String())
		}
	}
}

func TestUnsetGaugeIsNotExported(t *testing.T) {
	r := NewRegistry()
	r.Gauge(RunWallSeconds) // created but never Set
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), RunWallSeconds) {
		t.Fatalf("unset gauge leaked into the export:\n%s", buf.String())
	}
}

func TestValidateMetricsJSONRejections(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string // substring of the expected error
	}{
		{"not json", `{`, "metrics schema"},
		{"unknown field", `{"schema_version":1,"counters":{},"gauges":{},"histograms":{},"extra":1}`, "unknown field"},
		{"trailing data", `{"schema_version":1,"counters":{},"gauges":{},"histograms":{}} {}`, "trailing data"},
		{"missing version", `{"counters":{},"gauges":{},"histograms":{}}`, "missing schema_version"},
		{"wrong version", `{"schema_version":99,"counters":{},"gauges":{},"histograms":{}}`, "schema_version 99"},
		{"missing section", `{"schema_version":1,"counters":{},"gauges":{}}`, "all required"},
		{"uncatalogued counter", `{"schema_version":1,"counters":{"no.such":1},"gauges":{},"histograms":{}}`, "not a catalogued metric"},
		{"wrong section", `{"schema_version":1,"counters":{"run.wall_seconds":1},"gauges":{},"histograms":{}}`, "is a gauge"},
		{"negative counter", `{"schema_version":1,"counters":{"sim.events.fired":-1},"gauges":{},"histograms":{}}`, "non-negative"},
		{"NaN-ish gauge", `{"schema_version":1,"counters":{},"gauges":{"run.wall_seconds":"x"},"histograms":{}}`, "metrics schema"},
		{"histogram bad sum", `{"schema_version":1,"counters":{},"gauges":{},"histograms":{"sim.run_seconds":{"count":5,"zeros":0,"rejected":0,"min":1,"max":2,"overflow":0,"buckets":[{"pow2":1,"count":3}]}}}`, "don't sum"},
		{"histogram empty bucket", `{"schema_version":1,"counters":{},"gauges":{},"histograms":{"sim.run_seconds":{"count":0,"zeros":0,"rejected":0,"min":0,"max":0,"overflow":0,"buckets":[{"pow2":1,"count":0}]}}}`, "empty bucket"},
		{"histogram edge range", `{"schema_version":1,"counters":{},"gauges":{},"histograms":{"sim.run_seconds":{"count":1,"zeros":0,"rejected":0,"min":1,"max":1,"overflow":0,"buckets":[{"pow2":99,"count":1}]}}}`, "outside the fixed edges"},
		{"histogram bad bounds", `{"schema_version":1,"counters":{},"gauges":{},"histograms":{"sim.run_seconds":{"count":2,"zeros":0,"rejected":0,"min":5,"max":1,"overflow":0,"buckets":[{"pow2":1,"count":2}]}}}`, "invalid bounds"},
	}
	for _, c := range cases {
		err := ValidateMetricsJSON([]byte(c.data))
		if err == nil {
			t.Errorf("%s: validation passed, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}
