package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Event is one structured trace record. Time is simulated seconds for
// simulator events and wall-clock seconds since process start for runtime
// events (the Kind's prefix says which clock applies — see
// OBSERVABILITY.md). Only the fields relevant to a given Kind are set;
// the rest are omitted from the JSON line.
type Event struct {
	Time   float64 `json:"t"`
	Kind   string  `json:"kind"`
	Policy string  `json:"policy,omitempty"`
	Node   int     `json:"node,omitempty"`
	Job    int     `json:"job,omitempty"`
	Agent  string  `json:"agent,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// EventSink writes events as JSON Lines (one object per line) to an
// underlying writer. Safe for concurrent use; Emit on a nil sink is a
// no-op. NOTE: under a parallel sweep, line ORDER follows goroutine
// interleaving — the trace is a bag of records, not a total order. Sort
// on (t, kind) when a stable view is needed; the metrics registry, not
// the trace, is the deterministic artifact.
type EventSink struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	enc     *json.Encoder
	emitted int64
	err     error
}

// NewEventSink wraps w in a buffered JSONL encoder. Call Close to flush.
func NewEventSink(w io.Writer) *EventSink {
	bw := bufio.NewWriter(w)
	return &EventSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one event line. The first write error sticks and is
// reported by Close; later Emits become no-ops.
func (s *EventSink) Emit(e Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(e); err != nil {
		s.err = err
		return
	}
	s.emitted++
}

// Emitted returns how many events have been written.
func (s *EventSink) Emitted() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.emitted
}

// Close flushes the buffer and returns the first error seen (it does not
// close the underlying writer — the CLI layer owns the file handle).
func (s *EventSink) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}
