package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion identifies the metrics-file layout; bump on any breaking
// change so downstream parsers can refuse what they don't understand.
const SchemaVersion = 1

// metricsFile is the on-disk layout of a -metrics dump. Maps marshal with
// sorted keys, so for a deterministic run the file is byte-stable across
// worker counts (gauges excepted — they are documented as last-write-wins
// and restricted to single-threaded call sites).
type metricsFile struct {
	SchemaVersion int                     `json:"schema_version"`
	Counters      map[string]int64        `json:"counters"`
	Gauges        map[string]float64      `json:"gauges"`
	Histograms    map[string]histSnapshot `json:"histograms"`
}

// WriteJSON dumps the registry as indented JSON. Safe to call on a nil
// registry (writes an empty, schema-valid document).
func (r *Registry) WriteJSON(w io.Writer) error {
	f := metricsFile{
		SchemaVersion: SchemaVersion,
		Counters:      map[string]int64{},
		Gauges:        map[string]float64{},
		Histograms:    map[string]histSnapshot{},
	}
	if r != nil {
		r.mu.Lock()
		for name, c := range r.counters {
			f.Counters[name] = c.Value()
		}
		for name, g := range r.gauges {
			if v, ok := g.Value(); ok {
				f.Gauges[name] = v
			}
		}
		for name, h := range r.hists {
			f.Histograms[name] = h.snapshot()
		}
		r.mu.Unlock()
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal metrics: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: write metrics: %w", err)
	}
	return nil
}
