package parallel

import (
	"fmt"
	"math"

	"lingerlonger/internal/exp"
	"lingerlonger/internal/stats"
)

// The figure sweeps in this file fan their points out across the
// internal/exp worker pool. Every point derives its own RNG from
// (seed, point index), so the results are identical for any worker count;
// see the exp package documentation for the two rules that make this safe.

// Fig9Point is one x-position of Figure 9: slowdown of an eight-process
// bulk-synchronous job when one node is non-idle at the given utilization.
type Fig9Point struct {
	Utilization float64
	Slowdown    float64
}

// Fig9 reproduces Figure 9: the paper's eight-process synthetic job
// (100 ms synchronization, NEWS messaging) with exactly one non-idle node
// whose local utilization sweeps 0..90%. The ten points run under r's
// execution policy (nil selects a plain GOMAXPROCS pool) as sweep "fig9".
func Fig9(r *exp.Runner, seed int64) ([]Fig9Point, error) {
	cfg := DefaultBSPConfig()
	cfg.Rec = r.Recorder()
	return exp.RunSeeded(r, "fig9", seed, 10, func(i int, rng *stats.RNG) (Fig9Point, error) {
		u := float64(i) / 10
		sd, err := Slowdown(cfg, utilVector(cfg.Procs, 1, u), rng)
		if err != nil {
			return Fig9Point{}, err
		}
		return Fig9Point{Utilization: u, Slowdown: sd}, nil
	})
}

// Fig10Point is one point of Figure 10: slowdown versus synchronization
// granularity for a given number of non-idle nodes at 20% utilization.
type Fig10Point struct {
	GranularityMS float64 // computation time between synchronizations
	NonIdleNodes  int
	Slowdown      float64
}

// Fig10 reproduces Figure 10: synchronization granularity from 10 ms to
// 10 s against slowdown, with 1, 2, 4 and 8 of the eight nodes non-idle at
// 20% local utilization. The 40 grid points run under r's execution policy
// as sweep "fig10".
func Fig10(r *exp.Runner, seed int64) ([]Fig10Point, error) {
	granularitiesMS := []float64{10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}
	nonIdleCounts := []int{1, 2, 4, 8}
	n := len(granularitiesMS) * len(nonIdleCounts)
	return exp.RunSeeded(r, "fig10", seed, n, func(i int, rng *stats.RNG) (Fig10Point, error) {
		nonIdle := nonIdleCounts[i/len(granularitiesMS)]
		g := granularitiesMS[i%len(granularitiesMS)]
		cfg := DefaultBSPConfig()
		cfg.Rec = r.Recorder()
		cfg.ComputePerPhase = g / 1000
		// Keep total simulated work roughly constant so coarse
		// granularities do not dominate the run time.
		cfg.Phases = int(math.Max(8, math.Min(200, 20000/g)))
		sd, err := Slowdown(cfg, utilVector(cfg.Procs, nonIdle, 0.20), rng)
		if err != nil {
			return Fig10Point{}, err
		}
		return Fig10Point{GranularityMS: g, NonIdleNodes: nonIdle, Slowdown: sd}, nil
	})
}

// ReconfigConfig parameterizes the Figure 11 head-to-head comparison of
// lingering against reconfiguration on a dedicated-size cluster.
type ReconfigConfig struct {
	ClusterSize  int     // total nodes (the paper: 32)
	LLSizes      []int   // linger policy variants: run with exactly k processes
	NonIdleUtil  float64 // local utilization of non-idle nodes (the paper: 20%)
	SyncGran     float64 // synchronization granularity, seconds (the paper: 0.5)
	TotalWork    float64 // total CPU seconds across all processes
	MsgsPerPhase int
	MsgLatency   float64
	Seed         int64
	Workers      int // sweep worker-pool size; <= 0 selects GOMAXPROCS
	// Exec, when non-nil, supplies the sweep execution policy (pool size,
	// retries, watchdog, checkpointing) and takes precedence over Workers.
	Exec *exp.Runner
}

// DefaultReconfigConfig returns the paper's Figure 11 setting: a 32-node
// cluster, 500 ms synchronization, 20% non-idle utilization, and a job
// sized so a full idle cluster finishes in about one second of wall time.
func DefaultReconfigConfig() ReconfigConfig {
	return ReconfigConfig{
		ClusterSize:  32,
		LLSizes:      []int{8, 16, 32},
		NonIdleUtil:  0.20,
		SyncGran:     0.5,
		TotalWork:    32,
		MsgsPerPhase: 4,
		MsgLatency:   0.001,
		Seed:         1,
	}
}

// Fig11Point is one x-position of Figure 11: completion times under each
// policy for a given number of idle nodes in the cluster.
type Fig11Point struct {
	IdleNodes int
	// LL maps a linger variant (process count k) to its completion time:
	// the job runs k processes, on idle nodes while enough exist and
	// lingering on non-idle ones otherwise.
	LL map[int]float64
	// Reconfig is the completion time when the job reconfigures to the
	// largest power-of-two number of idle nodes (+Inf when none are idle).
	Reconfig float64
}

// jobFor builds the BSP description for a run on k processes: the total
// work is divided evenly, and the phase count follows from the
// synchronization granularity.
func (c ReconfigConfig) jobFor(k int) BSPConfig {
	perProc := c.TotalWork / float64(k)
	phases := int(math.Ceil(perProc / c.SyncGran))
	if phases < 1 {
		phases = 1
	}
	return BSPConfig{
		Procs:           k,
		ComputePerPhase: perProc / float64(phases),
		Phases:          phases,
		MsgsPerPhase:    c.MsgsPerPhase,
		MsgLatency:      c.MsgLatency,
		ContextSwitch:   100e-6,
	}
}

// largestPow2 returns the largest power of two <= n, or 0 for n <= 0.
func largestPow2(n int) int {
	if n <= 0 {
		return 0
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// Fig11 reproduces Figure 11: for every number of idle nodes from the full
// cluster down to zero, the completion time of the parallel job under the
// linger variants (8, 16, 32 processes) and under power-of-two
// reconfiguration. Reconfiguration cost itself is not charged, matching
// the paper's conservative assumption. Each idle level is one task on the
// exp worker pool; within a task the variant runs share the task's RNG
// sequentially.
func Fig11(c ReconfigConfig) ([]Fig11Point, error) {
	if c.ClusterSize <= 0 {
		return nil, fmt.Errorf("parallel: ClusterSize must be positive, got %d", c.ClusterSize)
	}
	n := c.ClusterSize + 1
	run := exp.Or(c.Exec, c.Workers)
	return exp.RunSeeded(run, "fig11", c.Seed, n, func(i int, rng *stats.RNG) (Fig11Point, error) {
		idle := c.ClusterSize - i
		pt := Fig11Point{IdleNodes: idle, LL: make(map[int]float64)}

		for _, k := range c.LLSizes {
			cfg := c.jobFor(k)
			cfg.Rec = run.Recorder()
			// k processes: idle nodes first, lingering for the remainder.
			nonIdle := k - idle
			if nonIdle < 0 {
				nonIdle = 0
			}
			utils := utilVector(k, nonIdle, c.NonIdleUtil)
			tm, err := RunBSP(cfg, utils, rng)
			if err != nil {
				return Fig11Point{}, err
			}
			pt.LL[k] = tm
		}

		if kr := largestPow2(idle); kr == 0 {
			pt.Reconfig = infCompletion()
		} else {
			cfg := c.jobFor(kr)
			cfg.Rec = run.Recorder()
			tm, err := RunBSP(cfg, make([]float64, kr), rng)
			if err != nil {
				return Fig11Point{}, err
			}
			pt.Reconfig = tm
		}
		return pt, nil
	})
}
