// Package parallel simulates bulk-synchronous parallel (BSP) jobs running
// on a shared workstation cluster under Linger-Longer (§5 of the paper).
//
// A job is a set of processes, one per node, alternating compute phases
// and communication phases separated by barriers. A process on a non-idle
// node computes at low priority through the fine-grain strict-priority
// model of internal/node, so one busy node stretches every phase of the
// whole job (the barrier waits for the slowest process). Communication is
// network-bound and therefore insensitive to local CPU activity — which is
// why communication-heavy applications suffer less from lingering.
//
// The figure drivers (Fig9, Fig10, Fig11) sweep utilization levels, sync
// granularities and idle-node counts. Each sweep point runs on the
// internal/exp worker pool with its own RNG derived from (seed, index),
// so a Workers-sized pool accelerates the sweep without changing any
// result (DESIGN.md §8).
package parallel

import (
	"fmt"
	"math"

	"lingerlonger/internal/node"
	"lingerlonger/internal/obs"
	"lingerlonger/internal/stats"
	"lingerlonger/internal/workload"
)

// BSPConfig describes a synthetic bulk-synchronous job.
type BSPConfig struct {
	Procs           int     // processes, one per node
	ComputePerPhase float64 // CPU seconds per process per phase (sync granularity)
	Phases          int     // number of phases
	MsgsPerPhase    int     // messages per process in a communication phase (NEWS: 4)
	MsgLatency      float64 // per-message time, seconds
	ContextSwitch   float64 // effective context-switch time on each node

	// SyncHandlerCPU is the CPU each process must spend handling
	// synchronization and shared-memory protocol traffic per phase
	// (barrier arrival processing, page requests, diff application in a
	// software DSM like CVM). The handling is serialized around the
	// processes like a token barrier, so every process on a non-idle node
	// delays the chain until its local scheduler grants it the CPU. Zero
	// disables the mechanism (pure message-passing jobs).
	SyncHandlerCPU float64

	// Table overrides the fine-grain workload calibration; nil selects
	// workload.DefaultTable(). Used by the burst-distribution ablations.
	Table *workload.Table

	// Rec, when non-nil, receives the bsp.phases counter and the
	// per-node preemption counter. Metrics are outputs only, never read
	// back, so a recorder cannot change results.
	Rec *obs.Recorder
}

// DefaultBSPConfig returns the paper's synthetic job: eight processes with
// 100 ms between synchronizations and NEWS-style neighbour messaging.
func DefaultBSPConfig() BSPConfig {
	return BSPConfig{
		Procs:           8,
		ComputePerPhase: 0.100,
		Phases:          100,
		MsgsPerPhase:    4,
		MsgLatency:      0.001,
		ContextSwitch:   node.DefaultContextSwitch,
	}
}

// Validate checks the job description.
func (c BSPConfig) Validate() error {
	if c.Procs <= 0 {
		return fmt.Errorf("parallel: Procs must be positive, got %d", c.Procs)
	}
	if c.ComputePerPhase <= 0 {
		return fmt.Errorf("parallel: ComputePerPhase must be positive, got %g", c.ComputePerPhase)
	}
	if c.Phases <= 0 {
		return fmt.Errorf("parallel: Phases must be positive, got %d", c.Phases)
	}
	if c.MsgsPerPhase < 0 || c.MsgLatency < 0 {
		return fmt.Errorf("parallel: negative communication parameters")
	}
	if c.ContextSwitch < 0 {
		return fmt.Errorf("parallel: negative context-switch time")
	}
	if c.SyncHandlerCPU < 0 {
		return fmt.Errorf("parallel: negative sync-handler CPU")
	}
	return nil
}

// commTime returns the wall-clock length of one communication phase.
func (c BSPConfig) commTime() float64 {
	return float64(c.MsgsPerPhase) * c.MsgLatency
}

// maxPhaseWait bounds how long one process may take for a single compute
// phase before the simulation declares it starved (a process on a 100%
// utilized node never finishes).
const maxPhaseWait = 1e6

// RunBSP simulates the job with its processes placed on nodes whose local
// CPU utilizations are given by utils (len(utils) must equal cfg.Procs; 0
// is an idle node). It returns the job completion time in seconds. An
// error is returned for invalid configurations or if a process starves.
func RunBSP(cfg BSPConfig, utils []float64, rng *stats.RNG) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(utils) != cfg.Procs {
		return 0, fmt.Errorf("parallel: %d utilizations for %d processes", len(utils), cfg.Procs)
	}
	table := cfg.Table
	if table == nil {
		table = workload.DefaultTable()
	}
	nodes := make([]*node.Node, cfg.Procs)
	for i, u := range utils {
		if u < 0 || u > 1 {
			return 0, fmt.Errorf("parallel: utilization %g out of [0,1]", u)
		}
		nodes[i] = node.New(node.Config{ContextSwitch: cfg.ContextSwitch, Rec: cfg.Rec}, table,
			workload.ConstantUtilization(u), rng.Split())
	}

	phaseC := cfg.Rec.Counter(obs.BSPPhases)
	now := 0.0
	comm := cfg.commTime()
	for p := 0; p < cfg.Phases; p++ {
		// Compute phase: every process needs ComputePerPhase CPU seconds;
		// the opening barrier of the communication phase waits for the
		// slowest.
		barrier := now
		for i, nd := range nodes {
			if nd.Now() < now {
				nd.Advance(now)
			}
			got := nd.ServeForeign(cfg.ComputePerPhase, now+maxPhaseWait)
			if got < cfg.ComputePerPhase-1e-9 {
				return 0, fmt.Errorf("parallel: process %d starved in phase %d (node utilization %g)",
					i, p, utils[i])
			}
			if nd.Now() > barrier {
				barrier = nd.Now()
			}
		}
		// Synchronization handling: the token passes through every process
		// in turn; a process on a non-idle node holds the chain until its
		// strict-priority scheduler gives it the CPU.
		chain := barrier
		if cfg.SyncHandlerCPU > 0 {
			for i, nd := range nodes {
				if nd.Now() < chain {
					nd.Advance(chain)
				}
				got := nd.ServeForeign(cfg.SyncHandlerCPU, chain+maxPhaseWait)
				if got < cfg.SyncHandlerCPU-1e-9 {
					return 0, fmt.Errorf("parallel: process %d starved handling sync in phase %d", i, p)
				}
				if nd.Now() > chain {
					chain = nd.Now()
				}
			}
		}
		// Communication phase: NEWS exchanges overlap across processes but
		// serialize per process; local CPU activity does not slow the
		// network transfers.
		now = chain + comm
		phaseC.Inc()
	}
	return now, nil
}

// IdealTime returns the job's completion time on fully idle nodes with
// zero context-switch cost: the analytic baseline for slowdown figures.
// The serialized sync handling costs Procs*SyncHandlerCPU per phase even
// on an idle cluster.
func (c BSPConfig) IdealTime() float64 {
	return float64(c.Phases) * (c.ComputePerPhase + float64(c.Procs)*c.SyncHandlerCPU + c.commTime())
}

// Slowdown runs the job twice — on the given utilizations and on all-idle
// nodes — and returns the ratio of completion times, the quantity plotted
// in Figures 9, 10 and 12.
func Slowdown(cfg BSPConfig, utils []float64, rng *stats.RNG) (float64, error) {
	busy, err := RunBSP(cfg, utils, rng)
	if err != nil {
		return 0, err
	}
	base, err := RunBSP(cfg, make([]float64, cfg.Procs), rng)
	if err != nil {
		return 0, err
	}
	if base == 0 {
		return 0, fmt.Errorf("parallel: zero baseline time")
	}
	return busy / base, nil
}

// utilVector builds a utilization vector with nonIdle nodes at level u and
// the rest idle.
func utilVector(procs, nonIdle int, u float64) []float64 {
	utils := make([]float64, procs)
	for i := 0; i < nonIdle && i < procs; i++ {
		utils[i] = u
	}
	return utils
}

// infCompletion is the completion-time marker for configurations that
// cannot run at all (reconfiguration with zero idle nodes).
func infCompletion() float64 { return math.Inf(1) }
