package parallel

import (
	"math"
	"testing"

	"lingerlonger/internal/stats"
)

func TestBSPConfigValidate(t *testing.T) {
	if err := DefaultBSPConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	cases := []func(*BSPConfig){
		func(c *BSPConfig) { c.Procs = 0 },
		func(c *BSPConfig) { c.ComputePerPhase = 0 },
		func(c *BSPConfig) { c.Phases = 0 },
		func(c *BSPConfig) { c.MsgLatency = -1 },
		func(c *BSPConfig) { c.MsgsPerPhase = -1 },
		func(c *BSPConfig) { c.ContextSwitch = -1 },
	}
	for i, mutate := range cases {
		cfg := DefaultBSPConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunBSPAllIdleMatchesIdeal(t *testing.T) {
	cfg := DefaultBSPConfig()
	cfg.Phases = 50
	got, err := RunBSP(cfg, make([]float64, cfg.Procs), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	ideal := cfg.IdealTime()
	// Idle nodes still pay a tiny switch-in per trace window; within 1%.
	if got < ideal || got > ideal*1.01 {
		t.Errorf("all-idle time = %g, want ~ideal %g", got, ideal)
	}
}

func TestRunBSPArgumentErrors(t *testing.T) {
	cfg := DefaultBSPConfig()
	if _, err := RunBSP(cfg, make([]float64, 3), stats.NewRNG(1)); err == nil {
		t.Error("wrong utils length accepted")
	}
	utils := make([]float64, cfg.Procs)
	utils[0] = 1.5
	if _, err := RunBSP(cfg, utils, stats.NewRNG(1)); err == nil {
		t.Error("out-of-range utilization accepted")
	}
}

func TestRunBSPStarvation(t *testing.T) {
	cfg := DefaultBSPConfig()
	cfg.Phases = 1
	utils := make([]float64, cfg.Procs)
	utils[0] = 1.0 // fully busy node: the process can never run
	if _, err := RunBSP(cfg, utils, stats.NewRNG(1)); err == nil {
		t.Error("starved process not reported")
	}
}

func TestSlowdownOneBusyNodeTracksUtilization(t *testing.T) {
	// With one node at utilization u the job slows by roughly 1/(1-u)
	// (plus barrier variance): the Figure 9 shape.
	cfg := DefaultBSPConfig()
	cfg.Phases = 60
	rng := stats.NewRNG(2)
	for _, tc := range []struct{ u, lo, hi float64 }{
		{0.2, 1.1, 1.7},
		{0.5, 1.7, 2.8},
		{0.9, 6.0, 14.0},
	} {
		sd, err := Slowdown(cfg, utilVector(cfg.Procs, 1, tc.u), rng)
		if err != nil {
			t.Fatal(err)
		}
		if sd < tc.lo || sd > tc.hi {
			t.Errorf("slowdown at u=%g: %g, want in [%g, %g] (~1/(1-u))", tc.u, sd, tc.lo, tc.hi)
		}
	}
}

func TestFig9MonotoneAndAnchored(t *testing.T) {
	pts, err := Fig9(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("Fig9 points = %d, want 10", len(pts))
	}
	if math.Abs(pts[0].Slowdown-1) > 0.05 {
		t.Errorf("slowdown at u=0 is %g, want ~1", pts[0].Slowdown)
	}
	// Paper: slowdown 1.1-1.5 below 40%, large above 50%.
	for _, p := range pts {
		if p.Utilization <= 0.4 && p.Utilization > 0 && (p.Slowdown < 1 || p.Slowdown > 1.9) {
			t.Errorf("slowdown at u=%g is %g, want in (1, ~1.5]", p.Utilization, p.Slowdown)
		}
	}
	last := pts[len(pts)-1]
	if last.Slowdown < 5 {
		t.Errorf("slowdown at u=0.9 is %g, want large (paper: ~10)", last.Slowdown)
	}
	// Broadly increasing: each point at least 90% of the previous.
	for i := 1; i < len(pts); i++ {
		if pts[i].Slowdown < pts[i-1].Slowdown*0.9 {
			t.Errorf("slowdown dropped at u=%g: %g after %g",
				pts[i].Utilization, pts[i].Slowdown, pts[i-1].Slowdown)
		}
	}
}

func TestFig10CoarserSyncMeansLessSlowdown(t *testing.T) {
	pts, err := Fig10(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	byCount := map[int][]Fig10Point{}
	for _, p := range pts {
		byCount[p.NonIdleNodes] = append(byCount[p.NonIdleNodes], p)
	}
	for n, series := range byCount {
		finest, coarsest := series[0], series[len(series)-1]
		if finest.GranularityMS > coarsest.GranularityMS {
			t.Fatalf("series %d not ordered by granularity", n)
		}
		// The granularity effect is strong from two non-idle nodes up; with
		// a single non-idle node the fine- and coarse-grain slowdowns sit
		// within noise of each other (~1.2-1.4 vs ~1.25 across seeds), so
		// that series only gets a noise-band check.
		if n == 1 {
			if finest.Slowdown <= coarsest.Slowdown-0.15 {
				t.Errorf("1 non-idle: slowdown at 10ms (%g) far below 10s (%g)",
					finest.Slowdown, coarsest.Slowdown)
			}
		} else if finest.Slowdown <= coarsest.Slowdown {
			t.Errorf("%d non-idle: slowdown at 10ms (%g) not above 10s (%g)",
				n, finest.Slowdown, coarsest.Slowdown)
		}
	}
	// More non-idle nodes at the same granularity means more slowdown.
	at := func(n int, g float64) float64 {
		for _, p := range byCount[n] {
			if p.GranularityMS == g {
				return p.Slowdown
			}
		}
		t.Fatalf("missing point n=%d g=%g", n, g)
		return 0
	}
	for _, g := range []float64{100, 1000} {
		if !(at(1, g) <= at(4, g)+0.05 && at(4, g) <= at(8, g)+0.05) {
			t.Errorf("slowdown not increasing in non-idle count at g=%gms: 1:%g 4:%g 8:%g",
				g, at(1, g), at(4, g), at(8, g))
		}
	}
	// Paper: with 4 non-idle nodes at 20%, slowdown stays under ~1.5 at
	// coarse granularity.
	if got := at(4, 10000); got > 1.6 {
		t.Errorf("4 non-idle at 10s granularity: slowdown %g, want < 1.6", got)
	}
}

func TestLargestPow2(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 4, 5: 4, 15: 8, 16: 16, 31: 16, 32: 32}
	for n, want := range cases {
		if got := largestPow2(n); got != want {
			t.Errorf("largestPow2(%d) = %d, want %d", n, got, want)
		}
	}
	if got := largestPow2(-3); got != 0 {
		t.Errorf("largestPow2(-3) = %d, want 0", got)
	}
}

func TestFig11Shapes(t *testing.T) {
	cfg := DefaultReconfigConfig()
	pts, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 33 {
		t.Fatalf("Fig11 points = %d, want 33 (32..0 idle)", len(pts))
	}
	byIdle := map[int]Fig11Point{}
	for _, p := range pts {
		byIdle[p.IdleNodes] = p
	}

	// All 32 idle: reconfiguration uses the whole machine and wins or ties.
	full := byIdle[32]
	if full.Reconfig > full.LL[32]*1.02 {
		t.Errorf("full cluster: reconfig %g should be ~= LL-32 %g", full.Reconfig, full.LL[32])
	}

	// One non-idle node: reconfiguration halves the machine (16 nodes),
	// while LL-32 lingers on one 20%-busy node — LL-32 must win (the
	// paper's headline for this figure).
	p31 := byIdle[31]
	if p31.LL[32] >= p31.Reconfig {
		t.Errorf("31 idle: LL-32 (%g) should beat reconfig-16 (%g)", p31.LL[32], p31.Reconfig)
	}

	// No idle nodes: reconfiguration cannot run at all; lingering still
	// finishes.
	p0 := byIdle[0]
	if !math.IsInf(p0.Reconfig, 1) {
		t.Errorf("0 idle: reconfig completion = %g, want +Inf", p0.Reconfig)
	}
	if math.IsInf(p0.LL[32], 1) || p0.LL[32] <= 0 {
		t.Errorf("0 idle: LL-32 completion = %g, want finite", p0.LL[32])
	}

	// With few idle nodes, the smaller linger variants beat LL-32's
	// full-width lingering... and every completion time is positive.
	for _, p := range pts {
		for k, v := range p.LL {
			if v <= 0 {
				t.Errorf("idle=%d LL-%d completion %g", p.IdleNodes, k, v)
			}
		}
	}

	// Crossover: with many non-idle nodes reconfiguration (on 16 idle)
	// beats LL-32; find that LL-32 degrades as idle shrinks.
	if byIdle[16].LL[32] <= byIdle[31].LL[32] {
		t.Errorf("LL-32 did not degrade from 31 idle (%g) to 16 idle (%g)",
			byIdle[31].LL[32], byIdle[16].LL[32])
	}
}

func TestFig11Deterministic(t *testing.T) {
	cfg := DefaultReconfigConfig()
	cfg.ClusterSize = 8
	cfg.LLSizes = []int{4, 8}
	a, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Reconfig != b[i].Reconfig || a[i].LL[8] != b[i].LL[8] {
			t.Fatalf("same seed diverged at point %d", i)
		}
	}
}
