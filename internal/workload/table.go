// Package workload implements the paper's fine-grain workload model
// (§3.1): local processor activity is a sequence of run and idle bursts
// whose durations follow two-stage hyperexponential distributions
// parameterized by the average CPU utilization over a two-second window.
//
// The paper measures AIX scheduler-dispatch traces, splits them into 21
// utilization buckets (0%..100% in 5% steps), and fits the run/idle burst
// durations in each bucket with a method-of-moments hyperexponential
// (Figure 2). The bucket parameter curves are published in Figure 3. We
// reproduce the model from those curves: DefaultTable is calibrated so the
// run-burst mean/variance track Figure 3, and the idle-burst mean is
// derived from the self-consistency constraint
//
//	utilization = runMean / (runMean + idleMean)
//
// so that generated windows actually exhibit their labelled utilization.
// (The paper's published idle means are slightly inconsistent with that
// identity because its utilizations were measured over fixed 2-second
// windows; DESIGN.md §2 records this calibration difference.)
package workload

import (
	"fmt"

	"lingerlonger/internal/stats"
)

// Params are the fine-grain burst parameters for one utilization level.
type Params struct {
	Utilization float64 // mean CPU utilization of the window, in [0, 1]
	RunMean     float64 // mean run-burst duration, seconds
	RunVar      float64 // run-burst variance, seconds^2
	IdleMean    float64 // mean idle-burst duration, seconds
	IdleVar     float64 // idle-burst variance, seconds^2
}

// PureIdle reports whether the level has no run bursts at all (utilization
// ~0): the processor is continuously available.
func (p Params) PureIdle() bool { return p.RunMean == 0 }

// PureBusy reports whether the level has no idle bursts at all (utilization
// ~1): the processor is continuously occupied by local work.
func (p Params) PureBusy() bool { return !p.PureIdle() && p.IdleMean == 0 }

// Table maps utilization to burst parameters with linear interpolation
// between calibrated buckets, exactly as the paper interpolates "between
// the two closest of the 21 levels of utilization".
type Table struct {
	buckets []Params // ascending in Utilization, first at 0, last at 1
}

// Buckets returns a copy of the calibration buckets.
func (t *Table) Buckets() []Params {
	out := make([]Params, len(t.buckets))
	copy(out, t.buckets)
	return out
}

// NumBuckets returns the number of calibration buckets.
func (t *Table) NumBuckets() int { return len(t.buckets) }

// pureIdleGapMean is the mean idle-burst length used when there are no run
// bursts at all; it only sets the event granularity of fully-idle windows.
const pureIdleGapMean = 0.030

// minActiveUtil and maxActiveUtil bound the region where both run and idle
// bursts exist. Below/above, the window is treated as pure idle/busy.
const (
	minActiveUtil = 0.005
	maxActiveUtil = 0.995
)

// DefaultTable returns the Figure 3 calibration: 21 buckets from 0% to
// 100% utilization in 5% steps. The idle-burst mean decreases from ~90 ms
// toward 0 as utilization grows; run-burst means follow from the
// utilization identity and grow convexly to 250 ms at 100% (matching the
// Figure 3 top-left curve: ~10 ms at 10%, ~50 ms at 50%, 250 ms at 100%).
// Squared CVs sit in [1.4, 1.6] so the hyperexponential fit is
// well-defined.
func DefaultTable() *Table {
	// Idle-burst means per bucket, seconds, strictly decreasing (Figure 3
	// bottom-left shape). Index i is utilization i*5%.
	idleMeans := []float64{
		pureIdleGapMean, // 0%: pure idle, gap sets event granularity only
		0.090,           // 5%
		0.085,           // 10%
		0.080,
		0.075,
		0.070,
		0.066,
		0.062,
		0.058,
		0.054,
		0.050, // 50%
		0.046,
		0.042,
		0.039,
		0.036,
		0.033,
		0.030,
		0.027,
		0.023,
		0.013,
		0, // 100%: pure busy
	}
	buckets := make([]Params, len(idleMeans))
	for i, im := range idleMeans {
		u := float64(i) * 0.05
		p := Params{Utilization: u, IdleMean: im}
		runCV2 := 1.6 - 0.2*u  // squared CV of run bursts
		idleCV2 := 1.5 - 0.2*u // squared CV of idle bursts
		switch i {
		case 0:
			p.IdleVar = idleCV2 * im * im
		case len(idleMeans) - 1:
			p.RunMean = 0.250 // Figure 3: 250 ms run bursts at full load
			p.RunVar = runCV2 * p.RunMean * p.RunMean
		default:
			p.RunMean = im * u / (1 - u)
			p.RunVar = runCV2 * p.RunMean * p.RunMean
			p.IdleVar = idleCV2 * im * im
		}
		buckets[i] = p
	}
	return &Table{buckets: buckets}
}

// ParamsAt returns interpolated parameters for utilization u, clamped to
// [0, 1]. Within the active region the run-burst mean and both squared CVs
// interpolate linearly between the neighbouring buckets and the idle mean
// is derived from the utilization identity, so a long burst sequence at
// ParamsAt(u) has expected utilization u.
func (t *Table) ParamsAt(u float64) Params {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	if u < minActiveUtil {
		p := t.buckets[0]
		p.Utilization = u
		return p
	}
	if u > maxActiveUtil {
		p := t.buckets[len(t.buckets)-1]
		p.Utilization = u
		return p
	}

	// Locate the bracketing buckets. Bucket 0 is pure idle, so the active
	// interpolation runs over buckets[1:].
	step := 1.0 / float64(len(t.buckets)-1)
	lo := int(u / step)
	if lo >= len(t.buckets)-1 {
		lo = len(t.buckets) - 2
	}
	hi := lo + 1
	frac := (u - float64(lo)*step) / step

	runMean := lerp(t.buckets[lo].RunMean, t.buckets[hi].RunMean, frac)
	runCV2 := lerp(cv2(t.buckets[lo].RunMean, t.buckets[lo].RunVar),
		cv2(t.buckets[hi].RunMean, t.buckets[hi].RunVar), frac)
	idleCV2 := lerp(cv2(t.buckets[lo].IdleMean, t.buckets[lo].IdleVar),
		cv2(t.buckets[hi].IdleMean, t.buckets[hi].IdleVar), frac)
	if lo == 0 {
		// Below the first active bucket the run-burst length floors at the
		// bucket-1 value: near-zero utilization means fewer daemon
		// wakeups, not infinitesimally short ones. Interpolating toward
		// zero-length bursts would make the per-burst context-switch
		// penalty (and so the owner's delay ratio) blow up unphysically.
		runMean = t.buckets[1].RunMean
		runCV2 = cv2(t.buckets[1].RunMean, t.buckets[1].RunVar)
		idleCV2 = cv2(t.buckets[1].IdleMean, t.buckets[1].IdleVar)
	}

	idleMean := runMean * (1 - u) / u
	return Params{
		Utilization: u,
		RunMean:     runMean,
		RunVar:      runCV2 * runMean * runMean,
		IdleMean:    idleMean,
		IdleVar:     idleCV2 * idleMean * idleMean,
	}
}

// cv2 returns the squared coefficient of variation, defaulting to 1.5 when
// the mean is zero (pure idle/busy bucket, where the value is unused except
// through interpolation).
func cv2(mean, variance float64) float64 {
	if mean == 0 {
		return 1.5
	}
	return variance / (mean * mean)
}

func lerp(a, b, frac float64) float64 { return a + (b-a)*frac }

// WithSquaredCV returns a copy of the table whose run and idle burst
// variances are replaced so every bucket has the given squared
// coefficients of variation. It is the ablation hook for studying how
// burst-duration variability (hyperexponential, CV^2 > 1) versus
// exponential bursts (CV^2 = 1) affects the results; values below 1 are
// clamped to 1 by the hyperexponential fit downstream.
func (t *Table) WithSquaredCV(runCV2, idleCV2 float64) *Table {
	buckets := t.Buckets()
	for i := range buckets {
		buckets[i].RunVar = runCV2 * buckets[i].RunMean * buckets[i].RunMean
		buckets[i].IdleVar = idleCV2 * buckets[i].IdleMean * buckets[i].IdleMean
	}
	return &Table{buckets: buckets}
}

// Scaled returns a copy of the table with every burst mean multiplied by
// factor (variances scale by factor^2, preserving the CVs). Shrinking the
// bursts toward zero approaches a fluid processor-sharing model — the
// ablation baseline for the two-level workload composition.
func (t *Table) Scaled(factor float64) *Table {
	if factor <= 0 {
		panic(fmt.Sprintf("workload: non-positive scale factor %g", factor))
	}
	buckets := t.Buckets()
	for i := range buckets {
		buckets[i].RunMean *= factor
		buckets[i].RunVar *= factor * factor
		buckets[i].IdleMean *= factor
		buckets[i].IdleVar *= factor * factor
	}
	return &Table{buckets: buckets}
}

// Validate checks the table's structural invariants: buckets ascending,
// utilization identity within tolerance, CVs >= 1 wherever a burst exists.
func (t *Table) Validate() error {
	if len(t.buckets) < 2 {
		return fmt.Errorf("workload: table needs >= 2 buckets, has %d", len(t.buckets))
	}
	for i, b := range t.buckets {
		if i > 0 && b.Utilization <= t.buckets[i-1].Utilization {
			return fmt.Errorf("workload: bucket %d utilization %g not ascending", i, b.Utilization)
		}
		if b.RunMean < 0 || b.IdleMean < 0 || b.RunVar < 0 || b.IdleVar < 0 {
			return fmt.Errorf("workload: bucket %d has negative parameter: %+v", i, b)
		}
		if b.RunMean > 0 && b.IdleMean > 0 {
			implied := b.RunMean / (b.RunMean + b.IdleMean)
			if diff := implied - b.Utilization; diff > 0.02 || diff < -0.02 {
				return fmt.Errorf("workload: bucket %d utilization identity broken: labelled %g, implied %g",
					i, b.Utilization, implied)
			}
		}
		if b.RunMean > 0 && b.RunVar < b.RunMean*b.RunMean*0.999 {
			return fmt.Errorf("workload: bucket %d run CV^2 < 1", i)
		}
		if b.IdleMean > 0 && b.IdleVar < b.IdleMean*b.IdleMean*0.999 {
			return fmt.Errorf("workload: bucket %d idle CV^2 < 1", i)
		}
	}
	if t.buckets[0].Utilization != 0 {
		return fmt.Errorf("workload: first bucket utilization %g, want 0", t.buckets[0].Utilization)
	}
	if last := t.buckets[len(t.buckets)-1].Utilization; last != 1 {
		return fmt.Errorf("workload: last bucket utilization %g, want 1", last)
	}
	return nil
}

// fitOrZero returns the hyperexponential fit for (mean, var), or a
// zero-valued Deterministic distribution when mean is 0.
func fitOrZero(mean, variance float64) stats.Distribution {
	if mean == 0 {
		return stats.Deterministic{Value: 0}
	}
	return stats.MustFitHyperExp2(mean, variance)
}
