package workload

import (
	"testing"

	"lingerlonger/internal/stats"
)

// steppedSource cycles a fixed set of levels, one per window, covering
// mixed, pure-idle and pure-busy windows.
type steppedSource []float64

func (s steppedSource) UtilizationAt(t float64) float64 {
	idx := int(t/DefaultWindow) % len(s)
	if idx < 0 {
		idx += len(s)
	}
	return s[idx]
}

// collect pulls n bursts from a fresh windowed stream built with the given
// lookahead.
func collect(t *testing.T, src UtilizationSource, seed int64, lookahead, n int) []Burst {
	t.Helper()
	w := NewWindowed(DefaultTable(), src, 0, stats.NewRNG(seed))
	if lookahead > 0 {
		w.SetLookahead(lookahead)
	}
	out := make([]Burst, n)
	for i := range out {
		out[i] = w.Next()
	}
	return out
}

// TestLookaheadPrefixIdentity is the core lookahead contract: for any
// batch size N, the stream of bursts is bit-identical to the unbatched
// stream — prefetching runs the same deterministic draw sequence, just
// earlier. Checked across seeds, batch sizes and level patterns.
func TestLookaheadPrefixIdentity(t *testing.T) {
	sources := []UtilizationSource{
		ConstantUtilization(0.5),
		ConstantUtilization(0),
		ConstantUtilization(1),
		steppedSource{0.2, 0, 0.9, 1, 0.5},
	}
	for si, src := range sources {
		for _, seed := range []int64{1, 2, 17, 99} {
			base := collect(t, src, seed, 0, 400)
			for _, la := range []int{1, 2, 7, 64, 1024} {
				got := collect(t, src, seed, la, 400)
				for i := range base {
					if got[i] != base[i] {
						t.Fatalf("source %d seed %d lookahead %d: burst %d = %+v, unbatched %+v",
							si, seed, la, i, got[i], base[i])
					}
				}
			}
		}
	}
}

// TestLookaheadBufferedConsume checks that the zero-call batch form
// (Buffered + Consume) hands out exactly the Next stream, under a
// randomized interleaving of the two access styles, and that Now always
// reports the consumption point.
func TestLookaheadBufferedConsume(t *testing.T) {
	src := steppedSource{0.3, 0.8, 0, 1}
	const total = 600
	base := collect(t, src, 5, 0, total)

	w := NewWindowed(DefaultTable(), src, 0, stats.NewRNG(5))
	w.SetLookahead(16)
	ops := stats.NewRNG(1234)
	var got []Burst
	for len(got) < total {
		if ops.Bool(0.5) {
			got = append(got, w.Next())
		} else {
			batch := w.Buffered()
			if len(batch) == 0 {
				t.Fatalf("Buffered returned an empty non-nil batch")
			}
			k := 1 + ops.Intn(len(batch))
			got = append(got, batch[:k]...)
			w.Consume(k)
		}
		if want := got[len(got)-1].End(); w.Now() != want {
			t.Fatalf("after %d bursts: Now %v, want consumption point %v", len(got), w.Now(), want)
		}
	}
	for i := 0; i < total; i++ {
		if got[i] != base[i] {
			t.Fatalf("burst %d: batched %+v != unbatched %+v", i, got[i], base[i])
		}
	}
}

// TestLookaheadConsumeZeroAndOverrun pins Consume's edge contract: k = 0
// is a no-op that leaves the consumption point untouched, and consuming
// past the buffered batch panics rather than silently desynchronizing.
func TestLookaheadConsumeZeroAndOverrun(t *testing.T) {
	w := NewWindowed(DefaultTable(), ConstantUtilization(0.5), 0, stats.NewRNG(3))
	w.SetLookahead(8)
	b := w.Next()
	w.Consume(0)
	if w.Now() != b.End() {
		t.Fatalf("Consume(0) moved the consumption point: %v != %v", w.Now(), b.End())
	}
	batch := w.Buffered()
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("Consume past the batch did not panic")
			}
		}()
		w.Consume(len(batch) + 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("negative Consume did not panic")
			}
		}()
		w.Consume(-1)
	}()
}

// TestLookaheadSeekToPanics: a lookahead stream's RNG has already drawn
// past the consumption point, so it cannot be rewound — SeekTo must
// panic instead of silently replaying or skipping draws.
func TestLookaheadSeekToPanics(t *testing.T) {
	w := NewWindowed(DefaultTable(), ConstantUtilization(0.5), 0, stats.NewRNG(1))
	w.SetLookahead(4)
	defer func() {
		if recover() == nil {
			t.Errorf("SeekTo on a lookahead stream did not panic")
		}
	}()
	w.SeekTo(10)
}

// TestSetLookaheadAfterStartPanics: enabling batching after the first
// burst has been handed out would desynchronize the drawn and handed-out
// positions.
func TestSetLookaheadAfterStartPanics(t *testing.T) {
	w := NewWindowed(DefaultTable(), ConstantUtilization(0.5), 0, stats.NewRNG(1))
	w.Next()
	defer func() {
		if recover() == nil {
			t.Errorf("SetLookahead after the stream started did not panic")
		}
	}()
	w.SetLookahead(4)
}

// TestSetLookaheadNonPositiveDisables: n <= 0 leaves the stream unbatched
// (Buffered reports nil) and seekable.
func TestSetLookaheadNonPositiveDisables(t *testing.T) {
	w := NewWindowed(DefaultTable(), ConstantUtilization(0.5), 0, stats.NewRNG(1))
	w.SetLookahead(0)
	if w.Buffered() != nil {
		t.Errorf("lookahead 0: Buffered not nil")
	}
	w.SeekTo(4) // must not panic
	w2 := NewWindowed(DefaultTable(), ConstantUtilization(0.5), 0, stats.NewRNG(1))
	w2.SetLookahead(-3)
	if w2.Buffered() != nil {
		t.Errorf("negative lookahead: Buffered not nil")
	}
}

// TestFillMatchesSequentialDraws: the batched FillRuns/FillIdles forms
// must consume the RNG exactly like the equivalent sequence of NextRun /
// NextIdle calls, for mixed and degenerate (pure idle / pure busy)
// levels.
func TestFillMatchesSequentialDraws(t *testing.T) {
	table := DefaultTable()
	for _, u := range []float64{0, 0.4, 1} {
		seq := NewGenerator(table, u, stats.NewRNG(11))
		bat := NewGenerator(table, u, stats.NewRNG(11))
		var want [64]float64
		for i := range want {
			want[i] = seq.NextRun()
		}
		var got [64]float64
		bat.FillRuns(got[:])
		if got != want {
			t.Fatalf("u=%g: FillRuns diverged from sequential NextRun", u)
		}
		// The two generators' RNGs are now aligned again; repeat for idles
		// to check the batch leaves the stream in the same state.
		for i := range want {
			want[i] = seq.NextIdle()
		}
		bat.FillIdles(got[:])
		if got != want {
			t.Fatalf("u=%g: FillIdles diverged from sequential NextIdle", u)
		}
	}
}

// FuzzLookaheadPrefixIdentity fuzzes the lookahead identity over seed,
// batch size and a two-level utilization pattern: any lookahead stream
// must reproduce the unbatched burst sequence exactly.
func FuzzLookaheadPrefixIdentity(f *testing.F) {
	f.Add(int64(1), 8, 0.5, 0.0)
	f.Add(int64(42), 1, 0.0, 1.0)
	f.Add(int64(7), 64, 0.9, 0.2)
	f.Add(int64(-3), 300, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, seed int64, lookahead int, u1, u2 float64) {
		if lookahead < 1 || lookahead > 4096 {
			t.Skip()
		}
		clamp := func(u float64) float64 {
			if !(u >= 0) {
				return 0
			}
			if u > 1 {
				return 1
			}
			return u
		}
		src := steppedSource{clamp(u1), clamp(u2)}
		base := collect(t, src, seed, 0, 200)
		got := collect(t, src, seed, lookahead, 200)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("lookahead %d: burst %d = %+v, unbatched %+v", lookahead, i, got[i], base[i])
			}
		}
	})
}
