package workload

import "lingerlonger/internal/stats"

// sampler draws one burst-duration family without going through the
// stats.Distribution interface: the node burst loop samples millions of
// times per simulated hour, and devirtualizing the call is free speed.
// The arithmetic is exactly HyperExp2.Sample's (same draws, same order,
// same operations), so replacing the interface changed no figure output.
type sampler struct {
	zero bool // pure-idle / pure-busy level: the duration is always 0
	h    stats.HyperExp2
}

// newSampler mirrors the old fitOrZero: a zero mean selects the
// degenerate always-zero sampler, anything else the method-of-moments
// hyperexponential fit.
func newSampler(mean, variance float64) sampler {
	if mean == 0 {
		return sampler{zero: true}
	}
	return sampler{h: stats.MustFitHyperExp2(mean, variance)}
}

// sample draws one duration. A zero sampler draws nothing from rng,
// exactly like the stats.Deterministic zero value it replaces.
func (s *sampler) sample(rng *stats.RNG) float64 {
	if s.zero {
		return 0
	}
	return s.h.Sample(rng)
}

// fill draws len(dst) durations in one tight loop — the batched form the
// figure-CDF sampling and the windowed prefetcher use to amortize
// per-draw call overhead. The variate stream is identical to len(dst)
// sample calls.
func (s *sampler) fill(dst []float64, rng *stats.RNG) {
	if s.zero {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	s.h.SampleInto(dst, rng)
}

// Generator produces alternating run and idle bursts for a single
// utilization level. It samples from the hyperexponential fits of the
// level's parameters, mirroring the paper's simulator input.
//
// A Generator is bound to one utilization; the cluster simulator creates a
// fresh Generator whenever a node's coarse-grain window changes level (see
// Windowed).
type Generator struct {
	params Params
	run    sampler
	idle   sampler
	rng    *stats.RNG
}

// NewGenerator returns a burst generator for utilization u drawn from
// table, using rng for sampling.
func NewGenerator(table *Table, u float64, rng *stats.RNG) *Generator {
	g := makeGenerator(table, u, rng)
	return &g
}

// makeGenerator is NewGenerator without the heap allocation: Windowed
// embeds the generator by value because it replaces it on every window
// roll (once per node per two simulated seconds in the cluster loop).
func makeGenerator(table *Table, u float64, rng *stats.RNG) Generator {
	p := table.ParamsAt(u)
	return Generator{
		params: p,
		run:    newSampler(p.RunMean, p.RunVar),
		idle:   newSampler(p.IdleMean, p.IdleVar),
		rng:    rng,
	}
}

// Params returns the parameters the generator samples from.
func (g *Generator) Params() Params { return g.params }

// NextRun draws the next run-burst duration in seconds (0 when the level is
// pure idle).
func (g *Generator) NextRun() float64 { return g.run.sample(g.rng) }

// NextIdle draws the next idle-burst duration in seconds (0 when the level
// is pure busy).
func (g *Generator) NextIdle() float64 { return g.idle.sample(g.rng) }

// FillRuns fills dst with consecutive run-burst draws. The variate stream
// is identical to calling NextRun len(dst) times; the batch form amortizes
// per-draw overhead for CDF sampling and benchmarks.
func (g *Generator) FillRuns(dst []float64) { g.run.fill(dst, g.rng) }

// FillIdles fills dst with consecutive idle-burst draws, the batched
// NextIdle.
func (g *Generator) FillIdles(dst []float64) { g.idle.fill(dst, g.rng) }

// Cycle draws one (run, idle) pair. A long sequence of cycles has expected
// utilization equal to the generator's level.
func (g *Generator) Cycle() (run, idle float64) {
	return g.NextRun(), g.NextIdle()
}

// UtilizationSource supplies a coarse-grain utilization level for each
// point in time; the synthetic traces in internal/trace implement it.
type UtilizationSource interface {
	// UtilizationAt returns the local CPU utilization in [0, 1] at time t
	// seconds.
	UtilizationAt(t float64) float64
}

// ConstantUtilization is a UtilizationSource with a fixed level.
type ConstantUtilization float64

// UtilizationAt returns the fixed level.
func (c ConstantUtilization) UtilizationAt(float64) float64 { return float64(c) }

// Burst is one segment of processor time.
type Burst struct {
	Start    float64
	Duration float64
	Run      bool // true when local processes occupy the CPU
}

// End returns Start+Duration.
func (b Burst) End() float64 { return b.Start + b.Duration }

// Windowed composes a coarse-grain utilization source with the fine-grain
// burst model: it regenerates burst parameters every window (the paper's
// two-second granularity) and produces a continuous run/idle sequence.
// This is the "Local Workload Generator" box of Figure 6.
//
// Bursts alternate run/idle continuously across window boundaries. A burst
// drawn near the end of a window may overrun into the next one; the level
// changes take effect from the following draw. Burst durations (tens of
// milliseconds) are small against the window (two seconds), so the overrun
// bias is negligible.
type Windowed struct {
	table      *Table
	source     UtilizationSource
	windowSize float64
	rng        *stats.RNG

	now       float64 // generator cursor: end of the latest drawn burst
	windowEnd float64
	gen       Generator // by value: replaced every window roll
	runNext   bool

	// Lookahead state (SetLookahead). The buffer holds bursts already
	// drawn but not yet handed out; consumed trails now by up to a
	// buffer's worth of bursts.
	buf      []Burst
	bufPos   int
	consumed float64
}

// DefaultWindow is the coarse-grain trace granularity, seconds.
const DefaultWindow = 2.0

// NewWindowed returns a windowed generator starting at time 0. windowSize
// <= 0 selects DefaultWindow.
func NewWindowed(table *Table, source UtilizationSource, windowSize float64, rng *stats.RNG) *Windowed {
	if windowSize <= 0 {
		windowSize = DefaultWindow
	}
	w := &Windowed{
		table:      table,
		source:     source,
		windowSize: windowSize,
		rng:        rng,
		runNext:    true,
	}
	w.roll()
	return w
}

// SetLookahead makes Next draw bursts in batches of n, amortizing the
// per-burst sampling overhead for consumers that walk the stream strictly
// linearly (the Figure 5 single-node sweep, benchmarks). The burst values
// are identical to the unbatched stream — prefetching runs the same
// deterministic draw sequence, just earlier — but the stream's RNG sits
// up to n bursts ahead of the consumption point at any instant, so a
// lookahead stream cannot be rewound: SeekTo panics. Callers that share
// the RNG with other draws, or that seek (the cluster simulator), must
// not enable lookahead. n <= 0 disables batching; enabling lookahead
// after the first Next also panics, because the handed-out and drawn
// positions have already diverged.
func (w *Windowed) SetLookahead(n int) {
	if w.now != 0 || len(w.buf) != 0 {
		panic("workload: SetLookahead after the stream started")
	}
	if n <= 0 {
		w.buf = nil
		return
	}
	w.buf = make([]Burst, 0, n)
}

// roll opens the window containing w.now.
func (w *Windowed) roll() {
	idx := int(w.now / w.windowSize)
	w.windowEnd = float64(idx+1) * w.windowSize
	u := w.source.UtilizationAt(w.now)
	w.gen = makeGenerator(w.table, u, w.rng)
}

// Now returns the stream's current virtual time: the end of the last
// burst returned by Next. (With lookahead enabled the internal draw
// cursor runs ahead of this; Now always reports the consumption point.)
func (w *Windowed) Now() float64 {
	if w.buf != nil {
		return w.consumed
	}
	return w.now
}

// SeekTo fast-forwards the stream to time t without generating the
// intervening bursts; the cluster simulator uses it when a node has no
// foreign job and its fine-grain activity is irrelevant. Seeking backwards
// panics, as does seeking a lookahead stream (whose RNG has already drawn
// past the consumption point — see SetLookahead).
func (w *Windowed) SeekTo(t float64) {
	if w.buf != nil {
		panic("workload: SeekTo on a lookahead stream")
	}
	if t < w.now {
		panic("workload: SeekTo backwards")
	}
	w.now = t
	w.runNext = true
	w.roll()
}

// Utilization returns the level of the current window. With lookahead
// enabled this is the prefetcher's window, which may be ahead of the
// burst most recently returned by Next.
func (w *Windowed) Utilization() float64 { return w.gen.params.Utilization }

// Next returns the next burst in the stream. Duration is always positive.
// Pure-idle and pure-busy windows yield a single burst spanning the rest of
// the window.
func (w *Windowed) Next() Burst {
	if w.buf == nil {
		return w.drawNext()
	}
	if w.bufPos == len(w.buf) {
		w.refill()
	}
	b := w.buf[w.bufPos]
	w.bufPos++
	w.consumed = b.End()
	return b
}

// refill redraws a full lookahead batch. Only called with an empty buffer.
func (w *Windowed) refill() {
	w.buf = w.buf[:0]
	w.bufPos = 0
	for len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, w.drawNext())
	}
}

// Buffered returns the prefetched bursts not yet handed out, refilling the
// batch when it is empty, or nil when lookahead is disabled. The slice
// aliases the internal buffer and is valid until the next Next, Buffered
// or Consume call; callers must not modify it. Together with Consume it is
// the zero-call batch form of Next: the node hot loop walks the slice
// directly instead of paying one call and one buffer-position update per
// burst.
func (w *Windowed) Buffered() []Burst {
	if w.buf == nil {
		return nil
	}
	if w.bufPos == len(w.buf) {
		w.refill()
	}
	return w.buf[w.bufPos:]
}

// Consume marks the first k bursts of the latest Buffered slice as handed
// out, exactly as if they had been returned by k Next calls. It panics if
// k overruns the buffer.
func (w *Windowed) Consume(k int) {
	if k == 0 {
		return
	}
	if k < 0 || w.bufPos+k > len(w.buf) {
		panic("workload: Consume past the buffered batch")
	}
	w.bufPos += k
	w.consumed = w.buf[w.bufPos-1].End()
}

// drawNext generates one burst at the draw cursor. This is the exact
// pre-lookahead Next: the boundary snap, the pure-level shortcuts, the
// alternation parity and the zero-draw skip are all unchanged, so the
// draw sequence — and with it every figure — is identical whether bursts
// are pulled one at a time or prefetched.
func (w *Windowed) drawNext() Burst {
	for {
		if w.windowEnd-w.now <= 1e-9 {
			// Snap forward onto an exact boundary, never backwards: a
			// burst may have overrun the window end.
			if w.now < w.windowEnd {
				w.now = w.windowEnd
			}
			w.roll()
		}
		p := w.gen.params
		if p.PureIdle() {
			b := Burst{Start: w.now, Duration: w.windowEnd - w.now, Run: false}
			w.now = w.windowEnd
			w.runNext = true
			return b
		}
		if p.PureBusy() {
			b := Burst{Start: w.now, Duration: w.windowEnd - w.now, Run: true}
			w.now = w.windowEnd
			w.runNext = false
			return b
		}
		var d float64
		run := w.runNext
		if run {
			d = w.gen.NextRun()
		} else {
			d = w.gen.NextIdle()
		}
		w.runNext = !w.runNext
		if d <= 1e-12 {
			continue // zero-length draw: skip, keep alternating
		}
		b := Burst{Start: w.now, Duration: d, Run: run}
		w.now += d
		return b
	}
}
