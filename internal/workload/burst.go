package workload

import "lingerlonger/internal/stats"

// Generator produces alternating run and idle bursts for a single
// utilization level. It samples from the hyperexponential fits of the
// level's parameters, mirroring the paper's simulator input.
//
// A Generator is bound to one utilization; the cluster simulator creates a
// fresh Generator whenever a node's coarse-grain window changes level (see
// Windowed).
type Generator struct {
	params Params
	run    stats.Distribution
	idle   stats.Distribution
	rng    *stats.RNG
}

// NewGenerator returns a burst generator for utilization u drawn from
// table, using rng for sampling.
func NewGenerator(table *Table, u float64, rng *stats.RNG) *Generator {
	p := table.ParamsAt(u)
	return &Generator{
		params: p,
		run:    fitOrZero(p.RunMean, p.RunVar),
		idle:   fitOrZero(p.IdleMean, p.IdleVar),
		rng:    rng,
	}
}

// Params returns the parameters the generator samples from.
func (g *Generator) Params() Params { return g.params }

// NextRun draws the next run-burst duration in seconds (0 when the level is
// pure idle).
func (g *Generator) NextRun() float64 { return g.run.Sample(g.rng) }

// NextIdle draws the next idle-burst duration in seconds (0 when the level
// is pure busy).
func (g *Generator) NextIdle() float64 { return g.idle.Sample(g.rng) }

// Cycle draws one (run, idle) pair. A long sequence of cycles has expected
// utilization equal to the generator's level.
func (g *Generator) Cycle() (run, idle float64) {
	return g.NextRun(), g.NextIdle()
}

// UtilizationSource supplies a coarse-grain utilization level for each
// point in time; the synthetic traces in internal/trace implement it.
type UtilizationSource interface {
	// UtilizationAt returns the local CPU utilization in [0, 1] at time t
	// seconds.
	UtilizationAt(t float64) float64
}

// ConstantUtilization is a UtilizationSource with a fixed level.
type ConstantUtilization float64

// UtilizationAt returns the fixed level.
func (c ConstantUtilization) UtilizationAt(float64) float64 { return float64(c) }

// Burst is one segment of processor time.
type Burst struct {
	Start    float64
	Duration float64
	Run      bool // true when local processes occupy the CPU
}

// End returns Start+Duration.
func (b Burst) End() float64 { return b.Start + b.Duration }

// Windowed composes a coarse-grain utilization source with the fine-grain
// burst model: it regenerates burst parameters every window (the paper's
// two-second granularity) and produces a continuous run/idle sequence.
// This is the "Local Workload Generator" box of Figure 6.
//
// Bursts alternate run/idle continuously across window boundaries. A burst
// drawn near the end of a window may overrun into the next one; the level
// changes take effect from the following draw. Burst durations (tens of
// milliseconds) are small against the window (two seconds), so the overrun
// bias is negligible.
type Windowed struct {
	table      *Table
	source     UtilizationSource
	windowSize float64
	rng        *stats.RNG

	now       float64 // current virtual time within the burst stream
	windowEnd float64
	gen       *Generator
	runNext   bool
}

// DefaultWindow is the coarse-grain trace granularity, seconds.
const DefaultWindow = 2.0

// NewWindowed returns a windowed generator starting at time 0. windowSize
// <= 0 selects DefaultWindow.
func NewWindowed(table *Table, source UtilizationSource, windowSize float64, rng *stats.RNG) *Windowed {
	if windowSize <= 0 {
		windowSize = DefaultWindow
	}
	w := &Windowed{
		table:      table,
		source:     source,
		windowSize: windowSize,
		rng:        rng,
		runNext:    true,
	}
	w.roll()
	return w
}

// roll opens the window containing w.now.
func (w *Windowed) roll() {
	idx := int(w.now / w.windowSize)
	w.windowEnd = float64(idx+1) * w.windowSize
	u := w.source.UtilizationAt(w.now)
	w.gen = NewGenerator(w.table, u, w.rng)
}

// Now returns the stream's current virtual time.
func (w *Windowed) Now() float64 { return w.now }

// SeekTo fast-forwards the stream to time t without generating the
// intervening bursts; the cluster simulator uses it when a node has no
// foreign job and its fine-grain activity is irrelevant. Seeking backwards
// panics.
func (w *Windowed) SeekTo(t float64) {
	if t < w.now {
		panic("workload: SeekTo backwards")
	}
	w.now = t
	w.runNext = true
	w.roll()
}

// Utilization returns the level of the current window.
func (w *Windowed) Utilization() float64 { return w.gen.params.Utilization }

// Next returns the next burst in the stream. Duration is always positive.
// Pure-idle and pure-busy windows yield a single burst spanning the rest of
// the window.
func (w *Windowed) Next() Burst {
	for {
		if w.windowEnd-w.now <= 1e-9 {
			// Snap forward onto an exact boundary, never backwards: a
			// burst may have overrun the window end.
			if w.now < w.windowEnd {
				w.now = w.windowEnd
			}
			w.roll()
		}
		p := w.gen.params
		if p.PureIdle() {
			b := Burst{Start: w.now, Duration: w.windowEnd - w.now, Run: false}
			w.now = w.windowEnd
			w.runNext = true
			return b
		}
		if p.PureBusy() {
			b := Burst{Start: w.now, Duration: w.windowEnd - w.now, Run: true}
			w.now = w.windowEnd
			w.runNext = false
			return b
		}
		var d float64
		run := w.runNext
		if run {
			d = w.gen.NextRun()
		} else {
			d = w.gen.NextIdle()
		}
		w.runNext = !w.runNext
		if d <= 1e-12 {
			continue // zero-length draw: skip, keep alternating
		}
		b := Burst{Start: w.now, Duration: d, Run: run}
		w.now += d
		return b
	}
}
