package workload

import (
	"math"
	"testing"

	"lingerlonger/internal/stats"
)

func TestGeneratorMoments(t *testing.T) {
	table := DefaultTable()
	rng := stats.NewRNG(1)
	for _, u := range []float64{0.1, 0.3, 0.5, 0.8} {
		gen := NewGenerator(table, u, rng)
		p := gen.Params()
		var runW, idleW stats.Welford
		for i := 0; i < 100000; i++ {
			runW.Add(gen.NextRun())
			idleW.Add(gen.NextIdle())
		}
		if math.Abs(runW.Mean()-p.RunMean)/p.RunMean > 0.03 {
			t.Errorf("u=%g: run mean %g, want %g", u, runW.Mean(), p.RunMean)
		}
		if math.Abs(idleW.Mean()-p.IdleMean)/p.IdleMean > 0.03 {
			t.Errorf("u=%g: idle mean %g, want %g", u, idleW.Mean(), p.IdleMean)
		}
		if math.Abs(runW.Var()-p.RunVar)/p.RunVar > 0.10 {
			t.Errorf("u=%g: run var %g, want %g", u, runW.Var(), p.RunVar)
		}
	}
}

func TestMeasuredUtilizationTracksLevel(t *testing.T) {
	table := DefaultTable()
	for _, u := range []float64{0.05, 0.1, 0.2, 0.5, 0.7, 0.9} {
		got := MeasuredUtilization(table, u, 5000, stats.NewRNG(int64(u*1000)))
		if math.Abs(got-u) > 0.03 {
			t.Errorf("MeasuredUtilization(%g) = %g, want within 0.03", u, got)
		}
	}
}

func TestWindowedPureIdleAndBusy(t *testing.T) {
	table := DefaultTable()
	w := NewWindowed(table, ConstantUtilization(0), 2, stats.NewRNG(2))
	b := w.Next()
	if b.Run || b.Duration != 2 {
		t.Errorf("pure idle burst = %+v, want 2s idle", b)
	}
	w2 := NewWindowed(table, ConstantUtilization(1), 2, stats.NewRNG(2))
	b2 := w2.Next()
	if !b2.Run || b2.Duration != 2 {
		t.Errorf("pure busy burst = %+v, want 2s run", b2)
	}
}

func TestWindowedContinuity(t *testing.T) {
	table := DefaultTable()
	w := NewWindowed(table, ConstantUtilization(0.3), 2, stats.NewRNG(3))
	prevEnd := 0.0
	prevRun := false
	first := true
	for i := 0; i < 5000; i++ {
		b := w.Next()
		if b.Duration <= 0 {
			t.Fatalf("non-positive burst duration: %+v", b)
		}
		if math.Abs(b.Start-prevEnd) > 1e-9 {
			t.Fatalf("burst %d not contiguous: start %g, prev end %g", i, b.Start, prevEnd)
		}
		if !first && b.Run == prevRun {
			t.Fatalf("burst %d does not alternate: %+v after run=%v", i, b, prevRun)
		}
		prevEnd = b.End()
		prevRun = b.Run
		first = false
	}
}

// A step-function source: utilization jumps from 0.1 to 0.9 at t=100. The
// generated stream must follow within a window.
type stepSource struct{ at float64 }

func (s stepSource) UtilizationAt(t float64) float64 {
	if t < s.at {
		return 0.1
	}
	return 0.9
}

func TestWindowedFollowsSource(t *testing.T) {
	table := DefaultTable()
	w := NewWindowed(table, stepSource{at: 100}, 2, stats.NewRNG(4))
	var lowRun, lowTotal, highRun, highTotal float64
	for w.Now() < 200 {
		b := w.Next()
		mid := b.Start + b.Duration/2
		switch {
		case mid < 98: // clear of the boundary
			lowTotal += b.Duration
			if b.Run {
				lowRun += b.Duration
			}
		case mid > 102:
			highTotal += b.Duration
			if b.Run {
				highRun += b.Duration
			}
		}
	}
	lowU := lowRun / lowTotal
	highU := highRun / highTotal
	if math.Abs(lowU-0.1) > 0.05 {
		t.Errorf("low-phase utilization = %g, want ~0.1", lowU)
	}
	if math.Abs(highU-0.9) > 0.05 {
		t.Errorf("high-phase utilization = %g, want ~0.9", highU)
	}
}

func TestFig2CurvesMatch(t *testing.T) {
	// The paper: "The curves almost exactly match in run and idle burst
	// distributions." Samples drawn from the fit must agree with the fit.
	table := DefaultTable()
	series := Fig2(table, []float64{0.1, 0.5}, 20000, stats.NewRNG(5))
	if len(series) != 4 {
		t.Fatalf("Fig2 produced %d series, want 4 (run+idle at 10%% and 50%%)", len(series))
	}
	for _, s := range series {
		if s.KSDistance > 0.02 {
			t.Errorf("u=%g run=%v: KS distance %g, want < 0.02", s.Utilization, s.Run, s.KSDistance)
		}
		if len(s.Points) == 0 {
			t.Errorf("u=%g run=%v: no points", s.Utilization, s.Run)
		}
		prev := -1.0
		for _, p := range s.Points {
			if p.Empirical < prev-1e-9 {
				t.Fatalf("u=%g run=%v: empirical CDF not monotone", s.Utilization, s.Run)
			}
			prev = p.Empirical
			if p.Fitted < 0 || p.Fitted > 1 {
				t.Fatalf("fitted CDF out of range: %+v", p)
			}
		}
	}
}

func TestFig3RowsMatchTable(t *testing.T) {
	table := DefaultTable()
	rows := Fig3(table)
	if len(rows) != table.NumBuckets() {
		t.Fatalf("Fig3 rows = %d, want %d", len(rows), table.NumBuckets())
	}
	for i, r := range rows {
		b := table.Buckets()[i]
		if r.RunMean != b.RunMean || r.IdleMean != b.IdleMean {
			t.Errorf("row %d diverges from table", i)
		}
	}
}
