package workload

import (
	"math"
	"testing"

	"lingerlonger/internal/stats"
)

func TestWithSquaredCV(t *testing.T) {
	table := DefaultTable().WithSquaredCV(1, 1)
	if err := table.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, b := range table.Buckets() {
		if b.RunMean > 0 {
			if cv := b.RunVar / (b.RunMean * b.RunMean); math.Abs(cv-1) > 1e-9 {
				t.Errorf("u=%g: run CV^2 = %g, want 1", b.Utilization, cv)
			}
		}
		if b.IdleMean > 0 {
			if cv := b.IdleVar / (b.IdleMean * b.IdleMean); math.Abs(cv-1) > 1e-9 {
				t.Errorf("u=%g: idle CV^2 = %g, want 1", b.Utilization, cv)
			}
		}
	}
	// Means unchanged.
	orig := DefaultTable()
	for i, b := range table.Buckets() {
		if b.RunMean != orig.Buckets()[i].RunMean {
			t.Errorf("WithSquaredCV changed a mean at bucket %d", i)
		}
	}
}

func TestWithSquaredCVDoesNotMutateOriginal(t *testing.T) {
	orig := DefaultTable()
	before := orig.Buckets()[10].RunVar
	orig.WithSquaredCV(3, 3)
	if orig.Buckets()[10].RunVar != before {
		t.Error("WithSquaredCV mutated the receiver")
	}
}

func TestScaled(t *testing.T) {
	table := DefaultTable().Scaled(0.5)
	if err := table.Validate(); err != nil {
		t.Fatal(err)
	}
	orig := DefaultTable()
	for i, b := range table.Buckets() {
		ob := orig.Buckets()[i]
		if math.Abs(b.RunMean-0.5*ob.RunMean) > 1e-12 {
			t.Errorf("bucket %d run mean not halved", i)
		}
		if math.Abs(b.RunVar-0.25*ob.RunVar) > 1e-12 {
			t.Errorf("bucket %d run var not quartered", i)
		}
	}
	// Utilization identity preserved: scaling both means keeps the ratio.
	gen := MeasuredUtilization(table, 0.3, 2000, stats.NewRNG(9))
	if math.Abs(gen-0.3) > 0.03 {
		t.Errorf("scaled table utilization = %g, want 0.3", gen)
	}
}

func TestScaledPanicsOnBadFactor(t *testing.T) {
	for _, f := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Scaled(%g) did not panic", f)
				}
			}()
			DefaultTable().Scaled(f)
		}()
	}
}

func TestSeekTo(t *testing.T) {
	w := NewWindowed(DefaultTable(), ConstantUtilization(0.3), 2, stats.NewRNG(10))
	w.SeekTo(101)
	if w.Now() != 101 {
		t.Errorf("Now() = %g after SeekTo(101)", w.Now())
	}
	b := w.Next()
	if b.Start < 101 {
		t.Errorf("burst starts at %g, before the seek point", b.Start)
	}
	defer func() {
		if recover() == nil {
			t.Error("backwards SeekTo did not panic")
		}
	}()
	w.SeekTo(50)
}
