package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultTableValidates(t *testing.T) {
	if err := DefaultTable().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultTableShape(t *testing.T) {
	table := DefaultTable()
	buckets := table.Buckets()
	if len(buckets) != 21 {
		t.Fatalf("buckets = %d, want 21 (the paper's count)", len(buckets))
	}
	// Figure 3 top-left: run burst mean grows monotonically with
	// utilization, reaching 0.25 s at 100%.
	prev := -1.0
	for _, b := range buckets[1:] {
		if b.RunMean <= prev {
			t.Fatalf("run mean not increasing at u=%g: %g <= %g", b.Utilization, b.RunMean, prev)
		}
		prev = b.RunMean
	}
	last := buckets[len(buckets)-1]
	if math.Abs(last.RunMean-0.25) > 1e-9 {
		t.Errorf("run mean at 100%% = %g, want 0.25 (Figure 3)", last.RunMean)
	}
	if math.Abs(last.RunVar-0.0875) > 0.02 {
		t.Errorf("run variance at 100%% = %g, want ~0.09 (Figure 3)", last.RunVar)
	}
	// Idle burst mean decreases toward 0 at full utilization.
	for i := 2; i < len(buckets)-1; i++ {
		if buckets[i].IdleMean >= buckets[i-1].IdleMean {
			t.Fatalf("idle mean not decreasing at u=%g", buckets[i].Utilization)
		}
	}
	if last.IdleMean != 0 {
		t.Errorf("idle mean at 100%% = %g, want 0", last.IdleMean)
	}
	if buckets[0].RunMean != 0 {
		t.Errorf("run mean at 0%% = %g, want 0", buckets[0].RunMean)
	}
}

func TestParamsAtBucketPoints(t *testing.T) {
	table := DefaultTable()
	for _, b := range table.Buckets()[1:20] {
		p := table.ParamsAt(b.Utilization)
		if math.Abs(p.RunMean-b.RunMean) > 1e-9 {
			t.Errorf("ParamsAt(%g).RunMean = %g, want bucket value %g", b.Utilization, p.RunMean, b.RunMean)
		}
		if math.Abs(p.IdleMean-b.IdleMean) > 1e-9 {
			t.Errorf("ParamsAt(%g).IdleMean = %g, want bucket value %g", b.Utilization, p.IdleMean, b.IdleMean)
		}
	}
}

func TestParamsAtUtilizationIdentity(t *testing.T) {
	table := DefaultTable()
	for u := 0.02; u < 0.99; u += 0.013 {
		p := table.ParamsAt(u)
		implied := p.RunMean / (p.RunMean + p.IdleMean)
		if math.Abs(implied-u) > 1e-9 {
			t.Errorf("ParamsAt(%g): implied utilization %g", u, implied)
		}
	}
}

func TestParamsAtExtremes(t *testing.T) {
	table := DefaultTable()
	if p := table.ParamsAt(0); !p.PureIdle() {
		t.Errorf("ParamsAt(0) not pure idle: %+v", p)
	}
	if p := table.ParamsAt(1); !p.PureBusy() {
		t.Errorf("ParamsAt(1) not pure busy: %+v", p)
	}
	if p := table.ParamsAt(-0.5); !p.PureIdle() {
		t.Errorf("ParamsAt(-0.5) not clamped to pure idle: %+v", p)
	}
	if p := table.ParamsAt(1.5); !p.PureBusy() {
		t.Errorf("ParamsAt(1.5) not clamped to pure busy: %+v", p)
	}
}

// Property: interpolated parameters are non-negative, have CV^2 >= 1 where
// defined, and run mean is monotone in u.
func TestParamsAtQuick(t *testing.T) {
	table := DefaultTable()
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw%990+5) / 1000 // [0.005, 0.995)
		b := float64(bRaw%990+5) / 1000
		if a > b {
			a, b = b, a
		}
		pa, pb := table.ParamsAt(a), table.ParamsAt(b)
		if pa.RunMean < 0 || pa.IdleMean < 0 || pa.RunVar < 0 || pa.IdleVar < 0 {
			return false
		}
		if pa.RunMean > pb.RunMean+1e-12 {
			return false
		}
		if pa.RunMean > 0 && pa.RunVar < pa.RunMean*pa.RunMean*0.999 {
			return false
		}
		if pa.IdleMean > 0 && pa.IdleVar < pa.IdleMean*pa.IdleMean*0.999 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBrokenTables(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Table)
		wantErr bool
	}{
		{"default", func(*Table) {}, false},
		{"descending", func(tb *Table) { tb.buckets[3].Utilization = 0.9 }, true},
		{"negative mean", func(tb *Table) { tb.buckets[3].RunMean = -1 }, true},
		{"identity broken", func(tb *Table) { tb.buckets[10].IdleMean *= 3 }, true},
		{"low CV", func(tb *Table) { tb.buckets[10].RunVar = 1e-9 }, true},
	}
	for _, tc := range cases {
		tb := DefaultTable()
		tc.mutate(tb)
		err := tb.Validate()
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: Validate() = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}
}
