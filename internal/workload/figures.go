package workload

import "lingerlonger/internal/stats"

// Fig2Point is one x-position on a Figure 2 CDF plot: the empirical CDF of
// sampled burst durations against the fitted hyperexponential CDF.
type Fig2Point struct {
	Time      float64 // burst duration, seconds
	Empirical float64 // empirical cumulative frequency
	Fitted    float64 // hyperexponential model CDF
}

// Fig2Series is one panel of Figure 2 (one burst kind at one utilization).
type Fig2Series struct {
	Utilization float64
	Run         bool // true for run bursts, false for idle bursts
	Points      []Fig2Point
	KSDistance  float64 // max |empirical - fitted|, the "curves match" check
}

// Fig2 reproduces Figure 2: for each requested utilization level it samples
// run and idle bursts, builds their empirical CDFs over [0, 0.1] s, and
// overlays the method-of-moments hyperexponential fit. samples bursts are
// drawn per series.
func Fig2(table *Table, utils []float64, samples int, rng *stats.RNG) []Fig2Series {
	var out []Fig2Series
	for _, u := range utils {
		gen := NewGenerator(table, u, rng)
		p := gen.Params()
		for _, run := range []bool{true, false} {
			// Batched draws: same variate stream as a NextRun/NextIdle
			// loop, without the per-draw call overhead.
			xs := make([]float64, samples)
			if run {
				gen.FillRuns(xs)
			} else {
				gen.FillIdles(xs)
			}
			var model stats.Distribution
			if run {
				model = fitOrZero(p.RunMean, p.RunVar)
			} else {
				model = fitOrZero(p.IdleMean, p.IdleVar)
			}
			cdf := func(x float64) float64 {
				if h, ok := model.(stats.HyperExp2); ok {
					return h.CDF(x)
				}
				if x >= 0 {
					return 1
				}
				return 0
			}
			e := stats.NewECDF(xs)
			series := Fig2Series{Utilization: u, Run: run, KSDistance: e.MaxAbsDiff(cdf)}
			// Figure 2's x-axis spans 0..0.1 s in 0.01 steps; sample finer.
			const steps = 50
			for i := 0; i <= steps; i++ {
				x := 0.1 * float64(i) / steps
				series.Points = append(series.Points, Fig2Point{
					Time:      x,
					Empirical: e.At(x),
					Fitted:    cdf(x),
				})
			}
			out = append(out, series)
		}
	}
	return out
}

// Fig3Row is one utilization level of Figure 3: the four workload parameter
// curves (run/idle burst mean and variance).
type Fig3Row struct {
	Utilization float64
	RunMean     float64
	RunVar      float64
	IdleMean    float64
	IdleVar     float64
}

// Fig3 reproduces Figure 3 from the calibration table: the burst parameters
// as a function of processor utilization, one row per bucket.
func Fig3(table *Table) []Fig3Row {
	buckets := table.Buckets()
	rows := make([]Fig3Row, len(buckets))
	for i, b := range buckets {
		rows[i] = Fig3Row{
			Utilization: b.Utilization,
			RunMean:     b.RunMean,
			RunVar:      b.RunVar,
			IdleMean:    b.IdleMean,
			IdleVar:     b.IdleVar,
		}
	}
	return rows
}

// MeasuredUtilization runs the generator at level u for approximately dur
// seconds of bursts and returns the realized utilization (run time over
// total time). It is the empirical check that the generator honours its
// level.
func MeasuredUtilization(table *Table, u, dur float64, rng *stats.RNG) float64 {
	w := NewWindowed(table, ConstantUtilization(u), 0, rng)
	var run, total float64
	for total < dur {
		b := w.Next()
		total += b.Duration
		if b.Run {
			run += b.Duration
		}
	}
	if total == 0 {
		return 0
	}
	return run / total
}
