package workload

import (
	"testing"

	"lingerlonger/internal/stats"
)

// The burst stream is the inner loop of every node simulation, so its
// sampling overhead multiplies into each figure. These benchmarks compare
// the one-at-a-time path against the lookahead (batched) path the Figure 5
// sweep uses; the streams produce identical values (see
// TestLookaheadStreamIdentical in variants_test.go-adjacent suites), so
// the delta is pure overhead removed.

func benchStream(b *testing.B, lookahead int) {
	w := NewWindowed(DefaultTable(), ConstantUtilization(0.5), 0, stats.NewRNG(42))
	if lookahead > 0 {
		w.SetLookahead(lookahead)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += w.Next().Duration
	}
	_ = sink
}

func BenchmarkWindowedNext(b *testing.B) {
	b.Run("unbatched", func(b *testing.B) { benchStream(b, 0) })
	b.Run("lookahead-64", func(b *testing.B) { benchStream(b, 64) })
}

// BenchmarkGeneratorFill compares per-draw sampling against the batched
// fill used by the Figure 2 CDF sampler.
func BenchmarkGeneratorFill(b *testing.B) {
	g := NewGenerator(DefaultTable(), 0.5, stats.NewRNG(7))
	buf := make([]float64, 256)
	b.Run("next-run-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range buf {
				buf[j] = g.NextRun()
			}
		}
	})
	b.Run("fill-runs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.FillRuns(buf)
		}
	})
}

// TestLookaheadStreamIdentical pins the lookahead contract: for any batch
// size, the burst sequence is byte-for-byte the unbatched one.
func TestLookaheadStreamIdentical(t *testing.T) {
	for _, n := range []int{1, 3, 64, 1000} {
		plain := NewWindowed(DefaultTable(), ConstantUtilization(0.37), 0, stats.NewRNG(99))
		ahead := NewWindowed(DefaultTable(), ConstantUtilization(0.37), 0, stats.NewRNG(99))
		ahead.SetLookahead(n)
		for i := 0; i < 20000; i++ {
			a, b := plain.Next(), ahead.Next()
			if a != b {
				t.Fatalf("lookahead %d diverges at burst %d: %+v vs %+v", n, i, a, b)
			}
			if got, want := ahead.Now(), plain.Now(); got != want {
				t.Fatalf("lookahead %d Now() = %g, unbatched %g at burst %d", n, got, want, i)
			}
		}
	}
}

// TestLookaheadGuards pins the misuse panics: seeking a lookahead stream,
// or enabling lookahead mid-stream, must fail loudly rather than silently
// desynchronize the RNG.
func TestLookaheadGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	w := NewWindowed(DefaultTable(), ConstantUtilization(0.5), 0, stats.NewRNG(1))
	w.SetLookahead(8)
	w.Next()
	mustPanic("SeekTo on lookahead stream", func() { w.SeekTo(100) })

	w2 := NewWindowed(DefaultTable(), ConstantUtilization(0.5), 0, stats.NewRNG(1))
	w2.Next()
	mustPanic("SetLookahead mid-stream", func() { w2.SetLookahead(8) })
}
