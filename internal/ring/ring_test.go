package ring

import (
	"fmt"
	"math"
	"testing"
)

// testKeys mints n deterministic cache-key-shaped strings.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("cluster:%064x", i*2654435761)
	}
	return keys
}

func mustRing(t *testing.T, members []string, vnodes int) *Ring {
	t.Helper()
	r, err := New(members, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 64); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := New([]string{"a", "a"}, 64); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := New([]string{""}, 64); err == nil {
		t.Error("empty member address accepted")
	}
	if _, err := New([]string{"a"}, -1); err == nil {
		t.Error("negative vnodes accepted")
	}
	r := mustRing(t, []string{"a"}, 0)
	if r.VNodes() != DefaultVirtualNodes {
		t.Errorf("vnodes default = %d, want %d", r.VNodes(), DefaultVirtualNodes)
	}
}

// TestRoutingIsPureFunction is the satellite property: routing is a pure
// function of (key, ring epoch). Two independently built rings over the
// same members that observe the same liveness transitions must agree on
// the owner of every key at every step — whatever order the members were
// listed in.
func TestRoutingIsPureFunction(t *testing.T) {
	members := []string{"host-c:1", "host-a:1", "host-b:1", "host-d:1"}
	reversed := []string{"host-d:1", "host-b:1", "host-a:1", "host-c:1"}
	a := mustRing(t, members, 64)
	b := mustRing(t, reversed, 64)
	if a.Digest() != b.Digest() {
		t.Fatalf("digest depends on member order: %s vs %s", a.Digest(), b.Digest())
	}
	keys := testKeys(2000)
	transitions := []struct {
		member string
		live   bool
	}{
		{"host-b:1", false},
		{"host-d:1", false},
		{"host-b:1", true},
		{"host-a:1", false},
		{"host-b:1", false},
		{"host-b:1", true},
		{"host-a:1", true},
		{"host-d:1", true},
	}
	check := func(step string) {
		t.Helper()
		if a.Epoch() != b.Epoch() {
			t.Fatalf("%s: epochs diverged: %d vs %d", step, a.Epoch(), b.Epoch())
		}
		for _, k := range keys {
			oa, oka := a.Owner(k)
			ob, okb := b.Owner(k)
			if oa != ob || oka != okb {
				t.Fatalf("%s: rings disagree on %q: %q vs %q", step, k, oa, ob)
			}
		}
	}
	check("initial")
	for i, tr := range transitions {
		a.SetLive(tr.member, tr.live)
		b.SetLive(tr.member, tr.live)
		check(fmt.Sprintf("after transition %d (%+v)", i, tr))
	}
	// Replaying the identical transition sequence on a fresh ring lands
	// on the same (epoch, owner) state: the epoch identifies the view.
	c := mustRing(t, members, 64)
	for _, tr := range transitions {
		c.SetLive(tr.member, tr.live)
	}
	if c.Epoch() != a.Epoch() {
		t.Fatalf("replayed epoch %d != live epoch %d", c.Epoch(), a.Epoch())
	}
	for _, k := range keys {
		oc, _ := c.Owner(k)
		oa, _ := a.Owner(k)
		if oc != oa {
			t.Fatalf("replayed ring disagrees on %q: %q vs %q", k, oc, oa)
		}
	}
}

// TestLeaveMovesOnlyOwnedKeys pins the consistent-hashing stability
// property exactly: when a member dies, the keys it owned fall to ring
// successors and every other key keeps its owner.
func TestLeaveMovesOnlyOwnedKeys(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	r := mustRing(t, members, 64)
	keys := testKeys(5000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatalf("no owner for %q on a fully live ring", k)
		}
		before[k] = o
	}
	dead := "c:1"
	if !r.SetLive(dead, false) {
		t.Fatal("SetLive reported no change for a live member")
	}
	moved := 0
	for _, k := range keys {
		after, _ := r.Owner(k)
		switch {
		case before[k] == dead:
			moved++
			if after == dead {
				t.Fatalf("key %q still owned by the dead member", k)
			}
		case after != before[k]:
			t.Fatalf("key %q moved %q -> %q though its owner %q stayed live",
				k, before[k], after, before[k])
		}
	}
	// The moved fraction is the dead member's share: ~1/5 of the keys,
	// with consistent-hashing variance. Bound it at 2x the fair share.
	frac := float64(moved) / float64(len(keys))
	if frac > 2.0/float64(len(members)) {
		t.Errorf("leave moved %.1f%% of keys, want <= %.1f%%", 100*frac, 200.0/float64(len(members)))
	}
	if frac == 0 {
		t.Error("leave moved no keys — the dead member owned nothing?")
	}
}

// TestJoinMovesBoundedFraction compares an N-member ring with the same
// ring plus one member: only keys claimed by the newcomer may change
// owner, and their fraction is bounded near 1/(N+1).
func TestJoinMovesBoundedFraction(t *testing.T) {
	base := []string{"a:1", "b:1", "c:1", "d:1", "e:1", "f:1", "g:1"}
	grown := append(append([]string(nil), base...), "h:1")
	small := mustRing(t, base, 64)
	big := mustRing(t, grown, 64)
	keys := testKeys(5000)
	moved := 0
	for _, k := range keys {
		o1, _ := small.Owner(k)
		o2, _ := big.Owner(k)
		if o1 != o2 {
			if o2 != "h:1" {
				t.Fatalf("join moved key %q to %q, not to the new member", k, o2)
			}
			moved++
		}
	}
	frac := float64(moved) / float64(len(keys))
	fair := 1.0 / float64(len(grown))
	if frac > 2*fair {
		t.Errorf("join moved %.1f%% of keys, want <= %.1f%%", 100*frac, 200*fair)
	}
	if moved == 0 {
		t.Error("join moved no keys — the new member owns nothing?")
	}
}

// TestBalance bounds the load imbalance virtual nodes are there to fix:
// with 128 vnodes per member, every member's share of a large key set
// stays within a factor of 2 of fair.
func TestBalance(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1"}
	r := mustRing(t, members, 128)
	keys := testKeys(20000)
	shares := map[string]int{}
	for _, k := range keys {
		o, _ := r.Owner(k)
		shares[o]++
	}
	fair := float64(len(keys)) / float64(len(members))
	for _, m := range members {
		ratio := float64(shares[m]) / fair
		if math.Abs(ratio-1) > 1.0 {
			t.Errorf("member %s share ratio %.2f, want within [0, 2] of fair", m, ratio)
		}
		if shares[m] == 0 {
			t.Errorf("member %s owns no keys", m)
		}
	}
}

func TestEpochTransitions(t *testing.T) {
	r := mustRing(t, []string{"a:1", "b:1"}, 16)
	if r.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d, want 0", r.Epoch())
	}
	if r.SetLive("a:1", true) {
		t.Error("no-op SetLive(live->live) reported a change")
	}
	if r.Epoch() != 0 {
		t.Errorf("no-op transition bumped the epoch to %d", r.Epoch())
	}
	if !r.SetLive("a:1", false) || r.Epoch() != 1 {
		t.Errorf("death transition: epoch = %d, want 1", r.Epoch())
	}
	if r.SetLive("a:1", false) {
		t.Error("no-op SetLive(dead->dead) reported a change")
	}
	if !r.SetLive("a:1", true) || r.Epoch() != 2 {
		t.Errorf("rejoin transition: epoch = %d, want 2", r.Epoch())
	}
	if r.SetLive("nobody:1", false) {
		t.Error("unknown member transition reported a change")
	}
	if !r.AdvanceEpoch(9) || r.Epoch() != 9 {
		t.Errorf("AdvanceEpoch(9): epoch = %d, want 9", r.Epoch())
	}
	if r.AdvanceEpoch(4) || r.Epoch() != 9 {
		t.Errorf("AdvanceEpoch must never lower the epoch: %d", r.Epoch())
	}
}

func TestOwnerWithDeadMembers(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1"}
	r := mustRing(t, members, 32)
	keys := testKeys(500)
	r.SetLive("a:1", false)
	r.SetLive("b:1", false)
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok || o != "c:1" {
			t.Fatalf("with one live member, Owner(%q) = %q, %v", k, o, ok)
		}
	}
	r.SetLive("c:1", false)
	if _, ok := r.Owner(keys[0]); ok {
		t.Error("Owner reported an owner on an all-dead ring")
	}
	if succ := r.Successors(keys[0], 3); succ != nil {
		t.Errorf("Successors on an all-dead ring = %v, want nil", succ)
	}
}

// TestSuccessorsAreFailoverOrder: killing the owner hands each key to
// its next listed successor.
func TestSuccessorsAreFailoverOrder(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1"}
	r := mustRing(t, members, 64)
	for _, k := range testKeys(300) {
		succ := r.Successors(k, 2)
		if len(succ) != 2 {
			t.Fatalf("Successors(%q, 2) = %v", k, succ)
		}
		owner, _ := r.Owner(k)
		if succ[0] != owner {
			t.Fatalf("successor[0] %q != owner %q", succ[0], owner)
		}
		r.SetLive(owner, false)
		next, _ := r.Owner(k)
		if next != succ[1] {
			t.Fatalf("after killing %q, owner = %q, want successor[1] %q", owner, next, succ[1])
		}
		r.SetLive(owner, true)
	}
}

func TestSnapshotAndLookups(t *testing.T) {
	r := mustRing(t, []string{"b:1", "a:1"}, 8)
	r.SetLive("b:1", false)
	s := r.Snapshot()
	if s.Epoch != 1 || s.Live != 1 || s.VNodes != 8 || s.Digest != r.Digest() {
		t.Errorf("snapshot %+v out of sync with ring", s)
	}
	if len(s.Members) != 2 || s.Members[0].Addr != "a:1" || !s.Members[0].Live || s.Members[1].Live {
		t.Errorf("snapshot members %+v, want sorted [a:1 live, b:1 dead]", s.Members)
	}
	if !r.Contains("a:1") || r.Contains("z:1") {
		t.Error("Contains wrong")
	}
	if !r.Live("a:1") || r.Live("b:1") || r.Live("z:1") {
		t.Error("Live wrong")
	}
	if r.LiveCount() != 1 {
		t.Errorf("LiveCount = %d, want 1", r.LiveCount())
	}
}
