// Package ring implements the consistent-hash replica ring behind
// llserve's cluster mode (DESIGN.md §16): a fixed member set is expanded
// into virtual nodes on a hash circle, every content-addressed cache key
// is owned by the first *live* member clockwise from the key's hash, and
// a per-process epoch counter versions the live set so peers can detect
// (and reject) requests routed under an older view of the ring.
//
// The package is deliberately pure: a Ring never dials, probes, or reads
// a clock. Ownership is a function of (members, vnodes, live set) and
// nothing else, which is what makes the routing property testable — two
// rings built from the same members that observed the same liveness
// transitions answer Owner identically for every key, forever. The serve
// layer wraps a Ring with its health tracking and locking; this package
// owns only the arithmetic.
//
// Consistent hashing gives the two properties the sharded cache needs:
//
//   - Balance: with V virtual nodes per member the expected share of the
//     key space per member is 1/N with relative deviation O(1/sqrt(V)).
//   - Stability: removing a member moves only the keys that member owned
//     (they fall to ring successors); every other key keeps its owner.
//     Adding a member moves only ~1/(N+1) of the keys (onto the new
//     member). Join/leave can never reshuffle unrelated key ranges.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-member virtual-node count used when a
// configuration leaves it zero. 64 points per member keeps the maximum
// member share within ~25% of the mean for small clusters (the relative
// imbalance shrinks like 1/sqrt(V)) while the full point array for a
// 64-replica ring still fits in two cache lines' worth of pages.
const DefaultVirtualNodes = 64

// point is one virtual node: a position on the hash circle and the index
// of the member that owns it.
type point struct {
	hash   uint64
	member int
}

// Ring is a consistent-hash ring over a fixed member set with a mutable
// live set and an epoch counter versioning that live set. It is not
// safe for concurrent use; callers (the serve router) hold their own
// lock. The zero value is not usable; construct with New.
type Ring struct {
	members []string // sorted, unique
	vnodes  int
	points  []point // sorted by hash
	live    []bool  // parallel to members
	nLive   int
	epoch   uint64
	digest  string
}

// New builds a ring over members (order-insensitive; duplicates are
// rejected) with vnodes virtual nodes per member (0 selects
// DefaultVirtualNodes). Every member starts live and the epoch starts
// at zero.
func New(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ring: no members")
	}
	if vnodes == 0 {
		vnodes = DefaultVirtualNodes
	}
	if vnodes < 1 || vnodes > 4096 {
		return nil, fmt.Errorf("ring: vnodes must be in [1, 4096], got %d", vnodes)
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("ring: empty member address")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("ring: duplicate member %q", m)
		}
	}
	r := &Ring{
		members: sorted,
		vnodes:  vnodes,
		points:  make([]point, 0, len(sorted)*vnodes),
		live:    make([]bool, len(sorted)),
		nLive:   len(sorted),
	}
	for i, m := range sorted {
		r.live[i] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashString(fmt.Sprintf("%s#%d", m, v)), member: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A full 64-bit hash collision between virtual nodes is
		// astronomically unlikely, but the tie-break must still be
		// deterministic: lower member index wins.
		return r.points[a].member < r.points[b].member
	})
	r.digest = computeDigest(sorted, vnodes)
	return r, nil
}

// hashString maps a string to a position on the 64-bit hash circle. The
// first eight bytes of the SHA-256 keep the ring aligned with the
// content-address scheme the cache keys already use (serve.CacheKey) and
// spread virtual nodes uniformly regardless of member-name structure.
func hashString(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// computeDigest fingerprints the ring *configuration* (members and
// vnodes, not liveness): two replicas can only exchange proxied requests
// when their digests match, so a misconfigured peer list fails loudly
// instead of routing keys to the wrong owner.
func computeDigest(sorted []string, vnodes int) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d", vnodes)
	for _, m := range sorted {
		h.Write([]byte{0})
		h.Write([]byte(m))
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// Members returns the sorted member list (shared slice; do not mutate).
func (r *Ring) Members() []string { return r.members }

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Digest identifies the ring configuration (members + vnodes). Proxied
// requests carry it so replicas with different peer lists reject each
// other instead of silently disagreeing about ownership.
func (r *Ring) Digest() string { return r.digest }

// Epoch returns the current live-set version. It increases on every
// effective liveness transition and via AdvanceEpoch, never decreases,
// and identifies which view of the ring a routing decision used.
func (r *Ring) Epoch() uint64 { return r.epoch }

// LiveCount returns the number of live members.
func (r *Ring) LiveCount() int { return r.nLive }

// index returns member's position, or -1 if it is not a ring member.
func (r *Ring) index(member string) int {
	i := sort.SearchStrings(r.members, member)
	if i < len(r.members) && r.members[i] == member {
		return i
	}
	return -1
}

// Contains reports whether member is part of the ring configuration
// (live or not).
func (r *Ring) Contains(member string) bool { return r.index(member) >= 0 }

// Live reports whether member is currently live. Unknown members are
// never live.
func (r *Ring) Live(member string) bool {
	i := r.index(member)
	return i >= 0 && r.live[i]
}

// SetLive marks member live or dead and reports whether the live set
// actually changed. An effective transition bumps the epoch: keys owned
// by a member going dead fall to their ring successors, and a member
// coming back reclaims its ranges — either way, every replica that
// learns of the new epoch stops trusting routing (and epoch-prefixed
// cache entries) from the old view. Unknown members are ignored.
func (r *Ring) SetLive(member string, live bool) bool {
	i := r.index(member)
	if i < 0 || r.live[i] == live {
		return false
	}
	r.live[i] = live
	if live {
		r.nLive++
	} else {
		r.nLive--
	}
	r.epoch++
	return true
}

// AdvanceEpoch raises the epoch to at least e (max-merge) and reports
// whether it moved. Replicas adopt higher epochs learned from peers —
// via proxy responses, rejections, or probes — so a restarted or
// formerly partitioned replica catches up instead of serving bytes
// cached under a view of the ring the cluster has already abandoned.
func (r *Ring) AdvanceEpoch(e uint64) bool {
	if e <= r.epoch {
		return false
	}
	r.epoch = e
	return true
}

// Owner returns the live member owning key: the member of the first live
// virtual node clockwise from the key's hash. ok is false only when no
// member is live (callers that keep themselves live can never see it).
func (r *Ring) Owner(key string) (owner string, ok bool) {
	if r.nLive == 0 {
		return "", false
	}
	h := hashString(key)
	// First point with hash >= h, wrapping past the top of the circle.
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for off := 0; off < len(r.points); off++ {
		p := r.points[(start+off)%len(r.points)]
		if r.live[p.member] {
			return r.members[p.member], true
		}
	}
	return "", false
}

// Successors returns up to n distinct live members in ring order
// starting at key's owner. It is the failover order: if the owner is
// lost, index 1 is the member its range falls to.
func (r *Ring) Successors(key string, n int) []string {
	if n <= 0 || r.nLive == 0 {
		return nil
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for off := 0; off < len(r.points) && len(out) < n; off++ {
		p := r.points[(start+off)%len(r.points)]
		if r.live[p.member] && !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// MemberState is one member's entry in a Snapshot.
type MemberState struct {
	Addr string `json:"addr"`
	Live bool   `json:"live"`
}

// Snapshot is the JSON-friendly view of a ring that /ringz serves.
type Snapshot struct {
	Digest  string        `json:"digest"`
	Epoch   uint64        `json:"epoch"`
	VNodes  int           `json:"vnodes"`
	Live    int           `json:"live"`
	Members []MemberState `json:"members"`
}

// Snapshot captures the ring's current configuration and liveness.
func (r *Ring) Snapshot() Snapshot {
	s := Snapshot{
		Digest:  r.digest,
		Epoch:   r.epoch,
		VNodes:  r.vnodes,
		Live:    r.nLive,
		Members: make([]MemberState, len(r.members)),
	}
	for i, m := range r.members {
		s.Members[i] = MemberState{Addr: m, Live: r.live[i]}
	}
	return s
}
