package trace

import "lingerlonger/internal/stats"

// CorpusStats aggregates the §3.2 workstation-availability statistics over
// a corpus of traces.
type CorpusStats struct {
	Machines int
	Samples  int

	NonIdleFraction float64 // fraction of time in the non-idle state

	MeanCPU        float64 // overall mean CPU utilization
	MeanCPUIdle    float64 // mean CPU during idle intervals
	MeanCPUNonIdle float64 // mean CPU during non-idle intervals

	// FracNonIdleBelow10 is the fraction of non-idle samples whose CPU is
	// below 10% — the paper reports 76%, the headroom lingering exploits.
	FracNonIdleBelow10 float64

	// Mean durations of idle and non-idle episodes, seconds.
	MeanIdleEpisode    float64
	MeanNonIdleEpisode float64
}

// Analyze computes corpus statistics.
func Analyze(traces []*Trace) CorpusStats {
	var cs CorpusStats
	cs.Machines = len(traces)
	var nonIdle, total int
	var cpuSum, cpuIdleSum, cpuNonIdleSum float64
	var below10 int
	var idleEp, nonIdleEp stats.Welford
	for _, tr := range traces {
		mask := tr.IdleMask()
		for i, s := range tr.Samples {
			total++
			cpuSum += s.CPU
			if mask[i] {
				cpuIdleSum += s.CPU
			} else {
				nonIdle++
				cpuNonIdleSum += s.CPU
				if s.CPU < RecruitmentCPU {
					below10++
				}
			}
		}
		for _, ep := range Episodes(mask, tr.Interval) {
			if ep.Idle {
				idleEp.Add(ep.Duration())
			} else {
				nonIdleEp.Add(ep.Duration())
			}
		}
	}
	cs.Samples = total
	if total == 0 {
		return cs
	}
	cs.NonIdleFraction = float64(nonIdle) / float64(total)
	cs.MeanCPU = cpuSum / float64(total)
	if idle := total - nonIdle; idle > 0 {
		cs.MeanCPUIdle = cpuIdleSum / float64(idle)
	}
	if nonIdle > 0 {
		cs.MeanCPUNonIdle = cpuNonIdleSum / float64(nonIdle)
		cs.FracNonIdleBelow10 = float64(below10) / float64(nonIdle)
	}
	cs.MeanIdleEpisode = idleEp.Mean()
	cs.MeanNonIdleEpisode = nonIdleEp.Mean()
	return cs
}

// Fig4 reproduces Figure 4: the CDF of available memory over all samples,
// over idle samples, and over non-idle samples. The returned ECDFs are in
// megabytes.
func Fig4(traces []*Trace) (all, idle, nonIdle *stats.ECDF) {
	all, idle, nonIdle = &stats.ECDF{}, &stats.ECDF{}, &stats.ECDF{}
	for _, tr := range traces {
		mask := tr.IdleMask()
		for i, s := range tr.Samples {
			all.Add(s.FreeMB)
			if mask[i] {
				idle.Add(s.FreeMB)
			} else {
				nonIdle.Add(s.FreeMB)
			}
		}
	}
	return all, idle, nonIdle
}

// FracAtLeast returns the fraction of time at least mb megabytes are free,
// per the Figure 4 reading ("90% of time, more than 14 Mbytes of memory
// available").
func FracAtLeast(e *stats.ECDF, mb float64) float64 {
	if e.N() == 0 {
		return 0
	}
	// P(X >= mb) = 1 - P(X < mb); with a continuous signal P(X < mb) is
	// approximated by P(X <= mb).
	return 1 - e.At(mb-1e-9)
}
