package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lingerlonger/internal/stats"
)

const goodTrace = `# a tiny two-sample trace
lltrace 1
interval 2
totalmb 64
0.05 32.5 0
0.90 10.25 1
`

func TestReadGoodTrace(t *testing.T) {
	tr, err := Read(strings.NewReader(goodTrace))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Interval != 2 || tr.TotalMB != 64 || len(tr.Samples) != 2 {
		t.Fatalf("parsed %+v", tr)
	}
	if tr.Samples[1].CPU != 0.90 || tr.Samples[1].FreeMB != 10.25 || !tr.Samples[1].Keyboard {
		t.Errorf("sample 1 = %+v", tr.Samples[1])
	}
	if tr.Samples[0].Keyboard {
		t.Error("sample 0 keyboard should be false")
	}
}

func TestReadCorruptInputs(t *testing.T) {
	cases := []struct {
		name  string
		input string
		line  int    // expected ParseError line
		want  string // substring of the message
	}{
		{"empty", "", 1, "missing"},
		{"comments only", "# nothing\n\n# here\n", 3, "missing"},
		{"wrong magic", "nottrace 1\n", 1, "not a trace file"},
		{"future version", "lltrace 99\ninterval 2\n", 1, "unsupported format version"},
		{"version not a number", "lltrace x\n", 1, "unsupported format version"},
		{"no samples", "lltrace 1\ninterval 2\ntotalmb 64\n", 3, "no samples"},
		{"sample before interval", "lltrace 1\ntotalmb 64\n0.5 10 0\n", 3, "before the interval"},
		{"sample before totalmb", "lltrace 1\ninterval 2\n0.5 10 0\n", 3, "before the totalmb"},
		{"late directive", "lltrace 1\ninterval 2\ntotalmb 64\n0.5 10 0\ninterval 4\n", 5, "after the first sample"},
		{"negative interval", "lltrace 1\ninterval -2\n", 2, "must be positive"},
		{"zero totalmb", "lltrace 1\ninterval 2\ntotalmb 0\n", 3, "must be positive"},
		{"truncated sample", "lltrace 1\ninterval 2\ntotalmb 64\n0.5 10\n", 4, "want 3 fields"},
		{"extra field", "lltrace 1\ninterval 2\ntotalmb 64\n0.5 10 0 7\n", 4, "want 3 fields"},
		{"cpu not a number", "lltrace 1\ninterval 2\ntotalmb 64\nhigh 10 0\n", 4, "bad number"},
		{"cpu NaN", "lltrace 1\ninterval 2\ntotalmb 64\nNaN 10 0\n", 4, "non-finite"},
		{"cpu Inf", "lltrace 1\ninterval 2\ntotalmb 64\n+Inf 10 0\n", 4, "non-finite"},
		{"interval NaN", "lltrace 1\ninterval NaN\n", 2, "non-finite"},
		{"cpu above 1", "lltrace 1\ninterval 2\ntotalmb 64\n1.5 10 0\n", 4, "out of [0,1]"},
		{"cpu negative", "lltrace 1\ninterval 2\ntotalmb 64\n-0.1 10 0\n", 4, "out of [0,1]"},
		{"free above total", "lltrace 1\ninterval 2\ntotalmb 64\n0.5 65 0\n", 4, "out of [0,64]"},
		{"free negative", "lltrace 1\ninterval 2\ntotalmb 64\n0.5 -1 0\n", 4, "out of [0,64]"},
		{"free NaN", "lltrace 1\ninterval 2\ntotalmb 64\n0.5 NaN 0\n", 4, "non-finite"},
		{"keyboard flag", "lltrace 1\ninterval 2\ntotalmb 64\n0.5 10 yes\n", 4, "not 0 or 1"},
		{"keyboard numeric", "lltrace 1\ninterval 2\ntotalmb 64\n0.5 10 2\n", 4, "not 0 or 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.input))
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not a *ParseError: %v", err, err)
			}
			if pe.Line != tc.line {
				t.Errorf("line = %d, want %d (%v)", pe.Line, tc.line, pe)
			}
			if !strings.Contains(pe.Msg, tc.want) {
				t.Errorf("message %q does not contain %q", pe.Msg, tc.want)
			}
		})
	}
}

func TestReadHugeLine(t *testing.T) {
	input := "lltrace 1\ninterval 2\ntotalmb 64\n0.5 " + strings.Repeat("9", 2<<20) + " 0\n"
	_, err := Read(strings.NewReader(input))
	var pe *ParseError
	if !errors.As(err, &pe) || !strings.Contains(pe.Msg, "limit") {
		t.Fatalf("oversized line: %v", err)
	}
}

func TestLoadCarriesPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(path, []byte("lltrace 1\ninterval 2\ntotalmb 64\nbroken line here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Path != path || pe.Line != 4 {
		t.Errorf("ParseError = %+v", pe)
	}
	if !strings.Contains(err.Error(), "bad.txt:4:") {
		t.Errorf("error text lacks path:line: %v", err)
	}
	if _, err := Load(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("Load of a missing file must error")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Days = 1
	corpus, err := GenerateCorpus(cfg, 2, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range corpus {
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
		if back.Interval != tr.Interval || back.TotalMB != tr.TotalMB || len(back.Samples) != len(tr.Samples) {
			t.Fatalf("trace %d: shape changed: %g/%g/%d vs %g/%g/%d", i,
				back.Interval, back.TotalMB, len(back.Samples), tr.Interval, tr.TotalMB, len(tr.Samples))
		}
		for j := range tr.Samples {
			if back.Samples[j] != tr.Samples[j] {
				t.Fatalf("trace %d sample %d: %+v != %+v", i, j, back.Samples[j], tr.Samples[j])
			}
		}
	}
}

func TestWriteRejectsInvalidTrace(t *testing.T) {
	bad := &Trace{Interval: 2, TotalMB: 64, Samples: []Sample{{CPU: 3}}}
	var buf bytes.Buffer
	if err := Write(&buf, bad); err == nil {
		t.Error("Write accepted an invalid trace")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr, err := Read(strings.NewReader(goodTrace))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.txt")
	if err := Save(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(tr.Samples) || back.Samples[1] != tr.Samples[1] {
		t.Errorf("round trip changed the trace: %+v", back)
	}
}

// FuzzRead asserts the parser's two safety properties on arbitrary bytes:
// it never panics, and an input it accepts always yields a trace that
// passes Validate (the "no silent garbage" contract).
func FuzzRead(f *testing.F) {
	f.Add([]byte(goodTrace))
	f.Add([]byte(""))
	f.Add([]byte("lltrace 1\ninterval 2\ntotalmb 64\nNaN NaN NaN\n"))
	f.Add([]byte("lltrace 1\ninterval 1e308\ntotalmb 64\n0 0 0\n"))
	f.Add([]byte("lltrace 1\n# c\n\ninterval 0.5\ntotalmb 1\n1 1 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("accepted input produced an invalid trace: %v", verr)
		}
		// A parsed trace must also survive re-serialization.
		var buf bytes.Buffer
		if werr := Write(&buf, tr); werr != nil {
			t.Fatalf("round trip write failed: %v", werr)
		}
	})
}
