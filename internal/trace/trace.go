// Package trace provides the coarse-grain workload substrate (§3.2 of the
// paper): per-workstation traces sampled every two seconds containing CPU
// utilization, free memory, and keyboard activity, together with the
// recruitment-threshold idle detector and corpus statistics.
//
// The paper uses traces collected by Arpaci et al. (132 machines over 40
// days). Those traces are not available, so this package synthesizes an
// equivalent corpus with a user-session model (diurnal presence, typing /
// pause / compute episodes, background daemons) calibrated to the
// statistics the paper reports: ~46% of time non-idle, ~76% of non-idle
// samples below 10% CPU, and the Figure 4 free-memory CDF (on 64 MB
// machines, at least 14 MB free 90% of the time and at least 10 MB free
// 95% of the time). See DESIGN.md §2 for the substitution argument.
package trace

import (
	"fmt"
	"math"
	"sync"
)

// SampleInterval is the trace sampling granularity in seconds.
const SampleInterval = 2.0

// Recruitment threshold (the paper's idle definition): a machine is idle
// once the CPU has stayed below RecruitmentCPU and the keyboard untouched
// for RecruitmentDelay seconds.
const (
	RecruitmentCPU   = 0.10
	RecruitmentDelay = 60.0
)

// Sample is one two-second observation of a workstation.
type Sample struct {
	CPU      float64 // local CPU utilization in [0, 1]
	FreeMB   float64 // free physical memory in megabytes
	Keyboard bool    // keyboard or mouse activity during the interval
}

// Trace is a sequence of samples from one workstation.
//
// Samples must not be mutated after the first NewView on the trace: views
// share one lazily computed idle mask (a pure function of the samples),
// and a later mutation would leave it stale.
type Trace struct {
	Interval float64 // seconds between samples (SampleInterval)
	TotalMB  float64 // physical memory size of the machine
	Samples  []Sample

	// Idle-mask memo. Computing the recruitment mask is O(samples); before
	// it was cached here, NewView recomputed it per node and the 64-node
	// cluster constructor dominated the whole simulation's profile. The
	// sync.Once makes the lazy fill safe when parallel sweep workers build
	// views over a shared corpus.
	maskOnce sync.Once
	maskMemo []bool
}

// Duration returns the trace length in seconds.
func (t *Trace) Duration() float64 { return float64(len(t.Samples)) * t.Interval }

// index maps time (seconds) to a sample index, wrapping around so a trace
// can be read at an arbitrary offset for longer than its duration — the
// paper starts each simulated node "at a randomly selected offset into a
// different machine trace".
func (t *Trace) index(at float64) int {
	n := len(t.Samples)
	if n == 0 {
		return -1
	}
	i := int(math.Floor(at/t.Interval)) % n
	if i < 0 {
		i += n
	}
	return i
}

// At returns the sample covering time at (seconds), wrapping around the
// trace end. It panics on an empty trace.
func (t *Trace) At(at float64) Sample {
	i := t.index(at)
	if i < 0 {
		panic("trace: At on empty trace")
	}
	return t.Samples[i]
}

// UtilizationAt returns the CPU utilization at time at. Trace implements
// workload.UtilizationSource.
func (t *Trace) UtilizationAt(at float64) float64 { return t.At(at).CPU }

// IdleMask computes the recruitment-threshold idle flag for every sample:
// sample i is idle when the CPU stayed below RecruitmentCPU and the
// keyboard was untouched for the previous RecruitmentDelay seconds. The
// trace is treated as starting after a long quiet period, so a quiet
// prefix counts as idle.
func (t *Trace) IdleMask() []bool {
	mask := make([]bool, len(t.Samples))
	lastActive := -RecruitmentDelay // pretend quiet before the trace
	for i, s := range t.Samples {
		now := float64(i) * t.Interval
		if s.Keyboard || s.CPU >= RecruitmentCPU {
			lastActive = now
		}
		mask[i] = now-lastActive >= RecruitmentDelay
	}
	return mask
}

// sharedIdleMask returns the memoized idle mask, computing it on first
// use. The returned slice is shared across every View of the trace and
// must be treated as read-only; IdleMask stays available for callers that
// need a private copy.
func (t *Trace) sharedIdleMask() []bool {
	t.maskOnce.Do(func() { t.maskMemo = t.IdleMask() })
	return t.maskMemo
}

// Episode is a maximal run of consecutive idle or non-idle samples.
type Episode struct {
	Start float64 // seconds, inclusive
	End   float64 // seconds, exclusive
	Idle  bool
}

// Duration returns End-Start.
func (e Episode) Duration() float64 { return e.End - e.Start }

// Episodes splits an idle mask (as produced by IdleMask) into maximal
// idle/non-idle episodes.
func Episodes(mask []bool, interval float64) []Episode {
	if len(mask) == 0 {
		return nil
	}
	var out []Episode
	start := 0
	for i := 1; i <= len(mask); i++ {
		if i == len(mask) || mask[i] != mask[start] {
			out = append(out, Episode{
				Start: float64(start) * interval,
				End:   float64(i) * interval,
				Idle:  mask[start],
			})
			start = i
		}
	}
	return out
}

// View reads a trace starting at a fixed offset, presenting it as an
// infinite (wrapped) workload source with idle-state queries. It is the
// per-node handle the cluster simulator uses.
type View struct {
	trace  *Trace
	offset float64
	mask   []bool
}

// NewView returns a view of tr starting at offset seconds (wrapped).
func NewView(tr *Trace, offset float64) *View {
	if len(tr.Samples) == 0 {
		panic("trace: NewView on empty trace")
	}
	return &View{trace: tr, offset: offset, mask: tr.sharedIdleMask()}
}

// Trace returns the underlying trace.
func (v *View) Trace() *Trace { return v.trace }

// UtilizationAt returns CPU utilization at view time t.
func (v *View) UtilizationAt(t float64) float64 {
	return v.trace.UtilizationAt(v.offset + t)
}

// SampleAt returns the full sample at view time t.
func (v *View) SampleAt(t float64) Sample { return v.trace.At(v.offset + t) }

// IdleAt reports the recruitment-threshold idle state at view time t.
//
// Note: wrapping means the mask's quiet-prefix assumption also applies at
// the wrap point; with multi-day traces the bias is negligible.
func (v *View) IdleAt(t float64) bool {
	return v.mask[v.trace.index(v.offset+t)]
}

// Interval returns the sampling interval of the underlying trace.
func (v *View) Interval() float64 { return v.trace.Interval }

// Validate checks structural invariants of the trace.
func (t *Trace) Validate() error {
	if t.Interval <= 0 {
		return fmt.Errorf("trace: non-positive interval %g", t.Interval)
	}
	if t.TotalMB <= 0 {
		return fmt.Errorf("trace: non-positive memory size %g", t.TotalMB)
	}
	for i, s := range t.Samples {
		if s.CPU < 0 || s.CPU > 1 {
			return fmt.Errorf("trace: sample %d CPU %g out of [0,1]", i, s.CPU)
		}
		if s.FreeMB < 0 || s.FreeMB > t.TotalMB {
			return fmt.Errorf("trace: sample %d free memory %g out of [0,%g]", i, s.FreeMB, t.TotalMB)
		}
	}
	return nil
}
