package trace

import (
	"testing"

	"lingerlonger/internal/stats"
)

// testCorpus generates a small but statistically meaningful corpus.
func testCorpus(t *testing.T, machines, days int, seed int64) []*Trace {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Days = days
	traces, err := GenerateCorpus(cfg, machines, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

func TestGenerateValidates(t *testing.T) {
	for _, tr := range testCorpus(t, 3, 1, 1) {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if tr.Duration() != 86400 {
			t.Errorf("trace duration = %g, want 86400", tr.Duration())
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Days = 0
	if _, err := Generate(cfg, stats.NewRNG(1)); err == nil {
		t.Error("Days=0 accepted")
	}
	cfg = DefaultConfig()
	cfg.OSMB = cfg.TotalMB + 1
	if _, err := Generate(cfg, stats.NewRNG(1)); err == nil {
		t.Error("OSMB > TotalMB accepted")
	}
	cfg = DefaultConfig()
	cfg.ComputeProb = 1.5
	if _, err := Generate(cfg, stats.NewRNG(1)); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := GenerateCorpus(DefaultConfig(), 0, stats.NewRNG(1)); err == nil {
		t.Error("zero machines accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Generate(cfg, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs between equal-seed runs", i)
		}
	}
}

// The §3.2 calibration targets. The paper: 46% non-idle; 76% of non-idle
// time below 10% CPU. Week-long corpus over several machines.
func TestCorpusMatchesPaperStats(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical calibration test")
	}
	traces := testCorpus(t, 6, 7, 2)
	cs := Analyze(traces)
	if cs.NonIdleFraction < 0.38 || cs.NonIdleFraction > 0.54 {
		t.Errorf("non-idle fraction = %.3f, want ~0.46 (paper §3.2)", cs.NonIdleFraction)
	}
	if cs.FracNonIdleBelow10 < 0.66 || cs.FracNonIdleBelow10 > 0.86 {
		t.Errorf("frac non-idle below 10%% CPU = %.3f, want ~0.76", cs.FracNonIdleBelow10)
	}
	if cs.MeanCPU < 0.04 || cs.MeanCPU > 0.14 {
		t.Errorf("overall mean CPU = %.3f, want ~0.08", cs.MeanCPU)
	}
	if cs.MeanCPUNonIdle <= cs.MeanCPUIdle {
		t.Errorf("non-idle mean CPU (%.3f) should exceed idle mean CPU (%.3f)",
			cs.MeanCPUNonIdle, cs.MeanCPUIdle)
	}
	if cs.MeanIdleEpisode <= 60 {
		t.Errorf("mean idle episode = %.1f s, should exceed the recruitment delay", cs.MeanIdleEpisode)
	}
}

// Figure 4 calibration: on 64 MB machines, >= 14 MB free 90% of the time
// and >= 10 MB free 95% of the time; idle and non-idle distributions do not
// differ much.
func TestCorpusMatchesFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical calibration test")
	}
	traces := testCorpus(t, 6, 7, 3)
	all, idle, nonIdle := Fig4(traces)
	if got := FracAtLeast(all, 14); got < 0.84 || got > 0.96 {
		t.Errorf("P(free >= 14MB) = %.3f, want ~0.90 (Figure 4)", got)
	}
	if got := FracAtLeast(all, 10); got < 0.90 || got > 0.99 {
		t.Errorf("P(free >= 10MB) = %.3f, want ~0.95 (Figure 4)", got)
	}
	// "no significant difference in the available memory between idle and
	// non-idle states": medians within a few MB.
	dm := idle.Quantile(0.5) - nonIdle.Quantile(0.5)
	if dm < -8 || dm > 8 {
		t.Errorf("idle/non-idle median free memory differ by %.1f MB", dm)
	}
}

func TestPresenceSchedule(t *testing.T) {
	cfg := DefaultConfig()
	// Monday 10:00 — working hours.
	if got := cfg.presenceAt(10 * 3600); got != cfg.PresenceWeekday {
		t.Errorf("weekday presence = %g", got)
	}
	// Monday 22:00 — evening.
	if got := cfg.presenceAt(22 * 3600); got != cfg.PresenceEvening {
		t.Errorf("evening presence = %g", got)
	}
	// Monday 3:00 — night.
	if got := cfg.presenceAt(3 * 3600); got != cfg.PresenceNight {
		t.Errorf("night presence = %g", got)
	}
	// Saturday 12:00 (day 5) — weekend.
	if got := cfg.presenceAt(5*86400 + 12*3600); got != cfg.PresenceWeekend {
		t.Errorf("weekend presence = %g", got)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	cs := Analyze(nil)
	if cs.Samples != 0 || cs.NonIdleFraction != 0 {
		t.Errorf("Analyze(nil) = %+v", cs)
	}
}

func TestPresetsProduceDistinctRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical calibration test")
	}
	gen := func(cfg Config) CorpusStats {
		cfg.Days = 7
		corpus, err := GenerateCorpus(cfg, 4, stats.NewRNG(50))
		if err != nil {
			t.Fatal(err)
		}
		return Analyze(corpus)
	}
	def := gen(DefaultConfig())
	office := gen(OfficeConfig())
	lab := gen(StudentLabConfig())
	server := gen(ServerRoomConfig())

	// The lab is busier than the default; the server room far less
	// keyboard-active but still intermittently non-idle.
	if lab.NonIdleFraction <= def.NonIdleFraction {
		t.Errorf("lab non-idle %.3f not above default %.3f", lab.NonIdleFraction, def.NonIdleFraction)
	}
	if server.NonIdleFraction <= 0.01 || server.NonIdleFraction >= def.NonIdleFraction {
		t.Errorf("server non-idle %.3f, want in (0.01, %.3f)", server.NonIdleFraction, def.NonIdleFraction)
	}
	// Office hours concentrate: the office preset has longer idle
	// episodes (whole nights) than the default.
	if office.MeanIdleEpisode <= def.MeanIdleEpisode {
		t.Errorf("office mean idle episode %.0f not above default %.0f",
			office.MeanIdleEpisode, def.MeanIdleEpisode)
	}
	// Server machines show CPU-driven non-idleness: their non-idle mean
	// CPU is high (only heavy spikes trip the threshold).
	if server.MeanCPUNonIdle <= def.MeanCPUNonIdle {
		t.Errorf("server non-idle CPU %.3f not above default %.3f",
			server.MeanCPUNonIdle, def.MeanCPUNonIdle)
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{OfficeConfig(), StudentLabConfig(), ServerRoomConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Error(err)
		}
	}
}
