package trace

import (
	"math"
	"testing"
)

func flat(n int, cpu float64, kb bool) *Trace {
	tr := &Trace{Interval: SampleInterval, TotalMB: 64, Samples: make([]Sample, n)}
	for i := range tr.Samples {
		tr.Samples[i] = Sample{CPU: cpu, FreeMB: 30, Keyboard: kb}
	}
	return tr
}

func TestIdleMaskQuietTraceIsIdle(t *testing.T) {
	tr := flat(100, 0.02, false)
	for i, idle := range tr.IdleMask() {
		if !idle {
			t.Fatalf("sample %d of quiet trace not idle", i)
		}
	}
}

func TestIdleMaskBusyTraceIsNonIdle(t *testing.T) {
	tr := flat(100, 0.5, false)
	for i, idle := range tr.IdleMask() {
		if idle {
			t.Fatalf("sample %d of busy trace idle", i)
		}
	}
}

func TestIdleMaskKeyboardForcesNonIdle(t *testing.T) {
	tr := flat(100, 0.02, false)
	tr.Samples[10].Keyboard = true
	mask := tr.IdleMask()
	if !mask[9] {
		t.Error("sample before keyboard should be idle")
	}
	if mask[10] {
		t.Error("keyboard sample should be non-idle")
	}
	// Recruitment delay: non-idle for 60 s (30 samples) after activity.
	for i := 11; i < 40; i++ {
		if mask[i] {
			t.Fatalf("sample %d within recruitment delay marked idle", i)
		}
	}
	if !mask[41] {
		t.Error("sample after recruitment delay should be idle again")
	}
}

func TestIdleMaskCPUThreshold(t *testing.T) {
	tr := flat(80, 0.02, false)
	tr.Samples[20].CPU = RecruitmentCPU // exactly at threshold counts as active
	mask := tr.IdleMask()
	if mask[20] {
		t.Error("threshold CPU sample should be non-idle")
	}
	tr2 := flat(80, 0.02, false)
	tr2.Samples[20].CPU = RecruitmentCPU - 0.001
	if !tr2.IdleMask()[20] {
		t.Error("below-threshold CPU sample should stay idle")
	}
}

func TestEpisodes(t *testing.T) {
	mask := []bool{true, true, false, false, false, true}
	eps := Episodes(mask, 2)
	if len(eps) != 3 {
		t.Fatalf("episodes = %d, want 3", len(eps))
	}
	if !eps[0].Idle || eps[0].Start != 0 || eps[0].End != 4 {
		t.Errorf("episode 0 = %+v", eps[0])
	}
	if eps[1].Idle || eps[1].Duration() != 6 {
		t.Errorf("episode 1 = %+v", eps[1])
	}
	if !eps[2].Idle || eps[2].End != 12 {
		t.Errorf("episode 2 = %+v", eps[2])
	}
	if Episodes(nil, 2) != nil {
		t.Error("Episodes(nil) should be nil")
	}
}

func TestEpisodesCoverTrace(t *testing.T) {
	mask := make([]bool, 500)
	for i := range mask {
		mask[i] = i%7 < 3
	}
	eps := Episodes(mask, SampleInterval)
	var total float64
	prevEnd := 0.0
	for _, ep := range eps {
		if ep.Start != prevEnd {
			t.Fatalf("episode gap at %g", ep.Start)
		}
		prevEnd = ep.End
		total += ep.Duration()
	}
	if want := float64(len(mask)) * SampleInterval; total != want {
		t.Errorf("episodes cover %g s, want %g", total, want)
	}
}

func TestAtWraps(t *testing.T) {
	tr := flat(10, 0.02, false)
	tr.Samples[3].CPU = 0.7
	if got := tr.At(3 * SampleInterval).CPU; got != 0.7 {
		t.Errorf("At(6s).CPU = %g", got)
	}
	// One full lap later.
	if got := tr.At((3 + 10) * SampleInterval).CPU; got != 0.7 {
		t.Errorf("wrapped At = %g", got)
	}
	// Negative times wrap too.
	if got := tr.At(-7 * SampleInterval).CPU; got != 0.7 {
		t.Errorf("negative wrapped At = %g", got)
	}
}

func TestViewOffset(t *testing.T) {
	tr := flat(10, 0.02, false)
	tr.Samples[5].CPU = 0.9
	v := NewView(tr, 5*SampleInterval)
	if got := v.UtilizationAt(0); got != 0.9 {
		t.Errorf("view UtilizationAt(0) = %g, want 0.9", got)
	}
	if v.IdleAt(0) {
		t.Error("view should be non-idle at the busy sample")
	}
	if got := v.SampleAt(0).CPU; got != 0.9 {
		t.Errorf("SampleAt(0).CPU = %g", got)
	}
	if v.Interval() != SampleInterval {
		t.Errorf("Interval() = %g", v.Interval())
	}
}

func TestValidate(t *testing.T) {
	tr := flat(5, 0.5, false)
	if err := tr.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := flat(5, 0.5, false)
	bad.Samples[2].CPU = 1.5
	if bad.Validate() == nil {
		t.Error("CPU > 1 accepted")
	}
	bad2 := flat(5, 0.5, false)
	bad2.Samples[2].FreeMB = 100
	if bad2.Validate() == nil {
		t.Error("free memory > total accepted")
	}
	bad3 := flat(5, 0.5, false)
	bad3.Interval = 0
	if bad3.Validate() == nil {
		t.Error("zero interval accepted")
	}
}

func TestDuration(t *testing.T) {
	tr := flat(100, 0, false)
	if got := tr.Duration(); math.Abs(got-200) > 1e-9 {
		t.Errorf("Duration() = %g, want 200", got)
	}
}
