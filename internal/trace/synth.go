package trace

import (
	"fmt"
	"math"

	"lingerlonger/internal/stats"
)

// Config parameterizes the synthetic workstation model. The zero value is
// not usable; start from DefaultConfig.
type Config struct {
	Days    int     // trace length in days
	TotalMB float64 // physical memory size (the paper's machines: 64 MB)

	// Presence model: target probability that the owner is at the machine,
	// by period, realized with a two-state Markov chain whose mean session
	// length is MeanSessionMin minutes.
	PresenceWeekday float64 // working hours (9:00-20:00), Mon-Fri
	PresenceEvening float64 // 20:00-24:00 every day
	PresenceNight   float64 // 0:00-9:00 every day
	PresenceWeekend float64 // 9:00-20:00, Sat-Sun
	MeanSessionMin  float64

	// Episode model while present (means in seconds).
	MeanTypingSec  float64 // keyboard-active editing bouts
	MeanPauseSec   float64 // reading/thinking, no keyboard
	MeanComputeSec float64 // compiles/simulations, high CPU
	ComputeProb    float64 // P(typing bout is followed by compute, not pause)

	// CPU levels by episode (uniform ranges).
	CPUTyping  [2]float64
	CPUPause   [2]float64
	CPUCompute [2]float64
	CPUAbsent  [2]float64

	// Background daemon spikes while otherwise quiet.
	CronProb    float64 // per-sample probability of a spike starting
	MeanCronSec float64
	CPUCron     [2]float64

	// Memory model (megabytes).
	OSMB          float64    // resident kernel + daemons
	BaseWSPresent [2]float64 // owner working set while present
	BaseWSAbsent  [2]float64 // decayed working set while away
	ComputeWSMB   [2]float64 // extra working set during compute episodes
	WSDriftMB     float64    // per-sample random-walk step of the base WS
}

// DefaultConfig returns the calibration that reproduces the paper's
// aggregate statistics (§3.2 and Figure 4); see the package comment.
func DefaultConfig() Config {
	return Config{
		Days:    1,
		TotalMB: 64,

		PresenceWeekday: 0.80,
		PresenceEvening: 0.50,
		PresenceNight:   0.20,
		PresenceWeekend: 0.35,
		MeanSessionMin:  120,

		MeanTypingSec:  60,
		MeanPauseSec:   45,
		MeanComputeSec: 90,
		ComputeProb:    0.25,

		CPUTyping:  [2]float64{0.02, 0.09},
		CPUPause:   [2]float64{0.005, 0.03},
		CPUCompute: [2]float64{0.30, 0.95},
		CPUAbsent:  [2]float64{0.002, 0.02},

		CronProb:    0.0004,
		MeanCronSec: 20,
		CPUCron:     [2]float64{0.20, 0.70},

		OSMB:          14,
		BaseWSPresent: [2]float64{16, 26},
		BaseWSAbsent:  [2]float64{8, 14},
		ComputeWSMB:   [2]float64{10, 30},
		WSDriftMB:     0.15,
	}
}

// Validate checks that the configuration is self-consistent.
func (c Config) Validate() error {
	if c.Days <= 0 {
		return fmt.Errorf("trace: Days must be positive, got %d", c.Days)
	}
	if c.TotalMB <= c.OSMB {
		return fmt.Errorf("trace: TotalMB (%g) must exceed OSMB (%g)", c.TotalMB, c.OSMB)
	}
	for _, p := range []float64{c.PresenceWeekday, c.PresenceEvening, c.PresenceNight, c.PresenceWeekend, c.ComputeProb, c.CronProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("trace: probability %g out of [0,1]", p)
		}
	}
	for _, pair := range [][2]float64{c.CPUTyping, c.CPUPause, c.CPUCompute, c.CPUAbsent, c.CPUCron} {
		if pair[0] < 0 || pair[1] > 1 || pair[0] > pair[1] {
			return fmt.Errorf("trace: CPU range %v invalid", pair)
		}
	}
	if c.MeanSessionMin <= 0 || c.MeanTypingSec <= 0 || c.MeanPauseSec <= 0 || c.MeanComputeSec <= 0 || c.MeanCronSec <= 0 {
		return fmt.Errorf("trace: episode means must be positive")
	}
	return nil
}

// episode states of the owner model.
type ownerState int

const (
	stAbsent ownerState = iota
	stTyping
	stPause
	stCompute
)

// Generate synthesizes one workstation trace. The model steps every two
// seconds:
//
//   - a two-state presence Markov chain targets the configured hourly
//     occupancy with sticky sessions (mean MeanSessionMin),
//   - while present, the owner alternates typing bouts (keyboard, light
//     CPU), pauses (quiet — these are what lingering exploits) and compute
//     episodes (heavy CPU),
//   - while absent, background daemons keep the CPU near zero with rare
//     cron spikes,
//   - the free-memory signal follows the owner's working set: a drifting
//     base set plus a surge during compute episodes.
func Generate(cfg Config, rng *stats.RNG) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := int(float64(cfg.Days) * 24 * 3600 / SampleInterval)
	tr := &Trace{Interval: SampleInterval, TotalMB: cfg.TotalMB, Samples: make([]Sample, n)}

	// Presence chain: leave probability fixed by mean session length;
	// arrival probability solves the target stationary occupancy.
	pLeave := SampleInterval / (cfg.MeanSessionMin * 60)

	state := stAbsent
	present := rng.Bool(cfg.presenceAt(0))
	if present {
		state = stTyping
	}
	stateLeft := sampleEpisode(rng, &cfg, state) // seconds remaining in state
	cronLeft := 0.0
	baseWS := uniform(rng, cfg.BaseWSPresent)
	computeWS := 0.0

	// The presence target is piecewise constant per hour, so it is looked
	// up once per hour boundary instead of per two-second sample. The
	// values are identical to calling presenceAt every step.
	target := 0.0
	targetUntil := 0.0

	for i := 0; i < n; i++ {
		now := float64(i) * SampleInterval
		if now >= targetUntil {
			target = cfg.presenceAt(now)
			targetUntil = (math.Floor(now/3600) + 1) * 3600
		}

		// Presence transitions.
		if present {
			if rng.Float64() < pLeave {
				present = false
				state = stAbsent
				stateLeft = 0
			}
		} else {
			pArrive := 0.0
			if target < 1 {
				pArrive = pLeave * target / (1 - target)
			} else {
				pArrive = 1
			}
			if rng.Float64() < pArrive {
				present = true
				state = stTyping
				stateLeft = sampleEpisode(rng, &cfg, state)
			}
		}

		// Episode transitions while present.
		if present {
			stateLeft -= SampleInterval
			if stateLeft <= 0 {
				state = nextEpisode(rng, &cfg, state)
				stateLeft = sampleEpisode(rng, &cfg, state)
			}
		}

		// Cron spikes while the CPU is otherwise quiet.
		if cronLeft > 0 {
			cronLeft -= SampleInterval
		} else if (state == stAbsent || state == stPause) && rng.Bool(cfg.CronProb) {
			cronLeft = rng.ExpFloat64() * cfg.MeanCronSec
		}

		// CPU and keyboard for this sample.
		var cpu float64
		var kb bool
		switch state {
		case stAbsent:
			cpu = uniform(rng, cfg.CPUAbsent)
		case stTyping:
			cpu = uniform(rng, cfg.CPUTyping)
			kb = rng.Bool(0.8)
		case stPause:
			cpu = uniform(rng, cfg.CPUPause)
		case stCompute:
			cpu = uniform(rng, cfg.CPUCompute)
			kb = rng.Bool(0.1)
		}
		if cronLeft > 0 {
			cron := uniform(rng, cfg.CPUCron)
			if cron > cpu {
				cpu = cron
			}
		}

		// Working set dynamics.
		baseWS += (rng.Float64()*2 - 1) * cfg.WSDriftMB
		lo, hi := cfg.BaseWSAbsent[0], cfg.BaseWSPresent[1]
		if present {
			lo = cfg.BaseWSPresent[0]
		} else if baseWS > cfg.BaseWSAbsent[1] {
			baseWS -= cfg.WSDriftMB // decay toward the absent range
		}
		baseWS = clamp(baseWS, lo, hi)
		if state == stCompute {
			if computeWS == 0 {
				computeWS = uniform(rng, cfg.ComputeWSMB)
			}
		} else {
			computeWS = 0
		}
		free := cfg.TotalMB - cfg.OSMB - baseWS - computeWS
		free = clamp(free, 1, cfg.TotalMB)

		tr.Samples[i] = Sample{CPU: clamp(cpu, 0, 1), FreeMB: free, Keyboard: kb}
	}
	return tr, nil
}

// GenerateCorpus synthesizes machines independent traces. Each trace gets
// an independent RNG split from rng, so the corpus is reproducible from a
// single seed.
func GenerateCorpus(cfg Config, machines int, rng *stats.RNG) ([]*Trace, error) {
	if machines <= 0 {
		return nil, fmt.Errorf("trace: machine count must be positive, got %d", machines)
	}
	out := make([]*Trace, machines)
	for i := range out {
		tr, err := Generate(cfg, rng.Split())
		if err != nil {
			return nil, err
		}
		out[i] = tr
	}
	return out, nil
}

// presenceAt returns the target occupancy for the time-of-week at t
// seconds from the trace start (the trace starts Monday 00:00).
func (c *Config) presenceAt(t float64) float64 {
	day := int(t/86400) % 7 // 0 = Monday
	hour := math.Mod(t, 86400) / 3600
	weekend := day >= 5
	switch {
	case hour < 9:
		return c.PresenceNight
	case hour < 20:
		if weekend {
			return c.PresenceWeekend
		}
		return c.PresenceWeekday
	default:
		return c.PresenceEvening
	}
}

func sampleEpisode(rng *stats.RNG, cfg *Config, s ownerState) float64 {
	switch s {
	case stTyping:
		return rng.ExpFloat64() * cfg.MeanTypingSec
	case stPause:
		return rng.ExpFloat64() * cfg.MeanPauseSec
	case stCompute:
		return rng.ExpFloat64() * cfg.MeanComputeSec
	default:
		return 0
	}
}

func nextEpisode(rng *stats.RNG, cfg *Config, s ownerState) ownerState {
	switch s {
	case stTyping:
		if rng.Bool(cfg.ComputeProb) {
			return stCompute
		}
		return stPause
	case stPause:
		if rng.Bool(0.1) {
			return stCompute
		}
		return stTyping
	default: // compute
		return stTyping
	}
}

func uniform(rng *stats.RNG, r [2]float64) float64 {
	return r[0] + rng.Float64()*(r[1]-r[0])
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// OfficeConfig returns a 9-to-5 office calibration: heavy weekday-daytime
// presence, deserted nights and weekends. Compared to DefaultConfig the
// idle capacity is concentrated off-hours — the classic overnight
// cycle-stealing scenario.
func OfficeConfig() Config {
	cfg := DefaultConfig()
	cfg.PresenceWeekday = 0.90
	cfg.PresenceEvening = 0.15
	cfg.PresenceNight = 0.03
	cfg.PresenceWeekend = 0.08
	cfg.MeanSessionMin = 180
	return cfg
}

// StudentLabConfig returns a university-lab calibration: moderate
// presence around the clock with long hacking sessions — the flavour of
// the UMD/Berkeley corpora the paper used (DefaultConfig is calibrated to
// the paper's aggregate numbers; this preset is slightly busier).
func StudentLabConfig() Config {
	cfg := DefaultConfig()
	cfg.PresenceWeekday = 0.85
	cfg.PresenceEvening = 0.65
	cfg.PresenceNight = 0.30
	cfg.PresenceWeekend = 0.50
	return cfg
}

// ServerRoomConfig returns an unattended-machine calibration: no keyboard
// sessions at all, just background daemons with frequent batch spikes.
// Such machines are non-idle only through CPU activity, which exercises
// the recruitment threshold's CPU branch.
func ServerRoomConfig() Config {
	cfg := DefaultConfig()
	cfg.PresenceWeekday = 0
	cfg.PresenceEvening = 0
	cfg.PresenceNight = 0
	cfg.PresenceWeekend = 0
	cfg.CronProb = 0.004
	cfg.MeanCronSec = 120
	cfg.CPUCron = [2]float64{0.3, 0.9}
	return cfg
}
